(** Schedule-space exploration and flaky-test hunting on top of the IDL
    solver (see DESIGN.md, "Schedule-space exploration: flip soundness and
    minimality").

    A recorded run pins one point of the Equation-1 solution space; every
    other model of the same system replays the {e same} observables
    (Theorem 1), so bug hunting must step {e outside} the recorded
    equivalence class.  A {!flip} does exactly that: it relaxes the
    dependence pins that forced a conflicting access pair into its recorded
    order (the intervals touching the pair become sourceless readers, and
    the lock-acquisition pins of the two threads are likewise freed so a
    critical-section order can invert) and adds the inverting hard atom
    [O(b) < O(a)].  The re-solve is seeded with the recorded witness, so
    feasible neighbors cost near-zero solver work; each solution is checked
    by {!Light_core.Validate} against the relaxed dependence set and then
    re-executed with blind-write suppression {e off} — every step of the
    run is a legal program step, so a crash found this way is a genuine
    interleaving of the program, not a replay artifact. *)

open Runtime

module Log = Light_core.Log
(** Re-exported for readability: all log types below are light.core's. *)

(** {1 Flips} *)

type flip = {
  fa : Log.evt;        (** recorded-earlier access *)
  fb : Log.evt;        (** recorded-later, conflicting access *)
  f_loc : Loc.t;
  fa_site : int;
  fb_site : int;
  fa_kind : Event.akind;
  fb_kind : Event.akind;
  f_racy : bool;       (** the site pair is racy (static or dynamic evidence) *)
}

val flip_key : flip -> Log.evt * Log.evt * Loc.t
val pp_flip : Format.formatter -> flip -> unit

val toggle : flip list -> flip -> flip list
(** Add the flip to the set, or remove it if already present (matching by
    {!flip_key}); the result is kept sorted so toggling is involutive:
    [toggle (toggle s f) f] is [s]. *)

(** {1 Solving a flipped system} *)

val relaxation : Log.t -> flip list -> Log.evt list * Log.evt list
(** [(free, extra)] for {!Light_core.Constraints.generate}: the interval
    start events whose source pins the flips disconnect, and the flip
    endpoints to materialize as order variables. *)

type solve_verdict =
  | Feasible of Light_core.Replayer.schedule
  | Infeasible      (** the inverted order contradicts the relaxed system *)
  | SolveAborted    (** solver budget exhausted — reported, never dropped *)

type solved = {
  sv : solve_verdict;
  free : Log.evt list;     (** the pins that were relaxed (for validation) *)
  solve_time_s : float;
  sv_vars : int;
}

val lock_sections : Log.t -> (Loc.t * (Log.evt * Log.evt) list) list
(** Critical sections reconstructed from the log alone (acquisition read to
    the thread's next recorded lock-ghost write).  Under-approximates when
    a final release was never read; prefer {!trace_sections} when a trace
    is available. *)

val trace_sections :
  Event.access list -> (Loc.t * (Log.evt * Log.evt) list) list
(** Exact critical sections from an access trace (acquire/reacquire read to
    the matching releasing write). *)

val solve_flips :
  ?budget:Dlsolver.Idl.budget ->
  ?hinted:bool ->
  ?sections:(Loc.t * (Log.evt * Log.evt) list) list ->
  Log.t ->
  flip list ->
  solved
(** Regenerate the constraint system with the flips' relaxation, append the
    inverting hard atoms plus the mutual-exclusion clauses keeping critical
    sections of one lock disjoint (the recorded pins no longer enforce
    this once freed), and solve.  [sections] defaults to
    {!lock_sections} of the log; [hinted] (default [true]) seeds the solver
    with the generation witness, [false] measures a fresh solve.  With an
    empty flip list nothing is relaxed or added: the problem is the base
    one, byte for byte. *)

(** {1 Exploration context} *)

type context = {
  recording : Light_core.Light.recording;
  trace : Event.access list;   (** full access trace of an identical rerun *)
  racy_pairs : (int * int) list;
      (** site pairs with race evidence: static ({!Analysis.Analyze.races})
          cross-checked with dynamic ({!Analysis.Hb_detector}); each pair
          normalized [(min, max)] *)
  base_order : Log.evt array;  (** the unflipped solved schedule's order *)
  sections : (Loc.t * (Log.evt * Log.evt) list) list;
      (** exact critical sections (from the trace), fed to every re-solve *)
}

val make_context :
  ?variant:Light_core.Light.variant ->
  ?max_steps:int ->
  ?seed:int ->
  make_sched:(unit -> Sched.t) ->
  Lang.Ast.program ->
  (context, string) result
(** Record one run ([Plan.all_shared], so counters cover every access) and
    re-execute it with a fresh scheduler instance from the same constructor
    — byte-identical, since both tools' hooks are passive — to collect the
    access trace and the dynamic races.  [variant] defaults to [v_basic]:
    O1 ranges coarsen the flip lattice, single-dependence records keep
    every interval endpoint addressable. *)

val candidates : ?limit:int -> context -> flip list
(** Conflicting cross-thread access pairs adjacent in the trace (per
    location, each access against the other threads' latest accesses, at
    least one write), deduplicated by site pair, racy pairs ranked first,
    capped at [limit] (default 32).  Deterministic: depends only on the
    trace and the race evidence. *)

(** {1 Enumeration and classification} *)

type verdict =
  | Same                        (** Theorem-1 observables and final heap match *)
  | Divergent of string list    (** feasible neighbor with different outcome *)
  | Crashed of Interp.crash list
  | Stuck of string             (** deadlock / gate stall / step limit *)
  | InfeasibleFlip
  | AbortedFlip                 (** solver budget exhausted *)

val verdict_name : verdict -> string

type explored = {
  ex_flip : flip;
  ex_verdict : verdict;
  ex_validate : string list;  (** {!Light_core.Validate} violations; [[]] = valid *)
  ex_solve_s : float;
}

val run_schedule : context -> Light_core.Replayer.schedule -> Interp.outcome
(** Re-execute the program under a (possibly flipped) schedule with
    blind-write suppression off. *)

val classify : context -> Interp.outcome -> verdict

val explore :
  ?pool:Engine.Pool.t ->
  ?budget:Dlsolver.Idl.budget ->
  ?limit:int ->
  context ->
  explored list
(** Solve, validate, re-execute and classify every single-flip candidate.
    Fans out across the pool; results merge in candidate order, so the
    output is byte-stable under any [LIGHT_JOBS]. *)

(** {1 Flaky-test hunting} *)

type reproducer = {
  rp_flips : flip list;        (** minimal failing flip set *)
  rp_log : Log.t;              (** the passing run's recording *)
  rp_sections : (Loc.t * (Log.evt * Log.evt) list) list;
      (** the critical sections of the recorded run, so the re-solve stays
          self-contained (no trace needed at replay time) *)
  rp_expected : (int * int * string) list;  (** (tid, site, msg) crash sigs *)
}

val reproducer_to_string : reproducer -> string
val reproducer_of_string : string -> (reproducer, string) result

val run_reproducer :
  ?budget:Dlsolver.Idl.budget ->
  ?max_steps:int ->
  Lang.Ast.program ->
  reproducer ->
  (Interp.outcome, string) result
(** Re-solve the embedded log with the stored flips and re-execute: the
    whole pipeline is deterministic, so repeated runs yield byte-identical
    outcomes. *)

type hunt_result = {
  hr_repro : reproducer option;
  hr_outcome : Interp.outcome option;  (** the failing run found *)
  hr_tried : int;                      (** flip sets evaluated *)
}

val hunt :
  ?pool:Engine.Pool.t ->
  ?budget:Dlsolver.Idl.budget ->
  ?limit:int ->
  ?depth:int ->
  context ->
  hunt_result
(** Breadth-first search by flip distance (singles, then pairs up to
    [depth], default 2) for a crashing schedule, taking the first crash in
    candidate order (deterministic under any pool size), then greedy
    shrinking to a minimal flip set whose removal of any member loses the
    failure. *)

(** {1 Log-only enumeration (synthetic-log tests, bench)} *)

val log_candidates : ?limit:int -> Log.t -> flip list
(** Flip candidates from a log alone (no trace): cross-thread interval
    endpoint pairs per location with at least one writer. *)

val enumerate_log :
  ?budget:Dlsolver.Idl.budget -> ?limit:int -> Log.t -> (flip * solved) list
(** Solve every log-only candidate under the budget.  Every candidate
    appears in the output — budget exhaustion yields [SolveAborted], never
    a silently dropped schedule. *)

(** {1 Bench statistics} *)

type stats = {
  st_label : string;
  st_candidates : int;
  st_same : int;
  st_divergent : int;
  st_crashed : int;
  st_stuck : int;
  st_infeasible : int;
  st_aborted : int;
  st_resolve_s : float;     (** total witness-seeded re-solve time *)
  st_fresh_s : float;       (** total fresh-solve time (budget-capped) *)
  st_fresh_aborted : int;   (** fresh solves that hit the cap *)
  st_sched_per_s : float;   (** candidates evaluated per second, end to end *)
}

val measure :
  ?budget:Dlsolver.Idl.budget ->
  ?fresh_budget:Dlsolver.Idl.budget ->
  ?limit:int ->
  label:string ->
  context ->
  stats
(** Serial per-workload measurement (run {e inside} a per-workload pool
    job; it must not fan out again): every candidate is re-solved hinted
    and fresh, executed, and classified. *)

val stats_to_json : stats list -> string
val stats_of_json : string -> stats list
(** Round-trip partner of {!stats_to_json} (accepts exactly its output
    format; used by the bench artifact test). *)
