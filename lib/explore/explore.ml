(** Schedule-space exploration and flaky-test hunting (see explore.mli and
    DESIGN.md, "Schedule-space exploration: flip soundness and minimality").

    The pipeline for one flip set:

    + {e relax}: the read intervals touching each flipped pair — and the
      lock-acquisition intervals of the two flipped threads — lose their
      source pins ([Constraints.generate ~free]); the flip endpoints
      materialize as order variables ([~extra_events]);
    + {e invert}: one hard atom [O(b) < O(a)] per flip, appended after the
      base hard constraints;
    + {e re-solve}: [Idl.solve ?hint] seeded with the generation witness —
      the recorded schedule is a model of everything except the flip atoms,
      so the theory solver only relaxes the cone the flip actually moves;
    + {e validate}: {!Light_core.Validate.check ~free} — thread order,
      total order, and every dependence the relaxation kept;
    + {e re-execute}: replay with blind-write suppression off, so every
      executed step is a legal program step and any crash is a genuine
      interleaving;
    + {e classify}: crashes, divergence of the Theorem-1 observables or the
      final heap, stalls, infeasibility, or budget exhaustion — every
      candidate is accounted for, none silently dropped. *)

open Runtime
module Log = Light_core.Log

(* ------------------------------------------------------------------ *)
(* Flips                                                               *)
(* ------------------------------------------------------------------ *)

type flip = {
  fa : Log.evt;
  fb : Log.evt;
  f_loc : Loc.t;
  fa_site : int;
  fb_site : int;
  fa_kind : Event.akind;
  fb_kind : Event.akind;
  f_racy : bool;
}

let flip_key (f : flip) = (f.fa, f.fb, f.f_loc)

let pp_flip fmt (f : flip) =
  Fmt.pf fmt "%s(%d,%d)@@%d <-> %s(%d,%d)@@%d on %a%s"
    (Event.akind_str f.fa_kind) (fst f.fa) (snd f.fa) f.fa_site
    (Event.akind_str f.fb_kind) (fst f.fb) (snd f.fb) f.fb_site Loc.pp f.f_loc
    (if f.f_racy then " [racy]" else "")

let flip_compare (a : flip) (b : flip) = compare (flip_key a) (flip_key b)

let toggle (s : flip list) (f : flip) : flip list =
  if List.exists (fun g -> flip_key g = flip_key f) s then
    List.filter (fun g -> flip_key g <> flip_key f) s
  else List.sort flip_compare (f :: s)

(* ------------------------------------------------------------------ *)
(* Relaxation and solving                                              *)
(* ------------------------------------------------------------------ *)

let relaxation (log : Log.t) (flips : flip list) : Log.evt list * Log.evt list =
  let ivs = Light_core.Constraints.intervals_of_log log in
  let tids =
    List.concat_map (fun f -> [ fst f.fa; fst f.fb ]) flips |> List.sort_uniq compare
  in
  let touches (e : Log.evt) (iv : Light_core.Constraints.interval) =
    fst iv.start_e = fst e && snd iv.start_e <= snd e && snd e <= snd iv.end_e
  in
  let free = Hashtbl.create 16 in
  List.iter
    (fun (iv : Light_core.Constraints.interval) ->
      if iv.src <> None then begin
        let involved =
          (* a data interval containing a flip endpoint on the flipped
             location: its read-from write may legitimately change *)
          List.exists
            (fun f ->
              Loc.equal iv.iv_loc f.f_loc && (touches f.fa iv || touches f.fb iv))
            flips
          (* lock-acquisition pins of the flipped threads: freeing them lets
             the two critical-section orders invert (the atomicity-violation
             case, where the racy pair itself is lock-protected); spawn/join
             and condition ghosts stay pinned — wakeup steering and thread
             lifetimes are not up for negotiation *)
          || (iv.iv_loc.Loc.fld = Loc.lock_fld && List.mem (fst iv.start_e) tids)
        in
        if involved then Hashtbl.replace free iv.start_e ()
      end)
    ivs;
  let extra = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace extra f.fa ();
      Hashtbl.replace extra f.fb ())
    flips;
  let keys t = Hashtbl.fold (fun k () acc -> k :: acc) t [] |> List.sort compare in
  (keys free, keys extra)

(* Critical sections reconstructed from the log alone: per lock location
   and thread, each recorded acquisition read pairs with the thread's next
   recorded write of the lock ghost (its release — possibly a wait's
   releasing write).  A release the log never references (no later acquire
   read it) degrades the section to its acquire point, which still excludes
   foreign acquires from sitting on it. *)
let lock_sections (log : Log.t) :
    (Loc.t * (Log.evt * Log.evt) list) list =
  let by_loc =
    List.fold_left
      (fun m (iv : Light_core.Constraints.interval) ->
        if iv.iv_loc.Loc.fld = Loc.lock_fld then
          Loc.Map.update iv.iv_loc
            (fun p -> Some (iv :: Option.value ~default:[] p))
            m
        else m)
      Loc.Map.empty
      (Light_core.Constraints.intervals_of_log log)
  in
  Loc.Map.fold
    (fun loc ivs acc ->
      let per_tid : (int, (int * bool) list ref) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun (iv : Light_core.Constraints.interval) ->
          let t = fst iv.start_e in
          let entry = (snd iv.start_e, iv.writes) in
          match Hashtbl.find_opt per_tid t with
          | Some l -> l := entry :: !l
          | None -> Hashtbl.add per_tid t (ref [ entry ]))
        ivs;
      let sections =
        Hashtbl.fold
          (fun t l acc ->
            let sorted = List.sort compare !l in
            let rec walk = function
              | (c, false) :: rest ->
                let rel =
                  List.find_map (fun (c', w) -> if w then Some c' else None) rest
                in
                ((t, c), (t, Option.value ~default:c rel)) :: walk rest
              | (_, true) :: rest -> walk rest
              | [] -> []
            in
            walk sorted @ acc)
          per_tid []
        |> List.sort compare
      in
      (loc, sections) :: acc)
    by_loc []
  |> List.sort compare

(* Exact critical sections from an access trace: LockAcqRead (and a wait's
   reacquisition read) opens a section of its thread on the lock location,
   LockRelWrite / WaitRelWrite closes it.  Unlike {!lock_sections} this
   sees releases the log never referenced (a final release no later acquire
   reads), which is exactly the case where the log-derived section
   under-approximates and the solver could slide a foreign acquire into a
   still-open region. *)
let trace_sections (trace : Event.access list) :
    (Loc.t * (Log.evt * Log.evt) list) list =
  let open_ : (int * Loc.t, Log.evt) Hashtbl.t = Hashtbl.create 8 in
  let out : (Loc.t, (Log.evt * Log.evt) list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (a : Event.access) ->
      match a.ghost with
      | Event.LockAcqRead | Event.WaitReacqRead ->
        Hashtbl.replace open_ (a.tid, a.loc) (a.tid, a.c)
      | Event.LockRelWrite | Event.WaitRelWrite -> (
        match Hashtbl.find_opt open_ (a.tid, a.loc) with
        | Some acq ->
          Hashtbl.remove open_ (a.tid, a.loc);
          let sec = (acq, (a.tid, a.c)) in
          (match Hashtbl.find_opt out a.loc with
          | Some l -> l := sec :: !l
          | None -> Hashtbl.add out a.loc (ref [ sec ]))
        | None -> ())
      | _ -> ())
    trace;
  Hashtbl.fold (fun loc l acc -> (loc, List.sort compare !l) :: acc) out []
  |> List.sort compare

type solve_verdict =
  | Feasible of Light_core.Replayer.schedule
  | Infeasible
  | SolveAborted

type solved = {
  sv : solve_verdict;
  free : Log.evt list;
  solve_time_s : float;
  sv_vars : int;
}

let solve_flips ?budget ?(hinted = true) ?sections (log : Log.t)
    (flips : flip list) : solved =
  let sections =
    match sections with Some s -> s | None -> lock_sections log
  in
  let free, flip_events = relaxation log flips in
  (* critical-section endpoints the log never referenced must become order
     variables too, or the mutual-exclusion clauses below could not name
     them *)
  let extra_events =
    if flips = [] then flip_events
    else
      List.sort_uniq compare
        (flip_events
        @ List.concat_map
            (fun (_, secs) -> List.concat_map (fun (a, r) -> [ a; r ]) secs)
            sections)
  in
  let cs = Light_core.Constraints.generate ~free ~extra_events log in
  let atoms =
    List.filter_map
      (fun f ->
        match (Hashtbl.find_opt cs.vars f.fb, Hashtbl.find_opt cs.vars f.fa) with
        | Some b, Some a -> Some (Dlsolver.Idl.lt b a)
        | _ -> None)
      flips
  in
  (* with lock pins freed, the recorded acquire order no longer chains
     critical sections; these clauses restore what the runtime will enforce
     anyway — two critical sections of one lock never overlap — so the
     solver cannot emit a schedule the replay gate must stall on.  With no
     flips nothing is freed and no clause is added: the problem is
     byte-identical to the base one. *)
  let mutex =
    if flips = [] then []
    else
      List.concat_map
        (fun (_, secs) ->
          let rec pairs = function
            | s :: rest -> List.map (fun s' -> (s, s')) rest @ pairs rest
            | [] -> []
          in
          List.filter_map
            (fun (((a1, r1) : Log.evt * Log.evt), ((a2, r2) : Log.evt * Log.evt)) ->
              if fst a1 = fst a2 then None
              else
                match
                  ( Hashtbl.find_opt cs.vars a1, Hashtbl.find_opt cs.vars r1,
                    Hashtbl.find_opt cs.vars a2, Hashtbl.find_opt cs.vars r2 )
                with
                | Some va1, Some vr1, Some va2, Some vr2 ->
                  let l1 = Dlsolver.Idl.lt vr1 va2
                  and l2 = Dlsolver.Idl.lt vr2 va1 in
                  (* hint-true literal first: the recorded order stays the
                     solver's first descent *)
                  let cl =
                    match cs.hint with
                    | Some h when h.(l1.Dlsolver.Idl.u) - h.(l1.Dlsolver.Idl.v) > l1.k
                      -> [| l2; l1 |]
                    | _ -> [| l1; l2 |]
                  in
                  Some cl
                | _ -> None)
            (pairs secs))
        sections
  in
  (* Atomicity-window pinning.  When both flip endpoints sit inside
     critical sections of the same lock, inverting the pair alone is not
     enough: mutex keeps the sections disjoint, and the hint-guided solver
     will happily slide the flipped section past {e all} of the victim's
     sections — a feasible but boring neighbor.  The interesting placement
     is the gap between the victim's section and its next one on the same
     lock (the atomicity window the recorded pins used to seal), so pin
     [rel(flipped section) < acq(victim's next section)].  If that window
     placement is contradictory, the flip honestly reports infeasible. *)
  let window =
    if flips = [] then []
    else
      List.concat_map
        (fun f ->
          List.concat_map
            (fun ((_ : Loc.t), secs) ->
              let find_sec (e : Log.evt) =
                List.find_opt
                  (fun ((ta, ca), ((_ : int), cr)) ->
                    ta = fst e && ca <= snd e && snd e <= cr)
                  secs
              in
              match (find_sec f.fa, find_sec f.fb) with
              | Some sa, Some sb when sa <> sb ->
                let (tb, _), (_, rb_c) = sb in
                let next =
                  List.filter
                    (fun (((ta, ca), _) : Log.evt * Log.evt) ->
                      ta = tb && ca > rb_c)
                    secs
                  |> List.sort compare
                  |> function
                  | n :: _ -> Some n
                  | [] -> None
                in
                (match next with
                | Some (next_acq, _) -> (
                  let _, sa_rel = sa in
                  match
                    ( Hashtbl.find_opt cs.vars sa_rel,
                      Hashtbl.find_opt cs.vars next_acq )
                  with
                  | Some vr, Some va -> [ Dlsolver.Idl.lt vr va ]
                  | _ -> [])
                | None -> [])
              | _ -> [])
            sections)
        flips
  in
  let problem =
    {
      cs.problem with
      Dlsolver.Idl.hard = cs.problem.hard @ atoms @ window;
      clauses = Array.append cs.problem.clauses (Array.of_list mutex);
    }
  in
  let hint = if hinted then cs.hint else None in
  let t0 = Unix.gettimeofday () in
  let res = Dlsolver.Idl.solve ?budget ?hint problem in
  let dt = Unix.gettimeofday () -. t0 in
  let sv =
    match res with
    | Dlsolver.Idl.Sat (model, _) ->
      Feasible (Light_core.Replayer.build_schedule log cs model)
    | Unsat _ -> Infeasible
    | Aborted _ -> SolveAborted
  in
  { sv; free; solve_time_s = dt; sv_vars = problem.Dlsolver.Idl.nvars }

(* ------------------------------------------------------------------ *)
(* Context                                                             *)
(* ------------------------------------------------------------------ *)

type context = {
  recording : Light_core.Light.recording;
  trace : Event.access list;
  racy_pairs : (int * int) list;
  base_order : Log.evt array;
  sections : (Loc.t * (Log.evt * Log.evt) list) list;
      (** exact critical sections (from the trace) for the mutex clauses *)
}

let norm_pair a b = (min a b, max a b)

let make_context ?(variant = Light_core.Light.v_basic) ?(max_steps = 400_000)
    ?(seed = 0) ~(make_sched : unit -> Sched.t) (p : Lang.Ast.program) :
    (context, string) result =
  let plan = Plan.all_shared in
  let r =
    Light_core.Light.record ~variant ~plan ~seed ~max_steps ~sched:(make_sched ()) p
  in
  (* second, byte-identical run (fresh scheduler instance from the same
     constructor; both tools' hooks are passive and the D(t) counters are
     plan-independent under [all_shared]) for the trace + dynamic races *)
  let hb = Analysis.Hb_detector.create () in
  let traced =
    Interp.run
      ~hooks:(Analysis.Hb_detector.hooks hb)
      ~plan ~max_steps ~collect_trace:true ~seed ~sched:(make_sched ()) p
  in
  if traced.Interp.counters <> r.outcome.Interp.counters then
    Error "trace rerun diverged from the recording (non-constructor scheduler?)"
  else begin
    let dyn =
      List.map
        (fun (rc : Analysis.Hb_detector.race) -> norm_pair rc.site1 rc.site2)
        (Analysis.Hb_detector.races hb)
    in
    (* the MHP + lockset refinement applies here too: pairs the analysis
       proves ordered, covered, or never-parallel are off the flip
       frontier, so exploration spends its budget on pairs that can
       actually reorder (lint ranks the same set) *)
    let static_ =
      List.map
        (fun (rp : Analysis.Analyze.race_pair) ->
          norm_pair rp.t1.Analysis.Sites.sid rp.t2.Analysis.Sites.sid)
        (Instrument.Transformer.transform p).Instrument.Transformer.analysis
          .Analysis.Analyze.races
    in
    let racy_pairs = List.sort_uniq compare (dyn @ static_) in
    match Light_core.Replayer.solve r.log with
    | { Light_core.Replayer.schedule = Some sch; _ } ->
      Ok { recording = r; trace = traced.Interp.trace; racy_pairs;
           base_order = sch.Light_core.Replayer.order;
           sections = trace_sections traced.Interp.trace }
    | { result_kind = Unsatisfiable; _ } -> Error "base constraint system unsatisfiable"
    | _ -> Error "base solve exhausted its budget"
  end

(* ------------------------------------------------------------------ *)
(* Candidates                                                          *)
(* ------------------------------------------------------------------ *)

(* DPOR-flavored: walking the trace, each data access conflicts with the
   latest access of every other thread on the same location (>= 1 write);
   the earliest such adjacency per site pair is the flip candidate.  The
   enumeration depends only on the trace and the race evidence — no clocks,
   no randomness — so candidate order is deterministic. *)
let candidates ?(limit = 32) (ctx : context) : flip list =
  (* per (loc, tid): the latest access and the latest {e write}.  A read
     may trail another thread's conflicting write by several of that
     thread's own reads (check-then-act idioms), so pairing only against
     the latest access would miss the write entirely. *)
  let last : (int, Event.access * Event.access option) Hashtbl.t Loc.Tbl.t =
    Loc.Tbl.create 256
  in
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun (a : Event.access) ->
      if a.ghost = Event.NotGhost then begin
        let per_tid =
          match Loc.Tbl.find_opt last a.loc with
          | Some t -> t
          | None ->
            let t = Hashtbl.create 4 in
            Loc.Tbl.add last a.loc t;
            t
        in
        let others =
          Hashtbl.fold
            (fun tid prev acc -> if tid <> a.tid then (tid, prev) :: acc else acc)
            per_tid []
          |> List.sort compare
        in
        let emit (prev : Event.access) =
          if prev.kind = Event.Write || a.kind = Event.Write then begin
            let skey = norm_pair prev.site a.site in
            if not (Hashtbl.mem seen skey) then begin
              Hashtbl.add seen skey ();
              out :=
                {
                  fa = (prev.tid, prev.c);
                  fb = (a.tid, a.c);
                  f_loc = a.loc;
                  fa_site = prev.site;
                  fb_site = a.site;
                  fa_kind = prev.kind;
                  fb_kind = a.kind;
                  f_racy = List.mem skey ctx.racy_pairs;
                }
                :: !out
            end
          end
        in
        List.iter
          (fun ((_ : int), ((prev, prev_w) : Event.access * Event.access option)) ->
            emit prev;
            match prev_w with
            | Some w when w.c <> prev.c -> emit w
            | _ -> ())
          others;
        let prev_w =
          match Hashtbl.find_opt per_tid a.tid with
          | Some (_, w) -> w
          | None -> None
        in
        Hashtbl.replace per_tid a.tid
          (a, if a.kind = Event.Write then Some a else prev_w)
      end)
    ctx.trace;
  let all = List.rev !out in
  let racy, rest = List.partition (fun f -> f.f_racy) all in
  List.filteri (fun i _ -> i < limit) (racy @ rest)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Same
  | Divergent of string list
  | Crashed of Interp.crash list
  | Stuck of string
  | InfeasibleFlip
  | AbortedFlip

let verdict_name = function
  | Same -> "same"
  | Divergent _ -> "divergent"
  | Crashed _ -> "crashed"
  | Stuck _ -> "stuck"
  | InfeasibleFlip -> "infeasible"
  | AbortedFlip -> "aborted"

type explored = {
  ex_flip : flip;
  ex_verdict : verdict;
  ex_validate : string list;
  ex_solve_s : float;
}

let run_schedule (ctx : context) (sch : Light_core.Replayer.schedule) :
    Interp.outcome =
  Light_core.Replayer.replay ~suppress:false ctx.recording.program
    ~plan:ctx.recording.plan sch

let classify (ctx : context) (o : Interp.outcome) : verdict =
  if o.crashes <> [] then Crashed o.crashes
  else
    match o.status with
    | Interp.Deadlock ts ->
      Stuck (Printf.sprintf "deadlock (threads %s)"
               (String.concat "," (List.map string_of_int ts)))
    | Interp.GateStuck ts ->
      Stuck (Printf.sprintf "gate stall (threads %s)"
               (String.concat "," (List.map string_of_int ts)))
    | Interp.StepLimit -> Stuck "step limit"
    | Interp.AllFinished -> (
      let ms =
        Interp.replay_matches ~original:ctx.recording.outcome ~replay:o
      in
      let heap =
        if o.final_heap <> ctx.recording.outcome.Interp.final_heap then
          [ "final_heap differs" ]
        else []
      in
      match ms @ heap with [] -> Same | diffs -> Divergent diffs)

let eval_flips ?budget (ctx : context) (flips : flip list) :
    verdict * string list * float =
  let s = solve_flips ?budget ~sections:ctx.sections ctx.recording.log flips in
  match s.sv with
  | Infeasible -> (InfeasibleFlip, [], s.solve_time_s)
  | SolveAborted -> (AbortedFlip, [], s.solve_time_s)
  | Feasible sch ->
    let errs =
      Light_core.Validate.check ~free:s.free ctx.recording.log sch
    in
    let o = run_schedule ctx sch in
    (classify ctx o, errs, s.solve_time_s)

let explore ?pool ?budget ?limit (ctx : context) : explored list =
  let cands = candidates ?limit ctx in
  Engine.Batch.map ?pool cands ~f:(fun f ->
      let v, errs, dt = eval_flips ?budget ctx [ f ] in
      { ex_flip = f; ex_verdict = v; ex_validate = errs; ex_solve_s = dt })

(* ------------------------------------------------------------------ *)
(* Reproducers                                                         *)
(* ------------------------------------------------------------------ *)

type reproducer = {
  rp_flips : flip list;
  rp_log : Log.t;
  rp_sections : (Loc.t * (Log.evt * Log.evt) list) list;
  rp_expected : (int * int * string) list;
}

let reproducer_to_string (rp : reproducer) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "LIGHT-REPRO v1\n";
  List.iter
    (fun (f : flip) ->
      Buffer.add_string buf
        (Printf.sprintf "flip %d %d %d %s %d %d %d %s %d %d %s\n" (fst f.fa)
           (snd f.fa) f.fa_site (Event.akind_str f.fa_kind) (fst f.fb)
           (snd f.fb) f.fb_site (Event.akind_str f.fb_kind)
           (if f.f_racy then 1 else 0)
           f.f_loc.Loc.obj
           (Loc.fld_name f.f_loc.Loc.fld)))
    rp.rp_flips;
  List.iter
    (fun ((loc : Loc.t), secs) ->
      List.iter
        (fun ((ta, ca), (tr, cr)) ->
          Buffer.add_string buf
            (Printf.sprintf "section %d %d %d %d %d %s\n" ta ca tr cr loc.Loc.obj
               (Loc.fld_name loc.Loc.fld)))
        secs)
    rp.rp_sections;
  List.iter
    (fun (tid, site, msg) ->
      Buffer.add_string buf (Printf.sprintf "expect %d %d %s\n" tid site msg))
    rp.rp_expected;
  let log_s = Log.to_string rp.rp_log in
  Buffer.add_string buf (Printf.sprintf "log %d\n" (String.length log_s));
  Buffer.add_string buf log_s;
  Buffer.contents buf

let reproducer_of_string (s : string) : (reproducer, string) result =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines = String.split_on_char '\n' s in
  match lines with
  | magic :: rest when magic = "LIGHT-REPRO v1" ->
    let flips = ref [] and expected = ref [] and sections = ref [] in
    let rec go consumed = function
      | [] -> err "missing log section"
      | line :: rest -> (
        let consumed = consumed + String.length line + 1 in
        match String.split_on_char ' ' line with
        | "flip" :: ta :: ca :: sa :: ka :: tb :: cb :: sb :: kb :: racy :: obj
          :: fld_toks ->
          let kind = function
            | "R" -> Ok Event.Read
            | "W" -> Ok Event.Write
            | k -> err "bad access kind %S" k
          in
          (match (kind ka, kind kb) with
          | Ok fa_kind, Ok fb_kind ->
            flips :=
              {
                fa = (int_of_string ta, int_of_string ca);
                fb = (int_of_string tb, int_of_string cb);
                f_loc =
                  { Loc.obj = int_of_string obj;
                    fld = Loc.fld_of_name (String.concat " " fld_toks) };
                fa_site = int_of_string sa;
                fb_site = int_of_string sb;
                fa_kind;
                fb_kind;
                f_racy = racy = "1";
              }
              :: !flips;
            go consumed rest
          | Error e, _ | _, Error e -> Error e)
        | "section" :: ta :: ca :: tr :: cr :: obj :: fld_toks ->
          let loc =
            { Loc.obj = int_of_string obj;
              fld = Loc.fld_of_name (String.concat " " fld_toks) }
          in
          let sec =
            ( (int_of_string ta, int_of_string ca),
              (int_of_string tr, int_of_string cr) )
          in
          sections := (loc, sec) :: !sections;
          go consumed rest
        | "expect" :: tid :: site :: msg_toks ->
          expected :=
            (int_of_string tid, int_of_string site, String.concat " " msg_toks)
            :: !expected;
          go consumed rest
        | [ "log"; n ] ->
          let n = int_of_string n in
          if consumed + n > String.length s then err "truncated log section"
          else begin
            (* regroup the flat section lines per location, preserving order *)
            let by_loc = Hashtbl.create 8 and order = ref [] in
            List.iter
              (fun (loc, sec) ->
                match Hashtbl.find_opt by_loc loc with
                | Some l -> l := sec :: !l
                | None ->
                  Hashtbl.add by_loc loc (ref [ sec ]);
                  order := loc :: !order)
              (List.rev !sections);
            let rp_sections =
              List.rev_map
                (fun loc -> (loc, List.rev !(Hashtbl.find by_loc loc)))
                !order
            in
            Ok
              {
                rp_flips = List.rev !flips;
                rp_log = Log.of_string (String.sub s consumed n);
                rp_sections;
                rp_expected = List.rev !expected;
              }
          end
        | _ -> err "unparseable line %S" line)
    in
    (try go (String.length magic + 1) rest
     with Failure m -> err "parse error: %s" m)
  | _ -> err "not a LIGHT-REPRO file"

let run_reproducer ?budget ?max_steps (p : Lang.Ast.program) (rp : reproducer) :
    (Interp.outcome, string) result =
  let s = solve_flips ?budget ~sections:rp.rp_sections rp.rp_log rp.rp_flips in
  match s.sv with
  | Infeasible -> Error "reproducer flips are infeasible for this log"
  | SolveAborted -> Error "solver budget exhausted"
  | Feasible sch ->
    Ok
      (Light_core.Replayer.replay ?max_steps ~suppress:false p
         ~plan:Plan.all_shared sch)

(* ------------------------------------------------------------------ *)
(* Hunting                                                             *)
(* ------------------------------------------------------------------ *)

let crash_sigs (o : Interp.outcome) : (int * int * string) list =
  List.sort compare
    (List.map (fun (c : Interp.crash) -> (c.Interp.tid, c.site, c.msg)) o.crashes)

type hunt_result = {
  hr_repro : reproducer option;
  hr_outcome : Interp.outcome option;
  hr_tried : int;
}

let hunt ?pool ?budget ?(limit = 32) ?(depth = 2) (ctx : context) : hunt_result =
  let cands = candidates ~limit ctx in
  let tried = ref 0 in
  (* evaluate a whole BFS level across the pool; the winner is the first
     crashing flip set in candidate order, independent of the pool size *)
  let eval_level (sets : flip list list) :
      (flip list * Interp.outcome) option =
    let results =
      Engine.Batch.map ?pool sets ~f:(fun flips ->
          match
            (solve_flips ?budget ~sections:ctx.sections ctx.recording.log flips).sv
          with
          | Feasible sch ->
            let o = run_schedule ctx sch in
            if o.Interp.crashes <> [] then Some o else None
          | Infeasible | SolveAborted -> None)
    in
    tried := !tried + List.length sets;
    List.find_map
      (fun (flips, r) -> Option.map (fun o -> (flips, o)) r)
      (List.combine sets results)
  in
  let level1 = List.map (fun f -> [ f ]) cands in
  let level2 () =
    if depth < 2 then []
    else begin
      (* pairs over the strongest singles — racy-ranked candidate order *)
      let top = List.filteri (fun i _ -> i < 12) cands in
      let arr = Array.of_list top in
      let n = Array.length arr in
      let out = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          out := [ arr.(i); arr.(j) ] :: !out
        done
      done;
      List.rev !out
    end
  in
  let found =
    match eval_level level1 with
    | Some hit -> Some hit
    | None -> ( match level2 () with [] -> None | l2 -> eval_level l2)
  in
  match found with
  | None -> { hr_repro = None; hr_outcome = None; hr_tried = !tried }
  | Some (flips, outcome) ->
    let target = crash_sigs outcome in
    (* greedy shrink to removal-minimality: drop any flip whose absence
       preserves the exact failure signature; iterate to a fixpoint *)
    let still_fails (flips : flip list) : Interp.outcome option =
      incr tried;
      match
        (solve_flips ?budget ~sections:ctx.sections ctx.recording.log flips).sv
      with
      | Feasible sch ->
        let o = run_schedule ctx sch in
        if crash_sigs o = target then Some o else None
      | Infeasible | SolveAborted -> None
    in
    let rec shrink flips outcome =
      let rec try_drop pre = function
        | [] -> None
        | f :: post -> (
          let candidate = List.rev_append pre post in
          if candidate = [] then try_drop (f :: pre) post
          else
            match still_fails candidate with
            | Some o -> Some (candidate, o)
            | None -> try_drop (f :: pre) post)
      in
      match try_drop [] flips with
      | Some (smaller, o) -> shrink smaller o
      | None -> (flips, outcome)
    in
    let minimal, outcome = shrink flips outcome in
    {
      hr_repro =
        Some
          {
            rp_flips = List.sort flip_compare minimal;
            rp_log = ctx.recording.log;
            rp_sections = ctx.sections;
            rp_expected = crash_sigs outcome;
          };
      hr_outcome = Some outcome;
      hr_tried = !tried;
    }

(* ------------------------------------------------------------------ *)
(* Log-only enumeration                                                *)
(* ------------------------------------------------------------------ *)

let log_candidates ?(limit = 32) (log : Log.t) : flip list =
  let ivs = Light_core.Constraints.intervals_of_log log in
  let by_loc =
    List.fold_left
      (fun m (iv : Light_core.Constraints.interval) ->
        Loc.Map.update iv.iv_loc
          (fun p -> Some (iv :: Option.value ~default:[] p))
          m)
      Loc.Map.empty ivs
  in
  let out = ref [] and seen = Hashtbl.create 64 in
  Loc.Map.iter
    (fun loc ivs ->
      let ivs =
        List.sort
          (fun (a : Light_core.Constraints.interval) b -> compare a.obs b.obs)
          ivs
      in
      List.iter
        (fun (i : Light_core.Constraints.interval) ->
          List.iter
            (fun (j : Light_core.Constraints.interval) ->
              if
                i.obs < j.obs
                && fst i.start_e <> fst j.start_e
                && (i.writes || j.writes)
              then begin
                let key = (i.start_e, j.start_e, loc) in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  let kind_of (iv : Light_core.Constraints.interval) =
                    if iv.writes then Event.Write else Event.Read
                  in
                  out :=
                    {
                      fa = i.end_e;
                      fb = j.start_e;
                      f_loc = loc;
                      fa_site = 0;
                      fb_site = 0;
                      fa_kind = kind_of i;
                      fb_kind = kind_of j;
                      f_racy = false;
                    }
                    :: !out
                end
              end)
            ivs)
        ivs)
    by_loc;
  List.filteri (fun i _ -> i < limit) (List.rev !out)

let enumerate_log ?budget ?limit (log : Log.t) : (flip * solved) list =
  List.map (fun f -> (f, solve_flips ?budget log [ f ])) (log_candidates ?limit log)

(* ------------------------------------------------------------------ *)
(* Bench statistics                                                    *)
(* ------------------------------------------------------------------ *)

type stats = {
  st_label : string;
  st_candidates : int;
  st_same : int;
  st_divergent : int;
  st_crashed : int;
  st_stuck : int;
  st_infeasible : int;
  st_aborted : int;
  st_resolve_s : float;
  st_fresh_s : float;
  st_fresh_aborted : int;
  st_sched_per_s : float;
}

let measure ?budget ?fresh_budget ?limit ~label (ctx : context) : stats =
  let fresh_budget =
    match fresh_budget with
    | Some b -> b
    | None -> { Dlsolver.Idl.default_budget with max_time_s = 5.0 }
  in
  let cands = candidates ?limit ctx in
  let same = ref 0 and divergent = ref 0 and crashed = ref 0 in
  let stuck = ref 0 and infeasible = ref 0 and aborted = ref 0 in
  let resolve_s = ref 0.0 and fresh_s = ref 0.0 and fresh_aborted = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun f ->
      let v, _errs, dt = eval_flips ?budget ctx [ f ] in
      resolve_s := !resolve_s +. dt;
      (match v with
      | Same -> incr same
      | Divergent _ -> incr divergent
      | Crashed _ -> incr crashed
      | Stuck _ -> incr stuck
      | InfeasibleFlip -> incr infeasible
      | AbortedFlip -> incr aborted);
      (* fresh solve of the same flipped system, capped so a pathological
         unhinted search aborts honestly instead of hanging the bench *)
      let fresh =
        solve_flips ~budget:fresh_budget ~hinted:false ~sections:ctx.sections
          ctx.recording.log [ f ]
      in
      fresh_s := !fresh_s +. fresh.solve_time_s;
      match fresh.sv with
      | SolveAborted -> incr fresh_aborted
      | Feasible _ | Infeasible -> ())
    cands;
  let wall = Unix.gettimeofday () -. t0 in
  let n = List.length cands in
  {
    st_label = label;
    st_candidates = n;
    st_same = !same;
    st_divergent = !divergent;
    st_crashed = !crashed;
    st_stuck = !stuck;
    st_infeasible = !infeasible;
    st_aborted = !aborted;
    st_resolve_s = !resolve_s;
    st_fresh_s = !fresh_s;
    st_fresh_aborted = !fresh_aborted;
    st_sched_per_s = (if wall > 0.0 then float_of_int n /. wall else 0.0);
  }

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let stats_to_json (ms : stats list) : string =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"rows\": [\n";
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"candidates\": %d, \"same\": %d, \
            \"divergent\": %d, \"crashed\": %d, \"stuck\": %d, \
            \"infeasible\": %d, \"aborted\": %d, \"resolve_s\": %.6f, \
            \"fresh_s\": %.6f, \"fresh_aborted\": %d, \"sched_per_s\": %.2f}%s\n"
           m.st_label m.st_candidates m.st_same m.st_divergent m.st_crashed
           m.st_stuck m.st_infeasible m.st_aborted m.st_resolve_s m.st_fresh_s
           m.st_fresh_aborted m.st_sched_per_s
           (if i = List.length ms - 1 then "" else ",")))
    ms;
  let tot f = List.fold_left (fun a m -> a +. f m) 0.0 ms in
  let resolve = tot (fun m -> m.st_resolve_s)
  and fresh = tot (fun m -> m.st_fresh_s) in
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"resolve_total_s\": %.6f,\n  \"fresh_total_s\": %.6f,\n  \
        \"speedup\": %.2f\n}\n"
       resolve fresh
       (if resolve > 0.0 then fresh /. resolve else 0.0));
  Buffer.contents buf

(* parsing partner: accepts exactly [stats_to_json]'s output shape *)
let stats_of_json (s : string) : stats list =
  let find_sub (hay : string) (needle : string) (from : int) : int option =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    go from
  in
  let field obj key =
    match find_sub obj ("\"" ^ key ^ "\": ") 0 with
    | None -> failwith ("missing field " ^ key)
    | Some i ->
      let start = i + String.length key + 4 in
      let stop = ref start in
      let depth_str = ref (obj.[start] = '"') in
      if !depth_str then begin
        (* skip the opening quote, scan to the closing one (no escapes in
           workload labels) *)
        incr stop;
        while obj.[!stop] <> '"' do incr stop done;
        String.sub obj start (!stop - start + 1)
      end
      else begin
        while
          !stop < String.length obj
          && obj.[!stop] <> ',' && obj.[!stop] <> '}'
        do
          incr stop
        done;
        String.sub obj start (!stop - start)
      end
  in
  let fint o k = int_of_string (field o k)
  and ffloat o k = float_of_string (field o k)
  and fstr o k = Scanf.sscanf (field o k) "%S" Fun.id in
  let rec objects from acc =
    match find_sub s "{\"workload\"" from with
    | None -> List.rev acc
    | Some i ->
      let j = ref i in
      while s.[!j] <> '}' do incr j done;
      objects (!j + 1) (String.sub s i (!j - i + 1) :: acc)
  in
  List.map
    (fun o ->
      {
        st_label = fstr o "workload";
        st_candidates = fint o "candidates";
        st_same = fint o "same";
        st_divergent = fint o "divergent";
        st_crashed = fint o "crashed";
        st_stuck = fint o "stuck";
        st_infeasible = fint o "infeasible";
        st_aborted = fint o "aborted";
        st_resolve_s = ffloat o "resolve_s";
        st_fresh_s = ffloat o "fresh_s";
        st_fresh_aborted = fint o "fresh_aborted";
        st_sched_per_s = ffloat o "sched_per_s";
      })
    (objects 0 [])
