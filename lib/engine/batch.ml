(** Batch record/replay driver.  See the interface for the contract. *)

open Runtime

type job = {
  label : string;
  program : Lang.Ast.program;
  variant : Light_core.Light.variant;
  make_sched : unit -> Sched.t;
  interp_seed : int;
  max_steps : int;
}

let job ?(label = "job") ?(variant = Light_core.Light.v_both) ?(interp_seed = 0)
    ?(max_steps = 5_000_000) ~make_sched program =
  { label; program; variant; make_sched; interp_seed; max_steps }

let grid ?(variants = Light_core.Light.[ v_basic; v_o1; v_both ]) ?interp_seed
    ~(seeds : int list) ~(sched : seed:int -> Sched.t) ~label program : job list =
  List.concat_map
    (fun seed ->
      List.map
        (fun variant ->
          job
            ~label:
              (Printf.sprintf "%s seed=%d %s" label seed
                 (Light_core.Recorder.variant_name variant))
            ~variant ?interp_seed
            ~make_sched:(fun () -> sched ~seed)
            program)
        variants)
    seeds

let map ?pool ~f xs =
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  Pool.map_list pool ~f xs

let records ?pool (jobs : job list) : Light_core.Light.recording list =
  map ?pool jobs ~f:(fun j ->
      Light_core.Light.record ~variant:j.variant ~sched:(j.make_sched ())
        ~max_steps:j.max_steps ~seed:j.interp_seed j.program)

type roundtrip = {
  rt_job : job;
  rt_result :
    (Light_core.Light.recording * Light_core.Light.replay_result, string) result;
}

let roundtrips ?pool (jobs : job list) : roundtrip list =
  map ?pool jobs ~f:(fun j ->
      {
        rt_job = j;
        rt_result =
          Light_core.Light.record_and_replay ~variant:j.variant
            ~sched:(j.make_sched ()) ~max_steps:j.max_steps ~seed:j.interp_seed
            j.program;
      })
