(** Batch record/replay driver: fans independent Light jobs — one
    (program, scheduler, recorder-variant) roundtrip each — across a
    {!Pool} and merges results in job order.

    Every job carries a {e scheduler constructor} rather than a scheduler
    value: schedulers are stateful, and the job must build its own instance
    inside the worker domain that runs it.  Interpreter state, recorder
    state and the job's RNG are likewise created per job, so jobs share no
    mutable state and the merged result is independent of the pool size. *)

open Runtime

type job = {
  label : string;                    (** for test/diagnostic messages *)
  program : Lang.Ast.program;
  variant : Light_core.Light.variant;
  make_sched : unit -> Sched.t;      (** fresh scheduler per job *)
  interp_seed : int;                 (** seeds program-visible nondeterminism *)
  max_steps : int;
}

val job :
  ?label:string ->
  ?variant:Light_core.Light.variant ->
  ?interp_seed:int ->
  ?max_steps:int ->
  make_sched:(unit -> Sched.t) ->
  Lang.Ast.program ->
  job
(** [variant] defaults to [v_both], [interp_seed] to 0, [max_steps] to the
    recorder's default. *)

val grid :
  ?variants:Light_core.Light.variant list ->
  ?interp_seed:int ->
  seeds:int list ->
  sched:(seed:int -> Sched.t) ->
  label:string ->
  Lang.Ast.program ->
  job list
(** The roundtrip matrix [seeds x variants] (seeds outermost), in
    deterministic order.  [variants] defaults to basic/O1/O1+O2. *)

val map : ?pool:Pool.t -> f:('a -> 'b) -> 'a list -> 'b list
(** Generic deterministic fan-out over the pool ({!Pool.get_default} if
    none is given): results are merged in input order regardless of the
    pool size.  The per-item closure must not touch shared mutable state. *)

val records : ?pool:Pool.t -> job list -> Light_core.Light.recording list
(** Record every job (no replay), merged in job order. *)

type roundtrip = {
  rt_job : job;
  rt_result :
    (Light_core.Light.recording * Light_core.Light.replay_result, string) result;
}

val roundtrips : ?pool:Pool.t -> job list -> roundtrip list
(** Record, solve and replay every job, merged in job order. *)
