(** Bounded blocking MPMC queue — the record service's submission channel.

    A mutex + two condition variables around a [Queue.t] with a hard
    capacity.  Producers choose their back-pressure policy per call:
    {!try_push} returns [`Full] immediately (reject, or park-and-steal in
    the service's producer loop), {!push} blocks until space frees.
    Consumers block in {!pop} until an item arrives or the queue is closed
    {e and} drained — close-then-drain is what gives the service its
    drain-on-shutdown guarantee: every accepted item is still delivered,
    only new submissions are refused.

    Occupancy statistics (peak depth, pushes, blocked pushes/pops) are
    tracked under the same mutex; they are interleaving-dependent, so report
    them behind [LIGHT_TIMINGS] only. *)

type 'a t = {
  q : 'a Queue.t;
  cap : int;
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
  mutable pushes : int;
  mutable blocked_pushes : int;
  mutable blocked_pops : int;
  mutable peak : int;
}

type stats = {
  bq_capacity : int;
  bq_pushes : int;
  bq_blocked_pushes : int;
  bq_blocked_pops : int;
  bq_peak : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    q = Queue.create ();
    cap = capacity;
    m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
    pushes = 0;
    blocked_pushes = 0;
    blocked_pops = 0;
    peak = 0;
  }

let capacity t = t.cap

let length t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n

(* caller holds t.m *)
let enqueue_locked t x =
  Queue.push x t.q;
  t.pushes <- t.pushes + 1;
  let n = Queue.length t.q in
  if n > t.peak then t.peak <- n;
  Condition.signal t.not_empty

let try_push t x =
  Mutex.lock t.m;
  let r =
    if t.closed then `Closed
    else if Queue.length t.q >= t.cap then `Full
    else begin
      enqueue_locked t x;
      `Ok
    end
  in
  Mutex.unlock t.m;
  r

let push t x =
  Mutex.lock t.m;
  let blocked = ref false in
  while (not t.closed) && Queue.length t.q >= t.cap do
    if not !blocked then begin
      blocked := true;
      t.blocked_pushes <- t.blocked_pushes + 1
    end;
    Condition.wait t.not_full t.m
  done;
  let r =
    if t.closed then `Closed
    else begin
      enqueue_locked t x;
      `Ok
    end
  in
  Mutex.unlock t.m;
  r

let pop t =
  Mutex.lock t.m;
  let blocked = ref false in
  while Queue.is_empty t.q && not t.closed do
    if not !blocked then begin
      blocked := true;
      t.blocked_pops <- t.blocked_pops + 1
    end;
    Condition.wait t.not_empty t.m
  done;
  let r =
    if Queue.is_empty t.q then None (* closed and drained *)
    else begin
      let x = Queue.pop t.q in
      Condition.signal t.not_full;
      Some x
    end
  in
  Mutex.unlock t.m;
  r

let try_pop t =
  Mutex.lock t.m;
  let r =
    if Queue.is_empty t.q then None
    else begin
      let x = Queue.pop t.q in
      Condition.signal t.not_full;
      Some x
    end
  in
  Mutex.unlock t.m;
  r

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  (* wake every waiter: parked producers give up, poppers drain then exit *)
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m

let is_closed t =
  Mutex.lock t.m;
  let c = t.closed in
  Mutex.unlock t.m;
  c

let stats t =
  Mutex.lock t.m;
  let s =
    {
      bq_capacity = t.cap;
      bq_pushes = t.pushes;
      bq_blocked_pushes = t.blocked_pushes;
      bq_blocked_pops = t.blocked_pops;
      bq_peak = t.peak;
    }
  in
  Mutex.unlock t.m;
  s
