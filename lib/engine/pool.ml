(** Fixed-size Domain worker pool.  See the interface for the determinism
    contract.

    Implementation notes: the pool keeps [size - 1] long-lived worker
    domains blocked on a task queue.  A [map_array] call claims job indices
    from an atomic counter (work stealing over a static index range), writes
    each result into a dedicated slot of a results array, and merges by
    reading the array left to right — merge order therefore never depends on
    completion order.  The calling domain claims indices like any worker, so
    nested maps cannot deadlock: the caller of the inner map drains its own
    index range even if every helper task is stuck behind other work. *)

type task = unit -> unit

type t = {
  pool_size : int;
  tasks : task Queue.t;
  m : Mutex.t;
  task_ready : Condition.t;
  mutable live : bool;
  mutable domains : unit Domain.t list;
  is_default : bool;
}

let size t = t.pool_size

let default_size () =
  match Sys.getenv_opt "LIGHT_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> min 8 (Domain.recommended_domain_count ())

let rec worker_loop (p : t) : unit =
  Mutex.lock p.m;
  while Queue.is_empty p.tasks && p.live do
    Condition.wait p.task_ready p.m
  done;
  if Queue.is_empty p.tasks then Mutex.unlock p.m (* shutdown *)
  else begin
    let task = Queue.pop p.tasks in
    Mutex.unlock p.m;
    task ();
    worker_loop p
  end

let make ~is_default size =
  let size = max 1 size in
  let p =
    {
      pool_size = size;
      tasks = Queue.create ();
      m = Mutex.create ();
      task_ready = Condition.create ();
      live = true;
      domains = [];
      is_default;
    }
  in
  p.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop p));
  p

let create ?size () =
  make ~is_default:false (match size with Some s -> s | None -> default_size ())

let shutdown (p : t) : unit =
  if p.is_default then invalid_arg "Pool.shutdown: cannot shut down the default pool";
  Mutex.lock p.m;
  p.live <- false;
  Condition.broadcast p.task_ready;
  Mutex.unlock p.m;
  List.iter Domain.join p.domains;
  p.domains <- []

let with_pool ?size f =
  let p = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

let default_m = Mutex.create ()
let default_pool : t option ref = ref None

let get_default () =
  Mutex.lock default_m;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = make ~is_default:true (default_size ()) in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_m;
  p

(* Fan [f 0 .. f (n-1)] across the pool; returns when all calls finished.
   [f] must not raise (map_array wraps). *)
let run_indexed (p : t) (n : int) ~(f : int -> unit) : unit =
  if n > 0 then begin
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let fin_m = Mutex.create () in
    let fin_c = Condition.create () in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          f i;
          if Atomic.fetch_and_add completed 1 + 1 = n then begin
            Mutex.lock fin_m;
            Condition.broadcast fin_c;
            Mutex.unlock fin_m
          end;
          loop ()
        end
      in
      loop ()
    in
    let helpers = min (p.pool_size - 1) (n - 1) in
    if helpers > 0 then begin
      Mutex.lock p.m;
      for _ = 1 to helpers do
        Queue.push worker p.tasks
      done;
      Condition.broadcast p.task_ready;
      Mutex.unlock p.m
    end;
    worker ();
    Mutex.lock fin_m;
    while Atomic.get completed < n do
      Condition.wait fin_c fin_m
    done;
    Mutex.unlock fin_m
  end

let map_array (p : t) ~(f : int -> 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results : ('b, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    run_indexed p n ~f:(fun i ->
        results.(i) <-
          Some
            (match f i xs.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())));
    (* deterministic merge: scan in index order, first failure wins *)
    for i = 0 to n - 1 do
      match results.(i) with
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | _ -> ()
    done;
    Array.map (function Some (Ok v) -> v | _ -> assert false) results
  end

let map_list (p : t) ~(f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (map_array p ~f:(fun _ x -> f x) (Array.of_list xs))
