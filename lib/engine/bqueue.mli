(** Bounded blocking MPMC queue with explicit back-pressure — the record
    service's submission channel.

    Capacity is hard: a full queue either rejects ({!try_push} returns
    [`Full]) or parks the producer ({!push} blocks) until a consumer frees a
    slot.  {!close} refuses new submissions but delivers everything already
    queued ({!pop} returns [None] only once the queue is closed {e and}
    empty), which is the service's drain-on-shutdown guarantee. *)

type 'a t

type stats = {
  bq_capacity : int;
  bq_pushes : int;          (** items accepted *)
  bq_blocked_pushes : int;  (** [push] calls that had to park on a full queue *)
  bq_blocked_pops : int;    (** [pop] calls that had to wait for an item *)
  bq_peak : int;            (** highest queue depth observed *)
}

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Non-blocking submit: [`Full] is the reject-mode back-pressure signal. *)

val push : 'a t -> 'a -> [ `Ok | `Closed ]
(** Parking submit: blocks while the queue is full, returns [`Closed]
    (dropping the item) if the queue closed while waiting.  Only safe when
    some other worker consumes — a producer that is also the only consumer
    must use {!try_push} and drain on [`Full] instead. *)

val pop : 'a t -> 'a option
(** Blocking receive; [None] once the queue is closed and fully drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking receive; [None] when currently empty (closed or not). *)

val close : 'a t -> unit
(** Refuse new submissions and wake all waiters; queued items remain
    poppable.  Idempotent. *)

val is_closed : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int

val stats : 'a t -> stats
(** Occupancy counters (interleaving-dependent: report behind
    [LIGHT_TIMINGS] only). *)
