(** Fixed-size Domain worker pool with a deterministic fan-out/merge
    discipline.

    The pool runs independent jobs across OCaml 5 domains and merges their
    results in {e job-index order}, so the merged output of
    {!map_array}/{!map_list} is identical for pool sizes 1 and N — the
    engine's determinism contract (see DESIGN.md).  The contract requires
    jobs to be self-contained: each job owns its scheduler, RNG and
    interpreter state and touches no mutable state shared with other jobs.
    Every stateful scheduler in this repository is a [unit -> t] constructor
    for exactly this reason.

    The caller participates as a worker, so a pool of size 1 spawns no
    domains at all and executes jobs inline, in order — byte-for-byte the
    serial behavior.  Exceptions raised by jobs are re-raised in the caller,
    lowest job index first. *)

type t

val create : ?size:int -> unit -> t
(** [size] is the total number of workers including the calling domain
    ([size - 1] domains are spawned); it defaults to {!default_size}.
    Values below 1 are clamped to 1. *)

val size : t -> int

val default_size : unit -> int
(** The [LIGHT_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()] capped at 8. *)

val get_default : unit -> t
(** The process-wide shared pool (created on first use with
    {!default_size}).  Batch consumers default to this pool so that one
    process never spawns more than one set of worker domains. *)

val run_indexed : t -> int -> f:(int -> unit) -> unit
(** [run_indexed pool n ~f] runs [f 0 .. f (n-1)] across the pool's workers
    (the caller participates; indices are claimed from an atomic counter)
    and returns when all calls have finished.  [f] must not raise — this is
    the raw fan-out under {!map_array}, exported for long-lived consumers
    like the record service that pin one {e role} (producer/consumer loop)
    per worker instead of mapping a batch. *)

val map_array : t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array pool ~f xs] computes [f i xs.(i)] for every [i], fanning the
    calls across the pool's workers, and returns the results indexed exactly
    like the input.  If any job raised, the exception of the lowest-indexed
    failing job is re-raised after all jobs have settled. *)

val map_list : t -> f:('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over a list, preserving order. *)

val shutdown : t -> unit
(** Terminate and join the pool's domains.  The pool must not be used
    afterwards.  Shutting down the shared default pool is not allowed. *)

val with_pool : ?size:int -> (t -> 'b) -> 'b
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    also on exceptions. *)
