(** Memory locations: object id x interned field id, as in the paper's heap
    domain [Heap = O x FldId -> Val].  Array elements, map entries and the
    ghost fields modeling synchronization primitives (Section 4.3) are all
    encoded in the integer field id, so every layer handles one flat
    location type with O(1) equality/hashing and no per-access allocation.
    Names round-trip through {!Lang.Intern}: [to_string]/[pp]/[fld_name]
    render the original spelling. *)

type t = { obj : Value.objid; fld : int }

val field : Value.objid -> string -> t
(** Named field (interns the name). *)

val field_id : Value.objid -> int -> t
(** Named field by pre-interned id — the resolved-code fast path. *)

(** Array element. *)
val elem : Value.objid -> int -> t

(** Map entry, keyed by value (value-keyed intern cache; no string
    construction in the steady state). *)
val mapkey : Value.objid -> Value.t -> t

val mapkey_fld : Value.t -> int
(** The bare interned field id of a map key — the register-VM fast path,
    which carries object and field separately. *)

(** Global variable slot. *)
val global : string -> t

val global_id : int -> t
(** Global slot by pre-interned id. *)

val lock_ghost : Value.objid -> t
(** The ghost field abstracting a lock's owner/count state: acquisition is
    modeled as a read then a write of it, release as a write. *)

val cond_ghost : Value.objid -> t
(** Written by [notify]/[notifyAll]; read by the matching wait_after. *)

val thread_ghost : int -> t
(** Written at spawn (by the parent) and at termination (by the thread);
    read by the thread's first transition and by [join]. *)

val lock_fld : int
val cond_fld : int
val thread_fld : int
val len_fld : int
(** Pre-interned field ids for the ghosts and the array-length field, fixed
    at module initialization (before any domain spawns). *)

val fld_of_elem : int -> int
(** Arithmetic field-id encoding of array index [i] (no interning). *)

val is_elem_fld : int -> bool
val elem_index : int -> int

val fld_name : int -> string
(** Original spelling of a field id ("x", "#3", "@i7", "$lock", ...). *)

val fld_of_name : string -> int
(** Inverse of [fld_name]: parse "#<i>" arithmetically, intern the rest.
    Used by log readers to map serialized names back to process-local ids. *)

val is_ghost : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
(** [compare] orders by field {e name} (matching the seed's string order) so
    Map/Set iteration is independent of process-local intern-id assignment
    order — a requirement of the engine's determinism contract. *)

val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Map : Map.S with type key = t
module Set : Set.S with type elt = t
