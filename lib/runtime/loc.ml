(** Memory locations: an object id paired with a field id, as in the
    paper's heap domain [Heap = O x FldId -> Val].

    Field names, map keys and the ghost fields that model synchronization
    primitives (Section 4.3 of the paper) are interned into a global integer
    table ({!Lang.Intern}); array elements are encoded arithmetically without
    touching the table.  A location is therefore a pair of immediates with
    O(1) equality/hashing and zero per-access allocation — the seed encoded
    the field as a string, which put a string hash (and, for array/map/ghost
    accesses, a fresh allocation) on every heap access.

    Field-id encoding:
    - [fld >= 0]: intern id of the field name ("x", "$lock", "@i3", ...)
    - [fld < 0]: array element; index [i >= 0] maps to [-2i - 1] (odd) and
      the out-of-bounds probe indices [i < 0] map to [2i - 2] (even), so the
      encoding is injective over all of [int].

    [compare] orders by the *name* (exactly as the seed's string field
    ordering did), not the id: intern ids depend on interning order, which
    depends on how work interleaves across the engine's domain pool, and
    deterministic [Map]/[Set] iteration is what keeps experiment output
    byte-identical for any LIGHT_JOBS. *)

type t = { obj : Value.objid; fld : int }

(* Ghosts (and "len", which every array access consults) are interned at
   module initialization, before any domain is spawned, so their ids are
   fixed small constants in every process. *)
let lock_fld = Lang.Intern.id "$lock"
let cond_fld = Lang.Intern.id "$cond"
let thread_fld = Lang.Intern.id "$thread"
let len_fld = Lang.Intern.id "len"

let fld_of_elem (i : int) : int = if i >= 0 then (-2 * i) - 1 else (2 * i) - 2

let elem_index (fld : int) : int =
  if fld land 1 <> 0 then - ((fld + 1) / 2) else (fld + 2) / 2

let is_elem_fld (fld : int) : bool = fld < 0

let fld_name (fld : int) : string =
  if fld < 0 then "#" ^ string_of_int (elem_index fld) else Lang.Intern.name fld

(* Parse a serialized field name back to an id (log readers): array elements
   round-trip through their "#<i>" spelling, everything else re-interns. *)
let fld_of_name (s : string) : int =
  if String.length s > 1 && s.[0] = '#' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i -> fld_of_elem i
    | None -> Lang.Intern.id s
  else Lang.Intern.id s

let field obj f = { obj; fld = Lang.Intern.id f }
let field_id obj fld = { obj; fld }
let elem obj i = { obj; fld = fld_of_elem i }

(* Map keys are interned through a value-keyed cache so the steady state
   performs no string construction at all ([Value.map_key] allocates).  The
   cache is striped by the key's structural hash: map accesses hit it on
   every heap operation, and with the record service running thousands of
   concurrent sessions a single cache mutex convoys exactly like the
   pre-sharding intern lock did.  Same-key lookups always land on the same
   stripe, so dedup needs no cross-stripe coordination. *)
let mk_stripe_count = 16

type mk_stripe = { mk_m : Mutex.t; mk_tbl : (Value.t, int) Hashtbl.t }

let mk_stripes =
  Array.init mk_stripe_count (fun _ ->
      { mk_m = Mutex.create (); mk_tbl = Hashtbl.create 64 })

let mapkey_fld (k : Value.t) : int =
  let st = mk_stripes.(Hashtbl.hash k land (mk_stripe_count - 1)) in
  Mutex.lock st.mk_m;
  let i =
    match Hashtbl.find_opt st.mk_tbl k with
    | Some i -> i
    | None ->
      let i = Lang.Intern.id ("@" ^ Value.map_key k) in
      Hashtbl.add st.mk_tbl k i;
      i
  in
  Mutex.unlock st.mk_m;
  i

let mapkey obj (k : Value.t) = { obj; fld = mapkey_fld k }
let global g = { obj = 0; fld = Lang.Intern.id g }
let global_id fld = { obj = 0; fld }

(** Ghost field modeling the monitor state (owner/count) of a lock object. *)
let lock_ghost obj = { obj; fld = lock_fld }

(** Ghost field written by [notify]/[notifyAll] and read by the matching
    wait_after transition. *)
let cond_ghost obj = { obj; fld = cond_fld }

(** Ghost location written when thread [t] starts or terminates; the child's
    first transition and the parent's [join] read it. *)
let thread_ghost (t : int) = { obj = -(t + 1); fld = thread_fld }

let is_ghost l =
  l.fld >= 0
  &&
  let n = Lang.Intern.name l.fld in
  String.length n > 0 && n.[0] = '$'

let equal (a : t) (b : t) = a.obj = b.obj && a.fld = b.fld

let compare (a : t) (b : t) =
  match Int.compare a.obj b.obj with
  | 0 -> if a.fld = b.fld then 0 else String.compare (fld_name a.fld) (fld_name b.fld)
  | c -> c

let hash (l : t) = Hashtbl.hash ((l.obj * 65599) + l.fld)

let to_string (l : t) =
  if l.obj = 0 then fld_name l.fld else Printf.sprintf "%d.%s" l.obj (fld_name l.fld)

let pp fmt l = Fmt.string fmt (to_string l)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end)

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)
