(** Thread schedulers.

    The interpreter implements the paper's interleaved semantics: at each
    step the [NoDet] rule nondeterministically selects a runnable thread.  A
    scheduler resolves that nondeterminism.  Seeded schedulers make "original
    runs" reproducible for testing; the sticky scheduler yields realistic
    run-lengths of consecutive same-thread accesses, the pattern exploited by
    optimization O1 (Lemma 4.3). *)

type t = {
  name : string;
  pick : step:int -> runnable:int list -> int;
      (** chooses among the runnable thread ids (non-empty list) *)
  save : unit -> string;
      (** serialize the pick state (epoch checkpoints); line-safe text *)
  load : string -> unit;
      (** restore a state produced by [save] on the same constructor *)
}

(* Pick-state serialization helper: any marshalable value to a single
   line-safe hex token and back.  Used for [Random.State] (which has no
   public accessors) and for compound cursor state. *)
let marshal_hex (v : 'a) : string =
  let s = Marshal.to_string v [] in
  let hex = "0123456789abcdef" in
  let b = Buffer.create (2 * String.length s) in
  String.iter
    (fun c ->
      Buffer.add_char b hex.[Char.code c lsr 4];
      Buffer.add_char b hex.[Char.code c land 15])
    s;
  Buffer.contents b

let unmarshal_hex (h : string) : 'a =
  let n = String.length h / 2 in
  let s = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set s i (Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))
  done;
  Marshal.from_bytes s 0

(* Every scheduler here is a [unit -> t]-style constructor: a [t] value
   carries mutable pick state, and sharing one instance across runs (or
   across domains) leaks schedule state from one run into the next.
   [round_robin] used to be a top-level [t] whose [last] ref was allocated
   once at module init — the archetype of that bug. *)
let round_robin () : t =
  let last = ref (-1) in
  {
    name = "round-robin";
    pick =
      (fun ~step:_ ~runnable ->
        let above = List.filter (fun t -> t > !last) runnable in
        let t = match above with x :: _ -> x | [] -> List.hd runnable in
        last := t;
        t);
    save = (fun () -> string_of_int !last);
    load = (fun s -> last := int_of_string s);
  }

let random ~seed : t =
  let st = ref (Random.State.make [| seed; 0x11 |]) in
  {
    name = Printf.sprintf "random(%d)" seed;
    pick =
      (fun ~step:_ ~runnable ->
        List.nth runnable (Random.State.int !st (List.length runnable)));
    save = (fun () -> marshal_hex !st);
    load = (fun s -> st := (unmarshal_hex s : Random.State.t));
  }

(** Keeps running the current thread; switches with probability
    [1/stickiness] (or when the thread is no longer runnable).  Larger
    [stickiness] produces longer uninterleaved access sequences. *)
let sticky ~seed ~stickiness : t =
  let st = ref (Random.State.make [| seed; 0x22; stickiness |]) in
  let cur = ref (-1) in
  {
    name = Printf.sprintf "sticky(%d,%d)" seed stickiness;
    pick =
      (fun ~step:_ ~runnable ->
        let switch =
          (not (List.mem !cur runnable)) || Random.State.int !st stickiness = 0
        in
        if switch then
          cur := List.nth runnable (Random.State.int !st (List.length runnable));
        !cur);
    save = (fun () -> marshal_hex (!st, !cur));
    load =
      (fun s ->
        let rs, c = (unmarshal_hex s : Random.State.t * int) in
        st := rs;
        cur := c);
  }

(** Follows an explicit thread-id script; once exhausted (or when the
    scripted thread is not runnable) falls back to the first runnable
    thread.  Used by tests and by bug triggers. *)
let scripted (script : int list) : t =
  let rest = ref script in
  {
    name = "scripted";
    pick =
      (fun ~step:_ ~runnable ->
        let rec next () =
          match !rest with
          | [] -> List.hd runnable
          | t :: tl ->
            rest := tl;
            if List.mem t runnable then t else next ()
        in
        next ());
    save = (fun () -> marshal_hex !rest);
    load = (fun s -> rest := (unmarshal_hex s : int list));
  }

(** PCT-style priority scheduler: random fixed priorities with [depth]
    random priority-change points; always runs the highest-priority runnable
    thread.  Good at exposing rare-interleaving bugs. *)
let pct ~seed ~depth ~expected_steps : t =
  let st = ref (Random.State.make [| seed; 0x33 |]) in
  let prio : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let change_points =
    List.init depth (fun _ ->
        if expected_steps <= 0 then 0 else Random.State.int !st expected_steps)
  in
  let get_prio t =
    match Hashtbl.find_opt prio t with
    | Some p -> p
    | None ->
      let p = Random.State.int !st 1_000_000 in
      Hashtbl.add prio t p;
      p
  in
  {
    name = Printf.sprintf "pct(%d,%d)" seed depth;
    pick =
      (fun ~step ~runnable ->
        if List.mem step change_points then begin
          (* demote the currently highest thread *)
          match
            List.sort (fun a b -> compare (get_prio b) (get_prio a)) runnable
          with
          | top :: _ -> Hashtbl.replace prio top (-step)
          | [] -> ()
        end;
        List.fold_left
          (fun best t -> if get_prio t > get_prio best then t else best)
          (List.hd runnable) runnable);
    save =
      (fun () ->
        let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) prio [] in
        marshal_hex (!st, List.sort compare entries));
    load =
      (fun s ->
        let rs, entries = (unmarshal_hex s : Random.State.t * (int * int) list) in
        st := rs;
        Hashtbl.reset prio;
        List.iter (fun (k, v) -> Hashtbl.add prio k v) entries);
  }
