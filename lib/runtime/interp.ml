(** The interleaved-semantics interpreter (Section 3.1 of the paper).

    One [step] executes one transition of one thread, chosen by a
    {!Sched.t}.  Shared accesses at instrumented sites tick the thread-local
    counter [D(t)] and are reported to the installed hooks; synchronization
    primitives are additionally modeled as ghost-field accesses exactly as in
    Section 4.3 (lock acquire = ghost read + ghost write, release = ghost
    write, spawn/join/exit and wait/notify via thread and condition ghosts).

    Programs are executed in slot-resolved form ({!Lang.Resolve}): locals
    live in a [Value.t array] frame indexed by compile-time slots, field and
    global names are pre-interned integers, and [Loc.t] is a pair of
    immediates — no string hashing or per-access allocation on the hot path.
    Hooks are optional: a native run (all hooks absent) never computes
    pre-events or event records at all.

    Object ids are thread-deterministic: [objid = tid * 1_000_000 + k] where
    [k] is the allocating thread's allocation index, so Assumption 1 (thread
    determinism) covers reference values. *)

open Lang

type crash = {
  tid : int;
  site : int;
  line : int;
  msg : string;
  c : int;  (** D(tid) when the crash occurred *)
}

type status_summary =
  | AllFinished
  | Deadlock of int list   (** blocked thread ids *)
  | GateStuck of int list  (** runnable but denied by the replay gate *)
  | StepLimit

type outcome = {
  status : status_summary;
  steps : int;
  crashes : crash list;
  reads : (int * (int * Value.t) list) list;
      (** per thread: (counter, value) of every non-ghost shared read, in
          program order — the observable of Theorem 1 *)
  outputs : (int * string list) list;  (** per thread: printed lines *)
  counters : (int * int) list;         (** final D(t) per thread *)
  syscalls : (int * int * string * Value.t) list;
      (** (tid, idx, name, value) in per-thread order *)
  final_heap : (Value.objid * (string * Value.t) list) list;
      (** the heap at termination: per object (ascending id), fields sorted
          by name (field ids are rendered back to their original names, so
          this is directly comparable with the reference interpreter).
          Object ids are thread-deterministic, so two runs of the same
          program are comparable.  Used by the differential tests; not a
          Theorem-1 observable (replay may suppress blind writes). *)
  trace : Event.access list;           (** full access trace if requested *)
}

(** All hooks are optional; [None] lets the interpreter skip the
    corresponding bookkeeping entirely (no pre-event or event-record
    construction on native runs). *)
type hooks = {
  gate : (Event.pre -> bool) option;
      (** consulted before a shared access (on the first ghost access for
          compound sync transitions); [false] delays the thread *)
  observe : (Event.t -> unit) option;
  on_shared : (tid:int -> c:int -> loc:Loc.t -> kind:Event.akind -> site:int
               -> ghost:Event.ghost_kind -> unit) option;
      (** allocation-free variant of [observe] for shared accesses only: the
          arguments arrive flattened (no [Event.access] record, no [Event.t]
          constructor, no value), so a recorder on this hook pays zero
          allocation per access.  Fired on every instrumented access,
          including ghosts, before [observe]. *)
  syscall_override : (tid:int -> idx:int -> name:string -> Value.t option) option;
      (** replay-run substitution of recorded syscall values (Section 3.2) *)
  choose_wakeup : (lock:Value.objid -> waiters:int list -> int) option;
      (** pick which waiter a [notify] wakes; default FIFO *)
  suppress_write : (Event.pre -> bool) option;
      (** replay-run blind-write suppression (Section 4.2) *)
  on_branch : (tid:int -> taken:bool -> unit) option;
      (** every if/while condition evaluation (used by path-recording tools
          such as Clap); may raise to abort the run *)
}

let default_hooks : hooks =
  {
    gate = None;
    observe = None;
    on_shared = None;
    syscall_override = None;
    choose_wakeup = None;
    suppress_write = None;
    on_branch = None;
  }

(* ------------------------------------------------------------------ *)
(* Runtime state                                                       *)
(* ------------------------------------------------------------------ *)

(* Fields are keyed by interned field id (see Loc); names are restored only
   when building [final_heap]. *)
type obj = { cls : string; fields : (int, Value.t) Hashtbl.t }

(* The continuation is a chain of statement sequences rather than a flat
   list: entering a block (if/while/sync body) pushes one [CSeq] node in
   O(1) instead of map-and-appending the whole body.  [todo] walks the
   resolved statement list in place; the invariant (restored by [norm])
   is that an active continuation never starts with an empty [CSeq]. *)
type cont =
  | CDone
  | CSeq of { mutable todo : Resolve.rstmt list; next : cont }
  | CUnlock of Value.objid * int * cont
      (* end of a sync block; sid for attribution *)

let rec norm (c : cont) : cont =
  match c with CSeq { todo = []; next } -> norm next | c -> c

type frame = {
  mutable cont : cont;
  slots : Value.t array;
  ret_to : int option;  (* caller slot receiving the return value *)
}

type tstatus =
  | Runnable
  | BlockedLock of Value.objid
  | BlockedJoin of int
  | InWait of Value.objid
  | Notified of Value.objid     (* woken: must read the condition ghost *)
  | Reacquiring of Value.objid  (* condition read done: must retake the lock *)
  | Finished
  | Crashed

type thread = {
  tid : int;
  mutable frames : frame list;
  mutable status : tstatus;
  mutable held : (Value.objid * int) list;  (* lock -> reentrancy count *)
  mutable wait_restore : int;               (* count to restore after wait *)
  mutable alloc : int;
  mutable d : int;                          (* D(t) *)
  mutable sys_idx : int;
  mutable spawn_idx : int;
  mutable started : bool;
  mutable reads_rev : (int * Value.t) list;
  mutable outputs_rev : string list;
}

exception Rt_crash of int * int * string  (* site, line, message *)

(* Reading this sentinel from a slot means the local was never assigned.
   Compared physically, so no program value can collide with it. *)
let unbound : Value.t = VStr "\000unbound\000"

type state = {
  program : Resolve.compiled;
  hooks : hooks;
  shared : bool array;  (* plan.shared_site, pre-queried per sid *)
  heap : (Value.objid, obj) Hashtbl.t;
  threads : (int, thread) Hashtbl.t;
  mutable order : thread array;  (* creation order, for stable iteration *)
  mutable n_threads : int;
  locks : (Value.objid, int * int) Hashtbl.t;  (* lock -> owner tid, count *)
  waitsets : (Value.objid, int Queue.t) Hashtbl.t;  (* FIFO: oldest first *)
  mutable steps : int;
  mutable crashes : crash list;
  mutable syscalls_rev : (int * int * string * Value.t) list;
  mutable trace_rev : Event.access list;
  collect_trace : bool;
  rng : Random.State.t;  (* backs the @rand syscall *)
}

let shared_site st (sid : int) : bool =
  sid >= 0 && sid < Array.length st.shared && Array.unsafe_get st.shared sid

let push_thread st (t : thread) : unit =
  Hashtbl.replace st.threads t.tid t;
  let n = st.n_threads in
  if n = Array.length st.order then begin
    let bigger = Array.make (max 8 (2 * n)) t in
    Array.blit st.order 0 bigger 0 n;
    st.order <- bigger
  end;
  st.order.(n) <- t;
  st.n_threads <- n + 1

(* ------------------------------------------------------------------ *)
(* Heap helpers                                                        *)
(* ------------------------------------------------------------------ *)

let new_obj st (t : thread) (cls : string) : Value.objid =
  t.alloc <- t.alloc + 1;
  let id = (t.tid * 1_000_000) + t.alloc in
  Hashtbl.replace st.heap id { cls; fields = Hashtbl.create 8 };
  id

let heap_read st (l : Loc.t) : Value.t =
  match Hashtbl.find st.heap l.obj with
  | o -> ( match Hashtbl.find o.fields l.fld with v -> v | exception Not_found -> VNull)
  | exception Not_found -> VNull

let heap_write st (l : Loc.t) (v : Value.t) : unit =
  match Hashtbl.find st.heap l.obj with
  | o -> Hashtbl.replace o.fields l.fld v
  | exception Not_found ->
    (* ghost objects (negative ids) are materialized on first write *)
    let o = { cls = "$ghost"; fields = Hashtbl.create 4 } in
    Hashtbl.replace o.fields l.fld v;
    Hashtbl.replace st.heap l.obj o

(* ------------------------------------------------------------------ *)
(* Expression evaluation (pure: slots and constants only)              *)
(* ------------------------------------------------------------------ *)

let crash site line fmt = Printf.ksprintf (fun m -> raise (Rt_crash (site, line, m))) fmt

open Resolve

let rec eval (s : rstmt) (slots : Value.t array) (e : rexpr) : Value.t =
  match e with
  | RInt n -> VInt n
  | RBool b -> VBool b
  | RNull -> VNull
  | RStr str -> VStr str
  | RVar (i, x) ->
    let v = Array.unsafe_get slots i in
    if v == unbound then crash s.rsid s.rline "unbound local variable %s" x else v
  | RUnop (Not, a) -> (
    match eval s slots a with
    | VBool b -> VBool (not b)
    | v -> crash s.rsid s.rline "! applied to %s" (Value.to_string v))
  | RUnop (Neg, a) -> (
    match eval s slots a with
    | VInt n -> VInt (-n)
    | v -> crash s.rsid s.rline "unary - applied to %s" (Value.to_string v))
  | RBinop (op, a, b) -> eval_binop s slots op a b

and eval_binop s slots op a b : Value.t =
  let open Value in
  match op with
  | Ast.And -> (
    match eval s slots a with
    | VBool false -> VBool false
    | VBool true -> (
      match eval s slots b with
      | VBool v -> VBool v
      | v -> crash s.rsid s.rline "&& applied to %s" (to_string v))
    | v -> crash s.rsid s.rline "&& applied to %s" (to_string v))
  | Or -> (
    match eval s slots a with
    | VBool true -> VBool true
    | VBool false -> (
      match eval s slots b with
      | VBool v -> VBool v
      | v -> crash s.rsid s.rline "|| applied to %s" (to_string v))
    | v -> crash s.rsid s.rline "|| applied to %s" (to_string v))
  | Eq -> VBool (Value.equal (eval s slots a) (eval s slots b))
  | Ne -> VBool (not (Value.equal (eval s slots a) (eval s slots b)))
  | _ -> (
    let va = eval s slots a and vb = eval s slots b in
    match op, va, vb with
    | Add, VInt x, VInt y -> VInt (x + y)
    | Add, VStr x, VStr y -> VStr (x ^ y)
    | Sub, VInt x, VInt y -> VInt (x - y)
    | Mul, VInt x, VInt y -> VInt (x * y)
    | Div, VInt _, VInt 0 -> crash s.rsid s.rline "division by zero"
    | Div, VInt x, VInt y -> VInt (x / y)
    | Mod, VInt _, VInt 0 -> crash s.rsid s.rline "modulo by zero"
    | Mod, VInt x, VInt y -> VInt (x mod y)
    | Lt, VInt x, VInt y -> VBool (x < y)
    | Le, VInt x, VInt y -> VBool (x <= y)
    | Gt, VInt x, VInt y -> VBool (x > y)
    | Ge, VInt x, VInt y -> VBool (x >= y)
    | _ ->
      crash s.rsid s.rline "type error: %s %s %s" (to_string va)
        (Pp.binop_str op) (to_string vb))

let eval_bool (s : rstmt) slots e : bool =
  match eval s slots e with
  | VBool b -> b
  | v -> crash s.rsid s.rline "expected boolean, got %s" (Value.to_string v)

let eval_ref (s : rstmt) slots e : Value.objid =
  match eval s slots e with
  | VRef o -> o
  | VNull -> crash s.rsid s.rline "null dereference"
  | v -> crash s.rsid s.rline "expected object reference, got %s" (Value.to_string v)

(* ------------------------------------------------------------------ *)
(* Shared-access bookkeeping                                           *)
(* ------------------------------------------------------------------ *)

(* Tick D(t); build the access record only if someone will look at it. *)
let access st (t : thread) ~(loc : Loc.t) ~(kind : Event.akind) ~(site : int)
    ~(ghost : Event.ghost_kind) (value : Value.t) : unit =
  t.d <- t.d + 1;
  (match kind, ghost with
  | Read, NotGhost -> t.reads_rev <- (t.d, value) :: t.reads_rev
  | _ -> ());
  if st.collect_trace then
    st.trace_rev <- { Event.tid = t.tid; c = t.d; loc; kind; site; ghost } :: st.trace_rev;
  (match st.hooks.on_shared with
  | None -> ()
  | Some f -> f ~tid:t.tid ~c:t.d ~loc ~kind ~site ~ghost);
  match st.hooks.observe with
  | None -> ()
  | Some f -> f (Access ({ Event.tid = t.tid; c = t.d; loc; kind; site; ghost }, value))

(* The pre-event of the next shared access the thread will perform, for the
   gate.  Counter value is what the access *will* get. *)
let pre_of (t : thread) ~loc ~kind ~site ~ghost : Event.pre =
  { Event.tid = t.tid; c = t.d + 1; loc; kind; site; ghost }

(* ------------------------------------------------------------------ *)
(* Lock primitives                                                     *)
(* ------------------------------------------------------------------ *)

let lock_free_or_mine st (t : thread) (m : Value.objid) : bool =
  match Hashtbl.find_opt st.locks m with
  | None -> true
  | Some (owner, _) -> owner = t.tid

let do_acquire st (t : thread) (m : Value.objid) ~(site : int) : unit =
  (match Hashtbl.find_opt st.locks m with
  | None -> Hashtbl.replace st.locks m (t.tid, 1)
  | Some (owner, n) ->
    assert (owner = t.tid);
    Hashtbl.replace st.locks m (t.tid, n + 1));
  (match List.assoc_opt m t.held with
  | None -> t.held <- (m, 1) :: t.held
  | Some n -> t.held <- (m, n + 1) :: List.remove_assoc m t.held);
  let l = Loc.lock_ghost m in
  access st t ~loc:l ~kind:Read ~site ~ghost:LockAcqRead (heap_read st l);
  let v = Value.VInt t.tid in
  heap_write st l v;
  access st t ~loc:l ~kind:Write ~site ~ghost:LockAcqWrite v

let do_release st (t : thread) (m : Value.objid) ~(site : int) ~(ghost : Event.ghost_kind)
    ~(full : bool) : unit =
  match Hashtbl.find_opt st.locks m with
  | Some (owner, n) when owner = t.tid ->
    let remaining = if full then 0 else n - 1 in
    if remaining = 0 then Hashtbl.remove st.locks m
    else Hashtbl.replace st.locks m (t.tid, remaining);
    (if full || remaining = 0 then t.held <- List.remove_assoc m t.held
     else t.held <- (m, remaining) :: List.remove_assoc m t.held);
    let l = Loc.lock_ghost m in
    let v = Value.VInt (-t.tid - 1) in
    heap_write st l v;
    access st t ~loc:l ~kind:Write ~site ~ghost v
  | _ -> raise (Rt_crash (site, 0, "unlock of a lock not held"))

(* ------------------------------------------------------------------ *)
(* Enabledness                                                         *)
(* ------------------------------------------------------------------ *)

(* What shared access (if any) does the thread perform next?  Used both to
   consult the replay gate and to decide blocking.  Pure evaluation may crash;
   in that case we report no access so the thread runs and crashes properly.
   Only computed when a gate is installed (replay-side runs). *)
let next_pre st (t : thread) : Event.pre option =
  let shared site = shared_site st site in
  match t.status with
  | Notified m ->
    Some (pre_of t ~loc:(Loc.cond_ghost m) ~kind:Read ~site:0 ~ghost:WaitCondRead)
  | Reacquiring m ->
    Some (pre_of t ~loc:(Loc.lock_ghost m) ~kind:Read ~site:0 ~ghost:WaitReacqRead)
  | Runnable | BlockedLock _ | BlockedJoin _ -> (
    if not t.started then
      Some
        (pre_of t ~loc:(Loc.thread_ghost t.tid) ~kind:Read ~site:0 ~ghost:ThreadFirstRead)
    else
      match t.frames with
      | [] -> (* next transition is the exit ghost write *)
        Some
          (pre_of t ~loc:(Loc.thread_ghost t.tid) ~kind:Write ~site:0 ~ghost:ThreadExitWrite)
      | { cont = CDone; _ } :: _ | { cont = CSeq { todo = []; _ }; _ } :: _ -> None
      | { cont = CUnlock (m, sid, _); _ } :: _ ->
        Some (pre_of t ~loc:(Loc.lock_ghost m) ~kind:Write ~site:sid ~ghost:LockRelWrite)
      | ({ cont = CSeq { todo = s :: _; _ }; slots; _ } :: _) -> (
        let e x = eval s slots x in
        try
          match s.rnode with
          | RLoad (_, o, f) when shared s.rsid ->
            Some (pre_of t ~loc:(Loc.field_id (eval_ref s slots o) f) ~kind:Read ~site:s.rsid ~ghost:NotGhost)
          | RStore (o, f, _) when shared s.rsid ->
            Some (pre_of t ~loc:(Loc.field_id (eval_ref s slots o) f) ~kind:Write ~site:s.rsid ~ghost:NotGhost)
          | RLoadIdx (_, a, i) when shared s.rsid -> (
            match e a, e i with
            | VRef o, VInt n -> Some (pre_of t ~loc:(Loc.elem o n) ~kind:Read ~site:s.rsid ~ghost:NotGhost)
            | _ -> None)
          | RStoreIdx (a, i, _) when shared s.rsid -> (
            match e a, e i with
            | VRef o, VInt n -> Some (pre_of t ~loc:(Loc.elem o n) ~kind:Write ~site:s.rsid ~ghost:NotGhost)
            | _ -> None)
          | RGlobalLoad (_, g) when shared s.rsid ->
            Some (pre_of t ~loc:(Loc.global_id g) ~kind:Read ~site:s.rsid ~ghost:NotGhost)
          | RGlobalStore (g, _) when shared s.rsid ->
            Some (pre_of t ~loc:(Loc.global_id g) ~kind:Write ~site:s.rsid ~ghost:NotGhost)
          | RMapGet (_, m, k) when shared s.rsid ->
            Some (pre_of t ~loc:(Loc.mapkey (eval_ref s slots m) (e k)) ~kind:Read ~site:s.rsid ~ghost:NotGhost)
          | RMapHas (_, m, k) when shared s.rsid ->
            Some (pre_of t ~loc:(Loc.mapkey (eval_ref s slots m) (e k)) ~kind:Read ~site:s.rsid ~ghost:NotGhost)
          | RMapPut (m, k, _) when shared s.rsid ->
            Some (pre_of t ~loc:(Loc.mapkey (eval_ref s slots m) (e k)) ~kind:Write ~site:s.rsid ~ghost:NotGhost)
          | RSync (m, _) | RLock m ->
            Some (pre_of t ~loc:(Loc.lock_ghost (eval_ref s slots m)) ~kind:Read ~site:s.rsid ~ghost:LockAcqRead)
          | RUnlock m ->
            Some (pre_of t ~loc:(Loc.lock_ghost (eval_ref s slots m)) ~kind:Write ~site:s.rsid ~ghost:LockRelWrite)
          | RWait m ->
            Some (pre_of t ~loc:(Loc.lock_ghost (eval_ref s slots m)) ~kind:Write ~site:s.rsid ~ghost:WaitRelWrite)
          | RNotify m | RNotifyAll m ->
            Some (pre_of t ~loc:(Loc.cond_ghost (eval_ref s slots m)) ~kind:Write ~site:s.rsid ~ghost:NotifyWrite)
          | RSpawn _ ->
            (* the child's ghost id depends on the fresh tid *)
            let child = (t.tid * 100) + t.spawn_idx + 1 in
            Some (pre_of t ~loc:(Loc.thread_ghost child) ~kind:Write ~site:s.rsid ~ghost:SpawnWrite)
          | RJoin h -> (
            match e h with
            | VThread target ->
              Some (pre_of t ~loc:(Loc.thread_ghost target) ~kind:Read ~site:s.rsid ~ghost:JoinRead)
            | _ -> None)
          | _ -> None
        with Rt_crash _ -> None))
  | InWait _ | Finished | Crashed -> None

(* Is the thread able to take a transition right now (ignoring the gate)? *)
let semantically_enabled st (t : thread) : bool =
  match t.status with
  | Finished | Crashed | InWait _ -> false
  | Notified _ -> true  (* the condition-ghost read can always proceed *)
  | Reacquiring m -> lock_free_or_mine st t m
  | BlockedLock m -> lock_free_or_mine st t m
  | BlockedJoin target -> (
    match Hashtbl.find_opt st.threads target with
    | Some tt -> tt.status = Finished || tt.status = Crashed
    | None -> true)
  | Runnable -> (
    (* peek for blocking statements; only the sync/join head expressions can
       crash, so the handler is set up only on those branches *)
    if not t.started then true
    else
      match t.frames with
      | ({ cont = CSeq { todo = s :: _; _ }; slots; _ } :: _) -> (
        match s.rnode with
        | RSync (m, _) | RLock m -> (
          try lock_free_or_mine st t (eval_ref s slots m) with Rt_crash _ -> true)
        | RJoin h -> (
          try
            match eval s slots h with
            | VThread target -> (
              match Hashtbl.find_opt st.threads target with
              | Some tt -> tt.status = Finished || tt.status = Crashed
              | None -> true)
            | _ -> true (* will crash when stepped *)
          with Rt_crash _ -> true)
        | _ -> true)
      | _ -> true)

let gate_allows st (t : thread) : bool =
  match st.hooks.gate with
  | None -> true
  | Some gate -> (
    match next_pre st t with None -> true | Some pre -> gate pre)

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)
(* ------------------------------------------------------------------ *)

let current_frame (t : thread) : frame = List.hd t.frames

let set_local (t : thread) (slot : int) (v : Value.t) : unit =
  (current_frame t).slots.(slot) <- v

(* Advance past the current statement.  Mutates the head [CSeq] in place;
   no allocation unless the sequence is exhausted. *)
let pop_stmt (t : thread) : unit =
  let f = current_frame t in
  match f.cont with
  | CSeq r -> (
    match r.todo with
    | _ :: ((_ :: _) as rest) -> r.todo <- rest
    | _ -> f.cont <- norm r.next)
  | _ -> assert false

(* Perform a shared or local heap read; instrumented sites tick and emit. *)
let do_read st (t : thread) (s : rstmt) (loc : Loc.t) : Value.t =
  let v = heap_read st loc in
  if shared_site st s.rsid then
    access st t ~loc ~kind:Read ~site:s.rsid ~ghost:NotGhost v;
  v

let do_write st (t : thread) (s : rstmt) (loc : Loc.t) (v : Value.t) : unit =
  if shared_site st s.rsid then begin
    (match st.hooks.suppress_write with
    | None -> heap_write st loc v
    | Some suppress ->
      if not (suppress (pre_of t ~loc ~kind:Write ~site:s.rsid ~ghost:NotGhost)) then
        heap_write st loc v);
    access st t ~loc ~kind:Write ~site:s.rsid ~ghost:NotGhost v
  end
  else heap_write st loc v

(* Site/line-parameterized (rather than taking the statement record) so
   the bytecode VM shares these semantics verbatim. *)
let opaque_op ~(site : int) ~(line : int) (name : string) (args : Value.t list) :
    Value.t =
  let module V = Value in
  let int1 = function [ V.VInt n ] -> n | _ -> crash site line "#%s: expected int" name in
  if String.length name >= 2 && String.sub name 0 2 = "__" then V.VNull
    (* woven instrumentation pseudo-hooks are no-ops when executed directly *)
  else
  match name, args with
  | "hash", [ v ] ->
    let s = V.map_key v in
    let h = ref 17 in
    String.iter (fun ch -> h := (!h * 31) + Char.code ch) s;
    VInt (!h land 0x3FFFFFFF)
  | "strlen", [ V.VStr s ] -> VInt (String.length s)
  | "strcat", [ V.VStr a; V.VStr b ] -> VStr (a ^ b)
  | "str_index", [ V.VStr s; V.VStr sub ] ->
    let n = String.length s and m = String.length sub in
    let rec find i = if i + m > n then -1 else if String.sub s i m = sub then i else find (i + 1) in
    VInt (if m = 0 then 0 else find 0)
  | "to_str", [ v ] -> VStr (V.to_string v)
  | "crc", _ ->
    let n = int1 args in
    let x = n lxor (n lsl 13) in
    let x = x lxor (x asr 7) in
    VInt ((x lxor (x lsl 17)) land 0x3FFFFFFF)
  | "mix", [ V.VInt a; V.VInt b ] -> VInt (((a * a) + (b * b) + (a * b)) land 0x3FFFFFFF)
  | "floor_sqrt", _ ->
    let n = int1 args in
    if n < 0 then crash site line "#floor_sqrt of negative"
    else VInt (int_of_float (sqrt (float_of_int n)))
  | _ -> crash site line "unknown opaque operation #%s" name

let syscall_builtin ~(override : (tid:int -> idx:int -> name:string -> Value.t option) option)
    ~(steps : int) ~(tid : int) ~(sys_idx : int) ~(rng : Random.State.t) ~(site : int)
    ~(line : int) (name : string) (args : Value.t list) : Value.t =
  let overridden =
    match override with None -> None | Some f -> f ~tid ~idx:sys_idx ~name
  in
  match overridden with
  | Some v -> v
  | None -> (
    match name, args with
    | "time", [] -> VInt (steps / 10)
    | "nanotime", [] -> VInt ((steps * 1000) + (tid * 7))
    | "rand", [ VInt n ] when n > 0 -> VInt (Random.State.int rng n)
    | "rand", [] -> VInt (Random.State.int rng 1_000_000)
    | "read_input", [] -> VInt (Random.State.int rng 100)
    | _ -> crash site line "bad syscall @%s" name)

let syscall_value st (t : thread) (s : rstmt) (name : string) (args : Value.t list) :
    Value.t =
  syscall_builtin ~override:st.hooks.syscall_override ~steps:st.steps ~tid:t.tid
    ~sys_idx:t.sys_idx ~rng:st.rng ~site:s.rsid ~line:s.rline name args

let fifo_pop st (m : Value.objid) : int option =
  match Hashtbl.find_opt st.waitsets m with
  | None -> None
  | Some q -> if Queue.is_empty q then None else Some (Queue.pop q)

let pick_wakeup st (m : Value.objid) : int option =
  match st.hooks.choose_wakeup with
  | None -> fifo_pop st m
  | Some f -> (
    match Hashtbl.find_opt st.waitsets m with
    | None -> None
    | Some q when Queue.is_empty q -> None
    | Some q ->
      let waiters = List.rev (Queue.fold (fun acc x -> x :: acc) [] q) in
      let w = f ~lock:m ~waiters in
      Queue.clear q;
      List.iter (fun x -> if x <> w then Queue.push x q) waiters;
      Some w)

let wake st (w : int) (m : Value.objid) : unit =
  let wt = Hashtbl.find st.threads w in
  wt.status <- Notified m

let observe_event st (ev : Event.t) : unit =
  match st.hooks.observe with None -> () | Some f -> f ev

(* Thread exit: emit the exit ghost write and release any held locks. *)
let finish_thread st (t : thread) ~(crashed : bool) : unit =
  List.iter (fun (m, _) -> do_release st t m ~site:0 ~ghost:LockRelWrite ~full:true) t.held;
  let l = Loc.thread_ghost t.tid in
  let v = Value.VInt t.tid in
  heap_write st l v;
  access st t ~loc:l ~kind:Write ~site:0 ~ghost:ThreadExitWrite v;
  t.status <- (if crashed then Crashed else Finished);
  observe_event st (ThreadFinished { tid = t.tid })

let make_thread ~tid ~frames : thread =
  {
    tid;
    frames;
    status = Runnable;
    held = [];
    wait_restore = 0;
    alloc = 0;
    d = 0;
    sys_idx = 0;
    spawn_idx = 0;
    started = false;
    reads_rev = [];
    outputs_rev = [];
  }

let new_frame (fn : rfn) ~(ret_to : int option) : frame =
  {
    cont =
      (match fn.rf_body with
      | [] -> CDone
      | body -> CSeq { todo = body; next = CDone });
    slots = Array.make fn.rf_frame unbound;
    ret_to;
  }

(* Bind call arguments into parameter slots 0..n-1.  Arity mismatches are a
   static error; unvalidated programs fail here the same way the seed's
   [List.iter2] binding did. *)
let bind_args (fn : rfn) (vals : Value.t list) (slots : Value.t array) : unit =
  if List.length vals <> fn.rf_nparams then invalid_arg "List.iter2";
  List.iteri (fun i v -> slots.(i) <- v) vals

let spawn_thread st (parent : thread) (s : rstmt) (fidx : int) (fname : string)
    (args : Value.t list) : int =
  if fidx < 0 then crash s.rsid s.rline "spawn of undefined function %s" fname;
  let fd = st.program.cp_fns.(fidx) in
  parent.spawn_idx <- parent.spawn_idx + 1;
  if parent.spawn_idx > 99 then crash s.rsid s.rline "spawn limit (99 per thread) exceeded";
  let tid = (parent.tid * 100) + parent.spawn_idx in
  let f = new_frame fd ~ret_to:None in
  bind_args fd args f.slots;
  let th = make_thread ~tid ~frames:[ f ] in
  push_thread st th;
  (* parent writes the child's thread ghost (Section 4.3) *)
  let l = Loc.thread_ghost tid in
  let v = Value.VThread tid in
  heap_write st l v;
  access st parent ~loc:l ~kind:Write ~site:s.rsid ~ghost:SpawnWrite v;
  observe_event st (ThreadSpawned { parent = parent.tid; child = tid });
  tid

(* Execute one transition of thread [t].  Assumes semantically enabled and
   gate-approved. *)
let rec step_thread st (t : thread) : unit =
  if not t.started then begin
    t.started <- true;
    let l = Loc.thread_ghost t.tid in
    access st t ~loc:l ~kind:Read ~site:0 ~ghost:ThreadFirstRead (heap_read st l)
  end
  else
    match t.status with
    | Notified m ->
      (* wait_after, part 1: read the condition ghost (pairing the notify) *)
      let cl = Loc.cond_ghost m in
      access st t ~loc:cl ~kind:Read ~site:0 ~ghost:WaitCondRead (heap_read st cl);
      t.status <- Reacquiring m
    | Reacquiring m ->
      (* wait_after, part 2: retake the monitor *)
      let ll = Loc.lock_ghost m in
      access st t ~loc:ll ~kind:Read ~site:0 ~ghost:WaitReacqRead (heap_read st ll);
      Hashtbl.replace st.locks m (t.tid, t.wait_restore);
      t.held <- (m, t.wait_restore) :: t.held;
      t.wait_restore <- 0;
      let v = Value.VInt t.tid in
      heap_write st ll v;
      access st t ~loc:ll ~kind:Write ~site:0 ~ghost:WaitReacqWrite v;
      t.status <- Runnable
    | BlockedLock _ | BlockedJoin _ | Runnable -> (
      t.status <- Runnable;
      match t.frames with
      | [] -> finish_thread st t ~crashed:false
      | ({ cont = CDone; ret_to; _ } :: rest | { cont = CSeq { todo = []; _ }; ret_to; _ } :: rest)
        ->
        (* implicit return *)
        t.frames <- rest;
        (match rest, ret_to with
        | caller :: _, Some x -> caller.slots.(x) <- VNull
        | _ -> ())
      | ({ cont = CUnlock (m, sid, k); _ } as f) :: _ ->
        f.cont <- k;
        do_release st t m ~site:sid ~ghost:LockRelWrite ~full:false
      | ({ cont = CSeq { todo = s :: _; _ }; slots; _ } :: _) -> exec_stmt st t s slots)
    | InWait _ | Finished | Crashed -> assert false

and exec_stmt st (t : thread) (s : rstmt) (slots : Value.t array) : unit =
  match s.rnode with
  | RNop | RYield -> pop_stmt t
  | RAssign (x, v) ->
    let v = eval s slots v in
    pop_stmt t;
    set_local t x v
  | RLoad (x, o, f) ->
    let loc = Loc.field_id (eval_ref s slots o) f in
    pop_stmt t;
    set_local t x (do_read st t s loc)
  | RStore (o, f, v) ->
    let loc = Loc.field_id (eval_ref s slots o) f in
    let v = eval s slots v in
    pop_stmt t;
    do_write st t s loc v
  | RLoadIdx (x, a, i) -> (
    match eval s slots a, eval s slots i with
    | VRef o, VInt n ->
      let len =
        match heap_read st (Loc.field_id o Loc.len_fld) with VInt l -> l | _ -> 0
      in
      if n < 0 || n >= len then crash s.rsid s.rline "array index %d out of bounds (len %d)" n len;
      pop_stmt t;
      set_local t x (do_read st t s (Loc.elem o n))
    | VNull, _ -> crash s.rsid s.rline "null dereference"
    | va, vi ->
      crash s.rsid s.rline "bad array access %s[%s]" (Value.to_string va) (Value.to_string vi))
  | RStoreIdx (a, i, v) -> (
    match eval s slots a, eval s slots i with
    | VRef o, VInt n ->
      let len =
        match heap_read st (Loc.field_id o Loc.len_fld) with VInt l -> l | _ -> 0
      in
      if n < 0 || n >= len then crash s.rsid s.rline "array index %d out of bounds (len %d)" n len;
      let v = eval s slots v in
      pop_stmt t;
      do_write st t s (Loc.elem o n) v
    | VNull, _ -> crash s.rsid s.rline "null dereference"
    | va, _ -> crash s.rsid s.rline "bad array store into %s" (Value.to_string va))
  | RGlobalLoad (x, g) ->
    pop_stmt t;
    set_local t x (do_read st t s (Loc.global_id g))
  | RGlobalStore (g, v) ->
    let v = eval s slots v in
    pop_stmt t;
    do_write st t s (Loc.global_id g) v
  | RNew (x, cls, fids) ->
    pop_stmt t;
    let id = new_obj st t cls in
    (* initialize declared fields to null: Java-like default initialization;
       these writes are thread-local (the object is unescaped) *)
    Array.iter (fun f -> heap_write st (Loc.field_id id f) VNull) fids;
    set_local t x (VRef id)
  | RNewArray (x, n) -> (
    match eval s slots n with
    | VInt len when len >= 0 ->
      pop_stmt t;
      let id = new_obj st t "[]" in
      heap_write st (Loc.field_id id Loc.len_fld) (VInt len);
      for i = 0 to len - 1 do
        heap_write st (Loc.elem id i) (VInt 0)
      done;
      set_local t x (VRef id)
    | v -> crash s.rsid s.rline "bad array length %s" (Value.to_string v))
  | RNewMap x ->
    pop_stmt t;
    let id = new_obj st t "map" in
    set_local t x (VRef id)
  | RMapGet (x, m, k) ->
    let loc = Loc.mapkey (eval_ref s slots m) (eval s slots k) in
    pop_stmt t;
    set_local t x (do_read st t s loc)
  | RMapPut (m, k, v) ->
    let loc = Loc.mapkey (eval_ref s slots m) (eval s slots k) in
    let v = eval s slots v in
    pop_stmt t;
    do_write st t s loc v
  | RMapHas (x, m, k) ->
    let loc = Loc.mapkey (eval_ref s slots m) (eval s slots k) in
    pop_stmt t;
    let v = do_read st t s loc in
    set_local t x (VBool (v <> VNull))
  | RIf (c, b1, b2) ->
    let cond = eval_bool s slots c in
    (match st.hooks.on_branch with None -> () | Some f -> f ~tid:t.tid ~taken:cond);
    pop_stmt t;
    let f = current_frame t in
    (match if cond then b1 else b2 with
    | [] -> ()
    | body -> f.cont <- CSeq { todo = body; next = f.cont })
  | RWhile (c, b) ->
    let cond = eval_bool s slots c in
    (match st.hooks.on_branch with None -> () | Some f -> f ~tid:t.tid ~taken:cond);
    let f = current_frame t in
    if cond then (
      (* the RWhile stays at the head of the outer sequence: after the body
         runs, control falls back to the condition (empty bodies respin on
         the condition itself, as the flat-list semantics did) *)
      match b with
      | [] -> ()
      | body -> f.cont <- CSeq { todo = body; next = f.cont })
    else pop_stmt t
  | RCall (ret, fidx, fname, args) ->
    if fidx < 0 then crash s.rsid s.rline "call to undefined function %s" fname;
    let fd = st.program.cp_fns.(fidx) in
    let vals = List.map (eval s slots) args in
    pop_stmt t;
    let f = new_frame fd ~ret_to:ret in
    bind_args fd vals f.slots;
    t.frames <- f :: t.frames
  | RReturn v -> (
    let rv = match v with Some x -> eval s slots x | None -> VNull in
    match t.frames with
    | { ret_to; _ } :: rest ->
      t.frames <- rest;
      (match rest, ret_to with
      | caller :: _, Some x -> caller.slots.(x) <- rv
      | _ -> ())
    | [] -> assert false)
  | RSpawn (h, fidx, fname, args) ->
    let vals = List.map (eval s slots) args in
    pop_stmt t;
    let tid = spawn_thread st t s fidx fname vals in
    set_local t h (VThread tid)
  | RJoin hexpr -> (
    match eval s slots hexpr with
    | VThread target -> (
      match Hashtbl.find_opt st.threads target with
      | Some tt when tt.status = Finished || tt.status = Crashed ->
        pop_stmt t;
        let l = Loc.thread_ghost target in
        access st t ~loc:l ~kind:Read ~site:s.rsid ~ghost:JoinRead (heap_read st l)
      | Some _ -> t.status <- BlockedJoin target
      | None -> crash s.rsid s.rline "join of unknown thread %d" target)
    | v -> crash s.rsid s.rline "join of non-thread %s" (Value.to_string v))
  | RSync (m, body) ->
    let mo = eval_ref s slots m in
    if lock_free_or_mine st t mo then begin
      pop_stmt t;
      let f = current_frame t in
      let after = CUnlock (mo, s.rsid, f.cont) in
      (f.cont <-
         (match body with [] -> after | body -> CSeq { todo = body; next = after }));
      do_acquire st t mo ~site:s.rsid
    end
    else t.status <- BlockedLock mo
  | RLock m ->
    let mo = eval_ref s slots m in
    if lock_free_or_mine st t mo then begin
      pop_stmt t;
      do_acquire st t mo ~site:s.rsid
    end
    else t.status <- BlockedLock mo
  | RUnlock m ->
    let mo = eval_ref s slots m in
    pop_stmt t;
    (match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid ->
      do_release st t mo ~site:s.rsid ~ghost:LockRelWrite ~full:false
    | _ -> crash s.rsid s.rline "unlock of a lock not held")
  | RWait m -> (
    let mo = eval_ref s slots m in
    match Hashtbl.find_opt st.locks mo with
    | Some (owner, n) when owner = t.tid ->
      pop_stmt t;
      (* wait_before: fully release the monitor *)
      t.wait_restore <- n;
      do_release st t mo ~site:s.rsid ~ghost:WaitRelWrite ~full:true;
      t.status <- InWait mo;
      let q =
        match Hashtbl.find_opt st.waitsets mo with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace st.waitsets mo q;
          q
      in
      Queue.push t.tid q
    | _ -> crash s.rsid s.rline "wait without holding the monitor")
  | RNotify m -> (
    let mo = eval_ref s slots m in
    match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid ->
      pop_stmt t;
      let cl = Loc.cond_ghost mo in
      let v = Value.VInt t.tid in
      heap_write st cl v;
      access st t ~loc:cl ~kind:Write ~site:s.rsid ~ghost:NotifyWrite v;
      (match pick_wakeup st mo with Some w -> wake st w mo | None -> ())
    | _ -> crash s.rsid s.rline "notify without holding the monitor")
  | RNotifyAll m -> (
    let mo = eval_ref s slots m in
    match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid ->
      pop_stmt t;
      let cl = Loc.cond_ghost mo in
      let v = Value.VInt t.tid in
      heap_write st cl v;
      access st t ~loc:cl ~kind:Write ~site:s.rsid ~ghost:NotifyWrite v;
      let rec drain () =
        match fifo_pop st mo with
        | Some w -> wake st w mo; drain ()
        | None -> ()
      in
      drain ()
    | _ -> crash s.rsid s.rline "notifyAll without holding the monitor")
  | RAssert c ->
    let v = eval_bool s slots c in
    if not v then crash s.rsid s.rline "assertion failed";
    pop_stmt t
  | RPrint v ->
    let str = Value.to_string (eval s slots v) in
    pop_stmt t;
    t.outputs_rev <- str :: t.outputs_rev
  | RSyscall (x, name, args) ->
    let vals = List.map (eval s slots) args in
    let v = syscall_value st t s name vals in
    st.syscalls_rev <- (t.tid, t.sys_idx, name, v) :: st.syscalls_rev;
    observe_event st (SyscallEvent { tid = t.tid; idx = t.sys_idx; name; value = v });
    t.sys_idx <- t.sys_idx + 1;
    pop_stmt t;
    set_local t x v
  | ROpaque (x, name, args) ->
    let vals = List.map (eval s slots) args in
    let v = opaque_op ~site:s.rsid ~line:s.rline name vals in
    pop_stmt t;
    set_local t x v

(* ------------------------------------------------------------------ *)
(* Run loop                                                            *)
(* ------------------------------------------------------------------ *)

type compiled = Resolve.compiled

let compile : Ast.program -> compiled = Resolve.compile

(** Build the initial interpreter state: globals object, main thread, seeded
    RNG.  Running is a separate step ({!run_state}) so callers can pause at
    step boundaries, snapshot, and resume — the substrate of epoch-based
    recording. *)
let init_state ?(hooks = default_hooks) ?(plan = Plan.all_shared) ?(collect_trace = false)
    ?(seed = 0) (cp : compiled) : state =
  let shared = Array.init (cp.cp_max_sid + 1) (fun sid -> plan.Plan.shared_site sid) in
  let st =
    {
      program = cp;
      hooks;
      shared;
      heap = Hashtbl.create 1024;
      threads = Hashtbl.create 16;
      order = [||];
      n_threads = 0;
      locks = Hashtbl.create 16;
      waitsets = Hashtbl.create 16;
      steps = 0;
      crashes = [];
      syscalls_rev = [];
      trace_rev = [];
      collect_trace;
      rng = Random.State.make [| seed; 0x5EED |];
    }
  in
  (* the globals root object *)
  Hashtbl.replace st.heap 0 { cls = "$globals"; fields = Hashtbl.create 16 };
  Array.iter (fun g -> heap_write st (Loc.global_id g) VNull) cp.cp_globals;
  let main_thread = make_thread ~tid:1 ~frames:[ new_frame cp.cp_main ~ret_to:None ] in
  main_thread.started <- true;  (* main has no spawn ghost to read *)
  push_thread st main_thread;
  st

(** Run until termination, [max_steps], or the [stop_at] step watermark.
    Returns [None] when paused at [stop_at] (the run can be resumed by
    calling [run_state] again on the same state), [Some status] when the run
    actually ended.  The pause point is a clean step boundary: no thread is
    mid-transition. *)
let run_state ?(max_steps = 5_000_000) ?(stop_at = max_int) ~(sched : Sched.t)
    (st : state) : status_summary option =
  let gated = st.hooks.gate <> None in
  let finished = ref false in
  let paused = ref false in
  let status = ref AllFinished in
  while not !finished && not !paused do
    (* one backwards walk of the creation-order vector: the accumulated list
       comes out in creation order, exactly as the seed's list-filter
       construction did.  The [live] list is only needed to report a
       deadlock, so it is built on that (cold) path alone. *)
    let sem_enabled = ref [] and any_live = ref false in
    for i = st.n_threads - 1 downto 0 do
      let t = st.order.(i) in
      if t.status <> Finished && t.status <> Crashed then begin
        any_live := true;
        if semantically_enabled st t then sem_enabled := t.tid :: !sem_enabled
      end
    done;
    if not !any_live then (finished := true; status := AllFinished)
    else begin
      let sem_enabled = !sem_enabled in
      let runnable =
        if not gated then sem_enabled
        else
          List.filter (fun tid -> gate_allows st (Hashtbl.find st.threads tid)) sem_enabled
      in
      if runnable = [] then begin
        finished := true;
        status :=
          (if sem_enabled = [] then begin
             let live = ref [] in
             for i = st.n_threads - 1 downto 0 do
               let t = st.order.(i) in
               if t.status <> Finished && t.status <> Crashed then live := t.tid :: !live
             done;
             Deadlock !live
           end
           else GateStuck sem_enabled)
      end
      else if st.steps >= max_steps then (finished := true; status := StepLimit)
      else if st.steps >= stop_at then paused := true
      else begin
        let tid = sched.pick ~step:st.steps ~runnable in
        let tid = if List.mem tid runnable then tid else List.hd runnable in
        let t = Hashtbl.find st.threads tid in
        st.steps <- st.steps + 1;
        (try step_thread st t with
        | Rt_crash (site, line, msg) ->
          st.crashes <- { tid; site; line; msg; c = t.d } :: st.crashes;
          finish_thread st t ~crashed:true)
      end
    end
  done;
  if !paused then None else Some !status

let per_thread (st : state) f =
  List.init st.n_threads (fun i ->
      let t = st.order.(i) in
      (t.tid, f t))

(** Assemble the outcome record from a finished (or paused) state. *)
let outcome_of_state (st : state) (status : status_summary) : outcome =
  let per_thread f = per_thread st f in
  {
    status;
    steps = st.steps;
    crashes = List.rev st.crashes;
    reads = per_thread (fun t -> List.rev t.reads_rev);
    outputs = per_thread (fun t -> List.rev t.outputs_rev);
    counters = per_thread (fun t -> t.d);
    syscalls = List.rev st.syscalls_rev;
    final_heap =
      Hashtbl.fold (fun id (o : obj) acc -> (id, o) :: acc) st.heap []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map (fun (id, o) ->
             ( id,
               Hashtbl.fold (fun f v acc -> (Loc.fld_name f, v) :: acc) o.fields []
               |> List.sort compare ));
    trace = List.rev st.trace_rev;
  }

let run_compiled ?hooks ?plan ?max_steps ?collect_trace ?seed ~(sched : Sched.t)
    (cp : compiled) : outcome =
  let st = init_state ?hooks ?plan ?collect_trace ?seed cp in
  match run_state ?max_steps ~sched st with
  | Some status -> outcome_of_state st status
  | None -> assert false (* stop_at defaults to max_int: never pauses *)

let run ?hooks ?plan ?max_steps ?collect_trace ?seed ~(sched : Sched.t)
    (program : Ast.program) : outcome =
  run_compiled ?hooks ?plan ?max_steps ?collect_trace ?seed ~sched (compile program)

(* ------------------------------------------------------------------ *)
(* Incremental observables (epoch recording)                           *)
(* ------------------------------------------------------------------ *)

(** The per-epoch slice of the Theorem-1 observables.  [drain_observables]
    returns everything accumulated since the previous drain (or the start of
    the run) and clears the buffers, so an epoch recorder owns exactly its
    window of reads/outputs/syscalls while the cumulative counters (D(t),
    sys_idx, steps) keep advancing monotonically. *)
type observables = {
  obs_reads : (int * (int * Value.t) list) list;
  obs_outputs : (int * string list) list;
  obs_syscalls : (int * int * string * Value.t) list;
}

let drain_observables (st : state) : observables =
  let obs =
    {
      obs_reads = per_thread st (fun t -> List.rev t.reads_rev);
      obs_outputs = per_thread st (fun t -> List.rev t.outputs_rev);
      obs_syscalls = List.rev st.syscalls_rev;
    }
  in
  for i = 0 to st.n_threads - 1 do
    let t = st.order.(i) in
    t.reads_rev <- [];
    t.outputs_rev <- []
  done;
  st.syscalls_rev <- [];
  obs

(** Final D(t) per thread right now — the counter watermark an epoch log
    stores so its c-values can be windowed against the checkpoint. *)
let state_counters (st : state) : (int * int) list = per_thread st (fun t -> t.d)

let state_steps (st : state) : int = st.steps

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (epoch checkpoints)                              *)
(* ------------------------------------------------------------------ *)

(* A continuation is serialized positionally: every [CSeq] node's [todo]
   list is a suffix of some statement list of the compiled program
   (pop_stmt only ever moves to tails), so the head statement's globally
   unique sid identifies the whole suffix.  [CUnlock] carries its own
   payload.  Restoring aliases the program's own statement lists, which is
   safe: [todo] is reassigned but the lists themselves are never mutated. *)
type scont = SSeq of int | SUnlock of Value.objid * int

type snap_frame = {
  sn_cont : scont list;  (* outermost-first chain, [] = CDone *)
  sn_slots : Value.t array;
  sn_ret_to : int option;
}

type snap_thread = {
  sn_tid : int;
  sn_frames : snap_frame list;
  sn_status : tstatus;
  sn_held : (Value.objid * int) list;
  sn_wait_restore : int;
  sn_alloc : int;
  sn_d : int;
  sn_sys_idx : int;
  sn_spawn_idx : int;
  sn_started : bool;
}

(** A complete, self-contained interpreter checkpoint.  Heap fields are
    keyed by field {e name} (not interned id) so a snapshot written by one
    process can be restored by another with a differently-populated intern
    table.  Observable buffers (reads/outputs) are {e not} captured: epoch
    recording drains them at every boundary, so they are empty by invariant
    at snapshot time.  The RNG and scheduler states are hex-marshalled
    tokens ({!Sched.marshal_hex}). *)
type snapshot = {
  snap_steps : int;
  snap_heap : (Value.objid * string * (string * Value.t) list) list;
      (* (id, class, fields sorted by name), ascending id *)
  snap_threads : snap_thread list;  (* creation order *)
  snap_locks : (Value.objid * (int * int)) list;  (* lock -> owner, count *)
  snap_waitsets : (Value.objid * int list) list;  (* FIFO, oldest first *)
  snap_crashes : crash list;  (* chronological *)
  snap_rng : string;
}

let rec encode_cont (c : cont) : scont list =
  match norm c with
  | CDone -> []
  | CSeq { todo = s :: _; next } -> SSeq s.rsid :: encode_cont next
  | CSeq { todo = []; _ } -> assert false (* excluded by norm *)
  | CUnlock (m, sid, k) -> SUnlock (m, sid) :: encode_cont k

(** Map every statement's sid to the statement-list suffix it heads, over
    all blocks of the compiled program (function bodies and nested
    if/while/sync bodies).  Sids are globally unique by construction. *)
let suffix_map (cp : compiled) : (int, rstmt list) Hashtbl.t =
  let sm = Hashtbl.create 256 in
  let rec walk_list = function
    | [] -> ()
    | (s :: rest) as suffix ->
      Hashtbl.replace sm s.rsid suffix;
      (match s.rnode with
      | RIf (_, b1, b2) ->
        walk_list b1;
        walk_list b2
      | RWhile (_, b) | RSync (_, b) -> walk_list b
      | _ -> ());
      walk_list rest
  in
  Array.iter (fun (fn : rfn) -> walk_list fn.rf_body) cp.cp_fns;
  walk_list cp.cp_main.rf_body;
  sm

let decode_cont (sm : (int, rstmt list) Hashtbl.t) (sc : scont list) : cont =
  List.fold_right
    (fun sc next ->
      match sc with
      | SSeq sid -> (
        match Hashtbl.find_opt sm sid with
        | Some suffix -> CSeq { todo = suffix; next }
        | None -> invalid_arg (Printf.sprintf "decode_cont: unknown sid %d" sid))
      | SUnlock (m, sid) -> CUnlock (m, sid, next))
    sc CDone

let snapshot (st : state) : snapshot =
  let snap_frame (f : frame) =
    { sn_cont = encode_cont f.cont; sn_slots = Array.copy f.slots; sn_ret_to = f.ret_to }
  in
  let snap_thread (t : thread) =
    {
      sn_tid = t.tid;
      sn_frames = List.map snap_frame t.frames;
      sn_status = t.status;
      sn_held = t.held;
      sn_wait_restore = t.wait_restore;
      sn_alloc = t.alloc;
      sn_d = t.d;
      sn_sys_idx = t.sys_idx;
      sn_spawn_idx = t.spawn_idx;
      sn_started = t.started;
    }
  in
  {
    snap_steps = st.steps;
    snap_heap =
      Hashtbl.fold (fun id (o : obj) acc -> (id, o) :: acc) st.heap []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map (fun (id, o) ->
             ( id,
               o.cls,
               Hashtbl.fold (fun f v acc -> (Loc.fld_name f, v) :: acc) o.fields []
               |> List.sort compare ));
    snap_threads = List.init st.n_threads (fun i -> snap_thread st.order.(i));
    snap_locks =
      Hashtbl.fold (fun m ov acc -> (m, ov) :: acc) st.locks []
      |> List.sort compare;
    snap_waitsets =
      Hashtbl.fold
        (fun m q acc -> (m, List.rev (Queue.fold (fun acc x -> x :: acc) [] q)) :: acc)
        st.waitsets []
      |> List.sort compare;
    snap_crashes = List.rev st.crashes;
    snap_rng = Sched.marshal_hex st.rng;
  }

(** Rebuild a runnable state from a checkpoint.  The compiled program must
    be the same program the snapshot was taken from (continuations are
    decoded against its statement lists).  Hooks and plan are supplied
    fresh: a replayer restores a recording-time snapshot under its own gate
    hooks. *)
let restore_state ?(hooks = default_hooks) ?(plan = Plan.all_shared)
    ?(collect_trace = false) (cp : compiled) (sn : snapshot) : state =
  let shared = Array.init (cp.cp_max_sid + 1) (fun sid -> plan.Plan.shared_site sid) in
  let st =
    {
      program = cp;
      hooks;
      shared;
      heap = Hashtbl.create 1024;
      threads = Hashtbl.create 16;
      order = [||];
      n_threads = 0;
      locks = Hashtbl.create 16;
      waitsets = Hashtbl.create 16;
      steps = sn.snap_steps;
      crashes = List.rev sn.snap_crashes;
      syscalls_rev = [];
      trace_rev = [];
      collect_trace;
      rng = (Sched.unmarshal_hex sn.snap_rng : Random.State.t);
    }
  in
  List.iter
    (fun (id, cls, fields) ->
      let o = { cls; fields = Hashtbl.create (max 8 (List.length fields)) } in
      List.iter (fun (fname, v) -> Hashtbl.replace o.fields (Loc.fld_of_name fname) v) fields;
      Hashtbl.replace st.heap id o)
    sn.snap_heap;
  let sm = suffix_map cp in
  List.iter
    (fun (snt : snap_thread) ->
      let frames =
        List.map
          (fun (f : snap_frame) ->
            {
              cont = decode_cont sm f.sn_cont;
              slots = Array.copy f.sn_slots;
              ret_to = f.sn_ret_to;
            })
          snt.sn_frames
      in
      let t =
        {
          tid = snt.sn_tid;
          frames;
          status = snt.sn_status;
          held = snt.sn_held;
          wait_restore = snt.sn_wait_restore;
          alloc = snt.sn_alloc;
          d = snt.sn_d;
          sys_idx = snt.sn_sys_idx;
          spawn_idx = snt.sn_spawn_idx;
          started = snt.sn_started;
          reads_rev = [];
          outputs_rev = [];
        }
      in
      push_thread st t)
    sn.snap_threads;
  List.iter (fun (m, ov) -> Hashtbl.replace st.locks m ov) sn.snap_locks;
  List.iter
    (fun (m, waiters) ->
      let q = Queue.create () in
      List.iter (fun w -> Queue.push w q) waiters;
      Hashtbl.replace st.waitsets m q)
    sn.snap_waitsets;
  st

(* ------------------------------------------------------------------ *)
(* Determinism oracle (Theorem 1 observables)                           *)
(* ------------------------------------------------------------------ *)

type mismatch = string

(** Compare the Theorem-1 observables of two runs: per-thread sequences of
    shared-read values, per-thread outputs, and crashes (site + counter). *)
let replay_matches ~(original : outcome) ~(replay : outcome) : mismatch list =
  let ms = ref [] in
  let add fmt = Printf.ksprintf (fun m -> ms := m :: !ms) fmt in
  let cmp_assoc name a b pp_v =
    List.iter
      (fun (tid, xs) ->
        match List.assoc_opt tid b with
        | None -> add "%s: thread %d missing in replay" name tid
        | Some ys ->
          if xs <> ys then
            add "%s: thread %d differs (original %d items, replay %d items%s)" name tid
              (List.length xs) (List.length ys)
              (match
                 List.find_opt (fun (x, y) -> x <> y)
                   (List.combine
                      (List.filteri (fun i _ -> i < min (List.length xs) (List.length ys)) xs)
                      (List.filteri (fun i _ -> i < min (List.length xs) (List.length ys)) ys))
               with
              | Some (x, y) -> Printf.sprintf "; first diff: %s vs %s" (pp_v x) (pp_v y)
              | None -> ""))
      a
  in
  cmp_assoc "reads" original.reads replay.reads (fun (c, v) ->
      Printf.sprintf "(%d,%s)" c (Value.to_string v));
  cmp_assoc "outputs" original.outputs replay.outputs (fun s -> s);
  let crash_key (c : crash) = (c.tid, c.site, c.c, c.msg) in
  let ok = List.map crash_key original.crashes in
  let rk = List.map crash_key replay.crashes in
  if List.sort compare ok <> List.sort compare rk then
    add "crashes differ: original %d, replay %d" (List.length original.crashes)
      (List.length replay.crashes);
  List.rev !ms
