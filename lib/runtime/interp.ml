(** The interleaved-semantics interpreter (Section 3.1 of the paper).

    One [step] executes one transition of one thread, chosen by a
    {!Sched.t}.  Shared accesses at instrumented sites tick the thread-local
    counter [D(t)] and are reported to the installed hooks; synchronization
    primitives are additionally modeled as ghost-field accesses exactly as in
    Section 4.3 (lock acquire = ghost read + ghost write, release = ghost
    write, spawn/join/exit and wait/notify via thread and condition ghosts).

    Object ids are thread-deterministic: [objid = tid * 1_000_000 + k] where
    [k] is the allocating thread's allocation index, so Assumption 1 (thread
    determinism) covers reference values. *)

open Lang

type crash = {
  tid : int;
  site : int;
  line : int;
  msg : string;
  c : int;  (** D(tid) when the crash occurred *)
}

type status_summary =
  | AllFinished
  | Deadlock of int list   (** blocked thread ids *)
  | GateStuck of int list  (** runnable but denied by the replay gate *)
  | StepLimit

type outcome = {
  status : status_summary;
  steps : int;
  crashes : crash list;
  reads : (int * (int * Value.t) list) list;
      (** per thread: (counter, value) of every non-ghost shared read, in
          program order — the observable of Theorem 1 *)
  outputs : (int * string list) list;  (** per thread: printed lines *)
  counters : (int * int) list;         (** final D(t) per thread *)
  syscalls : (int * int * string * Value.t) list;
      (** (tid, idx, name, value) in per-thread order *)
  final_heap : (Value.objid * (string * Value.t) list) list;
      (** the heap at termination: per object (ascending id), fields sorted
          by name.  Object ids are thread-deterministic, so two runs of the
          same program are comparable.  Used by the differential tests; not
          a Theorem-1 observable (replay may suppress blind writes). *)
  trace : Event.access list;           (** full access trace if requested *)
}

type hooks = {
  gate : Event.pre -> bool;
      (** consulted before a shared access (on the first ghost access for
          compound sync transitions); [false] delays the thread *)
  observe : Event.t -> unit;
  syscall_override : tid:int -> idx:int -> name:string -> Value.t option;
      (** replay-run substitution of recorded syscall values (Section 3.2) *)
  choose_wakeup : (lock:Value.objid -> waiters:int list -> int) option;
      (** pick which waiter a [notify] wakes; default FIFO *)
  suppress_write : Event.pre -> bool;
      (** replay-run blind-write suppression (Section 4.2) *)
  on_branch : tid:int -> taken:bool -> unit;
      (** every if/while condition evaluation (used by path-recording tools
          such as Clap); may raise to abort the run *)
}

let default_hooks : hooks =
  {
    gate = (fun _ -> true);
    observe = (fun _ -> ());
    syscall_override = (fun ~tid:_ ~idx:_ ~name:_ -> None);
    choose_wakeup = None;
    suppress_write = (fun _ -> false);
    on_branch = (fun ~tid:_ ~taken:_ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Runtime state                                                       *)
(* ------------------------------------------------------------------ *)

type obj = { cls : string; fields : (string, Value.t) Hashtbl.t }

type citem =
  | S of Ast.stmt
  | CUnlock of Value.objid * int  (* end of a sync block; sid for attribution *)

type frame = {
  mutable cont : citem list;
  locals : (string, Value.t) Hashtbl.t;
  ret_to : string option;  (* variable in the caller receiving the return value *)
}

type tstatus =
  | Runnable
  | BlockedLock of Value.objid
  | BlockedJoin of int
  | InWait of Value.objid
  | Notified of Value.objid     (* woken: must read the condition ghost *)
  | Reacquiring of Value.objid  (* condition read done: must retake the lock *)
  | Finished
  | Crashed

type thread = {
  tid : int;
  mutable frames : frame list;
  mutable status : tstatus;
  mutable held : (Value.objid * int) list;  (* lock -> reentrancy count *)
  mutable wait_restore : int;               (* count to restore after wait *)
  mutable alloc : int;
  mutable d : int;                          (* D(t) *)
  mutable sys_idx : int;
  mutable spawn_idx : int;
  mutable started : bool;
  mutable reads_rev : (int * Value.t) list;
  mutable outputs_rev : string list;
}

exception Rt_crash of int * int * string  (* site, line, message *)

type state = {
  program : Ast.program;
  plan : Plan.t;
  hooks : hooks;
  heap : (Value.objid, obj) Hashtbl.t;
  threads : (int, thread) Hashtbl.t;
  mutable thread_order : int list;  (* creation order, for stable iteration *)
  locks : (Value.objid, int * int) Hashtbl.t;  (* lock -> owner tid, count *)
  waitsets : (Value.objid, int list) Hashtbl.t;  (* FIFO: oldest first *)
  mutable steps : int;
  mutable crashes : crash list;
  mutable syscalls_rev : (int * int * string * Value.t) list;
  mutable trace_rev : Event.access list;
  collect_trace : bool;
  rng : Random.State.t;  (* backs the @rand syscall *)
}

(* ------------------------------------------------------------------ *)
(* Heap helpers                                                        *)
(* ------------------------------------------------------------------ *)

let new_obj st (t : thread) (cls : string) : Value.objid =
  t.alloc <- t.alloc + 1;
  let id = (t.tid * 1_000_000) + t.alloc in
  Hashtbl.replace st.heap id { cls; fields = Hashtbl.create 8 };
  id

let heap_read st (l : Loc.t) : Value.t =
  match Hashtbl.find_opt st.heap l.obj with
  | None -> VNull
  | Some o -> Option.value ~default:Value.VNull (Hashtbl.find_opt o.fields l.field)

let heap_write st (l : Loc.t) (v : Value.t) : unit =
  match Hashtbl.find_opt st.heap l.obj with
  | None ->
    (* ghost objects (negative ids) are materialized on first write *)
    let o = { cls = "$ghost"; fields = Hashtbl.create 4 } in
    Hashtbl.replace o.fields l.field v;
    Hashtbl.replace st.heap l.obj o
  | Some o -> Hashtbl.replace o.fields l.field v

(* ------------------------------------------------------------------ *)
(* Expression evaluation (pure: locals and constants only)             *)
(* ------------------------------------------------------------------ *)

let crash site line fmt = Printf.ksprintf (fun m -> raise (Rt_crash (site, line, m))) fmt

let rec eval (s : Ast.stmt) (locals : (string, Value.t) Hashtbl.t) (e : Ast.expr) : Value.t =
  match e with
  | Int n -> VInt n
  | Bool b -> VBool b
  | Null -> VNull
  | Str str -> VStr str
  | Var x -> (
    match Hashtbl.find_opt locals x with
    | Some v -> v
    | None -> crash s.sid s.line "unbound local variable %s" x)
  | Unop (Not, a) -> (
    match eval s locals a with
    | VBool b -> VBool (not b)
    | v -> crash s.sid s.line "! applied to %s" (Value.to_string v))
  | Unop (Neg, a) -> (
    match eval s locals a with
    | VInt n -> VInt (-n)
    | v -> crash s.sid s.line "unary - applied to %s" (Value.to_string v))
  | Binop (op, a, b) -> eval_binop s locals op a b

and eval_binop s locals op a b : Value.t =
  let open Value in
  match op with
  | And -> (
    match eval s locals a with
    | VBool false -> VBool false
    | VBool true -> (
      match eval s locals b with
      | VBool v -> VBool v
      | v -> crash s.sid s.line "&& applied to %s" (to_string v))
    | v -> crash s.sid s.line "&& applied to %s" (to_string v))
  | Or -> (
    match eval s locals a with
    | VBool true -> VBool true
    | VBool false -> (
      match eval s locals b with
      | VBool v -> VBool v
      | v -> crash s.sid s.line "|| applied to %s" (to_string v))
    | v -> crash s.sid s.line "|| applied to %s" (to_string v))
  | Eq -> VBool (Value.equal (eval s locals a) (eval s locals b))
  | Ne -> VBool (not (Value.equal (eval s locals a) (eval s locals b)))
  | _ -> (
    let va = eval s locals a and vb = eval s locals b in
    match op, va, vb with
    | Add, VInt x, VInt y -> VInt (x + y)
    | Add, VStr x, VStr y -> VStr (x ^ y)
    | Sub, VInt x, VInt y -> VInt (x - y)
    | Mul, VInt x, VInt y -> VInt (x * y)
    | Div, VInt _, VInt 0 -> crash s.sid s.line "division by zero"
    | Div, VInt x, VInt y -> VInt (x / y)
    | Mod, VInt _, VInt 0 -> crash s.sid s.line "modulo by zero"
    | Mod, VInt x, VInt y -> VInt (x mod y)
    | Lt, VInt x, VInt y -> VBool (x < y)
    | Le, VInt x, VInt y -> VBool (x <= y)
    | Gt, VInt x, VInt y -> VBool (x > y)
    | Ge, VInt x, VInt y -> VBool (x >= y)
    | _ ->
      crash s.sid s.line "type error: %s %s %s" (to_string va)
        (Pp.binop_str op) (to_string vb))

let eval_bool (s : Ast.stmt) locals e : bool =
  match eval s locals e with
  | VBool b -> b
  | v -> crash s.sid s.line "expected boolean, got %s" (Value.to_string v)

let eval_ref (s : Ast.stmt) locals e : Value.objid =
  match eval s locals e with
  | VRef o -> o
  | VNull -> crash s.sid s.line "null dereference"
  | v -> crash s.sid s.line "expected object reference, got %s" (Value.to_string v)

(* ------------------------------------------------------------------ *)
(* Shared-access bookkeeping                                           *)
(* ------------------------------------------------------------------ *)

(* Tick D(t), emit the event, return the access descriptor. *)
let access st (t : thread) ~(loc : Loc.t) ~(kind : Event.akind) ~(site : int)
    ~(ghost : Event.ghost_kind) (value : Value.t) : unit =
  t.d <- t.d + 1;
  let a = { Event.tid = t.tid; c = t.d; loc; kind; site; ghost } in
  if st.collect_trace then st.trace_rev <- a :: st.trace_rev;
  (match kind, ghost with
  | Read, NotGhost -> t.reads_rev <- (t.d, value) :: t.reads_rev
  | _ -> ());
  st.hooks.observe (Access (a, value))

(* The pre-event of the next shared access the thread will perform, for the
   gate.  Counter value is what the access *will* get. *)
let pre_of st (t : thread) ~loc ~kind ~site ~ghost : Event.pre =
  ignore st;
  { Event.tid = t.tid; c = t.d + 1; loc; kind; site; ghost }

(* ------------------------------------------------------------------ *)
(* Lock primitives                                                     *)
(* ------------------------------------------------------------------ *)

let lock_free_or_mine st (t : thread) (m : Value.objid) : bool =
  match Hashtbl.find_opt st.locks m with
  | None -> true
  | Some (owner, _) -> owner = t.tid

let do_acquire st (t : thread) (m : Value.objid) ~(site : int) : unit =
  (match Hashtbl.find_opt st.locks m with
  | None -> Hashtbl.replace st.locks m (t.tid, 1)
  | Some (owner, n) ->
    assert (owner = t.tid);
    Hashtbl.replace st.locks m (t.tid, n + 1));
  (match List.assoc_opt m t.held with
  | None -> t.held <- (m, 1) :: t.held
  | Some n -> t.held <- (m, n + 1) :: List.remove_assoc m t.held);
  let l = Loc.lock_ghost m in
  access st t ~loc:l ~kind:Read ~site ~ghost:LockAcqRead (heap_read st l);
  let v = Value.VInt t.tid in
  heap_write st l v;
  access st t ~loc:l ~kind:Write ~site ~ghost:LockAcqWrite v

let do_release st (t : thread) (m : Value.objid) ~(site : int) ~(ghost : Event.ghost_kind)
    ~(full : bool) : unit =
  match Hashtbl.find_opt st.locks m with
  | Some (owner, n) when owner = t.tid ->
    let remaining = if full then 0 else n - 1 in
    if remaining = 0 then Hashtbl.remove st.locks m
    else Hashtbl.replace st.locks m (t.tid, remaining);
    (if full || remaining = 0 then t.held <- List.remove_assoc m t.held
     else t.held <- (m, remaining) :: List.remove_assoc m t.held);
    let l = Loc.lock_ghost m in
    let v = Value.VInt (-t.tid - 1) in
    heap_write st l v;
    access st t ~loc:l ~kind:Write ~site ~ghost v
  | _ -> raise (Rt_crash (site, 0, "unlock of a lock not held"))

(* ------------------------------------------------------------------ *)
(* Enabledness                                                         *)
(* ------------------------------------------------------------------ *)

(* What shared access (if any) does the thread perform next?  Used both to
   consult the replay gate and to decide blocking.  Pure evaluation may crash;
   in that case we report no access so the thread runs and crashes properly. *)
let next_pre st (t : thread) : Event.pre option =
  let shared site = st.plan.shared_site site in
  match t.status with
  | Notified m ->
    Some (pre_of st t ~loc:(Loc.cond_ghost m) ~kind:Read ~site:0 ~ghost:WaitCondRead)
  | Reacquiring m ->
    Some (pre_of st t ~loc:(Loc.lock_ghost m) ~kind:Read ~site:0 ~ghost:WaitReacqRead)
  | Runnable | BlockedLock _ | BlockedJoin _ -> (
    if not t.started then
      Some
        (pre_of st t ~loc:(Loc.thread_ghost t.tid) ~kind:Read ~site:0 ~ghost:ThreadFirstRead)
    else
      match t.frames with
      | [] -> (* next transition is the exit ghost write *)
        Some
          (pre_of st t ~loc:(Loc.thread_ghost t.tid) ~kind:Write ~site:0 ~ghost:ThreadExitWrite)
      | { cont = []; _ } :: _ -> None
      | ({ cont = CUnlock (m, sid) :: _; _ } :: _) ->
        Some (pre_of st t ~loc:(Loc.lock_ghost m) ~kind:Write ~site:sid ~ghost:LockRelWrite)
      | ({ cont = S s :: _; locals; _ } :: _) -> (
        let e = eval s locals in
        try
          match s.node with
          | Load (_, o, f) when shared s.sid ->
            Some (pre_of st t ~loc:(Loc.field (eval_ref s locals o) f) ~kind:Read ~site:s.sid ~ghost:NotGhost)
          | Store (o, f, _) when shared s.sid ->
            Some (pre_of st t ~loc:(Loc.field (eval_ref s locals o) f) ~kind:Write ~site:s.sid ~ghost:NotGhost)
          | LoadIdx (_, a, i) when shared s.sid -> (
            match e a, e i with
            | VRef o, VInt n -> Some (pre_of st t ~loc:(Loc.elem o n) ~kind:Read ~site:s.sid ~ghost:NotGhost)
            | _ -> None)
          | StoreIdx (a, i, _) when shared s.sid -> (
            match e a, e i with
            | VRef o, VInt n -> Some (pre_of st t ~loc:(Loc.elem o n) ~kind:Write ~site:s.sid ~ghost:NotGhost)
            | _ -> None)
          | GlobalLoad (_, g) when shared s.sid ->
            Some (pre_of st t ~loc:(Loc.global g) ~kind:Read ~site:s.sid ~ghost:NotGhost)
          | GlobalStore (g, _) when shared s.sid ->
            Some (pre_of st t ~loc:(Loc.global g) ~kind:Write ~site:s.sid ~ghost:NotGhost)
          | MapGet (_, m, k) when shared s.sid ->
            Some (pre_of st t ~loc:(Loc.mapkey (eval_ref s locals m) (e k)) ~kind:Read ~site:s.sid ~ghost:NotGhost)
          | MapHas (_, m, k) when shared s.sid ->
            Some (pre_of st t ~loc:(Loc.mapkey (eval_ref s locals m) (e k)) ~kind:Read ~site:s.sid ~ghost:NotGhost)
          | MapPut (m, k, _) when shared s.sid ->
            Some (pre_of st t ~loc:(Loc.mapkey (eval_ref s locals m) (e k)) ~kind:Write ~site:s.sid ~ghost:NotGhost)
          | Sync (m, _) | Lock m ->
            Some (pre_of st t ~loc:(Loc.lock_ghost (eval_ref s locals m)) ~kind:Read ~site:s.sid ~ghost:LockAcqRead)
          | Unlock m ->
            Some (pre_of st t ~loc:(Loc.lock_ghost (eval_ref s locals m)) ~kind:Write ~site:s.sid ~ghost:LockRelWrite)
          | Wait m ->
            Some (pre_of st t ~loc:(Loc.lock_ghost (eval_ref s locals m)) ~kind:Write ~site:s.sid ~ghost:WaitRelWrite)
          | Notify m | NotifyAll m ->
            Some (pre_of st t ~loc:(Loc.cond_ghost (eval_ref s locals m)) ~kind:Write ~site:s.sid ~ghost:NotifyWrite)
          | Spawn _ ->
            (* the child's ghost id depends on the fresh tid *)
            let child = (t.tid * 100) + t.spawn_idx + 1 in
            Some (pre_of st t ~loc:(Loc.thread_ghost child) ~kind:Write ~site:s.sid ~ghost:SpawnWrite)
          | Join h -> (
            match e h with
            | VThread target ->
              Some (pre_of st t ~loc:(Loc.thread_ghost target) ~kind:Read ~site:s.sid ~ghost:JoinRead)
            | _ -> None)
          | _ -> None
        with Rt_crash _ -> None))
  | InWait _ | Finished | Crashed -> None

(* Is the thread able to take a transition right now (ignoring the gate)? *)
let semantically_enabled st (t : thread) : bool =
  match t.status with
  | Finished | Crashed | InWait _ -> false
  | Notified _ -> true  (* the condition-ghost read can always proceed *)
  | Reacquiring m -> lock_free_or_mine st t m
  | BlockedLock m -> lock_free_or_mine st t m
  | BlockedJoin target -> (
    match Hashtbl.find_opt st.threads target with
    | Some tt -> tt.status = Finished || tt.status = Crashed
    | None -> true)
  | Runnable -> (
    (* peek for blocking statements *)
    if not t.started then true
    else
      match t.frames with
      | [] -> true
      | { cont = []; _ } :: _ -> true
      | { cont = CUnlock _ :: _; _ } :: _ -> true
      | ({ cont = S s :: _; locals; _ } :: _) -> (
        try
          match s.node with
          | Sync (m, _) | Lock m -> lock_free_or_mine st t (eval_ref s locals m)
          | Join h -> (
            match eval s locals h with
            | VThread target -> (
              match Hashtbl.find_opt st.threads target with
              | Some tt -> tt.status = Finished || tt.status = Crashed
              | None -> true)
            | _ -> true (* will crash when stepped *))
          | _ -> true
        with Rt_crash _ -> true))

let gate_allows st (t : thread) : bool =
  match next_pre st t with None -> true | Some pre -> st.hooks.gate pre

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)
(* ------------------------------------------------------------------ *)

let current_frame (t : thread) : frame = List.hd t.frames

let set_local (t : thread) (x : string) (v : Value.t) : unit =
  Hashtbl.replace (current_frame t).locals x v

let pop_stmt (t : thread) : unit =
  let f = current_frame t in
  f.cont <- List.tl f.cont

(* Perform a shared or local heap read; instrumented sites tick and emit. *)
let do_read st (t : thread) (s : Ast.stmt) (loc : Loc.t) : Value.t =
  let v = heap_read st loc in
  if st.plan.shared_site s.sid then
    access st t ~loc ~kind:Read ~site:s.sid ~ghost:NotGhost v;
  v

let do_write st (t : thread) (s : Ast.stmt) (loc : Loc.t) (v : Value.t) : unit =
  if st.plan.shared_site s.sid then begin
    let pre = pre_of st t ~loc ~kind:Write ~site:s.sid ~ghost:NotGhost in
    if not (st.hooks.suppress_write pre) then heap_write st loc v;
    access st t ~loc ~kind:Write ~site:s.sid ~ghost:NotGhost v
  end
  else heap_write st loc v

let opaque_op st (t : thread) (s : Ast.stmt) (name : string) (args : Value.t list) : Value.t =
  ignore st; ignore t;
  let module V = Value in
  let int1 = function [ V.VInt n ] -> n | _ -> crash s.sid s.line "#%s: expected int" name in
  if String.length name >= 2 && String.sub name 0 2 = "__" then V.VNull
    (* woven instrumentation pseudo-hooks are no-ops when executed directly *)
  else
  match name, args with
  | "hash", [ v ] ->
    let s = V.map_key v in
    let h = ref 17 in
    String.iter (fun ch -> h := (!h * 31) + Char.code ch) s;
    VInt (!h land 0x3FFFFFFF)
  | "strlen", [ V.VStr s ] -> VInt (String.length s)
  | "strcat", [ V.VStr a; V.VStr b ] -> VStr (a ^ b)
  | "str_index", [ V.VStr s; V.VStr sub ] ->
    let n = String.length s and m = String.length sub in
    let rec find i = if i + m > n then -1 else if String.sub s i m = sub then i else find (i + 1) in
    VInt (if m = 0 then 0 else find 0)
  | "to_str", [ v ] -> VStr (V.to_string v)
  | "crc", _ ->
    let n = int1 args in
    let x = n lxor (n lsl 13) in
    let x = x lxor (x asr 7) in
    VInt ((x lxor (x lsl 17)) land 0x3FFFFFFF)
  | "mix", [ V.VInt a; V.VInt b ] -> VInt (((a * a) + (b * b) + (a * b)) land 0x3FFFFFFF)
  | "floor_sqrt", _ ->
    let n = int1 args in
    if n < 0 then crash s.sid s.line "#floor_sqrt of negative"
    else VInt (int_of_float (sqrt (float_of_int n)))
  | _ -> crash s.sid s.line "unknown opaque operation #%s" name

let syscall_value st (t : thread) (s : Ast.stmt) (name : string) (args : Value.t list) : Value.t
    =
  match st.hooks.syscall_override ~tid:t.tid ~idx:t.sys_idx ~name with
  | Some v -> v
  | None -> (
    match name, args with
    | "time", [] -> VInt (st.steps / 10)
    | "nanotime", [] -> VInt ((st.steps * 1000) + (t.tid * 7))
    | "rand", [ VInt n ] when n > 0 -> VInt (Random.State.int st.rng n)
    | "rand", [] -> VInt (Random.State.int st.rng 1_000_000)
    | "read_input", [] -> VInt (Random.State.int st.rng 100)
    | _ -> crash s.sid s.line "bad syscall @%s" name)

let fifo_pop st (m : Value.objid) : int option =
  match Hashtbl.find_opt st.waitsets m with
  | None | Some [] -> None
  | Some (w :: rest) ->
    Hashtbl.replace st.waitsets m rest;
    Some w

let pick_wakeup st (m : Value.objid) : int option =
  match st.hooks.choose_wakeup with
  | None -> fifo_pop st m
  | Some f -> (
    match Hashtbl.find_opt st.waitsets m with
    | None | Some [] -> None
    | Some waiters ->
      let w = f ~lock:m ~waiters in
      Hashtbl.replace st.waitsets m (List.filter (fun x -> x <> w) waiters);
      Some w)

let wake st (w : int) (m : Value.objid) : unit =
  let wt = Hashtbl.find st.threads w in
  wt.status <- Notified m

(* Thread exit: emit the exit ghost write and release any held locks. *)
let finish_thread st (t : thread) ~(crashed : bool) : unit =
  List.iter (fun (m, _) -> do_release st t m ~site:0 ~ghost:LockRelWrite ~full:true) t.held;
  let l = Loc.thread_ghost t.tid in
  let v = Value.VInt t.tid in
  heap_write st l v;
  access st t ~loc:l ~kind:Write ~site:0 ~ghost:ThreadExitWrite v;
  t.status <- (if crashed then Crashed else Finished);
  st.hooks.observe (ThreadFinished { tid = t.tid })

let make_thread ~tid ~frames : thread =
  {
    tid;
    frames;
    status = Runnable;
    held = [];
    wait_restore = 0;
    alloc = 0;
    d = 0;
    sys_idx = 0;
    spawn_idx = 0;
    started = false;
    reads_rev = [];
    outputs_rev = [];
  }

let spawn_thread st (parent : thread) (s : Ast.stmt) (fname : string) (args : Value.t list) :
    int =
  let fd =
    match Ast.find_fn st.program fname with
    | Some fd -> fd
    | None -> crash s.sid s.line "spawn of undefined function %s" fname
  in
  parent.spawn_idx <- parent.spawn_idx + 1;
  if parent.spawn_idx > 99 then crash s.sid s.line "spawn limit (99 per thread) exceeded";
  let tid = (parent.tid * 100) + parent.spawn_idx in
  let locals = Hashtbl.create 16 in
  List.iter2 (fun p v -> Hashtbl.replace locals p v) fd.params args;
  let th = make_thread ~tid ~frames:[ { cont = List.map (fun x -> S x) fd.body; locals; ret_to = None } ] in
  Hashtbl.replace st.threads tid th;
  st.thread_order <- st.thread_order @ [ tid ];
  (* parent writes the child's thread ghost (Section 4.3) *)
  let l = Loc.thread_ghost tid in
  let v = Value.VThread tid in
  heap_write st l v;
  access st parent ~loc:l ~kind:Write ~site:s.sid ~ghost:SpawnWrite v;
  st.hooks.observe (ThreadSpawned { parent = parent.tid; child = tid });
  tid

(* Execute one transition of thread [t].  Assumes semantically enabled and
   gate-approved. *)
let rec step_thread st (t : thread) : unit =
  if not t.started then begin
    t.started <- true;
    let l = Loc.thread_ghost t.tid in
    access st t ~loc:l ~kind:Read ~site:0 ~ghost:ThreadFirstRead (heap_read st l)
  end
  else
    match t.status with
    | Notified m ->
      (* wait_after, part 1: read the condition ghost (pairing the notify) *)
      let cl = Loc.cond_ghost m in
      access st t ~loc:cl ~kind:Read ~site:0 ~ghost:WaitCondRead (heap_read st cl);
      t.status <- Reacquiring m
    | Reacquiring m ->
      (* wait_after, part 2: retake the monitor *)
      let ll = Loc.lock_ghost m in
      access st t ~loc:ll ~kind:Read ~site:0 ~ghost:WaitReacqRead (heap_read st ll);
      Hashtbl.replace st.locks m (t.tid, t.wait_restore);
      t.held <- (m, t.wait_restore) :: t.held;
      t.wait_restore <- 0;
      let v = Value.VInt t.tid in
      heap_write st ll v;
      access st t ~loc:ll ~kind:Write ~site:0 ~ghost:WaitReacqWrite v;
      t.status <- Runnable
    | BlockedLock _ | BlockedJoin _ | Runnable -> (
      t.status <- Runnable;
      match t.frames with
      | [] -> finish_thread st t ~crashed:false
      | { cont = []; ret_to; _ } :: rest ->
        (* implicit return *)
        t.frames <- rest;
        (match rest, ret_to with
        | caller :: _, Some x -> Hashtbl.replace caller.locals x VNull
        | _ -> ())
      | ({ cont = CUnlock (m, sid) :: _; _ } :: _) as _frames ->
        pop_stmt t;
        do_release st t m ~site:sid ~ghost:LockRelWrite ~full:false
      | ({ cont = S s :: _; locals; _ } :: _) -> exec_stmt st t s locals)
    | InWait _ | Finished | Crashed -> assert false

and exec_stmt st (t : thread) (s : Ast.stmt) (locals : (string, Value.t) Hashtbl.t) : unit =
  let e x = eval s locals x in
  match s.node with
  | Nop | Yield -> pop_stmt t
  | Assign (x, v) ->
    let v = e v in
    pop_stmt t;
    set_local t x v
  | Load (x, o, f) ->
    let loc = Loc.field (eval_ref s locals o) f in
    pop_stmt t;
    set_local t x (do_read st t s loc)
  | Store (o, f, v) ->
    let loc = Loc.field (eval_ref s locals o) f in
    let v = e v in
    pop_stmt t;
    do_write st t s loc v
  | LoadIdx (x, a, i) -> (
    match e a, e i with
    | VRef o, VInt n ->
      let len = match heap_read st (Loc.field o "len") with VInt l -> l | _ -> 0 in
      if n < 0 || n >= len then crash s.sid s.line "array index %d out of bounds (len %d)" n len;
      pop_stmt t;
      set_local t x (do_read st t s (Loc.elem o n))
    | VNull, _ -> crash s.sid s.line "null dereference"
    | va, vi ->
      crash s.sid s.line "bad array access %s[%s]" (Value.to_string va) (Value.to_string vi))
  | StoreIdx (a, i, v) -> (
    match e a, e i with
    | VRef o, VInt n ->
      let len = match heap_read st (Loc.field o "len") with VInt l -> l | _ -> 0 in
      if n < 0 || n >= len then crash s.sid s.line "array index %d out of bounds (len %d)" n len;
      let v = e v in
      pop_stmt t;
      do_write st t s (Loc.elem o n) v
    | VNull, _ -> crash s.sid s.line "null dereference"
    | va, _ -> crash s.sid s.line "bad array store into %s" (Value.to_string va))
  | GlobalLoad (x, g) ->
    pop_stmt t;
    set_local t x (do_read st t s (Loc.global g))
  | GlobalStore (g, v) ->
    let v = e v in
    pop_stmt t;
    do_write st t s (Loc.global g) v
  | New (x, cls) ->
    pop_stmt t;
    let id = new_obj st t cls in
    (* initialize declared fields to null: Java-like default initialization;
       these writes are thread-local (the object is unescaped) *)
    (match Ast.class_fields st.program cls with
    | Some fields -> List.iter (fun f -> heap_write st (Loc.field id f) VNull) fields
    | None -> ());
    set_local t x (VRef id)
  | NewArray (x, n) -> (
    match e n with
    | VInt len when len >= 0 ->
      pop_stmt t;
      let id = new_obj st t "[]" in
      heap_write st (Loc.field id "len") (VInt len);
      for i = 0 to len - 1 do
        heap_write st (Loc.elem id i) (VInt 0)
      done;
      set_local t x (VRef id)
    | v -> crash s.sid s.line "bad array length %s" (Value.to_string v))
  | NewMap x ->
    pop_stmt t;
    let id = new_obj st t "map" in
    set_local t x (VRef id)
  | MapGet (x, m, k) ->
    let loc = Loc.mapkey (eval_ref s locals m) (e k) in
    pop_stmt t;
    set_local t x (do_read st t s loc)
  | MapPut (m, k, v) ->
    let loc = Loc.mapkey (eval_ref s locals m) (e k) in
    let v = e v in
    pop_stmt t;
    do_write st t s loc v
  | MapHas (x, m, k) ->
    let loc = Loc.mapkey (eval_ref s locals m) (e k) in
    pop_stmt t;
    let v = do_read st t s loc in
    set_local t x (VBool (v <> VNull))
  | If (c, b1, b2) ->
    let cond = eval_bool s locals c in
    st.hooks.on_branch ~tid:t.tid ~taken:cond;
    let f = current_frame t in
    f.cont <- List.map (fun x -> S x) (if cond then b1 else b2) @ List.tl f.cont
  | While (c, b) ->
    let cond = eval_bool s locals c in
    st.hooks.on_branch ~tid:t.tid ~taken:cond;
    let f = current_frame t in
    if cond then f.cont <- List.map (fun x -> S x) b @ f.cont
    else f.cont <- List.tl f.cont
  | Call (ret, fname, args) -> (
    match Ast.find_fn st.program fname with
    | None -> crash s.sid s.line "call to undefined function %s" fname
    | Some fd ->
      let vals = List.map e args in
      pop_stmt t;
      let callee_locals = Hashtbl.create 16 in
      List.iter2 (fun p v -> Hashtbl.replace callee_locals p v) fd.params vals;
      t.frames <-
        { cont = List.map (fun x -> S x) fd.body; locals = callee_locals; ret_to = ret }
        :: t.frames)
  | Return v -> (
    let rv = match v with Some x -> e x | None -> VNull in
    match t.frames with
    | { ret_to; _ } :: rest ->
      t.frames <- rest;
      (match rest, ret_to with
      | caller :: _, Some x -> Hashtbl.replace caller.locals x rv
      | _ -> ())
    | [] -> assert false)
  | Spawn (h, fname, args) ->
    let vals = List.map e args in
    pop_stmt t;
    let tid = spawn_thread st t s fname vals in
    set_local t h (VThread tid)
  | Join hexpr -> (
    match e hexpr with
    | VThread target -> (
      match Hashtbl.find_opt st.threads target with
      | Some tt when tt.status = Finished || tt.status = Crashed ->
        pop_stmt t;
        let l = Loc.thread_ghost target in
        access st t ~loc:l ~kind:Read ~site:s.sid ~ghost:JoinRead (heap_read st l)
      | Some _ -> t.status <- BlockedJoin target
      | None -> crash s.sid s.line "join of unknown thread %d" target)
    | v -> crash s.sid s.line "join of non-thread %s" (Value.to_string v))
  | Sync (m, body) ->
    let mo = eval_ref s locals m in
    if lock_free_or_mine st t mo then begin
      let f = current_frame t in
      f.cont <- List.map (fun x -> S x) body @ (CUnlock (mo, s.sid) :: List.tl f.cont);
      do_acquire st t mo ~site:s.sid
    end
    else t.status <- BlockedLock mo
  | Lock m ->
    let mo = eval_ref s locals m in
    if lock_free_or_mine st t mo then begin
      pop_stmt t;
      do_acquire st t mo ~site:s.sid
    end
    else t.status <- BlockedLock mo
  | Unlock m ->
    let mo = eval_ref s locals m in
    pop_stmt t;
    (match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid ->
      do_release st t mo ~site:s.sid ~ghost:LockRelWrite ~full:false
    | _ -> crash s.sid s.line "unlock of a lock not held")
  | Wait m -> (
    let mo = eval_ref s locals m in
    match Hashtbl.find_opt st.locks mo with
    | Some (owner, n) when owner = t.tid ->
      pop_stmt t;
      (* wait_before: fully release the monitor *)
      t.wait_restore <- n;
      do_release st t mo ~site:s.sid ~ghost:WaitRelWrite ~full:true;
      t.status <- InWait mo;
      let ws = Option.value ~default:[] (Hashtbl.find_opt st.waitsets mo) in
      Hashtbl.replace st.waitsets mo (ws @ [ t.tid ])
    | _ -> crash s.sid s.line "wait without holding the monitor")
  | Notify m -> (
    let mo = eval_ref s locals m in
    match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid ->
      pop_stmt t;
      let cl = Loc.cond_ghost mo in
      let v = Value.VInt t.tid in
      heap_write st cl v;
      access st t ~loc:cl ~kind:Write ~site:s.sid ~ghost:NotifyWrite v;
      (match pick_wakeup st mo with Some w -> wake st w mo | None -> ())
    | _ -> crash s.sid s.line "notify without holding the monitor")
  | NotifyAll m -> (
    let mo = eval_ref s locals m in
    match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid ->
      pop_stmt t;
      let cl = Loc.cond_ghost mo in
      let v = Value.VInt t.tid in
      heap_write st cl v;
      access st t ~loc:cl ~kind:Write ~site:s.sid ~ghost:NotifyWrite v;
      let rec drain () =
        match fifo_pop st mo with
        | Some w -> wake st w mo; drain ()
        | None -> ()
      in
      drain ()
    | _ -> crash s.sid s.line "notifyAll without holding the monitor")
  | Assert c ->
    let v = eval_bool s locals c in
    if not v then crash s.sid s.line "assertion failed";
    pop_stmt t
  | Print v ->
    let str = Value.to_string (e v) in
    pop_stmt t;
    t.outputs_rev <- str :: t.outputs_rev
  | Syscall (x, name, args) ->
    let vals = List.map e args in
    let v = syscall_value st t s name vals in
    st.syscalls_rev <- (t.tid, t.sys_idx, name, v) :: st.syscalls_rev;
    st.hooks.observe (SyscallEvent { tid = t.tid; idx = t.sys_idx; name; value = v });
    t.sys_idx <- t.sys_idx + 1;
    pop_stmt t;
    set_local t x v
  | Opaque (x, name, args) ->
    let vals = List.map e args in
    let v = opaque_op st t s name vals in
    pop_stmt t;
    set_local t x v

(* ------------------------------------------------------------------ *)
(* Run loop                                                            *)
(* ------------------------------------------------------------------ *)

let run ?(hooks = default_hooks) ?(plan = Plan.all_shared) ?(max_steps = 5_000_000)
    ?(collect_trace = false) ?(seed = 0) ~(sched : Sched.t) (program : Ast.program) : outcome =
  let st =
    {
      program;
      plan;
      hooks;
      heap = Hashtbl.create 1024;
      threads = Hashtbl.create 16;
      thread_order = [];
      locks = Hashtbl.create 16;
      waitsets = Hashtbl.create 16;
      steps = 0;
      crashes = [];
      syscalls_rev = [];
      trace_rev = [];
      collect_trace;
      rng = Random.State.make [| seed; 0x5EED |];
    }
  in
  (* the globals root object *)
  Hashtbl.replace st.heap 0 { cls = "$globals"; fields = Hashtbl.create 16 };
  List.iter (fun g -> heap_write st (Loc.global g) VNull) program.globals;
  let main_thread =
    make_thread ~tid:1
      ~frames:[ { cont = List.map (fun x -> S x) program.main; locals = Hashtbl.create 16; ret_to = None } ]
  in
  main_thread.started <- true;  (* main has no spawn ghost to read *)
  Hashtbl.replace st.threads 1 main_thread;
  st.thread_order <- [ 1 ];
  let finished = ref false in
  let status = ref AllFinished in
  while not !finished do
    let all = st.thread_order in
    let live =
      List.filter
        (fun tid ->
          let t = Hashtbl.find st.threads tid in
          t.status <> Finished && t.status <> Crashed)
        all
    in
    if live = [] then (finished := true; status := AllFinished)
    else begin
      let sem_enabled =
        List.filter (fun tid -> semantically_enabled st (Hashtbl.find st.threads tid)) live
      in
      let runnable =
        List.filter (fun tid -> gate_allows st (Hashtbl.find st.threads tid)) sem_enabled
      in
      if runnable = [] then begin
        finished := true;
        status := (if sem_enabled = [] then Deadlock live else GateStuck sem_enabled)
      end
      else if st.steps >= max_steps then (finished := true; status := StepLimit)
      else begin
        let tid = sched.pick ~step:st.steps ~runnable in
        let tid = if List.mem tid runnable then tid else List.hd runnable in
        let t = Hashtbl.find st.threads tid in
        st.steps <- st.steps + 1;
        (try step_thread st t with
        | Rt_crash (site, line, msg) ->
          st.crashes <- { tid; site; line; msg; c = t.d } :: st.crashes;
          finish_thread st t ~crashed:true)
      end
    end
  done;
  let per_thread f =
    List.map (fun tid -> (tid, f (Hashtbl.find st.threads tid))) st.thread_order
  in
  {
    status = !status;
    steps = st.steps;
    crashes = List.rev st.crashes;
    reads = per_thread (fun t -> List.rev t.reads_rev);
    outputs = per_thread (fun t -> List.rev t.outputs_rev);
    counters = per_thread (fun t -> t.d);
    syscalls = List.rev st.syscalls_rev;
    final_heap =
      Hashtbl.fold (fun id (o : obj) acc -> (id, o) :: acc) st.heap []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map (fun (id, o) ->
             ( id,
               Hashtbl.fold (fun f v acc -> (f, v) :: acc) o.fields []
               |> List.sort compare ));
    trace = List.rev st.trace_rev;
  }

(* ------------------------------------------------------------------ *)
(* Determinism oracle (Theorem 1 observables)                           *)
(* ------------------------------------------------------------------ *)

type mismatch = string

(** Compare the Theorem-1 observables of two runs: per-thread sequences of
    shared-read values, per-thread outputs, and crashes (site + counter). *)
let replay_matches ~(original : outcome) ~(replay : outcome) : mismatch list =
  let ms = ref [] in
  let add fmt = Printf.ksprintf (fun m -> ms := m :: !ms) fmt in
  let cmp_assoc name a b pp_v =
    List.iter
      (fun (tid, xs) ->
        match List.assoc_opt tid b with
        | None -> add "%s: thread %d missing in replay" name tid
        | Some ys ->
          if xs <> ys then
            add "%s: thread %d differs (original %d items, replay %d items%s)" name tid
              (List.length xs) (List.length ys)
              (match
                 List.find_opt (fun (x, y) -> x <> y)
                   (List.combine
                      (List.filteri (fun i _ -> i < min (List.length xs) (List.length ys)) xs)
                      (List.filteri (fun i _ -> i < min (List.length xs) (List.length ys)) ys))
               with
              | Some (x, y) -> Printf.sprintf "; first diff: %s vs %s" (pp_v x) (pp_v y)
              | None -> ""))
      a
  in
  cmp_assoc "reads" original.reads replay.reads (fun (c, v) ->
      Printf.sprintf "(%d,%s)" c (Value.to_string v));
  cmp_assoc "outputs" original.outputs replay.outputs (fun s -> s);
  let crash_key (c : crash) = (c.tid, c.site, c.c, c.msg) in
  let ok = List.map crash_key original.crashes in
  let rk = List.map crash_key replay.crashes in
  if List.sort compare ok <> List.sort compare rk then
    add "crashes differ: original %d, replay %d" (List.length original.crashes)
      (List.length replay.crashes);
  List.rev !ms
