(** The register-bytecode VM: a dispatch-loop interpreter over
    {!Lang.Bytecode} programs ({!Lang.Compile.lower}).

    Semantically this module is a drop-in replacement for {!Interp}: same
    hooks surface, same crash messages and attribution, same D(t) counter
    stream, and — the load-bearing property — the same epoch checkpoint
    values ({!Interp.snapshot}), produced from PC + register frames via
    the compile-time continuation templates.  The differential suite
    (test_vm) holds VM runs byte-identical to the tree interpreter on
    logs and observables.

    Where the speed comes from:
    - flat instruction array, no continuation-chain allocation and no
      closure probes: the inner loop runs instructions of one statement
      until the next boundary pc;
    - baked site ids: the record decision is [shared.(sid)] on an
      immediate, taken straight from the instruction word;
    - open-addressing scalar heap (parallel [obj]/[fld]/[value] arrays,
      linear probing, no deletions) instead of nested hashtables, with a
      separate object registry for classes;
    - pre-boxed constant pool: literals never allocate at runtime;
    - a cached runnable list: the per-step enabledness walk is skipped
      while no transition changed lock/status/thread structure and the
      stepped thread did not stop on a possibly-blocking statement head
      (cache disabled under a replay gate, whose admission is stateful).

    Thread/frame bookkeeping mirrors {!Interp} field for field; shared
    pieces (expression evaluation for enabledness peeking, syscall and
    opaque builtins, the [Rt_crash] exception, the [unbound] sentinel and
    all result types) are {e reused} from it, not duplicated. *)

open Lang
open Bytecode

type vframe = {
  mutable pc : int;
  regs : Value.t array;  (** [0 .. nslots-1] = source slots, rest temps *)
  nslots : int;
  ret_to : int option;
  mutable sync_stack : Value.objid list;  (** innermost first *)
}

type vthread = {
  tid : int;
  mutable frames : vframe list;
  mutable status : Interp.tstatus;
  mutable held : (Value.objid * int) list;
  mutable wait_restore : int;
  mutable alloc : int;
  mutable d : int;
  mutable sys_idx : int;
  mutable spawn_idx : int;
  mutable started : bool;
  mutable reads_rev : (int * Value.t) list;
  mutable outputs_rev : string list;
}

(* ------------------------------------------------------------------ *)
(* Flat heap: open addressing over (obj, fld) with linear probing      *)
(* ------------------------------------------------------------------ *)

let h_empty = min_int

type heap = {
  mutable hobj : int array;
  mutable hfld : int array;
  mutable hval : Value.t array;
  mutable hn : int;
  mutable hmask : int;
}

let heap_make () : heap =
  let cap = 1024 in
  {
    hobj = Array.make cap h_empty;
    hfld = Array.make cap 0;
    hval = Array.make cap Value.VNull;
    hn = 0;
    hmask = cap - 1;
  }

let[@inline] hhash (obj : int) (fld : int) : int =
  let x = (obj * 0x9E3779B1) + (fld * 0x85EBCA77) in
  x lxor (x lsr 17)

let heap_get (h : heap) (obj : int) (fld : int) : Value.t =
  let mask = h.hmask in
  let i = ref (hhash obj fld land mask) in
  let v = ref Value.VNull in
  let go = ref true in
  while !go do
    let o = Array.unsafe_get h.hobj !i in
    if o = h_empty then go := false
    else if o = obj && Array.unsafe_get h.hfld !i = fld then begin
      v := Array.unsafe_get h.hval !i;
      go := false
    end
    else i := (!i + 1) land mask
  done;
  !v

let rec heap_set (h : heap) (obj : int) (fld : int) (v : Value.t) : unit =
  let mask = h.hmask in
  let i = ref (hhash obj fld land mask) in
  let go = ref true in
  while !go do
    let o = Array.unsafe_get h.hobj !i in
    if o = h_empty then begin
      go := false;
      if 4 * (h.hn + 1) > 3 * (mask + 1) then begin
        heap_grow h;
        heap_set h obj fld v
      end
      else begin
        Array.unsafe_set h.hobj !i obj;
        Array.unsafe_set h.hfld !i fld;
        Array.unsafe_set h.hval !i v;
        h.hn <- h.hn + 1
      end
    end
    else if o = obj && Array.unsafe_get h.hfld !i = fld then begin
      Array.unsafe_set h.hval !i v;
      go := false
    end
    else i := (!i + 1) land mask
  done

and heap_grow (h : heap) : unit =
  let old_obj = h.hobj and old_fld = h.hfld and old_val = h.hval in
  let cap = 2 * (h.hmask + 1) in
  h.hobj <- Array.make cap h_empty;
  h.hfld <- Array.make cap 0;
  h.hval <- Array.make cap Value.VNull;
  h.hmask <- cap - 1;
  h.hn <- 0;
  Array.iteri
    (fun i o -> if o <> h_empty then heap_set h o old_fld.(i) old_val.(i))
    old_obj

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type state = {
  prog : Bytecode.program;
  hooks : Interp.hooks;
  shared : bool array;
  heap : heap;
  objs : (Value.objid, string) Hashtbl.t;  (* object id -> class *)
  threads : (int, vthread) Hashtbl.t;
  mutable order : vthread array;
  mutable n_threads : int;
  locks : (Value.objid, int * int) Hashtbl.t;
  waitsets : (Value.objid, int Queue.t) Hashtbl.t;
  mutable steps : int;
  mutable crashes : Interp.crash list;
  mutable syscalls_rev : (int * int * string * Value.t) list;
  mutable trace_rev : Event.access list;
  collect_trace : bool;
  rng : Random.State.t;
  consts : Value.t array;  (* pre-boxed constant pool *)
  maybe_blocking : bool array;
      (* per pc: boundary whose statement head can block (sync/lock/join);
         resting there invalidates the runnable cache *)
  mutable cached_runnable : int list;
  mutable cache_ok : bool;
  mutable dirty : bool;  (* set by any transition that can change enabledness *)
}

let shared_site st (sid : int) : bool =
  sid >= 0 && sid < Array.length st.shared && Array.unsafe_get st.shared sid

let push_thread st (t : vthread) : unit =
  Hashtbl.replace st.threads t.tid t;
  let n = st.n_threads in
  if n = Array.length st.order then begin
    let bigger = Array.make (max 8 (2 * n)) t in
    Array.blit st.order 0 bigger 0 n;
    st.order <- bigger
  end;
  st.order.(n) <- t;
  st.n_threads <- n + 1;
  st.dirty <- true

let new_obj st (t : vthread) (cls : string) : Value.objid =
  t.alloc <- t.alloc + 1;
  let id = (t.tid * 1_000_000) + t.alloc in
  Hashtbl.replace st.objs id cls;
  id

(* Ghost-object materialization: the only writes that can target an
   unregistered object are thread ghosts (negative ids) — every other
   object id flows out of [new_obj] or a restored snapshot. *)
let ghost_write st (obj : int) (fld : int) (v : Value.t) : unit =
  if obj < 0 && not (Hashtbl.mem st.objs obj) then Hashtbl.replace st.objs obj "$ghost";
  heap_set st.heap obj fld v

(* ------------------------------------------------------------------ *)
(* Crash + operand access                                              *)
(* ------------------------------------------------------------------ *)

let vcrash st (pc : int) fmt =
  Printf.ksprintf
    (fun m ->
      raise (Interp.Rt_crash (st.prog.bc_sid_at.(pc), st.prog.bc_line_at.(pc), m)))
    fmt

let reg_name st (pc : int) (r : int) : string =
  let fi = st.prog.bc_fns.(st.prog.bc_fn_of_pc.(pc)) in
  if r < Array.length fi.fi_reg_names then fi.fi_reg_names.(r)
  else Printf.sprintf "$r%d" r

let[@inline] read_op st (f : vframe) (pc : int) (o : operand) : Value.t =
  if o >= 0 then begin
    let v = Array.unsafe_get f.regs o in
    if v == Interp.unbound then
      vcrash st pc "unbound local variable %s" (reg_name st pc o)
    else v
  end
  else Array.unsafe_get st.consts (-1 - o)

let[@inline] as_ref st (pc : int) (v : Value.t) : Value.objid =
  match v with
  | VRef o -> o
  | VNull -> vcrash st pc "null dereference"
  | v -> vcrash st pc "expected object reference, got %s" (Value.to_string v)

let[@inline] as_bool st (pc : int) (v : Value.t) : bool =
  match v with
  | VBool b -> b
  | v -> vcrash st pc "expected boolean, got %s" (Value.to_string v)

(* ------------------------------------------------------------------ *)
(* Shared-access bookkeeping (mirrors Interp.access / do_read/do_write) *)
(* ------------------------------------------------------------------ *)

let access st (t : vthread) ~(obj : int) ~(fld : int) ~(kind : Event.akind)
    ~(site : int) ~(ghost : Event.ghost_kind) (value : Value.t) : unit =
  t.d <- t.d + 1;
  (match kind, ghost with
  | Event.Read, Event.NotGhost -> t.reads_rev <- (t.d, value) :: t.reads_rev
  | _ -> ());
  if st.collect_trace then
    st.trace_rev <-
      { Event.tid = t.tid; c = t.d; loc = { Loc.obj; fld }; kind; site; ghost }
      :: st.trace_rev;
  (match st.hooks.on_shared with
  | None -> ()
  | Some f -> f ~tid:t.tid ~c:t.d ~loc:{ Loc.obj; fld } ~kind ~site ~ghost);
  match st.hooks.observe with
  | None -> ()
  | Some f ->
    f (Access ({ Event.tid = t.tid; c = t.d; loc = { Loc.obj; fld }; kind; site; ghost }, value))

let[@inline] do_read st (t : vthread) ~(obj : int) ~(fld : int) ~(sid : int) : Value.t =
  let v = heap_get st.heap obj fld in
  if shared_site st sid then access st t ~obj ~fld ~kind:Read ~site:sid ~ghost:NotGhost v;
  v

let[@inline] do_write st (t : vthread) ~(obj : int) ~(fld : int) ~(sid : int)
    (v : Value.t) : unit =
  if shared_site st sid then begin
    (match st.hooks.suppress_write with
    | None -> heap_set st.heap obj fld v
    | Some suppress ->
      if
        not
          (suppress
             {
               Event.tid = t.tid;
               c = t.d + 1;
               loc = { Loc.obj; fld };
               kind = Write;
               site = sid;
               ghost = NotGhost;
             })
      then heap_set st.heap obj fld v);
    access st t ~obj ~fld ~kind:Write ~site:sid ~ghost:NotGhost v
  end
  else heap_set st.heap obj fld v

(* ------------------------------------------------------------------ *)
(* Lock primitives (ghost protocol of Section 4.3, as in Interp)       *)
(* ------------------------------------------------------------------ *)

let lock_free_or_mine st (t : vthread) (m : Value.objid) : bool =
  match Hashtbl.find_opt st.locks m with
  | None -> true
  | Some (owner, _) -> owner = t.tid

let do_acquire st (t : vthread) (m : Value.objid) ~(site : int) : unit =
  st.dirty <- true;
  (match Hashtbl.find_opt st.locks m with
  | None -> Hashtbl.replace st.locks m (t.tid, 1)
  | Some (owner, n) ->
    assert (owner = t.tid);
    Hashtbl.replace st.locks m (t.tid, n + 1));
  (match List.assoc_opt m t.held with
  | None -> t.held <- (m, 1) :: t.held
  | Some n -> t.held <- (m, n + 1) :: List.remove_assoc m t.held);
  access st t ~obj:m ~fld:Loc.lock_fld ~kind:Read ~site ~ghost:LockAcqRead
    (heap_get st.heap m Loc.lock_fld);
  let v = Value.VInt t.tid in
  heap_set st.heap m Loc.lock_fld v;
  access st t ~obj:m ~fld:Loc.lock_fld ~kind:Write ~site ~ghost:LockAcqWrite v

let do_release st (t : vthread) (m : Value.objid) ~(site : int)
    ~(ghost : Event.ghost_kind) ~(full : bool) : unit =
  match Hashtbl.find_opt st.locks m with
  | Some (owner, n) when owner = t.tid ->
    st.dirty <- true;
    let remaining = if full then 0 else n - 1 in
    if remaining = 0 then Hashtbl.remove st.locks m
    else Hashtbl.replace st.locks m (t.tid, remaining);
    (if full || remaining = 0 then t.held <- List.remove_assoc m t.held
     else t.held <- (m, remaining) :: List.remove_assoc m t.held);
    let v = Value.VInt (-t.tid - 1) in
    heap_set st.heap m Loc.lock_fld v;
    access st t ~obj:m ~fld:Loc.lock_fld ~kind:Write ~site ~ghost v
  | _ -> raise (Interp.Rt_crash (site, 0, "unlock of a lock not held"))

let fifo_pop st (m : Value.objid) : int option =
  match Hashtbl.find_opt st.waitsets m with
  | None -> None
  | Some q -> if Queue.is_empty q then None else Some (Queue.pop q)

let pick_wakeup st (m : Value.objid) : int option =
  match st.hooks.choose_wakeup with
  | None -> fifo_pop st m
  | Some f -> (
    match Hashtbl.find_opt st.waitsets m with
    | None -> None
    | Some q when Queue.is_empty q -> None
    | Some q ->
      let waiters = List.rev (Queue.fold (fun acc x -> x :: acc) [] q) in
      let w = f ~lock:m ~waiters in
      Queue.clear q;
      List.iter (fun x -> if x <> w then Queue.push x q) waiters;
      Some w)

let wake st (w : int) (m : Value.objid) : unit =
  let wt = Hashtbl.find st.threads w in
  wt.status <- Notified m;
  st.dirty <- true

let observe_event st (ev : Event.t) : unit =
  match st.hooks.observe with None -> () | Some f -> f ev

let finish_thread st (t : vthread) ~(crashed : bool) : unit =
  st.dirty <- true;
  List.iter
    (fun (m, _) -> do_release st t m ~site:0 ~ghost:LockRelWrite ~full:true)
    t.held;
  let obj = -(t.tid + 1) in
  let v = Value.VInt t.tid in
  ghost_write st obj Loc.thread_fld v;
  access st t ~obj ~fld:Loc.thread_fld ~kind:Write ~site:0 ~ghost:ThreadExitWrite v;
  t.status <- (if crashed then Crashed else Finished);
  observe_event st (ThreadFinished { tid = t.tid })

let make_thread ~tid ~frames : vthread =
  {
    tid;
    frames;
    status = Runnable;
    held = [];
    wait_restore = 0;
    alloc = 0;
    d = 0;
    sys_idx = 0;
    spawn_idx = 0;
    started = false;
    reads_rev = [];
    outputs_rev = [];
  }

let new_vframe (fi : fninfo) ~(ret_to : int option) : vframe =
  {
    pc = fi.fi_entry;
    regs = Array.make fi.fi_nregs Interp.unbound;
    nslots = fi.fi_nslots;
    ret_to;
    sync_stack = [];
  }

(* ------------------------------------------------------------------ *)
(* Instruction dispatch                                                *)
(* ------------------------------------------------------------------ *)

let ast_binop = function
  | BAdd -> Ast.Add | BSub -> Ast.Sub | BMul -> Ast.Mul | BDiv -> Ast.Div
  | BMod -> Ast.Mod | BLt -> Ast.Lt | BLe -> Ast.Le | BGt -> Ast.Gt | BGe -> Ast.Ge

(* The full array-access pre-check, shared by loads, stores and
   [ICheckIdx]: null/type, then bounds against the (uninstrumented)
   length field.  Crash messages and order replicate [Interp.exec_stmt]. *)
let arr_check st (pc : int) ~(store : bool) (va : Value.t) (vi : Value.t) :
    Value.objid * int =
  match va, vi with
  | Value.VRef o, Value.VInt n ->
    let len = match heap_get st.heap o Loc.len_fld with Value.VInt l -> l | _ -> 0 in
    if n < 0 || n >= len then
      vcrash st pc "array index %d out of bounds (len %d)" n len;
    (o, n)
  | VNull, _ -> vcrash st pc "null dereference"
  | va, vi ->
    if store then vcrash st pc "bad array store into %s" (Value.to_string va)
    else
      vcrash st pc "bad array access %s[%s]" (Value.to_string va)
        (Value.to_string vi)

(* Pop the head frame, writing [rv] to the caller's return slot. *)
let pop_frame (t : vthread) (rv : Value.t) : unit =
  match t.frames with
  | fr :: rest -> (
    t.frames <- rest;
    match rest, fr.ret_to with
    | caller :: _, Some x -> caller.regs.(x) <- rv
    | _ -> ())
  | [] -> assert false

(* Execute one instruction.  Returns [true] when the transition is
   complete regardless of where the pc landed (frame push/pop, blocking,
   wait, or an instruction that is a whole transition by itself);
   [false] lets the statement loop continue to the next boundary.

   pc discipline: [f.pc] stays on the instruction while it can still
   crash "un-popped" (crash rewinds attribution to the statement entry
   via [bc_stmt_start]); instructions whose crashes happen {e after} the
   tree interpreter popped the statement (unlock owner check, sync-exit
   release, spawn resolution) advance [f.pc] to the jump-threaded next
   statement first, exactly reproducing the interpreter's continuation
   position in crash snapshots. *)
let exec_instr st (t : vthread) (f : vframe) (pc : int) (ins : instr) : bool =
  match ins with
  | IHalt ->
    (* implicit return: a frame resting at pc 0 is a CDone continuation *)
    pop_frame t Value.VNull;
    true
  | INop ->
    f.pc <- pc + 1;
    false
  | IMove (dst, src) ->
    Array.unsafe_set f.regs dst (read_op st f pc src);
    f.pc <- pc + 1;
    false
  | IBin (k, dst, a, b) ->
    let va = read_op st f pc a in
    let vb = read_op st f pc b in
    let v : Value.t =
      match k, va, vb with
      | BAdd, VInt x, VInt y -> VInt (x + y)
      | BAdd, VStr x, VStr y -> VStr (x ^ y)
      | BSub, VInt x, VInt y -> VInt (x - y)
      | BMul, VInt x, VInt y -> VInt (x * y)
      | BDiv, VInt _, VInt 0 -> vcrash st pc "division by zero"
      | BDiv, VInt x, VInt y -> VInt (x / y)
      | BMod, VInt _, VInt 0 -> vcrash st pc "modulo by zero"
      | BMod, VInt x, VInt y -> VInt (x mod y)
      | BLt, VInt x, VInt y -> VBool (x < y)
      | BLe, VInt x, VInt y -> VBool (x <= y)
      | BGt, VInt x, VInt y -> VBool (x > y)
      | BGe, VInt x, VInt y -> VBool (x >= y)
      | _ ->
        vcrash st pc "type error: %s %s %s" (Value.to_string va)
          (Pp.binop_str (ast_binop k)) (Value.to_string vb)
    in
    Array.unsafe_set f.regs dst v;
    f.pc <- pc + 1;
    false
  | IEq (dst, a, b) ->
    (* OCaml application order: b evaluates (and unbound-checks) first *)
    let vb = read_op st f pc b in
    let va = read_op st f pc a in
    Array.unsafe_set f.regs dst (VBool (Value.equal va vb));
    f.pc <- pc + 1;
    false
  | INe (dst, a, b) ->
    let vb = read_op st f pc b in
    let va = read_op st f pc a in
    Array.unsafe_set f.regs dst (VBool (not (Value.equal va vb)));
    f.pc <- pc + 1;
    false
  | INot (dst, a) ->
    (match read_op st f pc a with
    | VBool b -> f.regs.(dst) <- VBool (not b)
    | v -> vcrash st pc "! applied to %s" (Value.to_string v));
    f.pc <- pc + 1;
    false
  | INeg (dst, a) ->
    (match read_op st f pc a with
    | VInt n -> f.regs.(dst) <- VInt (-n)
    | v -> vcrash st pc "unary - applied to %s" (Value.to_string v));
    f.pc <- pc + 1;
    false
  | IBoolJmp (dst, a, target, is_and) ->
    (match read_op st f pc a with
    | VBool b ->
      if b = is_and then f.pc <- pc + 1 (* fall through to the right operand *)
      else begin
        f.regs.(dst) <- VBool b;
        f.pc <- target
      end
    | v -> vcrash st pc "%s applied to %s" (if is_and then "&&" else "||")
             (Value.to_string v));
    false
  | IBoolMove (dst, src, is_and) ->
    (match read_op st f pc src with
    | VBool _ as v -> f.regs.(dst) <- v
    | v -> vcrash st pc "%s applied to %s" (if is_and then "&&" else "||")
             (Value.to_string v));
    f.pc <- pc + 1;
    false
  | IJmp target ->
    f.pc <- target;
    false
  | IJmpIfNot (c, target) ->
    let b = as_bool st pc (read_op st f pc c) in
    (match st.hooks.on_branch with None -> () | Some fn -> fn ~tid:t.tid ~taken:b);
    f.pc <- (if b then pc + 1 else target);
    false
  | ICheckRef o ->
    ignore (as_ref st pc (read_op st f pc o));
    f.pc <- pc + 1;
    false
  | ICheckIdx (a, i) ->
    let va = read_op st f pc a in
    let vi = read_op st f pc i in
    ignore (arr_check st pc ~store:true va vi);
    f.pc <- pc + 1;
    false
  | ILoad (dst, o, fld, sid) ->
    let obj = as_ref st pc (read_op st f pc o) in
    Array.unsafe_set f.regs dst (do_read st t ~obj ~fld ~sid);
    f.pc <- pc + 1;
    false
  | IStore (o, fld, v, sid) ->
    let obj = as_ref st pc (read_op st f pc o) in
    let v = read_op st f pc v in
    do_write st t ~obj ~fld ~sid v;
    f.pc <- pc + 1;
    false
  | ILoadIdx (dst, a, i, sid) ->
    let va = read_op st f pc a in
    let vi = read_op st f pc i in
    let obj, n = arr_check st pc ~store:false va vi in
    Array.unsafe_set f.regs dst (do_read st t ~obj ~fld:(Loc.fld_of_elem n) ~sid);
    f.pc <- pc + 1;
    false
  | IStoreIdx (a, i, v, sid) ->
    let va = read_op st f pc a in
    let vi = read_op st f pc i in
    let obj, n = arr_check st pc ~store:true va vi in
    let v = read_op st f pc v in
    do_write st t ~obj ~fld:(Loc.fld_of_elem n) ~sid v;
    f.pc <- pc + 1;
    false
  | IGLoad (dst, g, sid) ->
    Array.unsafe_set f.regs dst (do_read st t ~obj:0 ~fld:g ~sid);
    f.pc <- pc + 1;
    false
  | IGStore (g, v, sid) ->
    let v = read_op st f pc v in
    do_write st t ~obj:0 ~fld:g ~sid v;
    f.pc <- pc + 1;
    false
  | INew (dst, cls, fids) ->
    let id = new_obj st t cls in
    Array.iter (fun fld -> heap_set st.heap id fld Value.VNull) fids;
    f.regs.(dst) <- VRef id;
    f.pc <- pc + 1;
    false
  | INewArray (dst, n) ->
    (match read_op st f pc n with
    | VInt len when len >= 0 ->
      let id = new_obj st t "[]" in
      heap_set st.heap id Loc.len_fld (VInt len);
      for i = 0 to len - 1 do
        heap_set st.heap id (Loc.fld_of_elem i) (VInt 0)
      done;
      f.regs.(dst) <- VRef id
    | v -> vcrash st pc "bad array length %s" (Value.to_string v));
    f.pc <- pc + 1;
    false
  | INewMap dst ->
    f.regs.(dst) <- VRef (new_obj st t "map");
    f.pc <- pc + 1;
    false
  | IMapGet (dst, m, k, sid) ->
    (* application order: key evaluates first, then the map *)
    let vk = read_op st f pc k in
    let obj = as_ref st pc (read_op st f pc m) in
    Array.unsafe_set f.regs dst (do_read st t ~obj ~fld:(Loc.mapkey_fld vk) ~sid);
    f.pc <- pc + 1;
    false
  | IMapPut (m, k, v, sid) ->
    let vk = read_op st f pc k in
    let obj = as_ref st pc (read_op st f pc m) in
    let v = read_op st f pc v in
    do_write st t ~obj ~fld:(Loc.mapkey_fld vk) ~sid v;
    f.pc <- pc + 1;
    false
  | IMapHas (dst, m, k, sid) ->
    let vk = read_op st f pc k in
    let obj = as_ref st pc (read_op st f pc m) in
    let v = do_read st t ~obj ~fld:(Loc.mapkey_fld vk) ~sid in
    f.regs.(dst) <- VBool (v <> Value.VNull);
    f.pc <- pc + 1;
    false
  | ICall (ret, fidx, args) ->
    let fi = st.prog.bc_fns.(fidx) in
    let n = Array.length args in
    let vals = Array.make (max n 1) Value.VNull in
    for j = 0 to n - 1 do
      vals.(j) <- read_op st f pc args.(j)
    done;
    f.pc <- st.prog.bc_threaded.(pc + 1);
    if n <> fi.fi_nparams then invalid_arg "List.iter2";
    let callee = new_vframe fi ~ret_to:(if ret < 0 then None else Some ret) in
    Array.blit vals 0 callee.regs 0 n;
    t.frames <- callee :: t.frames;
    true
  | ICallUndef fname -> vcrash st pc "call to undefined function %s" fname
  | IRet v ->
    let rv = read_op st f pc v in
    (* early return abandons any open sync blocks, as the tree
       interpreter's dropped CUnlock nodes did: the locks stay held *)
    pop_frame t rv;
    true
  | ISpawn (dst, fidx, fname, args) ->
    let n = Array.length args in
    let vals = Array.make (max n 1) Value.VNull in
    for j = 0 to n - 1 do
      vals.(j) <- read_op st f pc args.(j)
    done;
    (* the statement is popped before resolution: these crashes snapshot
       with the spawn already consumed, as in Interp.spawn_thread *)
    f.pc <- st.prog.bc_threaded.(pc + 1);
    if fidx < 0 then vcrash st pc "spawn of undefined function %s" fname;
    let fi = st.prog.bc_fns.(fidx) in
    t.spawn_idx <- t.spawn_idx + 1;
    if t.spawn_idx > 99 then vcrash st pc "spawn limit (99 per thread) exceeded";
    let tid = (t.tid * 100) + t.spawn_idx in
    let callee = new_vframe fi ~ret_to:None in
    if n <> fi.fi_nparams then invalid_arg "List.iter2";
    Array.blit vals 0 callee.regs 0 n;
    push_thread st (make_thread ~tid ~frames:[ callee ]);
    let obj = -(tid + 1) in
    let v = Value.VThread tid in
    ghost_write st obj Loc.thread_fld v;
    access st t ~obj ~fld:Loc.thread_fld ~kind:Write ~site:st.prog.bc_sid_at.(pc)
      ~ghost:SpawnWrite v;
    observe_event st (ThreadSpawned { parent = t.tid; child = tid });
    f.regs.(dst) <- VThread tid;
    true
  | IJoin (h, sid) ->
    (match read_op st f pc h with
    | VThread target -> (
      match Hashtbl.find_opt st.threads target with
      | Some tt when tt.status = Interp.Finished || tt.status = Interp.Crashed ->
        f.pc <- st.prog.bc_threaded.(pc + 1);
        let obj = -(target + 1) in
        access st t ~obj ~fld:Loc.thread_fld ~kind:Read ~site:sid ~ghost:JoinRead
          (heap_get st.heap obj Loc.thread_fld)
      | Some _ ->
        t.status <- BlockedJoin target;
        f.pc <- st.prog.bc_stmt_start.(pc);
        st.dirty <- true
      | None -> vcrash st pc "join of unknown thread %d" target)
    | v -> vcrash st pc "join of non-thread %s" (Value.to_string v));
    true
  | IEnterSync (m, sid) ->
    let mo = as_ref st pc (read_op st f pc m) in
    if lock_free_or_mine st t mo then begin
      f.pc <- pc + 1;  (* body entry or the IExitSync, both boundaries *)
      f.sync_stack <- mo :: f.sync_stack;
      do_acquire st t mo ~site:sid
    end
    else begin
      t.status <- BlockedLock mo;
      f.pc <- st.prog.bc_stmt_start.(pc);
      st.dirty <- true
    end;
    true
  | IExitSync sid ->
    (* its own transition (the CUnlock); pc and sync stack advance
       before the release so a not-held crash matches Interp's
       already-advanced continuation *)
    (match f.sync_stack with
    | mo :: rest ->
      f.sync_stack <- rest;
      f.pc <- st.prog.bc_threaded.(pc + 1);
      do_release st t mo ~site:sid ~ghost:LockRelWrite ~full:false
    | [] -> assert false);
    true
  | ILock (m, sid) ->
    let mo = as_ref st pc (read_op st f pc m) in
    if lock_free_or_mine st t mo then begin
      f.pc <- pc + 1;
      do_acquire st t mo ~site:sid
    end
    else begin
      t.status <- BlockedLock mo;
      f.pc <- st.prog.bc_stmt_start.(pc);
      st.dirty <- true
    end;
    true
  | IUnlock (m, sid) ->
    let mo = as_ref st pc (read_op st f pc m) in
    f.pc <- st.prog.bc_threaded.(pc + 1);  (* popped before the owner check *)
    (match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid ->
      do_release st t mo ~site:sid ~ghost:LockRelWrite ~full:false
    | _ -> vcrash st pc "unlock of a lock not held");
    true
  | IWait (m, sid) ->
    let mo = as_ref st pc (read_op st f pc m) in
    (match Hashtbl.find_opt st.locks mo with
    | Some (owner, n) when owner = t.tid ->
      f.pc <- st.prog.bc_threaded.(pc + 1);
      t.wait_restore <- n;
      do_release st t mo ~site:sid ~ghost:WaitRelWrite ~full:true;
      t.status <- InWait mo;
      st.dirty <- true;
      let q =
        match Hashtbl.find_opt st.waitsets mo with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace st.waitsets mo q;
          q
      in
      Queue.push t.tid q
    | _ -> vcrash st pc "wait without holding the monitor");
    true
  | INotify (m, sid, all) ->
    let mo = as_ref st pc (read_op st f pc m) in
    (match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid ->
      f.pc <- st.prog.bc_threaded.(pc + 1);
      let v = Value.VInt t.tid in
      heap_set st.heap mo Loc.cond_fld v;
      access st t ~obj:mo ~fld:Loc.cond_fld ~kind:Write ~site:sid ~ghost:NotifyWrite v;
      if all then begin
        let rec drain () =
          match fifo_pop st mo with
          | Some w ->
            wake st w mo;
            drain ()
          | None -> ()
        in
        drain ()
      end
      else (match pick_wakeup st mo with Some w -> wake st w mo | None -> ())
    | _ ->
      vcrash st pc "%s without holding the monitor"
        (if all then "notifyAll" else "notify"));
    true
  | IAssert c ->
    if not (as_bool st pc (read_op st f pc c)) then vcrash st pc "assertion failed";
    f.pc <- pc + 1;
    false
  | IPrint v ->
    let s = Value.to_string (read_op st f pc v) in
    f.pc <- pc + 1;
    t.outputs_rev <- s :: t.outputs_rev;
    false
  | ISyscall (dst, name, args) ->
    let vals = List.map (fun o -> read_op st f pc o) (Array.to_list args) in
    let v =
      Interp.syscall_builtin ~override:st.hooks.syscall_override ~steps:st.steps
        ~tid:t.tid ~sys_idx:t.sys_idx ~rng:st.rng ~site:st.prog.bc_sid_at.(pc)
        ~line:st.prog.bc_line_at.(pc) name vals
    in
    st.syscalls_rev <- (t.tid, t.sys_idx, name, v) :: st.syscalls_rev;
    observe_event st (SyscallEvent { tid = t.tid; idx = t.sys_idx; name; value = v });
    t.sys_idx <- t.sys_idx + 1;
    f.regs.(dst) <- v;
    f.pc <- pc + 1;
    false
  | IOpaque (dst, name, args) ->
    let vals = List.map (fun o -> read_op st f pc o) (Array.to_list args) in
    let v =
      Interp.opaque_op ~site:st.prog.bc_sid_at.(pc) ~line:st.prog.bc_line_at.(pc)
        name vals
    in
    f.regs.(dst) <- v;
    f.pc <- pc + 1;
    false

(* Run instructions of the current statement until the transition
   completes or the pc rests on the next statement boundary.  [code] and
   [starts] arrive as locals so the loop re-reads neither [st.prog] nor its
   fields per instruction. *)
let rec exec_loop st (t : vthread) (f : vframe) (code : instr array)
    (starts : bool array) : unit =
  let pc = f.pc in
  if exec_instr st t f pc (Array.unsafe_get code pc) then ()
  else if Array.unsafe_get starts f.pc then ()
  else exec_loop st t f code starts

let[@inline] exec_until_boundary st (t : vthread) (f : vframe) : unit =
  exec_loop st t f st.prog.bc_code st.prog.bc_starts

(* One scheduler transition of thread [t]: mirrors Interp.step_thread. *)
let step_thread st (t : vthread) : unit =
  if not t.started then begin
    t.started <- true;
    let obj = -(t.tid + 1) in
    access st t ~obj ~fld:Loc.thread_fld ~kind:Read ~site:0 ~ghost:ThreadFirstRead
      (heap_get st.heap obj Loc.thread_fld)
  end
  else
    match t.status with
    | Notified m ->
      access st t ~obj:m ~fld:Loc.cond_fld ~kind:Read ~site:0 ~ghost:WaitCondRead
        (heap_get st.heap m Loc.cond_fld);
      t.status <- Reacquiring m;
      st.dirty <- true
    | Reacquiring m ->
      access st t ~obj:m ~fld:Loc.lock_fld ~kind:Read ~site:0 ~ghost:WaitReacqRead
        (heap_get st.heap m Loc.lock_fld);
      Hashtbl.replace st.locks m (t.tid, t.wait_restore);
      t.held <- (m, t.wait_restore) :: t.held;
      t.wait_restore <- 0;
      let v = Value.VInt t.tid in
      heap_set st.heap m Loc.lock_fld v;
      access st t ~obj:m ~fld:Loc.lock_fld ~kind:Write ~site:0 ~ghost:WaitReacqWrite v;
      t.status <- Runnable;
      st.dirty <- true
    | BlockedLock _ | BlockedJoin _ | Runnable -> (
      t.status <- Runnable;
      match t.frames with
      | [] -> finish_thread st t ~crashed:false
      | f :: _ -> exec_until_boundary st t f)
    | InWait _ | Finished | Crashed -> assert false

(* ------------------------------------------------------------------ *)
(* Enabledness + the replay gate (mirrors Interp)                      *)
(* ------------------------------------------------------------------ *)

let pre_of (t : vthread) ~loc ~kind ~site ~ghost : Event.pre =
  { Event.tid = t.tid; c = t.d + 1; loc; kind; site; ghost }

(* The next shared access the thread will perform, computed by peeking at
   the resolved statement heading the resting pc ([bc_stmt_at]).  Pure
   expression evaluation reuses [Interp.eval] over the register frame:
   registers [0..nslots-1] are exactly the statement's slots. *)
let next_pre st (t : vthread) : Event.pre option =
  let shared site = shared_site st site in
  match t.status with
  | Interp.Notified m ->
    Some (pre_of t ~loc:(Loc.cond_ghost m) ~kind:Read ~site:0 ~ghost:WaitCondRead)
  | Reacquiring m ->
    Some (pre_of t ~loc:(Loc.lock_ghost m) ~kind:Read ~site:0 ~ghost:WaitReacqRead)
  | Runnable | BlockedLock _ | BlockedJoin _ -> (
    if not t.started then
      Some
        (pre_of t ~loc:(Loc.thread_ghost t.tid) ~kind:Read ~site:0 ~ghost:ThreadFirstRead)
    else
      match t.frames with
      | [] ->
        Some
          (pre_of t ~loc:(Loc.thread_ghost t.tid) ~kind:Write ~site:0 ~ghost:ThreadExitWrite)
      | f :: _ -> (
        match st.prog.bc_code.(f.pc) with
        | IHalt -> None  (* implicit return: no shared access *)
        | IExitSync sid -> (
          match f.sync_stack with
          | m :: _ ->
            Some (pre_of t ~loc:(Loc.lock_ghost m) ~kind:Write ~site:sid ~ghost:LockRelWrite)
          | [] -> None)
        | _ -> (
          match st.prog.bc_stmt_at.(f.pc) with
          | None -> None
          | Some s -> (
            let slots = f.regs in
            let e x = Interp.eval s slots x in
            let eref x = Interp.eval_ref s slots x in
            try
              match s.rnode with
              | Resolve.RLoad (_, o, fld) when shared s.rsid ->
                Some (pre_of t ~loc:(Loc.field_id (eref o) fld) ~kind:Read ~site:s.rsid ~ghost:NotGhost)
              | RStore (o, fld, _) when shared s.rsid ->
                Some (pre_of t ~loc:(Loc.field_id (eref o) fld) ~kind:Write ~site:s.rsid ~ghost:NotGhost)
              | RLoadIdx (_, a, i) when shared s.rsid -> (
                match e a, e i with
                | VRef o, VInt n ->
                  Some (pre_of t ~loc:(Loc.elem o n) ~kind:Read ~site:s.rsid ~ghost:NotGhost)
                | _ -> None)
              | RStoreIdx (a, i, _) when shared s.rsid -> (
                match e a, e i with
                | VRef o, VInt n ->
                  Some (pre_of t ~loc:(Loc.elem o n) ~kind:Write ~site:s.rsid ~ghost:NotGhost)
                | _ -> None)
              | RGlobalLoad (_, g) when shared s.rsid ->
                Some (pre_of t ~loc:(Loc.global_id g) ~kind:Read ~site:s.rsid ~ghost:NotGhost)
              | RGlobalStore (g, _) when shared s.rsid ->
                Some (pre_of t ~loc:(Loc.global_id g) ~kind:Write ~site:s.rsid ~ghost:NotGhost)
              | RMapGet (_, m, k) when shared s.rsid ->
                Some (pre_of t ~loc:(Loc.mapkey (eref m) (e k)) ~kind:Read ~site:s.rsid ~ghost:NotGhost)
              | RMapHas (_, m, k) when shared s.rsid ->
                Some (pre_of t ~loc:(Loc.mapkey (eref m) (e k)) ~kind:Read ~site:s.rsid ~ghost:NotGhost)
              | RMapPut (m, k, _) when shared s.rsid ->
                Some (pre_of t ~loc:(Loc.mapkey (eref m) (e k)) ~kind:Write ~site:s.rsid ~ghost:NotGhost)
              | RSync (m, _) | RLock m ->
                Some (pre_of t ~loc:(Loc.lock_ghost (eref m)) ~kind:Read ~site:s.rsid ~ghost:LockAcqRead)
              | RUnlock m ->
                Some (pre_of t ~loc:(Loc.lock_ghost (eref m)) ~kind:Write ~site:s.rsid ~ghost:LockRelWrite)
              | RWait m ->
                Some (pre_of t ~loc:(Loc.lock_ghost (eref m)) ~kind:Write ~site:s.rsid ~ghost:WaitRelWrite)
              | RNotify m | RNotifyAll m ->
                Some (pre_of t ~loc:(Loc.cond_ghost (eref m)) ~kind:Write ~site:s.rsid ~ghost:NotifyWrite)
              | RSpawn _ ->
                let child = (t.tid * 100) + t.spawn_idx + 1 in
                Some (pre_of t ~loc:(Loc.thread_ghost child) ~kind:Write ~site:s.rsid ~ghost:SpawnWrite)
              | RJoin h -> (
                match e h with
                | VThread target ->
                  Some (pre_of t ~loc:(Loc.thread_ghost target) ~kind:Read ~site:s.rsid ~ghost:JoinRead)
                | _ -> None)
              | _ -> None
            with Interp.Rt_crash _ -> None))))
  | InWait _ | Finished | Crashed -> None

let semantically_enabled st (t : vthread) : bool =
  match t.status with
  | Interp.Finished | Crashed | InWait _ -> false
  | Notified _ -> true
  | Reacquiring m -> lock_free_or_mine st t m
  | BlockedLock m -> lock_free_or_mine st t m
  | BlockedJoin target -> (
    match Hashtbl.find_opt st.threads target with
    | Some tt -> tt.status = Interp.Finished || tt.status = Interp.Crashed
    | None -> true)
  | Runnable -> (
    if not t.started then true
    else
      match t.frames with
      | f :: _ when Array.unsafe_get st.maybe_blocking f.pc -> (
        match st.prog.bc_stmt_at.(f.pc) with
        | Some s -> (
          match s.rnode with
          | Resolve.RSync (m, _) | Resolve.RLock m -> (
            try lock_free_or_mine st t (Interp.eval_ref s f.regs m)
            with Interp.Rt_crash _ -> true)
          | RJoin h -> (
            try
              match Interp.eval s f.regs h with
              | VThread target -> (
                match Hashtbl.find_opt st.threads target with
                | Some tt -> tt.status = Interp.Finished || tt.status = Interp.Crashed
                | None -> true)
              | _ -> true (* will crash when stepped *)
            with Interp.Rt_crash _ -> true)
          | _ -> true)
        | None -> true)
      | _ -> true)

let gate_allows st (t : vthread) : bool =
  match st.hooks.gate with
  | None -> true
  | Some gate -> (
    match next_pre st t with None -> true | Some pre -> gate pre)

(* ------------------------------------------------------------------ *)
(* State construction                                                  *)
(* ------------------------------------------------------------------ *)

let value_of_const : const -> Value.t = function
  | KInt n -> VInt n
  | KBool b -> VBool b
  | KNull -> VNull
  | KStr s -> VStr s

let make_state ~(hooks : Interp.hooks) ~plan ~collect_trace ~rng ~steps ~crashes
    (bp : Bytecode.program) : state =
  let cp = bp.bc_src in
  let shared =
    Array.init (cp.Resolve.cp_max_sid + 1) (fun sid -> plan.Plan.shared_site sid)
  in
  let maybe_blocking =
    Array.init (Array.length bp.bc_code) (fun pc ->
        match bp.bc_stmt_at.(pc) with
        | Some s -> (
          match s.Resolve.rnode with
          | Resolve.RSync _ | Resolve.RLock _ | Resolve.RJoin _ -> true
          | _ -> false)
        | None -> false)
  in
  {
    prog = bp;
    hooks;
    shared;
    heap = heap_make ();
    objs = Hashtbl.create 256;
    threads = Hashtbl.create 16;
    order = [||];
    n_threads = 0;
    locks = Hashtbl.create 16;
    waitsets = Hashtbl.create 16;
    steps;
    crashes;
    syscalls_rev = [];
    trace_rev = [];
    collect_trace;
    rng;
    consts = Array.map value_of_const bp.bc_consts;
    maybe_blocking;
    cached_runnable = [];
    cache_ok = false;
    dirty = false;
  }

let init_state ?(hooks = Interp.default_hooks) ?(plan = Plan.all_shared)
    ?(collect_trace = false) ?(seed = 0) (bp : Bytecode.program) : state =
  let st =
    make_state ~hooks ~plan ~collect_trace
      ~rng:(Random.State.make [| seed; 0x5EED |])
      ~steps:0 ~crashes:[] bp
  in
  Hashtbl.replace st.objs 0 "$globals";
  Array.iter (fun g -> heap_set st.heap 0 g Value.VNull) bp.bc_src.Resolve.cp_globals;
  let main_fi = bp.bc_fns.(main_index bp) in
  let main_thread = make_thread ~tid:1 ~frames:[ new_vframe main_fi ~ret_to:None ] in
  main_thread.started <- true;  (* main has no spawn ghost to read *)
  push_thread st main_thread;
  st.dirty <- false;
  st

(* ------------------------------------------------------------------ *)
(* Run loop (mirrors Interp.run_state, plus the runnable cache)        *)
(* ------------------------------------------------------------------ *)

let run_state ?(max_steps = 5_000_000) ?(stop_at = max_int) ~(sched : Sched.t)
    (st : state) : Interp.status_summary option =
  let gated = st.hooks.gate <> None in
  let finished = ref false in
  let paused = ref false in
  let status = ref Interp.AllFinished in
  (* 1-entry pick memo: consecutive steps usually run the same thread, so
     skip the tid hashtable on the repeat *)
  let memo : vthread option ref = ref None in
  while (not !finished) && not !paused do
    let runnable =
      if (not gated) && st.cache_ok then st.cached_runnable
      else begin
        let sem_enabled = ref [] and any_live = ref false in
        for i = st.n_threads - 1 downto 0 do
          let t = st.order.(i) in
          if t.status <> Interp.Finished && t.status <> Interp.Crashed then begin
            any_live := true;
            if semantically_enabled st t then sem_enabled := t.tid :: !sem_enabled
          end
        done;
        if not !any_live then begin
          finished := true;
          status := Interp.AllFinished;
          []
        end
        else begin
          let sem_enabled = !sem_enabled in
          let runnable =
            if not gated then sem_enabled
            else
              List.filter
                (fun tid -> gate_allows st (Hashtbl.find st.threads tid))
                sem_enabled
          in
          if runnable = [] then begin
            finished := true;
            (status :=
               if sem_enabled = [] then begin
                 let live = ref [] in
                 for i = st.n_threads - 1 downto 0 do
                   let t = st.order.(i) in
                   if t.status <> Interp.Finished && t.status <> Interp.Crashed then
                     live := t.tid :: !live
                 done;
                 Interp.Deadlock !live
               end
               else Interp.GateStuck sem_enabled);
            []
          end
          else begin
            if not gated then begin
              st.cached_runnable <- runnable;
              st.cache_ok <- true
            end;
            runnable
          end
        end
      end
    in
    if not !finished then begin
      if st.steps >= max_steps then begin
        finished := true;
        status := Interp.StepLimit
      end
      else if st.steps >= stop_at then paused := true
      else begin
        let tid = sched.pick ~step:st.steps ~runnable in
        let tid = if List.mem tid runnable then tid else List.hd runnable in
        let t =
          match !memo with
          | Some m when m.tid = tid -> m
          | _ ->
            let x = Hashtbl.find st.threads tid in
            memo := Some x;
            x
        in
        st.steps <- st.steps + 1;
        st.dirty <- false;
        (try step_thread st t with
        | Interp.Rt_crash (site, line, msg) ->
          st.crashes <- { Interp.tid; site; line; msg; c = t.d } :: st.crashes;
          finish_thread st t ~crashed:true);
        (* cache maintenance: drop it when the transition touched lock /
           status / thread structure, or when the stepped thread rests on
           a possibly-blocking statement head *)
        if st.cache_ok then begin
          if st.dirty then st.cache_ok <- false
          else
            match t.frames with
            | f :: _ ->
              if Array.unsafe_get st.maybe_blocking f.pc then st.cache_ok <- false
            | [] -> ()
        end
      end
    end
  done;
  if !paused then None else Some !status

(* ------------------------------------------------------------------ *)
(* Outcome assembly + incremental observables                          *)
(* ------------------------------------------------------------------ *)

let per_thread (st : state) f =
  List.init st.n_threads (fun i ->
      let t = st.order.(i) in
      (t.tid, f t))

(* Walk the open-addressed field table back into per-object association
   lists.  Field-less objects (fresh [new]) still appear via the class
   registry, matching [Interp]'s per-object hashtables. *)
let heap_objects (st : state) : (Value.objid * string * (string * Value.t) list) list =
  let fields : (Value.objid, (string * Value.t) list) Hashtbl.t =
    Hashtbl.create 256
  in
  let h = st.heap in
  for i = 0 to Array.length h.hobj - 1 do
    let o = Array.unsafe_get h.hobj i in
    if o <> h_empty then begin
      let prev = try Hashtbl.find fields o with Not_found -> [] in
      Hashtbl.replace fields o ((Loc.fld_name h.hfld.(i), h.hval.(i)) :: prev)
    end
  done;
  Hashtbl.fold (fun id cls acc -> (id, cls) :: acc) st.objs []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (id, cls) ->
         let fs = try Hashtbl.find fields id with Not_found -> [] in
         (id, cls, List.sort compare fs))

let outcome_of_state (st : state) (status : Interp.status_summary) : Interp.outcome =
  let per_thread f = per_thread st f in
  {
    Interp.status;
    steps = st.steps;
    crashes = List.rev st.crashes;
    reads = per_thread (fun t -> List.rev t.reads_rev);
    outputs = per_thread (fun t -> List.rev t.outputs_rev);
    counters = per_thread (fun t -> t.d);
    syscalls = List.rev st.syscalls_rev;
    final_heap = List.map (fun (id, _, fs) -> (id, fs)) (heap_objects st);
    trace = List.rev st.trace_rev;
  }

let drain_observables (st : state) : Interp.observables =
  let obs =
    {
      Interp.obs_reads = per_thread st (fun t -> List.rev t.reads_rev);
      obs_outputs = per_thread st (fun t -> List.rev t.outputs_rev);
      obs_syscalls = List.rev st.syscalls_rev;
    }
  in
  for i = 0 to st.n_threads - 1 do
    let t = st.order.(i) in
    t.reads_rev <- [];
    t.outputs_rev <- []
  done;
  st.syscalls_rev <- [];
  obs

let state_counters (st : state) : (int * int) list = per_thread st (fun t -> t.d)
let state_steps (st : state) : int = st.steps

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (epoch checkpoints)                              *)
(* ------------------------------------------------------------------ *)

(* VM checkpoints reuse [Interp.snapshot] verbatim: a resting pc is always a
   statement boundary, and the compile-time continuation template at that pc
   ([bc_templates]) is exactly what [Interp.encode_cont] would produce for
   the equivalent tree-walker continuation — with the lock objids of
   [TUnlock] entries abstracted out, refilled here from the frame's
   [sync_stack] (same innermost-first order by construction).  So a
   checkpoint written by the VM restores in [Interp] and vice versa. *)
let encode_frame (p : Bytecode.program) (f : vframe) : Interp.snap_frame =
  let locks = ref f.sync_stack in
  let sn_cont =
    List.map
      (function
        | TSeq sid -> Interp.SSeq sid
        | TUnlock sid -> (
          match !locks with
          | m :: rest ->
            locks := rest;
            Interp.SUnlock (m, sid)
          | [] -> assert false (* template/sync_stack agree by construction *)))
      p.bc_templates.(f.pc)
  in
  { Interp.sn_cont; sn_slots = Array.sub f.regs 0 f.nslots; sn_ret_to = f.ret_to }

let snapshot (st : state) : Interp.snapshot =
  let snap_thread (t : vthread) =
    {
      Interp.sn_tid = t.tid;
      sn_frames = List.map (encode_frame st.prog) t.frames;
      sn_status = t.status;
      sn_held = t.held;
      sn_wait_restore = t.wait_restore;
      sn_alloc = t.alloc;
      sn_d = t.d;
      sn_sys_idx = t.sys_idx;
      sn_spawn_idx = t.spawn_idx;
      sn_started = t.started;
    }
  in
  {
    Interp.snap_steps = st.steps;
    snap_heap = heap_objects st;
    snap_threads = List.init st.n_threads (fun i -> snap_thread st.order.(i));
    snap_locks =
      Hashtbl.fold (fun m ov acc -> (m, ov) :: acc) st.locks [] |> List.sort compare;
    snap_waitsets =
      Hashtbl.fold
        (fun m q acc -> (m, List.rev (Queue.fold (fun acc x -> x :: acc) [] q)) :: acc)
        st.waitsets []
      |> List.sort compare;
    snap_crashes = List.rev st.crashes;
    snap_rng = Sched.marshal_hex st.rng;
  }

let decode_frame (p : Bytecode.program) (f : Interp.snap_frame) : vframe =
  match f.Interp.sn_cont with
  | [] ->
    (* CDone: the only remaining work is the implicit return at pc 0 *)
    {
      pc = 0;
      regs = Array.copy f.sn_slots;
      nslots = Array.length f.sn_slots;
      ret_to = f.sn_ret_to;
      sync_stack = [];
    }
  | head :: _ ->
    let pc_of sid (tbl : int array) =
      if sid >= 0 && sid < Array.length tbl && tbl.(sid) >= 0 then tbl.(sid)
      else invalid_arg (Printf.sprintf "decode_cont: unknown sid %d" sid)
    in
    let pc =
      match head with
      | Interp.SSeq sid -> pc_of sid p.bc_pc_of_sid
      | Interp.SUnlock (_, sid) -> pc_of sid p.bc_exit_pc_of_sid
    in
    let fi = p.bc_fns.(p.bc_fn_of_pc.(pc)) in
    let nslots = Array.length f.sn_slots in
    let regs = Array.make (max fi.fi_nregs nslots) Interp.unbound in
    Array.blit f.sn_slots 0 regs 0 nslots;
    let sync_stack =
      List.filter_map
        (function Interp.SUnlock (m, _) -> Some m | Interp.SSeq _ -> None)
        f.Interp.sn_cont
    in
    { pc; regs; nslots; ret_to = f.sn_ret_to; sync_stack }

let restore_state ?(hooks = Interp.default_hooks) ?(plan = Plan.all_shared)
    ?(collect_trace = false) (bp : Bytecode.program) (sn : Interp.snapshot) : state =
  let st =
    make_state ~hooks ~plan ~collect_trace
      ~rng:(Sched.unmarshal_hex sn.Interp.snap_rng)
      ~steps:sn.snap_steps
      ~crashes:(List.rev sn.snap_crashes)
      bp
  in
  List.iter
    (fun (id, cls, fields) ->
      Hashtbl.replace st.objs id cls;
      List.iter (fun (fname, v) -> heap_set st.heap id (Loc.fld_of_name fname) v) fields)
    sn.snap_heap;
  List.iter
    (fun (snt : Interp.snap_thread) ->
      let t =
        {
          tid = snt.sn_tid;
          frames = List.map (decode_frame bp) snt.sn_frames;
          status = snt.sn_status;
          held = snt.sn_held;
          wait_restore = snt.sn_wait_restore;
          alloc = snt.sn_alloc;
          d = snt.sn_d;
          sys_idx = snt.sn_sys_idx;
          spawn_idx = snt.sn_spawn_idx;
          started = snt.sn_started;
          reads_rev = [];
          outputs_rev = [];
        }
      in
      push_thread st t)
    sn.snap_threads;
  List.iter (fun (m, ov) -> Hashtbl.replace st.locks m ov) sn.snap_locks;
  List.iter
    (fun (m, waiters) ->
      let q = Queue.create () in
      List.iter (fun w -> Queue.push w q) waiters;
      Hashtbl.replace st.waitsets m q)
    sn.snap_waitsets;
  st.dirty <- false;
  st

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run_program ?hooks ?plan ?max_steps ?collect_trace ?seed ~(sched : Sched.t)
    (bp : Bytecode.program) : Interp.outcome =
  let st = init_state ?hooks ?plan ?collect_trace ?seed bp in
  match run_state ?max_steps ~sched st with
  | Some status -> outcome_of_state st status
  | None -> assert false (* stop_at defaults to max_int: never pauses *)

let run ?hooks ?plan ?max_steps ?collect_trace ?seed ~(sched : Sched.t)
    (program : Ast.program) : Interp.outcome =
  run_program ?hooks ?plan ?max_steps ?collect_trace ?seed ~sched
    (Compile.lower (Interp.compile program))

(* ------------------------------------------------------------------ *)
(* Engine selection: one session surface over both interpreters        *)
(* ------------------------------------------------------------------ *)

type engine = Tree | Bytecode

let engine_name = function Tree -> "tree" | Bytecode -> "bytecode"

(** A running execution, abstracted over the engine: exactly the surface
    the epoch machinery drives — run to a step boundary, checkpoint, drain
    the window's observables.  Both engines produce (and accept) the same
    {!Interp.snapshot} values, so a session checkpointed on one engine can
    be restored on the other. *)
type session = {
  s_run :
    ?max_steps:int ->
    ?stop_at:int ->
    sched:Sched.t ->
    unit ->
    Interp.status_summary option;
  s_snapshot : unit -> Interp.snapshot;
  s_drain : unit -> Interp.observables;
  s_counters : unit -> (int * int) list;
  s_steps : unit -> int;
  s_outcome : Interp.status_summary -> Interp.outcome;
}

let tree_session (st : Interp.state) : session =
  {
    s_run =
      (fun ?max_steps ?stop_at ~sched () ->
        Interp.run_state ?max_steps ?stop_at ~sched st);
    s_snapshot = (fun () -> Interp.snapshot st);
    s_drain = (fun () -> Interp.drain_observables st);
    s_counters = (fun () -> Interp.state_counters st);
    s_steps = (fun () -> Interp.state_steps st);
    s_outcome = (fun status -> Interp.outcome_of_state st status);
  }

let vm_session (st : state) : session =
  {
    s_run =
      (fun ?max_steps ?stop_at ~sched () -> run_state ?max_steps ?stop_at ~sched st);
    s_snapshot = (fun () -> snapshot st);
    s_drain = (fun () -> drain_observables st);
    s_counters = (fun () -> state_counters st);
    s_steps = (fun () -> state_steps st);
    s_outcome = (fun status -> outcome_of_state st status);
  }

let start_session ?hooks ?plan ?collect_trace ?seed (e : engine)
    ~(compiled : Interp.compiled) ~(bytecode : Bytecode.program) : session =
  match e with
  | Tree -> tree_session (Interp.init_state ?hooks ?plan ?collect_trace ?seed compiled)
  | Bytecode -> vm_session (init_state ?hooks ?plan ?collect_trace ?seed bytecode)

let restore_session ?hooks ?plan ?collect_trace (e : engine)
    ~(compiled : Interp.compiled) ~(bytecode : Bytecode.program)
    (sn : Interp.snapshot) : session =
  match e with
  | Tree -> tree_session (Interp.restore_state ?hooks ?plan ?collect_trace compiled sn)
  | Bytecode -> vm_session (restore_state ?hooks ?plan ?collect_trace bytecode sn)
