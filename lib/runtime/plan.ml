(** Instrumentation plan consumed by the interpreter.

    The transformer (lib/instrument) decides, per static site, whether the
    access may touch a shared location (and must therefore be instrumented:
    counter tick + tool hooks) and whether it is consistently lock-guarded
    (optimization O2, Lemma 4.2: recording may be skipped because the
    guarding lock's ghost dependences subsume it). *)

type t = {
  shared_site : int -> bool;   (** instrument this site? *)
  guarded_site : int -> bool;  (** consistently lock-protected (O2)? *)
}

(** Sound default: every site is treated as potentially shared (the paper's
    baseline before applying the Soot/Chord analyses). *)
let all_shared = { shared_site = (fun _ -> true); guarded_site = (fun _ -> false) }

let of_tables ~(shared : (int, bool) Hashtbl.t) ~(guarded : (int, bool) Hashtbl.t) : t =
  {
    shared_site = (fun s -> Option.value ~default:false (Hashtbl.find_opt shared s));
    guarded_site = (fun s -> Option.value ~default:false (Hashtbl.find_opt guarded s));
  }

(* ------------------------------------------------------------------ *)
(* Compile-time site resolution                                         *)
(* ------------------------------------------------------------------ *)

(** Per-site plan decisions resolved once into a dense byte table, so the
    recording fast path replaces the two closure calls (each a hashtable
    probe) with a single byte load indexed by the static site id. *)

(* '\000' = not instrumented (never reaches the recorder); '\001' =
   instrumented and recorded by Algorithm 1; '\002' = instrumented but
   O2-exempt (Lemma 4.2) *)
let m_local = '\000'
let m_recorded = '\001'
let m_guarded = '\002'

(** [modes plan ~max_sid] bakes the plan into a byte per site id.  Site 0
    (ghost accesses) is part of the table so the recorder needs no bounds
    branch on the hot path. *)
let modes (p : t) ~(max_sid : int) : Bytes.t =
  let b = Bytes.make (max_sid + 1) m_local in
  for sid = 0 to max_sid do
    if p.shared_site sid then
      Bytes.unsafe_set b sid (if p.guarded_site sid then m_guarded else m_recorded)
  done;
  b

(** [(instrumented, guarded)] site counts of a baked mode table — the site
    accounting tools (bench sitecheck) read the same bytes the recorder's
    fast path consults, so the gate measures what actually executes. *)
let count_modes (b : Bytes.t) : int * int =
  let instr = ref 0 and guard = ref 0 in
  Bytes.iter
    (fun c ->
      if c <> m_local then begin
        incr instr;
        if c = m_guarded then incr guard
      end)
    b;
  (!instr, !guard)
