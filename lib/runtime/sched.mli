(** Thread schedulers resolving the [NoDet] rule of the interleaved
    semantics (Section 3.1).

    Seeded schedulers make "original runs" reproducible; [sticky] models
    realistic OS quanta (long uninterleaved runs — the pattern optimization
    O1 exploits); [pct] is a priority-based bug-finding scheduler.

    A [t] value carries mutable pick state, so every scheduler is exposed
    as a constructor: build a fresh instance per run, and never share an
    instance across runs or across domains (the batch engine's determinism
    contract depends on this).  The [save]/[load] pair serializes that pick
    state so an epoch checkpoint can capture the scheduler's exact position
    and a later replay can resume it mid-run. *)

type t = {
  name : string;
  pick : step:int -> runnable:int list -> int;
      (** choose among the runnable thread ids (non-empty) *)
  save : unit -> string;
      (** serialize the pick state as a single line-safe token *)
  load : string -> unit;
      (** restore state produced by [save] on the same constructor (same
          scheduler kind and construction parameters) *)
}

val marshal_hex : 'a -> string
(** Marshal any (closure-free) value into a line-safe hex token.  Shared by
    scheduler [save] implementations and by interpreter checkpoints (which
    need to serialize [Random.State.t], a type with no public accessors). *)

val unmarshal_hex : string -> 'a
(** Inverse of {!marshal_hex}; the caller must ascribe the result type. *)

val round_robin : unit -> t
(** Lowest thread id above the previously picked one, wrapping around.
    A constructor: the rotation cursor is per-instance state. *)

val random : seed:int -> t
(** Uniform choice at every step. *)

val sticky : seed:int -> stickiness:int -> t
(** Keeps running the current thread, switching with probability
    [1/stickiness].  Larger values approximate longer scheduling quanta. *)

val scripted : int list -> t
(** Follows an explicit thread-id script, skipping entries that are not
    runnable; falls back to the first runnable thread when exhausted. *)

val pct : seed:int -> depth:int -> expected_steps:int -> t
(** PCT-style: random fixed priorities with [depth] priority-change points
    scattered over [expected_steps]; always runs the highest-priority
    runnable thread. *)
