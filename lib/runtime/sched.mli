(** Thread schedulers resolving the [NoDet] rule of the interleaved
    semantics (Section 3.1).

    Seeded schedulers make "original runs" reproducible; [sticky] models
    realistic OS quanta (long uninterleaved runs — the pattern optimization
    O1 exploits); [pct] is a priority-based bug-finding scheduler.

    A [t] value carries mutable pick state, so every scheduler is exposed
    as a constructor: build a fresh instance per run, and never share an
    instance across runs or across domains (the batch engine's determinism
    contract depends on this). *)

type t = {
  name : string;
  pick : step:int -> runnable:int list -> int;
      (** choose among the runnable thread ids (non-empty) *)
}

val round_robin : unit -> t
(** Lowest thread id above the previously picked one, wrapping around.
    A constructor: the rotation cursor is per-instance state. *)

val random : seed:int -> t
(** Uniform choice at every step. *)

val sticky : seed:int -> stickiness:int -> t
(** Keeps running the current thread, switching with probability
    [1/stickiness].  Larger values approximate longer scheduling quanta. *)

val scripted : int list -> t
(** Follows an explicit thread-id script, skipping entries that are not
    runnable; falls back to the first runnable thread when exhausted. *)

val pct : seed:int -> depth:int -> expected_steps:int -> t
(** PCT-style: random fixed priorities with [depth] priority-change points
    scattered over [expected_steps]; always runs the highest-priority
    runnable thread. *)
