(** Reference interpreter: the seed's string-keyed semantics, retained as an
    executable specification.

    This module is a hook-free copy of the interpreter as it existed before
    the compile/intern pass: locals are name-keyed hashtables, heap fields
    are name-keyed hashtables, and every transition is interpreted directly
    off the {!Lang.Ast} form.  It exists for two purposes:

    - the outcome-equivalence test suite runs every workload under both
      interpreters and pins that {!Interp.run} is observationally identical
      (status, reads, outputs, counters, syscalls, final_heap);
    - the [interp] benchmark measures the slot-resolved interpreter's
      speedup against it.

    It supports no hooks (no gate, observer, or wakeup chooser), so it can
    only drive native runs; record/replay always goes through {!Interp}. *)

open Lang

type obj = { cls : string; fields : (string, Value.t) Hashtbl.t }

type citem =
  | S of Ast.stmt
  | CUnlock of Value.objid * int

type frame = {
  mutable cont : citem list;
  locals : (string, Value.t) Hashtbl.t;
  ret_to : string option;
}

type tstatus =
  | Runnable
  | BlockedLock of Value.objid
  | BlockedJoin of int
  | InWait of Value.objid
  | Notified of Value.objid
  | Reacquiring of Value.objid
  | Finished
  | Crashed

type thread = {
  tid : int;
  mutable frames : frame list;
  mutable status : tstatus;
  mutable held : (Value.objid * int) list;
  mutable wait_restore : int;
  mutable alloc : int;
  mutable d : int;
  mutable sys_idx : int;
  mutable spawn_idx : int;
  mutable started : bool;
  mutable reads_rev : (int * Value.t) list;
  mutable outputs_rev : string list;
}

exception Rt_crash of int * int * string

type state = {
  program : Ast.program;
  plan : Plan.t;
  heap : (Value.objid, obj) Hashtbl.t;
  threads : (int, thread) Hashtbl.t;
  mutable thread_order : int list;
  locks : (Value.objid, int * int) Hashtbl.t;
  waitsets : (Value.objid, int list) Hashtbl.t;
  mutable steps : int;
  mutable crashes : Interp.crash list;
  mutable syscalls_rev : (int * int * string * Value.t) list;
  rng : Random.State.t;
}

let new_obj st (t : thread) (cls : string) : Value.objid =
  t.alloc <- t.alloc + 1;
  let id = (t.tid * 1_000_000) + t.alloc in
  Hashtbl.replace st.heap id { cls; fields = Hashtbl.create 8 };
  id

let heap_read st (o : Value.objid) (f : string) : Value.t =
  match Hashtbl.find_opt st.heap o with
  | None -> VNull
  | Some ob -> Option.value ~default:Value.VNull (Hashtbl.find_opt ob.fields f)

let heap_write st (o : Value.objid) (f : string) (v : Value.t) : unit =
  match Hashtbl.find_opt st.heap o with
  | None ->
    let ob = { cls = "$ghost"; fields = Hashtbl.create 4 } in
    Hashtbl.replace ob.fields f v;
    Hashtbl.replace st.heap o ob
  | Some ob -> Hashtbl.replace ob.fields f v

let elem_field (i : int) = "#" ^ string_of_int i
let mapkey_field (k : Value.t) = "@" ^ Value.map_key k

let crash site line fmt = Printf.ksprintf (fun m -> raise (Rt_crash (site, line, m))) fmt

let rec eval (s : Ast.stmt) (locals : (string, Value.t) Hashtbl.t) (e : Ast.expr) : Value.t =
  match e with
  | Int n -> VInt n
  | Bool b -> VBool b
  | Null -> VNull
  | Str str -> VStr str
  | Var x -> (
    match Hashtbl.find_opt locals x with
    | Some v -> v
    | None -> crash s.sid s.line "unbound local variable %s" x)
  | Unop (Not, a) -> (
    match eval s locals a with
    | VBool b -> VBool (not b)
    | v -> crash s.sid s.line "! applied to %s" (Value.to_string v))
  | Unop (Neg, a) -> (
    match eval s locals a with
    | VInt n -> VInt (-n)
    | v -> crash s.sid s.line "unary - applied to %s" (Value.to_string v))
  | Binop (op, a, b) -> eval_binop s locals op a b

and eval_binop s locals op a b : Value.t =
  let open Value in
  match op with
  | Ast.And -> (
    match eval s locals a with
    | VBool false -> VBool false
    | VBool true -> (
      match eval s locals b with
      | VBool v -> VBool v
      | v -> crash s.sid s.line "&& applied to %s" (to_string v))
    | v -> crash s.sid s.line "&& applied to %s" (to_string v))
  | Or -> (
    match eval s locals a with
    | VBool true -> VBool true
    | VBool false -> (
      match eval s locals b with
      | VBool v -> VBool v
      | v -> crash s.sid s.line "|| applied to %s" (to_string v))
    | v -> crash s.sid s.line "|| applied to %s" (to_string v))
  | Eq -> VBool (Value.equal (eval s locals a) (eval s locals b))
  | Ne -> VBool (not (Value.equal (eval s locals a) (eval s locals b)))
  | _ -> (
    let va = eval s locals a and vb = eval s locals b in
    match op, va, vb with
    | Add, VInt x, VInt y -> VInt (x + y)
    | Add, VStr x, VStr y -> VStr (x ^ y)
    | Sub, VInt x, VInt y -> VInt (x - y)
    | Mul, VInt x, VInt y -> VInt (x * y)
    | Div, VInt _, VInt 0 -> crash s.sid s.line "division by zero"
    | Div, VInt x, VInt y -> VInt (x / y)
    | Mod, VInt _, VInt 0 -> crash s.sid s.line "modulo by zero"
    | Mod, VInt x, VInt y -> VInt (x mod y)
    | Lt, VInt x, VInt y -> VBool (x < y)
    | Le, VInt x, VInt y -> VBool (x <= y)
    | Gt, VInt x, VInt y -> VBool (x > y)
    | Ge, VInt x, VInt y -> VBool (x >= y)
    | _ ->
      crash s.sid s.line "type error: %s %s %s" (to_string va)
        (Pp.binop_str op) (to_string vb))

let eval_bool (s : Ast.stmt) locals e : bool =
  match eval s locals e with
  | VBool b -> b
  | v -> crash s.sid s.line "expected boolean, got %s" (Value.to_string v)

let eval_ref (s : Ast.stmt) locals e : Value.objid =
  match eval s locals e with
  | VRef o -> o
  | VNull -> crash s.sid s.line "null dereference"
  | v -> crash s.sid s.line "expected object reference, got %s" (Value.to_string v)

(* Tick D(t); record non-ghost shared-read values (Theorem 1 observable). *)
let tick (t : thread) ~(is_read : bool) ~(ghost : bool) (value : Value.t) : unit =
  t.d <- t.d + 1;
  if is_read && not ghost then t.reads_rev <- (t.d, value) :: t.reads_rev

let lock_free_or_mine st (t : thread) (m : Value.objid) : bool =
  match Hashtbl.find_opt st.locks m with
  | None -> true
  | Some (owner, _) -> owner = t.tid

let do_acquire st (t : thread) (m : Value.objid) : unit =
  (match Hashtbl.find_opt st.locks m with
  | None -> Hashtbl.replace st.locks m (t.tid, 1)
  | Some (owner, n) ->
    assert (owner = t.tid);
    Hashtbl.replace st.locks m (t.tid, n + 1));
  (match List.assoc_opt m t.held with
  | None -> t.held <- (m, 1) :: t.held
  | Some n -> t.held <- (m, n + 1) :: List.remove_assoc m t.held);
  tick t ~is_read:true ~ghost:true (heap_read st m "$lock");
  heap_write st m "$lock" (VInt t.tid);
  tick t ~is_read:false ~ghost:true (VInt t.tid)

let do_release st (t : thread) (m : Value.objid) ~(site : int) ~(full : bool) : unit =
  match Hashtbl.find_opt st.locks m with
  | Some (owner, n) when owner = t.tid ->
    let remaining = if full then 0 else n - 1 in
    if remaining = 0 then Hashtbl.remove st.locks m
    else Hashtbl.replace st.locks m (t.tid, remaining);
    (if full || remaining = 0 then t.held <- List.remove_assoc m t.held
     else t.held <- (m, remaining) :: List.remove_assoc m t.held);
    heap_write st m "$lock" (VInt (-t.tid - 1));
    tick t ~is_read:false ~ghost:true (VInt (-t.tid - 1))
  | _ -> raise (Rt_crash (site, 0, "unlock of a lock not held"))

let semantically_enabled st (t : thread) : bool =
  match t.status with
  | Finished | Crashed | InWait _ -> false
  | Notified _ -> true
  | Reacquiring m -> lock_free_or_mine st t m
  | BlockedLock m -> lock_free_or_mine st t m
  | BlockedJoin target -> (
    match Hashtbl.find_opt st.threads target with
    | Some tt -> tt.status = Finished || tt.status = Crashed
    | None -> true)
  | Runnable -> (
    if not t.started then true
    else
      match t.frames with
      | [] -> true
      | { cont = []; _ } :: _ -> true
      | { cont = CUnlock _ :: _; _ } :: _ -> true
      | ({ cont = S s :: _; locals; _ } :: _) -> (
        try
          match s.node with
          | Sync (m, _) | Lock m -> lock_free_or_mine st t (eval_ref s locals m)
          | Join h -> (
            match eval s locals h with
            | VThread target -> (
              match Hashtbl.find_opt st.threads target with
              | Some tt -> tt.status = Finished || tt.status = Crashed
              | None -> true)
            | _ -> true)
          | _ -> true
        with Rt_crash _ -> true))

let current_frame (t : thread) : frame = List.hd t.frames

let set_local (t : thread) (x : string) (v : Value.t) : unit =
  Hashtbl.replace (current_frame t).locals x v

let pop_stmt (t : thread) : unit =
  let f = current_frame t in
  f.cont <- List.tl f.cont

let do_read st (t : thread) (s : Ast.stmt) (o : Value.objid) (f : string) : Value.t =
  let v = heap_read st o f in
  if st.plan.shared_site s.sid then tick t ~is_read:true ~ghost:false v;
  v

let do_write st (t : thread) (s : Ast.stmt) (o : Value.objid) (f : string) (v : Value.t) :
    unit =
  heap_write st o f v;
  if st.plan.shared_site s.sid then tick t ~is_read:false ~ghost:false v

let opaque_op (s : Ast.stmt) (name : string) (args : Value.t list) : Value.t =
  let module V = Value in
  let int1 = function [ V.VInt n ] -> n | _ -> crash s.sid s.line "#%s: expected int" name in
  if String.length name >= 2 && String.sub name 0 2 = "__" then V.VNull
  else
  match name, args with
  | "hash", [ v ] ->
    let s = V.map_key v in
    let h = ref 17 in
    String.iter (fun ch -> h := (!h * 31) + Char.code ch) s;
    VInt (!h land 0x3FFFFFFF)
  | "strlen", [ V.VStr s ] -> VInt (String.length s)
  | "strcat", [ V.VStr a; V.VStr b ] -> VStr (a ^ b)
  | "str_index", [ V.VStr s; V.VStr sub ] ->
    let n = String.length s and m = String.length sub in
    let rec find i = if i + m > n then -1 else if String.sub s i m = sub then i else find (i + 1) in
    VInt (if m = 0 then 0 else find 0)
  | "to_str", [ v ] -> VStr (V.to_string v)
  | "crc", _ ->
    let n = int1 args in
    let x = n lxor (n lsl 13) in
    let x = x lxor (x asr 7) in
    VInt ((x lxor (x lsl 17)) land 0x3FFFFFFF)
  | "mix", [ V.VInt a; V.VInt b ] -> VInt (((a * a) + (b * b) + (a * b)) land 0x3FFFFFFF)
  | "floor_sqrt", _ ->
    let n = int1 args in
    if n < 0 then crash s.sid s.line "#floor_sqrt of negative"
    else VInt (int_of_float (sqrt (float_of_int n)))
  | _ -> crash s.sid s.line "unknown opaque operation #%s" name

let syscall_value st (t : thread) (s : Ast.stmt) (name : string) (args : Value.t list) :
    Value.t =
  match name, args with
  | "time", [] -> VInt (st.steps / 10)
  | "nanotime", [] -> VInt ((st.steps * 1000) + (t.tid * 7))
  | "rand", [ Value.VInt n ] when n > 0 -> VInt (Random.State.int st.rng n)
  | "rand", [] -> VInt (Random.State.int st.rng 1_000_000)
  | "read_input", [] -> VInt (Random.State.int st.rng 100)
  | _ -> crash s.sid s.line "bad syscall @%s" name

let fifo_pop st (m : Value.objid) : int option =
  match Hashtbl.find_opt st.waitsets m with
  | None | Some [] -> None
  | Some (w :: rest) ->
    Hashtbl.replace st.waitsets m rest;
    Some w

let wake st (w : int) (m : Value.objid) : unit =
  let wt = Hashtbl.find st.threads w in
  wt.status <- Notified m

let finish_thread st (t : thread) ~(crashed : bool) : unit =
  List.iter (fun (m, _) -> do_release st t m ~site:0 ~full:true) t.held;
  heap_write st (-(t.tid + 1)) "$thread" (VInt t.tid);
  tick t ~is_read:false ~ghost:true (VInt t.tid);
  t.status <- (if crashed then Crashed else Finished)

let make_thread ~tid ~frames : thread =
  {
    tid;
    frames;
    status = Runnable;
    held = [];
    wait_restore = 0;
    alloc = 0;
    d = 0;
    sys_idx = 0;
    spawn_idx = 0;
    started = false;
    reads_rev = [];
    outputs_rev = [];
  }

let spawn_thread st (parent : thread) (s : Ast.stmt) (fname : string) (args : Value.t list) :
    int =
  let fd =
    match Ast.find_fn st.program fname with
    | Some fd -> fd
    | None -> crash s.sid s.line "spawn of undefined function %s" fname
  in
  parent.spawn_idx <- parent.spawn_idx + 1;
  if parent.spawn_idx > 99 then crash s.sid s.line "spawn limit (99 per thread) exceeded";
  let tid = (parent.tid * 100) + parent.spawn_idx in
  let locals = Hashtbl.create 16 in
  List.iter2 (fun p v -> Hashtbl.replace locals p v) fd.params args;
  let th =
    make_thread ~tid
      ~frames:[ { cont = List.map (fun x -> S x) fd.body; locals; ret_to = None } ]
  in
  Hashtbl.replace st.threads tid th;
  st.thread_order <- st.thread_order @ [ tid ];
  heap_write st (-(tid + 1)) "$thread" (VThread tid);
  tick parent ~is_read:false ~ghost:true (VThread tid);
  tid

let rec step_thread st (t : thread) : unit =
  if not t.started then begin
    t.started <- true;
    tick t ~is_read:true ~ghost:true (heap_read st (-(t.tid + 1)) "$thread")
  end
  else
    match t.status with
    | Notified m ->
      tick t ~is_read:true ~ghost:true (heap_read st m "$cond");
      t.status <- Reacquiring m
    | Reacquiring m ->
      tick t ~is_read:true ~ghost:true (heap_read st m "$lock");
      Hashtbl.replace st.locks m (t.tid, t.wait_restore);
      t.held <- (m, t.wait_restore) :: t.held;
      t.wait_restore <- 0;
      heap_write st m "$lock" (VInt t.tid);
      tick t ~is_read:false ~ghost:true (VInt t.tid);
      t.status <- Runnable
    | BlockedLock _ | BlockedJoin _ | Runnable -> (
      t.status <- Runnable;
      match t.frames with
      | [] -> finish_thread st t ~crashed:false
      | { cont = []; ret_to; _ } :: rest ->
        t.frames <- rest;
        (match rest, ret_to with
        | caller :: _, Some x -> Hashtbl.replace caller.locals x VNull
        | _ -> ())
      | ({ cont = CUnlock (m, sid) :: _; _ } :: _) ->
        pop_stmt t;
        do_release st t m ~site:sid ~full:false
      | ({ cont = S s :: _; locals; _ } :: _) -> exec_stmt st t s locals)
    | InWait _ | Finished | Crashed -> assert false

and exec_stmt st (t : thread) (s : Ast.stmt) (locals : (string, Value.t) Hashtbl.t) : unit =
  let e x = eval s locals x in
  match s.node with
  | Nop | Yield -> pop_stmt t
  | Assign (x, v) ->
    let v = e v in
    pop_stmt t;
    set_local t x v
  | Load (x, o, f) ->
    let o = eval_ref s locals o in
    pop_stmt t;
    set_local t x (do_read st t s o f)
  | Store (o, f, v) ->
    let o = eval_ref s locals o in
    let v = e v in
    pop_stmt t;
    do_write st t s o f v
  | LoadIdx (x, a, i) -> (
    match e a, e i with
    | VRef o, VInt n ->
      let len = match heap_read st o "len" with VInt l -> l | _ -> 0 in
      if n < 0 || n >= len then crash s.sid s.line "array index %d out of bounds (len %d)" n len;
      pop_stmt t;
      set_local t x (do_read st t s o (elem_field n))
    | VNull, _ -> crash s.sid s.line "null dereference"
    | va, vi ->
      crash s.sid s.line "bad array access %s[%s]" (Value.to_string va) (Value.to_string vi))
  | StoreIdx (a, i, v) -> (
    match e a, e i with
    | VRef o, VInt n ->
      let len = match heap_read st o "len" with VInt l -> l | _ -> 0 in
      if n < 0 || n >= len then crash s.sid s.line "array index %d out of bounds (len %d)" n len;
      let v = e v in
      pop_stmt t;
      do_write st t s o (elem_field n) v
    | VNull, _ -> crash s.sid s.line "null dereference"
    | va, _ -> crash s.sid s.line "bad array store into %s" (Value.to_string va))
  | GlobalLoad (x, g) ->
    pop_stmt t;
    set_local t x (do_read st t s 0 g)
  | GlobalStore (g, v) ->
    let v = e v in
    pop_stmt t;
    do_write st t s 0 g v
  | New (x, cls) ->
    pop_stmt t;
    let id = new_obj st t cls in
    (match Ast.class_fields st.program cls with
    | Some fields -> List.iter (fun f -> heap_write st id f VNull) fields
    | None -> ());
    set_local t x (VRef id)
  | NewArray (x, n) -> (
    match e n with
    | VInt len when len >= 0 ->
      pop_stmt t;
      let id = new_obj st t "[]" in
      heap_write st id "len" (VInt len);
      for i = 0 to len - 1 do
        heap_write st id (elem_field i) (VInt 0)
      done;
      set_local t x (VRef id)
    | v -> crash s.sid s.line "bad array length %s" (Value.to_string v))
  | NewMap x ->
    pop_stmt t;
    let id = new_obj st t "map" in
    set_local t x (VRef id)
  | MapGet (x, m, k) ->
    let o = eval_ref s locals m in
    let f = mapkey_field (e k) in
    pop_stmt t;
    set_local t x (do_read st t s o f)
  | MapPut (m, k, v) ->
    let o = eval_ref s locals m in
    let f = mapkey_field (e k) in
    let v = e v in
    pop_stmt t;
    do_write st t s o f v
  | MapHas (x, m, k) ->
    let o = eval_ref s locals m in
    let f = mapkey_field (e k) in
    pop_stmt t;
    let v = do_read st t s o f in
    set_local t x (VBool (v <> VNull))
  | If (c, b1, b2) ->
    let cond = eval_bool s locals c in
    let f = current_frame t in
    f.cont <- List.map (fun x -> S x) (if cond then b1 else b2) @ List.tl f.cont
  | While (c, b) ->
    let cond = eval_bool s locals c in
    let f = current_frame t in
    if cond then f.cont <- List.map (fun x -> S x) b @ f.cont
    else f.cont <- List.tl f.cont
  | Call (ret, fname, args) -> (
    match Ast.find_fn st.program fname with
    | None -> crash s.sid s.line "call to undefined function %s" fname
    | Some fd ->
      let vals = List.map e args in
      pop_stmt t;
      let callee_locals = Hashtbl.create 16 in
      List.iter2 (fun p v -> Hashtbl.replace callee_locals p v) fd.params vals;
      t.frames <-
        { cont = List.map (fun x -> S x) fd.body; locals = callee_locals; ret_to = ret }
        :: t.frames)
  | Return v -> (
    let rv = match v with Some x -> e x | None -> VNull in
    match t.frames with
    | { ret_to; _ } :: rest ->
      t.frames <- rest;
      (match rest, ret_to with
      | caller :: _, Some x -> Hashtbl.replace caller.locals x rv
      | _ -> ())
    | [] -> assert false)
  | Spawn (h, fname, args) ->
    let vals = List.map e args in
    pop_stmt t;
    let tid = spawn_thread st t s fname vals in
    set_local t h (VThread tid)
  | Join hexpr -> (
    match e hexpr with
    | VThread target -> (
      match Hashtbl.find_opt st.threads target with
      | Some tt when tt.status = Finished || tt.status = Crashed ->
        pop_stmt t;
        tick t ~is_read:true ~ghost:true (heap_read st (-(target + 1)) "$thread")
      | Some _ -> t.status <- BlockedJoin target
      | None -> crash s.sid s.line "join of unknown thread %d" target)
    | v -> crash s.sid s.line "join of non-thread %s" (Value.to_string v))
  | Sync (m, body) ->
    let mo = eval_ref s locals m in
    if lock_free_or_mine st t mo then begin
      let f = current_frame t in
      f.cont <- List.map (fun x -> S x) body @ (CUnlock (mo, s.sid) :: List.tl f.cont);
      do_acquire st t mo
    end
    else t.status <- BlockedLock mo
  | Lock m ->
    let mo = eval_ref s locals m in
    if lock_free_or_mine st t mo then begin
      pop_stmt t;
      do_acquire st t mo
    end
    else t.status <- BlockedLock mo
  | Unlock m ->
    let mo = eval_ref s locals m in
    pop_stmt t;
    (match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid -> do_release st t mo ~site:s.sid ~full:false
    | _ -> crash s.sid s.line "unlock of a lock not held")
  | Wait m -> (
    let mo = eval_ref s locals m in
    match Hashtbl.find_opt st.locks mo with
    | Some (owner, n) when owner = t.tid ->
      pop_stmt t;
      t.wait_restore <- n;
      do_release st t mo ~site:s.sid ~full:true;
      t.status <- InWait mo;
      let ws = Option.value ~default:[] (Hashtbl.find_opt st.waitsets mo) in
      Hashtbl.replace st.waitsets mo (ws @ [ t.tid ])
    | _ -> crash s.sid s.line "wait without holding the monitor")
  | Notify m -> (
    let mo = eval_ref s locals m in
    match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid ->
      pop_stmt t;
      heap_write st mo "$cond" (VInt t.tid);
      tick t ~is_read:false ~ghost:true (VInt t.tid);
      (match fifo_pop st mo with Some w -> wake st w mo | None -> ())
    | _ -> crash s.sid s.line "notify without holding the monitor")
  | NotifyAll m -> (
    let mo = eval_ref s locals m in
    match Hashtbl.find_opt st.locks mo with
    | Some (owner, _) when owner = t.tid ->
      pop_stmt t;
      heap_write st mo "$cond" (VInt t.tid);
      tick t ~is_read:false ~ghost:true (VInt t.tid);
      let rec drain () =
        match fifo_pop st mo with
        | Some w -> wake st w mo; drain ()
        | None -> ()
      in
      drain ()
    | _ -> crash s.sid s.line "notifyAll without holding the monitor")
  | Assert c ->
    let v = eval_bool s locals c in
    if not v then crash s.sid s.line "assertion failed";
    pop_stmt t
  | Print v ->
    let str = Value.to_string (e v) in
    pop_stmt t;
    t.outputs_rev <- str :: t.outputs_rev
  | Syscall (x, name, args) ->
    let vals = List.map e args in
    let v = syscall_value st t s name vals in
    st.syscalls_rev <- (t.tid, t.sys_idx, name, v) :: st.syscalls_rev;
    t.sys_idx <- t.sys_idx + 1;
    pop_stmt t;
    set_local t x v
  | Opaque (x, name, args) ->
    let vals = List.map e args in
    let v = opaque_op s name vals in
    pop_stmt t;
    set_local t x v

let run ?(plan = Plan.all_shared) ?(max_steps = 5_000_000) ?(seed = 0) ~(sched : Sched.t)
    (program : Ast.program) : Interp.outcome =
  let st =
    {
      program;
      plan;
      heap = Hashtbl.create 1024;
      threads = Hashtbl.create 16;
      thread_order = [];
      locks = Hashtbl.create 16;
      waitsets = Hashtbl.create 16;
      steps = 0;
      crashes = [];
      syscalls_rev = [];
      rng = Random.State.make [| seed; 0x5EED |];
    }
  in
  Hashtbl.replace st.heap 0 { cls = "$globals"; fields = Hashtbl.create 16 };
  List.iter (fun g -> heap_write st 0 g VNull) program.globals;
  let main_thread =
    make_thread ~tid:1
      ~frames:
        [ { cont = List.map (fun x -> S x) program.main;
            locals = Hashtbl.create 16;
            ret_to = None } ]
  in
  main_thread.started <- true;
  Hashtbl.replace st.threads 1 main_thread;
  st.thread_order <- [ 1 ];
  let finished = ref false in
  let status = ref Interp.AllFinished in
  while not !finished do
    let all = st.thread_order in
    let live =
      List.filter
        (fun tid ->
          let t = Hashtbl.find st.threads tid in
          t.status <> Finished && t.status <> Crashed)
        all
    in
    if live = [] then (finished := true; status := Interp.AllFinished)
    else begin
      let runnable =
        List.filter (fun tid -> semantically_enabled st (Hashtbl.find st.threads tid)) live
      in
      if runnable = [] then begin
        finished := true;
        status := Interp.Deadlock live
      end
      else if st.steps >= max_steps then (finished := true; status := Interp.StepLimit)
      else begin
        let tid = sched.Sched.pick ~step:st.steps ~runnable in
        let tid = if List.mem tid runnable then tid else List.hd runnable in
        let t = Hashtbl.find st.threads tid in
        st.steps <- st.steps + 1;
        (try step_thread st t with
        | Rt_crash (site, line, msg) ->
          st.crashes <- { Interp.tid; site; line; msg; c = t.d } :: st.crashes;
          finish_thread st t ~crashed:true)
      end
    end
  done;
  let per_thread f =
    List.map (fun tid -> (tid, f (Hashtbl.find st.threads tid))) st.thread_order
  in
  {
    Interp.status = !status;
    steps = st.steps;
    crashes = List.rev st.crashes;
    reads = per_thread (fun t -> List.rev t.reads_rev);
    outputs = per_thread (fun t -> List.rev t.outputs_rev);
    counters = per_thread (fun t -> t.d);
    syscalls = List.rev st.syscalls_rev;
    final_heap =
      Hashtbl.fold (fun id (o : obj) acc -> (id, o) :: acc) st.heap []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map (fun (id, o) ->
             ( id,
               Hashtbl.fold (fun f v acc -> (f, v) :: acc) o.fields []
               |> List.sort compare ));
    trace = [];
  }
