(** Thread-escape analysis: which allocation sites may produce objects
    reachable by a thread other than the allocating one.

    Seeds: everything a global may point to, plus everything passed as a
    spawn argument (the analogue of the paper's Soot pass: data reachable
    from static fields or from the [Runnable]s handed to threads).  Closure:
    anything stored in a field / array element / map value of an escaping
    object escapes too.  Return values need no special casing — the
    points-to pass flows them into the caller's variable, so a returned
    object escapes exactly when the caller publishes it.

    A non-escaping site is thread-confined: every dynamic access to one of
    its objects comes from the thread that allocated it (any cross-thread
    path would have to pass through a global, a spawn argument, or the heap
    image of an object that itself escapes — all in the closure).  Eliding
    instrumentation on thread-confined data therefore drops no cross-thread
    flow dependence; see DESIGN.md, "Elision soundness".  This replaces the
    per-body [base_fresh] syntactic heuristic, and works across calls
    because points-to edges already span call/return boundaries. *)

module ISet = Pointsto.ISet

type t = ISet.t

let escaping (pt : Pointsto.t) (p : Lang.Ast.program) : t =
  let seeds =
    List.fold_left
      (fun acc g -> ISet.union acc (Pointsto.pts_global pt g))
      (Pointsto.spawn_arg_pts pt) p.globals
  in
  let esc = ref seeds in
  let changed = ref true in
  while !changed do
    changed := false;
    ISet.iter
      (fun a ->
        let out = Pointsto.heap_out pt a in
        if not (ISet.subset out !esc) then begin
          esc := ISet.union out !esc;
          changed := true
        end)
      !esc
  done;
  !esc

let is_escaping (esc : t) (sid : int) : bool = ISet.mem sid esc
