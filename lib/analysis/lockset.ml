(** Eraser-style static lockset consistency (Savage et al., adapted to the
    static side of Lemma 4.2).

    PR 4's guard analysis demanded one lock held at {e every} access of a
    partition.  This module refines that to the pairwise obligation O2
    actually needs: a conflicting access pair is harmless when

    - both sides are reads ([RReadRead]);
    - the two sites can never run concurrently ([ROrdered], from {!Mhp} —
      covers init-phase, must-join quiescence and disjoint windows); or
    - the two sites share a must-held lock ([RLock]): the lock's ghost
      dependences, always recorded, order the pair's critical sections.

    A partition all of whose conflicting pairs are covered can run with O2
    recording elision even when no single lock spans every site (e.g. a
    value published under [l1] and consumed after a join, plus hot updates
    under [l2]).  Sites' [locks] are must-held (under-approximate), so a
    common lock is definitely held by both sides; unresolved enclosing
    syncs only shrink the set and never unsoundly cover a pair.

    The classic Eraser candidate-set state machine is kept for reporting:
    [discipline] tells the lint report whether a partition is read-only,
    consistently locked (with the surviving candidate set C(v)), or broken
    — and by which site the intersection first emptied. *)

type reason =
  | RReadRead
  | RLock of Sites.lock
  | ROrdered

(** A must-held lock common to both sites, if any. *)
let common_lock (x : Sites.info) (y : Sites.info) : Sites.lock option =
  List.find_opt (fun l -> List.mem l y.Sites.locks) x.Sites.locks

(** Why the pair [x, y] needs no recording-order constraint; [None] = the
    pair is a static race candidate. *)
let pair_reason (mhp : Mhp.t) (x : Sites.info) (y : Sites.info) : reason option =
  if x.Sites.kind = Sites.KRead && y.Sites.kind = Sites.KRead then Some RReadRead
  else
    match common_lock x y with
    | Some l -> Some (RLock l)
    | None ->
      if not (Mhp.may_parallel mhp x.Sites.sid y.Sites.sid) then Some ROrdered
      else None

(** Every conflicting pair among [sites] (unordered, including a site with
    itself: a multi-instance thread conflicts with its own copy) is
    covered. *)
let covered (mhp : Mhp.t) (sites : Sites.info list) : bool =
  let arr = Array.of_list sites in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      if !ok && pair_reason mhp arr.(i) arr.(j) = None then ok := false
    done
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Candidate-set discipline, for reports                               *)
(* ------------------------------------------------------------------ *)

type discipline =
  | DSequential
      (** no two accesses may run concurrently (phase-ordered partition) *)
  | DReadShared  (** concurrent accesses exist but all are reads *)
  | DConsistent of Sites.lock list
      (** surviving candidate lockset C(v), nonempty *)
  | DBroken of Sites.info * Sites.lock list
      (** the access that emptied C(v), and C(v) just before it *)

(** Run the Eraser candidate-set machine over the partition's accesses that
    can actually run concurrently with something ([Mhp.sequential] filters
    the phase-ordered ones, generalizing Eraser's initialization grace
    period). *)
let discipline (mhp : Mhp.t) (sites : Sites.info list) : discipline =
  let hot =
    List.filter (fun (s : Sites.info) -> not (Mhp.sequential mhp s.Sites.sid)) sites
  in
  match hot with
  | [] -> DSequential
  | first :: rest ->
    if List.for_all (fun (s : Sites.info) -> s.Sites.kind = Sites.KRead) hot then
      DReadShared
    else begin
      let broken = ref None in
      let cv =
        List.fold_left
          (fun cv (s : Sites.info) ->
            if !broken <> None then cv
            else
              let cv' = List.filter (fun l -> List.mem l s.Sites.locks) cv in
              if cv' = [] then begin
                broken := Some (s, cv);
                cv'
              end
              else cv')
          first.Sites.locks rest
      in
      match !broken with
      | Some (s, before) -> DBroken (s, before)
      | None ->
        if cv = [] then DBroken (first, []) else DConsistent cv
    end
