(** Per-site facts: what each heap-access site touches, whether its base
    object is provably thread-local, and under which resolved locks it
    executes.  This is the substrate for the shared-location detection
    (Soot-style) and the consistent-lock-guard analysis of Lemma 4.2
    (Chord-style).

    Two collectors produce the same [info] shape at different precision:

    - {!collect_coarse} is the pre-points-to pipeline, kept verbatim as the
      old-vs-new comparison baseline: targets are name buckets ([AUnknown]
      allocation payloads), freshness is the per-body syntactic heuristic,
      and locks resolve only to global names;
    - {!collect_sharp} consumes the {!Pointsto} solution and an escape set:
      targets are (allocation-site, field) / per-site array and map
      partitions, thread-locality is real escape analysis, and locks
      resolve to unique allocation sites through arbitrary local aliases
      (must-alias). *)

open Lang

(** Allocation-site qualifier of a target: [ASite sid] pins the partition to
    one allocation statement; [AUnknown] is the name-bucket fallback (coarse
    mode, or a base whose points-to set is empty). *)
type alloc = ASite of int | AUnknown

type target =
  | TField of alloc * string
  | TGlobal of string
  | TArray of alloc  (** elements of arrays from one allocation site *)
  | TMap of alloc    (** entries of maps from one allocation site *)

(* Explicit structural comparator and hash: the target type carries
   allocation-site payloads, and inheriting polymorphic compare would tie
   the ordering (hence TM iteration order, hence every report) to the
   constructor layout.  Order: globals, then fields by name then site, then
   arrays, then maps; AUnknown sorts before any concrete site. *)

let alloc_compare (a : alloc) (b : alloc) : int =
  match (a, b) with
  | AUnknown, AUnknown -> 0
  | AUnknown, ASite _ -> -1
  | ASite _, AUnknown -> 1
  | ASite x, ASite y -> Int.compare x y

let target_compare (t1 : target) (t2 : target) : int =
  match (t1, t2) with
  | TGlobal a, TGlobal b -> String.compare a b
  | TGlobal _, _ -> -1
  | _, TGlobal _ -> 1
  | TField (a1, f1), TField (a2, f2) -> (
    match String.compare f1 f2 with 0 -> alloc_compare a1 a2 | c -> c)
  | TField _, _ -> -1
  | _, TField _ -> 1
  | TArray a, TArray b -> alloc_compare a b
  | TArray _, _ -> -1
  | _, TArray _ -> 1
  | TMap a, TMap b -> alloc_compare a b

let alloc_hash = function AUnknown -> 0x3f5c_a9d1 | ASite s -> (s * 0x9e37) lxor s

let target_hash (t : target) : int =
  (match t with
  | TGlobal g -> Hashtbl.hash g lxor 0x1
  | TField (a, f) -> ((Hashtbl.hash f * 31) + alloc_hash a) lxor 0x2
  | TArray a -> alloc_hash a lxor 0x4
  | TMap a -> alloc_hash a lxor 0x8)
  land max_int

(** Name bucket of a target (the coarse spelling): ".f", "g", "[]", "{}". *)
let target_base = function
  | TField (_, f) -> "." ^ f
  | TGlobal g -> g
  | TArray _ -> "[]"
  | TMap _ -> "{}"

let alloc_str = function ASite s -> "@s" ^ string_of_int s | AUnknown -> ""

let target_to_string = function
  | TGlobal g -> g
  | (TField (a, _) | TArray a | TMap a) as t -> target_base t ^ alloc_str a

type kind = KRead | KWrite

(** A lock identity: a unique allocation site (sharp mode, must-alias) or a
    global name (coarse mode's legacy resolution). *)
type lock = LSite of int | LName of string

type info = {
  sid : int;
  line : int;
  target : target;
  kind : kind;
  fn : string option;   (** enclosing body; [None] = main *)
  locks : lock list;    (** enclosing sync locks that resolved *)
  unresolved_lock : bool;  (** some enclosing sync lock failed to resolve *)
  base_local : bool;    (** every object the base may denote is thread-confined *)
  init_phase : bool;
      (** in the main body before the first spawn: happens-before-ordered
          with every thread, so it cannot race and does not break lock
          consistency (Java-style safe publication at thread start) *)
}

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

let base_var = function Ast.Var x -> Some x | _ -> None

(* main-body statement ids executed before the first spawn (top level or
   nested): a conservative prefix — once any statement can spawn, every
   later statement is post-init *)
let init_sids (p : Ast.program) : (int, unit) Hashtbl.t =
  let init = Hashtbl.create 64 in
  let rec has_spawn (s : Ast.stmt) =
    match s.node with
    | Ast.Spawn _ -> true
    | Ast.If (_, b1, b2) -> List.exists has_spawn b1 || List.exists has_spawn b2
    | Ast.While (_, b) | Ast.Sync (_, b) -> List.exists has_spawn b
    | Ast.Call (_, f, _) -> (
      (* a called function might spawn *)
      match Ast.find_fn p f with
      | Some fd -> List.exists has_spawn fd.body
      | None -> true)
    | _ -> false
  in
  let rec mark = function
    | [] -> ()
    | s :: rest ->
      if has_spawn s then ()
      else begin
        Ast.iter_stmts_block [ s ] (fun s' -> Hashtbl.replace init s'.sid ());
        mark rest
      end
  in
  mark p.main;
  init

(* ------------------------------------------------------------------ *)
(* Coarse freshness: flow-insensitive, per body                        *)
(* ------------------------------------------------------------------ *)

(* Variables that only ever hold freshly-allocated objects that never escape
   the body.  Escape = stored into the heap, a global, a map, an array,
   passed to a call/spawn, returned, or used as a sync lock (the lock ghost is
   then shared).  Assigning from anything other than an allocation or a
   fresh variable disqualifies. *)
let fresh_vars (body : Ast.block) : SSet.t =
  let assigned_fresh = ref SSet.empty in
  let disqualified = ref SSet.empty in
  let copies = ref [] in  (* (dst, src) for Assign(x, Var y) *)
  let disq x = disqualified := SSet.add x !disqualified in
  let disq_expr_vars e = List.iter disq (Ast.expr_vars e) in
  let rec go (s : Ast.stmt) =
    match s.node with
    | New (x, _) | NewArray (x, _) | NewMap x -> assigned_fresh := SSet.add x !assigned_fresh
    | Assign (x, Var y) -> copies := (x, y) :: !copies
    | Assign (x, e) ->
      (* arithmetic over refs is impossible; conservatively disqualify *)
      if Ast.expr_vars e <> [] then disq x
    | Load (x, _, _) | LoadIdx (x, _, _) | MapGet (x, _, _) | MapHas (x, _, _)
    | GlobalLoad (x, _) | Syscall (x, _, _) | Opaque (x, _, _) ->
      disq x
    | Store (_, _, v) -> disq_expr_vars v
    | StoreIdx (_, _, v) -> disq_expr_vars v
    | MapPut (_, _, v) -> disq_expr_vars v
    | GlobalStore (_, v) -> disq_expr_vars v
    | Call (ret, _, args) ->
      List.iter disq_expr_vars args;
      Option.iter disq ret
    | Spawn (x, _, args) ->
      List.iter disq_expr_vars args;
      disq x
    | Join h -> disq_expr_vars h
    | Return (Some v) -> disq_expr_vars v
    | Sync (m, b) ->
      disq_expr_vars m;
      List.iter go b
    | Lock m | Unlock m | Wait m | Notify m | NotifyAll m -> disq_expr_vars m
    | If (_, b1, b2) -> List.iter go b1; List.iter go b2
    | While (_, b) -> List.iter go b
    | _ -> ()
  in
  List.iter go body;
  (* propagate disqualification through copies to a fixpoint: a copy of a
     fresh var is fresh only if the copy itself never escapes, and copying
     aliases freshness both ways conservatively (treat dst and src as an
     equivalence: if either escapes, both are out) *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (x, y) ->
        let dx = SSet.mem x !disqualified and dy = SSet.mem y !disqualified in
        if dx && not dy then (disqualified := SSet.add y !disqualified; changed := true);
        if dy && not dx then (disqualified := SSet.add x !disqualified; changed := true);
        if SSet.mem y !assigned_fresh && not (SSet.mem x !assigned_fresh) then begin
          assigned_fresh := SSet.add x !assigned_fresh;
          changed := true
        end)
      !copies
  done;
  SSet.diff !assigned_fresh !disqualified

(* ------------------------------------------------------------------ *)
(* Coarse lock resolution: map a sync lock variable to a global name    *)
(* ------------------------------------------------------------------ *)

(* Flow-insensitive per body: v aliases global g if the body contains
   [GlobalLoad (v, g)] and no other definition of v.  Parameters resolve via
   call sites (handled by the caller in [collect_coarse]). *)
let global_aliases (body : Ast.block) : (string * string) list =
  let defs : (string, string option list) Hashtbl.t = Hashtbl.create 16 in
  let add_def x d =
    let prev = Option.value ~default:[] (Hashtbl.find_opt defs x) in
    Hashtbl.replace defs x (d :: prev)
  in
  let rec go (s : Ast.stmt) =
    (match s.node with
    | GlobalLoad (x, g) -> add_def x (Some g)
    | Assign (x, _) | Load (x, _, _) | LoadIdx (x, _, _) | MapGet (x, _, _)
    | MapHas (x, _, _) | New (x, _) | NewArray (x, _) | NewMap x
    | Syscall (x, _, _) | Opaque (x, _, _) ->
      add_def x None
    | Call (Some x, _, _) -> add_def x None
    | Spawn (x, _, _) -> add_def x None
    | _ -> ());
    match s.node with
    | If (_, b1, b2) -> List.iter go b1; List.iter go b2
    | While (_, b) | Sync (_, b) -> List.iter go b
    | _ -> ()
  in
  List.iter go body;
  Hashtbl.fold
    (fun x ds acc ->
      match ds with
      | [ Some g ] -> (x, g) :: acc
      | defs ->
        (* all defs load the same global: still a sound alias *)
        (match defs with
        | Some g :: rest when List.for_all (fun d -> d = Some g) rest -> (x, g) :: acc
        | _ -> acc))
    defs []

(* ------------------------------------------------------------------ *)
(* Coarse collection (legacy pipeline)                                 *)
(* ------------------------------------------------------------------ *)

let collect_coarse (p : Ast.program) : info list =
  (* parameter-to-global resolution: param i of fn f resolves to global g if
     every call/spawn site of f passes an expression aliasing g there *)
  let bodies = (None, p.main) :: List.map (fun (f : Ast.fndef) -> (Some f.fname, f.body)) p.fns in
  let aliases_of = List.map (fun (n, b) -> (n, global_aliases b)) bodies in
  let alias_in fn x =
    match List.assoc_opt fn aliases_of with
    | Some al -> List.assoc_opt x al
    | None -> None
  in
  (* gather, for each (fn, param index), the set of resolved argument globals *)
  let param_args : (string * int, string option list) Hashtbl.t = Hashtbl.create 32 in
  let note_call caller_fn callee args =
    List.iteri
      (fun i a ->
        let resolved =
          match a with
          | Ast.Var x -> alias_in caller_fn x
          | _ -> None
        in
        let key = (callee, i) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt param_args key) in
        Hashtbl.replace param_args key (resolved :: prev))
      args
  in
  List.iter
    (fun (fn, body) ->
      Ast.iter_stmts_block body (fun s ->
          match s.node with
          | Call (_, f, args) | Spawn (_, f, args) -> note_call fn f args
          | _ -> ()))
    bodies;
  let param_global (fname : string) (i : int) : string option =
    match Hashtbl.find_opt param_args (fname, i) with
    | Some (Some g :: rest) when List.for_all (fun d -> d = Some g) rest -> Some g
    | _ -> None
  in
  (* resolve a lock variable within a body *)
  let resolve_lock (fn : string option) (e : Ast.expr) : string option =
    match e with
    | Var x -> (
      match alias_in fn x with
      | Some g -> Some g
      | None -> (
        (* a parameter consistently bound to a global at all call sites *)
        match fn with
        | Some fname -> (
          match Ast.find_fn p fname with
          | Some fd -> (
            match List.find_index (fun prm -> prm = x) fd.params with
            | Some i -> param_global fname i
            | None -> None)
          | None -> None)
        | None -> None))
    | _ -> None
  in
  let init = init_sids p in
  let out = ref [] in
  let emit ~sid ~line ~target ~kind ~fn ~locks ~unresolved ~fresh base =
    out :=
      {
        sid;
        line;
        target;
        kind;
        fn;
        locks;
        unresolved_lock = unresolved;
        base_local = (match base with Some b -> SSet.mem b fresh | None -> false);
        init_phase = fn = None && Hashtbl.mem init sid;
      }
      :: !out
  in
  List.iter
    (fun (fn, body) ->
      let fresh = fresh_vars body in
      let rec go ~locks ~unresolved (s : Ast.stmt) =
        let e ?(k = KRead) target base =
          emit ~sid:s.sid ~line:s.line ~target ~kind:k ~fn ~locks ~unresolved ~fresh base
        in
        match s.node with
        | Load (_, o, f) -> e (TField (AUnknown, f)) (base_var o)
        | Store (o, f, _) -> e ~k:KWrite (TField (AUnknown, f)) (base_var o)
        | LoadIdx (_, a, _) -> e (TArray AUnknown) (base_var a)
        | StoreIdx (a, _, _) -> e ~k:KWrite (TArray AUnknown) (base_var a)
        | MapGet (_, m, _) | MapHas (_, m, _) -> e (TMap AUnknown) (base_var m)
        | MapPut (m, _, _) -> e ~k:KWrite (TMap AUnknown) (base_var m)
        | GlobalLoad (_, g) -> e (TGlobal g) None
        | GlobalStore (g, _) -> e ~k:KWrite (TGlobal g) None
        | If (_, b1, b2) ->
          List.iter (go ~locks ~unresolved) b1;
          List.iter (go ~locks ~unresolved) b2
        | While (_, b) -> List.iter (go ~locks ~unresolved) b
        | Sync (m, b) -> (
          match resolve_lock fn m with
          | Some g -> List.iter (go ~locks:(LName g :: locks) ~unresolved) b
          | None -> List.iter (go ~locks ~unresolved:true) b)
        | _ -> ()
      in
      List.iter (go ~locks:[] ~unresolved:false) body)
    bodies;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Sharp collection (points-to driven)                                 *)
(* ------------------------------------------------------------------ *)

(* One [info] per (site, pointed-to allocation): a site whose base may
   denote several allocation sites joins each partition.  An empty points-to
   set (the base can only be null at runtime; or a non-variable base) falls
   back to the [AUnknown] name bucket, which {!Analyze} merges with every
   same-name partition. *)
let collect_sharp (pt : Pointsto.t) ~(escaping : int -> bool) (p : Ast.program) :
    info list =
  let init = init_sids p in
  let bodies =
    (None, p.main) :: List.map (fun (f : Ast.fndef) -> (Some f.fname, f.body)) p.fns
  in
  let out = ref [] in
  List.iter
    (fun (fn, body) ->
      let pts_of x = Pointsto.pts_var pt ~fn x in
      (* must-alias: a singleton points-to set over a site that allocates at
         most one dynamic object names one concrete lock *)
      let resolve_lock (e : Ast.expr) : lock option =
        match e with
        | Ast.Var x -> (
          match Pointsto.ISet.elements (pts_of x) with
          | [ a ] when Pointsto.unique_site pt a -> Some (LSite a)
          | _ -> None)
        | _ -> None
      in
      (* targets of an access through [base]; [mk] builds the per-site
         partition.  Also reports whether every denoted object is
         thread-confined. *)
      let partitions base (mk : alloc -> target) : target list * bool =
        match base with
        | Some x ->
          let s = pts_of x in
          if Pointsto.ISet.is_empty s then ([ mk AUnknown ], false)
          else
            ( List.map (fun a -> mk (ASite a)) (Pointsto.ISet.elements s),
              Pointsto.ISet.for_all (fun a -> not (escaping a)) s )
        | None -> ([ mk AUnknown ], false)
      in
      let emit ~sid ~line ~kind ~locks ~unresolved (targets, local) =
        List.iter
          (fun target ->
            out :=
              {
                sid;
                line;
                target;
                kind;
                fn;
                locks;
                unresolved_lock = unresolved;
                base_local = local;
                init_phase = fn = None && Hashtbl.mem init sid;
              }
              :: !out)
          targets
      in
      let rec go ~locks ~unresolved (s : Ast.stmt) =
        let e ?(k = KRead) parts =
          emit ~sid:s.sid ~line:s.line ~kind:k ~locks ~unresolved parts
        in
        match s.node with
        | Load (_, o, f) -> e (partitions (base_var o) (fun a -> TField (a, f)))
        | Store (o, f, _) -> e ~k:KWrite (partitions (base_var o) (fun a -> TField (a, f)))
        | LoadIdx (_, a, _) -> e (partitions (base_var a) (fun al -> TArray al))
        | StoreIdx (a, _, _) -> e ~k:KWrite (partitions (base_var a) (fun al -> TArray al))
        | MapGet (_, m, _) | MapHas (_, m, _) ->
          e (partitions (base_var m) (fun al -> TMap al))
        | MapPut (m, _, _) -> e ~k:KWrite (partitions (base_var m) (fun al -> TMap al))
        | GlobalLoad (_, g) -> e ([ TGlobal g ], false)
        | GlobalStore (g, _) -> e ~k:KWrite ([ TGlobal g ], false)
        | If (_, b1, b2) ->
          List.iter (go ~locks ~unresolved) b1;
          List.iter (go ~locks ~unresolved) b2
        | While (_, b) -> List.iter (go ~locks ~unresolved) b
        | Sync (m, b) -> (
          match resolve_lock m with
          | Some l -> List.iter (go ~locks:(l :: locks) ~unresolved) b
          | None -> List.iter (go ~locks ~unresolved:true) b)
        | _ -> ()
      in
      List.iter (go ~locks:[] ~unresolved:false) body)
    bodies;
  List.rev !out
