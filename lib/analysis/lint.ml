(** [light lint]: a ranked static race report over the analysis results.

    The race set is {!Analyze.t.races} — conflicting site pairs that
    survived every elision argument (sharing, escape, init-phase, MHP
    ordering, must-held locksets).  Lint turns each pair into a finding
    with the {e evidence} for why it is a race:

    - an MHP witness: one overlapping thread-context pair per side
      ({!Mhp.witness}), showing the spawn windows that let both sites run
      concurrently;
    - lockset evidence: the Eraser candidate-set verdict for the
      partition ({!Lockset.discipline}) — which access emptied C(v), or
      that the sites run bare;
    - a severity score: write/write pairs outrank write/read, lock-free
      pairs outrank partially-locked ones, multi-instance witnesses and
      global targets add weight.

    The module also hosts the repository's tiny JSON layer (a hand-rolled
    AST, printer and parser — the repo deliberately has no external JSON
    dependency): [light lint --json], [light analyze --json] and the
    [sitecheck] bench gate all speak through it, so their schemas stay in
    one place and the gate can re-read what it wrote. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON                                                        *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape (s : string) : string =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_string ?(indent = 2) (j : t) : string =
    let buf = Buffer.create 1024 in
    let pad n = String.make n ' ' in
    let rec go depth j =
      match j with
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (string_of_bool b)
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (Printf.sprintf "%.4f" f)
      | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
      | List [] -> Buffer.add_string buf "[]"
      | List xs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (pad ((depth + 1) * indent));
            go (depth + 1) x)
          xs;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad (depth * indent));
        Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj kvs ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (pad ((depth + 1) * indent));
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (depth + 1) v)
          kvs;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad (depth * indent));
        Buffer.add_char buf '}'
    in
    go 0 j;
    Buffer.contents buf

  exception Parse_error of string

  (** Recursive-descent parser for the subset [to_string] emits (which is
      a subset of standard JSON, so externally edited baselines parse
      too). *)
  let of_string (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
            pos := !pos + 4;
            (* the printer only emits \u for control bytes; decode those *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else fail "non-latin \\u escape"
          | _ -> fail "bad escape");
          advance ();
          go ()
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while (match peek () with Some c when is_num c -> true | _ -> false) do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let kvs = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            kvs := field () :: !kvs;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !kvs)
        end
      | Some c -> (
        match c with
        | '0' .. '9' | '-' -> parse_number ()
        | _ -> fail (Printf.sprintf "unexpected '%c'" c))
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v

  (* accessors used by the sitecheck gate when re-reading a baseline *)
  let member (k : string) = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let to_int = function Int i -> Some i | _ -> None
  let to_list = function List xs -> Some xs | _ -> None
  let to_str = function Str s -> Some s | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)
(* ------------------------------------------------------------------ *)

type severity = High | Medium | Low

let severity_to_string = function High -> "high" | Medium -> "medium" | Low -> "low"

(** Two classes of findings:

    - [Race]: a pair from {!Analyze.t.races} — conflicting, concurrent,
      and no common lock.  Replay-relevant and a data-race candidate.
    - [Atomicity]: a conflicting pair that {e is} covered by a common
      must-held lock but still may run in parallel: the lock serializes
      the two critical sections without ordering them.  Harmless to
      recording (the ghost dependences pin the order) but the classic
      shape of check-then-act defects that lockset tools are blind to —
      Lucene-481's reader close racing a searcher is exactly such a
      pair. *)
type finding_class = Race | Atomicity

let class_to_string = function Race -> "race" | Atomicity -> "atomicity"

type finding = {
  rank : int;  (** 1-based position in the severity-sorted report *)
  cls : finding_class;
  on : Sites.target;
  s1 : Sites.info;
  s2 : Sites.info;
  score : int;
  severity : severity;
  witness : (Mhp.ctx * Mhp.ctx) option;  (** overlapping context pair *)
  lockset : Lockset.discipline;  (** partition-level Eraser verdict *)
}

let lock_str (a : Analyze.t) (l : Sites.lock) : string =
  Analyze.lock_display a.Analyze.pointsto a.Analyze.program l

(* Severity: how likely the pair is a bug worth a look, and how harsh its
   failure mode.  Write/write pairs corrupt data rather than read stale
   values; pairs with no lock anywhere run bare; a multi-instance witness
   means every added thread widens the exposure; globals are
   program-visible state.  The explorer's racy-first ranking uses the
   same race set, so lint's ordering matches what schedule exploration
   perturbs first. *)
let score_pair (s1 : Sites.info) (s2 : Sites.info) witness on : int =
  let ww = s1.Sites.kind = Sites.KWrite && s2.Sites.kind = Sites.KWrite in
  let bare = s1.Sites.locks = [] && s2.Sites.locks = [] in
  let multi =
    match witness with
    | Some (c1, c2) -> c1.Mhp.c_multi || c2.Mhp.c_multi
    | None -> false
  in
  let global = match on with Sites.TGlobal _ -> true | _ -> false in
  (if ww then 3 else 0) + (if bare then 2 else 0) + (if multi then 1 else 0)
  + if global then 1 else 0

let severity_of_score (n : int) : severity =
  if n >= 5 then High else if n >= 3 then Medium else Low

let findings (a : Analyze.t) : finding list =
  let mk cls (on : Sites.target) (s1 : Sites.info) (s2 : Sites.info) =
    let witness = Mhp.witness a.Analyze.mhp s1.Sites.sid s2.Sites.sid in
    let lockset =
      match Analyze.TM.find_opt on a.Analyze.targets with
      | Some tc -> Lockset.discipline a.Analyze.mhp tc.Analyze.sites
      | None -> Lockset.DSequential
    in
    let score =
      match cls with
      | Race -> score_pair s1 s2 witness on
      (* serialized pairs can't corrupt data; they rank below every race *)
      | Atomicity ->
        1
        + (if s1.Sites.kind = Sites.KWrite && s2.Sites.kind = Sites.KWrite then 1 else 0)
        + ( match witness with
          | Some (c1, c2) when c1.Mhp.c_multi || c2.Mhp.c_multi -> 1
          | _ -> 0 )
    in
    (score, { rank = 0; cls; on; s1; s2; score;
              severity = severity_of_score score; witness; lockset })
  in
  let races =
    List.map (fun (r : Analyze.race_pair) -> mk Race r.on r.t1 r.t2) a.Analyze.races
  in
  (* lock-serialized but unordered conflicting pairs: the common lock hides
     them from the race set, MHP says the sections still interleave — the
     check-then-act shape.  One finding per site pair, as with races. *)
  let atomicity =
    let seen = Hashtbl.create 32 in
    List.iter
      (fun (r : Analyze.race_pair) ->
        Hashtbl.replace seen
          (min r.t1.Sites.sid r.t2.Sites.sid, max r.t1.Sites.sid r.t2.Sites.sid)
          ())
      a.Analyze.races;
    Analyze.TM.fold
      (fun on (tc : Analyze.target_class) acc ->
        if not tc.Analyze.shared then acc
        else
          let rec pairs = function
            | [] -> []
            | (x : Sites.info) :: rest ->
              List.filter_map
                (fun (y : Sites.info) ->
                  let key = (min x.Sites.sid y.Sites.sid, max x.Sites.sid y.Sites.sid) in
                  if Hashtbl.mem seen key then None
                  else if
                    (x.Sites.kind = Sites.KWrite || y.Sites.kind = Sites.KWrite)
                    && Mhp.may_parallel a.Analyze.mhp x.Sites.sid y.Sites.sid
                    && Lockset.common_lock x y <> None
                  then begin
                    Hashtbl.replace seen key ();
                    Some (mk Atomicity on x y)
                  end
                  else None)
                (x :: rest)
              @ pairs rest
          in
          pairs tc.Analyze.sites @ acc)
      a.Analyze.targets []
  in
  let sorted =
    List.sort
      (fun (sa, fa) (sb, fb) ->
        match compare (sb : int) sa with
        | 0 -> compare (fa.s1.Sites.sid, fa.s2.Sites.sid) (fb.s1.Sites.sid, fb.s2.Sites.sid)
        | c -> c)
      (races @ atomicity)
  in
  List.mapi (fun i (_, f) -> { f with rank = i + 1 }) sorted

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let witness_str (f : finding) : string =
  match f.witness with
  | Some (c1, c2) ->
    Format.asprintf "%a || %a" Mhp.pp_ctx c1 Mhp.pp_ctx c2
  | None -> "unrefined (no MHP witness computed)"

let lockset_str (a : Analyze.t) (f : finding) : string =
  match f.lockset with
  | Lockset.DSequential -> "partition is phase-ordered"
  | Lockset.DReadShared -> "partition is read-shared"
  | Lockset.DConsistent ls ->
    let ls = String.concat ", " (List.map (lock_str a) ls) in
    (match f.cls with
    | Atomicity ->
      Printf.sprintf
        "sections serialized by {%s} but unordered: check-then-act exposure" ls
    | Race -> Printf.sprintf "partition consistently holds {%s}" ls)
  | Lockset.DBroken (s, before) ->
    Printf.sprintf "C(v) emptied by line %d (%s %s): held {%s} before it"
      s.Sites.line
      (match s.Sites.kind with Sites.KWrite -> "write" | Sites.KRead -> "read")
      (Sites.target_to_string s.Sites.target)
      (String.concat ", " (List.map (lock_str a) before))

let site_str (s : Sites.info) : string =
  Printf.sprintf "line %d %s of %s in %s%s" s.Sites.line
    (match s.Sites.kind with Sites.KWrite -> "write" | Sites.KRead -> "read")
    (Sites.target_to_string s.Sites.target)
    (match s.Sites.fn with Some f -> f | None -> "main")
    (match s.Sites.locks with
    | [] -> ""
    | _ -> Printf.sprintf " [%d lock(s) held]" (List.length s.Sites.locks))

let report (a : Analyze.t) : string =
  let fs = findings a in
  let races = List.length (List.filter (fun f -> f.cls = Race) fs) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "lint: %d finding(s) after elision — %d race pair(s), %d atomicity \
        suspect(s) (%s)\n"
       (List.length fs) races
       (List.length fs - races)
       (Analyze.summary a));
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "\n#%d [%s %s, score %d] %s\n" f.rank
           (class_to_string f.cls)
           (severity_to_string f.severity) f.score (Sites.target_to_string f.on));
      Buffer.add_string buf (Printf.sprintf "    %s\n" (site_str f.s1));
      Buffer.add_string buf (Printf.sprintf "    %s\n" (site_str f.s2));
      Buffer.add_string buf (Printf.sprintf "    mhp:     %s\n" (witness_str f));
      Buffer.add_string buf (Printf.sprintf "    lockset: %s\n" (lockset_str a f)))
    fs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON encoders                                                       *)
(* ------------------------------------------------------------------ *)

let site_json (a : Analyze.t) (s : Sites.info) : Json.t =
  Json.Obj
    [
      ("sid", Json.Int s.Sites.sid);
      ("line", Json.Int s.Sites.line);
      ("kind", Json.Str (match s.Sites.kind with Sites.KWrite -> "write" | _ -> "read"));
      ("target", Json.Str (Sites.target_to_string s.Sites.target));
      ("fn", match s.Sites.fn with Some f -> Json.Str f | None -> Json.Null);
      ("locks", Json.List (List.map (fun l -> Json.Str (lock_str a l)) s.Sites.locks));
    ]

let finding_json (a : Analyze.t) (f : finding) : Json.t =
  Json.Obj
    [
      ("rank", Json.Int f.rank);
      ("class", Json.Str (class_to_string f.cls));
      ("target", Json.Str (Sites.target_to_string f.on));
      ("severity", Json.Str (severity_to_string f.severity));
      ("score", Json.Int f.score);
      ("s1", site_json a f.s1);
      ("s2", site_json a f.s2);
      ("mhp_witness", Json.Str (witness_str f));
      ("lockset", Json.Str (lockset_str a f));
    ]

let report_json (a : Analyze.t) : Json.t =
  let fs = findings a in
  let count sev = List.length (List.filter (fun f -> f.severity = sev) fs) in
  Json.Obj
    [
      ("races", Json.List (List.map (finding_json a) fs));
      ( "summary",
        Json.Obj
          [
            ("total", Json.Int (List.length fs));
            ( "race_pairs",
              Json.Int (List.length (List.filter (fun f -> f.cls = Race) fs)) );
            ( "atomicity_suspects",
              Json.Int (List.length (List.filter (fun f -> f.cls = Atomicity) fs)) );
            ("high", Json.Int (count High));
            ("medium", Json.Int (count Medium));
            ("low", Json.Int (count Low));
          ] );
    ]

(** [light analyze --json]: the full classification (partitions, guards,
    elision counts) plus the lint race list, sharing its encoders. *)
let analysis_json (a : Analyze.t) ~(instrumented : int) ~(guarded : int)
    ~(total_sites : int) : Json.t =
  let target_json (tc : Analyze.target_class) : Json.t =
    Json.Obj
      [
        ("target", Json.Str (Sites.target_to_string tc.Analyze.target));
        ("shared", Json.Bool tc.Analyze.shared);
        ( "guarded_by",
          match tc.Analyze.guarded_by with Some l -> Json.Str l | None -> Json.Null );
        ("covered", Json.Bool tc.Analyze.covered);
        ( "active_sids",
          Json.List
            (List.map
               (fun i -> Json.Int i)
               (Analyze.ISet.elements tc.Analyze.active)) );
        ("sites", Json.List (List.map (site_json a) tc.Analyze.sites));
      ]
  in
  let targets =
    Analyze.TM.fold (fun _ tc acc -> target_json tc :: acc) a.Analyze.targets []
  in
  Json.Obj
    [
      ( "summary",
        Json.Obj
          [
            ("precision", Json.Str (match a.Analyze.precision with
                                    | Analyze.Sharp -> "sharp" | Analyze.Coarse -> "coarse"));
            ("refined", Json.Bool a.Analyze.refined);
            ("total_access_sites", Json.Int total_sites);
            ("instrumented_sites", Json.Int instrumented);
            ("guarded_sites", Json.Int guarded);
            ("sequential_sids", Json.Int (Analyze.sequential_sids a));
            ("race_pairs", Json.Int (List.length a.Analyze.races));
          ] );
      ("targets", Json.List (List.rev targets));
      ("races", Json.List (List.map (finding_json a) (findings a)));
    ]
