(** May-happen-in-parallel (MHP) analysis over the fork/join structure.

    The recorder only needs a site instrumented when some conflicting access
    can run concurrently with it.  PR 4's init-phase elision exploited one
    slice of the happens-before order (main before the first spawn); this
    module generalizes it to the whole thread structure of the program:

    - [main] is walked (inlining non-recursive calls) with a symbolic
      {e event clock} that ticks at every spawn and must-join, assigning each
      statement executed in main context an interval of clock values;
    - every spawn site gets a {e window} [\[lo, hi\]]: the thread cannot
      start before its spawn edge ([lo]) and, when the walk proves the
      handle must-joined, cannot survive its join edge ([hi]; [max_int]
      otherwise).  Threads spawned inside other threads inherit their
      parent's window (bounded only when must-joined in the parent body);
    - {e multi-instance} spawn sites (a spawn in a loop whose instance
      survives the iteration, or a site reached from two dynamic contexts)
      may run concurrently with themselves.

    Two sites may happen in parallel iff they have execution contexts in
    distinct threads (or one multi-instance thread) whose intervals
    overlap.  A site whose every context is a main-context interval
    overlapping no window is {e sequential} (quiescent): totally ordered by
    the spawn/join ghost dependences with every access in the program —
    e.g. main folding per-phase results after joining a wave, before
    spawning the next — so its recording can be elided outright, exactly
    like init-phase accesses (which this subsumes: their intervals precede
    every window).

    Everything over-approximates: unknown handles are never must-joined,
    recursive or unresolvable calls conservatively spawn their whole
    reachable closure with unbounded windows, and loop bodies widen to the
    whole-loop interval (any iteration may overlap any in-loop thread). *)

open Lang

module SMap = Map.Make (String)
module SSet = Set.Make (String)
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type athread = AMain | ASpawn of int  (** abstract thread: one per spawn site *)

(** Lifetime window of a spawn site, in main event-clock units. *)
type window = {
  w_sid : int;       (** the spawn statement's site id *)
  w_fn : string;     (** spawned entry function *)
  w_lo : int;
  w_hi : int;        (** [max_int] = never must-joined *)
  w_multi : bool;    (** several instances may coexist *)
}

(** One execution context of a statement: which abstract thread runs it and
    over which clock interval. *)
type ctx = {
  c_thread : athread;
  c_fn : string;     (** entry function of the thread; [""] for main *)
  c_lo : int;
  c_hi : int;
  c_multi : bool;
}

type t = {
  windows : window list;
  ctxs : (int, ctx list) Hashtbl.t;  (* sid -> execution contexts *)
}

(* ------------------------------------------------------------------ *)
(* The main walk                                                       *)
(* ------------------------------------------------------------------ *)

(* What a local variable may hold as a thread handle. *)
type handle = HThread of int

type wstate = {
  clock : int;
  env : handle SMap.t;   (* handle variables with a unique spawn site *)
  live : ISet.t;         (* spawn sites that may have a running instance *)
  joined : int IMap.t;   (* spawn site -> clock of its latest must-join *)
}

(* variable defined by a statement, if any *)
let def_of (n : Ast.stmt_node) : string option =
  match n with
  | Assign (x, _) | Load (x, _, _) | LoadIdx (x, _, _) | GlobalLoad (x, _)
  | New (x, _) | NewArray (x, _) | NewMap x | MapGet (x, _, _)
  | MapHas (x, _, _) | Syscall (x, _, _) | Opaque (x, _, _) ->
    Some x
  | Call (Some x, _, _) -> Some x
  | _ -> None

let merge (a : wstate) (b : wstate) : wstate =
  let live = ISet.union a.live b.live in
  let joined =
    IMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some cx, Some cy -> Some (max cx cy)
        | Some c, None | None, Some c -> Some c
        | None, None -> None)
      a.joined b.joined
    |> IMap.filter (fun sid _ -> not (ISet.mem sid live))
  in
  let env =
    SMap.merge
      (fun _ x y ->
        match (x, y) with Some hx, Some hy when hx = hy -> Some hx | _ -> None)
      a.env b.env
  in
  { clock = max a.clock b.clock; env; live; joined }

(* Spawn sites lexically inside a block, with loop context. *)
let block_spawn_sites (b : Ast.block) : (int * string * bool) list =
  let out = ref [] in
  let rec go ~in_loop (s : Ast.stmt) =
    match s.node with
    | Spawn (_, f, _) -> out := (s.sid, f, in_loop) :: !out
    | If (_, b1, b2) ->
      List.iter (go ~in_loop) b1;
      List.iter (go ~in_loop) b2
    | While (_, bb) -> List.iter (go ~in_loop:true) bb
    | Sync (_, bb) -> List.iter (go ~in_loop) bb
    | _ -> ()
  in
  List.iter (go ~in_loop:false) b;
  List.rev !out

(* Spawn sites must-joined within [b]: a straight-line spawn whose handle
   reaches a straight-line join unclobbered.  Joins under branches or loops
   never count (they may not execute), and nothing after a possible return
   counts. *)
let must_joined_sids (b : Ast.block) : ISet.t =
  let env : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let joined = ref ISet.empty in
  let returned = ref false in
  let rec may_return (s : Ast.stmt) =
    match s.node with
    | Return _ -> true
    | If (_, b1, b2) -> List.exists may_return b1 || List.exists may_return b2
    | While (_, bb) | Sync (_, bb) -> List.exists may_return bb
    | _ -> false
  in
  let kill_nested (bb : Ast.block) =
    Ast.iter_stmts_block bb (fun s ->
        match def_of s.node with
        | Some x -> Hashtbl.remove env x
        | None -> (match s.node with Spawn (x, _, _) -> Hashtbl.remove env x | _ -> ()))
  in
  List.iter
    (fun (s : Ast.stmt) ->
      if not !returned then begin
        (match s.node with
        | Spawn (x, _, _) -> Hashtbl.replace env x s.sid
        | Join (Var x) -> (
          match Hashtbl.find_opt env x with
          | Some sid ->
            joined := ISet.add sid !joined;
            Hashtbl.remove env x
          | None -> ())
        | If (_, b1, b2) ->
          kill_nested b1;
          kill_nested b2
        | While (_, bb) | Sync (_, bb) -> kill_nested bb
        | _ -> (match def_of s.node with Some x -> Hashtbl.remove env x | None -> ()));
        if may_return s then returned := true
      end)
    b;
  !joined

let build (cg : Callgraph.t) (p : Ast.program) : t =
  (* --- shared mutable tables ------------------------------------- *)
  let iv : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let stamp_log : int list ref = ref [] in
  let stamp sid lo hi =
    stamp_log := sid :: !stamp_log;
    match Hashtbl.find_opt iv sid with
    | None -> Hashtbl.replace iv sid (lo, hi)
    | Some (l, h) -> if lo < l || hi > h then Hashtbl.replace iv sid (min l lo, max h hi)
  in
  (* widen every statement stamped since [mark] to [lo, hi]: any loop
     iteration may overlap any thread alive anywhere in the loop *)
  let widen_since (mark : int list) lo hi =
    let rec go l =
      if l != mark then
        match l with
        | sid :: tl ->
          let l0, h0 = Hashtbl.find iv sid in
          if lo < l0 || hi > h0 then Hashtbl.replace iv sid (min l0 lo, max h0 hi);
          go tl
        | [] -> ()
    in
    go !stamp_log
  in
  let sp_lo : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let sp_fn : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let sp_multi : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let spawn_order : int list ref = ref [] in
  let register_spawn sid fname lo =
    match Hashtbl.find_opt sp_lo sid with
    | Some l0 ->
      (* the same spawn site reached again: several dynamic instances *)
      if lo < l0 then Hashtbl.replace sp_lo sid lo;
      Hashtbl.replace sp_multi sid ()
    | None ->
      Hashtbl.replace sp_lo sid lo;
      Hashtbl.replace sp_fn sid fname;
      spawn_order := sid :: !spawn_order
  in
  (* --- call/spawn closures over the callgraph --------------------- *)
  let callees f =
    Option.value ~default:SSet.empty (SMap.find_opt f cg.Callgraph.calls)
  in
  let call_closure (root : string) : SSet.t =
    let seen = ref SSet.empty in
    let rec go f =
      if not (SSet.mem f !seen) then begin
        seen := SSet.add f !seen;
        SSet.iter go (callees f)
      end
    in
    go root;
    !seen
  in
  let body_of f = match Ast.find_fn p f with Some fd -> fd.body | None -> [] in
  (* everything that may run because of calling [root]: closure over call
     and spawn edges *)
  let full_closure (root : string) : SSet.t =
    let seen = ref SSet.empty in
    let rec go f =
      if not (SSet.mem f !seen) then begin
        seen := SSet.add f !seen;
        SSet.iter go (callees f);
        List.iter (fun (_, g, _) -> go g) (block_spawn_sites (body_of f))
      end
    in
    go root;
    !seen
  in
  (* --- the walk ---------------------------------------------------- *)
  (* recursive or unresolvable call: everything it may reach runs during
     (threads: from) the call, with unbounded thread windows *)
  let opaque_call (st : wstate) (f : string) : wstate =
    let c = st.clock in
    let fns = full_closure f in
    let spawns =
      SSet.fold (fun g acc -> block_spawn_sites (body_of g) @ acc) fns []
    in
    if spawns = [] then begin
      (* pure synchronous call: its statements run at the call's clock *)
      SSet.iter
        (fun g -> Ast.iter_stmts_block (body_of g) (fun s -> stamp s.sid c c))
        (call_closure f);
      st
    end
    else begin
      SSet.iter
        (fun g -> Ast.iter_stmts_block (body_of g) (fun s -> stamp s.sid c (c + 1)))
        (call_closure f);
      let live =
        List.fold_left
          (fun acc (sid, g, _) ->
            register_spawn sid g c;
            Hashtbl.replace sp_multi sid ();
            ISet.add sid acc)
          st.live spawns
      in
      let joined =
        List.fold_left (fun j (sid, _, _) -> IMap.remove sid j) st.joined spawns
      in
      { st with clock = c + 1; live; joined }
    end
  in
  let rec walk_stmt (stack : SSet.t) (st : wstate) (s : Ast.stmt) : wstate =
    let c = st.clock in
    match s.node with
    | Spawn (x, f, _) ->
      stamp s.sid c c;
      register_spawn s.sid f (c + 1);
      {
        clock = c + 1;
        env = SMap.add x (HThread s.sid) st.env;
        live = ISet.add s.sid st.live;
        joined = IMap.remove s.sid st.joined;
      }
    | Join e ->
      stamp s.sid c c;
      (match e with
      | Var h -> (
        match SMap.find_opt h st.env with
        | Some (HThread sid) when ISet.mem sid st.live && not (Hashtbl.mem sp_multi sid)
          ->
          {
            st with
            clock = c + 1;
            live = ISet.remove sid st.live;
            joined = IMap.add sid c st.joined;
          }
        | _ -> st)
      | _ -> st)
    | Assign (x, Var y) ->
      stamp s.sid c c;
      let env =
        match SMap.find_opt y st.env with
        | Some h -> SMap.add x h st.env
        | None -> SMap.remove x st.env
      in
      { st with env }
    | If (_, b1, b2) ->
      let st1 = walk_block stack st b1 in
      let st2 = walk_block stack st b2 in
      let st' = merge st1 st2 in
      stamp s.sid c st'.clock;
      st'
    | While (_, body) ->
      let mark = !stamp_log in
      let st1 = walk_block stack st body in
      let c1 = st1.clock in
      widen_since mark c c1;
      (* an instance spawned in the body that survives to the body's end
         may overlap the next iteration's instance *)
      ISet.iter
        (fun sid -> if not (ISet.mem sid st.live) then Hashtbl.replace sp_multi sid ())
        st1.live;
      let st' = merge st st1 in
      stamp s.sid c st'.clock;
      st'
    | Sync (_, body) ->
      let st' = walk_block stack st body in
      stamp s.sid c st'.clock;
      st'
    | Call (xo, f, _) -> (
      stamp s.sid c c;
      let st =
        match xo with Some x -> { st with env = SMap.remove x st.env } | None -> st
      in
      match Ast.find_fn p f with
      | Some fd when not (SSet.mem f stack) ->
        (* inline the callee on the caller's clock; its locals are fresh
           (handles do not flow through parameters: conservative) *)
        let st_out = walk_block (SSet.add f stack) { st with env = SMap.empty } fd.body in
        stamp s.sid c st_out.clock;
        { st_out with env = st.env }
      | _ -> opaque_call st f)
    | _ -> (
      stamp s.sid c c;
      match def_of s.node with
      | Some x -> { st with env = SMap.remove x st.env }
      | None -> st)
  and walk_block (stack : SSet.t) (st : wstate) (b : Ast.block) : wstate =
    match b with
    | [] -> st
    | ({ node = Return _; _ } as s) :: rest ->
      stamp s.sid st.clock st.clock;
      (* the tail may be skipped entirely *)
      let st1 = walk_block stack st rest in
      merge st st1
    | s :: rest -> walk_block stack (walk_stmt stack st s) rest
  in
  let st_end =
    walk_block SSet.empty
      { clock = 0; env = SMap.empty; live = ISet.empty; joined = IMap.empty }
      p.main
  in
  (* --- windows: main-reachable spawns, then nested spawns ---------- *)
  let win : (int, window) Hashtbl.t = Hashtbl.create 16 in
  let main_windows =
    List.rev_map
      (fun sid ->
        let hi =
          match IMap.find_opt sid st_end.joined with Some h -> h | None -> max_int
        in
        {
          w_sid = sid;
          w_fn = Hashtbl.find sp_fn sid;
          w_lo = Hashtbl.find sp_lo sid;
          w_hi = hi;
          w_multi = Hashtbl.mem sp_multi sid;
        })
      !spawn_order
  in
  List.iter (fun w -> Hashtbl.replace win w.w_sid w) main_windows;
  (* worklist: spawns inside spawned bodies inherit the parent window *)
  let queue = Queue.create () in
  List.iter (fun w -> Queue.add w queue) main_windows;
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    SSet.iter
      (fun g ->
        let body = body_of g in
        let bounded = must_joined_sids body in
        List.iter
          (fun (sid, fname, in_loop) ->
            let w' =
              {
                w_sid = sid;
                w_fn = fname;
                w_lo = w.w_lo;
                w_hi = (if ISet.mem sid bounded then w.w_hi else max_int);
                w_multi = w.w_multi || in_loop;
              }
            in
            match Hashtbl.find_opt win sid with
            | None ->
              Hashtbl.replace win sid w';
              Queue.add w' queue
            | Some w0 ->
              (* a second parent context: several instances, merged window *)
              let merged =
                {
                  w0 with
                  w_lo = min w0.w_lo w'.w_lo;
                  w_hi = max w0.w_hi w'.w_hi;
                  w_multi = true;
                }
              in
              if merged <> w0 then begin
                Hashtbl.replace win sid merged;
                Queue.add merged queue
              end)
          (block_spawn_sites body))
      (call_closure w.w_fn)
  done;
  let windows = Hashtbl.fold (fun _ w acc -> w :: acc) win [] in
  let windows = List.sort (fun a b -> Int.compare a.w_sid b.w_sid) windows in
  (* --- execution contexts per statement --------------------------- *)
  let ctxs : (int, ctx list) Hashtbl.t = Hashtbl.create 256 in
  let add_ctx sid c =
    Hashtbl.replace ctxs sid (c :: Option.value ~default:[] (Hashtbl.find_opt ctxs sid))
  in
  Hashtbl.iter
    (fun sid (lo, hi) ->
      add_ctx sid { c_thread = AMain; c_fn = ""; c_lo = lo; c_hi = hi; c_multi = false })
    iv;
  List.iter
    (fun w ->
      SSet.iter
        (fun g ->
          Ast.iter_stmts_block (body_of g) (fun s ->
              add_ctx s.sid
                {
                  c_thread = ASpawn w.w_sid;
                  c_fn = w.w_fn;
                  c_lo = w.w_lo;
                  c_hi = w.w_hi;
                  c_multi = w.w_multi;
                }))
        (call_closure w.w_fn))
    windows;
  { windows; ctxs }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let overlap lo1 hi1 lo2 hi2 = lo1 <= hi2 && lo2 <= hi1

let ctx_parallel (c1 : ctx) (c2 : ctx) : bool =
  match (c1.c_thread, c2.c_thread) with
  | AMain, AMain -> false
  | ASpawn a, ASpawn b when a = b -> c1.c_multi
  | _ -> overlap c1.c_lo c1.c_hi c2.c_lo c2.c_hi

let ctxs_of (t : t) (sid : int) : ctx list =
  Option.value ~default:[] (Hashtbl.find_opt t.ctxs sid)

(** May sites [s1] and [s2] execute concurrently?  A site with no context is
    unreachable and parallel with nothing. *)
let may_parallel (t : t) (s1 : int) (s2 : int) : bool =
  let cs2 = ctxs_of t s2 in
  List.exists (fun c1 -> List.exists (ctx_parallel c1) cs2) (ctxs_of t s1)

(** A pair of contexts witnessing [may_parallel], for reports. *)
let witness (t : t) (s1 : int) (s2 : int) : (ctx * ctx) option =
  List.fold_left
    (fun acc c1 ->
      match acc with
      | Some _ -> acc
      | None -> (
        match List.find_opt (ctx_parallel c1) (ctxs_of t s2) with
        | Some c2 -> Some (c1, c2)
        | None -> None))
    None (ctxs_of t s1)

(** [definitely_before t s1 s2]: every execution of [s1] completes before
    any execution of [s2] can begin, on every context pairing.  Used to
    decide write visibility: a write definitely-after a read cannot affect
    the value the read observes. *)
let definitely_before (t : t) (s1 : int) (s2 : int) : bool =
  let cs2 = ctxs_of t s2 in
  List.for_all
    (fun c1 -> List.for_all (fun c2 -> c1.c_hi < c2.c_lo) cs2)
    (ctxs_of t s1)

(** Is every execution of [sid] totally ordered with every thread?  True for
    main-context statements whose interval overlaps no spawn window — the
    must-join quiescence generalizing init-phase — and for unreachable
    code. *)
let sequential (t : t) (sid : int) : bool =
  List.for_all
    (fun c ->
      c.c_thread = AMain
      && List.for_all (fun w -> not (overlap c.c_lo c.c_hi w.w_lo w.w_hi)) t.windows)
    (ctxs_of t sid)

let pp_ctx (ppf : Format.formatter) (c : ctx) : unit =
  let hi = if c.c_hi = max_int then "inf" else string_of_int c.c_hi in
  match c.c_thread with
  | AMain -> Format.fprintf ppf "main[%d,%s]" c.c_lo hi
  | ASpawn s ->
    Format.fprintf ppf "thread@s%d(%s)%s[%d,%s]" s c.c_fn
      (if c.c_multi then "*" else "")
      c.c_lo hi
