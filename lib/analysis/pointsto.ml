(** Flow-insensitive, field-sensitive allocation-site points-to analysis
    (Andersen style) over the checked AST.

    Abstract objects are allocation sites — the [sid] of a [New] /
    [NewArray] / [NewMap] statement.  References flow through local copies,
    object fields, array elements, map values, globals, call arguments and
    returns (the subject language cannot produce a reference any other way:
    arithmetic over references is a runtime type error, so only [Var] and
    [Null] expressions carry them).  The solver is a plain inclusion-based
    fixpoint: programs in this repository are a few hundred statements, so
    worklist sophistication would buy nothing.

    Downstream consumers:
    - {!Sites.collect_sharp} partitions access targets per allocation site
      instead of per field name;
    - {!Escape} computes thread-escape by heap reachability from globals
      and spawn arguments;
    - the must-alias lock resolution uses [unique_site]: a lock expression
      whose points-to set is a single site that provably allocates at most
      one dynamic object names one concrete lock. *)

open Lang

module ISet = Set.Make (Int)

type alloc_kind = AObj of string | AArr | AMap

type alloc_site = {
  a_sid : int;
  a_line : int;
  a_kind : alloc_kind;
  a_body : string;  (** enclosing body; [""] = main *)
  a_in_loop : bool;
}

(** Pointer nodes of the constraint graph. *)
type node =
  | NVar of string * string  (* (body, local); body "" = main *)
  | NGlob of string
  | NFld of int * string     (* field f of objects allocated at the site *)
  | NElem of int             (* elements of arrays allocated at the site *)
  | NMapv of int             (* values of maps allocated at the site *)
  | NRet of string           (* return value of a function *)

type sel = SField of string | SElem | SMapv

let sel_node (a : int) = function
  | SField f -> NFld (a, f)
  | SElem -> NElem a
  | SMapv -> NMapv a

type t = {
  sites : alloc_site list;  (** in source order *)
  site_tbl : (int, alloc_site) Hashtbl.t;
  pts : (node, ISet.t) Hashtbl.t;
  mult : (string, int) Hashtbl.t;  (** body -> dynamic executions, capped at 2 *)
  heap_out_tbl : (int, ISet.t) Hashtbl.t;
  spawn_args : node list;  (** actual-argument nodes at spawn sites *)
}

let body_name = function None -> "" | Some f -> f

let pts_node (pt : t) (n : node) : ISet.t =
  Option.value ~default:ISet.empty (Hashtbl.find_opt pt.pts n)

let pts_var (pt : t) ~(fn : string option) (x : string) : ISet.t =
  pts_node pt (NVar (body_name fn, x))

let pts_global (pt : t) (g : string) : ISet.t = pts_node pt (NGlob g)

let site (pt : t) (sid : int) : alloc_site option = Hashtbl.find_opt pt.site_tbl sid

let body_mult (pt : t) (body : string) : int =
  Option.value ~default:0 (Hashtbl.find_opt pt.mult body)

(** The site provably produces at most one dynamic object: it sits outside
    any loop, in a body that executes at most once.  Basis of the must-alias
    lock resolution: a singleton points-to set over a unique site names one
    concrete object. *)
let unique_site (pt : t) (sid : int) : bool =
  match site pt sid with
  | Some a -> (not a.a_in_loop) && body_mult pt a.a_body = 1
  | None -> false

(** Everything stored into a field / element / map value of objects
    allocated at [sid] — one step of heap reachability for the escape
    closure. *)
let heap_out (pt : t) (sid : int) : ISet.t =
  Option.value ~default:ISet.empty (Hashtbl.find_opt pt.heap_out_tbl sid)

let solve (p : Ast.program) : t =
  let sites = ref [] in
  let site_tbl = Hashtbl.create 64 in
  let copies = ref [] in  (* (src, dst): pts dst ⊇ pts src *)
  let loads = ref [] in   (* (base, sel, dst) *)
  let stores = ref [] in  (* (base, sel, src) *)
  let seeds = ref [] in   (* (node, sid) *)
  let spawn_args = ref [] in
  let call_edges = ref [] in  (* (caller body, callee, in_loop) *)
  let edge src dst = copies := (src, dst) :: !copies in
  let bodies =
    ("", p.main) :: List.map (fun (f : Ast.fndef) -> (f.fname, f.body)) p.fns
  in
  let walk (bname, block) =
    let var x = NVar (bname, x) in
    let src_of (e : Ast.expr) = match e with Ast.Var y -> Some (var y) | _ -> None in
    let alloc (s : Ast.stmt) x kind ~in_loop =
      let a =
        { a_sid = s.sid; a_line = s.line; a_kind = kind; a_body = bname;
          a_in_loop = in_loop }
      in
      sites := a :: !sites;
      Hashtbl.replace site_tbl s.sid a;
      seeds := (var x, s.sid) :: !seeds
    in
    let bind_args callee args =
      match Ast.find_fn p callee with
      | None -> ()
      | Some fd ->
        List.iteri
          (fun i arg ->
            match (List.nth_opt fd.params i, src_of arg) with
            | Some prm, Some s -> edge s (NVar (callee, prm))
            | _ -> ())
          args
    in
    let load b s d = loads := (b, s, d) :: !loads in
    let store b sl v = match src_of v with Some s -> stores := (b, sl, s) :: !stores | None -> () in
    let rec go ~in_loop (s : Ast.stmt) =
      (match s.node with
      | New (x, c) -> alloc s x (AObj c) ~in_loop
      | NewArray (x, _) -> alloc s x AArr ~in_loop
      | NewMap x -> alloc s x AMap ~in_loop
      | Assign (x, Var y) -> edge (var y) (var x)
      | Assign _ -> ()
      | Load (x, Var o, f) -> load (var o) (SField f) (var x)
      | Store (Var o, f, v) -> store (var o) (SField f) v
      | LoadIdx (x, Var a, _) -> load (var a) SElem (var x)
      | StoreIdx (Var a, _, v) -> store (var a) SElem v
      | MapGet (x, Var m, _) -> load (var m) SMapv (var x)
      | MapPut (Var m, _, v) -> store (var m) SMapv v
      | GlobalLoad (x, g) -> edge (NGlob g) (var x)
      | GlobalStore (g, v) -> (
        match src_of v with Some sv -> edge sv (NGlob g) | None -> ())
      | Call (ret, f, args) ->
        call_edges := (bname, f, in_loop) :: !call_edges;
        bind_args f args;
        (match ret with Some x -> edge (NRet f) (var x) | None -> ())
      | Spawn (_, f, args) ->
        call_edges := (bname, f, in_loop) :: !call_edges;
        bind_args f args;
        List.iter
          (fun arg -> match src_of arg with Some n -> spawn_args := n :: !spawn_args | None -> ())
          args
      | Return (Some v) ->
        if bname <> "" then (
          match src_of v with Some sv -> edge sv (NRet bname) | None -> ())
      | _ -> ());
      match s.node with
      | If (_, b1, b2) ->
        List.iter (go ~in_loop) b1;
        List.iter (go ~in_loop) b2
      | While (_, b) -> List.iter (go ~in_loop:true) b
      | Sync (_, b) -> List.iter (go ~in_loop) b
      | _ -> ()
    in
    List.iter (go ~in_loop:false) block
  in
  List.iter walk bodies;
  (* inclusion fixpoint *)
  let pts : (node, ISet.t) Hashtbl.t = Hashtbl.create 128 in
  let get n = Option.value ~default:ISet.empty (Hashtbl.find_opt pts n) in
  let changed = ref true in
  let add_set n s =
    let cur = get n in
    if not (ISet.subset s cur) then begin
      Hashtbl.replace pts n (ISet.union cur s);
      changed := true
    end
  in
  List.iter (fun (n, sid) -> add_set n (ISet.singleton sid)) !seeds;
  while !changed do
    changed := false;
    List.iter (fun (s, d) -> add_set d (get s)) !copies;
    List.iter
      (fun (b, sl, d) -> ISet.iter (fun a -> add_set d (get (sel_node a sl))) (get b))
      !loads;
    List.iter
      (fun (b, sl, s) -> ISet.iter (fun a -> add_set (sel_node a sl) (get s)) (get b))
      !stores
  done;
  (* dynamic execution multiplicity per body, capped at 2: main runs once;
     a callee accumulates over call and spawn sites, doubled inside loops *)
  let mult = Hashtbl.create 16 in
  Hashtbl.replace mult "" 1;
  List.iter (fun (f : Ast.fndef) -> Hashtbl.replace mult f.fname 0) p.fns;
  let m_changed = ref true in
  while !m_changed do
    m_changed := false;
    List.iter
      (fun (f : Ast.fndef) ->
        let total =
          List.fold_left
            (fun acc (caller, callee, in_loop) ->
              if callee = f.fname then
                acc
                + Option.value ~default:0 (Hashtbl.find_opt mult caller)
                  * (if in_loop then 2 else 1)
              else acc)
            0 !call_edges
        in
        let total = min 2 total in
        if total > Option.value ~default:0 (Hashtbl.find_opt mult f.fname) then begin
          Hashtbl.replace mult f.fname total;
          m_changed := true
        end)
      p.fns
  done;
  let heap_out_tbl = Hashtbl.create 32 in
  Hashtbl.iter
    (fun n set ->
      match n with
      | NFld (a, _) | NElem a | NMapv a ->
        let prev = Option.value ~default:ISet.empty (Hashtbl.find_opt heap_out_tbl a) in
        Hashtbl.replace heap_out_tbl a (ISet.union prev set)
      | _ -> ())
    pts;
  {
    sites = List.rev !sites;
    site_tbl;
    pts;
    mult;
    heap_out_tbl;
    spawn_args = !spawn_args;
  }

(** Union of the points-to sets of every spawn-site actual argument. *)
let spawn_arg_pts (pt : t) : ISet.t =
  List.fold_left (fun acc n -> ISet.union acc (pts_node pt n)) ISet.empty pt.spawn_args
