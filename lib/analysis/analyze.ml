(** Whole-program analysis results consumed by the instrumentation pass, by
    optimization O2 (Lemma 4.2) and by the Chimera baseline.

    - {b shared targets}: data reachable from at least two dynamic thread
      contexts (the role Soot/Chord play in the paper).  At {!Sharp}
      precision a target is a per-allocation-site partition, thread-escape
      replaces the syntactic freshness heuristic, and init-phase accesses
      (main before the first spawn, happens-before-ordered with every
      thread) are excluded from both the context count and the plan.
    - {b guarded targets}: shared data whose every access site runs under a
      consistent lock, so access-level recording can be subsumed by the
      lock's ghost dependences.  Sharp locks are unique allocation sites
      (must-alias through arbitrary local aliases); coarse locks are global
      names.
    - {b race pairs}: pairs of sites on the same shared target, at least one
      a write, with no common lock — the input to Chimera's patching and
      the static side of the {!Hb_detector} precision metric.

    {!Coarse} keeps the pre-points-to pipeline alive as the old-vs-new
    comparison baseline (the [analysis] bench and the CLI elision summary);
    {!Sharp} is the default used by the transformer. *)

open Lang

module ISet = Pointsto.ISet

module TM = Map.Make (struct
  type t = Sites.target
  let compare = Sites.target_compare
end)

type precision = Coarse | Sharp

type target_class = {
  target : Sites.target;
  shared : bool;
  guarded_by : string option;  (** display name of the consistent lock *)
  guard : Sites.lock option;   (** its identity, used for consistency *)
  covered : bool;
      (** every conflicting pair of active sites is lock-covered, ordered,
          or read/read ({!Lockset}): O2 applies even without [guard] *)
  active : ISet.t;
      (** sids with a may-happen-in-parallel conflicting counterpart on
          this partition (refined mode; empty otherwise) *)
  sites : Sites.info list;
}

type race_pair = {
  t1 : Sites.info;
  t2 : Sites.info;
  on : Sites.target;
}

type t = {
  program : Ast.program;
  callgraph : Callgraph.t;
  precision : precision;
  pointsto : Pointsto.t option;  (** [Some] at Sharp precision *)
  escaping : ISet.t;             (** thread-escaping allocation sites (Sharp) *)
  mhp : Mhp.t;                   (** fork/join may-happen-in-parallel facts *)
  refined : bool;                (** MHP + pairwise-lockset refinement applied *)
  sites : Sites.info list;
  targets : target_class TM.t;
  races : race_pair list;
}

let intersect_locks (sites : Sites.info list) : Sites.lock option =
  (* init-phase accesses are happens-before-ordered with every thread and do
     not break lock consistency (safe publication) *)
  let sites = List.filter (fun (s : Sites.info) -> not s.init_phase) sites in
  match sites with
  | [] -> None
  | first :: rest ->
    if List.exists (fun (s : Sites.info) -> s.unresolved_lock) sites then None
    else
      let common =
        List.fold_left
          (fun acc (s : Sites.info) -> List.filter (fun l -> List.mem l s.locks) acc)
          first.locks rest
      in
      (match common with l :: _ -> Some l | [] -> None)

(* Render a lock identity for reports: a site lock prints as the global that
   uniquely holds it when there is one (the common case), else by its
   allocation site. *)
let lock_display (pt : Pointsto.t option) (p : Ast.program) (l : Sites.lock) : string =
  match l with
  | Sites.LName g -> g
  | Sites.LSite a -> (
    match pt with
    | Some pt -> (
      match List.filter (fun g -> ISet.mem a (Pointsto.pts_global pt g)) p.globals with
      | [ g ] -> g
      | _ -> Printf.sprintf "lock@s%d" a)
    | None -> Printf.sprintf "lock@s%d" a)

let analyze ?(precision = Sharp) ?(refine = true) (p : Ast.program) : t =
  let cg = Callgraph.build p in
  let mhp = Mhp.build cg p in
  (* the MHP/pairwise-lockset refinement only applies on top of the sharp
     pipeline; Coarse stays the legacy old-vs-new comparison baseline *)
  let refined = refine && precision = Sharp in
  let pointsto, escaping, sites =
    match precision with
    | Coarse -> (None, ISet.empty, Sites.collect_coarse p)
    | Sharp ->
      let pt = Pointsto.solve p in
      let esc = Escape.escaping pt p in
      (Some pt, esc, Sites.collect_sharp pt ~escaping:(Escape.is_escaping esc) p)
  in
  (* AUnknown merging: a base with an empty points-to set may alias any
     allocation, so its name bucket absorbs every same-name partition *)
  let unknown_keys = Hashtbl.create 8 in
  List.iter
    (fun (s : Sites.info) ->
      match s.target with
      | Sites.(TField (AUnknown, _) | TArray AUnknown | TMap AUnknown) ->
        Hashtbl.replace unknown_keys (Sites.target_base s.target) ()
      | _ -> ())
    sites;
  let coarsen (t : Sites.target) : Sites.target =
    if not (Hashtbl.mem unknown_keys (Sites.target_base t)) then t
    else
      match t with
      | Sites.TField (_, f) -> Sites.TField (Sites.AUnknown, f)
      | Sites.TArray _ -> Sites.TArray Sites.AUnknown
      | Sites.TMap _ -> Sites.TMap Sites.AUnknown
      | Sites.TGlobal _ -> t
  in
  let sites =
    if Hashtbl.length unknown_keys = 0 then sites
    else List.map (fun (s : Sites.info) -> { s with Sites.target = coarsen s.Sites.target }) sites
  in
  (* group sites by target.  Coarse reproduces the legacy pipeline, which
     dropped syntactically-fresh sites before grouping; Sharp groups all
     sites and lets escape decide sharedness. *)
  let groups =
    List.fold_left
      (fun m (s : Sites.info) ->
        if precision = Coarse && s.base_local then m
        else
          let prev = Option.value ~default:[] (TM.find_opt s.target m) in
          TM.add s.target (s :: prev) m)
      TM.empty sites
  in
  let targets =
    TM.mapi
      (fun target group ->
        let group = List.rev group in
        (* dynamic thread contexts that can reach an accessing site.  At
           Sharp precision init-phase sites do not count: they run before
           any thread exists, so a target whose remaining sites sit in one
           dynamic context has no unordered access pair. *)
        let counted =
          match precision with
          | Sharp -> List.filter (fun (s : Sites.info) -> not s.init_phase) group
          | Coarse -> group
        in
        let entries =
          List.sort_uniq compare
            (List.concat_map (fun (s : Sites.info) -> Callgraph.entries_reaching cg s.fn) counted)
        in
        let contexts =
          List.fold_left (fun acc e -> acc + Callgraph.multiplicity cg e) 0 entries
        in
        let confined =
          (* a partition over a non-escaping allocation site is
             thread-confined even when several contexts execute its code *)
          match target with
          | Sites.(TField (ASite a, _) | TArray (ASite a) | TMap (ASite a)) ->
            precision = Sharp && not (ISet.mem a escaping)
          | _ -> false
        in
        (* refined: a (site, partition) membership needs instrumenting only
           when its execution is a source of replay nondeterminism.

           - A {e write} is active iff some conflicting access of the same
             partition may run concurrently with it (including a
             multi-instance site against its own copies).  An inactive
             write is HB-ordered against every conflicting access, so the
             spawn/join/lock ghost dependences — always recorded — already
             pin its position; it executes at exactly that position in
             replay.
           - A {e read} is active under the same condition — or whenever
             {e any} write of the partition is active.  The second clause
             is about the replayer, not the read itself: the replayer
             suppresses recorded writes that took part in no flow
             dependence (a blind write's interleaving is unknown, so
             executing it could corrupt a recorded read).  If a quiescent
             read were elided while a write of its partition stays
             instrumented, the final write the read observes may be blind
             — recorded, suppressed at replay, and the elided read runs
             ungated against memory that never received it.  Keeping the
             read instrumented turns that final write into a flow
             dependence, which is precisely the Equation-1 observation
             that pins it.  Conversely, when no write of the partition is
             active, every write is elided with it, elided writes are
             never suppressed, and the write set is HB-totally-ordered —
             so the quiescent read's value is deterministic.

           Init-phase and must-join-quiescent sites fall out for free:
           their intervals overlap no thread window. *)
        let active =
          if not refined then ISet.empty
          else begin
            let conflicts (s : Sites.info) (s' : Sites.info) =
              (s.kind = Sites.KWrite || s'.kind = Sites.KWrite)
              && Mhp.may_parallel mhp s.sid s'.sid
            in
            let active_writes =
              List.exists
                (fun (s : Sites.info) ->
                  s.kind = Sites.KWrite && List.exists (conflicts s) group)
                group
            in
            List.fold_left
              (fun acc (s : Sites.info) ->
                if
                  List.exists (conflicts s) group
                  || (s.kind = Sites.KRead && active_writes)
                then ISet.add s.sid acc
                else acc)
              ISet.empty group
          end
        in
        let shared =
          contexts >= 2 && not confined && ((not refined) || not (ISet.is_empty active))
        in
        let guard = if shared then intersect_locks group else None in
        let guarded_by = Option.map (lock_display pointsto p) guard in
        let covered =
          refined && shared && guard = None
          && Lockset.covered mhp
               (List.filter (fun (s : Sites.info) -> ISet.mem s.sid active) group)
        in
        { target; shared; guarded_by; guard; covered; active; sites = group })
      groups
  in
  (* race pairs: same shared unguarded target, >= 1 write, no common lock —
     and, refined, only pairs that may actually happen in parallel (a pair
     ordered by the fork/join structure is not a race candidate, and a
     pairwise-covered partition has none by construction) *)
  let races =
    TM.fold
      (fun target (tc : target_class) acc ->
        if (not tc.shared) || tc.guard <> None || tc.covered then acc
        else
          let rec pairs = function
            | [] -> []
            | (x : Sites.info) :: rest when x.init_phase -> pairs rest
            | (x : Sites.info) :: rest ->
              List.filter_map
                (fun (y : Sites.info) ->
                  if y.init_phase then None
                  else
                    let writes = x.kind = Sites.KWrite || y.kind = Sites.KWrite in
                    let no_common_lock =
                      x.unresolved_lock || y.unresolved_lock
                      || not (List.exists (fun l -> List.mem l y.locks) x.locks)
                    in
                    let parallel =
                      (not refined) || Mhp.may_parallel mhp x.sid y.sid
                    in
                    if writes && no_common_lock && parallel then
                      Some { t1 = x; t2 = y; on = target }
                    else None)
                rest
              @ pairs rest
          in
          pairs tc.sites @ acc)
      targets []
  in
  (* a site pair racing on several partitions of the same base is one race *)
  let races =
    let seen = Hashtbl.create 32 in
    List.filter
      (fun r ->
        let key = (min r.t1.sid r.t2.sid, max r.t1.sid r.t2.sid) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      races
  in
  {
    program = p;
    callgraph = cg;
    precision;
    pointsto;
    escaping;
    mhp;
    refined;
    sites;
    targets;
    races;
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let target_of_site (a : t) (sid : int) : Sites.info option =
  List.find_opt (fun (s : Sites.info) -> s.sid = sid) a.sites

(* is this (site, partition) membership one the plan must instrument? *)
let info_shared (a : t) (s : Sites.info) : bool =
  match TM.find_opt s.target a.targets with
  | None -> false
  | Some tc -> (
    match a.precision with
    | Coarse -> (not s.base_local) && tc.shared
    | Sharp ->
      if a.refined then tc.shared && ISet.mem s.sid tc.active
      else (not s.init_phase) && tc.shared)

let shared_sids (a : t) : (int, bool) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter
    (fun (s : Sites.info) ->
      if not (Hashtbl.mem h s.sid) then Hashtbl.replace h s.sid false)
    a.sites;
  List.iter
    (fun (s : Sites.info) -> if info_shared a s then Hashtbl.replace h s.sid true)
    a.sites;
  h

let guarded_sids (a : t) : (int, bool) Hashtbl.t =
  (* a site is guarded iff it is instrumented and every shared partition it
     may touch carries a consistent guard (each location instance belongs to
     exactly one partition, so per-partition guards suffice for Lemma 4.2) *)
  let by_sid : (int, Sites.info list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Sites.info) ->
      Hashtbl.replace by_sid s.sid
        (s :: Option.value ~default:[] (Hashtbl.find_opt by_sid s.sid)))
    a.sites;
  let h = Hashtbl.create 64 in
  Hashtbl.iter
    (fun sid infos ->
      let shared_infos = List.filter (info_shared a) infos in
      let guarded =
        shared_infos <> []
        && List.for_all
             (fun (s : Sites.info) ->
               match TM.find_opt s.target a.targets with
               | Some tc -> tc.guard <> None || tc.covered
               | None -> false)
             shared_infos
      in
      Hashtbl.replace h sid guarded)
    by_sid;
  h

(** Distinct access sids whose every execution is ordered with every thread
    (init-phase, must-join quiescence, unreachable code). *)
let sequential_sids (a : t) : int =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (s : Sites.info) ->
      if (not (Hashtbl.mem seen s.sid)) && Mhp.sequential a.mhp s.sid then
        Hashtbl.replace seen s.sid ())
    a.sites;
  Hashtbl.length seen

(** Summary line for CLI / debugging. *)
let summary (a : t) : string =
  let total = TM.cardinal a.targets in
  let shared = TM.fold (fun _ tc n -> if tc.shared then n + 1 else n) a.targets 0 in
  let guarded =
    TM.fold
      (fun _ tc n -> if tc.guarded_by <> None || tc.covered then n + 1 else n)
      a.targets 0
  in
  Printf.sprintf "%d targets (%d shared, %d lock-guarded), %d sites, %d race pairs" total
    shared guarded (List.length a.sites) (List.length a.races)
