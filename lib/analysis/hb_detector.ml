(** Vector-clock happens-before race detector, run as a dynamic tool over
    the interpreter's [observe] hook (FastTrack-flavored: last-write epoch
    plus a per-thread read table per location).

    Role in this repository: the static analysis decides which access sites
    to instrument; this detector is the referee.  Run under
    [Plan.all_shared] it sees {e every} data access plus the ghost accesses
    that model synchronization (Section 4.3), so the happens-before relation
    it tracks is exactly the one Theorem 3.6 quantifies over.  The oracle
    suite then checks that every dynamically observed race lands on a
    statically instrumented site — a race at an elided site would mean the
    sharpened plan can drop a cross-thread flow dependence.  The unconfirmed
    direction (static race pairs never observed dynamically) is the
    precision metric reported by the [analysis] bench.

    Clock discipline: a thread's own clock starts at 1 — epoch 0 would
    compare [<=] against every vector clock and mask all races.  Ghost
    reads join the thread's clock from the ghost location's clock; ghost
    writes join the ghost location from the thread and then tick the
    thread's own clock (the release rule).  Because spawn/join/wait/notify
    are all modeled as ghost accesses by the interpreter, no extra
    per-primitive cases are needed here. *)

open Runtime

module ISet = Pointsto.ISet

type vc = (int, int) Hashtbl.t

let vc_get (vc : vc) (t : int) : int =
  Option.value ~default:0 (Hashtbl.find_opt vc t)

let vc_join (dst : vc) (src : vc) : unit =
  Hashtbl.iter (fun t c -> if c > vc_get dst t then Hashtbl.replace dst t c) src

type locstate = {
  mutable lw : (int * int * int) option;  (* last writer: tid, clock, site *)
  reads : (int, int * int) Hashtbl.t;     (* reader tid -> clock, site *)
}

type race = {
  loc : Loc.t;
  tid1 : int;
  site1 : int;
  k1 : Event.akind;  (** earlier access *)
  tid2 : int;
  site2 : int;
  k2 : Event.akind;  (** later access, the one that detected the race *)
}

type t = {
  threads : (int, vc) Hashtbl.t;
  sync : vc Loc.Tbl.t;       (* ghost locations: locks, conds, thread ghosts *)
  data : locstate Loc.Tbl.t;
  seen : (int * int, unit) Hashtbl.t;  (* site-pair dedup *)
  mutable races_rev : race list;
}

let create () : t =
  {
    threads = Hashtbl.create 8;
    sync = Loc.Tbl.create 32;
    data = Loc.Tbl.create 256;
    seen = Hashtbl.create 32;
    races_rev = [];
  }

let thread_vc (d : t) (tid : int) : vc =
  match Hashtbl.find_opt d.threads tid with
  | Some vc -> vc
  | None ->
    let vc = Hashtbl.create 8 in
    Hashtbl.replace vc tid 1;
    Hashtbl.replace d.threads tid vc;
    vc

let report d ~loc ~tid1 ~site1 ~k1 ~tid2 ~site2 ~k2 =
  let key = (min site1 site2, max site1 site2) in
  if not (Hashtbl.mem d.seen key) then begin
    Hashtbl.add d.seen key ();
    d.races_rev <- { loc; tid1; site1; k1; tid2; site2; k2 } :: d.races_rev
  end

let on_access (d : t) (a : Event.access) : unit =
  let cu = thread_vc d a.tid in
  if a.ghost <> Event.NotGhost then begin
    let gvc =
      match Loc.Tbl.find_opt d.sync a.loc with
      | Some vc -> vc
      | None ->
        let vc = Hashtbl.create 8 in
        Loc.Tbl.replace d.sync a.loc vc;
        vc
    in
    match a.kind with
    | Event.Read -> vc_join cu gvc
    | Event.Write ->
      vc_join gvc cu;
      Hashtbl.replace cu a.tid (vc_get cu a.tid + 1)
  end
  else begin
    let st =
      match Loc.Tbl.find_opt d.data a.loc with
      | Some st -> st
      | None ->
        let st = { lw = None; reads = Hashtbl.create 4 } in
        Loc.Tbl.replace d.data a.loc st;
        st
    in
    (* unordered with the last write? *)
    (match st.lw with
    | Some (t, c, s) when t <> a.tid && c > vc_get cu t ->
      report d ~loc:a.loc ~tid1:t ~site1:s ~k1:Event.Write ~tid2:a.tid
        ~site2:a.site ~k2:a.kind
    | _ -> ());
    let my = vc_get cu a.tid in
    match a.kind with
    | Event.Read -> Hashtbl.replace st.reads a.tid (my, a.site)
    | Event.Write ->
      Hashtbl.iter
        (fun t (c, s) ->
          if t <> a.tid && c > vc_get cu t then
            report d ~loc:a.loc ~tid1:t ~site1:s ~k1:Event.Read ~tid2:a.tid
              ~site2:a.site ~k2:Event.Write)
        st.reads;
      st.lw <- Some (a.tid, my, a.site)
  end

let observe (d : t) (ev : Event.t) : unit =
  match ev with Event.Access (a, _) -> on_access d a | _ -> ()

let hooks (d : t) : Interp.hooks =
  { Interp.default_hooks with observe = Some (fun ev -> observe d ev) }

let races (d : t) : race list = List.rev d.races_rev

(** Every static site involved in at least one observed race. *)
let racy_sites (d : t) : ISet.t =
  List.fold_left
    (fun acc r -> ISet.add r.site1 (ISet.add r.site2 acc))
    ISet.empty (races d)

(** Run [p] un-instrumented with every site observed and races tracked. *)
let detect ?(max_steps = 5_000_000) ?seed ~(sched : Sched.t) (p : Lang.Ast.program) :
    Interp.outcome * t =
  let d = create () in
  let outcome =
    Interp.run ~hooks:(hooks d) ~plan:Plan.all_shared ~max_steps ?seed ~sched p
  in
  (outcome, d)

let race_to_string (r : race) : string =
  Printf.sprintf "%s: s%d(%s,t%d) ~ s%d(%s,t%d)" (Loc.to_string r.loc) r.site1
    (Event.akind_str r.k1) r.tid1 r.site2 (Event.akind_str r.k2) r.tid2
