(** Chimera (Lee, Chen, Flinn, Narayanasamy — PLDI 2012) reimplementation.

    Hybrid approach: a static race detector finds potentially racing
    statement pairs; the program is {e patched} by wrapping each racy
    method in a pairwise mutual-exclusion lock, making it race-free; the
    production run then records only the order of lock operations (cheap),
    which suffices for deterministic replay of a race-free program.

    The Light paper's H2 finding (Section 5.3) is that this heuristic is
    lossy: bugs that require the racing methods to {e interleave} are
    serialized away by the patch — the monitored program can no longer
    exhibit them, so they cannot be recorded or replayed.  We reproduce the
    mechanism (analysis -> patch -> lock-order record -> lock-order replay)
    so this failure mode emerges rather than being hard-coded. *)

open Runtime
open Lang

(* ------------------------------------------------------------------ *)
(* Patching                                                            *)
(* ------------------------------------------------------------------ *)

type patch_info = {
  patched : Ast.program;
  groups : (string * string list) list;  (** patch lock global -> methods *)
  main_races : int;  (** race sites in the main body (not patchable) *)
}

(* union-find over method names *)
let patch (p : Ast.program) : patch_info =
  let a = Analysis.Analyze.analyze p in
  let parent : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some px when px <> x ->
      let r = find px in
      Hashtbl.replace parent x r;
      r
    | _ -> x
  in
  let union x y =
    (match Hashtbl.find_opt parent x with None -> Hashtbl.add parent x x | Some _ -> ());
    (match Hashtbl.find_opt parent y with None -> Hashtbl.add parent y y | Some _ -> ());
    let rx = find x and ry = find y in
    if rx <> ry then Hashtbl.replace parent rx ry
  in
  let main_races = ref 0 in
  List.iter
    (fun (r : Analysis.Analyze.race_pair) ->
      match r.t1.fn, r.t2.fn with
      | Some f1, Some f2 -> union f1 f2
      | _ -> incr main_races)
    a.races;
  (* group methods by root *)
  let groups : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun f _ ->
      let r = find f in
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups r) in
      if not (List.mem f prev) then Hashtbl.replace groups r (f :: prev))
    parent;
  let group_list =
    Hashtbl.fold (fun root fns acc -> (root, List.sort compare fns) :: acc) groups []
    |> List.sort compare
  in
  (* assign a patch lock global per group and wrap the method bodies *)
  let sid = ref (Ast.max_sid p) in
  let fresh () = incr sid; !sid in
  let mk node = { Ast.sid = fresh (); line = 0; node } in
  let lock_of_fn : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let named_groups =
    List.mapi
      (fun i (_, fns) ->
        let g = Printf.sprintf "$patch%d" i in
        List.iter (fun f -> Hashtbl.replace lock_of_fn f g) fns;
        (g, fns))
      group_list
  in
  let wrap (fd : Ast.fndef) : Ast.fndef =
    match Hashtbl.find_opt lock_of_fn fd.fname with
    | None -> fd
    | Some g ->
      let tmp = Printf.sprintf "$pl_%s" fd.fname in
      let body =
        [ mk (Ast.GlobalLoad (tmp, g)); mk (Ast.Sync (Var tmp, fd.body)) ]
      in
      { fd with body }
  in
  let init_stmts =
    List.concat_map
      (fun (g, _) ->
        let tmp = "$init_" ^ g in
        [ mk (Ast.New (tmp, "$PatchLock")); mk (Ast.GlobalStore (g, Var tmp)) ])
      named_groups
  in
  let patched =
    {
      Ast.classes = ("$PatchLock", []) :: p.classes;
      globals = p.globals @ List.map fst named_groups;
      fns = List.map wrap p.fns;
      main = init_stmts @ p.main;
    }
  in
  { patched; groups = named_groups; main_races = !main_races }

(* ------------------------------------------------------------------ *)
(* Recording: lock operation order only                                 *)
(* ------------------------------------------------------------------ *)

type log = {
  lock_orders : (Loc.t * int array) list;  (** per ghost location: thread order *)
  syscalls : (int * int * string * Value.t) list;
  space_longs : int;
}

type recorder = {
  meter : Metrics.Cost.meter;
  stripes : Metrics.Cost.stripes;
  orders : int list ref Loc.Tbl.t;
  mutable ops : int;
}

let create_recorder ?(weights = Metrics.Cost.default_weights) () : recorder =
  {
    meter = Metrics.Cost.meter ~weights ();
    stripes = Metrics.Cost.stripes ();
    orders = Loc.Tbl.create 64;
    ops = 0;
  }

let recorder_hooks (r : recorder) : Interp.hooks =
  {
    Interp.default_hooks with
    observe =
      Some
        (fun ev ->
        match ev with
        | Event.Access (a, _) when a.ghost <> Event.NotGhost ->
          r.ops <- r.ops + 1;
          let level = Metrics.Cost.touch r.stripes a.loc ~tid:a.tid in
          Metrics.Cost.charge r.meter (SyncVectorAppend { level; resize = false });
          (match Loc.Tbl.find_opt r.orders a.loc with
          | Some l -> l := a.tid :: !l
          | None -> Loc.Tbl.add r.orders a.loc (ref [ a.tid ]))
        | _ -> ());
  }

let finalize_recorder (r : recorder) ~(outcome : Interp.outcome) : log =
  {
    lock_orders =
      Loc.Tbl.fold (fun loc l acc -> (loc, Array.of_list (List.rev !l)) :: acc) r.orders [];
    syscalls = outcome.syscalls;
    space_longs = r.ops;
  }

(* ------------------------------------------------------------------ *)
(* Replay: enforce the recorded per-lock orders                        *)
(* ------------------------------------------------------------------ *)

let replay_hooks (l : log) : Interp.hooks =
  let queues : (int array * int ref) Loc.Tbl.t = Loc.Tbl.create 64 in
  List.iter (fun (loc, v) -> Loc.Tbl.replace queues loc (v, ref 0)) l.lock_orders;
  let sys = Hashtbl.create 64 in
  List.iter (fun (t, i, _, v) -> Hashtbl.replace sys (t, i) v) l.syscalls;
  let gate (pre : Event.pre) =
    if pre.ghost = Event.NotGhost then true
    else
      match Loc.Tbl.find_opt queues pre.loc with
      | None -> true
      | Some (v, i) -> !i < Array.length v && v.(!i) = pre.tid
  in
  let observe = function
    | Event.Access (a, _) when a.ghost <> Event.NotGhost -> (
      match Loc.Tbl.find_opt queues a.loc with
      | Some (_, i) -> incr i
      | None -> ())
    | _ -> ()
  in
  {
    Interp.default_hooks with
    gate = Some gate;
    observe = Some observe;
    syscall_override = Some (fun ~tid ~idx ~name:_ -> Hashtbl.find_opt sys (tid, idx));
  }
