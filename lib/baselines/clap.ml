(** CLAP (Huang, Zhang, Dolby — PLDI 2013) reimplementation.

    Computation-based replay: the original run records only thread-local
    control flow (branch outcomes) and input nondeterminism (syscall
    values) — no shared-access instrumentation at all, hence the very low
    recording overhead.  The schedule is reconstructed {e offline} by
    execution synthesis: find an interleaving of the shared accesses whose
    induced read values drive every thread down its recorded path and
    reproduce the failure.

    The reconstruction must reason about the {e values} that flow through
    the program.  Real CLAP encodes them into an SMT solver, which — as the
    Light paper stresses (Section 5.3) — cannot model the complex or opaque
    computations of real-world Java code: hash functions, HashMap internals,
    string operations.  We model that inherent limitation faithfully: if the
    program's thread-reachable code uses maps or opaque operations, the
    value engine declares the bug {b out of scope} before searching.  For
    supported (linear, primitive-valued) programs the synthesis is a
    depth-first search over shared-access interleavings with on-the-fly
    path-conformance pruning — a concrete implementation of the same
    fixpoint CLAP's solver computes symbolically. *)

open Runtime
open Lang

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

type log = {
  threads : int list;                   (** every thread of the original run *)
  branches : (int * bool array) list;   (** per thread *)
  syscalls : (int * int * string * Value.t) list;
  crashes : Interp.crash list;          (** the failure to reproduce *)
  space_longs : int;                    (** branch bits packed into longs *)
}

type recorder = {
  meter : Metrics.Cost.meter;
  branch_logs : (int, bool list ref) Hashtbl.t;
  mutable nbranches : int;
}

let create ?(weights = Metrics.Cost.default_weights) () : recorder =
  { meter = Metrics.Cost.meter ~weights (); branch_logs = Hashtbl.create 16; nbranches = 0 }

let hooks (r : recorder) : Interp.hooks =
  {
    Interp.default_hooks with
    on_branch =
      Some
        (fun ~tid ~taken ->
        r.nbranches <- r.nbranches + 1;
        Metrics.Cost.charge r.meter LocalAppend;
        match Hashtbl.find_opt r.branch_logs tid with
        | Some l -> l := taken :: !l
        | None -> Hashtbl.add r.branch_logs tid (ref [ taken ]));
  }

let finalize (r : recorder) ~(outcome : Interp.outcome) : log =
  {
    threads = List.map fst outcome.counters;
    branches =
      Hashtbl.fold
        (fun t l acc -> (t, Array.of_list (List.rev !l)) :: acc)
        r.branch_logs [];
    syscalls = outcome.syscalls;
    crashes = outcome.crashes;
    space_longs = ((r.nbranches + 63) / 64) + (2 * List.length outcome.syscalls);
  }

(* ------------------------------------------------------------------ *)
(* Solver-support check                                                *)
(* ------------------------------------------------------------------ *)

(** Constructs whose value semantics fall outside the linear-arithmetic
    fragment real solvers handle (the paper's HashMap examples). *)
let unsupported_constructs (p : Ast.program) : string list =
  let found = ref [] in
  Ast.iter_stmts
    (fun s ->
      match s.node with
      | MapGet _ | MapPut _ | MapHas _ | NewMap _ ->
        found := "hash-map operations" :: !found
      | Opaque (_, name, _) when not (String.length name >= 2 && String.sub name 0 2 = "__")
        ->
        found := Printf.sprintf "opaque operation #%s" name :: !found
      | _ -> ())
    p;
  List.sort_uniq compare !found

(* ------------------------------------------------------------------ *)
(* Execution synthesis                                                 *)
(* ------------------------------------------------------------------ *)

exception Deviation

type synth_result =
  | Reproduced of (int * int) list
      (** the preemption schedule found: (step, thread) switch points *)
  | OutOfScope of string list
  | BudgetExhausted of int
  | NoFailureRecorded

(* A scheduler that stays on the current thread and performs forced context
   switches at the given (step, tid) points — candidate schedules are
   enumerated by iterative context bounding, the search strategy execution
   synthesis engines use for data-race failures. *)
let preemptive (switches : (int * int) list) : Sched.t =
  let cur = ref 1 in
  let pending = ref switches in
  {
    Sched.name = "preemptive";
    pick =
      (fun ~step ~runnable ->
        (match !pending with
        | (s, t) :: rest when step >= s ->
          pending := rest;
          if List.mem t runnable then cur := t
        | _ -> ());
        if List.mem !cur runnable then !cur else List.hd runnable);
    save = (fun () -> Sched.marshal_hex (!cur, !pending));
    load =
      (fun s ->
        let c, p = (Sched.unmarshal_hex s : int * (int * int) list) in
        cur := c;
        pending := p);
  }

(* Run a candidate schedule; [None] when some thread's branch stream
   deviates from the recorded path (prune). *)
let run_candidate (p : Ast.program) (l : log) (switches : (int * int) list)
    ~(max_steps : int) : Interp.outcome option =
  let bpos : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let branch_log = Hashtbl.create 16 in
  List.iter (fun (t, arr) -> Hashtbl.replace branch_log t arr) l.branches;
  let sys = Hashtbl.create 64 in
  List.iter (fun (t, i, _, v) -> Hashtbl.replace sys (t, i) v) l.syscalls;
  let on_branch ~tid ~taken =
    let i =
      match Hashtbl.find_opt bpos tid with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add bpos tid r;
        r
    in
    (match Hashtbl.find_opt branch_log tid with
    | Some arr when !i < Array.length arr -> if arr.(!i) <> taken then raise Deviation
    | _ -> raise Deviation);
    incr i
  in
  let hooks =
    {
      Interp.default_hooks with
      on_branch = Some on_branch;
      syscall_override = Some (fun ~tid ~idx ~name:_ -> Hashtbl.find_opt sys (tid, idx));
    }
  in
  match Interp.run ~hooks ~max_steps ~sched:(preemptive switches) p with
  | outcome -> Some outcome
  | exception Deviation -> None

let crash_key (c : Interp.crash) = (c.tid, c.site, c.msg)

(** Iterative context-bounded synthesis: try schedules with 0, 1, then 2
    forced preemptions, bounded by [budget] candidate executions. *)
let synthesize ?(budget = 30_000) (p : Ast.program) (l : log) : synth_result =
  match unsupported_constructs p with
  | _ :: _ as cs -> OutOfScope cs
  | [] ->
    if l.crashes = [] then NoFailureRecorded
    else begin
      let target = List.sort compare (List.map crash_key l.crashes) in
      let tried = ref 0 in
      let tids = List.sort_uniq compare (1 :: l.threads) in
      (* measure the default run to bound step positions *)
      let horizon =
        match run_candidate p l [] ~max_steps:100_000 with
        | Some o -> min 1_200 (o.steps + 50)
        | None -> 600
      in
      let matches (o : Interp.outcome) =
        o.status = Interp.AllFinished
        && List.sort compare (List.map crash_key o.crashes) = target
      in
      let exception Found of (int * int) list in
      let try_sched switches =
        if !tried < budget then begin
          incr tried;
          match run_candidate p l switches ~max_steps:(4 * horizon) with
          | Some o when matches o -> raise (Found switches)
          | _ -> ()
        end
      in
      try
        try_sched [];
        (* one preemption *)
        for s = 0 to horizon do
          List.iter (fun t -> try_sched [ (s, t) ]) tids
        done;
        (* two preemptions: tight windows first *)
        for delta = 1 to 80 do
          for s1 = 0 to horizon do
            List.iter
              (fun t1 ->
                List.iter
                  (fun t2 -> if t2 <> t1 then try_sched [ (s1, t1); (s1 + delta, t2) ])
                  tids)
              tids
          done
        done;
        BudgetExhausted !tried
      with Found sw -> Reproduced sw
    end
