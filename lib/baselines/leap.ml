(** LEAP (Huang, Liu, Zhang — FSE 2010) reimplementation.

    Records, for every shared location, a globally ordered access vector of
    thread ids, maintained under synchronization (the paper's Figure 2 shows
    the resulting per-location vectors).  Replay forces each location's
    accesses to follow the recorded vector.

    This is the expensive design point Light improves on: every shared
    access pays a synchronized container mutation (plus periodic resizing),
    and the space cost is one long-integer per access. *)

open Runtime

type t = {
  meter : Metrics.Cost.meter;
  stripes : Metrics.Cost.stripes;
  vectors : int list ref Loc.Tbl.t;  (** per location: reversed thread-id vector *)
  sizes : int Loc.Tbl.t;
  mutable accesses : int;
}

let create ?(weights = Metrics.Cost.default_weights) () : t =
  {
    meter = Metrics.Cost.meter ~weights ();
    stripes = Metrics.Cost.stripes ();
    vectors = Loc.Tbl.create 1024;
    sizes = Loc.Tbl.create 1024;
    accesses = 0;
  }

let on_access (r : t) (a : Event.access) : unit =
  let open Metrics.Cost in
  r.accesses <- r.accesses + 1;
  charge r.meter CounterTick;
  let level = touch r.stripes a.loc ~tid:a.tid in
  let n = Option.value ~default:0 (Loc.Tbl.find_opt r.sizes a.loc) in
  (* vectors resize on power-of-two growth *)
  let resize = n > 0 && n land (n - 1) = 0 in
  charge r.meter (SyncVectorAppend { level; resize });
  Loc.Tbl.replace r.sizes a.loc (n + 1);
  (match Loc.Tbl.find_opt r.vectors a.loc with
  | Some l -> l := a.tid :: !l
  | None -> Loc.Tbl.add r.vectors a.loc (ref [ a.tid ]));
  ()

type log = { accesses_by_loc : (Loc.t * int array) list; space_longs : int }

let finalize (r : t) : log =
  let accesses_by_loc =
    Loc.Tbl.fold
      (fun loc l acc -> (loc, Array.of_list (List.rev !l)) :: acc)
      r.vectors []
  in
  { accesses_by_loc; space_longs = r.accesses }

let hooks (r : t) : Interp.hooks =
  {
    Interp.default_hooks with
    observe = Some (fun ev -> match ev with Event.Access (a, _) -> on_access r a | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Replay: per-location turn-taking on the recorded vectors             *)
(* ------------------------------------------------------------------ *)

let replay_hooks (l : log) ~(syscalls : (int * int * string * Value.t) list) : Interp.hooks =
  let queues : (int array * int ref) Loc.Tbl.t = Loc.Tbl.create 256 in
  List.iter (fun (loc, v) -> Loc.Tbl.replace queues loc (v, ref 0)) l.accesses_by_loc;
  let sys = Hashtbl.create 64 in
  List.iter (fun (t, i, _, v) -> Hashtbl.replace sys (t, i) v) syscalls;
  let gate (pre : Event.pre) =
    match Loc.Tbl.find_opt queues pre.loc with
    | None -> true
    | Some (v, i) -> !i < Array.length v && v.(!i) = pre.tid
  in
  let observe = function
    | Event.Access (a, _) -> (
      match Loc.Tbl.find_opt queues a.loc with
      | Some (_, i) -> incr i
      | None -> ())
    | _ -> ()
  in
  {
    Interp.default_hooks with
    gate = Some gate;
    observe = Some observe;
    syscall_override = Some (fun ~tid ~idx ~name:_ -> Hashtbl.find_opt sys (tid, idx));
  }
