(** Stride (Zhou, Xiao, Zhang — ICSE 2012) reimplementation.

    Stride avoids Leap's per-access synchronized container by versioning:
    every write to a shared location atomically increments the location's
    version (CAS); each access records one {e int} — the version it created
    (write) or observed (read) — in a per-thread log.  Offline, the bounded
    linkage between read versions and write versions reconstructs a legal
    order in polynomial time.

    Space: one int per access, counted as half a long-integer (Section 5.2:
    "ints recorded by Stride are each counted as one half of a long
    integer").  Time: a CAS per write and a version read + validation per
    read — cheaper than Leap per operation, but still per-access global
    traffic on hot cache lines, which is why the paper measures both at the
    same order of magnitude. *)

open Runtime

type entry = { e_loc : Loc.t; e_version : int; e_write : bool }
(* e_loc is carried for the replay driver's convenience; the on-disk format
   (like Leap's) is per-location, so space counts only the version int *)

type t = {
  meter : Metrics.Cost.meter;
  stripes : Metrics.Cost.stripes;
  versions : int Loc.Tbl.t;
  logs : (int, entry list ref) Hashtbl.t;  (* per-thread, reversed *)
  mutable accesses : int;
}

let create ?(weights = Metrics.Cost.default_weights) () : t =
  {
    meter = Metrics.Cost.meter ~weights ();
    stripes = Metrics.Cost.stripes ();
    versions = Loc.Tbl.create 1024;
    logs = Hashtbl.create 16;
    accesses = 0;
  }

let log_of (r : t) tid =
  match Hashtbl.find_opt r.logs tid with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add r.logs tid l;
    l

let on_access (r : t) (a : Event.access) : unit =
  let open Metrics.Cost in
  r.accesses <- r.accesses + 1;
  charge r.meter CounterTick;
  let level = touch r.stripes a.loc ~tid:a.tid in
  let cur = Option.value ~default:0 (Loc.Tbl.find_opt r.versions a.loc) in
  let entry =
    match a.kind with
    | Write ->
      charge r.meter (CasIncrement { level });
      charge r.meter LocalAppend;
      Loc.Tbl.replace r.versions a.loc (cur + 1);
      { e_loc = a.loc; e_version = cur + 1; e_write = true }
    | Read ->
      charge r.meter (VersionRead { level });
      charge r.meter LocalAppend;
      { e_loc = a.loc; e_version = cur; e_write = false }
  in
  let l = log_of r a.tid in
  l := entry :: !l

type log = {
  per_thread : (int * entry array) list;
  space_longs : int;  (** accesses / 2, rounded up *)
}

let finalize (r : t) : log =
  {
    per_thread = Hashtbl.fold (fun t l acc -> (t, Array.of_list (List.rev !l)) :: acc) r.logs [];
    space_longs = (r.accesses + 1) / 2;
  }

let hooks (r : t) : Interp.hooks =
  {
    Interp.default_hooks with
    observe = Some (fun ev -> match ev with Event.Access (a, _) -> on_access r a | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Replay: per-location version turn-taking                            *)
(* ------------------------------------------------------------------ *)

(* A write creating version v may run once the location is at version v-1
   and all recorded reads of version v-1 have run; a read of version v may
   run once the location is at version v.  This is the schedule the offline
   bounded-linkage reconstruction produces. *)
let replay_hooks (l : log) ~(syscalls : (int * int * string * Value.t) list) : Interp.hooks =
  (* expected reads per (loc, version) *)
  let expected : (Loc.t * int, int ref) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (_, entries) ->
      Array.iter
        (fun e ->
          if not e.e_write then
            match Hashtbl.find_opt expected (e.e_loc, e.e_version) with
            | Some n -> incr n
            | None -> Hashtbl.add expected (e.e_loc, e.e_version) (ref 1))
        entries)
    l.per_thread;
  let cursor : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let entries_of : (int, entry array) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (t, es) -> Hashtbl.replace entries_of t es) l.per_thread;
  let versions : int Loc.Tbl.t = Loc.Tbl.create 1024 in
  let reads_done : (Loc.t * int, int ref) Hashtbl.t = Hashtbl.create 1024 in
  let next_entry tid =
    let cur =
      match Hashtbl.find_opt cursor tid with
      | Some c -> c
      | None ->
        let c = ref 0 in
        Hashtbl.add cursor tid c;
        c
    in
    match Hashtbl.find_opt entries_of tid with
    | Some es when !cur < Array.length es -> Some es.(!cur)
    | _ -> None
  in
  let sys = Hashtbl.create 64 in
  List.iter (fun (t, i, _, v) -> Hashtbl.replace sys (t, i) v) syscalls;
  let gate (pre : Event.pre) =
    match next_entry pre.tid with
    | None -> true
    | Some e ->
      let cur = Option.value ~default:0 (Loc.Tbl.find_opt versions pre.loc) in
      if e.e_write then
        let need =
          match Hashtbl.find_opt expected (pre.loc, e.e_version - 1) with
          | Some n -> !n
          | None -> 0
        in
        let got =
          match Hashtbl.find_opt reads_done (pre.loc, e.e_version - 1) with
          | Some n -> !n
          | None -> 0
        in
        cur = e.e_version - 1 && got >= need
      else cur = e.e_version
  in
  let observe = function
    | Event.Access (a, _) -> (
      (match Hashtbl.find_opt cursor a.tid with
      | Some c -> incr c
      | None -> Hashtbl.add cursor a.tid (ref 1));
      match a.kind with
      | Event.Write ->
        let cur = Option.value ~default:0 (Loc.Tbl.find_opt versions a.loc) in
        Loc.Tbl.replace versions a.loc (cur + 1)
      | Event.Read -> (
        let cur = Option.value ~default:0 (Loc.Tbl.find_opt versions a.loc) in
        match Hashtbl.find_opt reads_done (a.loc, cur) with
        | Some n -> incr n
        | None -> Hashtbl.add reads_done (a.loc, cur) (ref 1)))
    | _ -> ()
  in
  {
    Interp.default_hooks with
    gate = Some gate;
    observe = Some observe;
    syscall_override = Some (fun ~tid ~idx ~name:_ -> Hashtbl.find_opt sys (tid, idx));
  }
