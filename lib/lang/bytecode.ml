(** Register bytecode for [lang]: the flat instruction array the VM
    dispatches over ({!Runtime.Vm}), produced by {!Compile.lower} from the
    slot-resolved form ({!Resolve}).

    Design at a glance:
    - {b Registers.}  A frame is a single [Value.t array].  Registers
      [0 .. nslots-1] are exactly the resolved frame slots of PR 3 (so
      slot-indexed machinery — argument binding, snapshot slot vectors,
      the v4 checkpoint codec — carries over unchanged); registers
      [nslots ..] are compiler temporaries that are dead at every
      statement boundary and therefore never serialized.
    - {b Operands.}  An operand is one [int]: [>= 0] names a register,
      [< 0] indexes the constant pool as [-1 - k].  Constants are
      deduplicated and pre-boxed by the VM at load, so the dispatch loop
      never allocates for literals.
    - {b Site-id baking.}  Every heap-access instruction carries its
      static site id as an immediate, so the record decision is a single
      array-indexed branch on that immediate ([shared.(sid)]) with no
      statement record in sight.
    - {b Statement grain.}  One scheduler transition is one source
      statement: a run of instructions from one boundary pc
      ([starts.(pc)]) to the next.  Evaluation order inside a statement
      replicates the tree interpreter exactly (including OCaml's
      right-to-left argument order where [Interp.eval] relies on it), so
      crash order, crash messages and the D(t) counter stream are
      preserved instruction for instruction.
    - {b Snapshot-PC invariant.}  Every pc a thread can rest at between
      transitions is a boundary, and every boundary pc has a
      compile-time continuation template ([templates]) equal to
      [Interp.encode_cont]'s output with the lock object ids abstracted;
      the per-frame sync stack fills them back in.  This is what lets
      the VM share the epoch checkpoint format byte for byte. *)

(** Constant-pool entry.  The VM boxes these into [Value.t] at load. *)
type const = KInt of int | KBool of bool | KNull | KStr of string

type operand = int
(** [>= 0]: register index; [< 0]: constant-pool index [-1 - k]. *)

(** Non-short-circuit binary operators ([Eq]/[Ne] are separate because
    their operand read order differs — see {!Compile}). *)
type binkind = BAdd | BSub | BMul | BDiv | BMod | BLt | BLe | BGt | BGe

type instr =
  | IHalt
      (** pc 0 only: implicit return.  Pops the frame, stores [VNull] to
          the caller's return slot.  A frame resting at pc 0 is exactly a
          [CDone] continuation. *)
  | INop  (** [nop] / [yield]: a real (empty) transition *)
  | IMove of int * operand  (** dst := src (unbound-checked) *)
  | IBin of binkind * int * operand * operand
      (** dst := a op b; reads [a] then [b] (the tree interpreter's
          left-to-right [let ... and ...] order) *)
  | IEq of int * operand * operand
      (** dst := a == b; reads [b] {e first} (OCaml right-to-left
          application order in [Value.equal (eval a) (eval b)]) *)
  | INe of int * operand * operand  (** dst := a != b; reads [b] first *)
  | INot of int * operand
  | INeg of int * operand
  | IBoolJmp of int * operand * int * bool
      (** [&&]/[||] short circuit: [(dst, a, target, is_and)].  For
          [&&]: a=false stores false and jumps; a=true falls through to
          the right-operand code; non-bool crashes.  [||] dually. *)
  | IBoolMove of int * operand * bool
      (** dst := src checked to be a bool ([is_and] picks the crash
          message); the join point of a short-circuit chain *)
  | IJmp of int
  | IJmpIfNot of operand * int
      (** if/while condition: crash on non-bool, fire [on_branch], jump
          to target when false *)
  | ICheckRef of operand
      (** force the null/type check of an already-evaluated reference at
          its source position (before a later operand's code runs) *)
  | ICheckIdx of operand * operand
      (** (arr, idx): the full array-store pre-check (null, type,
          bounds) at its source position *)
  | ILoad of int * operand * int * int  (** (dst, obj, fld, sid) *)
  | IStore of operand * int * operand * int  (** (obj, fld, v, sid) *)
  | ILoadIdx of int * operand * operand * int  (** (dst, arr, idx, sid) *)
  | IStoreIdx of operand * operand * operand * int  (** (arr, idx, v, sid) *)
  | IGLoad of int * int * int  (** (dst, global fld, sid) *)
  | IGStore of int * operand * int  (** (global fld, v, sid) *)
  | INew of int * string * int array  (** (dst, class, field ids) *)
  | INewArray of int * operand
  | INewMap of int
  | IMapGet of int * operand * operand * int
      (** (dst, map, key, sid); reads [key] then [map] (application
          order in [Loc.mapkey (eval_ref m) (eval k)]) *)
  | IMapPut of operand * operand * operand * int
      (** (map, key, v, sid); reads key, map, then v *)
  | IMapHas of int * operand * operand * int  (** reads key then map *)
  | ICall of int * int * operand array
      (** (ret register or -1, function index, args).  Saves the
          jump-threaded next-statement pc as the caller's resume point,
          so saved pcs are always boundaries. *)
  | ICallUndef of string  (** call to an unresolved callee: crash *)
  | IRet of operand
  | ISpawn of int * int * string * operand array
      (** (handle dst, function index, name, args); the index check
          happens {e after} argument evaluation, unlike [ICall] *)
  | IJoin of operand * int  (** (handle, sid); blocks by pc rewind *)
  | IEnterSync of operand * int
      (** (m, sid): acquire and push [m] on the frame's sync stack, or
          block (rewinding pc to the statement entry) *)
  | IExitSync of int
      (** (sid): its own boundary — the [CUnlock] transition.  Pops the
          sync stack and releases. *)
  | ILock of operand * int
  | IUnlock of operand * int
  | IWait of operand * int
  | INotify of operand * int * bool  (** (m, sid, notify-all?) *)
  | IAssert of operand
  | IPrint of operand
  | ISyscall of int * string * operand array
  | IOpaque of int * string * operand array

(** Continuation-template entry: [Interp.scont] with the lock object id
    of an [SUnlock] left abstract (it lives in the frame's sync stack —
    innermost first, the same order the template lists its [TUnlock]s). *)
type template_entry = TSeq of int | TUnlock of int

type fninfo = {
  fi_name : string;
  fi_entry : int;  (** entry pc; [0] for an empty body *)
  fi_nparams : int;
  fi_nslots : int;  (** source slots = [Resolve.rf_frame] *)
  fi_nregs : int;  (** slots + temporaries *)
  fi_reg_names : string array;
      (** [fi_nregs] names for the "unbound local variable" diagnostic *)
}

type program = {
  bc_code : instr array;
  bc_consts : const array;
  bc_fns : fninfo array;
      (** [Resolve.cp_fns] order; the last entry is [$main] *)
  bc_starts : bool array;  (** per pc: statement boundary *)
  bc_stmt_start : int array;
      (** per pc: boundary pc of the statement the instruction belongs
          to (identity on boundaries) — crash/snapshot attribution for
          mid-statement pcs *)
  bc_threaded : int array;
      (** per pc: pc with [IJmp] chains resolved — the "next statement"
          target used for saved call pcs and early advances *)
  bc_sid_at : int array;  (** per pc: owning statement sid, [-1] none *)
  bc_line_at : int array;  (** per pc: source line, [0] none *)
  bc_templates : template_entry list array;
      (** per boundary pc: the continuation template *)
  bc_pc_of_sid : int array;  (** sid -> statement entry pc, [-1] *)
  bc_exit_pc_of_sid : int array;
      (** sync-statement sid -> its [IExitSync] pc, [-1] *)
  bc_fn_of_pc : int array;  (** pc -> [bc_fns] index *)
  bc_stmt_at : Resolve.rstmt option array;
      (** boundary pc -> the resolved statement heading there (for
          enabledness peeking and pre-event computation) *)
  bc_src : Resolve.compiled;
}

let main_index (p : program) : int = Array.length p.bc_fns - 1

(* ------------------------------------------------------------------ *)
(* Disassembler                                                        *)
(* ------------------------------------------------------------------ *)

let const_str = function
  | KInt n -> string_of_int n
  | KBool b -> string_of_bool b
  | KNull -> "null"
  | KStr s -> Printf.sprintf "%S" s

let operand_str (p : program) (o : operand) : string =
  if o >= 0 then Printf.sprintf "r%d" o
  else const_str p.bc_consts.(-1 - o)

let bin_str = function
  | BAdd -> "add" | BSub -> "sub" | BMul -> "mul" | BDiv -> "div"
  | BMod -> "mod" | BLt -> "lt" | BLe -> "le" | BGt -> "gt" | BGe -> "ge"

let args_str p (args : operand array) =
  String.concat ", " (Array.to_list (Array.map (operand_str p) args))

let instr_str (p : program) (i : instr) : string =
  let op = operand_str p in
  let r d = Printf.sprintf "r%d" d in
  match i with
  | IHalt -> "halt"
  | INop -> "nop"
  | IMove (d, s) -> Printf.sprintf "move %s, %s" (r d) (op s)
  | IBin (k, d, a, b) -> Printf.sprintf "%s %s, %s, %s" (bin_str k) (r d) (op a) (op b)
  | IEq (d, a, b) -> Printf.sprintf "eq %s, %s, %s" (r d) (op a) (op b)
  | INe (d, a, b) -> Printf.sprintf "ne %s, %s, %s" (r d) (op a) (op b)
  | INot (d, a) -> Printf.sprintf "not %s, %s" (r d) (op a)
  | INeg (d, a) -> Printf.sprintf "neg %s, %s" (r d) (op a)
  | IBoolJmp (d, a, t, is_and) ->
    Printf.sprintf "%s %s, %s -> %d" (if is_and then "and.sc" else "or.sc") (r d) (op a) t
  | IBoolMove (d, a, is_and) ->
    Printf.sprintf "bool.move %s, %s (%s)" (r d) (op a) (if is_and then "&&" else "||")
  | IJmp t -> Printf.sprintf "jmp %d" t
  | IJmpIfNot (c, t) -> Printf.sprintf "jmp.ifnot %s -> %d" (op c) t
  | ICheckRef a -> Printf.sprintf "check.ref %s" (op a)
  | ICheckIdx (a, i) -> Printf.sprintf "check.idx %s[%s]" (op a) (op i)
  | ILoad (d, o, f, sid) -> Printf.sprintf "load %s, %s.%d  !%d" (r d) (op o) f sid
  | IStore (o, f, v, sid) -> Printf.sprintf "store %s.%d, %s  !%d" (op o) f (op v) sid
  | ILoadIdx (d, a, i, sid) -> Printf.sprintf "load.idx %s, %s[%s]  !%d" (r d) (op a) (op i) sid
  | IStoreIdx (a, i, v, sid) ->
    Printf.sprintf "store.idx %s[%s], %s  !%d" (op a) (op i) (op v) sid
  | IGLoad (d, g, sid) -> Printf.sprintf "gload %s, g%d  !%d" (r d) g sid
  | IGStore (g, v, sid) -> Printf.sprintf "gstore g%d, %s  !%d" g (op v) sid
  | INew (d, cls, fids) -> Printf.sprintf "new %s, %s/%d" (r d) cls (Array.length fids)
  | INewArray (d, n) -> Printf.sprintf "new.array %s, %s" (r d) (op n)
  | INewMap d -> Printf.sprintf "new.map %s" (r d)
  | IMapGet (d, m, k, sid) -> Printf.sprintf "map.get %s, %s[%s]  !%d" (r d) (op m) (op k) sid
  | IMapPut (m, k, v, sid) ->
    Printf.sprintf "map.put %s[%s], %s  !%d" (op m) (op k) (op v) sid
  | IMapHas (d, m, k, sid) -> Printf.sprintf "map.has %s, %s[%s]  !%d" (r d) (op m) (op k) sid
  | ICall (ret, fidx, args) ->
    Printf.sprintf "call %s, f%d (%s)" (if ret < 0 then "_" else r ret) fidx (args_str p args)
  | ICallUndef f -> Printf.sprintf "call.undef %s" f
  | IRet v -> Printf.sprintf "ret %s" (op v)
  | ISpawn (d, fidx, f, args) ->
    Printf.sprintf "spawn %s, f%d:%s (%s)" (r d) fidx f (args_str p args)
  | IJoin (h, sid) -> Printf.sprintf "join %s  !%d" (op h) sid
  | IEnterSync (m, sid) -> Printf.sprintf "sync.enter %s  !%d" (op m) sid
  | IExitSync sid -> Printf.sprintf "sync.exit  !%d" sid
  | ILock (m, sid) -> Printf.sprintf "lock %s  !%d" (op m) sid
  | IUnlock (m, sid) -> Printf.sprintf "unlock %s  !%d" (op m) sid
  | IWait (m, sid) -> Printf.sprintf "wait %s  !%d" (op m) sid
  | INotify (m, sid, all) ->
    Printf.sprintf "%s %s  !%d" (if all then "notify.all" else "notify") (op m) sid
  | IAssert c -> Printf.sprintf "assert %s" (op c)
  | IPrint v -> Printf.sprintf "print %s" (op v)
  | ISyscall (d, n, args) -> Printf.sprintf "syscall %s, @%s (%s)" (r d) n (args_str p args)
  | IOpaque (d, n, args) -> Printf.sprintf "opaque %s, #%s (%s)" (r d) n (args_str p args)

(** Render the whole program, one instruction per line:
    [pc  [*] instr  ; fn=NAME sid=N line=L], where [*] marks statement
    boundaries.  [annot] can append e.g. source text per sid. *)
let disassemble ?(annot : (int -> string option) option) (p : program) : string =
  let buf = Buffer.create 4096 in
  let n = Array.length p.bc_code in
  Array.iteri
    (fun fi (f : fninfo) ->
      Buffer.add_string buf
        (Printf.sprintf "; f%d %s  entry=%d params=%d slots=%d regs=%d\n" fi f.fi_name
           f.fi_entry f.fi_nparams f.fi_nslots f.fi_nregs))
    p.bc_fns;
  for pc = 0 to n - 1 do
    let sid = p.bc_sid_at.(pc) in
    let line = p.bc_line_at.(pc) in
    let star = if p.bc_starts.(pc) then "*" else " " in
    let extra =
      match annot with
      | Some f when p.bc_starts.(pc) && sid >= 0 -> (
        match f sid with Some s -> "  ; " ^ s | None -> "")
      | _ -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%4d %s %-40s ; sid=%d line=%d%s\n" pc star
         (instr_str p p.bc_code.(pc)) sid line extra)
  done;
  Buffer.contents buf
