(** Global string interning table.

    Every field name, global name, map-key tag and ghost-field name is
    interned once into a dense integer id, so the hot paths (location
    equality, hashing, heap field tables) work on immediates instead of
    strings.  The table is process-global and append-only.

    Domain safety: [id] takes a mutex (experiments fan out across the
    engine's domain pool, and two domains may intern concurrently).  [name]
    is lock-free: the id->string array is copy-on-write and published through
    an [Atomic.t], so readers always see a fully initialized prefix.  Ids are
    assignment-order dependent and therefore only meaningful within one
    process; serialized forms (logs) must ship the name, not the id. *)

let mutex = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string array Atomic.t = Atomic.make [||]

let id (s : string) : int =
  Mutex.lock mutex;
  let i =
    match Hashtbl.find_opt table s with
    | Some i -> i
    | None ->
      let arr = Atomic.get names in
      let n = Array.length arr in
      let arr' = Array.make (n + 1) s in
      Array.blit arr 0 arr' 0 n;
      Atomic.set names arr';
      Hashtbl.add table s n;
      n
  in
  Mutex.unlock mutex;
  i

let name (i : int) : string =
  let arr = Atomic.get names in
  if i < 0 || i >= Array.length arr then
    invalid_arg (Printf.sprintf "Intern.name: unknown id %d" i)
  else arr.(i)

let mem (s : string) : bool =
  Mutex.lock mutex;
  let r = Hashtbl.mem table s in
  Mutex.unlock mutex;
  r

let count () = Array.length (Atomic.get names)
