(** Global string interning table.

    Every field name, global name, map-key tag and ghost-field name is
    interned once into a dense integer id, so the hot paths (location
    equality, hashing, heap field tables) work on immediates instead of
    strings.  The table is process-global and append-only.

    Domain safety: the insert path is {e sharded} — the string→id map is
    striped across [shard_count] independently mutexed hash tables keyed by
    the string's hash, so concurrent [id] calls from the record service's
    domains only collide when they touch the same stripe (the seed held one
    global mutex, which became the cross-session bottleneck once thousands
    of prepared sessions interned map keys concurrently).  Fresh ids are
    allocated under a second, global append lock taken {e inside} the shard
    lock (fixed shard→alloc order, so the pair cannot deadlock); since the
    same string always hashes to the same shard, dedup stays race-free.

    [name] is lock-free: the id→string array is copy-on-write and published
    through an [Atomic.t], so readers always see a fully initialized prefix.
    Ids are assignment-order dependent and therefore only meaningful within
    one process; serialized forms (logs) must ship the name, not the id.

    Contention is observable: each shard counts lookups, inserts and
    contended acquisitions ([Mutex.try_lock] misses), summed by {!stats}.
    [LIGHT_INTERN_SHARDS] overrides the stripe count (rounded up to a power
    of two, max 256; 1 reproduces the seed's single global mutex — logs are
    byte-identical either way, which the service bench checks). *)

type shard = {
  m : Mutex.t;
  tbl : (string, int) Hashtbl.t;
  mutable s_lookups : int;
  mutable s_inserts : int;
  mutable s_contended : int;
}

let shard_count =
  let requested =
    match Sys.getenv_opt "LIGHT_INTERN_SHARDS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 16)
    | None -> 16
  in
  let rec pow2 n = if n >= requested || n >= 256 then n else pow2 (2 * n) in
  pow2 1

let shards =
  Array.init shard_count (fun _ ->
      {
        m = Mutex.create ();
        tbl = Hashtbl.create 64;
        s_lookups = 0;
        s_inserts = 0;
        s_contended = 0;
      })

(* id allocation: append to the copy-on-write id→string array.  Taken only
   on the miss path, inside the owning shard's lock. *)
let alloc_m = Mutex.create ()
let names : string array Atomic.t = Atomic.make [||]

let[@inline] shard_of (s : string) : shard =
  Array.unsafe_get shards (Hashtbl.hash s land (shard_count - 1))

let id (s : string) : int =
  let sh = shard_of s in
  if not (Mutex.try_lock sh.m) then begin
    Mutex.lock sh.m;
    sh.s_contended <- sh.s_contended + 1
  end;
  sh.s_lookups <- sh.s_lookups + 1;
  let i =
    match Hashtbl.find_opt sh.tbl s with
    | Some i -> i
    | None ->
      Mutex.lock alloc_m;
      let arr = Atomic.get names in
      let n = Array.length arr in
      let arr' = Array.make (n + 1) s in
      Array.blit arr 0 arr' 0 n;
      Atomic.set names arr';
      Mutex.unlock alloc_m;
      sh.s_inserts <- sh.s_inserts + 1;
      Hashtbl.add sh.tbl s n;
      n
  in
  Mutex.unlock sh.m;
  i

let name (i : int) : string =
  let arr = Atomic.get names in
  if i < 0 || i >= Array.length arr then
    invalid_arg (Printf.sprintf "Intern.name: unknown id %d" i)
  else arr.(i)

let mem (s : string) : bool =
  let sh = shard_of s in
  Mutex.lock sh.m;
  let r = Hashtbl.mem sh.tbl s in
  Mutex.unlock sh.m;
  r

let count () = Array.length (Atomic.get names)

(* ------------------------------------------------------------------ *)
(* Contention observability                                            *)
(* ------------------------------------------------------------------ *)

type stats = {
  st_shards : int;
  st_lookups : int;  (** [id] calls (each probes exactly one shard table) *)
  st_inserts : int;  (** fresh ids allocated *)
  st_contended : int;
      (** shard-mutex acquisitions that found the stripe already held *)
}

let stats () : stats =
  let lk = ref 0 and ins = ref 0 and cnt = ref 0 in
  Array.iter
    (fun sh ->
      Mutex.lock sh.m;
      lk := !lk + sh.s_lookups;
      ins := !ins + sh.s_inserts;
      cnt := !cnt + sh.s_contended;
      Mutex.unlock sh.m)
    shards;
  { st_shards = shard_count; st_lookups = !lk; st_inserts = !ins; st_contended = !cnt }

let reset_stats () : unit =
  Array.iter
    (fun sh ->
      Mutex.lock sh.m;
      sh.s_lookups <- 0;
      sh.s_inserts <- 0;
      sh.s_contended <- 0;
      Mutex.unlock sh.m)
    shards
