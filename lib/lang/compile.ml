(** Lowering from the slot-resolved form ({!Resolve}) to register
    bytecode ({!Bytecode}).

    The pass is a single walk over each function body.  Correctness is
    dominated by one concern: the VM must crash (and tick D(t)) in
    exactly the order the tree interpreter does, so operand evaluation
    replicates [Interp.eval]'s order — including the places where that
    order is OCaml's right-to-left function-application order:

    - arithmetic/comparison ([let va = eval a and vb = eval b]): a, b
    - [==]/[!=] ([Value.equal (eval a) (eval b)]): b, then a
    - array index ([match eval a, eval i]): a, then i (native tuple
      match is left-to-right)
    - map ops ([Loc.mapkey (eval_ref m) (eval k)]): k, then m
    - store value operands: evaluated after the target is evaluated
      {e and} reference-checked
    - call/spawn/syscall arguments ([List.map]): left to right

    A leaf operand (variable or constant) normally rides in the
    instruction itself — its unbound check happens when the instruction
    reads it.  That is only sound while no {e later} operand's code runs
    first, so a leaf variable followed by a compound operand is
    materialized with an [IMove] at its source position ([operands]).
    Compound operands always evaluate into fresh temporaries; statement
    temporaries are dead at boundaries by construction. *)

open Resolve
open Bytecode

(* growable arrays for the emitter *)
type 'a dyn = { mutable arr : 'a array; mutable len : int }

let dyn_make (d : 'a) n : 'a dyn = { arr = Array.make n d; len = 0 }

let dyn_push (d : 'a dyn) (x : 'a) : int =
  (if d.len = Array.length d.arr then begin
     let bigger = Array.make (2 * max 8 d.len) x in
     Array.blit d.arr 0 bigger 0 d.len;
     d.arr <- bigger
   end);
  d.arr.(d.len) <- x;
  d.len <- d.len + 1;
  d.len - 1

let dyn_to_array (d : 'a dyn) : 'a array = Array.sub d.arr 0 d.len

type emitter = {
  code : instr dyn;
  sids : int dyn;
  lines : int dyn;
  anchors : int dyn;
  starts : bool dyn;
  templates : template_entry list dyn;
  stmts : rstmt option dyn;
  fn_of : int dyn;
  consts : (const, int) Hashtbl.t;
  const_list : const dyn;
  pc_of_sid : int array;
  exit_pc_of_sid : int array;
  (* current function *)
  mutable cur_fn : int;
  mutable nslots : int;
  mutable next_temp : int;
  mutable max_reg : int;
  mutable reg_names : (int, string) Hashtbl.t;
  (* current statement *)
  mutable cur_sid : int;
  mutable cur_line : int;
  mutable cur_anchor : int;  (* -1: the next emitted pc becomes the anchor *)
  mutable pending : (template_entry list * rstmt option) option;
      (* boundary to mark on the next emitted instruction *)
}

let cur_pc (e : emitter) : int = e.code.len

let emit (e : emitter) (i : instr) : int =
  let pc = dyn_push e.code i in
  ignore (dyn_push e.sids e.cur_sid);
  ignore (dyn_push e.lines e.cur_line);
  if e.cur_anchor < 0 then e.cur_anchor <- pc;
  ignore (dyn_push e.anchors e.cur_anchor);
  ignore (dyn_push e.fn_of e.cur_fn);
  (match e.pending with
  | Some (tpl, st) ->
    ignore (dyn_push e.starts true);
    ignore (dyn_push e.templates tpl);
    ignore (dyn_push e.stmts st);
    e.pending <- None
  | None ->
    ignore (dyn_push e.starts false);
    ignore (dyn_push e.templates []);
    ignore (dyn_push e.stmts None));
  pc

let patch (e : emitter) (pc : int) (i : instr) : unit = e.code.arr.(pc) <- i

let const_operand (e : emitter) (k : const) : operand =
  let idx =
    match Hashtbl.find_opt e.consts k with
    | Some i -> i
    | None ->
      let i = dyn_push e.const_list k in
      Hashtbl.add e.consts k i;
      i
  in
  -1 - idx

let fresh_temp (e : emitter) : int =
  let t = e.next_temp in
  e.next_temp <- t + 1;
  if t + 1 > e.max_reg then e.max_reg <- t + 1;
  t

let is_leaf = function
  | RInt _ | RBool _ | RNull | RStr _ | RVar _ -> true
  | RBinop _ | RUnop _ -> false

let leaf_operand (e : emitter) (x : rexpr) : operand =
  match x with
  | RInt n -> const_operand e (KInt n)
  | RBool b -> const_operand e (KBool b)
  | RNull -> const_operand e KNull
  | RStr s -> const_operand e (KStr s)
  | RVar (slot, name) ->
    if not (Hashtbl.mem e.reg_names slot) then Hashtbl.add e.reg_names slot name;
    slot
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec emit_expr (e : emitter) (dst : int) (x : rexpr) : unit =
  match x with
  | RInt _ | RBool _ | RNull | RStr _ | RVar _ ->
    ignore (emit e (IMove (dst, leaf_operand e x)))
  | RUnop (Ast.Not, a) ->
    let oa = operand_simple e a in
    ignore (emit e (INot (dst, oa)))
  | RUnop (Ast.Neg, a) ->
    let oa = operand_simple e a in
    ignore (emit e (INeg (dst, oa)))
  | RBinop (Ast.And, a, b) -> emit_shortcircuit e dst a b true
  | RBinop (Ast.Or, a, b) -> emit_shortcircuit e dst a b false
  | RBinop (Ast.Eq, a, b) -> (
    (* OCaml application order: b's code runs first, then a's *)
    match operands e [ b; a ] with
    | [ ob; oa ] -> ignore (emit e (IEq (dst, oa, ob)))
    | _ -> assert false)
  | RBinop (Ast.Ne, a, b) -> (
    match operands e [ b; a ] with
    | [ ob; oa ] -> ignore (emit e (INe (dst, oa, ob)))
    | _ -> assert false)
  | RBinop (op, a, b) -> (
    let kind =
      match op with
      | Ast.Add -> BAdd | Ast.Sub -> BSub | Ast.Mul -> BMul | Ast.Div -> BDiv
      | Ast.Mod -> BMod | Ast.Lt -> BLt | Ast.Le -> BLe | Ast.Gt -> BGt
      | Ast.Ge -> BGe
      | Ast.And | Ast.Or | Ast.Eq | Ast.Ne -> assert false
    in
    match operands e [ a; b ] with
    | [ oa; ob ] -> ignore (emit e (IBin (kind, dst, oa, ob)))
    | _ -> assert false)

(* One operand with no ordering constraint against siblings: leaves ride
   in the instruction, compound expressions evaluate into a temp. *)
and operand_simple (e : emitter) (x : rexpr) : operand =
  if is_leaf x then leaf_operand e x
  else begin
    let t = fresh_temp e in
    emit_expr e t x;
    t
  end

(* Operands of one instruction, [xs] given in the tree interpreter's
   evaluation order.  A leaf variable followed by a compound operand is
   materialized with an [IMove] so its unbound check fires at its source
   position, before the later operand's code runs.  [code_follows] marks
   that more evaluation code runs after the whole list (a hoisted check
   or a compound store value), forcing every leaf variable to
   materialize.  Emission order is made explicit (left to right). *)
and operands ?(code_follows = false) (e : emitter) (xs : rexpr list) : operand list =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let code_after = Array.make n false in
  let acc = ref code_follows in
  for i = n - 1 downto 0 do
    code_after.(i) <- !acc;
    if not (is_leaf arr.(i)) then acc := true
  done;
  let ops = Array.make n 0 in
  for i = 0 to n - 1 do
    ops.(i) <-
      (match arr.(i) with
      | RVar _ when code_after.(i) ->
        let t = fresh_temp e in
        ignore (emit e (IMove (t, leaf_operand e arr.(i))));
        t
      | x -> operand_simple e x)
  done;
  Array.to_list ops

and emit_shortcircuit (e : emitter) (dst : int) (a : rexpr) (b : rexpr) (is_and : bool) :
    unit =
  let oa = operand_simple e a in
  let jpc = emit e (IBoolJmp (dst, oa, -1, is_and)) in
  let ob = operand_simple e b in
  ignore (emit e (IBoolMove (dst, ob, is_and)));
  patch e jpc (IBoolJmp (dst, oa, cur_pc e, is_and))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* The continuation template after the current statement completes:
   [rest] is the remainder of the enclosing block, [outer] the template
   of the block's own continuation. *)
let after_template (rest : rstmt list) (outer : template_entry list) :
    template_entry list =
  match rest with [] -> outer | s2 :: _ -> TSeq s2.rsid :: outer

let begin_stmt (e : emitter) (s : rstmt) ~(outer : template_entry list) : unit =
  e.next_temp <- e.nslots;
  e.cur_sid <- s.rsid;
  e.cur_line <- s.rline;
  e.cur_anchor <- -1;
  e.pending <- Some (TSeq s.rsid :: outer, Some s);
  if s.rsid >= 0 && s.rsid < Array.length e.pc_of_sid then
    e.pc_of_sid.(s.rsid) <- cur_pc e

let rec emit_stmt (e : emitter) (s : rstmt) ~(rest : rstmt list)
    ~(outer : template_entry list) : unit =
  let sid = s.rsid in
  match s.rnode with
  | RNop | RYield -> ignore (emit e INop)
  | RAssign (x, v) -> emit_expr e x v
  | RLoad (x, o, f) ->
    let oo = operand_simple e o in
    ignore (emit e (ILoad (x, oo, f, sid)))
  | RStore (o, f, v) ->
    (* o evaluated and reference-checked before v's code *)
    let oo = operand_simple e o in
    if not (is_leaf v) then ignore (emit e (ICheckRef oo));
    let ov = operand_simple e v in
    ignore (emit e (IStore (oo, f, ov, sid)))
  | RLoadIdx (x, a, i) -> (
    match operands e [ a; i ] with
    | [ oa; oi ] -> ignore (emit e (ILoadIdx (x, oa, oi, sid)))
    | _ -> assert false)
  | RStoreIdx (a, i, v) -> (
    match operands e [ a; i ] with
    | [ oa; oi ] ->
      if not (is_leaf v) then ignore (emit e (ICheckIdx (oa, oi)));
      let ov = operand_simple e v in
      ignore (emit e (IStoreIdx (oa, oi, ov, sid)))
    | _ -> assert false)
  | RGlobalLoad (x, g) -> ignore (emit e (IGLoad (x, g, sid)))
  | RGlobalStore (g, v) ->
    let ov = operand_simple e v in
    ignore (emit e (IGStore (g, ov, sid)))
  | RNew (x, cls, fids) -> ignore (emit e (INew (x, cls, fids)))
  | RNewArray (x, n) ->
    let on_ = operand_simple e n in
    ignore (emit e (INewArray (x, on_)))
  | RNewMap x -> ignore (emit e (INewMap x))
  | RMapGet (x, m, k) -> (
    (* application order: k's code first, then m's *)
    match operands e [ k; m ] with
    | [ ok; om ] -> ignore (emit e (IMapGet (x, om, ok, sid)))
    | _ -> assert false)
  | RMapPut (m, k, v) -> (
    (* with a compound value, [k]'s unbound check must also fire before
       the hoisted ref check on [m] and before [v]'s code *)
    match operands ~code_follows:(not (is_leaf v)) e [ k; m ] with
    | [ ok; om ] ->
      if not (is_leaf v) then ignore (emit e (ICheckRef om));
      let ov = operand_simple e v in
      ignore (emit e (IMapPut (om, ok, ov, sid)))
    | _ -> assert false)
  | RMapHas (x, m, k) -> (
    match operands e [ k; m ] with
    | [ ok; om ] -> ignore (emit e (IMapHas (x, om, ok, sid)))
    | _ -> assert false)
  | RIf (c, b1, b2) ->
    let after = after_template rest outer in
    let oc = operand_simple e c in
    let jpc = emit e (IJmpIfNot (oc, -1)) in
    emit_block e b1 ~outer:after;
    if b2 = [] then patch e jpc (IJmpIfNot (oc, cur_pc e))
    else begin
      let j2 = emit e (IJmp (-1)) in
      patch e jpc (IJmpIfNot (oc, cur_pc e));
      emit_block e b2 ~outer:after;
      patch e j2 (IJmp (cur_pc e))
    end
  | RWhile (c, b) ->
    (* the while statement stays at the head of its sequence while the
       body runs: the body's continuation template repeats its sid *)
    let head = e.pc_of_sid.(sid) in
    let oc = operand_simple e c in
    let jpc = emit e (IJmpIfNot (oc, -1)) in
    emit_block e b ~outer:(TSeq sid :: outer);
    ignore (emit e (IJmp head));
    patch e jpc (IJmpIfNot (oc, cur_pc e))
  | RCall (ret, fidx, fname, args) ->
    if fidx < 0 then ignore (emit e (ICallUndef fname))
    else begin
      let ops_ = operands e args in
      ignore
        (emit e
           (ICall ((match ret with Some x -> x | None -> -1), fidx, Array.of_list ops_)))
    end
  | RReturn v ->
    let ov =
      match v with Some x -> operand_simple e x | None -> const_operand e KNull
    in
    ignore (emit e (IRet ov))
  | RSpawn (h, fidx, fname, args) ->
    let ops_ = operands e args in
    ignore (emit e (ISpawn (h, fidx, fname, Array.of_list ops_)))
  | RJoin hx ->
    let oh = operand_simple e hx in
    ignore (emit e (IJoin (oh, sid)))
  | RSync (m, body) ->
    let om = operand_simple e m in
    ignore (emit e (IEnterSync (om, sid)));
    let after = after_template rest outer in
    emit_block e body ~outer:(TUnlock sid :: after);
    (* the unlock transition is its own boundary *)
    e.cur_sid <- sid;
    e.cur_line <- s.rline;
    e.cur_anchor <- -1;
    e.pending <- Some (TUnlock sid :: after, None);
    let xpc = emit e (IExitSync sid) in
    if sid >= 0 && sid < Array.length e.exit_pc_of_sid then
      e.exit_pc_of_sid.(sid) <- xpc
  | RLock m ->
    let om = operand_simple e m in
    ignore (emit e (ILock (om, sid)))
  | RUnlock m ->
    let om = operand_simple e m in
    ignore (emit e (IUnlock (om, sid)))
  | RWait m ->
    let om = operand_simple e m in
    ignore (emit e (IWait (om, sid)))
  | RNotify m ->
    let om = operand_simple e m in
    ignore (emit e (INotify (om, sid, false)))
  | RNotifyAll m ->
    let om = operand_simple e m in
    ignore (emit e (INotify (om, sid, true)))
  | RAssert c ->
    let oc = operand_simple e c in
    ignore (emit e (IAssert oc))
  | RPrint v ->
    let ov = operand_simple e v in
    ignore (emit e (IPrint ov))
  | RSyscall (x, name, args) ->
    let ops_ = operands e args in
    ignore (emit e (ISyscall (x, name, Array.of_list ops_)))
  | ROpaque (x, name, args) ->
    let ops_ = operands e args in
    ignore (emit e (IOpaque (x, name, Array.of_list ops_)))

and emit_block (e : emitter) (b : rblock) ~(outer : template_entry list) : unit =
  let rec go = function
    | [] -> ()
    | s :: rest ->
      begin_stmt e s ~outer;
      emit_stmt e s ~rest ~outer;
      go rest
  in
  go b

(* ------------------------------------------------------------------ *)
(* Whole program                                                       *)
(* ------------------------------------------------------------------ *)

let compile_fn (e : emitter) (fidx : int) (fn : rfn) : fninfo =
  e.cur_fn <- fidx;
  e.nslots <- fn.rf_frame;
  e.next_temp <- fn.rf_frame;
  e.max_reg <- fn.rf_frame;
  e.reg_names <- Hashtbl.create 16;
  let entry = if fn.rf_body = [] then 0 else cur_pc e in
  emit_block e fn.rf_body ~outer:[];
  e.cur_anchor <- cur_pc e;  (* epilogue jump: never a resting pc *)
  if fn.rf_body <> [] then ignore (emit e (IJmp 0));
  let names =
    Array.init e.max_reg (fun i ->
        match Hashtbl.find_opt e.reg_names i with
        | Some n -> n
        | None -> if i < fn.rf_frame then Printf.sprintf "$s%d" i else Printf.sprintf "$t%d" i)
  in
  {
    fi_name = fn.rf_name;
    fi_entry = entry;
    fi_nparams = fn.rf_nparams;
    fi_nslots = fn.rf_frame;
    fi_nregs = e.max_reg;
    fi_reg_names = names;
  }

let lower (cp : Resolve.compiled) : program =
  let nsid = cp.cp_max_sid + 1 in
  let e =
    {
      code = dyn_make IHalt 256;
      sids = dyn_make (-1) 256;
      lines = dyn_make 0 256;
      anchors = dyn_make 0 256;
      starts = dyn_make false 256;
      templates = dyn_make [] 256;
      stmts = dyn_make None 256;
      fn_of = dyn_make 0 256;
      consts = Hashtbl.create 64;
      const_list = dyn_make KNull 64;
      pc_of_sid = Array.make (max 1 nsid) (-1);
      exit_pc_of_sid = Array.make (max 1 nsid) (-1);
      cur_fn = Array.length cp.cp_fns;  (* $main owns pc 0 *)
      nslots = 0;
      next_temp = 0;
      max_reg = 0;
      reg_names = Hashtbl.create 16;
      cur_sid = -1;
      cur_line = 0;
      cur_anchor = 0;
      pending = Some ([], None);  (* pc 0 is a boundary with the CDone template *)
    }
  in
  ignore (emit e IHalt);
  let nfns = Array.length cp.cp_fns in
  let fns =
    Array.init (nfns + 1) (fun i ->
        if i < nfns then compile_fn e i cp.cp_fns.(i)
        else compile_fn e nfns cp.cp_main)
  in
  let code = dyn_to_array e.code in
  let n = Array.length code in
  (* resolve IJmp chains: the pc actually rested on after a fall-through
     or early advance.  Chains always terminate (every loop in the CFG
     contains a non-jump instruction); the depth guard is belt and
     braces. *)
  let threaded =
    Array.init n (fun pc0 ->
        let rec follow pc depth =
          if depth > n then pc
          else match code.(pc) with IJmp t -> follow t (depth + 1) | _ -> pc
        in
        follow pc0 0)
  in
  {
    bc_code = code;
    bc_consts = dyn_to_array e.const_list;
    bc_fns = fns;
    bc_starts = dyn_to_array e.starts;
    bc_stmt_start = dyn_to_array e.anchors;
    bc_threaded = threaded;
    bc_sid_at = dyn_to_array e.sids;
    bc_line_at = dyn_to_array e.lines;
    bc_templates = dyn_to_array e.templates;
    bc_pc_of_sid = e.pc_of_sid;
    bc_exit_pc_of_sid = e.exit_pc_of_sid;
    bc_fn_of_pc = dyn_to_array e.fn_of;
    bc_stmt_at = dyn_to_array e.stmts;
    bc_src = cp;
  }
