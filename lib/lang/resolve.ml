(** One-shot resolution pass between checking and execution.

    Replaces every string-keyed lookup the interpreter would otherwise do at
    runtime with an integer computed once here:
    - local variables become frame slots ([RVar (slot, name)]; the name is
      kept for the "unbound local variable" diagnostic), and every function
      carries its frame size so a frame is a [Value.t array];
    - field names, global names and class field lists are interned
      ({!Intern}), matching the field-id space of [Runtime.Loc];
    - callees ([call]/[spawn]) are resolved to indices into a function
      array (index [-1] = undefined, preserving the runtime crash).

    The pass performs no checking of its own: unvalidated programs resolve
    fine and crash at execution exactly where the seed interpreter crashed
    (undefined callee, unbound variable, unknown class = no field inits). *)

type rexpr =
  | RInt of int
  | RBool of bool
  | RNull
  | RStr of string
  | RVar of int * string  (** slot, source name (diagnostics only) *)
  | RBinop of Ast.binop * rexpr * rexpr
  | RUnop of Ast.unop * rexpr

type rstmt = { rsid : int; rline : int; rnode : rnode }

and rblock = rstmt list

and rnode =
  | RAssign of int * rexpr
  | RLoad of int * rexpr * int            (* x = e.f      (slot, obj, fld id) *)
  | RStore of rexpr * int * rexpr
  | RLoadIdx of int * rexpr * rexpr
  | RStoreIdx of rexpr * rexpr * rexpr
  | RGlobalLoad of int * int              (* x = g        (slot, fld id) *)
  | RGlobalStore of int * rexpr
  | RNew of int * string * int array      (* slot, class name, field ids to null-init *)
  | RNewArray of int * rexpr
  | RNewMap of int
  | RMapGet of int * rexpr * rexpr
  | RMapPut of rexpr * rexpr * rexpr
  | RMapHas of int * rexpr * rexpr
  | RIf of rexpr * rblock * rblock
  | RWhile of rexpr * rblock
  | RCall of int option * int * string * rexpr list   (* ret slot, fn idx, name *)
  | RReturn of rexpr option
  | RSpawn of int * int * string * rexpr list         (* handle slot, fn idx, name *)
  | RJoin of rexpr
  | RSync of rexpr * rblock
  | RLock of rexpr
  | RUnlock of rexpr
  | RWait of rexpr
  | RNotify of rexpr
  | RNotifyAll of rexpr
  | RAssert of rexpr
  | RPrint of rexpr
  | RSyscall of int * string * rexpr list
  | ROpaque of int * string * rexpr list
  | RYield
  | RNop

type rfn = {
  rf_name : string;
  rf_nparams : int;  (** params occupy slots [0 .. rf_nparams-1] in order *)
  rf_frame : int;    (** total slot count *)
  rf_body : rblock;
}

type compiled = {
  cp_fns : rfn array;
  cp_main : rfn;
  cp_globals : int array;  (** interned ids of declared globals, decl order *)
  cp_max_sid : int;
  cp_site_dense : int array;
      (** compile-time site resolution: maps a static site id to a dense
          access-site index [0 .. cp_n_access_sites-1] (program order, main
          first), or [-1] for non-access statements.  Consumers (profiling,
          per-site tables) can then use flat arrays of exactly
          [cp_n_access_sites] slots instead of sid-keyed hashtables. *)
  cp_n_access_sites : int;
  cp_src : Ast.program;    (** the source program, for tooling *)
}

(* ------------------------------------------------------------------ *)

let resolve_block (p : Ast.program) (params : string list) (body : Ast.block) :
    int * rblock =
  let slots : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let slot_of (x : string) : int =
    match Hashtbl.find_opt slots x with
    | Some i -> i
    | None ->
      let i = !next in
      incr next;
      Hashtbl.add slots x i;
      i
  in
  List.iter (fun prm -> ignore (slot_of prm)) params;
  let fn_idx (f : string) : int =
    let rec go i = function
      | [] -> -1
      | (fd : Ast.fndef) :: _ when fd.fname = f -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 p.fns
  in
  let rec rex (e : Ast.expr) : rexpr =
    match e with
    | Int n -> RInt n
    | Bool b -> RBool b
    | Null -> RNull
    | Str s -> RStr s
    | Var x -> RVar (slot_of x, x)
    | Binop (op, a, b) -> RBinop (op, rex a, rex b)
    | Unop (op, a) -> RUnop (op, rex a)
  in
  let rec rstmt (s : Ast.stmt) : rstmt =
    let node =
      match s.node with
      | Assign (x, e) -> RAssign (slot_of x, rex e)
      | Load (x, o, f) -> RLoad (slot_of x, rex o, Intern.id f)
      | Store (o, f, e) -> RStore (rex o, Intern.id f, rex e)
      | LoadIdx (x, a, i) -> RLoadIdx (slot_of x, rex a, rex i)
      | StoreIdx (a, i, e) -> RStoreIdx (rex a, rex i, rex e)
      | GlobalLoad (x, g) -> RGlobalLoad (slot_of x, Intern.id g)
      | GlobalStore (g, e) -> RGlobalStore (Intern.id g, rex e)
      | New (x, cls) ->
        let fids =
          match Ast.class_fields p cls with
          | Some fields -> Array.of_list (List.map Intern.id fields)
          | None -> [||]
        in
        RNew (slot_of x, cls, fids)
      | NewArray (x, n) -> RNewArray (slot_of x, rex n)
      | NewMap x -> RNewMap (slot_of x)
      | MapGet (x, m, k) -> RMapGet (slot_of x, rex m, rex k)
      | MapPut (m, k, v) -> RMapPut (rex m, rex k, rex v)
      | MapHas (x, m, k) -> RMapHas (slot_of x, rex m, rex k)
      | If (c, b1, b2) -> RIf (rex c, rblockl b1, rblockl b2)
      | While (c, b) -> RWhile (rex c, rblockl b)
      | Call (ret, f, args) ->
        RCall (Option.map slot_of ret, fn_idx f, f, List.map rex args)
      | Return e -> RReturn (Option.map rex e)
      | Spawn (h, f, args) -> RSpawn (slot_of h, fn_idx f, f, List.map rex args)
      | Join e -> RJoin (rex e)
      | Sync (m, b) -> RSync (rex m, rblockl b)
      | Lock e -> RLock (rex e)
      | Unlock e -> RUnlock (rex e)
      | Wait e -> RWait (rex e)
      | Notify e -> RNotify (rex e)
      | NotifyAll e -> RNotifyAll (rex e)
      | Assert e -> RAssert (rex e)
      | Print e -> RPrint (rex e)
      | Syscall (x, name, args) -> RSyscall (slot_of x, name, List.map rex args)
      | Opaque (x, name, args) -> ROpaque (slot_of x, name, List.map rex args)
      | Yield -> RYield
      | Nop -> RNop
    in
    { rsid = s.sid; rline = s.line; rnode = node }
  and rblockl (b : Ast.block) : rblock = List.map rstmt b in
  let rb = rblockl body in
  (!next, rb)

let resolve_fn (p : Ast.program) (fd : Ast.fndef) : rfn =
  let frame, body = resolve_block p fd.params fd.body in
  { rf_name = fd.fname; rf_nparams = List.length fd.params; rf_frame = frame; rf_body = body }

let is_access_node = function
  | RLoad _ | RStore _ | RLoadIdx _ | RStoreIdx _ | RGlobalLoad _ | RGlobalStore _
  | RMapGet _ | RMapPut _ | RMapHas _ -> true
  | _ -> false

(* Dense numbering of access sites, program order (main first, then the
   functions in declaration order). *)
let number_sites (max_sid : int) (main : rfn) (fns : rfn array) : int array * int =
  let dense = Array.make (max_sid + 1) (-1) in
  let next = ref 0 in
  let rec block (b : rblock) =
    List.iter
      (fun (s : rstmt) ->
        (if is_access_node s.rnode && s.rsid >= 0 && s.rsid <= max_sid
            && dense.(s.rsid) < 0 then begin
           dense.(s.rsid) <- !next;
           incr next
         end);
        match s.rnode with
        | RIf (_, b1, b2) -> block b1; block b2
        | RWhile (_, b1) | RSync (_, b1) -> block b1
        | _ -> ())
      b
  in
  block main.rf_body;
  Array.iter (fun (f : rfn) -> block f.rf_body) fns;
  (dense, !next)

let compile (p : Ast.program) : compiled =
  let main_frame, main_body = resolve_block p [] p.main in
  let fns = Array.of_list (List.map (resolve_fn p) p.fns) in
  let main =
    { rf_name = "$main"; rf_nparams = 0; rf_frame = main_frame; rf_body = main_body }
  in
  let max_sid = Ast.max_sid p in
  let site_dense, n_access_sites = number_sites max_sid main fns in
  {
    cp_fns = fns;
    cp_main = main;
    cp_globals = Array.of_list (List.map Intern.id p.globals);
    cp_max_sid = max_sid;
    cp_site_dense = site_dense;
    cp_n_access_sites = n_access_sites;
    cp_src = p;
  }
