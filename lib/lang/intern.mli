(** Global string interning table: dense integer ids for field names,
    global names, map-key tags and ghost-field names.  Append-only and
    domain-safe: the insert path is sharded by string hash
    ([LIGHT_INTERN_SHARDS] stripes, default 16), [name] is lock-free.
    Ids are process-local; serialized forms must ship names. *)

val id : string -> int
(** Intern a string, returning its id.  Idempotent.  Takes only the owning
    shard's mutex on the hit path (plus a global append lock on a miss). *)

val name : int -> string
(** The string behind an id.  Raises [Invalid_argument] on unknown ids. *)

val mem : string -> bool
(** Has this string been interned already?  (Diagnostics only.) *)

val count : unit -> int
(** Number of interned strings so far. *)

val shard_count : int
(** Number of stripes the insert path is sharded across (a power of two;
    [LIGHT_INTERN_SHARDS] overrides, 1 = the pre-sharding global mutex). *)

type stats = {
  st_shards : int;
  st_lookups : int;  (** [id] calls (each probes exactly one shard table) *)
  st_inserts : int;  (** fresh ids allocated *)
  st_contended : int;
      (** shard-mutex acquisitions that found the stripe already held — the
          insert-path contention signal the service bench reports *)
}

val stats : unit -> stats
(** Cumulative counters summed over all shards since startup (or the last
    {!reset_stats}).  Interleaving-dependent: report behind [LIGHT_TIMINGS],
    never on deterministic stdout. *)

val reset_stats : unit -> unit
