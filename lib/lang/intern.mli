(** Global string interning table: dense integer ids for field names,
    global names, map-key tags and ghost-field names.  Append-only and
    domain-safe ([id] is mutexed, [name] is lock-free).  Ids are
    process-local; serialized forms must ship names. *)

val id : string -> int
(** Intern a string, returning its id.  Idempotent. *)

val name : int -> string
(** The string behind an id.  Raises [Invalid_argument] on unknown ids. *)

val mem : string -> bool
(** Has this string been interned already?  (Diagnostics only.) *)

val count : unit -> int
(** Number of interned strings so far. *)
