(** Long-lived record service: a session dispatcher driving prepared
    programs across the domain Pool through a bounded submission queue with
    explicit back-pressure, per-worker session contexts that recycle one
    {!Light_core.Recorder} across sessions ({!Light_core.Recorder.reset}
    in place), and a drain-on-shutdown guarantee: when {!run} returns,
    every accepted session has completed or faulted.

    Determinism: a session's log bytes (and digest) depend only on the
    session — not on worker assignment, pool size, queue capacity, intern
    shard count, or recorder recycling.  Cross-run identity additionally
    requires deterministic intern-id assignment: warm the corpus with a
    serial pass first (the service bench's reference pass). *)

open Runtime

type session = {
  ss_label : string;
  ss_prepared : Light_core.Light.prepared;
  ss_engine : Vm.engine;
  ss_sched : unit -> Sched.t;  (** fresh stateful scheduler per execution *)
  ss_seed : int;
  ss_max_steps : int;
}

val session :
  ?label:string ->
  ?engine:Vm.engine ->
  ?seed:int ->
  ?max_steps:int ->
  sched:(unit -> Sched.t) ->
  Light_core.Light.prepared ->
  session

type status = Done | Rejected | Failed of string

type result_ = {
  sr_label : string;
  sr_status : status;
  sr_digest : string;     (** MD5 of the session's v3 log ("" unless Done) *)
  sr_log : string option; (** the v3 log itself, when [keep_logs] *)
  sr_space_longs : int;
  sr_steps : int;
  sr_overhead : float;
  sr_queue_s : float;     (** submit → execution start (wall clock) *)
  sr_run_s : float;       (** execution start → finish (wall clock) *)
}

type stats = {
  st_workers : int;
  st_sessions : int;
  st_done : int;
  st_rejected : int;
  st_failed : int;
  st_recorders_created : int;
      (** with recycling: at most one per worker; without: one per session *)
  st_inline_runs : int;
      (** sessions the parked submitter executed itself (back-pressure) *)
  st_queue : Engine.Bqueue.stats;
}

val run :
  ?pool:Engine.Pool.t ->
  ?queue_capacity:int ->
  ?recycle:bool ->
  ?on_full:[ `Park | `Reject ] ->
  ?keep_logs:bool ->
  session array ->
  result_ array * stats
(** Drive the whole corpus through the service and return per-session
    results indexed like the input, plus run statistics.  One pool worker
    acts as the submitter; the rest consume.  [on_full] picks the
    back-pressure policy when the queue is at capacity: [`Park] (default)
    makes the submitter steal and execute a queued session inline before
    retrying (work-conserving; a size-1 pool degrades to the serial loop),
    [`Reject] drops the session with [sr_status = Rejected].  [recycle]
    (default true) reuses one recorder per worker across sessions;
    [keep_logs] retains each Done session's v3 log string in its result.
    Faulting sessions yield [Failed] results; the service itself never
    throws.  Uses the shared default pool unless [pool] is given. *)

val latencies : result_ array -> float array
(** Submit→finish latencies of the Done sessions, in seconds. *)

val percentile : float -> float array -> float
(** [percentile p xs], [p] in [0,100]; 0.0 on empty input. *)
