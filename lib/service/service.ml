(** Long-lived record service: a session dispatcher over the domain Pool.

    The production shape the ROADMAP asks for — one deployed Light process
    recording many user sessions concurrently — reduced to its engine: a
    corpus of {e prepared} programs ({!Light_core.Light.prepare} already
    paid the analysis/compile cost) is submitted through a bounded
    {!Engine.Bqueue} and executed by the pool's worker domains, each of
    which owns a {e session context}: one long-lived {!Recorder} recycled
    across every session that worker executes ({!Recorder.reset}-in-place —
    last-write table, dep/range arenas, run tables and contention stripes
    keep their grown capacity, ~200KB of per-session allocation avoided).

    Scheduling discipline: the service borrows the Pool's workers via
    {!Engine.Pool.run_indexed} with one {e role} per worker.  Role 0 is the
    submitter: it feeds the queue and applies back-pressure when the queue
    is full — [`Reject] drops the session (recording its rejection), while
    [`Park] makes the submitter {e pay with work}: it steals a queued
    session and executes it inline before retrying, so a single-worker pool
    degrades to exactly the serial loop instead of deadlocking, and an
    overloaded many-worker pool throttles its producer without idling it.
    All other roles are consumers popping until the queue is closed and
    drained — the drain-on-shutdown guarantee: once {!run} returns, every
    accepted session has completed (or faulted), never been dropped.

    Determinism contract (extended to the service layer): a session's
    result bytes depend only on the session itself, never on which worker
    ran it, the pool size, the queue capacity, the intern shard count, or
    whether its recorder was fresh or recycled.  Each result carries the
    digest of the session's v3 log so harnesses can diff whole corpora
    cheaply; the service bench and tests check byte-identity across all of
    those axes.  (Cross-run identity additionally requires intern ids to be
    assigned in a deterministic order — warm the corpus with a serial pass
    first, as the bench does, because runtime map-key interning races are
    resolved by arrival order.) *)

open Runtime

type session = {
  ss_label : string;  (** for reports; not part of the recorded bytes *)
  ss_prepared : Light_core.Light.prepared;
  ss_engine : Vm.engine;
  ss_sched : unit -> Sched.t;
      (** fresh scheduler per execution — schedulers are stateful, and a
          session may be re-executed (e.g. by an identity-checking pass) *)
  ss_seed : int;      (** program-visible nondeterminism ([@rand] etc.) *)
  ss_max_steps : int;
}

let session ?(label = "") ?(engine = Vm.Tree) ?(seed = 0)
    ?(max_steps = 5_000_000) ~sched prepared =
  {
    ss_label = label;
    ss_prepared = prepared;
    ss_engine = engine;
    ss_sched = sched;
    ss_seed = seed;
    ss_max_steps = max_steps;
  }

type status = Done | Rejected | Failed of string

type result_ = {
  sr_label : string;
  sr_status : status;
  sr_digest : string;     (** MD5 of the session's v3 log ("" unless Done) *)
  sr_log : string option; (** the v3 log itself, when [keep_logs] *)
  sr_space_longs : int;
  sr_steps : int;
  sr_overhead : float;
  sr_queue_s : float;     (** submit → execution start (wall clock) *)
  sr_run_s : float;       (** execution start → finish (wall clock) *)
}

type stats = {
  st_workers : int;
  st_sessions : int;
  st_done : int;
  st_rejected : int;
  st_failed : int;
  st_recorders_created : int;
      (** with recycling: at most one per worker role; without: one per
          executed session *)
  st_inline_runs : int;
      (** sessions the parked submitter executed itself (back-pressure) *)
  st_queue : Engine.Bqueue.stats;
}

let rejected_result (s : session) : result_ =
  {
    sr_label = s.ss_label;
    sr_status = Rejected;
    sr_digest = "";
    sr_log = None;
    sr_space_longs = 0;
    sr_steps = 0;
    sr_overhead = 0.0;
    sr_queue_s = 0.0;
    sr_run_s = 0.0;
  }

let run ?pool ?(queue_capacity = 64) ?(recycle = true) ?(on_full = `Park)
    ?(keep_logs = false) (sessions : session array) : result_ array * stats =
  let pool = match pool with Some p -> p | None -> Engine.Pool.get_default () in
  let n = Array.length sessions in
  let nroles = Engine.Pool.size pool in
  let q : (int * session) Engine.Bqueue.t =
    Engine.Bqueue.create ~capacity:queue_capacity
  in
  (* one slot per session, each written by exactly one role and read only
     after the run_indexed barrier — the Pool.map_array publication pattern *)
  let results : result_ option array = Array.make n None in
  let submit_t = Array.make n 0.0 in
  let created = Atomic.make 0 in
  let inline_runs = Atomic.make 0 in
  (* per-role session context: the recycled recorder *)
  let ctxs : Light_core.Recorder.t option ref array =
    Array.init nroles (fun _ -> ref None)
  in
  let execute (ctx : Light_core.Recorder.t option ref) (i : int) (s : session)
      : unit =
    let t0 = Unix.gettimeofday () in
    let recorder =
      if recycle then (
        match !ctx with
        | Some r -> Some r
        | None ->
          Atomic.incr created;
          let r =
            Light_core.Recorder.create
              ~variant:(Light_core.Light.prepared_variant s.ss_prepared)
              (Light_core.Light.prepared_modes s.ss_prepared)
          in
          ctx := Some r;
          Some r)
      else begin
        Atomic.incr created;
        None
      end
    in
    let res =
      match
        Light_core.Light.record_prepared ~engine:s.ss_engine
          ~sched:(s.ss_sched ()) ~max_steps:s.ss_max_steps ~seed:s.ss_seed
          ?recorder s.ss_prepared
      with
      | rec_ ->
        let t1 = Unix.gettimeofday () in
        let log_str = Light_core.Log.to_string rec_.log in
        {
          sr_label = s.ss_label;
          sr_status = Done;
          sr_digest = Digest.string log_str;
          sr_log = (if keep_logs then Some log_str else None);
          sr_space_longs = rec_.space_longs;
          sr_steps = rec_.outcome.Interp.steps;
          sr_overhead = rec_.overhead;
          sr_queue_s = t0 -. submit_t.(i);
          sr_run_s = t1 -. t0;
        }
      | exception e ->
        (* a faulting session must not take the service down; the fault is
           the session's result *)
        let t1 = Unix.gettimeofday () in
        {
          sr_label = s.ss_label;
          sr_status = Failed (Printexc.to_string e);
          sr_digest = "";
          sr_log = None;
          sr_space_longs = 0;
          sr_steps = 0;
          sr_overhead = 0.0;
          sr_queue_s = t0 -. submit_t.(i);
          sr_run_s = t1 -. t0;
        }
    in
    results.(i) <- Some res
  in
  let rec consume ctx =
    match Engine.Bqueue.pop q with
    | Some (j, s) ->
      execute ctx j s;
      consume ctx
    | None -> ()
  in
  let produce ctx =
    for i = 0 to n - 1 do
      submit_t.(i) <- Unix.gettimeofday ();
      let rec submit () =
        match Engine.Bqueue.try_push q (i, sessions.(i)) with
        | `Ok -> ()
        | `Closed -> assert false (* only this role closes the queue *)
        | `Full -> (
          match on_full with
          | `Reject -> results.(i) <- Some (rejected_result sessions.(i))
          | `Park ->
            (* back-pressure by stealing: run one queued session inline,
               then retry — keeps a size-1 pool live and a loaded producer
               useful *)
            (match Engine.Bqueue.try_pop q with
            | Some (j, sj) ->
              Atomic.incr inline_runs;
              execute ctx j sj
            | None -> Domain.cpu_relax ());
            submit ())
      in
      submit ()
    done;
    Engine.Bqueue.close q;
    (* shutdown drain: deliver everything still queued *)
    consume ctx
  in
  if n > 0 then
    Engine.Pool.run_indexed pool nroles ~f:(fun role ->
        if role = 0 then produce ctxs.(role) else consume ctxs.(role));
  let out =
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every session is executed or rejected *))
      results
  in
  let st_done = ref 0 and st_rej = ref 0 and st_fail = ref 0 in
  Array.iter
    (fun r ->
      match r.sr_status with
      | Done -> incr st_done
      | Rejected -> incr st_rej
      | Failed _ -> incr st_fail)
    out;
  ( out,
    {
      st_workers = nroles;
      st_sessions = n;
      st_done = !st_done;
      st_rejected = !st_rej;
      st_failed = !st_fail;
      st_recorders_created = Atomic.get created;
      st_inline_runs = Atomic.get inline_runs;
      st_queue = Engine.Bqueue.stats q;
    } )

(* ------------------------------------------------------------------ *)
(* Small result helpers for benches and the CLI                        *)
(* ------------------------------------------------------------------ *)

(** [percentile p xs] over completed-session latencies, [p] in [0,100];
    0.0 on an empty input. *)
let percentile (p : float) (xs : float array) : float =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    s.(max 0 (min (n - 1) idx))
  end

(** Submit→finish latencies of the Done sessions, in seconds. *)
let latencies (rs : result_ array) : float array =
  Array.of_list
    (Array.to_list rs
    |> List.filter_map (fun r ->
           match r.sr_status with
           | Done -> Some (r.sr_queue_s +. r.sr_run_s)
           | _ -> None))
