(** Offline constraint generation (Section 4.2, Equation 1).

    Every recorded artifact is normalized to an {e interval} of same-thread
    accesses to one location:

    - a dep [w -> [rf..rl]] yields a read interval [[rf..rl]] with source
      [w], plus a singleton write interval for [w] when [w] is not already
      interior to a recorded interval of its thread;
    - an O1 range yields an interval [[lo..hi]] with its [w_in] source;
      referenced sources again materialize as singleton write intervals.

    The constraint system over the order variables [O(tid,c)]:

    + {b thread order}: for the referenced events of each thread, sorted by
      counter, [O(e_i) < O(e_{i+1})] — the intra-thread order the paper
      derives for free from thread-local counters;
    + {b dependence}: [O(src) < O(start I)] for each sourced interval;
    + {b initial-value reads}: an interval reading the virtual initialization
      write must end before the start of every write-bearing interval on the
      location (Java default initialization makes this a flow dependence on
      the allocation; the paper leaves it implicit);
    + {b noninterference}: Equation 1's disjunction, generalized from single
      dependences to intervals.  The {e protected zone} of an interval [I]
      that reads is [(zstart(I) .. end I]] where [zstart(I)] is its source
      write when it has one (the reads at the start of [I] obtain their value
      from that write, so no other write may land after it and before the
      last read), and [start I] otherwise (its reads see its own writes).
      For every write-bearing interval [J]:
      [O(end I) < O(start J) \/ O(end J) < O(zstart I)].
      When [zstart(I)] is itself an event of [J] it is necessarily [J]'s
      last write and no constraint is needed beyond the hard source edge.

    {b Exploration hooks.}  Schedule-space exploration (lib/explore)
    deliberately steps outside the recorded equivalence class: [~free]
    names interval start events whose incoming dependence pin is dropped
    (the interval becomes a {e sourceless} reader: noninterference still
    keeps writers out of its interior, but its read-from write may change),
    and [~extra_events] materializes additional order variables for
    accesses the log never referenced (they join their thread's order
    chain and participate in no clause, so the solver — and the replay
    gate — can place them).  With both empty the generated system is
    byte-identical to the unrelaxed one.

    {b Pruning.}  Materializing the noninterference disjunction for every
    (reader, writer) pair is quadratic per location and dominates both
    generation and solving at workload scale.  Most pairs are already
    ordered by the {e hard} constraints alone (thread order + recorded flow
    edges): if those entail one disjunct of a clause, every model of the
    hard part satisfies the clause and it can be dropped without changing
    the solution set (see DESIGN.md, "Noninterference pruning").  The
    default generator therefore precomputes, per order variable, a vector
    clock over the hard constraint graph and sweeps each location's
    write-bearing intervals in thread order: for a reader [I] and a writer
    thread [t], the writers hard-ordered before [zstart I] form a prefix of
    [t]'s interval sequence and the writers hard-ordered after [end I] form
    a suffix (both monotone in thread order), so two binary searches find
    the unordered {e gap} and only the gap produces clauses.  Same-thread
    gap writers reduce to unit hard edges ([O(end J) < O(zstart I)], the
    other disjunct being falsified by thread order), and surviving clauses
    are deduplicated.  [generate ~naive:true] keeps the original pairwise
    generator as a differential oracle: the two systems are equisatisfiable
    by construction, which test/test_replay.ml checks on random traces.

    Literals are ordered by the recording observation stamps so the original
    schedule acts as an implicit witness for the DPLL search. *)

open Runtime

type interval = {
  iv_loc : Loc.t;
  start_e : Log.evt;
  end_e : Log.evt;
  writes : bool;
  reads : bool;
  src : Log.evt option option;
      (** [None]: no incoming dependence; [Some None]: virtual init write;
          [Some (Some w)]: recorded write *)
  obs : int;
  src_obs : int;  (** access-clock stamp of the recorded source write, or 0 *)
}

type gen_stats = {
  n_pairs : int;
      (** (reader, writer) pairs subject to noninterference — what the
          naive generator would emit as clauses *)
  n_pruned : int;   (** pairs dropped: one disjunct entailed by hard constraints *)
  n_unit : int;     (** pairs reduced to a hard edge by thread order *)
  n_dedup : int;    (** duplicate clauses dropped *)
  gen_time_s : float;
}

type t = {
  problem : Dlsolver.Idl.problem;
  vars : (Log.evt, int) Hashtbl.t;
  evts : Log.evt array;          (** var index -> event *)
  intervals : interval list;
  n_hard : int;
  n_clauses : int;
  gen_stats : gen_stats;
  hint : int array option;
      (** topological order of the hard constraint DAG — a model of the
          hard atoms, seeding the solver's potentials ([None] on a cyclic
          hard graph, i.e. an unsatisfiable system) *)
}

module LMap = Loc.Map

let intervals_of_log (log : Log.t) : interval list =
  let base =
    List.map
      (fun (d : Log.dep) ->
        {
          iv_loc = d.loc;
          start_e = d.rf;
          end_e = (fst d.rf, d.rl_c);
          writes = false;
          reads = true;
          src = Some d.w;
          obs = d.dep_obs;
          src_obs = d.w_obs;
        })
      log.deps
    @ List.map
        (fun (r : Log.range) ->
          {
            iv_loc = r.loc;
            start_e = (r.rt, r.lo);
            end_e = (r.rt, r.hi);
            writes = r.has_write;
            reads = true;  (* only runs containing reads are recorded *)
            src = (if r.prefix_reads then Some r.w_in else None);
            obs = r.rng_obs;
            src_obs = r.w_obs;
          })
        log.ranges
  in
  (* group by location to materialize referenced writes *)
  let by_loc =
    List.fold_left
      (fun m iv ->
        LMap.update iv.iv_loc
          (fun prev -> Some (iv :: Option.value ~default:[] prev))
          m)
      LMap.empty base
  in
  let singletons =
    LMap.fold
      (fun loc ivs acc ->
        let covered (t, c) =
          List.exists
            (fun iv ->
              fst iv.start_e = t && snd iv.start_e <= c && c <= snd iv.end_e
              && Loc.equal iv.iv_loc loc)
            ivs
        in
        let srcs =
          List.filter_map
            (fun iv ->
              match iv.src with Some (Some w) -> Some (w, iv.src_obs) | _ -> None)
            ivs
        in
        let seen = Hashtbl.create 8 in
        List.fold_left
          (fun acc (w, w_obs) ->
            if Hashtbl.mem seen w || covered w then acc
            else begin
              Hashtbl.add seen w ();
              {
                iv_loc = loc;
                start_e = w;
                end_e = w;
                writes = true;
                reads = false;
                src = None;
                obs = w_obs;  (* the write's own recorded stamp *)
                src_obs = 0;
                }
              :: acc
            end)
          acc srcs)
      by_loc []
  in
  base @ singletons

(* ------------------------------------------------------------------ *)
(* Hard-graph reachability (vector clocks)                             *)
(* ------------------------------------------------------------------ *)

(* [vc.(v * nthreads + slot tid)] is the greatest counter of a tid-event
   known to hard-precede (or be) variable [v].  Since thread order chains
   every variable-bearing event of a thread, [(t, c)] hard-precedes [v] iff
   that entry is >= c (and the events differ).  Computed by one topological
   pass over the hard edges; [None] when the hard graph is cyclic (the
   problem is then unsatisfiable whatever clauses we emit, so pruning
   soundness is moot and the caller emits without pruning). *)
type reach = {
  vc : int array;
  nthreads : int;
  slot_of : (int, int) Hashtbl.t;  (* tid -> slot *)
}

let compute_reach (evts : Log.evt array) (edges : (int * int) list) : reach option =
  let nv = Array.length evts in
  let slot_of = Hashtbl.create 16 in
  Array.iter
    (fun (t, _) ->
      if not (Hashtbl.mem slot_of t) then Hashtbl.add slot_of t (Hashtbl.length slot_of))
    evts;
  let nt = Hashtbl.length slot_of in
  let adj = Array.make nv [] in
  let indeg = Array.make nv 0 in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      indeg.(b) <- indeg.(b) + 1)
    edges;
  let vc = Array.make (nv * nt) min_int in
  let q = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v q) indeg;
  let processed = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    incr processed;
    (* own entry *)
    let t, c = evts.(v) in
    let own = (v * nt) + Hashtbl.find slot_of t in
    if vc.(own) < c then vc.(own) <- c;
    List.iter
      (fun w ->
        for s = 0 to nt - 1 do
          if vc.((w * nt) + s) < vc.((v * nt) + s) then
            vc.((w * nt) + s) <- vc.((v * nt) + s)
        done;
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w q)
      adj.(v)
  done;
  if !processed < nv then None else Some { vc; nthreads = nt; slot_of }

(* Topological order of the hard constraint DAG: the returned array
   strictly increases along every edge, so it is a model of the hard atoms
   and doubles as a potential seed for the solver; [None] on a cycle.
   Ready vertices are released by ascending [prio] (the observation-stamp
   estimate of each event), so the order tracks the recorded schedule
   wherever the hard constraints leave slack — making it a good witness
   for the clauses too, not just the hard part.  Positions are spread by a
   slack factor so that the relaxation cascades triggered by asserting
   clause literals against the seeded potentials die out quickly instead
   of rippling through zero-slack chains. *)
module PQ = Set.Make (struct
  type t = int * int  (* priority, vertex *)

  let compare = compare
end)

let topo_hint (nv : int) (prio : int array) (edges : (int * int) list) :
    int array option =
  let adj = Array.make (max 1 nv) [] in
  let indeg = Array.make (max 1 nv) 0 in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      indeg.(b) <- indeg.(b) + 1)
    edges;
  let hint = Array.make (max 1 nv) 0 in
  let q = ref PQ.empty in
  for v = 0 to nv - 1 do
    if indeg.(v) = 0 then q := PQ.add (prio.(v), v) !q
  done;
  let n = ref 0 in
  while not (PQ.is_empty !q) do
    let ((_, v) as e) = PQ.min_elt !q in
    q := PQ.remove e !q;
    hint.(v) <- 16 * !n;
    incr n;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then q := PQ.add (prio.(w), w) !q)
      adj.(v)
  done;
  if !n < nv then None else Some hint

(* Per-event global-time estimate from the log's access-clock anchors:
   deps stamp their last read and source write, ranges their endpoints and
   feeding write — every event appearing in a constraint atom is stamped
   exactly, so the topological tie-break reconstructs the recorded
   schedule at those events.  Counters between anchors interpolate
   linearly (scaled to keep integer precision) and counters outside the
   sampled span extrapolate by one unit per step. *)
let event_time_estimator (log : Log.t) : Log.evt -> int =
  let scale = 1024 in
  let tbl : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let anchor t c o =
    match Hashtbl.find_opt tbl t with
    | Some l -> l := (c, o) :: !l
    | None -> Hashtbl.add tbl t (ref [ (c, o) ])
  in
  List.iter
    (fun (d : Log.dep) ->
      anchor (fst d.rf) d.rl_c d.dep_obs;
      match d.w with Some (t, c) -> anchor t c d.w_obs | None -> ())
    log.deps;
  List.iter
    (fun (r : Log.range) ->
      anchor r.rt r.hi r.rng_obs;
      anchor r.rt r.lo r.lo_obs;
      match r.w_in with Some (t, c) -> anchor t c r.w_obs | None -> ())
    log.ranges;
  let arrs : (int, (int * int) array) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun t l ->
      let a = Array.of_list (List.sort_uniq compare !l) in
      (* force stamps monotone in the counter (duplicate counters keep the
         later stamp after sort_uniq; noisy stamps are clamped) *)
      for i = 1 to Array.length a - 1 do
        let c, o = a.(i) in
        let _, o' = a.(i - 1) in
        if o < o' then a.(i) <- (c, o')
      done;
      Hashtbl.replace arrs t a)
    tbl;
  fun (t, c) ->
    match Hashtbl.find_opt arrs t with
    | None -> 0
    | Some a ->
      let n = Array.length a in
      (* greatest index with counter <= c *)
      let lo = ref 0 and hi = ref (n - 1) and best = ref (-1) in
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        if fst a.(mid) <= c then (best := mid; lo := mid + 1) else hi := mid - 1
      done;
      if !best < 0 then (snd a.(0) * scale) - (fst a.(0) - c)
      else if !best = n - 1 then (snd a.(n - 1) * scale) + (c - fst a.(n - 1))
      else begin
        let c0, o0 = a.(!best) and c1, o1 = a.(!best + 1) in
        if c = c0 then o0 * scale
        else (o0 * scale) + ((o1 - o0) * scale * (c - c0) / (c1 - c0))
      end

(* greatest counter of a [tid] event hard-preceding (or equal to) var [v];
   [min_int] when reachability is unavailable *)
let reach_entry (r : reach option) (v : int) (tid : int) : int =
  match r with
  | None -> min_int
  | Some r -> (
    match Hashtbl.find_opt r.slot_of tid with
    | None -> min_int
    | Some s -> r.vc.((v * r.nthreads) + s))

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let generate ?(naive = false) ?(free = []) ?(extra_events = []) (log : Log.t) : t =
  let t_start = Sys.time () in
  let intervals = intervals_of_log log in
  (* freed interval starts: their source pin is dropped (exploration) *)
  let freed : (Log.evt, unit) Hashtbl.t = Hashtbl.create (max 4 (List.length free)) in
  List.iter (fun e -> Hashtbl.replace freed e ()) free;
  let eff_src (iv : interval) : Log.evt option option =
    match iv.src with
    | Some _ when Hashtbl.mem freed iv.start_e -> None
    | s -> s
  in
  (* variable per referenced event *)
  let vars : (Log.evt, int) Hashtbl.t = Hashtbl.create 1024 in
  let evts_rev = ref [] in
  let var (e : Log.evt) : int =
    match Hashtbl.find_opt vars e with
    | Some v -> v
    | None ->
      let v = Hashtbl.length vars in
      Hashtbl.add vars e v;
      evts_rev := e :: !evts_rev;
      v
  in
  List.iter
    (fun iv ->
      ignore (var iv.start_e);
      ignore (var iv.end_e);
      match iv.src with Some (Some w) -> ignore (var w) | _ -> ())
    intervals;
  (* exploration events: a variable in the thread-order chain, no clauses *)
  List.iter (fun e -> ignore (var e)) extra_events;
  let evts = Array.of_list (List.rev !evts_rev) in
  let est = event_time_estimator log in
  let prio = Array.map est evts in
  let hard = ref [] in
  let hard_edges = ref [] in  (* (var, var) mirror of [hard], feeds reachability *)
  let add_hard a b =
    hard := Dlsolver.Idl.lt a b :: !hard;
    hard_edges := (a, b) :: !hard_edges
  in
  (* thread order *)
  let by_tid : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (t, c) _ ->
      match Hashtbl.find_opt by_tid t with
      | Some l -> l := c :: !l
      | None -> Hashtbl.add by_tid t (ref [ c ]))
    vars;
  Hashtbl.iter
    (fun t cs ->
      let sorted = List.sort_uniq compare !cs in
      let rec chain = function
        | a :: (b :: _ as rest) ->
          add_hard (var (t, a)) (var (t, b));
          chain rest
        | _ -> ()
      in
      chain sorted)
    by_tid;
  (* dependence edges *)
  let by_loc =
    List.fold_left
      (fun m iv ->
        LMap.update iv.iv_loc (fun p -> Some (iv :: Option.value ~default:[] p)) m)
      LMap.empty intervals
  in
  LMap.iter
    (fun _ ivs ->
      List.iter
        (fun iv ->
          match eff_src iv with
          | Some (Some w) -> add_hard (var w) (var iv.start_e)
          | Some None | None -> ())
        ivs)
    by_loc;
  let clauses = ref [] in
  let n_clause_acc = ref 0 in
  let n_pairs = ref 0 and n_pruned = ref 0 and n_unit = ref 0 and n_dedup = ref 0 in
  let inside (t, c) (j : interval) =
    fst j.start_e = t && snd j.start_e <= c && c <= snd j.end_e
  in
  let emit_clause ~iobs ~jobs lits =
    clauses := (max iobs jobs, lits) :: !clauses;
    incr n_clause_acc
  in
  if naive then
    (* the original pairwise generator, kept as the differential oracle for
       the pruning sweep below *)
    LMap.iter
      (fun _ ivs ->
        let sorted = List.sort (fun a b -> compare a.obs b.obs) ivs in
        List.iter
          (fun i ->
            if i.reads then
              List.iter
                (fun j ->
                  if j != i && j.writes then
                    match eff_src i with
                    | Some None ->
                      (* initial-value reads precede every write on the loc *)
                      add_hard (var i.end_e) (var j.start_e)
                    | Some (Some w) ->
                      if not (inside w j) then begin
                        incr n_pairs;
                        (* the first literal matches the original order when i
                           was observed before j *)
                        let lits =
                          if i.obs <= j.obs then
                            [| Dlsolver.Idl.lt (var i.end_e) (var j.start_e);
                               Dlsolver.Idl.lt (var j.end_e) (var w) |]
                          else
                            [| Dlsolver.Idl.lt (var j.end_e) (var w);
                               Dlsolver.Idl.lt (var i.end_e) (var j.start_e) |]
                        in
                        emit_clause ~iobs:i.obs ~jobs:j.obs lits
                      end
                    | None ->
                      if
                        fst i.start_e <> fst j.start_e
                        && not (Hashtbl.mem freed i.start_e)
                      then begin
                        incr n_pairs;
                        let lits =
                          if i.obs <= j.obs then
                            [| Dlsolver.Idl.lt (var i.end_e) (var j.start_e);
                               Dlsolver.Idl.lt (var j.end_e) (var i.start_e) |]
                          else
                            [| Dlsolver.Idl.lt (var j.end_e) (var i.start_e);
                               Dlsolver.Idl.lt (var i.end_e) (var j.start_e) |]
                        in
                        emit_clause ~iobs:i.obs ~jobs:j.obs lits
                      end
                )
                sorted)
          sorted)
      by_loc
  else begin
    (* ---- pruned sweep ---- *)
    (* per location: write-bearing intervals per thread, in thread order *)
    let writers_of ivs : (int * interval array * int array) list =
      let tbl : (int, interval list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun j ->
          if j.writes then begin
            let t = fst j.start_e in
            match Hashtbl.find_opt tbl t with
            | Some l -> l := j :: !l
            | None -> Hashtbl.add tbl t (ref [ j ])
          end)
        ivs;
      Hashtbl.fold (fun t l acc -> (t, !l) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map (fun (t, l) ->
             let ws =
               Array.of_list
                 (List.sort (fun a b -> compare (snd a.start_e) (snd b.start_e)) l)
             in
             (* running max of end counters: recorded intervals are disjoint
                per thread so ends ascend, but synthetic logs may nest them —
                pruning against the prefix max stays sound either way *)
             let pmax = Array.make (Array.length ws) min_int in
             let acc = ref min_int in
             Array.iteri
               (fun k j ->
                 if snd j.end_e > !acc then acc := snd j.end_e;
                 pmax.(k) <- !acc)
               ws;
             (t, ws, pmax))
    in
    (* compressed initial-value constraints: one edge to the first write
       interval of each thread; thread order entails the edges to the rest *)
    LMap.iter
      (fun _ ivs ->
        let writers = writers_of ivs in
        List.iter
          (fun i ->
            if i.reads && eff_src i = Some None then
              List.iter
                (fun (_, ws, _) ->
                  (* first writer that is not the reader itself: the edge to
                     it entails (with thread order) the edges to every later
                     writer of the thread, which is all the naive generator
                     emits for them *)
                  let k = ref 0 in
                  while !k < Array.length ws && ws.(!k) == i do incr k done;
                  if !k < Array.length ws then
                    add_hard (var i.end_e) (var ws.(!k).start_e))
                writers)
          ivs)
      by_loc;
    (* reachability over the hard constraints accumulated so far; hard
       edges added later (unit reductions) only make pruning conservative *)
    let reach = compute_reach evts !hard_edges in
    let seen_clause : (int * int * int * int, unit) Hashtbl.t = Hashtbl.create 4096 in
    let seen_unit : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
    (* binary searches over a writer array [ws] (thread order) *)
    let prefix_count (pmax : int array) (bound : int) =
      (* #writers whose end counter (and every earlier one's) is <= bound,
         so their zone exit is implied by thread order *)
      let lo = ref 0 and hi = ref (Array.length pmax) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if pmax.(mid) <= bound then lo := mid + 1 else hi := mid
      done;
      !lo
    and suffix_start (ws : interval array) ~(t1 : int) ~(c_end_i : int) =
      (* first writer whose start is implied after end_e of the reader *)
      let lo = ref 0 and hi = ref (Array.length ws) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if reach_entry reach (var ws.(mid).start_e) t1 >= c_end_i then hi := mid
        else lo := mid + 1
      done;
      !lo
    in
    LMap.iter
      (fun _ ivs ->
        let writers = writers_of ivs in
        List.iter
          (fun i ->
            (* a freed interval is fully unpinned: its reads no longer claim
               a consistent source, so it emits no reader-side interference
               (it still interferes as a writer with other intervals'
               zones) *)
            if
              i.reads
              && eff_src i <> Some None
              && not (Hashtbl.mem freed i.start_e)
            then begin
              let t1 = fst i.start_e in
              let c_end_i = snd i.end_e in
              let zstart_e, w_opt =
                match eff_src i with
                | Some (Some w) -> (w, Some w)
                | _ -> (i.start_e, None)
              in
              let v_zstart = var zstart_e in
              List.iter
                (fun (t2, ws, pmax) ->
                  if not (w_opt = None && t2 = t1) then begin
                    let m = Array.length ws in
                    (* candidate pairs the naive generator would emit *)
                    let cands =
                      let self = if i.writes && t2 = t1 then 1 else 0 in
                      let w_inside =
                        match w_opt with
                        | Some w when fst w = t2 ->
                          if Array.exists (fun j -> inside w j) ws then 1 else 0
                        | _ -> 0
                      in
                      m - self - w_inside
                    in
                    n_pairs := !n_pairs + cands;
                    let pfx = prefix_count pmax (reach_entry reach v_zstart t2) in
                    let sfx = ref (suffix_start ws ~t1 ~c_end_i) in
                    (* a writer starting at the reader's own end event (same
                       (t, c) — possible in synthetic logs with nested
                       intervals) reaches [end I] by the "or be" case of the
                       vector clock, but O(end I) < O(start J) is then false
                       rather than entailed: keep such boundary writers in
                       the emission window *)
                    while !sfx < m && ws.(!sfx).start_e = i.end_e do incr sfx done;
                    let sfx = !sfx in
                    let handled = ref 0 in
                    for jx = pfx to sfx - 1 do
                      let j = ws.(jx) in
                      let skip =
                        j == i
                        || match w_opt with Some w -> inside w j | None -> false
                      in
                      if not skip then begin
                        incr handled;
                        match w_opt with
                        | Some w
                          when t2 = t1 && snd j.end_e < snd i.start_e ->
                          (* thread order falsifies O(end i) < O(start j):
                             the clause reduces to the unit O(end j) < O(w) *)
                          let key = (var j.end_e, var w) in
                          if not (Hashtbl.mem seen_unit key) then begin
                            Hashtbl.add seen_unit key ();
                            add_hard (var j.end_e) (var w)
                          end;
                          incr n_unit
                        | _ ->
                          let v_zs = match w_opt with Some w -> var w | None -> v_zstart in
                          let a1 = Dlsolver.Idl.lt (var i.end_e) (var j.start_e) in
                          let a2 = Dlsolver.Idl.lt (var j.end_e) v_zs in
                          let key =
                            if (a1.u, a1.v) <= (a2.u, a2.v) then (a1.u, a1.v, a2.u, a2.v)
                            else (a2.u, a2.v, a1.u, a1.v)
                          in
                          if Hashtbl.mem seen_clause key then incr n_dedup
                          else begin
                            Hashtbl.add seen_clause key ();
                            let lits =
                              if i.obs <= j.obs then [| a1; a2 |] else [| a2; a1 |]
                            in
                            emit_clause ~iobs:i.obs ~jobs:j.obs lits
                          end
                      end
                    done;
                    n_pruned := !n_pruned + (cands - !handled)
                  end)
                writers
            end)
          ivs)
      by_loc
  end;
  let clause_arr =
    List.sort (fun (o1, _) (o2, _) -> compare o1 o2) !clauses
    |> List.map snd |> Array.of_list
  in
  let hint = topo_hint (Array.length evts) prio !hard_edges in
  (* Literal ordering: the hint is a model of the hard atoms that tracks
     the recorded schedule; placing a hint-true literal first makes the
     solver's first descent assert a set of literals that the hint itself
     satisfies — conflicts can only come from clauses whose both literals
     the hint falsifies.  The observation-stamp order chosen at emission
     stays as the tie-break. *)
  (match hint with
  | Some h ->
    let truth (a : Dlsolver.Idl.atom) = h.(a.u) - h.(a.v) <= a.k in
    Array.iteri
      (fun i cl ->
        if Array.length cl = 2 && (not (truth cl.(0))) && truth cl.(1) then
          clause_arr.(i) <- [| cl.(1); cl.(0) |])
      clause_arr
  | None -> ());
  let problem =
    { Dlsolver.Idl.nvars = Hashtbl.length vars; hard = List.rev !hard; clauses = clause_arr }
  in
  {
    problem;
    vars;
    evts;
    intervals;
    n_hard = List.length problem.hard;
    n_clauses = Array.length clause_arr;
    hint;
    gen_stats =
      {
        n_pairs = !n_pairs;
        n_pruned = !n_pruned;
        n_unit = !n_unit;
        n_dedup = !n_dedup;
        gen_time_s = Sys.time () -. t_start;
      };
  }
