(** The Light recording: what survives the original run.

    An access is identified by [(tid, c)] — thread id and the thread-local
    counter value [D(t)] (Section 2.3).  Two record kinds exist:

    - {!dep}: a flow dependence [w -> r] (Definition 3.1), compressed over
      the common write-then-many-reads-by-one-thread idiom via the [prec]
      map of Algorithm 1 (lines 7/9): [rl_c] is the counter of the *last*
      read of the same write by the reading thread, so the offline phase can
      materialize the implicit dependences.  [w = None] denotes a read of
      the location's initial (allocation-time) value, modeled as a flow
      dependence on a virtual initialization write that precedes every other
      write to the location.

    - {!range}: an O1 record (Lemma 4.3): a maximal sequence of consecutive
      accesses to one location by one thread with no interleaving access to
      that location.  Only the endpoints are recorded; interior dependences
      are re-inferred from thread-local order.  [w_in] feeds the reads that
      precede the range's first own write (if any).

    Space is accounted in the paper's unit (long integers), with records
    grouped per location as Leap's vectors are (location id amortized):
    dep = w + rf (2) + 1 when the span is non-trivial;
    range = lo + hi + w_in (3);
    syscall = 2.  [*_obs] fields are global access-clock stamps (the index
    of the access in the recorded run) used only as a solver heuristic: they
    let the offline phase reconstruct the recorded schedule as a search
    witness, which Z3's internal heuristics approximate for the paper's
    prototype — so they are not charged. *)

open Runtime

type evt = int * int  (** (tid, counter) *)

let evt_compare : evt -> evt -> int = compare
let pp_evt fmt ((t, c) : evt) = Fmt.pf fmt "(%d,%d)" t c

type dep = {
  loc : Loc.t;
  w : evt option;  (** [None]: virtual initialization write *)
  rf : evt;        (** first read of this write by the reading thread *)
  rl_c : int;      (** counter of the last such read (>= snd rf) *)
  dep_obs : int;   (** access-clock stamp of the last read *)
  w_obs : int;     (** access-clock stamp of [w] (0 for the virtual write) *)
}

type range = {
  loc : Loc.t;
  rt : int;        (** thread owning the run *)
  lo : int;        (** counter of the first access *)
  hi : int;        (** counter of the last access *)
  w_in : evt option;  (** write feeding the prefix reads; [None] = initial value *)
  prefix_reads : bool;  (** the run begins with reads (before any own write) *)
  has_write : bool;
  rng_obs : int;  (** access-clock stamp of the last access *)
  lo_obs : int;   (** access-clock stamp of the first access *)
  w_obs : int;    (** access-clock stamp of [w_in] (0 when absent) *)
}

type t = {
  deps : dep list;
  ranges : range list;
  syscalls : (int * int * string * Value.t) list;  (** tid, idx, name, value *)
  counters : (int * int) list;  (** final D(t) per thread *)
  o1 : bool;
  o2 : bool;
}

let empty = { deps = []; ranges = []; syscalls = []; counters = []; o1 = false; o2 = false }

(* ------------------------------------------------------------------ *)
(* Space accounting (long-integer units, Section 5.2)                   *)
(* ------------------------------------------------------------------ *)

(* Records are stored grouped by location (as Leap's per-location vectors
   are), so the location id is amortized and not counted per record —
   consistent with counting Leap at one long per access. *)
let dep_longs (d : dep) : int = 2 + if d.rl_c > snd d.rf then 1 else 0
let range_longs (_ : range) : int = 3

let space_longs (l : t) : int =
  List.fold_left (fun acc d -> acc + dep_longs d) 0 l.deps
  + List.fold_left (fun acc r -> acc + range_longs r) 0 l.ranges
  + (2 * List.length l.syscalls)

let num_records (l : t) : int = List.length l.deps + List.length l.ranges

(* ------------------------------------------------------------------ *)
(* Serialization (line-oriented text; used by the CLI)                  *)
(* ------------------------------------------------------------------ *)

(* The writer emits integers digit-by-digit into the output buffer and the
   reader scans tokens in place with a cursor — neither side allocates an
   intermediate string per line or per field (the seed used a
   [Printf.sprintf] per line and a [String.split_on_char] per line and per
   event).  Both formats are byte-identical to the seed's. *)

(* decimal writer; no scratch buffer so it is safe across engine domains *)
let rec add_pos (buf : Buffer.t) (n : int) : unit =
  if n >= 10 then add_pos buf (n / 10);
  Buffer.add_char buf (Char.unsafe_chr (48 + (n mod 10)))

let add_int (buf : Buffer.t) (n : int) : unit =
  if n >= 0 then add_pos buf n
  else if n = min_int then Buffer.add_string buf (string_of_int n)
  else begin
    Buffer.add_char buf '-';
    add_pos buf (-n)
  end

let add_bool (buf : Buffer.t) (b : bool) : unit =
  Buffer.add_string buf (if b then "true" else "false")

let add_evt (buf : Buffer.t) (e : evt option) : unit =
  match e with
  | None -> Buffer.add_char buf '-'
  | Some (t, c) ->
    add_int buf t;
    Buffer.add_char buf ':';
    add_int buf c

let evt_str (e : evt option) : string =
  let buf = Buffer.create 16 in
  add_evt buf e;
  Buffer.contents buf

(* field names may contain arbitrary map-key strings; percent-encode the
   characters that would break the line format *)
let add_enc_field (buf : Buffer.t) (f : string) : unit =
  let hex = "0123456789abcdef" in
  String.iter
    (fun c ->
      if c = ' ' || c = '%' || c = '\n' then begin
        Buffer.add_char buf '%';
        Buffer.add_char buf hex.[Char.code c lsr 4];
        Buffer.add_char buf hex.[Char.code c land 15]
      end
      else Buffer.add_char buf c)
    f

let enc_field (f : string) : string =
  let buf = Buffer.create (String.length f) in
  add_enc_field buf f;
  Buffer.contents buf

(* decode the %-escapes of [s.[st .. st+len-1]] *)
let dec_field_sub (s : string) (st : int) (len : int) : string =
  let buf = Buffer.create len in
  let i = ref st in
  let n = st + len in
  while !i < n do
    if s.[!i] = '%' && !i + 2 < n then begin
      Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
      i := !i + 3
    end
    else (Buffer.add_char buf s.[!i]; incr i)
  done;
  Buffer.contents buf

let dec_field (s : string) : string = dec_field_sub s 0 (String.length s)

let evt_of_string s : evt option =
  if s = "-" then None
  else match String.split_on_char ':' s with
    | [ a; b ] -> Some (int_of_string a, int_of_string b)
    | _ -> failwith ("bad event: " ^ s)

(* v2 spells the field by name; v3 ships the intern table once in the header
   (F lines) and writes integer field ids in events.  Array-element ids
   (negative, arithmetic encoding) are process-independent and appear
   verbatim; interned ids (>= 0) are remapped through the F table on load,
   since intern ids are only meaningful within one process. *)

let add_loc_v2 (buf : Buffer.t) (l : Loc.t) : unit =
  add_int buf l.obj;
  Buffer.add_char buf '/';
  add_enc_field buf (Loc.fld_name l.fld)

let add_loc_v3 (buf : Buffer.t) (l : Loc.t) : unit =
  add_int buf l.obj;
  Buffer.add_char buf '/';
  add_int buf l.fld

let value_str (v : Value.t) =
  match v with
  | VInt n -> "i" ^ string_of_int n
  | VBool b -> "b" ^ string_of_bool b
  | VNull -> "n"
  | VRef o -> "r" ^ string_of_int o
  | VStr s -> "s" ^ enc_field s
  | VThread t -> "t" ^ string_of_int t

let value_of_string s : Value.t =
  if s = "n" then VNull
  else if s = "" then failwith "bad value: "
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'i' -> VInt (int_of_string body)
    | 'b' -> VBool (bool_of_string body)
    | 'r' -> VRef (int_of_string body)
    | 's' -> VStr (dec_field body)
    | 't' -> VThread (int_of_string body)
    | _ -> failwith ("bad value: " ^ s)

let body_add ~(add_loc : Buffer.t -> Loc.t -> unit) (l : t) (buf : Buffer.t) :
    unit =
  let sp () = Buffer.add_char buf ' ' in
  let nl () = Buffer.add_char buf '\n' in
  List.iter
    (fun (t, c) ->
      Buffer.add_string buf "T ";
      add_int buf t;
      sp ();
      add_int buf c;
      nl ())
    l.counters;
  List.iter
    (fun (d : dep) ->
      Buffer.add_string buf "D ";
      add_loc buf d.loc;
      sp ();
      add_evt buf d.w;
      sp ();
      let rf_t, rf_c = d.rf in
      add_int buf rf_t;
      Buffer.add_char buf ':';
      add_int buf rf_c;
      sp ();
      add_int buf d.rl_c;
      sp ();
      add_int buf d.dep_obs;
      sp ();
      add_int buf d.w_obs;
      nl ())
    l.deps;
  List.iter
    (fun (r : range) ->
      Buffer.add_string buf "R ";
      add_loc buf r.loc;
      sp ();
      add_int buf r.rt;
      sp ();
      add_int buf r.lo;
      sp ();
      add_int buf r.hi;
      sp ();
      add_evt buf r.w_in;
      sp ();
      add_bool buf r.prefix_reads;
      sp ();
      add_bool buf r.has_write;
      sp ();
      add_int buf r.rng_obs;
      sp ();
      add_int buf r.lo_obs;
      sp ();
      add_int buf r.w_obs;
      nl ())
    l.ranges;
  List.iter
    (fun (t, i, n, v) ->
      Buffer.add_string buf "S ";
      add_int buf t;
      sp ();
      add_int buf i;
      sp ();
      Buffer.add_string buf n;
      sp ();
      Buffer.add_string buf (value_str v);
      nl ())
    l.syscalls

let add_header (buf : Buffer.t) ~(version : int) (l : t) : unit =
  Buffer.add_string buf "light-log v";
  add_int buf version;
  Buffer.add_string buf " o1=";
  add_bool buf l.o1;
  Buffer.add_string buf " o2=";
  add_bool buf l.o2;
  Buffer.add_char buf '\n'

(** Current (v3) serialization: the intern table is stored once as F lines
    in the header, events carry integer field ids. *)
let to_string (l : t) : string =
  let buf = Buffer.create 4096 in
  add_header buf ~version:3 l;
  (* the intern-table header: every named (non-element) field id in use *)
  let seen = Hashtbl.create 16 in
  let note (loc : Loc.t) =
    if loc.fld >= 0 && not (Hashtbl.mem seen loc.fld) then begin
      Hashtbl.add seen loc.fld ();
      Buffer.add_string buf "F ";
      add_int buf loc.fld;
      Buffer.add_char buf ' ';
      add_enc_field buf (Loc.fld_name loc.fld);
      Buffer.add_char buf '\n'
    end
  in
  List.iter (fun (d : dep) -> note d.loc) l.deps;
  List.iter (fun (r : range) -> note r.loc) l.ranges;
  body_add ~add_loc:add_loc_v3 l buf;
  Buffer.contents buf

(** Legacy (v2) serialization: fields spelled by name in every event.  Kept
    so fixtures and older tooling can still produce/read the old format. *)
let to_string_v2 (l : t) : string =
  let buf = Buffer.create 4096 in
  add_header buf ~version:2 l;
  body_add ~add_loc:add_loc_v2 l buf;
  Buffer.contents buf

(** Reads both v3 (intern-table header, integer field ids) and legacy v2
    (field names in events) logs; either way, locations come back keyed by
    this process's intern ids.  The parser is a single in-place scan: a
    cursor walks the string and every integer, event, and location is
    decoded straight out of the input bytes; the only substrings taken are
    the decoded field-name / syscall payloads themselves. *)
let of_string (s : string) : t =
  let n = String.length s in
  let hstart = ref 0 in
  while !hstart < n && s.[!hstart] = '\n' do incr hstart done;
  if !hstart >= n then failwith "empty log";
  let hdr_end =
    match String.index_from_opt s !hstart '\n' with Some i -> i | None -> n
  in
  let header = String.sub s !hstart (hdr_end - !hstart) in
  let v3 =
    if String.length header >= 12 && String.sub header 0 12 = "light-log v3" then true
    else if String.length header >= 12 && String.sub header 0 12 = "light-log v2" then false
    else failwith ("bad log header: " ^ header)
  in
  let o1 = ref false and o2 = ref false in
  Scanf.sscanf header "light-log v%_d o1=%B o2=%B" (fun a b -> o1 := a; o2 := b);
  (* v3: file-local intern ids -> this process's ids *)
  let fmap : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let deps = ref [] and ranges = ref [] and sys = ref [] and counters = ref [] in
  let pos = ref (if hdr_end < n then hdr_end + 1 else n) in
  while !pos < n do
    if s.[!pos] = '\n' then incr pos
    else begin
      let bol = !pos in
      let eol = match String.index_from_opt s bol '\n' with Some e -> e | None -> n in
      let bad () = failwith ("bad log line: " ^ String.sub s bol (eol - bol)) in
      let p = ref bol in
      (* tokens are space-delimited within [bol, eol) *)
      let next_tok () : int * int =
        if !p >= eol then bad ();
        let st = !p in
        while !p < eol && s.[!p] <> ' ' do incr p done;
        let len = !p - st in
        if !p < eol then incr p;  (* skip the delimiter *)
        (st, len)
      in
      let int_sub (st : int) (len : int) : int =
        if len = 0 then bad ();
        let neg = s.[st] = '-' in
        let i0 = if neg then st + 1 else st in
        if i0 >= st + len then bad ();
        let v = ref 0 in
        for k = i0 to st + len - 1 do
          let d = Char.code (String.unsafe_get s k) - 48 in
          if d < 0 || d > 9 then bad ();
          v := (!v * 10) + d
        done;
        if neg then - !v else !v
      in
      let int_tok () : int =
        let st, len = next_tok () in
        int_sub st len
      in
      let evt_tok () : evt option =
        let st, len = next_tok () in
        if len = 1 && s.[st] = '-' then None
        else begin
          let colon = ref (-1) in
          for k = st to st + len - 1 do
            if !colon < 0 && s.[k] = ':' then colon := k
          done;
          if !colon < 0 then failwith ("bad event: " ^ String.sub s st len);
          Some (int_sub st (!colon - st), int_sub (!colon + 1) (st + len - !colon - 1))
        end
      in
      let bool_tok () : bool =
        let st, len = next_tok () in
        if len = 4 && s.[st] = 't' && s.[st + 1] = 'r' && s.[st + 2] = 'u' && s.[st + 3] = 'e'
        then true
        else if
          len = 5 && s.[st] = 'f' && s.[st + 1] = 'a' && s.[st + 2] = 'l'
          && s.[st + 3] = 's' && s.[st + 4] = 'e'
        then false
        else bad ()
      in
      let loc_tok () : Loc.t =
        let st, len = next_tok () in
        let slash = ref (-1) in
        for k = st to st + len - 1 do
          if !slash < 0 && s.[k] = '/' then slash := k
        done;
        if !slash < 0 then failwith ("bad location: " ^ String.sub s st len);
        let obj = int_sub st (!slash - st) in
        let fst = !slash + 1 and flen = st + len - !slash - 1 in
        if v3 then begin
          let fld = int_sub fst flen in
          if fld < 0 then { Loc.obj; fld }
          else
            match Hashtbl.find_opt fmap fld with
            | Some fld -> { Loc.obj; fld }
            | None ->
              failwith
                (Printf.sprintf "bad location (field id %d not in intern table): %s" fld
                   (String.sub s st len))
        end
        else { Loc.obj; fld = Loc.fld_of_name (dec_field_sub s fst flen) }
      in
      let eod () = if !p <> eol then bad () in
      let tag_st, tag_len = next_tok () in
      if tag_len <> 1 then bad ();
      (match s.[tag_st] with
      | 'F' when v3 ->
        let id = int_tok () in
        let nst, nlen = next_tok () in
        eod ();
        Hashtbl.replace fmap id (Loc.fld_of_name (dec_field_sub s nst nlen))
      | 'T' ->
        let t = int_tok () in
        let c = int_tok () in
        eod ();
        counters := (t, c) :: !counters
      | 'D' ->
        let loc = loc_tok () in
        let w = evt_tok () in
        let rf = match evt_tok () with Some e -> e | None -> bad () in
        let rl_c = int_tok () in
        let dep_obs = int_tok () in
        let w_obs = int_tok () in
        eod ();
        deps := { loc; w; rf; rl_c; dep_obs; w_obs } :: !deps
      | 'R' ->
        let loc = loc_tok () in
        let rt = int_tok () in
        let lo = int_tok () in
        let hi = int_tok () in
        let w_in = evt_tok () in
        let prefix_reads = bool_tok () in
        let has_write = bool_tok () in
        let rng_obs = int_tok () in
        let lo_obs = int_tok () in
        let w_obs = int_tok () in
        eod ();
        ranges :=
          { loc; rt; lo; hi; w_in; prefix_reads; has_write; rng_obs; lo_obs; w_obs }
          :: !ranges
      | 'S' ->
        let t = int_tok () in
        let i = int_tok () in
        let nst, nlen = next_tok () in
        let vst, vlen = next_tok () in
        eod ();
        sys := (t, i, String.sub s nst nlen, value_of_string (String.sub s vst vlen)) :: !sys
      | _ -> bad ());
      pos := eol
    end
  done;
  {
    deps = List.rev !deps;
    ranges = List.rev !ranges;
    syscalls = List.rev !sys;
    counters = List.rev !counters;
    o1 = !o1;
    o2 = !o2;
  }
