(** The Light recording: what survives the original run.

    An access is identified by [(tid, c)] — thread id and the thread-local
    counter value [D(t)] (Section 2.3).  Two record kinds exist:

    - {!dep}: a flow dependence [w -> r] (Definition 3.1), compressed over
      the common write-then-many-reads-by-one-thread idiom via the [prec]
      map of Algorithm 1 (lines 7/9): [rl_c] is the counter of the *last*
      read of the same write by the reading thread, so the offline phase can
      materialize the implicit dependences.  [w = None] denotes a read of
      the location's initial (allocation-time) value, modeled as a flow
      dependence on a virtual initialization write that precedes every other
      write to the location.

    - {!range}: an O1 record (Lemma 4.3): a maximal sequence of consecutive
      accesses to one location by one thread with no interleaving access to
      that location.  Only the endpoints are recorded; interior dependences
      are re-inferred from thread-local order.  [w_in] feeds the reads that
      precede the range's first own write (if any).

    Space is accounted in the paper's unit (long integers), with records
    grouped per location as Leap's vectors are (location id amortized):
    dep = w + rf (2) + 1 when the span is non-trivial;
    range = lo + hi + w_in (3);
    syscall = 2.  [*_obs] fields are global access-clock stamps (the index
    of the access in the recorded run) used only as a solver heuristic: they
    let the offline phase reconstruct the recorded schedule as a search
    witness, which Z3's internal heuristics approximate for the paper's
    prototype — so they are not charged. *)

open Runtime

type evt = int * int  (** (tid, counter) *)

let evt_compare : evt -> evt -> int = compare
let pp_evt fmt ((t, c) : evt) = Fmt.pf fmt "(%d,%d)" t c

type dep = {
  loc : Loc.t;
  w : evt option;  (** [None]: virtual initialization write *)
  rf : evt;        (** first read of this write by the reading thread *)
  rl_c : int;      (** counter of the last such read (>= snd rf) *)
  dep_obs : int;   (** access-clock stamp of the last read *)
  w_obs : int;     (** access-clock stamp of [w] (0 for the virtual write) *)
}

type range = {
  loc : Loc.t;
  rt : int;        (** thread owning the run *)
  lo : int;        (** counter of the first access *)
  hi : int;        (** counter of the last access *)
  w_in : evt option;  (** write feeding the prefix reads; [None] = initial value *)
  prefix_reads : bool;  (** the run begins with reads (before any own write) *)
  has_write : bool;
  rng_obs : int;  (** access-clock stamp of the last access *)
  lo_obs : int;   (** access-clock stamp of the first access *)
  w_obs : int;    (** access-clock stamp of [w_in] (0 when absent) *)
}

type t = {
  deps : dep list;
  ranges : range list;
  syscalls : (int * int * string * Value.t) list;  (** tid, idx, name, value *)
  counters : (int * int) list;  (** final D(t) per thread *)
  o1 : bool;
  o2 : bool;
}

let empty = { deps = []; ranges = []; syscalls = []; counters = []; o1 = false; o2 = false }

(* ------------------------------------------------------------------ *)
(* Space accounting (long-integer units, Section 5.2)                   *)
(* ------------------------------------------------------------------ *)

(* Records are stored grouped by location (as Leap's per-location vectors
   are), so the location id is amortized and not counted per record —
   consistent with counting Leap at one long per access. *)
let dep_longs (d : dep) : int = 2 + if d.rl_c > snd d.rf then 1 else 0
let range_longs (_ : range) : int = 3

let space_longs (l : t) : int =
  List.fold_left (fun acc d -> acc + dep_longs d) 0 l.deps
  + List.fold_left (fun acc r -> acc + range_longs r) 0 l.ranges
  + (2 * List.length l.syscalls)

let num_records (l : t) : int = List.length l.deps + List.length l.ranges

(* ------------------------------------------------------------------ *)
(* Serialization (line-oriented text; used by the CLI)                  *)
(* ------------------------------------------------------------------ *)

let evt_str = function None -> "-" | Some (t, c) -> Printf.sprintf "%d:%d" t c

let evt_of_string s : evt option =
  if s = "-" then None
  else match String.split_on_char ':' s with
    | [ a; b ] -> Some (int_of_string a, int_of_string b)
    | _ -> failwith ("bad event: " ^ s)

(* field names may contain arbitrary map-key strings; percent-encode the
   characters that would break the line format *)
let enc_field (f : string) : string =
  let buf = Buffer.create (String.length f) in
  String.iter
    (fun c ->
      if c = ' ' || c = '%' || c = '\n' then Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      else Buffer.add_char buf c)
    f;
  Buffer.contents buf

let dec_field (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if s.[!i] = '%' && !i + 2 < n then begin
      Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
      i := !i + 3
    end
    else (Buffer.add_char buf s.[!i]; incr i)
  done;
  Buffer.contents buf

(* v2 spells the field by name; v3 ships the intern table once in the header
   (F lines) and writes integer field ids in events.  Array-element ids
   (negative, arithmetic encoding) are process-independent and appear
   verbatim; interned ids (>= 0) are remapped through the F table on load,
   since intern ids are only meaningful within one process. *)

let loc_str_v2 (l : Loc.t) = Printf.sprintf "%d/%s" l.obj (enc_field (Loc.fld_name l.fld))

let loc_of_string_v2 s : Loc.t =
  match String.index_opt s '/' with
  | Some i ->
    { obj = int_of_string (String.sub s 0 i);
      fld = Loc.fld_of_name (dec_field (String.sub s (i + 1) (String.length s - i - 1))) }
  | None -> failwith ("bad location: " ^ s)

let loc_str_v3 (l : Loc.t) = Printf.sprintf "%d/%d" l.obj l.fld

let loc_of_string_v3 (fmap : (int, int) Hashtbl.t) s : Loc.t =
  match String.index_opt s '/' with
  | Some i ->
    let obj = int_of_string (String.sub s 0 i) in
    let fld = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    if fld < 0 then { obj; fld }
    else (
      match Hashtbl.find_opt fmap fld with
      | Some fld -> { obj; fld }
      | None -> failwith (Printf.sprintf "bad location (field id %d not in intern table): %s" fld s))
  | None -> failwith ("bad location: " ^ s)

let value_str (v : Value.t) =
  match v with
  | VInt n -> "i" ^ string_of_int n
  | VBool b -> "b" ^ string_of_bool b
  | VNull -> "n"
  | VRef o -> "r" ^ string_of_int o
  | VStr s -> "s" ^ enc_field s
  | VThread t -> "t" ^ string_of_int t

let value_of_string s : Value.t =
  if s = "n" then VNull
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'i' -> VInt (int_of_string body)
    | 'b' -> VBool (bool_of_string body)
    | 'r' -> VRef (int_of_string body)
    | 's' -> VStr (dec_field body)
    | 't' -> VThread (int_of_string body)
    | _ -> failwith ("bad value: " ^ s)

let body_lines ~(loc_str : Loc.t -> string) (l : t) line : unit =
  List.iter (fun (t, c) -> line (Printf.sprintf "T %d %d" t c)) l.counters;
  List.iter
    (fun (d : dep) ->
      line
        (Printf.sprintf "D %s %s %s %d %d %d" (loc_str d.loc) (evt_str d.w)
           (evt_str (Some d.rf)) d.rl_c d.dep_obs d.w_obs))
    l.deps;
  List.iter
    (fun (r : range) ->
      line
        (Printf.sprintf "R %s %d %d %d %s %b %b %d %d %d" (loc_str r.loc) r.rt r.lo r.hi
           (evt_str r.w_in) r.prefix_reads r.has_write r.rng_obs r.lo_obs r.w_obs))
    l.ranges;
  List.iter (fun (t, i, n, v) -> line (Printf.sprintf "S %d %d %s %s" t i n (value_str v)))
    l.syscalls

(** Current (v3) serialization: the intern table is stored once as F lines
    in the header, events carry integer field ids. *)
let to_string (l : t) : string =
  let buf = Buffer.create 4096 in
  let line s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  line (Printf.sprintf "light-log v3 o1=%b o2=%b" l.o1 l.o2);
  (* the intern-table header: every named (non-element) field id in use *)
  let seen = Hashtbl.create 16 in
  let note (loc : Loc.t) =
    if loc.fld >= 0 && not (Hashtbl.mem seen loc.fld) then begin
      Hashtbl.add seen loc.fld ();
      line (Printf.sprintf "F %d %s" loc.fld (enc_field (Loc.fld_name loc.fld)))
    end
  in
  List.iter (fun (d : dep) -> note d.loc) l.deps;
  List.iter (fun (r : range) -> note r.loc) l.ranges;
  body_lines ~loc_str:loc_str_v3 l line;
  Buffer.contents buf

(** Legacy (v2) serialization: fields spelled by name in every event.  Kept
    so fixtures and older tooling can still produce/read the old format. *)
let to_string_v2 (l : t) : string =
  let buf = Buffer.create 4096 in
  let line s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  line (Printf.sprintf "light-log v2 o1=%b o2=%b" l.o1 l.o2);
  body_lines ~loc_str:loc_str_v2 l line;
  Buffer.contents buf

(** Reads both v3 (intern-table header, integer field ids) and legacy v2
    (field names in events) logs; either way, locations come back keyed by
    this process's intern ids. *)
let of_string (s : string) : t =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  match lines with
  | [] -> failwith "empty log"
  | header :: rest ->
    let o1 = ref false and o2 = ref false in
    let v3 =
      if String.length header >= 12 && String.sub header 0 12 = "light-log v3" then true
      else if String.length header >= 12 && String.sub header 0 12 = "light-log v2" then false
      else failwith ("bad log header: " ^ header)
    in
    Scanf.sscanf header "light-log v%_d o1=%B o2=%B" (fun a b -> o1 := a; o2 := b);
    (* v3: file-local intern ids -> this process's ids *)
    let fmap : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let loc_of = if v3 then loc_of_string_v3 fmap else loc_of_string_v2 in
    let deps = ref [] and ranges = ref [] and sys = ref [] and counters = ref [] in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | "F" :: id :: name :: [] when v3 ->
          Hashtbl.replace fmap (int_of_string id) (Loc.fld_of_name (dec_field name))
        | "T" :: t :: c :: [] -> counters := (int_of_string t, int_of_string c) :: !counters
        | "D" :: loc :: w :: rf :: rl :: obs :: wobs :: [] ->
          deps :=
            {
              loc = loc_of loc;
              w = evt_of_string w;
              rf = Option.get (evt_of_string rf);
              rl_c = int_of_string rl;
              dep_obs = int_of_string obs;
              w_obs = int_of_string wobs;
            }
            :: !deps
        | "R" :: loc :: rt :: lo :: hi :: w_in :: pr :: hw :: obs :: loobs :: wobs :: [] ->
          ranges :=
            {
              loc = loc_of loc;
              rt = int_of_string rt;
              lo = int_of_string lo;
              hi = int_of_string hi;
              w_in = evt_of_string w_in;
              prefix_reads = bool_of_string pr;
              has_write = bool_of_string hw;
              rng_obs = int_of_string obs;
              lo_obs = int_of_string loobs;
              w_obs = int_of_string wobs;
            }
            :: !ranges
        | "S" :: t :: i :: n :: v :: [] ->
          sys := (int_of_string t, int_of_string i, n, value_of_string v) :: !sys
        | _ -> failwith ("bad log line: " ^ line))
      rest;
    {
      deps = List.rev !deps;
      ranges = List.rev !ranges;
      syscalls = List.rev !sys;
      counters = List.rev !counters;
      o1 = !o1;
      o2 = !o2;
    }
