(** Light: record/replay via tightly bounded recording — the public API.

    A {e recording} runs the program once under a nondeterministic
    scheduler with the Light recorder installed (Algorithm 1 plus the O1/O2
    optimizations, per the chosen {!variant}), capturing flow dependences,
    nondeterministic system-call values, and the Theorem-1 observables of
    the run.  {!replay} generates the Equation-1 constraint system, solves
    it with the difference-logic engine, re-executes the program under the
    solved schedule, and checks the determinism oracle.

    {[
      let p = Lang.Parser.parse_file "prog.cl" in
      let r = Light.record ~sched:(Runtime.Sched.random ~seed:7) p in
      match Light.replay r with
      | Ok rr when rr.faithful = [] -> print_endline "deterministic replay"
      | Ok rr -> List.iter print_endline rr.faithful
      | Error e -> prerr_endline e
    ]} *)

open Runtime

type variant = Recorder.variant = { o1 : bool; o2 : bool }

(** Algorithm 1 only (with its prec compression). *)
val v_basic : variant

(** Plus Lemma 4.3: non-interleaved sequence records. *)
val v_o1 : variant

(** Plus Lemma 4.2: lock-guarded subsumption (the default). *)
val v_both : variant

type recording = {
  program : Lang.Ast.program;
  plan : Plan.t;             (** instrumentation plan used (and reused by replay) *)
  variant : variant;
  log : Log.t;               (** the recorded flow dependences *)
  outcome : Interp.outcome;  (** the original run's observables *)
  space_longs : int;         (** recorded data in the paper's long-integer unit *)
  overhead : float;          (** modeled recording overhead (0.44 = 44%) *)
  meter : Metrics.Cost.meter;
  instrumented_sites : int;
  site_hits : int array;
      (** dynamic access count per static site id (the [--profile] data) *)
}

type prepared
(** A program with its static analysis, instrumentation plan, and
    slot-resolved executable all settled — everything recording needs that
    depends only on the program text. *)

val prepare : ?variant:variant -> ?plan:Plan.t -> Lang.Ast.program -> prepared
(** Run the transformer (or adopt [plan]), compile, and bake the per-site
    plan decisions into a byte table ({!Runtime.Plan.modes}).  Repeated
    {!record_prepared} calls over the result pay zero analysis or
    compilation cost — the production shape: instrument once, record every
    run.  [variant] decides whether the O2 guarded-site analysis is part of
    the plan (it also gates recording behavior, so pass the same variant
    you will record with). *)

val record_prepared :
  ?engine:Vm.engine ->
  ?sched:Sched.t ->
  ?max_steps:int ->
  ?seed:int ->
  ?weights:Metrics.Cost.weights ->
  ?recorder:Recorder.t ->
  prepared ->
  recording
(** Execute one recording run over a prepared program; only the
    interpreter and the recorder's zero-allocation access fast path are on
    the clock.  [engine] selects the execution substrate: [Vm.Tree] (the
    slot-resolved tree walker, the default) or [Vm.Bytecode] (the
    register VM over the eagerly lowered program) — recorded logs are
    byte-identical either way.

    [recorder] recycles a long-lived recorder across sessions instead of
    allocating a fresh one: it is {!Recorder.reset} in place (retargeted to
    this prepared program, capacities retained), the log is byte-identical
    to a fresh recorder's, and the recording's [site_hits] and [meter] are
    snapshots so per-session profiles never bleed across reuses.  When
    [recorder] is passed, [weights] is ignored (the recycled meter keeps
    its own weights). *)

val prepared_program : prepared -> Lang.Ast.program
val prepared_compiled : prepared -> Interp.compiled
val prepared_bytecode : prepared -> Lang.Bytecode.program
val prepared_variant : prepared -> variant
val prepared_plan : prepared -> Plan.t
val prepared_modes : prepared -> Bytes.t
val prepared_instrumented_sites : prepared -> int
(** Component accessors, for clients (like the epoch engine) that drive the
    interpreter and recorder themselves over a prepared program. *)

val record :
  ?variant:variant ->
  ?engine:Vm.engine ->
  ?sched:Sched.t ->
  ?max_steps:int ->
  ?seed:int ->
  ?weights:Metrics.Cost.weights ->
  ?plan:Plan.t ->
  Lang.Ast.program ->
  recording
(** [prepare] followed by [record_prepared].  [sched] defaults to a seeded
    random scheduler; [seed] feeds the program-visible nondeterminism
    ([@rand] etc.).  [plan] overrides the transformer's instrumentation
    plan — pass [Plan.all_shared] for a record-everything baseline (static
    analysis disabled). *)

type replay_result = {
  replay_outcome : Interp.outcome;
  faithful : Interp.mismatch list;
      (** empty iff the Theorem-1 observables (per-thread shared-read
          values, outputs, crash signatures) match the original run *)
  report : Replayer.solve_report;  (** solver statistics and timings *)
}

val replay :
  ?max_steps:int ->
  ?solver_budget:Dlsolver.Idl.budget ->
  ?engine:Vm.engine ->
  recording ->
  (replay_result, string) result
(** Generate constraints, solve offline, and execute the replay run.
    [Error _] only if the constraint system is unsatisfiable or the solver
    exhausts [solver_budget] — unsatisfiability is ruled out by Lemma 4.1
    for logs this library records, and the budget exists so a generator or
    solver regression aborts loudly (with the solver's statistics in the
    message) instead of hanging the caller. *)

val record_and_replay :
  ?variant:variant ->
  ?engine:Vm.engine ->
  ?sched:Sched.t ->
  ?max_steps:int ->
  ?seed:int ->
  ?solver_budget:Dlsolver.Idl.budget ->
  Lang.Ast.program ->
  (recording * replay_result, string) result
(** [record] followed by [replay]. *)
