(** The Light recording algorithm (Algorithm 1) with its optimizations,
    installed as interpreter hooks.

    Per shared access (including the ghost accesses that model sync
    primitives, Section 4.3): writes atomically update the last-write map;
    reads obtain it through the optimistic validate of Section 2.3 and
    record the flow dependence in a thread-local buffer.  The [prec] map
    (Algorithm 1, lines 7/9) compresses a write followed by several reads
    from one thread; O1 (Lemma 4.3) records only the endpoints of
    non-interleaved same-thread runs; O2 (Lemma 4.2) skips recording at
    sites the static analysis proves consistently lock-guarded.

    The per-access fast path is allocation-free: the plan decision is a
    byte load from the baked {!Runtime.Plan.modes} table, the last-write
    map is a flat open-addressing int table, and closed records accumulate
    in int arenas until {!finalize} materializes the {!Core.Log.t}. *)

open Runtime

type variant = { o1 : bool; o2 : bool }

val v_basic : variant
val v_o1 : variant
val v_both : variant
val variant_name : variant -> string

type t

val create : ?variant:variant -> ?weights:Metrics.Cost.weights -> Bytes.t -> t
(** [create modes] builds a recorder over the per-site decision table baked
    by {!Runtime.Plan.modes} (one byte per static site id). *)

val reset : ?variant:variant -> t -> Bytes.t -> unit
(** [reset r modes] retargets [r] to a new session over [modes] in place:
    observationally identical to a fresh [create] (cleared last-write
    table, arenas, open runs/deps, access clock, {!site_hits}, cost meter
    and contention stripes — recycled sessions produce byte-identical
    logs) but retaining every grown capacity, so a long-lived worker pays
    no per-session allocation.  Omitting [?variant] keeps the current
    variant; the meter's weights are always retained. *)

val hooks : t -> Interp.hooks
(** Interpreter hooks for a recording run (installs the allocation-free
    [on_shared] hook). *)

val finalize : t -> outcome:Interp.outcome -> Log.t
(** Flush open records and assemble the log (merging the thread-local
    buffers, attaching syscall values and final counters). *)

val seal :
  t ->
  syscalls:(int * int * string * Value.t) list ->
  counters:(int * int) list ->
  Log.t
(** Epoch boundary: like {!finalize} but callable mid-run, attaching the
    window's syscalls and the current counter watermark.  Also clears the
    last-write table, so accesses after the seal record pre-seal writes as
    the virtual initialization write ([w = None]) — their values come from
    the epoch checkpoint instead of the previous epoch's log.  The access
    clock, cost meter and {!site_hits} stay cumulative across seals. *)

val accesses : t -> int
(** Cumulative access-clock value across all seals (the [_obs] stamp
    domain). *)

val on_access_fast :
  t ->
  tid:int ->
  c:int ->
  loc:Loc.t ->
  kind:Event.akind ->
  site:int ->
  ghost:Event.ghost_kind ->
  unit
(** The zero-allocation per-access entry point; [hooks] routes accesses
    here. *)

val on_access : t -> Event.access -> unit
(** Exposed for white-box tests; unpacks the access record into
    {!on_access_fast}. *)

val meter : t -> Metrics.Cost.meter
(** The cost accumulator charged by this recorder's hooks. *)

val site_hits : t -> int array
(** Per-site access counts indexed by static site id ([light record
    --profile]). *)
