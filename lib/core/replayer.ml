(** The replayer: turns a solved constraint system into interpreter hooks
    that steer the replay run (Section 4.2).

    The IDL model assigns integers to the constrained events; sorting yields
    a total rank order over them.  The replay gate then:

    - lets a {e constrained} access (tid, c) proceed only when every
      lower-ranked constrained event has executed (exact-rank turn-taking);
    - lets an {e unconstrained} access proceed once all constrained events
      up to its thread-order predecessor have executed — interior accesses
      of a recorded interval thereby execute inside their endpoints, which
      together with the noninterference clauses preserves every inferred
      flow dependence;
    - suppresses blind writes: a write that is neither constrained, nor
      interior to a recorded interval of its thread, nor at a lock-guarded
      site, took part in no flow dependence, and executing it could corrupt
      a read (ghost writes are never suppressed — they carry the lock
      semantics);
    - substitutes recorded syscall values and steers [notify] wakeups to the
      recorded waiter. *)

open Runtime

type schedule = {
  rank_of : (Log.evt, int) Hashtbl.t;
  order : Log.evt array;  (** rank -> event *)
  (* per thread: sorted array of constrained counters, for predecessor search *)
  thread_cs : (int, int array) Hashtbl.t;
  (* per thread: recorded intervals (loc, lo, hi) *)
  thread_intervals : (int, (Loc.t * int * int) list) Hashtbl.t;
  syscall_values : (int * int, Value.t) Hashtbl.t;
  notify_pairs : (Log.evt, int) Hashtbl.t;  (** notify write event -> waiter tid *)
}

type solve_result_kind = Solved | Unsatisfiable | SolverAborted

type solve_report = {
  schedule : schedule option;
  result_kind : solve_result_kind;
  solver_stats : Dlsolver.Idl.stats;
  gen_stats : Constraints.gen_stats;
      (** clause counts before/after pruning and generation time *)
  n_vars : int;
  n_hard : int;
  n_clauses : int;
  solve_time_s : float;
  max_model : int;
      (** largest model value assigned (0 when unsolved) — epoch chaining
          shifts the next epoch's hint above this watermark *)
}

let build_schedule (log : Log.t) (cs : Constraints.t) (model : int array) : schedule =
  let n = Array.length cs.evts in
  let order =
    Array.init n (fun i -> i)
    |> Array.to_list
    |> List.sort (fun i j ->
           match compare model.(i) model.(j) with
           | 0 -> compare cs.evts.(i) cs.evts.(j)
           | c -> c)
    |> List.map (fun i -> cs.evts.(i))
    |> Array.of_list
  in
  let rank_of = Hashtbl.create (2 * n) in
  Array.iteri (fun rank e -> Hashtbl.replace rank_of e rank) order;
  let thread_cs = Hashtbl.create 16 in
  let tmp : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (t, c) ->
      match Hashtbl.find_opt tmp t with
      | Some l -> l := c :: !l
      | None -> Hashtbl.add tmp t (ref [ c ]))
    order;
  Hashtbl.iter
    (fun t cs -> Hashtbl.replace thread_cs t (Array.of_list (List.sort_uniq compare !cs)))
    tmp;
  let thread_intervals = Hashtbl.create 16 in
  List.iter
    (fun (iv : Constraints.interval) ->
      let t = fst iv.start_e in
      let prev = Option.value ~default:[] (Hashtbl.find_opt thread_intervals t) in
      Hashtbl.replace thread_intervals t
        ((iv.iv_loc, snd iv.start_e, snd iv.end_e) :: prev))
    cs.intervals;
  let syscall_values = Hashtbl.create 64 in
  List.iter (fun (t, i, _, v) -> Hashtbl.replace syscall_values (t, i) v) log.syscalls;
  (* notify -> waiter pairing from condition-ghost records *)
  let notify_pairs = Hashtbl.create 16 in
  List.iter
    (fun (d : Log.dep) ->
      if d.loc.fld = Loc.cond_fld then
        match d.w with Some w -> Hashtbl.replace notify_pairs w (fst d.rf) | None -> ())
    log.deps;
  List.iter
    (fun (r : Log.range) ->
      if r.loc.fld = Loc.cond_fld then
        match r.w_in with Some w -> Hashtbl.replace notify_pairs w r.rt | None -> ())
    log.ranges;
  { rank_of; order; thread_cs; thread_intervals; syscall_values; notify_pairs }

(** Generate constraints, solve, and build the schedule.  [budget] bounds
    the solver's work so a pathological constraint system aborts with
    honest statistics instead of hanging; [naive] switches to the
    unpruned quadratic generator (differential oracle). *)
let solve ?(naive = false) ?budget ?(hint_shift = 0) (log : Log.t) : solve_report =
  let cs = Constraints.generate ~naive log in
  let hint =
    (* IDL is translation-invariant, so shifting the witness hint by a
       constant preserves satisfaction; epoch chaining shifts each epoch's
       hint above the previous epoch's solved ranks so the concatenated
       per-epoch orders stay globally consistent. *)
    match cs.hint with
    | Some h when hint_shift <> 0 -> Some (Array.map (fun v -> v + hint_shift) h)
    | h -> h
  in
  let t0 = Unix.gettimeofday () in
  let result = Dlsolver.Idl.solve ?budget ?hint cs.problem in
  let dt = Unix.gettimeofday () -. t0 in
  let mk kind stats schedule max_model =
    {
      schedule;
      result_kind = kind;
      solver_stats = stats;
      gen_stats = cs.gen_stats;
      n_vars = cs.problem.nvars;
      n_hard = cs.n_hard;
      n_clauses = cs.n_clauses;
      solve_time_s = dt;
      max_model;
    }
  in
  match result with
  | Sat (model, stats) ->
    mk Solved stats
      (Some (build_schedule log cs model))
      (Array.fold_left max 0 model)
  | Unsat stats -> mk Unsatisfiable stats None 0
  | Aborted stats -> mk SolverAborted stats None 0

(* ------------------------------------------------------------------ *)
(* Replay-run driver                                                   *)
(* ------------------------------------------------------------------ *)

type driver = {
  hooks : Interp.hooks;
  progress : unit -> int;  (** executed constrained events *)
}

let in_interval (sch : schedule) (t : int) (loc : Loc.t) (c : int) : bool =
  match Hashtbl.find_opt sch.thread_intervals t with
  | None -> false
  | Some ivs ->
    List.exists (fun (l, lo, hi) -> lo <= c && c <= hi && Loc.equal l loc) ivs

(* rank of the last constrained event of thread t with counter < c *)
let pred_rank (sch : schedule) (t : int) (c : int) : int option =
  match Hashtbl.find_opt sch.thread_cs t with
  | None -> None
  | Some arr ->
    (* binary search: greatest index with arr.(i) < c *)
    let lo = ref 0 and hi = ref (Array.length arr - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid) < c then (best := mid; lo := mid + 1) else hi := mid - 1
    done;
    if !best < 0 then None else Hashtbl.find_opt sch.rank_of (t, arr.(!best))

(** [?suppress:false] turns off blind-write suppression — the exploration
    mode: every executed step is then a legal program step, so any crash a
    flipped schedule reaches is a genuine interleaving of the program, not
    an artifact of replay-time write elision.  Replay of the {e recorded}
    schedule keeps the default ([true]); see the module doc. *)
let driver ?(suppress = true) (sch : schedule) ~(plan : Plan.t) : driver =
  let next_rank = ref 0 in
  let executed = Hashtbl.create 1024 in
  let advance () =
    while
      !next_rank < Array.length sch.order && Hashtbl.mem executed sch.order.(!next_rank)
    do
      incr next_rank
    done
  in
  (* positions for wakeup choice *)
  let last_notify : Log.evt option ref = ref None in
  let gate (pre : Event.pre) : bool =
    let e = (pre.tid, pre.c) in
    match Hashtbl.find_opt sch.rank_of e with
    | Some k -> k = !next_rank
    | None -> (
      match pred_rank sch pre.tid pre.c with
      | None -> true
      | Some kp -> !next_rank > kp)
  in
  let observe (ev : Event.t) : unit =
    match ev with
    | Event.Access (a, _) ->
      let e = (a.tid, a.c) in
      if Hashtbl.mem sch.rank_of e then begin
        Hashtbl.replace executed e ();
        advance ()
      end;
      if a.ghost = Event.NotifyWrite then last_notify := Some e
    | _ -> ()
  in
  let suppress_write (pre : Event.pre) : bool =
    suppress
    && pre.ghost = Event.NotGhost
    && (not (Hashtbl.mem sch.rank_of (pre.tid, pre.c)))
    && (not (in_interval sch pre.tid pre.loc pre.c))
    && not (plan.guarded_site pre.site)
  in
  let syscall_override ~tid ~idx ~name:_ =
    Hashtbl.find_opt sch.syscall_values (tid, idx)
  in
  let choose_wakeup ~lock:_ ~waiters =
    match !last_notify with
    | Some n -> (
      match Hashtbl.find_opt sch.notify_pairs n with
      | Some w when List.mem w waiters -> w
      | _ -> List.hd waiters)
    | None -> List.hd waiters
  in
  {
    hooks =
      {
        Interp.gate = Some gate;
        observe = Some observe;
        on_shared = None;
        syscall_override = Some syscall_override;
        choose_wakeup = Some choose_wakeup;
        suppress_write = Some suppress_write;
        on_branch = None;
      };
    progress = (fun () -> Hashtbl.length executed);
  }

(** Execute the replay run, on either execution engine (the driver hooks
    are engine-agnostic; the schedule constrains shared accesses, which
    both engines present identically). *)
let replay ?(max_steps = 10_000_000) ?suppress ?(engine = Vm.Tree)
    (program : Lang.Ast.program) ~(plan : Plan.t) (sch : schedule) :
    Interp.outcome =
  let d = driver ?suppress sch ~plan in
  let run =
    match engine with Vm.Tree -> Interp.run | Vm.Bytecode -> Vm.run
  in
  run ~hooks:d.hooks ~plan ~max_steps ~sched:(Sched.round_robin ()) program
