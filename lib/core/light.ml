(** Light: record/replay via tightly bounded recording — the public API.

    Typical use:
    {[
      let p = Lang.Parser.parse_file "prog.cl" in
      let rec_ = Light.record ~sched:(Runtime.Sched.random ~seed:7) p in
      match Light.replay rec_ with
      | Ok rr -> assert (rr.faithful = [])
      | Error msg -> prerr_endline msg
    ]} *)

open Runtime

type variant = Recorder.variant = { o1 : bool; o2 : bool }

let v_basic = Recorder.v_basic
let v_o1 = Recorder.v_o1
let v_both = Recorder.v_both

type recording = {
  program : Lang.Ast.program;
  plan : Plan.t;
  variant : variant;
  log : Log.t;
  outcome : Interp.outcome;  (** the original run's observables *)
  space_longs : int;         (** recorded data in long-integer units *)
  overhead : float;          (** recording overhead fraction (0.44 = 44%) *)
  meter : Metrics.Cost.meter;
  instrumented_sites : int;
  site_hits : int array;     (** per static site id, dynamic access count *)
}

(* ------------------------------------------------------------------ *)
(* Prepare once, record many                                           *)
(* ------------------------------------------------------------------ *)

type prepared = {
  pp_program : Lang.Ast.program;
  pp_compiled : Interp.compiled;
  pp_bytecode : Lang.Bytecode.program;  (* register-VM form, lowered eagerly *)
  pp_variant : variant;
  pp_plan : Plan.t;
  pp_modes : Bytes.t;  (* per-site decision, baked (Plan.modes) *)
  pp_instrumented_sites : int;
}

(** Everything recording needs that depends only on the program text: the
    static analysis and its instrumentation plan, the slot-resolved
    executable, and the plan baked into a per-site byte table.  Repeated
    {!record_prepared} calls then pay zero analysis or compilation cost —
    the production shape (instrument once, record every run). *)
let prepare ?(variant = Recorder.v_both) ?plan (program : Lang.Ast.program) :
    prepared =
  let plan, instrumented_sites =
    match plan with
    | Some plan ->
      (* caller-supplied plan (e.g. [Plan.all_shared] for a full-recording
         baseline): count the access sites it instruments directly *)
      let n =
        Lang.Ast.fold_stmts
          (fun acc (s : Lang.Ast.stmt) ->
            if
              plan.Plan.shared_site s.sid
              && (Instrument.Transformer.is_read_site s
                 || Instrument.Transformer.is_write_site s)
            then acc + 1
            else acc)
          0 program
      in
      (plan, n)
    | None ->
      let tr = Instrument.Transformer.transform ~enable_o2:variant.o2 program in
      (tr.plan, tr.instrumented_sites)
  in
  let cp = Interp.compile program in
  {
    pp_program = program;
    pp_compiled = cp;
    pp_bytecode = Lang.Compile.lower cp;
    pp_variant = variant;
    pp_plan = plan;
    pp_modes = Plan.modes plan ~max_sid:cp.Lang.Resolve.cp_max_sid;
    pp_instrumented_sites = instrumented_sites;
  }

(** Execute one recording run over a prepared program: only the interpreter
    and the recorder's zero-allocation access hook are on the clock.

    [recorder] recycles a long-lived recorder across sessions (the record
    service keeps one per worker domain): it is {!Recorder.reset} in place —
    retargeted to this program's variant and mode table with every grown
    capacity retained — instead of allocating a fresh one, and the returned
    recording's [site_hits] and [meter] are {e snapshots}, so the profile
    of one session never bleeds into (or gets clobbered by) the next
    session on the same recorder.  When [recorder] is passed, [weights] is
    ignored: the recycled meter keeps the weights it was created with. *)
let record_prepared ?(engine = Vm.Tree) ?(sched = Sched.random ~seed:1)
    ?(max_steps = 5_000_000) ?(seed = 0)
    ?(weights = Metrics.Cost.default_weights) ?recorder (pp : prepared) :
    recording =
  let recorder, recycled =
    match recorder with
    | Some r ->
      Recorder.reset ~variant:pp.pp_variant r pp.pp_modes;
      (r, true)
    | None -> (Recorder.create ~variant:pp.pp_variant ~weights pp.pp_modes, false)
  in
  let outcome =
    match engine with
    | Vm.Tree ->
      Interp.run_compiled ~hooks:(Recorder.hooks recorder) ~plan:pp.pp_plan
        ~max_steps ~seed ~sched pp.pp_compiled
    | Vm.Bytecode ->
      Vm.run_program ~hooks:(Recorder.hooks recorder) ~plan:pp.pp_plan
        ~max_steps ~seed ~sched pp.pp_bytecode
  in
  let log = Recorder.finalize recorder ~outcome in
  {
    program = pp.pp_program;
    plan = pp.pp_plan;
    variant = pp.pp_variant;
    log;
    outcome;
    space_longs = Log.space_longs log;
    overhead = Metrics.Cost.overhead (Recorder.meter recorder) ~steps:outcome.steps;
    meter =
      (if recycled then Metrics.Cost.copy_meter (Recorder.meter recorder)
       else Recorder.meter recorder);
    instrumented_sites = pp.pp_instrumented_sites;
    site_hits =
      (if recycled then Array.copy (Recorder.site_hits recorder)
       else Recorder.site_hits recorder);
  }

(** Run the transformer and execute the program under the Light recorder. *)
let record ?variant ?engine ?sched ?max_steps ?seed ?weights ?plan
    (program : Lang.Ast.program) : recording =
  record_prepared ?engine ?sched ?max_steps ?seed ?weights
    (prepare ?variant ?plan program)

(* Accessors for the epoch engine (and other lib/core clients of the
   abstract [prepared]). *)
let prepared_program (pp : prepared) = pp.pp_program
let prepared_compiled (pp : prepared) = pp.pp_compiled
let prepared_bytecode (pp : prepared) = pp.pp_bytecode
let prepared_variant (pp : prepared) = pp.pp_variant
let prepared_plan (pp : prepared) = pp.pp_plan
let prepared_modes (pp : prepared) = pp.pp_modes
let prepared_instrumented_sites (pp : prepared) = pp.pp_instrumented_sites

type replay_result = {
  replay_outcome : Interp.outcome;
  faithful : Interp.mismatch list;  (** empty = Theorem 1 observables match *)
  report : Replayer.solve_report;
}

(** Compute a replay schedule offline and execute the replay run. *)
let replay ?max_steps ?solver_budget ?engine (r : recording) :
    (replay_result, string) result =
  let report = Replayer.solve ?budget:solver_budget r.log in
  match report.schedule with
  | None ->
    let s = report.solver_stats in
    Error
      (Printf.sprintf "%s (%d decisions, %d backtracks, %d conflicts, %.1fs)"
         (match report.result_kind with
         | Replayer.SolverAborted -> "solver budget exhausted"
         | _ -> "constraint system unsatisfiable")
         s.decisions s.backtracks s.theory_conflicts report.solve_time_s)
  | Some sch ->
    let replay_outcome =
      Replayer.replay ?max_steps ?engine r.program ~plan:r.plan sch
    in
    Ok
      {
        replay_outcome;
        faithful = Interp.replay_matches ~original:r.outcome ~replay:replay_outcome;
        report;
      }

(** Record under [sched], replay, and report whether the Theorem-1
    observables (per-thread read values, outputs, crashes) were reproduced. *)
let record_and_replay ?variant ?engine ?sched ?max_steps ?seed ?solver_budget
    (program : Lang.Ast.program) : (recording * replay_result, string) result =
  let r = record ?variant ?engine ?sched ?max_steps ?seed program in
  match replay ?max_steps ?solver_budget ?engine r with
  | Ok rr -> Ok (r, rr)
  | Error e -> Error e
