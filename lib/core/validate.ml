(** Schedule validation: an independent check that a solved schedule is a
    legitimate linearization of the recorded run — the structural half of
    the determinism oracle, computed from the log and the schedule alone
    (no interpreter, no constraint system).

    A valid schedule is a total order over the constrained events that
    preserves

    - {e thread-local order}: within each thread, ranks ascend with the
      thread-local counters;
    - every {e recorded flow dependence}: a dep's source write is ranked
      before the first read it feeds ([w -> rf]), and a range's feeding
      write before the range's first access ([w_in -> (rt, lo)]);
    - with [~zones:true], the full Equation-1 noninterference condition:
      no write-bearing interval of the location lands inside the protected
      zone of a read interval.  The zone sweep is quadratic per location,
      so tests enable it on small logs; the linear checks above run at
      workload scale.

    Returns human-readable violations; [[]] means the schedule validates.

    [~free] mirrors {!Constraints.generate}'s relaxation for exploration:
    a freed read interval's source pin is not required (the flip deliberately
    re-orders it), but every other dependence — and, with [~zones:true], the
    noninterference condition with the freed reader treated as sourceless —
    still must hold. *)

open Runtime

let check ?(zones = false) ?(free = []) (log : Log.t) (sch : Replayer.schedule) :
    string list =
  let freed : (Log.evt, unit) Hashtbl.t = Hashtbl.create (max 4 (List.length free)) in
  List.iter (fun e -> Hashtbl.replace freed e ()) free;
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let rank e = Hashtbl.find_opt sch.Replayer.rank_of e in
  let pp (t, c) = Printf.sprintf "(%d,%d)" t c in
  (* total order: [order] and [rank_of] are inverse bijections *)
  if Array.length sch.order <> Hashtbl.length sch.rank_of then
    err "order array has %d events but rank_of has %d" (Array.length sch.order)
      (Hashtbl.length sch.rank_of);
  Array.iteri
    (fun k e ->
      match rank e with
      | Some r when r = k -> ()
      | Some r -> err "event %s at position %d has rank %d" (pp e) k r
      | None -> err "event %s at position %d is unranked" (pp e) k)
    sch.order;
  (* thread-local order: walking the order, each thread's counters ascend *)
  let last_c : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (t, c) ->
      (match Hashtbl.find_opt last_c t with
      | Some c' when c' >= c ->
        err "thread order violated: (%d,%d) ranked after (%d,%d)" t c t c'
      | _ -> ());
      Hashtbl.replace last_c t c)
    sch.order;
  (* recorded flow dependences *)
  let dep_edge what w r =
    match (rank w, rank r) with
    | Some rw, Some rr ->
      if rw >= rr then err "%s: write %s ranked %d, read %s ranked %d" what (pp w) rw (pp r) rr
    | None, _ -> err "%s: write %s unranked" what (pp w)
    | _, None -> err "%s: read %s unranked" what (pp r)
  in
  List.iter
    (fun (d : Log.dep) ->
      if not (Hashtbl.mem freed d.rf) then
        match d.w with Some w -> dep_edge "dep" w d.rf | None -> ())
    log.deps;
  List.iter
    (fun (r : Log.range) ->
      if r.prefix_reads && not (Hashtbl.mem freed (r.rt, r.lo)) then
        match r.w_in with Some w -> dep_edge "range" w (r.rt, r.lo) | None -> ())
    log.ranges;
  (* Equation-1 zones, checked straight from the interval normalization the
     constraint generator uses — one rank comparison per (reader, writer)
     pair, mirroring the naive clause set *)
  if zones then begin
    let must e =
      match rank e with
      | Some r -> r
      | None -> err "zone check: %s unranked" (pp e); -1
    in
    let inside (t, c) (j : Constraints.interval) =
      fst j.start_e = t && snd j.start_e <= c && c <= snd j.end_e
    in
    let by_loc =
      List.fold_left
        (fun m (iv : Constraints.interval) ->
          Loc.Map.update iv.iv_loc
            (fun p -> Some (iv :: Option.value ~default:[] p))
            m)
        Loc.Map.empty
        (Constraints.intervals_of_log log)
    in
    Loc.Map.iter
      (fun _ ivs ->
        List.iter
          (fun (i : Constraints.interval) ->
            if i.reads then
              List.iter
                (fun (j : Constraints.interval) ->
                  if j != i && j.writes then begin
                    let clear = must i.end_e < must j.start_e in
                    let src =
                      match i.src with
                      | Some _ when Hashtbl.mem freed i.start_e -> None
                      | s -> s
                    in
                    match src with
                    | Some None ->
                      if not clear then
                        err "init reader %s..%s not before writer %s" (pp i.start_e)
                          (pp i.end_e) (pp j.start_e)
                    | Some (Some w) ->
                      if (not (inside w j)) && not (clear || must j.end_e < must w)
                      then
                        err "writer %s..%s inside zone (%s..%s] of reader %s..%s"
                          (pp j.start_e) (pp j.end_e) (pp w) (pp i.end_e)
                          (pp i.start_e) (pp i.end_e)
                    | None ->
                      if
                        fst i.start_e <> fst j.start_e
                        && not (clear || must j.end_e < must i.start_e)
                      then
                        err "writer %s..%s overlaps sourceless reader %s..%s"
                          (pp j.start_e) (pp j.end_e) (pp i.start_e) (pp i.end_e)
                  end)
                ivs)
          ivs)
      by_loc
  end;
  List.rev !errs
