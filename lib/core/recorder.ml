(** The Light recording algorithm (Algorithm 1) with its optimizations.

    The recorder is installed as interpreter hooks.  Per shared access
    (including the ghost accesses modeling sync primitives, Section 4.3):

    - writes atomically update the last-write map [lw] (lock-striped atomic
      section + volatile store, cost-charged);
    - reads atomically obtain the last write via the optimistic
      validate-retry of Section 2.3 and record the flow dependence in a
      {e thread-local} buffer — no synchronization on the recording path;
    - the [prec] map (lines 7/9) compresses a write followed by several
      reads from one thread into a single dep with a span;
    - O1 (Lemma 4.3) tracks, per location, the current run of consecutive
      same-thread accesses and records only its endpoints;
    - O2 (Lemma 4.2) skips recording entirely at sites the static analysis
      proves consistently lock-guarded (counters still tick so that
      [(tid, c)] identities align across variants and runs).

    Retries of the optimistic loop are modeled by the stripe-contention
    signal: a validate that races a concurrent writer pays one retry. *)

open Runtime

type variant = { o1 : bool; o2 : bool }

let v_basic = { o1 = false; o2 = false }
let v_o1 = { o1 = true; o2 = false }
let v_both = { o1 = true; o2 = true }

let variant_name v =
  match v.o1, v.o2 with
  | false, false -> "basic"
  | true, false -> "O1"
  | false, true -> "O2"
  | true, true -> "O1+O2"

(* open dep being extended by the prec optimization; the [_obs] fields
   carry access-clock stamps for the solver's witness reconstruction *)
type open_dep = {
  od_w : Log.evt option;
  od_w_obs : int;
  od_rf : Log.evt;
  mutable od_rl : int;
  mutable od_rl_obs : int;
}

(* open O1 run.  The shape fields classify the run so that closing can pick
   the cheapest sound encoding:
   - reads only                     -> prec-compressed dep on [w_in]
   - writes only                    -> dropped (blind, or referenced later)
   - reads then writes  [R+ W+]     -> dep (w_in -> prefix-read span)
   - writes then reads  [W+ R+]     -> dep (last own write -> trailing span)
   - anything else (a read strictly between writes, or reads on both sides)
                                    -> a range record *)
type open_run = {
  or_t : int;
  or_lo : int;
  or_lo_obs : int;                      (* access clock at the first access *)
  mutable or_hi : int;
  mutable or_hi_obs : int;              (* access clock at the last access *)
  or_w_in : Log.evt option;
  or_w_obs : int;                       (* access clock of [or_w_in], or 0 *)
  or_prefix_reads : bool;
  mutable or_has_write : bool;
  mutable or_has_read : bool;
  mutable or_middle_read : bool;        (* a read between two own writes *)
  mutable or_last_prefix_read : int;    (* last read before any own write, or 0 *)
  mutable or_last_prefix_read_obs : int;
  mutable or_last_write : int;          (* counter of the last own write, or 0 *)
  mutable or_last_write_obs : int;
  mutable or_first_read_after_w : int;  (* first read after the last own write, or 0 *)
}

type t = {
  variant : variant;
  plan : Plan.t;
  meter : Metrics.Cost.meter;
  stripes : Metrics.Cost.stripes;
  lw : (Log.evt * int) Loc.Tbl.t;  (* last write per location, with its clock *)
  (* V_basic path: prec per (thread, loc) *)
  prec : (int, open_dep Loc.Tbl.t) Hashtbl.t;
  (* O1 path: current run per location *)
  runs : open_run Loc.Tbl.t;
  mutable deps : Log.dep list;     (* merged thread-local buffers *)
  mutable ranges : Log.range list;
  mutable accesses : int;  (* global access clock; stamps the [_obs] fields *)
  mutable skipped_guarded : int;
}

let create ?(variant = v_both) ?(weights = Metrics.Cost.default_weights) (plan : Plan.t) : t =
  {
    variant;
    plan;
    meter = Metrics.Cost.meter ~weights ();
    stripes = Metrics.Cost.stripes ();
    lw = Loc.Tbl.create 1024;
    prec = Hashtbl.create 16;
    runs = Loc.Tbl.create 1024;
    deps = [];
    ranges = [];
    accesses = 0;
    skipped_guarded = 0;
  }

let emit_dep (r : t) (loc : Loc.t) (od : open_dep) : unit =
  Metrics.Cost.charge r.meter DepAppend;
  r.deps <-
    {
      Log.loc;
      w = od.od_w;
      rf = od.od_rf;
      rl_c = od.od_rl;
      dep_obs = od.od_rl_obs;
      w_obs = od.od_w_obs;
    }
    :: r.deps

let prec_of (r : t) (tid : int) : open_dep Loc.Tbl.t =
  match Hashtbl.find_opt r.prec tid with
  | Some h -> h
  | None ->
    let h = Loc.Tbl.create 64 in
    Hashtbl.add r.prec tid h;
    h

let emit_range (r : t) (loc : Loc.t) (run : open_run) : unit =
  (* Pure-write runs are not recorded: their last write is referenced by the
     next reader's [w_in] if it matters; earlier writes are blind.  Any run
     containing a read must be recorded — its reads need the interval's
     noninterference protection even when they read the run's own writes.
     Read-only runs route through the prec/dep machinery of Algorithm 1:
     a read interval [rf..rl] with source [w_in] has exactly the same
     constraint semantics as a writeless range, and consecutive runs reading
     the same write (common when several threads interleave reads) compress
     into one record. *)
  if run.or_has_read then
    if not run.or_has_write then begin
      let prec = prec_of r run.or_t in
      match Loc.Tbl.find_opt prec loc with
      | Some od when od.od_w = run.or_w_in ->
        Metrics.Cost.charge r.meter PrecHit;
        od.od_rl <- run.or_hi;
        od.od_rl_obs <- run.or_hi_obs
      | prev ->
        (match prev with
        | Some od -> emit_dep r loc od
        | None -> ());
        Loc.Tbl.replace prec loc
          {
            od_w = run.or_w_in;
            od_w_obs = run.or_w_obs;
            od_rf = (run.or_t, run.or_lo);
            od_rl = run.or_hi;
            od_rl_obs = run.or_hi_obs;
          }
    end
    else if
      (not run.or_middle_read)
      && not (run.or_last_prefix_read > 0 && run.or_first_read_after_w > 0)
    then begin
      (* one-sided run: a single dep carries the same constraints as the
         range, one long cheaper.  [R+ W+]: the prefix reads see w_in and the
         trailing writes behave like V_basic writes (last one referenced by
         future readers, earlier ones blind).  [W+ R+]: the trailing reads
         see the run's last own write. *)
      let prec = prec_of r run.or_t in
      (match Loc.Tbl.find_opt prec loc with
      | Some od ->
        emit_dep r loc od;
        Loc.Tbl.remove prec loc
      | None -> ());
      Metrics.Cost.charge r.meter DepAppend;
      let w, w_obs, rf, rl, rl_obs =
        if run.or_first_read_after_w > 0 then
          ( Some (run.or_t, run.or_last_write),
            run.or_last_write_obs,
            run.or_first_read_after_w,
            run.or_hi,
            run.or_hi_obs )
        else
          ( run.or_w_in,
            run.or_w_obs,
            run.or_lo,
            run.or_last_prefix_read,
            run.or_last_prefix_read_obs )
      in
      r.deps <-
        { Log.loc; w; w_obs; rf = (run.or_t, rf); rl_c = rl; dep_obs = rl_obs }
        :: r.deps
    end
    else begin
      (* write-containing run: the prec entry for this (thread, loc) must be
         flushed first so records stay disjoint in counter space *)
      let prec = prec_of r run.or_t in
      (match Loc.Tbl.find_opt prec loc with
      | Some od ->
        emit_dep r loc od;
        Loc.Tbl.remove prec loc
      | None -> ());
      Metrics.Cost.charge r.meter DepAppend;
      r.ranges <-
        {
          Log.loc;
          rt = run.or_t;
          lo = run.or_lo;
          hi = run.or_hi;
          w_in = run.or_w_in;
          prefix_reads = run.or_prefix_reads;
          has_write = run.or_has_write;
          rng_obs = run.or_hi_obs;
          lo_obs = run.or_lo_obs;
          w_obs = run.or_w_obs;
        }
        :: r.ranges
    end

(* ------------------------------------------------------------------ *)
(* Access handling                                                     *)
(* ------------------------------------------------------------------ *)

let on_access (r : t) (a : Event.access) : unit =
  let open Metrics.Cost in
  r.accesses <- r.accesses + 1;
  let guarded = a.ghost = NotGhost && r.variant.o2 && r.plan.guarded_site a.site in
  if guarded then begin
    (* O2: the guarding lock's ghost deps subsume this access; the woven
       code keeps only an inlined counter increment — no recording, no lw
       update (every site on this location is guarded, so lw is never
       consulted for it either) *)
    charge r.meter GuardedTick;
    r.skipped_guarded <- r.skipped_guarded + 1
  end
  else begin
    charge r.meter CounterTick;
    let e : Log.evt = (a.tid, a.c) in
    let now = r.accesses in  (* this access's clock stamp *)
    if r.variant.o1 then begin
      (* O1 run tracking: extending the thread's own run is a thread-local
         fast path; breaking another thread's run takes the striped atomic *)
      (match Loc.Tbl.find_opt r.runs a.loc with
      | Some run when run.or_t = a.tid ->
        charge r.meter RunExtend;
        run.or_hi <- snd e;
        run.or_hi_obs <- now;
        (match a.kind with
        | Write ->
          if run.or_first_read_after_w > 0 then run.or_middle_read <- true;
          run.or_has_write <- true;
          run.or_last_write <- snd e;
          run.or_last_write_obs <- now;
          run.or_first_read_after_w <- 0
        | Read ->
          run.or_has_read <- true;
          if not run.or_has_write then begin
            run.or_last_prefix_read <- snd e;
            run.or_last_prefix_read_obs <- now
          end
          else if run.or_first_read_after_w = 0 then run.or_first_read_after_w <- snd e)
      | prev ->
        let level = touch r.stripes a.loc ~tid:a.tid in
        charge r.meter (RunSwitch { level });
        (match prev with
        | Some run -> emit_range r a.loc run
        | None -> ());
        let w_in = if a.kind = Read then Loc.Tbl.find_opt r.lw a.loc else None in
        Loc.Tbl.replace r.runs a.loc
          {
            or_t = a.tid;
            or_lo = snd e;
            or_lo_obs = now;
            or_hi = snd e;
            or_hi_obs = now;
            or_w_in = Option.map fst w_in;
            or_w_obs = (match w_in with Some (_, o) -> o | None -> 0);
            or_prefix_reads = a.kind = Read;
            or_has_write = a.kind = Write;
            or_has_read = a.kind = Read;
            or_middle_read = false;
            or_last_prefix_read = (if a.kind = Read then snd e else 0);
            or_last_prefix_read_obs = (if a.kind = Read then now else 0);
            or_last_write = (if a.kind = Write then snd e else 0);
            or_last_write_obs = (if a.kind = Write then now else 0);
            or_first_read_after_w = 0;
          });
      if a.kind = Write then Loc.Tbl.replace r.lw a.loc (e, now)
    end
    else begin
      (* Algorithm 1 verbatim *)
      match a.kind with
      | Write ->
        let level = touch r.stripes a.loc ~tid:a.tid in
        charge r.meter (LwUpdate { level });
        Loc.Tbl.replace r.lw a.loc (e, now)
      | Read ->
        let level = touch r.stripes a.loc ~tid:a.tid in
        charge r.meter (ValidateRead { level });
        let cw = Loc.Tbl.find_opt r.lw a.loc in
        let prec = prec_of r a.tid in
        (match Loc.Tbl.find_opt prec a.loc with
        | Some od when od.od_w = Option.map fst cw ->
          (* same write as the previous read: extend the span (line 7) *)
          charge r.meter PrecHit;
          od.od_rl <- snd e;
          od.od_rl_obs <- now
        | prev ->
          (match prev with
          | Some od -> emit_dep r a.loc od
          | None -> ());
          Loc.Tbl.replace prec a.loc
            {
              od_w = Option.map fst cw;
              od_w_obs = (match cw with Some (_, o) -> o | None -> 0);
              od_rf = e;
              od_rl = snd e;
              od_rl_obs = now;
            })
    end
  end

(* ------------------------------------------------------------------ *)
(* Finalization                                                        *)
(* ------------------------------------------------------------------ *)

let finalize (r : t) ~(outcome : Interp.outcome) : Log.t =
  (* flush open runs first: read-only runs drain into the prec map, which is
     flushed afterwards *)
  Loc.Tbl.iter (fun loc run -> emit_range r loc run) r.runs;
  Loc.Tbl.reset r.runs;
  Hashtbl.iter (fun _ tbl -> Loc.Tbl.iter (fun loc od -> emit_dep r loc od) tbl) r.prec;
  Hashtbl.reset r.prec;
  {
    Log.deps = List.rev r.deps;
    ranges = List.rev r.ranges;
    syscalls = outcome.syscalls;
    counters = outcome.counters;
    o1 = r.variant.o1;
    o2 = r.variant.o2;
  }

(** Interpreter hooks for a recording run. *)
let hooks (r : t) : Interp.hooks =
  {
    Interp.default_hooks with
    observe =
      Some
        (fun ev ->
          match ev with
          | Event.Access (a, _) -> on_access r a
          | _ -> ());
  }

let meter (r : t) : Metrics.Cost.meter = r.meter
