(** The Light recording algorithm (Algorithm 1) with its optimizations.

    The recorder is installed as interpreter hooks.  Per shared access
    (including the ghost accesses modeling sync primitives, Section 4.3):

    - writes atomically update the last-write map [lw] (lock-striped atomic
      section + volatile store, cost-charged);
    - reads atomically obtain the last write via the optimistic
      validate-retry of Section 2.3 and record the flow dependence in a
      {e thread-local} buffer — no synchronization on the recording path;
    - the [prec] map (lines 7/9) compresses a write followed by several
      reads from one thread into a single dep with a span;
    - O1 (Lemma 4.3) tracks, per location, the current run of consecutive
      same-thread accesses and records only its endpoints;
    - O2 (Lemma 4.2) skips recording entirely at sites the static analysis
      proves consistently lock-guarded (counters still tick so that
      [(tid, c)] identities align across variants and runs).

    Retries of the optimistic loop are modeled by the stripe-contention
    signal: a validate that races a concurrent writer pays one retry.

    {b Fast path.}  The per-access cost is a few array indexes and integer
    stores, with zero allocation on the common path:

    - the plan decision per site is resolved at prepare time into a byte
      table ({!Runtime.Plan.modes}) — one byte load instead of two closure
      calls into sid-keyed hashtables;
    - the last-write map is a flat open-addressing table ({!Lw}) over the
      packed interned [Loc.t] (two parallel int key columns, three int value
      columns): a probe is integer compares on int arrays, an update is
      three integer stores — no boxing, no option allocation.  The table is
      never iterated, so record order is untouched;
    - open deps and open runs are all-int mutable records reused in place:
      a (thread, loc) allocates its descriptor once and every subsequent
      access mutates integers (the seed allocated a fresh record and an
      option per prec replacement);
    - closed records land in int {!Arena} buffers (9 ints per dep, 12 per
      range, the [_obs] clock stamps packed alongside) in emission order;
      [Log.evt]-based structures materialize only at {!finalize}.  The
      single-domain simulator multiplexes what would be per-thread buffers
      into one arena per record kind — order equals the seed's merged
      thread-local buffers, so logs are byte-identical. *)

open Runtime

type variant = { o1 : bool; o2 : bool }

let v_basic = { o1 = false; o2 = false }
let v_o1 = { o1 = true; o2 = false }
let v_both = { o1 = true; o2 = true }

let variant_name v =
  match v.o1, v.o2 with
  | false, false -> "basic"
  | true, false -> "O1"
  | false, true -> "O2"
  | true, true -> "O1+O2"

(* ------------------------------------------------------------------ *)
(* Flat last-write table                                               *)
(* ------------------------------------------------------------------ *)

(* Open-addressing, power-of-two capacity, linear probing; keys are the two
   [Loc.t] immediates in parallel int columns ([kobj] = min_int marks an
   empty slot: object ids are small positive or small negative ghost ids),
   values are the last write's (tid, counter, access-clock stamp).  Entries
   are never removed; the table doubles at 50% load. *)
module Lw = struct
  type t = {
    mutable mask : int;
    mutable kobj : int array;
    mutable kfld : int array;
    mutable wt : int array;
    mutable wc : int array;
    mutable wobs : int array;
    mutable n : int;
  }

  let empty_key = min_int

  let create () =
    let cap = 2048 in
    {
      mask = cap - 1;
      kobj = Array.make cap empty_key;
      kfld = Array.make cap 0;
      wt = Array.make cap 0;
      wc = Array.make cap 0;
      wobs = Array.make cap 0;
      n = 0;
    }

  let[@inline] hash (obj : int) (fld : int) : int =
    let h = (obj * 65599) + fld in
    let h = h * 0x9E3779B1 in
    (h lxor (h lsr 16)) land max_int

  (* slot holding (obj, fld), or the empty slot where it would go *)
  let[@inline] slot (t : t) (obj : int) (fld : int) : int =
    let mask = t.mask in
    let i = ref (hash obj fld land mask) in
    while
      (let o = Array.unsafe_get t.kobj !i in
       o <> empty_key && not (o = obj && Array.unsafe_get t.kfld !i = fld))
    do
      i := (!i + 1) land mask
    done;
    !i

  let grow (t : t) : unit =
    let old_obj = t.kobj and old_fld = t.kfld in
    let old_wt = t.wt and old_wc = t.wc and old_wobs = t.wobs in
    let cap = 2 * (t.mask + 1) in
    t.mask <- cap - 1;
    t.kobj <- Array.make cap empty_key;
    t.kfld <- Array.make cap 0;
    t.wt <- Array.make cap 0;
    t.wc <- Array.make cap 0;
    t.wobs <- Array.make cap 0;
    Array.iteri
      (fun i o ->
        if o <> empty_key then begin
          let j = slot t o old_fld.(i) in
          t.kobj.(j) <- o;
          t.kfld.(j) <- old_fld.(i);
          t.wt.(j) <- old_wt.(i);
          t.wc.(j) <- old_wc.(i);
          t.wobs.(j) <- old_wobs.(i)
        end)
      old_obj

  (* slot with the key present, or -1 *)
  let[@inline] find (t : t) (obj : int) (fld : int) : int =
    let i = slot t obj fld in
    if Array.unsafe_get t.kobj i = empty_key then -1 else i

  let[@inline] set (t : t) (obj : int) (fld : int) ~(wt : int) ~(wc : int)
      ~(wobs : int) : unit =
    let i = slot t obj fld in
    if Array.unsafe_get t.kobj i = empty_key then begin
      t.n <- t.n + 1;
      Array.unsafe_set t.kobj i obj;
      Array.unsafe_set t.kfld i fld
    end;
    Array.unsafe_set t.wt i wt;
    Array.unsafe_set t.wc i wc;
    Array.unsafe_set t.wobs i wobs;
    if 2 * t.n > t.mask then grow t

  (* forget every entry (capacity retained) — epoch sealing: the next
     epoch's readers must see "no last write", i.e. the virtual
     initialization write of the epoch's checkpoint state *)
  let clear (t : t) : unit =
    Array.fill t.kobj 0 (Array.length t.kobj) empty_key;
    t.n <- 0
end

(* ------------------------------------------------------------------ *)
(* Record arenas                                                       *)
(* ------------------------------------------------------------------ *)

(* Growable int buffer holding closed records as packed integers, in
   emission order; entries never move until finalization. *)
module Arena = struct
  type t = { mutable buf : int array; mutable len : int }

  let create cap = { buf = Array.make cap 0; len = 0 }

  let[@inline] reserve (a : t) (k : int) : int =
    let base = a.len in
    if base + k > Array.length a.buf then begin
      let bigger = Array.make (max (2 * Array.length a.buf) (base + k)) 0 in
      Array.blit a.buf 0 bigger 0 base;
      a.buf <- bigger
    end;
    a.len <- base + k;
    base
end

(* a dep is 9 ints: obj fld w_t w_c w_obs rf_t rf_c rl_c dep_obs
   (w_t = -1 encodes the virtual initialization write) *)
let dep_width = 9

(* a range is 12 ints:
   obj fld rt lo hi w_t w_c prefix_reads has_write rng_obs lo_obs w_obs *)
let range_width = 12

(* open dep being extended by the prec optimization; the [_obs] fields
   carry access-clock stamps for the solver's witness reconstruction.
   All-int and fully mutable: one allocation per (thread, loc), reused in
   place across flushes.  [od_w_t] = -1 encodes the virtual init write. *)
type open_dep = {
  mutable od_w_t : int;
  mutable od_w_c : int;
  mutable od_w_obs : int;
  mutable od_rf_t : int;
  mutable od_rf_c : int;
  mutable od_rl : int;
  mutable od_rl_obs : int;
}

(* open O1 run.  The shape fields classify the run so that closing can pick
   the cheapest sound encoding:
   - reads only                     -> prec-compressed dep on [w_in]
   - writes only                    -> dropped (blind, or referenced later)
   - reads then writes  [R+ W+]     -> dep (w_in -> prefix-read span)
   - writes then reads  [W+ R+]     -> dep (last own write -> trailing span)
   - anything else (a read strictly between writes, or reads on both sides)
                                    -> a range record
   Like [open_dep], one descriptor per location, reused in place when the
   owning thread changes.  [or_w_in_t] = -1 encodes "no feeding write". *)
type open_run = {
  mutable or_t : int;
  mutable or_lo : int;
  mutable or_lo_obs : int;              (* access clock at the first access *)
  mutable or_hi : int;
  mutable or_hi_obs : int;              (* access clock at the last access *)
  mutable or_w_in_t : int;
  mutable or_w_in_c : int;
  mutable or_w_obs : int;               (* access clock of [w_in], or 0 *)
  mutable or_prefix_reads : bool;
  mutable or_has_write : bool;
  mutable or_has_read : bool;
  mutable or_middle_read : bool;        (* a read between two own writes *)
  mutable or_last_prefix_read : int;    (* last read before any own write, or 0 *)
  mutable or_last_prefix_read_obs : int;
  mutable or_last_write : int;          (* counter of the last own write, or 0 *)
  mutable or_last_write_obs : int;
  mutable or_first_read_after_w : int;  (* first read after the last own write, or 0 *)
}

type t = {
  (* [variant], [modes] and [site_hits] are mutable so a long-lived recorder
     can be retargeted to another prepared program by [reset] (the record
     service recycles one recorder per worker domain across sessions) *)
  mutable variant : variant;
  mutable modes : Bytes.t;  (* per-sid plan decision, Plan.m_* encoding *)
  meter : Metrics.Cost.meter;
  stripes : Metrics.Cost.stripes;
  lw : Lw.t;  (* last write per location, with its clock *)
  (* V_basic path: prec per (thread, loc) *)
  prec : (int, open_dep Loc.Tbl.t) Hashtbl.t;
  (* O1 path: current run per location *)
  runs : open_run Loc.Tbl.t;
  deps : Arena.t;    (* merged thread-local buffers, dep_width ints each *)
  ranges : Arena.t;  (* range_width ints each *)
  mutable site_hits : int array;  (* per-sid access counts (observability) *)
  mutable accesses : int;  (* global access clock; stamps the [_obs] fields *)
  mutable skipped_guarded : int;
}

let create ?(variant = v_both) ?(weights = Metrics.Cost.default_weights)
    (modes : Bytes.t) : t =
  {
    variant;
    modes;
    meter = Metrics.Cost.meter ~weights ();
    stripes = Metrics.Cost.stripes ();
    lw = Lw.create ();
    prec = Hashtbl.create 16;
    runs = Loc.Tbl.create 1024;
    deps = Arena.create 4096;
    ranges = Arena.create 1024;
    site_hits = Array.make (max 1 (Bytes.length modes)) 0;
    accesses = 0;
    skipped_guarded = 0;
  }

(** Reset-in-place for session recycling: restore exactly the observable
    state of a fresh [create ~variant modes] while retaining every grown
    capacity — the last-write table's five parallel arrays, the dep/range
    arena buffers, the open-run and prec hash tables' buckets, and the
    contention-stripe rings (~200KB of allocation per session avoided).
    Soundness of the reuse: recording consults only table {e contents},
    never capacity, so a cleared-but-bigger structure is indistinguishable
    from a fresh one and recycled sessions produce byte-identical logs (the
    service tests diff them).  [site_hits] is re-zeroed here so profile
    counts never bleed across sessions; it only reallocates when the new
    program has more sites.  The meter's weights are retained. *)
let reset ?variant (r : t) (modes : Bytes.t) : unit =
  (match variant with Some v -> r.variant <- v | None -> ());
  r.modes <- modes;
  Metrics.Cost.reset_meter r.meter;
  Metrics.Cost.reset_stripes r.stripes;
  Lw.clear r.lw;
  (* keep the per-thread prec tables themselves: the next session almost
     always runs the same tid range, so the outer table and the inner
     buckets are both warm *)
  Hashtbl.iter (fun _ tbl -> Loc.Tbl.clear tbl) r.prec;
  Loc.Tbl.clear r.runs;
  r.deps.Arena.len <- 0;
  r.ranges.Arena.len <- 0;
  let n = max 1 (Bytes.length modes) in
  if Array.length r.site_hits < n then r.site_hits <- Array.make n 0
  else Array.fill r.site_hits 0 (Array.length r.site_hits) 0;
  r.accesses <- 0;
  r.skipped_guarded <- 0

let emit_dep (r : t) (loc : Loc.t) (od : open_dep) : unit =
  Metrics.Cost.charge_dep_append r.meter;
  let b = Arena.reserve r.deps dep_width in
  let a = r.deps.buf in
  a.(b) <- loc.obj;
  a.(b + 1) <- loc.fld;
  a.(b + 2) <- od.od_w_t;
  a.(b + 3) <- od.od_w_c;
  a.(b + 4) <- od.od_w_obs;
  a.(b + 5) <- od.od_rf_t;
  a.(b + 6) <- od.od_rf_c;
  a.(b + 7) <- od.od_rl;
  a.(b + 8) <- od.od_rl_obs

let prec_of (r : t) (tid : int) : open_dep Loc.Tbl.t =
  match Hashtbl.find r.prec tid with
  | h -> h
  | exception Not_found ->
    let h = Loc.Tbl.create 64 in
    Hashtbl.add r.prec tid h;
    h

let emit_range (r : t) (loc : Loc.t) (run : open_run) : unit =
  (* Pure-write runs are not recorded: their last write is referenced by the
     next reader's [w_in] if it matters; earlier writes are blind.  Any run
     containing a read must be recorded — its reads need the interval's
     noninterference protection even when they read the run's own writes.
     Read-only runs route through the prec/dep machinery of Algorithm 1:
     a read interval [rf..rl] with source [w_in] has exactly the same
     constraint semantics as a writeless range, and consecutive runs reading
     the same write (common when several threads interleave reads) compress
     into one record. *)
  if run.or_has_read then
    if not run.or_has_write then begin
      let prec = prec_of r run.or_t in
      match Loc.Tbl.find prec loc with
      | od when od.od_w_t = run.or_w_in_t && od.od_w_c = run.or_w_in_c ->
        Metrics.Cost.charge_prec_hit r.meter;
        od.od_rl <- run.or_hi;
        od.od_rl_obs <- run.or_hi_obs
      | od ->
        emit_dep r loc od;
        od.od_w_t <- run.or_w_in_t;
        od.od_w_c <- run.or_w_in_c;
        od.od_w_obs <- run.or_w_obs;
        od.od_rf_t <- run.or_t;
        od.od_rf_c <- run.or_lo;
        od.od_rl <- run.or_hi;
        od.od_rl_obs <- run.or_hi_obs
      | exception Not_found ->
        Loc.Tbl.add prec loc
          {
            od_w_t = run.or_w_in_t;
            od_w_c = run.or_w_in_c;
            od_w_obs = run.or_w_obs;
            od_rf_t = run.or_t;
            od_rf_c = run.or_lo;
            od_rl = run.or_hi;
            od_rl_obs = run.or_hi_obs;
          }
    end
    else if
      (not run.or_middle_read)
      && not (run.or_last_prefix_read > 0 && run.or_first_read_after_w > 0)
    then begin
      (* one-sided run: a single dep carries the same constraints as the
         range, one long cheaper.  [R+ W+]: the prefix reads see w_in and the
         trailing writes behave like V_basic writes (last one referenced by
         future readers, earlier ones blind).  [W+ R+]: the trailing reads
         see the run's last own write. *)
      let prec = prec_of r run.or_t in
      (match Loc.Tbl.find prec loc with
      | od ->
        emit_dep r loc od;
        Loc.Tbl.remove prec loc
      | exception Not_found -> ());
      Metrics.Cost.charge_dep_append r.meter;
      let b = Arena.reserve r.deps dep_width in
      let a = r.deps.buf in
      a.(b) <- loc.obj;
      a.(b + 1) <- loc.fld;
      a.(b + 5) <- run.or_t;
      if run.or_first_read_after_w > 0 then begin
        a.(b + 2) <- run.or_t;
        a.(b + 3) <- run.or_last_write;
        a.(b + 4) <- run.or_last_write_obs;
        a.(b + 6) <- run.or_first_read_after_w;
        a.(b + 7) <- run.or_hi;
        a.(b + 8) <- run.or_hi_obs
      end
      else begin
        a.(b + 2) <- run.or_w_in_t;
        a.(b + 3) <- run.or_w_in_c;
        a.(b + 4) <- run.or_w_obs;
        a.(b + 6) <- run.or_lo;
        a.(b + 7) <- run.or_last_prefix_read;
        a.(b + 8) <- run.or_last_prefix_read_obs
      end
    end
    else begin
      (* write-containing run: the prec entry for this (thread, loc) must be
         flushed first so records stay disjoint in counter space *)
      let prec = prec_of r run.or_t in
      (match Loc.Tbl.find prec loc with
      | od ->
        emit_dep r loc od;
        Loc.Tbl.remove prec loc
      | exception Not_found -> ());
      Metrics.Cost.charge_dep_append r.meter;
      let b = Arena.reserve r.ranges range_width in
      let a = r.ranges.buf in
      a.(b) <- loc.obj;
      a.(b + 1) <- loc.fld;
      a.(b + 2) <- run.or_t;
      a.(b + 3) <- run.or_lo;
      a.(b + 4) <- run.or_hi;
      a.(b + 5) <- run.or_w_in_t;
      a.(b + 6) <- run.or_w_in_c;
      a.(b + 7) <- (if run.or_prefix_reads then 1 else 0);
      a.(b + 8) <- (if run.or_has_write then 1 else 0);
      a.(b + 9) <- run.or_hi_obs;
      a.(b + 10) <- run.or_lo_obs;
      a.(b + 11) <- run.or_w_obs
    end

(* ------------------------------------------------------------------ *)
(* Access handling                                                     *)
(* ------------------------------------------------------------------ *)

let on_access_fast (r : t) ~(tid : int) ~(c : int) ~(loc : Loc.t)
    ~(kind : Event.akind) ~(site : int) ~(ghost : Event.ghost_kind) : unit =
  let open Metrics.Cost in
  r.accesses <- r.accesses + 1;
  if site >= 0 && site < Array.length r.site_hits then
    Array.unsafe_set r.site_hits site (Array.unsafe_get r.site_hits site + 1);
  let guarded =
    ghost = NotGhost && r.variant.o2
    && site >= 0
    && site < Bytes.length r.modes
    && Bytes.unsafe_get r.modes site = Plan.m_guarded
  in
  if guarded then begin
    (* O2: the guarding lock's ghost deps subsume this access; the woven
       code keeps only an inlined counter increment — no recording, no lw
       update (every site on this location is guarded, so lw is never
       consulted for it either) *)
    charge_guarded_tick r.meter;
    r.skipped_guarded <- r.skipped_guarded + 1
  end
  else begin
    charge_tick r.meter;
    let now = r.accesses in  (* this access's clock stamp *)
    if r.variant.o1 then begin
      (* O1 run tracking: extending the thread's own run is a thread-local
         fast path; breaking another thread's run takes the striped atomic *)
      (match Loc.Tbl.find r.runs loc with
      | run when run.or_t = tid ->
        charge_extend r.meter;
        run.or_hi <- c;
        run.or_hi_obs <- now;
        (match kind with
        | Write ->
          if run.or_first_read_after_w > 0 then run.or_middle_read <- true;
          run.or_has_write <- true;
          run.or_last_write <- c;
          run.or_last_write_obs <- now;
          run.or_first_read_after_w <- 0
        | Read ->
          run.or_has_read <- true;
          if not run.or_has_write then begin
            run.or_last_prefix_read <- c;
            run.or_last_prefix_read_obs <- now
          end
          else if run.or_first_read_after_w = 0 then run.or_first_read_after_w <- c)
      | run ->
        (* another thread's run: close it and reuse its descriptor in place *)
        let level = touch r.stripes loc ~tid in
        charge_switch r.meter ~level;
        emit_range r loc run;
        let is_read = kind = Event.Read in
        let wslot = if is_read then Lw.find r.lw loc.obj loc.fld else -1 in
        run.or_t <- tid;
        run.or_lo <- c;
        run.or_lo_obs <- now;
        run.or_hi <- c;
        run.or_hi_obs <- now;
        (if wslot >= 0 then begin
           run.or_w_in_t <- Array.unsafe_get r.lw.Lw.wt wslot;
           run.or_w_in_c <- Array.unsafe_get r.lw.Lw.wc wslot;
           run.or_w_obs <- Array.unsafe_get r.lw.Lw.wobs wslot
         end
         else begin
           run.or_w_in_t <- -1;
           run.or_w_in_c <- -1;
           run.or_w_obs <- 0
         end);
        run.or_prefix_reads <- is_read;
        run.or_has_write <- not is_read;
        run.or_has_read <- is_read;
        run.or_middle_read <- false;
        run.or_last_prefix_read <- (if is_read then c else 0);
        run.or_last_prefix_read_obs <- (if is_read then now else 0);
        run.or_last_write <- (if is_read then 0 else c);
        run.or_last_write_obs <- (if is_read then 0 else now);
        run.or_first_read_after_w <- 0
      | exception Not_found ->
        let level = touch r.stripes loc ~tid in
        charge_switch r.meter ~level;
        let is_read = kind = Event.Read in
        let wslot = if is_read then Lw.find r.lw loc.obj loc.fld else -1 in
        Loc.Tbl.add r.runs loc
          {
            or_t = tid;
            or_lo = c;
            or_lo_obs = now;
            or_hi = c;
            or_hi_obs = now;
            or_w_in_t = (if wslot >= 0 then r.lw.Lw.wt.(wslot) else -1);
            or_w_in_c = (if wslot >= 0 then r.lw.Lw.wc.(wslot) else -1);
            or_w_obs = (if wslot >= 0 then r.lw.Lw.wobs.(wslot) else 0);
            or_prefix_reads = is_read;
            or_has_write = not is_read;
            or_has_read = is_read;
            or_middle_read = false;
            or_last_prefix_read = (if is_read then c else 0);
            or_last_prefix_read_obs = (if is_read then now else 0);
            or_last_write = (if is_read then 0 else c);
            or_last_write_obs = (if is_read then 0 else now);
            or_first_read_after_w = 0;
          });
      if kind = Event.Write then Lw.set r.lw loc.obj loc.fld ~wt:tid ~wc:c ~wobs:now
    end
    else begin
      (* Algorithm 1 verbatim *)
      match kind with
      | Write ->
        let level = touch r.stripes loc ~tid in
        charge_lw r.meter ~level;
        Lw.set r.lw loc.obj loc.fld ~wt:tid ~wc:c ~wobs:now
      | Read ->
        let level = touch r.stripes loc ~tid in
        charge_validate r.meter ~level;
        let wslot = Lw.find r.lw loc.obj loc.fld in
        let cw_t = if wslot >= 0 then Array.unsafe_get r.lw.Lw.wt wslot else -1 in
        let cw_c = if wslot >= 0 then Array.unsafe_get r.lw.Lw.wc wslot else -1 in
        let prec = prec_of r tid in
        (match Loc.Tbl.find prec loc with
        | od when od.od_w_t = cw_t && od.od_w_c = cw_c ->
          (* same write as the previous read: extend the span (line 7) *)
          charge_prec_hit r.meter;
          od.od_rl <- c;
          od.od_rl_obs <- now
        | od ->
          emit_dep r loc od;
          od.od_w_t <- cw_t;
          od.od_w_c <- cw_c;
          od.od_w_obs <- (if wslot >= 0 then Array.unsafe_get r.lw.Lw.wobs wslot else 0);
          od.od_rf_t <- tid;
          od.od_rf_c <- c;
          od.od_rl <- c;
          od.od_rl_obs <- now
        | exception Not_found ->
          Loc.Tbl.add prec loc
            {
              od_w_t = cw_t;
              od_w_c = cw_c;
              od_w_obs = (if wslot >= 0 then r.lw.Lw.wobs.(wslot) else 0);
              od_rf_t = tid;
              od_rf_c = c;
              od_rl = c;
              od_rl_obs = now;
            })
    end
  end

(** Exposed for white-box tests; [hooks] routes accesses through the
    flattened fast path directly. *)
let on_access (r : t) (a : Event.access) : unit =
  on_access_fast r ~tid:a.tid ~c:a.c ~loc:a.loc ~kind:a.kind ~site:a.site ~ghost:a.ghost

(* ------------------------------------------------------------------ *)
(* Finalization                                                        *)
(* ------------------------------------------------------------------ *)

(** Close out everything recorded since the previous seal (or creation) and
    return it as a [Log.t].  Unlike a plain flush this also {e clears} the
    last-write table, so accesses recorded after a seal reference writes
    from before it as [w = None] — the virtual initialization write, whose
    value is supplied by the epoch's checkpoint.  That one invariant is what
    makes each sealed log a self-contained per-epoch constraint system.
    The access clock, site-hit counts and cost meter stay cumulative across
    seals. *)
let seal (r : t) ~(syscalls : (int * int * string * Value.t) list)
    ~(counters : (int * int) list) : Log.t =
  (* flush open runs first: read-only runs drain into the prec map, which is
     flushed afterwards *)
  Loc.Tbl.iter (fun loc run -> emit_range r loc run) r.runs;
  Loc.Tbl.reset r.runs;
  Hashtbl.iter (fun _ tbl -> Loc.Tbl.iter (fun loc od -> emit_dep r loc od) tbl) r.prec;
  Hashtbl.reset r.prec;
  (* materialize the arenas, back to front (the lists come out in emission
     order, as the seed's reversed cons-lists did) *)
  let deps = ref [] in
  let a = r.deps.Arena.buf in
  let b = ref (r.deps.Arena.len - dep_width) in
  while !b >= 0 do
    let b0 = !b in
    deps :=
      {
        Log.loc = { Loc.obj = a.(b0); fld = a.(b0 + 1) };
        w = (if a.(b0 + 2) < 0 then None else Some (a.(b0 + 2), a.(b0 + 3)));
        w_obs = a.(b0 + 4);
        rf = (a.(b0 + 5), a.(b0 + 6));
        rl_c = a.(b0 + 7);
        dep_obs = a.(b0 + 8);
      }
      :: !deps;
    b := b0 - dep_width
  done;
  let ranges = ref [] in
  let a = r.ranges.Arena.buf in
  let b = ref (r.ranges.Arena.len - range_width) in
  while !b >= 0 do
    let b0 = !b in
    ranges :=
      {
        Log.loc = { Loc.obj = a.(b0); fld = a.(b0 + 1) };
        rt = a.(b0 + 2);
        lo = a.(b0 + 3);
        hi = a.(b0 + 4);
        w_in = (if a.(b0 + 5) < 0 then None else Some (a.(b0 + 5), a.(b0 + 6)));
        prefix_reads = a.(b0 + 7) = 1;
        has_write = a.(b0 + 8) = 1;
        rng_obs = a.(b0 + 9);
        lo_obs = a.(b0 + 10);
        w_obs = a.(b0 + 11);
      }
      :: !ranges;
    b := b0 - range_width
  done;
  r.deps.Arena.len <- 0;
  r.ranges.Arena.len <- 0;
  Lw.clear r.lw;
  {
    Log.deps = !deps;
    ranges = !ranges;
    syscalls;
    counters;
    o1 = r.variant.o1;
    o2 = r.variant.o2;
  }

let finalize (r : t) ~(outcome : Interp.outcome) : Log.t =
  seal r ~syscalls:outcome.syscalls ~counters:outcome.counters

(** Interpreter hooks for a recording run (the allocation-free flattened
    access hook; no [Event.t] is ever constructed). *)
let hooks (r : t) : Interp.hooks =
  {
    Interp.default_hooks with
    on_shared =
      Some
        (fun ~tid ~c ~loc ~kind ~site ~ghost ->
          on_access_fast r ~tid ~c ~loc ~kind ~site ~ghost);
  }

let meter (r : t) : Metrics.Cost.meter = r.meter

let site_hits (r : t) : int array = r.site_hits

(** Cumulative access-clock value: total instrumented accesses recorded so
    far, across every sealed epoch (never reset by {!seal}). *)
let accesses (r : t) : int = r.accesses
