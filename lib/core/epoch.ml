(** Epoch-based recording: checkpoint + log rotation + incremental solving.

    A monolithic recording holds the whole run's dependence log (and its
    constraint system) in memory at once — fine for a test run, fatal for a
    service that records forever.  Following iReplayer's in-situ epoch
    model, this module cuts the recording into fixed-length step windows:

    - at each epoch boundary the complete interpreter state is
      checkpointed ({!Interp.snapshot}: frames, heap, locks, waitsets,
      scheduler and RNG positions) and the recorder's arena buffers are
      {e sealed} ({!Recorder.seal}) into a self-contained per-epoch
      {!Log.t}.  Sealing clears the last-write table, so reads in the next
      epoch reference pre-boundary writes as the virtual initialization
      write — whose value is exactly what the checkpoint restores;
    - constraint generation + solving run per epoch.  Each epoch's witness
      hint is shifted above the previous epoch's largest model value
      ({!Replayer.solve} [?hint_shift]); IDL is translation-invariant, so
      the per-epoch schedules concatenate into one globally consistent
      order;
    - replay of epoch [k] restores checkpoint [k] and replays only epoch
      [k]'s constrained events, fenced at the epoch's counter watermark —
      O(epoch) work regardless of run length.

    The on-disk form is log format v4: a per-epoch header line, checkpoint
    lines, an intern-table {e delta}, then the epoch's v3-style record
    body.  v2/v3 readers and writers are untouched ({!Log}); the
    monolithic path remains the differential oracle. *)

open Runtime

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

type epoch = {
  ep_idx : int;
  ep_start_steps : int;  (** interpreter step count at the epoch's start *)
  ep_steps : int;        (** step count at the epoch's end (= next start) *)
  ep_clock : int;        (** cumulative recorder access clock at the end *)
  ep_sched : string;     (** scheduler pick-state token at the start *)
  ep_snapshot : Interp.snapshot;  (** checkpoint at the epoch's start *)
  ep_log : Log.t;  (** sealed window; [counters] = watermark at the end *)
  ep_obs : Interp.observables;  (** this window's reads/outputs/syscalls *)
  ep_out_base : (int * int) list;
      (** cumulative output count per thread at the epoch's start, for
          slicing a monolithic outcome against this window *)
}

type recording = {
  er_prepared : Light.prepared;
  er_epoch_len : int;
  er_seed : int;
  er_epochs : epoch list;  (** in order *)
  er_outcome : Interp.outcome;  (** whole-run observables, reassembled *)
  er_site_hits : int array;  (** cumulative across all sealed epochs *)
  er_seal_times : float list;  (** per-epoch seal latency, seconds *)
}

(** Record [pp] under [sched], checkpointing and sealing every [epoch_len]
    interpreter steps.  The final epoch is sealed by whatever terminates
    the run (normal completion, deadlock, or [max_steps]); a run ending
    exactly on a boundary still seals the (then empty) trailing window. *)
(* The recording loop, parameterized over what happens to each sealed
   epoch: [record_epochs] accumulates them (and reassembles the whole-run
   observables), [record_epochs_stream] serializes and drops them, so its
   live memory is bounded by one window regardless of run length. *)
let run_epoch_loop ~engine ~sched ~max_steps ~seed ~weights ~epoch_len
    (pp : Light.prepared) ~(on_epoch : epoch -> unit) =
  if epoch_len <= 0 then invalid_arg "record_epochs: epoch_len must be positive";
  let recorder =
    Recorder.create ~variant:(Light.prepared_variant pp) ~weights
      (Light.prepared_modes pp)
  in
  let ses =
    Vm.start_session ~hooks:(Recorder.hooks recorder)
      ~plan:(Light.prepared_plan pp) ~seed engine
      ~compiled:(Light.prepared_compiled pp)
      ~bytecode:(Light.prepared_bytecode pp)
  in
  let seal_times = ref [] in
  let out_counts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let idx = ref 0 in
  let final = ref None in
  while !final = None do
    let sn = ses.Vm.s_snapshot () in
    let sched_tok = sched.Sched.save () in
    let out_base =
      List.map
        (fun (t : Interp.snap_thread) ->
          (t.sn_tid, Option.value ~default:0 (Hashtbl.find_opt out_counts t.sn_tid)))
        sn.snap_threads
    in
    let stop_at = ses.Vm.s_steps () + epoch_len in
    let status = ses.Vm.s_run ~max_steps ~stop_at ~sched () in
    let t0 = Unix.gettimeofday () in
    let counters = ses.Vm.s_counters () in
    let obs = ses.Vm.s_drain () in
    let log = Recorder.seal recorder ~syscalls:obs.obs_syscalls ~counters in
    seal_times := (Unix.gettimeofday () -. t0) :: !seal_times;
    List.iter
      (fun (tid, outs) ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt out_counts tid) in
        Hashtbl.replace out_counts tid (prev + List.length outs))
      obs.Interp.obs_outputs;
    on_epoch
      {
        ep_idx = !idx;
        ep_start_steps = sn.Interp.snap_steps;
        ep_steps = ses.Vm.s_steps ();
        ep_clock = Recorder.accesses recorder;
        ep_sched = sched_tok;
        ep_snapshot = sn;
        ep_log = log;
        ep_obs = obs;
        ep_out_base = out_base;
      };
    incr idx;
    final := status
  done;
  (Option.get !final, ses, recorder, List.rev !seal_times)

let record_epochs ?(engine = Vm.Tree) ?(sched = Sched.random ~seed:1)
    ?(max_steps = 5_000_000) ?(seed = 0)
    ?(weights = Metrics.Cost.default_weights) ~(epoch_len : int)
    (pp : Light.prepared) : recording =
  let epochs = ref [] in
  let status, ses, recorder, seal_times =
    run_epoch_loop ~engine ~sched ~max_steps ~seed ~weights ~epoch_len pp
      ~on_epoch:(fun e -> epochs := e :: !epochs)
  in
  let eps = List.rev !epochs in
  (* reassemble the whole-run observables from the per-epoch windows (the
     state's own buffers were drained at every boundary) *)
  let base = ses.Vm.s_outcome status in
  let gather proj tid =
    List.concat_map
      (fun (e : epoch) ->
        match List.assoc_opt tid (proj e.ep_obs) with Some l -> l | None -> [])
      eps
  in
  let tids = List.map fst base.Interp.counters in
  let outcome =
    {
      base with
      Interp.reads = List.map (fun tid -> (tid, gather (fun o -> o.Interp.obs_reads) tid)) tids;
      outputs = List.map (fun tid -> (tid, gather (fun o -> o.Interp.obs_outputs) tid)) tids;
      syscalls = List.concat_map (fun (e : epoch) -> e.ep_obs.Interp.obs_syscalls) eps;
    }
  in
  {
    er_prepared = pp;
    er_epoch_len = epoch_len;
    er_seed = seed;
    er_epochs = eps;
    er_outcome = outcome;
    er_site_hits = Recorder.site_hits recorder;
    er_seal_times = seal_times;
  }

(* ------------------------------------------------------------------ *)
(* Incremental solving                                                 *)
(* ------------------------------------------------------------------ *)

type epoch_solution = {
  es_idx : int;
  es_shift : int;  (** hint shift applied (previous epochs' watermark) *)
  es_report : Replayer.solve_report;
}

(** Solve every epoch's constraint system in order, seeding each from its
    own recorded-schedule witness shifted above the previous epoch's
    largest model value, so the concatenation of the per-epoch orders is a
    single consistent global order. *)
let solve_epochs ?budget (r : recording) : epoch_solution list =
  let shift = ref 0 in
  List.map
    (fun (e : epoch) ->
      let rep = Replayer.solve ?budget ~hint_shift:!shift e.ep_log in
      let applied = !shift in
      shift := max !shift rep.Replayer.max_model + 16;
      { es_idx = e.ep_idx; es_shift = applied; es_report = rep })
    r.er_epochs

(* ------------------------------------------------------------------ *)
(* Single-epoch replay                                                 *)
(* ------------------------------------------------------------------ *)

type epoch_replay = {
  rr_status : Interp.status_summary;
      (** [GateStuck] for interior epochs (every thread fenced at the
          boundary watermark), terminal status for the last *)
  rr_steps : int;  (** steps executed by the replay (O(epoch)) *)
  rr_obs : Interp.observables;  (** the replayed window's observables *)
  rr_report : Replayer.solve_report;
}

(* Fence the replay at the epoch's counter watermark: any shared access
   that would push a thread past its recorded end-of-epoch D(t) is denied.
   Without the fence, threads whose constrained events all executed would
   free-run into later epochs (their accesses are unconstrained in this
   epoch's schedule), making the replay O(run) again.  A thread absent
   from the watermark (spawned in a later epoch) is fenced at 0. *)
let fenced_hooks (hooks : Interp.hooks) (watermark : (int * int) list) :
    Interp.hooks =
  let dmax : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (t, d) -> Hashtbl.replace dmax t d) watermark;
  let fence (pre : Event.pre) =
    pre.Event.c <= Option.value ~default:0 (Hashtbl.find_opt dmax pre.Event.tid)
  in
  {
    hooks with
    Interp.gate =
      (match hooks.Interp.gate with
      | Some g -> Some (fun pre -> fence pre && g pre)
      | None -> Some fence);
  }

(** Replay epoch [k] of [r] standalone: solve its sealed log, restore its
    checkpoint, and run fenced at its counter watermark.  Work is
    proportional to the epoch, never the run. *)
let replay_epoch ?solver_budget ?(max_steps = 10_000_000) ?(engine = Vm.Tree)
    (r : recording) (k : int) : (epoch_replay, string) result =
  match List.nth_opt r.er_epochs k with
  | None -> Error (Printf.sprintf "no epoch %d (recording has %d)" k (List.length r.er_epochs))
  | Some e -> (
    let rep = Replayer.solve ?budget:solver_budget e.ep_log in
    match rep.Replayer.schedule with
    | None ->
      Error
        (match rep.Replayer.result_kind with
        | Replayer.SolverAborted -> "solver budget exhausted"
        | _ -> "epoch constraint system unsatisfiable")
    | Some sch ->
      let plan = Light.prepared_plan r.er_prepared in
      let d = Replayer.driver sch ~plan in
      let hooks = fenced_hooks d.Replayer.hooks e.ep_log.Log.counters in
      let ses =
        Vm.restore_session ~hooks ~plan engine
          ~compiled:(Light.prepared_compiled r.er_prepared)
          ~bytecode:(Light.prepared_bytecode r.er_prepared)
          e.ep_snapshot
      in
      let status =
        match
          ses.Vm.s_run ~max_steps:(e.ep_start_steps + max_steps)
            ~sched:(Sched.round_robin ()) ()
        with
        | Some s -> s
        | None -> assert false
      in
      let obs = ses.Vm.s_drain () in
      Ok
        {
          rr_status = status;
          rr_steps = ses.Vm.s_steps () - e.ep_start_steps;
          rr_obs = obs;
          rr_report = rep;
        })

(* ------------------------------------------------------------------ *)
(* Window slicing (differential oracles)                               *)
(* ------------------------------------------------------------------ *)

(** Slice a whole-run outcome down to epoch [k]'s window: per-thread reads
    with counters in [(d0, d1]], outputs by cumulative position, syscalls
    by per-thread index — directly comparable with {!epoch_replay.rr_obs}
    (and with {!epoch.ep_obs}). *)
let slice_outcome (r : recording) (k : int) (o : Interp.outcome) :
    Interp.observables =
  let e = List.nth r.er_epochs k in
  let d0 tid =
    match
      List.find_opt
        (fun (t : Interp.snap_thread) -> t.sn_tid = tid)
        e.ep_snapshot.Interp.snap_threads
    with
    | Some t -> t.Interp.sn_d
    | None -> 0
  in
  let d1 tid = Option.value ~default:0 (List.assoc_opt tid e.ep_log.Log.counters) in
  let tids = List.map fst e.ep_log.Log.counters in
  let reads =
    List.map
      (fun tid ->
        let all = Option.value ~default:[] (List.assoc_opt tid o.Interp.reads) in
        (tid, List.filter (fun (c, _) -> c > d0 tid && c <= d1 tid) all))
      tids
  in
  let outputs =
    List.map
      (fun tid ->
        let all = Option.value ~default:[] (List.assoc_opt tid o.Interp.outputs) in
        let base = Option.value ~default:0 (List.assoc_opt tid e.ep_out_base) in
        let count =
          match List.assoc_opt tid e.ep_obs.Interp.obs_outputs with
          | Some l -> List.length l
          | None -> 0
        in
        ( tid,
          List.filteri (fun i _ -> i >= base && i < base + count) all ))
      tids
  in
  let sys_lo tid = (* syscall idx range from the window's own syscalls *)
    List.filter_map
      (fun (t, i, _, _) -> if t = tid then Some i else None)
      e.ep_obs.Interp.obs_syscalls
    |> function [] -> None | l -> Some (List.fold_left min max_int l, List.fold_left max 0 l)
  in
  let syscalls =
    List.filter
      (fun (t, i, _, _) ->
        match sys_lo t with Some (lo, hi) -> i >= lo && i <= hi | None -> false)
      o.Interp.syscalls
  in
  { Interp.obs_reads = reads; obs_outputs = outputs; obs_syscalls = syscalls }

(** Compare a replayed epoch window against an expected one.  Reads must
    match exactly inside the counter window; outputs and syscalls must
    match on the window positions, tolerating deterministic local overrun
    past the boundary (extra trailing items in the replay are items of the
    next window, checked there). *)
let window_matches ~(expected : Interp.observables)
    (actual : Interp.observables) : string list =
  let ms = ref [] in
  let add fmt = Printf.ksprintf (fun m -> ms := m :: !ms) fmt in
  List.iter
    (fun (tid, exp_reads) ->
      let act = Option.value ~default:[] (List.assoc_opt tid actual.Interp.obs_reads) in
      (* the fence caps replay reads at the watermark, but a restored run's
         reads all carry counters in the window by construction *)
      if exp_reads <> act then
        add "reads: thread %d differs (%d expected, %d actual)" tid
          (List.length exp_reads) (List.length act))
    expected.Interp.obs_reads;
  List.iter
    (fun (tid, exp_outs) ->
      let act = Option.value ~default:[] (List.assoc_opt tid actual.Interp.obs_outputs) in
      let n = List.length exp_outs in
      let act_window = List.filteri (fun i _ -> i < n) act in
      if List.length act < n then
        add "outputs: thread %d short (%d expected, %d actual)" tid n (List.length act)
      else if exp_outs <> act_window then add "outputs: thread %d differs" tid)
    expected.Interp.obs_outputs;
  (* syscalls are a per-thread stream (idx is the thread-local position);
     the global interleaving differs between the original and the replay,
     so compare per thread, ordered by idx *)
  let by_tid sys =
    let tbl : (int, (int * string * Value.t) list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (t, i, n, v) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl t) in
        Hashtbl.replace tbl t ((i, n, v) :: prev))
      sys;
    Hashtbl.fold (fun t l acc -> (t, List.sort compare l) :: acc) tbl []
  in
  let act_by_tid = by_tid actual.Interp.obs_syscalls in
  List.iter
    (fun (tid, exp_l) ->
      let act_l = Option.value ~default:[] (List.assoc_opt tid act_by_tid) in
      let n = List.length exp_l in
      if List.length act_l < n then
        add "syscalls: thread %d short (%d expected, %d actual)" tid n
          (List.length act_l)
      else if exp_l <> List.filteri (fun i _ -> i < n) act_l then
        add "syscalls: thread %d differs" tid)
    (by_tid expected.Interp.obs_syscalls);
  List.rev !ms

(* ------------------------------------------------------------------ *)
(* Log format v4 (streaming chunked)                                   *)
(* ------------------------------------------------------------------ *)

(** What one epoch contributes to a v4 file (and what a reader gets back):
    everything {!replay_epoch} needs except the compiled program. *)
type chunk = {
  ck_idx : int;
  ck_start_steps : int;
  ck_steps : int;
  ck_clock : int;
  ck_sched : string;
  ck_snapshot : Interp.snapshot;
  ck_log : Log.t;
}

type file = {
  f_o1 : bool;
  f_o2 : bool;
  f_epoch_len : int;
  f_chunks : chunk list;
}

let chunk_of_epoch (e : epoch) : chunk =
  {
    ck_idx = e.ep_idx;
    ck_start_steps = e.ep_start_steps;
    ck_steps = e.ep_steps;
    ck_clock = e.ep_clock;
    ck_sched = e.ep_sched;
    ck_snapshot = e.ep_snapshot;
    ck_log = e.ep_log;
  }

let file_of_recording (r : recording) : file =
  let v = Light.prepared_variant r.er_prepared in
  {
    f_o1 = v.Recorder.o1;
    f_o2 = v.Recorder.o2;
    f_epoch_len = r.er_epoch_len;
    f_chunks = List.map chunk_of_epoch r.er_epochs;
  }

let add_status (buf : Buffer.t) (s : Interp.tstatus) : unit =
  let open Interp in
  match s with
  | Runnable -> Buffer.add_string buf "run"
  | BlockedLock m -> Buffer.add_string buf (Printf.sprintf "bll:%d" m)
  | BlockedJoin t -> Buffer.add_string buf (Printf.sprintf "blj:%d" t)
  | InWait m -> Buffer.add_string buf (Printf.sprintf "wait:%d" m)
  | Notified m -> Buffer.add_string buf (Printf.sprintf "ntf:%d" m)
  | Reacquiring m -> Buffer.add_string buf (Printf.sprintf "reacq:%d" m)
  | Finished -> Buffer.add_string buf "fin"
  | Crashed -> Buffer.add_string buf "crashed"

let status_of_string (s : string) : Interp.tstatus =
  let open Interp in
  match String.split_on_char ':' s with
  | [ "run" ] -> Runnable
  | [ "bll"; m ] -> BlockedLock (int_of_string m)
  | [ "blj"; t ] -> BlockedJoin (int_of_string t)
  | [ "wait"; m ] -> InWait (int_of_string m)
  | [ "ntf"; m ] -> Notified (int_of_string m)
  | [ "reacq"; m ] -> Reacquiring (int_of_string m)
  | [ "fin" ] -> Finished
  | [ "crashed" ] -> Crashed
  | _ -> failwith ("bad thread status: " ^ s)

let add_slot (buf : Buffer.t) (v : Value.t) : unit =
  if v == Interp.unbound then Buffer.add_char buf 'u'
  else Buffer.add_string buf (Log.value_str v)

let slot_of_string (s : string) : Value.t =
  if s = "u" then Interp.unbound else Log.value_of_string s

(* Checkpoint lines.  Thread frames ride on [c frame] continuation lines
   under their [C thread] line; everything else is one line per item. *)
let add_snapshot (buf : Buffer.t) (sn : Interp.snapshot) ~(sched : string) :
    unit =
  let sp () = Buffer.add_char buf ' ' in
  let nl () = Buffer.add_char buf '\n' in
  Buffer.add_string buf "C sched ";
  Buffer.add_string buf sched;
  nl ();
  Buffer.add_string buf "C rng ";
  Buffer.add_string buf sn.Interp.snap_rng;
  nl ();
  List.iter
    (fun (id, cls, fields) ->
      Buffer.add_string buf "C obj ";
      Log.add_int buf id;
      sp ();
      Log.add_enc_field buf cls;
      sp ();
      Log.add_int buf (List.length fields);
      List.iter
        (fun (f, v) ->
          sp ();
          Log.add_enc_field buf f;
          sp ();
          Buffer.add_string buf (Log.value_str v))
        fields;
      nl ())
    sn.Interp.snap_heap;
  List.iter
    (fun (t : Interp.snap_thread) ->
      Buffer.add_string buf "C thread ";
      Log.add_int buf t.sn_tid;
      sp ();
      add_status buf t.sn_status;
      sp ();
      Log.add_int buf t.sn_wait_restore;
      sp ();
      Log.add_int buf t.sn_alloc;
      sp ();
      Log.add_int buf t.sn_d;
      sp ();
      Log.add_int buf t.sn_sys_idx;
      sp ();
      Log.add_int buf t.sn_spawn_idx;
      sp ();
      Log.add_bool buf t.sn_started;
      sp ();
      Log.add_int buf (List.length t.sn_held);
      List.iter
        (fun (m, n) ->
          sp ();
          Log.add_int buf m;
          sp ();
          Log.add_int buf n)
        t.sn_held;
      sp ();
      Log.add_int buf (List.length t.sn_frames);
      nl ();
      List.iter
        (fun (f : Interp.snap_frame) ->
          Buffer.add_string buf "c frame ";
          (match f.sn_ret_to with
          | None -> Buffer.add_char buf '-'
          | Some x -> Log.add_int buf x);
          sp ();
          Log.add_int buf (List.length f.sn_cont);
          List.iter
            (fun (sc : Interp.scont) ->
              sp ();
              match sc with
              | Interp.SSeq sid ->
                Buffer.add_char buf 'q';
                Log.add_int buf sid
              | Interp.SUnlock (m, sid) ->
                Buffer.add_char buf 'u';
                Log.add_int buf m;
                Buffer.add_char buf ':';
                Log.add_int buf sid)
            f.sn_cont;
          sp ();
          Log.add_int buf (Array.length f.sn_slots);
          Array.iter
            (fun v ->
              sp ();
              add_slot buf v)
            f.sn_slots;
          nl ())
        t.sn_frames)
    sn.Interp.snap_threads;
  List.iter
    (fun (m, (owner, count)) ->
      Buffer.add_string buf "C lock ";
      Log.add_int buf m;
      sp ();
      Log.add_int buf owner;
      sp ();
      Log.add_int buf count;
      nl ())
    sn.Interp.snap_locks;
  List.iter
    (fun (m, waiters) ->
      Buffer.add_string buf "C waitq ";
      Log.add_int buf m;
      List.iter
        (fun w ->
          sp ();
          Log.add_int buf w)
        waiters;
      nl ())
    sn.Interp.snap_waitsets;
  List.iter
    (fun (c : Interp.crash) ->
      Buffer.add_string buf "C crash ";
      Log.add_int buf c.Interp.tid;
      sp ();
      Log.add_int buf c.Interp.site;
      sp ();
      Log.add_int buf c.Interp.line;
      sp ();
      Log.add_int buf c.Interp.c;
      sp ();
      Log.add_enc_field buf c.Interp.msg;
      nl ())
    sn.Interp.snap_crashes

(** Serialize chunks into format v4.  The intern table is written as a
    {e delta}: each epoch's [F] lines cover only the named field ids first
    used in that epoch, so a streaming writer never rewrites earlier
    output. *)
let add_v4_header (buf : Buffer.t) ~(o1 : bool) ~(o2 : bool)
    ~(epoch_len : int) : unit =
  Buffer.add_string buf "light-log v4 o1=";
  Log.add_bool buf o1;
  Buffer.add_string buf " o2=";
  Log.add_bool buf o2;
  Buffer.add_string buf " epoch=";
  Log.add_int buf epoch_len;
  Buffer.add_char buf '\n'

let add_v4_chunk (buf : Buffer.t) (seen_flds : (int, unit) Hashtbl.t)
    (ck : chunk) : unit =
  Buffer.add_string buf "E ";
  Log.add_int buf ck.ck_idx;
  Buffer.add_char buf ' ';
  Log.add_int buf ck.ck_start_steps;
  Buffer.add_char buf ' ';
  Log.add_int buf ck.ck_steps;
  Buffer.add_char buf ' ';
  Log.add_int buf ck.ck_clock;
  Buffer.add_char buf '\n';
  add_snapshot buf ck.ck_snapshot ~sched:ck.ck_sched;
  (* intern-table delta for this epoch's records *)
  let note (loc : Loc.t) =
    if loc.Loc.fld >= 0 && not (Hashtbl.mem seen_flds loc.Loc.fld) then begin
      Hashtbl.add seen_flds loc.Loc.fld ();
      Buffer.add_string buf "F ";
      Log.add_int buf loc.Loc.fld;
      Buffer.add_char buf ' ';
      Log.add_enc_field buf (Loc.fld_name loc.Loc.fld);
      Buffer.add_char buf '\n'
    end
  in
  List.iter (fun (d : Log.dep) -> note d.Log.loc) ck.ck_log.Log.deps;
  List.iter (fun (r : Log.range) -> note r.Log.loc) ck.ck_log.Log.ranges;
  Log.body_add ~add_loc:Log.add_loc_v3 ck.ck_log buf

let chunks_to_string ~(o1 : bool) ~(o2 : bool) ~(epoch_len : int)
    (chunks : chunk list) : string =
  let buf = Buffer.create 65536 in
  add_v4_header buf ~o1 ~o2 ~epoch_len;
  let seen_flds = Hashtbl.create 32 in
  List.iter (add_v4_chunk buf seen_flds) chunks;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Streaming writer and bounded-memory recording                       *)
(* ------------------------------------------------------------------ *)

(** Incremental v4 writer.  [sink] receives the header immediately, then
    one serialized chunk per {!write_chunk} call; concatenating everything
    it was handed is byte-identical to {!chunks_to_string} over the same
    chunks (the intern-table delta state lives inside the writer). *)
type writer = {
  wr_sink : string -> unit;
  wr_seen : (int, unit) Hashtbl.t;
}

let writer ~(o1 : bool) ~(o2 : bool) ~(epoch_len : int)
    (sink : string -> unit) : writer =
  let buf = Buffer.create 64 in
  add_v4_header buf ~o1 ~o2 ~epoch_len;
  sink (Buffer.contents buf);
  { wr_sink = sink; wr_seen = Hashtbl.create 32 }

let write_chunk (w : writer) (ck : chunk) : unit =
  let buf = Buffer.create 65536 in
  add_v4_chunk buf w.wr_seen ck;
  w.wr_sink (Buffer.contents buf)

type stream_summary = {
  ss_status : Interp.status_summary;
  ss_steps : int;         (** total interpreter steps over all epochs *)
  ss_clock : int;         (** final cumulative recorder access clock *)
  ss_epochs : int;
  ss_seal_times : float list;  (** per-epoch seal latency, seconds *)
  ss_site_hits : int array;    (** cumulative across all sealed epochs *)
}

(** Like {!record_epochs}, but each sealed epoch is handed to [emit] as a
    v4 chunk and then dropped: nothing per-epoch is retained, so live
    memory is bounded by one window regardless of run length.  Pair [emit]
    with {!writer} + {!write_chunk} over an output channel to stream the
    log to disk as it is recorded. *)
let record_epochs_stream ?(engine = Vm.Tree) ?(sched = Sched.random ~seed:1)
    ?(max_steps = 5_000_000) ?(seed = 0)
    ?(weights = Metrics.Cost.default_weights) ~(epoch_len : int)
    ~(emit : chunk -> unit) (pp : Light.prepared) : stream_summary =
  let n = ref 0 in
  let status, ses, recorder, seal_times =
    run_epoch_loop ~engine ~sched ~max_steps ~seed ~weights ~epoch_len pp
      ~on_epoch:(fun e ->
        incr n;
        emit (chunk_of_epoch e))
  in
  {
    ss_status = status;
    ss_steps = ses.Vm.s_steps ();
    ss_clock = Recorder.accesses recorder;
    ss_epochs = !n;
    ss_seal_times = seal_times;
    ss_site_hits = Recorder.site_hits recorder;
  }

let to_string_v4 (r : recording) : string =
  let f = file_of_recording r in
  chunks_to_string ~o1:f.f_o1 ~o2:f.f_o2 ~epoch_len:f.f_epoch_len f.f_chunks

let is_v4 (s : string) : bool =
  let i = ref 0 in
  let n = String.length s in
  while !i < n && s.[!i] = '\n' do incr i done;
  n - !i >= 12 && String.sub s !i 12 = "light-log v4"

(** Parse a v4 file.  Each epoch's record body is handed to the v3 parser
    ({!Log.of_string}) with the intern-table lines accumulated so far
    prepended, so the battle-tested v2/v3 reader does all event decoding;
    checkpoint lines are decoded here. *)
let of_string_v4 (s : string) : file =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> l <> "") lines in
  let header, rest =
    match lines with [] -> failwith "empty log" | h :: t -> (h, t)
  in
  if not (String.length header >= 12 && String.sub header 0 12 = "light-log v4")
  then failwith ("bad log header: " ^ header);
  let o1 = ref false and o2 = ref false and epoch_len = ref 0 in
  Scanf.sscanf header "light-log v%_d o1=%B o2=%B epoch=%d" (fun a b e ->
      o1 := a;
      o2 := b;
      epoch_len := e);
  let fields_of_line l = String.split_on_char ' ' l in
  (* accumulated intern lines (cumulative across epochs) *)
  let flines = Buffer.create 256 in
  let chunks = ref [] in
  (* per-epoch accumulators *)
  let cur = ref None in
  let body = Buffer.create 4096 in
  let heap = ref [] and threads = ref [] and locks = ref [] in
  let waitqs = ref [] and crashes = ref [] in
  let sched = ref "" and rng = ref "" in
  let cur_thread : (Interp.snap_thread * Interp.snap_frame list ref) option ref =
    ref None
  in
  let close_thread () =
    match !cur_thread with
    | None -> ()
    | Some (t, frames) ->
      threads := { t with Interp.sn_frames = List.rev !frames } :: !threads;
      cur_thread := None
  in
  let close_epoch () =
    match !cur with
    | None -> ()
    | Some (idx, start_steps, steps, clock) ->
      close_thread ();
      let v3doc =
        Printf.sprintf "light-log v3 o1=%b o2=%b\n%s%s" !o1 !o2
          (Buffer.contents flines) (Buffer.contents body)
      in
      let log = Log.of_string v3doc in
      let sn =
        {
          Interp.snap_steps = start_steps;
          snap_heap = List.rev !heap;
          snap_threads = List.rev !threads;
          snap_locks = List.rev !locks;
          snap_waitsets = List.rev !waitqs;
          snap_crashes = List.rev !crashes;
          snap_rng = !rng;
        }
      in
      chunks :=
        {
          ck_idx = idx;
          ck_start_steps = start_steps;
          ck_steps = steps;
          ck_clock = clock;
          ck_sched = !sched;
          ck_snapshot = sn;
          ck_log = log;
        }
        :: !chunks;
      Buffer.clear body;
      heap := [];
      threads := [];
      locks := [];
      waitqs := [];
      crashes := [];
      sched := "";
      rng := "";
      cur := None
  in
  List.iter
    (fun line ->
      match fields_of_line line with
      | "E" :: idx :: start_steps :: steps :: clock :: [] ->
        close_epoch ();
        cur :=
          Some
            ( int_of_string idx,
              int_of_string start_steps,
              int_of_string steps,
              int_of_string clock )
      | "C" :: "sched" :: rest_tok ->
        close_thread ();
        sched := String.concat " " rest_tok
      | [ "C"; "rng"; h ] ->
        close_thread ();
        rng := h
      | "C" :: "obj" :: id :: cls :: _n :: fields ->
        close_thread ();
        let rec pairs = function
          | [] -> []
          | f :: v :: rest -> (Log.dec_field f, Log.value_of_string v) :: pairs rest
          | _ -> failwith ("bad C obj line: " ^ line)
        in
        heap := (int_of_string id, Log.dec_field cls, pairs fields) :: !heap
      | "C" :: "thread" :: tid :: status :: wait_restore :: alloc :: d :: sys_idx
        :: spawn_idx :: started :: nheld :: rest_tok ->
        close_thread ();
        let nheld = int_of_string nheld in
        let rec take_held n = function
          | rest when n = 0 -> ([], rest)
          | m :: c :: rest ->
            let held, tail = take_held (n - 1) rest in
            ((int_of_string m, int_of_string c) :: held, tail)
          | _ -> failwith ("bad C thread line: " ^ line)
        in
        let held, tail = take_held nheld rest_tok in
        (match tail with
        | [ _nframes ] ->
          cur_thread :=
            Some
              ( {
                  Interp.sn_tid = int_of_string tid;
                  sn_frames = [];
                  sn_status = status_of_string status;
                  sn_held = held;
                  sn_wait_restore = int_of_string wait_restore;
                  sn_alloc = int_of_string alloc;
                  sn_d = int_of_string d;
                  sn_sys_idx = int_of_string sys_idx;
                  sn_spawn_idx = int_of_string spawn_idx;
                  sn_started = bool_of_string started;
                },
                ref [] )
        | _ -> failwith ("bad C thread line: " ^ line))
      | "c" :: "frame" :: ret_to :: ncont :: rest_tok -> (
        let ncont = int_of_string ncont in
        let rec take n l =
          if n = 0 then ([], l)
          else
            match l with
            | x :: rest ->
              let xs, tail = take (n - 1) rest in
              (x :: xs, tail)
            | [] -> failwith ("bad c frame line: " ^ line)
        in
        let cont_toks, tail = take ncont rest_tok in
        let cont =
          List.map
            (fun tok ->
              if String.length tok < 2 then failwith ("bad cont token: " ^ tok)
              else if tok.[0] = 'q' then
                Interp.SSeq (int_of_string (String.sub tok 1 (String.length tok - 1)))
              else if tok.[0] = 'u' then
                match String.split_on_char ':' (String.sub tok 1 (String.length tok - 1)) with
                | [ m; sid ] -> Interp.SUnlock (int_of_string m, int_of_string sid)
                | _ -> failwith ("bad cont token: " ^ tok)
              else failwith ("bad cont token: " ^ tok))
            cont_toks
        in
        match tail with
        | nslots :: slot_toks ->
          if List.length slot_toks <> int_of_string nslots then
            failwith ("bad c frame line: " ^ line);
          let frame =
            {
              Interp.sn_cont = cont;
              sn_slots = Array.of_list (List.map slot_of_string slot_toks);
              sn_ret_to = (if ret_to = "-" then None else Some (int_of_string ret_to));
            }
          in
          (match !cur_thread with
          | Some (_, frames) -> frames := frame :: !frames
          | None -> failwith "c frame line outside C thread")
        | [] -> failwith ("bad c frame line: " ^ line))
      | [ "C"; "lock"; m; owner; count ] ->
        close_thread ();
        locks :=
          (int_of_string m, (int_of_string owner, int_of_string count)) :: !locks
      | "C" :: "waitq" :: m :: waiters ->
        close_thread ();
        waitqs := (int_of_string m, List.map int_of_string waiters) :: !waitqs
      | [ "C"; "crash"; tid; site; lineno; c; msg ] ->
        close_thread ();
        crashes :=
          {
            Interp.tid = int_of_string tid;
            site = int_of_string site;
            line = int_of_string lineno;
            msg = Log.dec_field msg;
            c = int_of_string c;
          }
          :: !crashes
      | "F" :: _ ->
        close_thread ();
        Buffer.add_string flines line;
        Buffer.add_char flines '\n'
      | ("T" | "D" | "R" | "S") :: _ ->
        close_thread ();
        Buffer.add_string body line;
        Buffer.add_char body '\n'
      | _ -> failwith ("bad log line: " ^ line))
    rest;
  close_epoch ();
  { f_o1 = !o1; f_o2 = !o2; f_epoch_len = !epoch_len; f_chunks = List.rev !chunks }

(** Replay epoch [k] straight out of a parsed v4 file: the caller supplies
    the (re-)prepared program (v4 stores no program text, like v2/v3). *)
let replay_chunk ?solver_budget ?(max_steps = 10_000_000) ?(engine = Vm.Tree)
    (pp : Light.prepared) (ck : chunk) : (epoch_replay, string) result =
  let rep = Replayer.solve ?budget:solver_budget ck.ck_log in
  match rep.Replayer.schedule with
  | None ->
    Error
      (match rep.Replayer.result_kind with
      | Replayer.SolverAborted -> "solver budget exhausted"
      | _ -> "epoch constraint system unsatisfiable")
  | Some sch ->
    let plan = Light.prepared_plan pp in
    let d = Replayer.driver sch ~plan in
    let hooks = fenced_hooks d.Replayer.hooks ck.ck_log.Log.counters in
    let ses =
      Vm.restore_session ~hooks ~plan engine
        ~compiled:(Light.prepared_compiled pp)
        ~bytecode:(Light.prepared_bytecode pp) ck.ck_snapshot
    in
    let status =
      match
        ses.Vm.s_run ~max_steps:(ck.ck_start_steps + max_steps)
          ~sched:(Sched.round_robin ()) ()
      with
      | Some s -> s
      | None -> assert false
    in
    let obs = ses.Vm.s_drain () in
    Ok
      {
        rr_status = status;
        rr_steps = ses.Vm.s_steps () - ck.ck_start_steps;
        rr_obs = obs;
        rr_report = rep;
      }
