(** Reproduction harness for the bug suite (Figure 6 / Table 1).

    For each bug: find a triggering schedule (seed search over the
    nondeterministic schedulers — the "profiling run" that exhibits the
    failure), then ask each tool to record that run and reproduce the
    failure by replay. *)

open Runtime

let crash_sig (c : Interp.crash) = (c.tid, c.site, c.msg)

let crashes_match (a : Interp.outcome) (b : Interp.outcome) : bool =
  a.crashes <> []
  && List.sort compare (List.map crash_sig a.crashes)
     = List.sort compare (List.map crash_sig b.crashes)

(* ------------------------------------------------------------------ *)
(* Trigger search                                                      *)
(* ------------------------------------------------------------------ *)

type trigger = {
  make_sched : unit -> Sched.t;  (** fresh instance of the triggering scheduler *)
  descr : string;
  outcome : Interp.outcome;      (** the buggy profiling run (uninstrumented) *)
}

let candidates ~(tries : int) : (string * (unit -> Sched.t)) list =
  List.concat_map
    (fun seed ->
      List.map
        (fun stick ->
          ( Printf.sprintf "sticky(seed=%d,k=%d)" seed stick,
            fun () -> Sched.sticky ~seed ~stickiness:stick ))
        [ 1; 2; 4; 8 ]
      @ [ (Printf.sprintf "random(%d)" seed, fun () -> Sched.random ~seed) ])
    (List.init tries (fun i -> i + 1))

(** Search for a schedule under which the program crashes. *)
let find_trigger ?(tries = 60) ?(plan = Plan.all_shared) (p : Lang.Ast.program) :
    trigger option =
  let rec go = function
    | [] -> None
    | (descr, mk) :: rest ->
      let outcome = Interp.run ~plan ~sched:(mk ()) ~max_steps:400_000 p in
      if outcome.crashes <> [] then Some { make_sched = mk; descr; outcome }
      else go rest
  in
  go (candidates ~tries)

(** Search for a schedule under which the program runs to completion with
    no crash — the "passing CI run" a flaky-test hunt starts from. *)
let find_passing ?(tries = 60) ?(plan = Plan.all_shared) (p : Lang.Ast.program) :
    trigger option =
  let rec go = function
    | [] -> None
    | (descr, mk) :: rest ->
      let outcome = Interp.run ~plan ~sched:(mk ()) ~max_steps:400_000 p in
      if outcome.crashes = [] && outcome.status = Interp.AllFinished then
        Some { make_sched = mk; descr; outcome }
      else go rest
  in
  go (candidates ~tries)

(* ------------------------------------------------------------------ *)
(* Per-tool reproduction                                               *)
(* ------------------------------------------------------------------ *)

type attempt = {
  tool : string;
  reproduced : bool;
  detail : string;
}

(** Light: record the triggering run (variant V_both), solve, replay, and
    check that the crash signature is reproduced (Theorem 1). *)
let try_light ?(variant = Light_core.Recorder.v_both) (b : Defs.bug) (tr : trigger) : attempt
    =
  let p = Defs.program_of b () in
  let r = Light_core.Light.record ~variant ~sched:(tr.make_sched ()) p in
  match Light_core.Light.replay r with
  | Error e -> { tool = "Light"; reproduced = false; detail = "solver: " ^ e }
  | Ok rr ->
    let ok = crashes_match r.outcome rr.replay_outcome in
    {
      tool = "Light";
      reproduced = ok;
      detail =
        Printf.sprintf "%d records, %d longs, solve %.3fs%s"
          (Light_core.Log.num_records r.log)
          r.space_longs rr.report.solve_time_s
          (if ok then "" else "; crash signature differs");
    }

(** Clap: record path profile on the triggering run, then execution
    synthesis. *)
let try_clap ?(budget = 30_000) (b : Defs.bug) (tr : trigger) : attempt =
  let p = Defs.program_of b () in
  let plan = (Instrument.Transformer.transform p).Instrument.Transformer.plan in
  let rec_ = Baselines.Clap.create () in
  let outcome =
    Interp.run ~hooks:(Baselines.Clap.hooks rec_) ~plan ~sched:(tr.make_sched ()) p
  in
  let log = Baselines.Clap.finalize rec_ ~outcome in
  ignore plan;
  match Baselines.Clap.synthesize ~budget p log with
  | Baselines.Clap.Reproduced switches ->
    {
      tool = "Clap";
      reproduced = true;
      detail =
        Printf.sprintf "synthesized a schedule with %d preemption(s)" (List.length switches);
    }
  | OutOfScope cs ->
    {
      tool = "Clap";
      reproduced = false;
      detail = "outside solver fragment: " ^ String.concat ", " cs;
    }
  | BudgetExhausted n ->
    { tool = "Clap"; reproduced = false; detail = Printf.sprintf "search budget exhausted (%d candidates)" n }
  | NoFailureRecorded ->
    { tool = "Clap"; reproduced = false; detail = "profiling run recorded no failure" }

(** Chimera: patch, search for the bug in the patched program, record lock
    orders, replay. *)
let try_chimera ?(tries = 60) (b : Defs.bug) (_tr : trigger) : attempt =
  let p = Defs.program_of b () in
  let pi = Baselines.Chimera.patch p in
  let plan = (Instrument.Transformer.transform pi.patched).Instrument.Transformer.plan in
  match find_trigger ~tries ~plan pi.patched with
  | None ->
    {
      tool = "Chimera";
      reproduced = false;
      detail =
        Printf.sprintf
          "patch serializes the racing methods (%d groups); the bug no longer manifests"
          (List.length pi.groups);
    }
  | Some ptr ->
    let rec_ = Baselines.Chimera.create_recorder () in
    let orig =
      Interp.run ~hooks:(Baselines.Chimera.recorder_hooks rec_) ~plan
        ~sched:(ptr.make_sched ()) pi.patched
    in
    let log = Baselines.Chimera.finalize_recorder rec_ ~outcome:orig in
    let rep =
      Interp.run ~hooks:(Baselines.Chimera.replay_hooks log) ~plan
        ~sched:(Sched.round_robin ()) pi.patched
    in
    let ok = crashes_match orig rep in
    {
      tool = "Chimera";
      reproduced = ok;
      detail =
        Printf.sprintf "%d lock ops recorded%s" log.space_longs
          (if ok then "" else "; replay crash differs");
    }

(* ------------------------------------------------------------------ *)
(* Figure 6 rows                                                        *)
(* ------------------------------------------------------------------ *)

type row = {
  bug : Defs.bug;
  trigger_descr : string;
  light : attempt;
  clap : attempt;
  chimera : attempt;
}

(* One bug is one independent job: trigger search plus the three tool
   attempts share nothing across bugs, so the matrix fans out across the
   engine pool; [Batch.map] merges rows back in [Defs.all] order, keeping
   the output independent of the pool size. *)
let reproduce_all ?(tries = 60) ?(clap_budget = 30_000) ?pool () : row list =
  Engine.Batch.map ?pool Defs.all ~f:(fun (b : Defs.bug) ->
      let p = Defs.program_of b () in
      match find_trigger ~tries p with
      | None -> None
      | Some tr ->
        Some
          {
            bug = b;
            trigger_descr = tr.descr;
            light = try_light b tr;
            clap = try_clap ~budget:clap_budget b tr;
            chimera = try_chimera ~tries b tr;
          })
  |> List.filter_map Fun.id
