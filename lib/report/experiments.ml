(** Experiment drivers: one function per table/figure of Section 5.
    `bench/main.exe` calls these; see DESIGN.md's experiment index. *)

open Runtime

(* ------------------------------------------------------------------ *)
(* Per-benchmark measurement (Figures 4, 5, 7)                          *)
(* ------------------------------------------------------------------ *)

type tool_measure = { overhead : float; space_longs : int }

type bench_measure = {
  bm : Workloads.benchmark;
  steps : int;
  accesses : int;
  leap : tool_measure;
  stride : tool_measure;
  light_basic : tool_measure;
  light_o1 : tool_measure;
  light_both : tool_measure;
}

let measure_benchmark ?(scale = 1) ?(seed = 7) (bm : Workloads.benchmark) :
    bench_measure =
  let p = Workloads.program ~scale bm in
  let sched () = Workloads.scheduler ~seed bm in
  let tr = Instrument.Transformer.transform p in
  let plan = tr.plan in
  (* Leap *)
  let leap_rec = Baselines.Leap.create () in
  let leap_out = Interp.run ~hooks:(Baselines.Leap.hooks leap_rec) ~plan ~sched:(sched ()) p in
  let leap_log = Baselines.Leap.finalize leap_rec in
  let leap =
    {
      overhead = Metrics.Cost.overhead leap_rec.meter ~steps:leap_out.steps;
      space_longs = leap_log.space_longs;
    }
  in
  (* Stride *)
  let st_rec = Baselines.Stride.create () in
  let st_out = Interp.run ~hooks:(Baselines.Stride.hooks st_rec) ~plan ~sched:(sched ()) p in
  let st_log = Baselines.Stride.finalize st_rec in
  let stride =
    {
      overhead = Metrics.Cost.overhead st_rec.meter ~steps:st_out.steps;
      space_longs = st_log.space_longs;
    }
  in
  (* Light variants *)
  let light variant =
    let r = Light_core.Light.record ~variant ~sched:(sched ()) p in
    ({ overhead = r.overhead; space_longs = r.space_longs }, r)
  in
  let light_basic, _ = light Light_core.Light.v_basic in
  let light_o1, _ = light Light_core.Light.v_o1 in
  let light_both, rb = light Light_core.Light.v_both in
  {
    bm;
    steps = rb.outcome.steps;
    accesses = leap_log.space_longs;  (* Leap records one long per access *)
    leap;
    stride;
    light_basic;
    light_o1;
    light_both;
  }

(* Each benchmark measurement is self-contained (fresh parse, plan,
   recorders, interpreter and scheduler state), so the 24 measurements fan
   out across the engine pool; the merge preserves [Workloads.all] order, so
   the figures are byte-identical for any pool size. *)
let measure_all ?scale ?seed ?pool () : bench_measure list =
  Engine.Batch.map ?pool Workloads.all ~f:(measure_benchmark ?scale ?seed)

(* Wall-clock columns (solver/replay seconds) are hidden unless LIGHT_TIMINGS
   is set: default output must not depend on machine speed or pool size. *)
let show_timings () = Sys.getenv_opt "LIGHT_TIMINGS" <> None
let timing_cell s = if show_timings () then s else "-"

(* ------------------------------------------------------------------ *)
(* Figure 4 / aggregate time table                                      *)
(* ------------------------------------------------------------------ *)

let fig4 (ms : bench_measure list) ppf : unit =
  Chart.grouped
    ~title:
      "Figure 4: normalized time overhead (Light vs Leap vs Stride; bars scaled per benchmark)"
    ~series:[ "Leap"; "Stride"; "Light" ]
    (List.map
       (fun m -> (m.bm.name, [ m.leap.overhead; m.stride.overhead; m.light_both.overhead ]))
       ms)
    ppf;
  let agg f = Metrics.Stats.summarize (List.map f ms) in
  let leap = agg (fun m -> m.leap.overhead) in
  let stride = agg (fun m -> m.stride.overhead) in
  let light = agg (fun m -> m.light_both.overhead) in
  let s (x : Metrics.Stats.summary) =
    List.map (Printf.sprintf "%.2f")
      [ x.average; x.median; x.minimum; x.maximum ]
  in
  Chart.table ~title:"Aggregate recording overhead (fraction of base run time)"
    ~header:[ ""; "average"; "median"; "minimum"; "maximum" ]
    [ "Leap" :: s leap; "Stride" :: s stride; "Light" :: s light ]
    ppf;
  Fmt.pf ppf "  (paper: Leap 4.11/2.58/0.17/17.85, Stride 4.66/2.92/0.19/23.89, Light 0.44/0.42/0.15/0.73)@.@."

(* ------------------------------------------------------------------ *)
(* Figure 5 / aggregate space table                                     *)
(* ------------------------------------------------------------------ *)

let fig5 (ms : bench_measure list) ppf : unit =
  Chart.grouped
    ~title:
      "Figure 5: normalized space consumption in Long-integer units (bars scaled per benchmark)"
    ~series:[ "Leap"; "Stride"; "Light" ]
    (List.map
       (fun m ->
         ( m.bm.name,
           [ float_of_int m.leap.space_longs;
             float_of_int m.stride.space_longs;
             float_of_int m.light_both.space_longs ] ))
       ms)
    ppf;
  let agg f = Metrics.Stats.summarize (List.map f ms) in
  let leap = agg (fun m -> float_of_int m.leap.space_longs) in
  let stride = agg (fun m -> float_of_int m.stride.space_longs) in
  let light = agg (fun m -> float_of_int m.light_both.space_longs) in
  let s (x : Metrics.Stats.summary) =
    List.map (Printf.sprintf "%.1f")
      [ x.average; x.median; x.minimum; x.maximum ]
  in
  Chart.table ~title:"Aggregate space (Long-integers per run)"
    ~header:[ ""; "average"; "median"; "minimum"; "maximum" ]
    [ "Leap" :: s leap; "Stride" :: s stride; "Light" :: s light ]
    ppf;
  let ratio =
    let tot f = List.fold_left (fun a m -> a + f m) 0 ms in
    float_of_int (tot (fun m -> m.light_both.space_longs))
    /. float_of_int (max 1 (tot (fun m -> m.leap.space_longs)))
  in
  Fmt.pf ppf "  Light/Leap total space ratio: %.1f%% (paper: ~7.5%%, \"only 10%% of those techniques\")@.@."
    (100. *. ratio)

(* ------------------------------------------------------------------ *)
(* Figure 7: optimization breakdown                                     *)
(* ------------------------------------------------------------------ *)

let fig7 (ms : bench_measure list) ppf : unit =
  let rows value =
    List.map
      (fun m ->
        let basic = value m.light_basic in
        let o1 = value m.light_o1 in
        let both = value m.light_both in
        let d1 = max 0.0 (basic -. o1) in
        let d2 = max 0.0 (o1 -. both) in
        (m.bm.name, [ d1; d2; min basic both ]))
      ms
  in
  Chart.stacked
    ~title:"Figure 7a: time overhead breakdown (100% = V_basic)"
    ~segments:[ "saved by O1"; "saved by O2"; "remaining (V_O1+O2)" ]
    (rows (fun t -> t.overhead))
    ppf;
  Chart.stacked
    ~title:"Figure 7b: space breakdown (100% = V_basic)"
    ~segments:[ "saved by O1"; "saved by O2"; "remaining (V_O1+O2)" ]
    (rows (fun t -> float_of_int t.space_longs))
    ppf;
  (* the paper's headline counts *)
  let count pred value =
    List.length
      (List.filter
         (fun m ->
           let basic = value m.light_basic and o1 = value m.light_o1
           and both = value m.light_both in
           pred basic o1 both)
         ms)
  in
  let time = (fun t -> t.overhead) in
  let space = (fun t -> float_of_int t.space_longs) in
  Fmt.pf ppf "  time:  O1 saves >=20%% in %d/24 (paper 20/24), >=50%% in %d/24 (paper 8/24);@."
    (count (fun b o1 _ -> b -. o1 >= 0.2 *. b) time)
    (count (fun b o1 _ -> b -. o1 >= 0.5 *. b) time);
  Fmt.pf ppf "         O2 saves >=20%% in %d/24 (paper 9/24), >=50%% in %d/24 (paper 4/24)@."
    (count (fun b o1 both -> o1 -. both >= 0.2 *. b) time)
    (count (fun b o1 both -> o1 -. both >= 0.5 *. b) time);
  Fmt.pf ppf "  space: O1 saves >=50%% in %d/24 (paper 16/24); O2 saves >=20%% in %d/24 (paper 6/24)@.@."
    (count (fun b o1 _ -> b -. o1 >= 0.5 *. b) space)
    (count (fun b o1 both -> o1 -. both >= 0.2 *. b) space)

(* ------------------------------------------------------------------ *)
(* Solver pipeline measurement (BENCH_solver.json)                      *)
(* ------------------------------------------------------------------ *)

type solver_measure = {
  sm_bm : string;
  sm_variant : string;
  sm_vars : int;
  sm_hard : int;
  sm_pairs : int;    (* pre-pruning: clauses the naive generator would emit *)
  sm_clauses : int;  (* post-pruning *)
  sm_pruned : int;
  sm_unit : int;
  sm_dedup : int;
  sm_result : string;
  sm_decisions : int;
  sm_backtracks : int;
  sm_conflicts : int;
  sm_gen_s : float;
  sm_solve_s : float;
}

let solver_variants =
  [ Light_core.Light.v_basic; Light_core.Light.v_both ]

let measure_solver ?(seed = 3)
    ((bm : Workloads.benchmark), (variant : Light_core.Light.variant)) :
    solver_measure =
  let p = Workloads.program bm in
  let r =
    Light_core.Light.record ~variant ~sched:(Workloads.scheduler ~seed bm) ~seed p
  in
  let report = Light_core.Replayer.solve r.log in
  let g = report.gen_stats and s = report.solver_stats in
  {
    sm_bm = bm.name;
    sm_variant = Light_core.Recorder.variant_name variant;
    sm_vars = report.n_vars;
    sm_hard = report.n_hard;
    sm_pairs = g.n_pairs;
    sm_clauses = report.n_clauses;
    sm_pruned = g.n_pruned;
    sm_unit = g.n_unit;
    sm_dedup = g.n_dedup;
    sm_result =
      (match report.result_kind with
      | Light_core.Replayer.Solved -> "sat"
      | Unsatisfiable -> "unsat"
      | SolverAborted -> "aborted");
    sm_decisions = s.decisions;
    sm_backtracks = s.backtracks;
    sm_conflicts = s.theory_conflicts;
    sm_gen_s = g.gen_time_s;
    sm_solve_s = report.solve_time_s;
  }

let solver_json (ms : solver_measure list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"rows\": [\n";
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"variant\": %S, \"vars\": %d, \"hard\": %d, \
            \"pairs_pre_pruning\": %d, \"clauses\": %d, \"pruned\": %d, \
            \"unit_reduced\": %d, \"deduped\": %d, \"result\": %S, \
            \"decisions\": %d, \"backtracks\": %d, \"conflicts\": %d, \
            \"gen_s\": %.4f, \"solve_s\": %.4f}%s\n"
           m.sm_bm m.sm_variant m.sm_vars m.sm_hard m.sm_pairs m.sm_clauses
           m.sm_pruned m.sm_unit m.sm_dedup m.sm_result m.sm_decisions
           m.sm_backtracks m.sm_conflicts m.sm_gen_s m.sm_solve_s
           (if i = List.length ms - 1 then "" else ",")))
    ms;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* Per-workload constraint pipeline report: generation pruning ratios and
   solver search statistics for the uncompressed (v_basic) and default
   (O1+O2) logs.  Counts on stdout are deterministic; the wall-clock
   columns hide behind LIGHT_TIMINGS, and the full measurement — times
   included — lands in [json_path] for the CI artifact. *)
let solver_bench ?(seed = 3) ?(json_path = "BENCH_solver.json") ?pool () ppf :
    unit =
  let grid =
    List.concat_map
      (fun bm -> List.map (fun v -> (bm, v)) solver_variants)
      Workloads.all
  in
  let ms = Engine.Batch.map ?pool grid ~f:(measure_solver ~seed) in
  Chart.table
    ~title:
      "Constraint pipeline (per-workload: noninterference pairs before pruning, \
       clauses after, solver work)"
    ~header:
      [ "workload"; "variant"; "vars"; "pairs"; "clauses"; "dec"; "bt"; "conf";
        "result"; "gen (s)"; "solve (s)" ]
    (List.map
       (fun m ->
         [
           m.sm_bm;
           m.sm_variant;
           string_of_int m.sm_vars;
           string_of_int m.sm_pairs;
           string_of_int m.sm_clauses;
           string_of_int m.sm_decisions;
           string_of_int m.sm_backtracks;
           string_of_int m.sm_conflicts;
           m.sm_result;
           timing_cell (Printf.sprintf "%.3f" m.sm_gen_s);
           timing_cell (Printf.sprintf "%.3f" m.sm_solve_s);
         ])
       ms)
    ppf;
  let tot f = List.fold_left (fun a m -> a + f m) 0 ms in
  Fmt.pf ppf
    "  pruning: %d pairs -> %d clauses (%d entailed, %d unit-reduced, %d deduped)@."
    (tot (fun m -> m.sm_pairs))
    (tot (fun m -> m.sm_clauses))
    (tot (fun m -> m.sm_pruned))
    (tot (fun m -> m.sm_unit))
    (tot (fun m -> m.sm_dedup));
  let aborted = List.filter (fun m -> m.sm_result <> "sat") ms in
  Fmt.pf ppf "  unsolved cells: %d/%d@." (List.length aborted) (List.length ms);
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (solver_json ms));
  Fmt.pf ppf "  full measurement (with timings) written to %s@.@." json_path

(* ------------------------------------------------------------------ *)
(* Interpreter throughput (BENCH_interp.json)                           *)
(* ------------------------------------------------------------------ *)

(* one timed series: median is the headline number (robust to a single
   slow iteration on a shared runner), min approximates the noise floor,
   max completes the recorded spread *)
type series = { sps_med : float; sps_min : float; sps_max : float }

type interp_measure = {
  im_bm : string;
  im_steps : int;     (* steps of one uninstrumented run *)
  im_ref : series;    (* reference interpreter (string-keyed), native *)
  im_native : series; (* slot-resolved interpreter, native *)
  im_basic : series;  (* under Light recording, uncompressed *)
  im_o1 : series;
  im_both : series;
}

(* CI runs with a reduced budget via LIGHT_BENCH_ITERS *)
let bench_iters () =
  match Sys.getenv_opt "LIGHT_BENCH_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 5)
  | None -> 5

(* steps/second of [run]: one warmup execution (whose step count is
   returned), then [iters] individually timed executions *)
let steps_per_sec ~iters (run : unit -> Interp.outcome) : int * series =
  let o0 = run () in
  let steps = float_of_int o0.steps in
  let samples =
    Array.init iters (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (run ());
        let dt = Unix.gettimeofday () -. t0 in
        steps /. Float.max dt 1e-9)
  in
  Array.sort compare samples;
  let n = Array.length samples in
  let med =
    if n land 1 = 1 then samples.(n / 2)
    else 0.5 *. (samples.((n / 2) - 1) +. samples.(n / 2))
  in
  (o0.steps, { sps_med = med; sps_min = samples.(0); sps_max = samples.(n - 1) })

let measure_interp ?(seed = 7) ~iters (bm : Workloads.benchmark) : interp_measure =
  let p = Workloads.program bm in
  let sched () = Workloads.scheduler ~seed bm in
  let cp = Interp.compile p in
  let steps, native =
    steps_per_sec ~iters (fun () -> Interp.run_compiled ~sched:(sched ()) cp)
  in
  let _, ref_ = steps_per_sec ~iters (fun () -> Interp_ref.run ~sched:(sched ()) p) in
  (* instrument once, record every iteration: the analysis and the slot
     resolution are prepare-time costs (measured by the analysis bench);
     what this bench times is the recording fast path *)
  let record variant =
    let pp = Light_core.Light.prepare ~variant p in
    fun () -> (Light_core.Light.record_prepared ~sched:(sched ()) ~seed pp).outcome
  in
  let _, basic = steps_per_sec ~iters (record Light_core.Light.v_basic) in
  let _, o1 = steps_per_sec ~iters (record Light_core.Light.v_o1) in
  let _, both = steps_per_sec ~iters (record Light_core.Light.v_both) in
  {
    im_bm = bm.name;
    im_steps = steps;
    im_ref = ref_;
    im_native = native;
    im_basic = basic;
    im_o1 = o1;
    im_both = both;
  }

let geomean (f : interp_measure -> float) (ms : interp_measure list) : float =
  exp (List.fold_left (fun a m -> a +. log (f m)) 0. ms /. float_of_int (List.length ms))

(* relative iteration spread of a series, (max - min) / median *)
let spread (s : series) : float = (s.sps_max -. s.sps_min) /. Float.max s.sps_med 1e-9

let interp_json ~iters (ms : interp_measure list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"iters\": %d,\n  \"rows\": [\n" iters);
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"steps\": %d, \"ref_sps\": %.0f, \
            \"native_sps\": %.0f, \"basic_sps\": %.0f, \"o1_sps\": %.0f, \
            \"both_sps\": %.0f, \"speedup_vs_ref\": %.2f, \"ratio_basic\": %.2f, \
            \"ratio_o1\": %.2f, \"ratio_both\": %.2f,\n\
           \     \"native_sps_min\": %.0f, \"native_sps_max\": %.0f, \
            \"basic_sps_min\": %.0f, \"basic_sps_max\": %.0f, \
            \"o1_sps_min\": %.0f, \"o1_sps_max\": %.0f, \
            \"both_sps_min\": %.0f, \"both_sps_max\": %.0f, \
            \"native_spread\": %.3f}%s\n"
           m.im_bm m.im_steps m.im_ref.sps_med m.im_native.sps_med
           m.im_basic.sps_med m.im_o1.sps_med m.im_both.sps_med
           (m.im_native.sps_med /. m.im_ref.sps_med)
           (m.im_native.sps_med /. m.im_basic.sps_med)
           (m.im_native.sps_med /. m.im_o1.sps_med)
           (m.im_native.sps_med /. m.im_both.sps_med)
           m.im_native.sps_min m.im_native.sps_max m.im_basic.sps_min
           m.im_basic.sps_max m.im_o1.sps_min m.im_o1.sps_max m.im_both.sps_min
           m.im_both.sps_max (spread m.im_native)
           (if i = List.length ms - 1 then "" else ",")))
    ms;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"geomean\": {\"speedup_vs_ref\": %.2f, \"ratio_basic\": %.2f, \
        \"ratio_o1\": %.2f, \"ratio_both\": %.2f}\n}\n"
       (geomean (fun m -> m.im_native.sps_med /. m.im_ref.sps_med) ms)
       (geomean (fun m -> m.im_native.sps_med /. m.im_basic.sps_med) ms)
       (geomean (fun m -> m.im_native.sps_med /. m.im_o1.sps_med) ms)
       (geomean (fun m -> m.im_native.sps_med /. m.im_both.sps_med) ms));
  Buffer.contents buf

(* Per-workload interpreter throughput: the slot-resolved interpreter
   against the string-keyed reference (native, uninstrumented), and the
   per-variant recording-overhead ratios (native steps/sec divided by
   recorded steps/sec).  All steps/sec cells are the median over the timed
   iterations.  Runs sequentially — timing inside the domain pool would
   measure contention, not the interpreter.  Step counts on stdout are
   deterministic; every wall-clock-derived column hides behind
   LIGHT_TIMINGS, and the full measurement (with per-series min/max) lands
   in [json_path] for CI. *)
let run_interp_measurements ~seed ppf : int * interp_measure list =
  let iters = bench_iters () in
  let ms = List.map (measure_interp ~seed ~iters) Workloads.all in
  let f1 v = Printf.sprintf "%.1f" v in
  let k sps = Printf.sprintf "%.0fk" (sps /. 1e3) in
  Chart.table
    ~title:
      "Interpreter throughput (median steps/sec: reference vs slot-resolved, \
       native and under recording)"
    ~header:
      [ "workload"; "steps"; "ref"; "native"; "speedup"; "basic"; "o1"; "o1+o2";
        "xbasic"; "xo1"; "xo1+o2" ]
    (List.map
       (fun m ->
         [
           m.im_bm;
           string_of_int m.im_steps;
           timing_cell (k m.im_ref.sps_med);
           timing_cell (k m.im_native.sps_med);
           timing_cell (f1 (m.im_native.sps_med /. m.im_ref.sps_med));
           timing_cell (k m.im_basic.sps_med);
           timing_cell (k m.im_o1.sps_med);
           timing_cell (k m.im_both.sps_med);
           timing_cell (f1 (m.im_native.sps_med /. m.im_basic.sps_med));
           timing_cell (f1 (m.im_native.sps_med /. m.im_o1.sps_med));
           timing_cell (f1 (m.im_native.sps_med /. m.im_both.sps_med));
         ])
       ms)
    ppf;
  Fmt.pf ppf "  total steps (one native run each): %d@."
    (List.fold_left (fun a m -> a + m.im_steps) 0 ms);
  if show_timings () then begin
    Fmt.pf ppf
      "  geomean: %.2fx vs reference; record overhead %.2fx basic, %.2fx O1, \
       %.2fx O1+O2@."
      (geomean (fun m -> m.im_native.sps_med /. m.im_ref.sps_med) ms)
      (geomean (fun m -> m.im_native.sps_med /. m.im_basic.sps_med) ms)
      (geomean (fun m -> m.im_native.sps_med /. m.im_o1.sps_med) ms)
      (geomean (fun m -> m.im_native.sps_med /. m.im_both.sps_med) ms);
    Fmt.pf ppf "  native min-of-iters geomean: %.0fk steps/sec@."
      (geomean (fun m -> m.im_native.sps_min) ms /. 1e3);
    let worst =
      List.fold_left
        (fun (wn, ws) m ->
          let s = spread m.im_native in
          if s > ws then (m.im_bm, s) else (wn, ws))
        ("-", 0.) ms
    in
    Fmt.pf ppf "  worst native iteration spread: %.0f%% (%s)@."
      (100. *. snd worst) (fst worst)
  end;
  (iters, ms)

let interp_bench ?(seed = 7) ?(json_path = "BENCH_interp.json") () ppf : unit =
  let iters, ms = run_interp_measurements ~seed ppf in
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (interp_json ~iters ms));
  Fmt.pf ppf "  full measurement (with timings) written to %s@.@." json_path

(* scan a BENCH_interp.json for the geomean block's [key] value; a full
   JSON parser would be a dependency for one float *)
let scan_geomean_field (json : string) (key : string) : float option =
  let find_from (sub : string) (from : int) : int option =
    let n = String.length json and k = String.length sub in
    let rec go i =
      if i + k > n then None
      else if String.sub json i k = sub then Some (i + k)
      else go (i + 1)
    in
    go from
  in
  match find_from "\"geomean\"" 0 with
  | None -> None
  | Some g -> (
    match find_from (Printf.sprintf "%S: " key) g with
    | None -> None
    | Some v ->
      let e = ref v in
      let n = String.length json in
      while
        !e < n
        && (match json.[!e] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false)
      do
        incr e
      done;
      float_of_string_opt (String.sub json v (!e - v)))

(* CI perf smoke: measure fresh, write [json_path], and compare the
   record-mode geomean against the committed baseline.  Returns [false]
   (fail the job) if [ratio_basic] regressed by more than [threshold]
   relative — generous, because shared runners are noisy; the uploaded
   artifact carries the full per-workload spread for forensics. *)
let interp_perfcheck ?(seed = 7)
    ?(baseline_path = "bench/BENCH_interp.baseline.json")
    ?(json_path = "BENCH_interp.json") ?(threshold = 0.20) () ppf : bool =
  let iters, ms = run_interp_measurements ~seed ppf in
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (interp_json ~iters ms));
  Fmt.pf ppf "  full measurement (with timings) written to %s@." json_path;
  let fresh = geomean (fun m -> m.im_native.sps_med /. m.im_basic.sps_med) ms in
  match
    if Sys.file_exists baseline_path then
      scan_geomean_field (In_channel.with_open_text baseline_path In_channel.input_all)
        "ratio_basic"
    else None
  with
  | None ->
    Fmt.pf ppf "  perfcheck: no baseline at %s — skipping comparison@.@." baseline_path;
    true
  | Some base ->
    let rel = (fresh -. base) /. base in
    let ok = rel <= threshold in
    Fmt.pf ppf
      "  perfcheck: geomean ratio_basic %.2f vs baseline %.2f (%+.0f%%, \
       threshold +%.0f%%) — %s@.@."
      fresh base (100. *. rel) (100. *. threshold)
      (if ok then "ok" else "REGRESSION");
    ok

(* ------------------------------------------------------------------ *)
(* Static-analysis precision (BENCH_analysis.json)                      *)
(* ------------------------------------------------------------------ *)

type analysis_measure = {
  am_bm : string;
  am_total : int;              (* access sites in the program *)
  am_coarse_instr : int;       (* instrumented under the legacy name-bucket pass *)
  am_sharp_instr : int;        (* instrumented under points-to + escape *)
  am_coarse_guarded : int;
  am_sharp_guarded : int;
  am_coarse_space : int;       (* Section-5 space units, v_both recording *)
  am_sharp_space : int;
  am_coarse_overhead : float;  (* modeled record overhead, v_both *)
  am_sharp_overhead : float;
  am_static_pairs : int;       (* sharp static race pairs *)
  am_confirmed_pairs : int;    (* confirmed by the HB detector (round-robin) *)
  am_native_sps : float;
  am_basic_coarse_sps : float; (* v_basic recording under the coarse plan *)
  am_basic_sharp_sps : float;  (* v_basic recording under the sharp plan *)
}

let measure_analysis ?(seed = 7) ~iters (bm : Workloads.benchmark) : analysis_measure =
  let p = Workloads.program bm in
  let sched () = Workloads.scheduler ~seed bm in
  let tr_c = Instrument.Transformer.transform ~precision:Analysis.Analyze.Coarse p in
  let tr_s = Instrument.Transformer.transform ~precision:Analysis.Analyze.Sharp p in
  let record ?plan variant =
    Light_core.Light.record ~variant ~sched:(sched ()) ~seed ?plan p
  in
  let rec_c = record ~plan:tr_c.plan Light_core.Light.v_both in
  let rec_s = record Light_core.Light.v_both in
  (* dynamic confirmation of the static race pairs: one detector run under
     the deterministic scheduler, so the column is stdout-safe *)
  let _, det = Analysis.Hb_detector.detect ~sched:(Sched.round_robin ()) p in
  let dyn_pairs = Hashtbl.create 16 in
  List.iter
    (fun (r : Analysis.Hb_detector.race) ->
      Hashtbl.replace dyn_pairs (min r.site1 r.site2, max r.site1 r.site2) ())
    (Analysis.Hb_detector.races det);
  let confirmed =
    List.length
      (List.filter
         (fun (r : Analysis.Analyze.race_pair) ->
           Hashtbl.mem dyn_pairs (min r.t1.sid r.t2.sid, max r.t1.sid r.t2.sid))
         tr_s.analysis.races)
  in
  let cp = Interp.compile p in
  let _, native =
    steps_per_sec ~iters (fun () -> Interp.run_compiled ~sched:(sched ()) cp)
  in
  let native_sps = native.sps_med in
  (* both timed runs take a precomputed plan: the point is the cost of the
     instrumentation the plan leaves behind, not of running the analysis *)
  let record_basic plan () = (record ~plan Light_core.Light.v_basic).outcome in
  let _, basic_coarse = steps_per_sec ~iters (record_basic tr_c.plan) in
  let _, basic_sharp = steps_per_sec ~iters (record_basic tr_s.plan) in
  let basic_coarse_sps = basic_coarse.sps_med and basic_sharp_sps = basic_sharp.sps_med in
  {
    am_bm = bm.name;
    am_total = tr_s.total_access_sites;
    am_coarse_instr = tr_c.instrumented_sites;
    am_sharp_instr = tr_s.instrumented_sites;
    am_coarse_guarded = tr_c.guarded_sites;
    am_sharp_guarded = tr_s.guarded_sites;
    am_coarse_space = rec_c.space_longs;
    am_sharp_space = rec_s.space_longs;
    am_coarse_overhead = rec_c.overhead;
    am_sharp_overhead = rec_s.overhead;
    am_static_pairs = List.length tr_s.analysis.races;
    am_confirmed_pairs = confirmed;
    am_native_sps = native_sps;
    am_basic_coarse_sps = basic_coarse_sps;
    am_basic_sharp_sps = basic_sharp_sps;
  }

let geomean_f (xs : float list) : float =
  exp (List.fold_left (fun a x -> a +. log x) 0. xs /. float_of_int (List.length xs))

let analysis_json ~iters (ms : analysis_measure list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"iters\": %d,\n  \"rows\": [\n" iters);
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"total_sites\": %d, \"coarse_instr\": %d, \
            \"sharp_instr\": %d, \"coarse_guarded\": %d, \"sharp_guarded\": %d, \
            \"coarse_space\": %d, \"sharp_space\": %d, \"coarse_overhead\": %.4f, \
            \"sharp_overhead\": %.4f, \"static_pairs\": %d, \"confirmed_pairs\": %d, \
            \"native_sps\": %.0f, \"basic_coarse_sps\": %.0f, \"basic_sharp_sps\": \
            %.0f, \"ratio_basic_coarse\": %.2f, \"ratio_basic_sharp\": %.2f}%s\n"
           m.am_bm m.am_total m.am_coarse_instr m.am_sharp_instr m.am_coarse_guarded
           m.am_sharp_guarded m.am_coarse_space m.am_sharp_space m.am_coarse_overhead
           m.am_sharp_overhead m.am_static_pairs m.am_confirmed_pairs m.am_native_sps
           m.am_basic_coarse_sps m.am_basic_sharp_sps
           (m.am_native_sps /. m.am_basic_coarse_sps)
           (m.am_native_sps /. m.am_basic_sharp_sps)
           (if i = List.length ms - 1 then "" else ",")))
    ms;
  let decreased =
    List.length (List.filter (fun m -> m.am_sharp_instr < m.am_coarse_instr) ms)
  in
  let regressed =
    List.length (List.filter (fun m -> m.am_sharp_instr > m.am_coarse_instr) ms)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"summary\": {\"decreased\": %d, \"regressed\": %d, \
        \"geomean_space_ratio\": %.3f, \"geomean_ratio_basic_coarse\": %.2f, \
        \"geomean_ratio_basic_sharp\": %.2f}\n}\n"
       decreased regressed
       (geomean_f
          (List.map
             (fun m -> float_of_int m.am_sharp_space /. float_of_int m.am_coarse_space)
             ms))
       (geomean_f (List.map (fun m -> m.am_native_sps /. m.am_basic_coarse_sps) ms))
       (geomean_f (List.map (fun m -> m.am_native_sps /. m.am_basic_sharp_sps) ms)));
  Buffer.contents buf

(* Static-analysis precision, old (name-bucket) vs new (points-to + escape +
   must-alias locks) — instrumented/guarded sites, Section-5 space units,
   modeled record overhead, race pairs with dynamic HB confirmation, and the
   wall-clock basic-recording ratios.  Sequential for timing purity, like
   the interp bench; every wall-clock column hides behind LIGHT_TIMINGS. *)
let analysis_bench ?(seed = 7) ?(json_path = "BENCH_analysis.json") () ppf : unit =
  let iters = bench_iters () in
  let ms = List.map (measure_analysis ~seed ~iters) Workloads.all in
  let pct v = Printf.sprintf "%.0f%%" (100. *. v) in
  Chart.table
    ~title:
      "Static-analysis precision: coarse (name buckets) vs sharp (points-to + \
       escape), v_both recording"
    ~header:
      [ "workload"; "sites"; "instr c>s"; "guard c>s"; "space c>s"; "ovh c>s";
        "races"; "dyn"; "xbasic c"; "xbasic s" ]
    (List.map
       (fun m ->
         [
           m.am_bm;
           string_of_int m.am_total;
           Printf.sprintf "%d>%d" m.am_coarse_instr m.am_sharp_instr;
           Printf.sprintf "%d>%d" m.am_coarse_guarded m.am_sharp_guarded;
           Printf.sprintf "%d>%d" m.am_coarse_space m.am_sharp_space;
           Printf.sprintf "%s>%s" (pct m.am_coarse_overhead) (pct m.am_sharp_overhead);
           string_of_int m.am_static_pairs;
           string_of_int m.am_confirmed_pairs;
           timing_cell (Printf.sprintf "%.1f" (m.am_native_sps /. m.am_basic_coarse_sps));
           timing_cell (Printf.sprintf "%.1f" (m.am_native_sps /. m.am_basic_sharp_sps));
         ])
       ms)
    ppf;
  let decreased =
    List.length (List.filter (fun m -> m.am_sharp_instr < m.am_coarse_instr) ms)
  in
  let regressed =
    List.length (List.filter (fun m -> m.am_sharp_instr > m.am_coarse_instr) ms)
  in
  Fmt.pf ppf
    "  instrumented sites: strictly fewer on %d/%d workloads, %d regressions@."
    decreased (List.length ms) regressed;
  Fmt.pf ppf "  geomean space ratio (sharp/coarse, v_both): %.3f@."
    (geomean_f
       (List.map
          (fun m -> float_of_int m.am_sharp_space /. float_of_int m.am_coarse_space)
          ms));
  if show_timings () then
    Fmt.pf ppf "  geomean record overhead (basic): coarse %.2fx, sharp %.2fx@."
      (geomean_f (List.map (fun m -> m.am_native_sps /. m.am_basic_coarse_sps) ms))
      (geomean_f (List.map (fun m -> m.am_native_sps /. m.am_basic_sharp_sps) ms));
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (analysis_json ~iters ms));
  Fmt.pf ppf "  full measurement (with timings) written to %s@.@." json_path

(* ------------------------------------------------------------------ *)
(* Figure 6: real-world bugs                                            *)
(* ------------------------------------------------------------------ *)

let fig6 ?(tries = 60) ?(clap_budget = 60_000) ?pool () ppf : unit =
  let rows = Bugs.Harness.reproduce_all ~tries ~clap_budget ?pool () in
  Chart.table
    ~title:"Figure 6: real-world bug reproduction (Light vs Clap vs Chimera)"
    ~header:[ "bug"; "failure"; "Light"; "Clap"; "Chimera"; "trigger" ]
    (List.map
       (fun (r : Bugs.Harness.row) ->
         let mark (a : Bugs.Harness.attempt) = if a.reproduced then "yes" else "NO" in
         [ r.bug.name; r.bug.kind; mark r.light; mark r.clap; mark r.chimera; r.trigger_descr ])
       rows)
    ppf;
  List.iter
    (fun (r : Bugs.Harness.row) ->
      Fmt.pf ppf "  %-13s clap: %s@.  %-13s chimera: %s@." r.bug.name r.clap.detail ""
        r.chimera.detail)
    rows;
  let n tool = List.length (List.filter tool rows) in
  Fmt.pf ppf
    "@.  Light %d/8 (paper 8/8) | Clap %d/8 (paper 3/8) | Chimera %d/8 (paper 5/8)@.@."
    (n (fun r -> r.light.reproduced))
    (n (fun r -> r.clap.reproduced))
    (n (fun r -> r.chimera.reproduced))

(* ------------------------------------------------------------------ *)
(* Table 1: replay measurement                                          *)
(* ------------------------------------------------------------------ *)

let table1 ?(scale_factor = 1) ?pool () ppf : unit =
  let rows =
    Engine.Batch.map ?pool Bugs.Defs.all ~f:(fun (b : Bugs.Defs.bug) ->
        let scale = max 1 (b.table1_scale * scale_factor) in
        let p = Bugs.Defs.program_of b ~scale ~background:true () in
        match Bugs.Harness.find_trigger ~tries:40 p with
        | None -> None
        | Some tr ->
          let r =
            Light_core.Light.record ~variant:Light_core.Light.v_both
              ~sched:(tr.make_sched ()) p
          in
          let t0 = Unix.gettimeofday () in
          (match Light_core.Light.replay r with
          | Error e -> Some [ b.name; "-"; "-"; "-"; "solver failed: " ^ e ]
          | Ok rr ->
            let replay_s = Unix.gettimeofday () -. t0 -. rr.report.solve_time_s in
            let faithful = Bugs.Harness.crashes_match r.outcome rr.replay_outcome in
            Some
              [
                b.name;
                Printf.sprintf "%.1f" (float_of_int r.space_longs /. 1000.);
                timing_cell (Printf.sprintf "%.3f" rr.report.solve_time_s);
                timing_cell (Printf.sprintf "%.3f" replay_s);
                (if faithful then "reproduced" else "NOT reproduced");
              ]))
    |> List.filter_map Fun.id
  in
  Chart.table
    ~title:"Table 1: replay measurement (Light; per-bug recording at Table-1 scale)"
    ~header:[ "bug"; "Space (K longs)"; "Solve (s)"; "Replay (s)"; "result" ]
    rows ppf;
  Fmt.pf ppf
    "  (paper spaces: Cache4j 297K, Ftpserver 13K, Lucene-481 1088K, Lucene-651 2596K,@.\
    \   Tomcat-37458 15K, Tomcat-50885 590K, Tomcat-53498 28K, Weblech 2K; absolute@.\
    \   seconds differ — the reproduced shape is solve time tracking recorded space.)@.@."

(* ------------------------------------------------------------------ *)
(* Schedule-space exploration bench (BENCH_explore.json)                *)
(* ------------------------------------------------------------------ *)

(* Per-workload exploration throughput: every flip candidate of the
   recorded run is re-solved twice — seeded with the recording's witness
   and fresh — executed, and classified.  LIGHT_EXPLORE_FLIPS caps the
   candidates per workload (CI uses a reduced budget); verdict counts on
   stdout are deterministic, wall-clock columns hide behind LIGHT_TIMINGS,
   and the full measurement lands in [json_path] for the CI artifact. *)
let explore_bench ?(seed = 3) ?(json_path = "BENCH_explore.json") ?pool () ppf
    : unit =
  let limit =
    match Sys.getenv_opt "LIGHT_EXPLORE_FLIPS" with
    | Some s -> (try int_of_string s with _ -> 8)
    | None -> 8
  in
  let rows =
    Engine.Batch.map ?pool Workloads.all ~f:(fun (bm : Workloads.benchmark) ->
        let p = Workloads.program bm in
        match
          Explore.make_context ~seed
            ~make_sched:(fun () -> Workloads.scheduler ~seed bm)
            p
        with
        | Error e -> Error (bm.name, e)
        | Ok ctx -> Ok (Explore.measure ~limit ~label:bm.name ctx))
  in
  let skipped = List.filter_map (function Error x -> Some x | Ok _ -> None) rows in
  let ms = List.filter_map (function Ok m -> Some m | Error _ -> None) rows in
  Chart.table
    ~title:
      "Schedule-space exploration (per-workload flip candidates: verdicts, \
       witness-seeded vs fresh re-solve)"
    ~header:
      [ "workload"; "flips"; "same"; "div"; "crash"; "stuck"; "infeas"; "abort";
        "re-solve (s)"; "fresh (s)"; "sched/s" ]
    (List.map
       (fun (m : Explore.stats) ->
         [
           m.st_label;
           string_of_int m.st_candidates;
           string_of_int m.st_same;
           string_of_int m.st_divergent;
           string_of_int m.st_crashed;
           string_of_int m.st_stuck;
           string_of_int m.st_infeasible;
           string_of_int m.st_aborted;
           timing_cell (Printf.sprintf "%.4f" m.st_resolve_s);
           timing_cell (Printf.sprintf "%.4f" m.st_fresh_s);
           timing_cell (Printf.sprintf "%.1f" m.st_sched_per_s);
         ])
       ms)
    ppf;
  List.iter
    (fun (name, e) -> Fmt.pf ppf "  %-13s skipped: %s@." name e)
    skipped;
  let totf f = List.fold_left (fun a m -> a +. f m) 0.0 ms in
  let tot f = List.fold_left (fun a m -> a + f m) 0 ms in
  let resolve = totf (fun m -> m.Explore.st_resolve_s)
  and fresh = totf (fun m -> m.Explore.st_fresh_s) in
  Fmt.pf ppf
    "  %d flip candidates over %d workloads (capped at %d per workload; \
     LIGHT_EXPLORE_FLIPS overrides): %d feasible neighbors (%d same, %d \
     divergent, %d crashed, %d stuck), %d infeasible, %d aborted@."
    (tot (fun m -> m.st_candidates))
    (List.length ms)
    limit
    (tot (fun m -> m.st_same + m.st_divergent + m.st_crashed + m.st_stuck))
    (tot (fun m -> m.st_same))
    (tot (fun m -> m.st_divergent))
    (tot (fun m -> m.st_crashed))
    (tot (fun m -> m.st_stuck))
    (tot (fun m -> m.st_infeasible))
    (tot (fun m -> m.st_aborted));
  if show_timings () then
    Fmt.pf ppf
      "  witness-seeded re-solve %.4fs vs fresh %.4fs -> %.1fx speedup (%d \
       fresh aborts)@."
      resolve fresh
      (if resolve > 0.0 then fresh /. resolve else 0.0)
      (tot (fun m -> m.st_fresh_aborted));
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (Explore.stats_to_json ms));
  Fmt.pf ppf "  full measurement (with timings) written to %s@.@." json_path

(* ------------------------------------------------------------------ *)
(* Running example (Sections 2.3/2.4)                                   *)
(* ------------------------------------------------------------------ *)

let running_example () ppf : unit =
  let bm = Option.get (Workloads.by_name "cache4j") in
  let p = Workloads.program ~scale:2 bm in
  let sched () = Workloads.scheduler bm in
  let run variant =
    Light_core.Light.record ~variant ~sched:(sched ()) p
  in
  let basic = run Light_core.Light.v_basic in
  let both = run Light_core.Light.v_both in
  (* Leap comparison for the 1/3 claim *)
  let plan = basic.plan in
  let leap_rec = Baselines.Leap.create () in
  let leap_out = Interp.run ~hooks:(Baselines.Leap.hooks leap_rec) ~plan ~sched:(sched ()) p in
  let leap_ovh = Metrics.Cost.overhead leap_rec.meter ~steps:leap_out.steps in
  Chart.table ~title:"Running example (Cache4j workload, Sections 2.3-2.4)"
    ~header:[ "configuration"; "overhead"; "paper" ]
    [
      [ "Leap"; Printf.sprintf "%.2fx" leap_ovh; "~3x" ];
      [ "Light core (V_basic)"; Printf.sprintf "%.2fx" basic.overhead; "1.2x" ];
      [ "Light + O1 + O2"; Printf.sprintf "%.0f%%" (100. *. both.overhead); "~30%" ];
    ]
    ppf
