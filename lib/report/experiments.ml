(** Experiment drivers: one function per table/figure of Section 5.
    `bench/main.exe` calls these; see DESIGN.md's experiment index. *)

open Runtime

(* ------------------------------------------------------------------ *)
(* Per-benchmark measurement (Figures 4, 5, 7)                          *)
(* ------------------------------------------------------------------ *)

type tool_measure = { overhead : float; space_longs : int }

type bench_measure = {
  bm : Workloads.benchmark;
  steps : int;
  accesses : int;
  leap : tool_measure;
  stride : tool_measure;
  light_basic : tool_measure;
  light_o1 : tool_measure;
  light_both : tool_measure;
}

let measure_benchmark ?(scale = 1) ?(seed = 7) (bm : Workloads.benchmark) :
    bench_measure =
  let p = Workloads.program ~scale bm in
  let sched () = Workloads.scheduler ~seed bm in
  let tr = Instrument.Transformer.transform p in
  let plan = tr.plan in
  (* Leap *)
  let leap_rec = Baselines.Leap.create () in
  let leap_out = Interp.run ~hooks:(Baselines.Leap.hooks leap_rec) ~plan ~sched:(sched ()) p in
  let leap_log = Baselines.Leap.finalize leap_rec in
  let leap =
    {
      overhead = Metrics.Cost.overhead leap_rec.meter ~steps:leap_out.steps;
      space_longs = leap_log.space_longs;
    }
  in
  (* Stride *)
  let st_rec = Baselines.Stride.create () in
  let st_out = Interp.run ~hooks:(Baselines.Stride.hooks st_rec) ~plan ~sched:(sched ()) p in
  let st_log = Baselines.Stride.finalize st_rec in
  let stride =
    {
      overhead = Metrics.Cost.overhead st_rec.meter ~steps:st_out.steps;
      space_longs = st_log.space_longs;
    }
  in
  (* Light variants *)
  let light variant =
    let r = Light_core.Light.record ~variant ~sched:(sched ()) p in
    ({ overhead = r.overhead; space_longs = r.space_longs }, r)
  in
  let light_basic, _ = light Light_core.Light.v_basic in
  let light_o1, _ = light Light_core.Light.v_o1 in
  let light_both, rb = light Light_core.Light.v_both in
  {
    bm;
    steps = rb.outcome.steps;
    accesses = leap_log.space_longs;  (* Leap records one long per access *)
    leap;
    stride;
    light_basic;
    light_o1;
    light_both;
  }

(* Each benchmark measurement is self-contained (fresh parse, plan,
   recorders, interpreter and scheduler state), so the 24 measurements fan
   out across the engine pool; the merge preserves [Workloads.paper] order,
   so the figures are byte-identical for any pool size.  The figures stay
   on the 24-benchmark paper set — their captions compare against the
   paper's x/24 counts; the message-passing additions are covered by the
   solver/interp/analysis/explore benches, which run [Workloads.all]. *)
let measure_all ?scale ?seed ?pool () : bench_measure list =
  Engine.Batch.map ?pool Workloads.paper ~f:(measure_benchmark ?scale ?seed)

(* Wall-clock columns (solver/replay seconds) are hidden unless LIGHT_TIMINGS
   is set: default output must not depend on machine speed or pool size. *)
let show_timings () = Sys.getenv_opt "LIGHT_TIMINGS" <> None
let timing_cell s = if show_timings () then s else "-"

(* ------------------------------------------------------------------ *)
(* Figure 4 / aggregate time table                                      *)
(* ------------------------------------------------------------------ *)

let fig4 (ms : bench_measure list) ppf : unit =
  Chart.grouped
    ~title:
      "Figure 4: normalized time overhead (Light vs Leap vs Stride; bars scaled per benchmark)"
    ~series:[ "Leap"; "Stride"; "Light" ]
    (List.map
       (fun m -> (m.bm.name, [ m.leap.overhead; m.stride.overhead; m.light_both.overhead ]))
       ms)
    ppf;
  let agg f = Metrics.Stats.summarize (List.map f ms) in
  let leap = agg (fun m -> m.leap.overhead) in
  let stride = agg (fun m -> m.stride.overhead) in
  let light = agg (fun m -> m.light_both.overhead) in
  let s (x : Metrics.Stats.summary) =
    List.map (Printf.sprintf "%.2f")
      [ x.average; x.median; x.minimum; x.maximum ]
  in
  Chart.table ~title:"Aggregate recording overhead (fraction of base run time)"
    ~header:[ ""; "average"; "median"; "minimum"; "maximum" ]
    [ "Leap" :: s leap; "Stride" :: s stride; "Light" :: s light ]
    ppf;
  Fmt.pf ppf "  (paper: Leap 4.11/2.58/0.17/17.85, Stride 4.66/2.92/0.19/23.89, Light 0.44/0.42/0.15/0.73)@.@."

(* ------------------------------------------------------------------ *)
(* Figure 5 / aggregate space table                                     *)
(* ------------------------------------------------------------------ *)

let fig5 (ms : bench_measure list) ppf : unit =
  Chart.grouped
    ~title:
      "Figure 5: normalized space consumption in Long-integer units (bars scaled per benchmark)"
    ~series:[ "Leap"; "Stride"; "Light" ]
    (List.map
       (fun m ->
         ( m.bm.name,
           [ float_of_int m.leap.space_longs;
             float_of_int m.stride.space_longs;
             float_of_int m.light_both.space_longs ] ))
       ms)
    ppf;
  let agg f = Metrics.Stats.summarize (List.map f ms) in
  let leap = agg (fun m -> float_of_int m.leap.space_longs) in
  let stride = agg (fun m -> float_of_int m.stride.space_longs) in
  let light = agg (fun m -> float_of_int m.light_both.space_longs) in
  let s (x : Metrics.Stats.summary) =
    List.map (Printf.sprintf "%.1f")
      [ x.average; x.median; x.minimum; x.maximum ]
  in
  Chart.table ~title:"Aggregate space (Long-integers per run)"
    ~header:[ ""; "average"; "median"; "minimum"; "maximum" ]
    [ "Leap" :: s leap; "Stride" :: s stride; "Light" :: s light ]
    ppf;
  let ratio =
    let tot f = List.fold_left (fun a m -> a + f m) 0 ms in
    float_of_int (tot (fun m -> m.light_both.space_longs))
    /. float_of_int (max 1 (tot (fun m -> m.leap.space_longs)))
  in
  Fmt.pf ppf "  Light/Leap total space ratio: %.1f%% (paper: ~7.5%%, \"only 10%% of those techniques\")@.@."
    (100. *. ratio)

(* ------------------------------------------------------------------ *)
(* Figure 7: optimization breakdown                                     *)
(* ------------------------------------------------------------------ *)

let fig7 (ms : bench_measure list) ppf : unit =
  let rows value =
    List.map
      (fun m ->
        let basic = value m.light_basic in
        let o1 = value m.light_o1 in
        let both = value m.light_both in
        let d1 = max 0.0 (basic -. o1) in
        let d2 = max 0.0 (o1 -. both) in
        (m.bm.name, [ d1; d2; min basic both ]))
      ms
  in
  Chart.stacked
    ~title:"Figure 7a: time overhead breakdown (100% = V_basic)"
    ~segments:[ "saved by O1"; "saved by O2"; "remaining (V_O1+O2)" ]
    (rows (fun t -> t.overhead))
    ppf;
  Chart.stacked
    ~title:"Figure 7b: space breakdown (100% = V_basic)"
    ~segments:[ "saved by O1"; "saved by O2"; "remaining (V_O1+O2)" ]
    (rows (fun t -> float_of_int t.space_longs))
    ppf;
  (* the paper's headline counts *)
  let count pred value =
    List.length
      (List.filter
         (fun m ->
           let basic = value m.light_basic and o1 = value m.light_o1
           and both = value m.light_both in
           pred basic o1 both)
         ms)
  in
  let time = (fun t -> t.overhead) in
  let space = (fun t -> float_of_int t.space_longs) in
  Fmt.pf ppf "  time:  O1 saves >=20%% in %d/24 (paper 20/24), >=50%% in %d/24 (paper 8/24);@."
    (count (fun b o1 _ -> b -. o1 >= 0.2 *. b) time)
    (count (fun b o1 _ -> b -. o1 >= 0.5 *. b) time);
  Fmt.pf ppf "         O2 saves >=20%% in %d/24 (paper 9/24), >=50%% in %d/24 (paper 4/24)@."
    (count (fun b o1 both -> o1 -. both >= 0.2 *. b) time)
    (count (fun b o1 both -> o1 -. both >= 0.5 *. b) time);
  Fmt.pf ppf "  space: O1 saves >=50%% in %d/24 (paper 16/24); O2 saves >=20%% in %d/24 (paper 6/24)@.@."
    (count (fun b o1 _ -> b -. o1 >= 0.5 *. b) space)
    (count (fun b o1 both -> o1 -. both >= 0.2 *. b) space)

(* ------------------------------------------------------------------ *)
(* Solver pipeline measurement (BENCH_solver.json)                      *)
(* ------------------------------------------------------------------ *)

type solver_measure = {
  sm_bm : string;
  sm_variant : string;
  sm_vars : int;
  sm_hard : int;
  sm_pairs : int;    (* pre-pruning: clauses the naive generator would emit *)
  sm_clauses : int;  (* post-pruning *)
  sm_pruned : int;
  sm_unit : int;
  sm_dedup : int;
  sm_result : string;
  sm_decisions : int;
  sm_backtracks : int;
  sm_conflicts : int;
  sm_gen_s : float;
  sm_solve_s : float;
}

let solver_variants =
  [ Light_core.Light.v_basic; Light_core.Light.v_both ]

let measure_solver ?(seed = 3)
    ((bm : Workloads.benchmark), (variant : Light_core.Light.variant)) :
    solver_measure =
  let p = Workloads.program bm in
  let r =
    Light_core.Light.record ~variant ~sched:(Workloads.scheduler ~seed bm) ~seed p
  in
  let report = Light_core.Replayer.solve r.log in
  let g = report.gen_stats and s = report.solver_stats in
  {
    sm_bm = bm.name;
    sm_variant = Light_core.Recorder.variant_name variant;
    sm_vars = report.n_vars;
    sm_hard = report.n_hard;
    sm_pairs = g.n_pairs;
    sm_clauses = report.n_clauses;
    sm_pruned = g.n_pruned;
    sm_unit = g.n_unit;
    sm_dedup = g.n_dedup;
    sm_result =
      (match report.result_kind with
      | Light_core.Replayer.Solved -> "sat"
      | Unsatisfiable -> "unsat"
      | SolverAborted -> "aborted");
    sm_decisions = s.decisions;
    sm_backtracks = s.backtracks;
    sm_conflicts = s.theory_conflicts;
    sm_gen_s = g.gen_time_s;
    sm_solve_s = report.solve_time_s;
  }

let solver_json (ms : solver_measure list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"rows\": [\n";
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"variant\": %S, \"vars\": %d, \"hard\": %d, \
            \"pairs_pre_pruning\": %d, \"clauses\": %d, \"pruned\": %d, \
            \"unit_reduced\": %d, \"deduped\": %d, \"result\": %S, \
            \"decisions\": %d, \"backtracks\": %d, \"conflicts\": %d, \
            \"gen_s\": %.4f, \"solve_s\": %.4f}%s\n"
           m.sm_bm m.sm_variant m.sm_vars m.sm_hard m.sm_pairs m.sm_clauses
           m.sm_pruned m.sm_unit m.sm_dedup m.sm_result m.sm_decisions
           m.sm_backtracks m.sm_conflicts m.sm_gen_s m.sm_solve_s
           (if i = List.length ms - 1 then "" else ",")))
    ms;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* Per-workload constraint pipeline report: generation pruning ratios and
   solver search statistics for the uncompressed (v_basic) and default
   (O1+O2) logs.  Counts on stdout are deterministic; the wall-clock
   columns hide behind LIGHT_TIMINGS, and the full measurement — times
   included — lands in [json_path] for the CI artifact. *)
let solver_bench ?(seed = 3) ?(json_path = "BENCH_solver.json") ?pool () ppf :
    unit =
  let grid =
    List.concat_map
      (fun bm -> List.map (fun v -> (bm, v)) solver_variants)
      Workloads.all
  in
  let ms = Engine.Batch.map ?pool grid ~f:(measure_solver ~seed) in
  Chart.table
    ~title:
      "Constraint pipeline (per-workload: noninterference pairs before pruning, \
       clauses after, solver work)"
    ~header:
      [ "workload"; "variant"; "vars"; "pairs"; "clauses"; "dec"; "bt"; "conf";
        "result"; "gen (s)"; "solve (s)" ]
    (List.map
       (fun m ->
         [
           m.sm_bm;
           m.sm_variant;
           string_of_int m.sm_vars;
           string_of_int m.sm_pairs;
           string_of_int m.sm_clauses;
           string_of_int m.sm_decisions;
           string_of_int m.sm_backtracks;
           string_of_int m.sm_conflicts;
           m.sm_result;
           timing_cell (Printf.sprintf "%.3f" m.sm_gen_s);
           timing_cell (Printf.sprintf "%.3f" m.sm_solve_s);
         ])
       ms)
    ppf;
  let tot f = List.fold_left (fun a m -> a + f m) 0 ms in
  Fmt.pf ppf
    "  pruning: %d pairs -> %d clauses (%d entailed, %d unit-reduced, %d deduped)@."
    (tot (fun m -> m.sm_pairs))
    (tot (fun m -> m.sm_clauses))
    (tot (fun m -> m.sm_pruned))
    (tot (fun m -> m.sm_unit))
    (tot (fun m -> m.sm_dedup));
  let aborted = List.filter (fun m -> m.sm_result <> "sat") ms in
  Fmt.pf ppf "  unsolved cells: %d/%d@." (List.length aborted) (List.length ms);
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (solver_json ms));
  Fmt.pf ppf "  full measurement (with timings) written to %s@.@." json_path

(* ------------------------------------------------------------------ *)
(* Interpreter throughput (BENCH_interp.json)                           *)
(* ------------------------------------------------------------------ *)

(* one timed series: median is the headline number (robust to a single
   slow iteration on a shared runner), min approximates the noise floor,
   max completes the recorded spread *)
type series = { sps_med : float; sps_min : float; sps_max : float }

type interp_measure = {
  im_bm : string;
  im_steps : int;     (* steps of one uninstrumented run *)
  im_ref : series;    (* reference interpreter (string-keyed), native *)
  im_native : series; (* slot-resolved interpreter, native *)
  im_vm : series;     (* register-bytecode VM, native *)
  im_basic : series;  (* under Light recording, uncompressed *)
  im_o1 : series;
  im_both : series;
  im_epoch : series;  (* v_basic recording in epoch mode (~8 epochs/run) *)
}

(* CI runs with a reduced budget via LIGHT_BENCH_ITERS *)
let bench_iters () =
  match Sys.getenv_opt "LIGHT_BENCH_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 5)
  | None -> 5

(* steps/second of [run]: one warmup execution (whose step count is
   returned), then [iters] individually timed executions *)
let steps_per_sec ~iters (run : unit -> Interp.outcome) : int * series =
  let o0 = run () in
  let steps = float_of_int o0.steps in
  let samples =
    Array.init iters (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (run ());
        let dt = Unix.gettimeofday () -. t0 in
        steps /. Float.max dt 1e-9)
  in
  Array.sort compare samples;
  let n = Array.length samples in
  let med =
    if n land 1 = 1 then samples.(n / 2)
    else 0.5 *. (samples.((n / 2) - 1) +. samples.(n / 2))
  in
  (o0.steps, { sps_med = med; sps_min = samples.(0); sps_max = samples.(n - 1) })

let measure_interp ?(seed = 7) ~iters (bm : Workloads.benchmark) : interp_measure =
  let p = Workloads.program bm in
  let sched () = Workloads.scheduler ~seed bm in
  let cp = Interp.compile p in
  let steps, native =
    steps_per_sec ~iters (fun () -> Interp.run_compiled ~sched:(sched ()) cp)
  in
  let bp = Lang.Compile.lower cp in
  let _, vm = steps_per_sec ~iters (fun () -> Vm.run_program ~sched:(sched ()) bp) in
  let _, ref_ = steps_per_sec ~iters (fun () -> Interp_ref.run ~sched:(sched ()) p) in
  (* instrument once, record every iteration: the analysis and the slot
     resolution are prepare-time costs (measured by the analysis bench);
     what this bench times is the recording fast path *)
  let record variant =
    let pp = Light_core.Light.prepare ~variant p in
    fun () -> (Light_core.Light.record_prepared ~sched:(sched ()) ~seed pp).outcome
  in
  let _, basic = steps_per_sec ~iters (record Light_core.Light.v_basic) in
  let _, o1 = steps_per_sec ~iters (record Light_core.Light.v_o1) in
  let _, both = steps_per_sec ~iters (record Light_core.Light.v_both) in
  (* epoch mode on the same fast path: checkpoint + seal ~8 times per run,
     so the series prices the boundary work (snapshot, arena seal,
     last-write clear) on top of v_basic recording.  The production
     streaming shape (seal, hand off, drop) is what's timed — like the
     monolithic series, it ends at in-memory sealed logs. *)
  let record_epoch =
    let pp = Light_core.Light.prepare ~variant:Light_core.Light.v_basic p in
    let epoch_len = max 512 ((steps / 8) + 1) in
    fun () ->
      ignore
        (Light_core.Epoch.record_epochs_stream ~sched:(sched ()) ~seed
           ~epoch_len ~emit:ignore pp)
  in
  let epoch =
    let sps = float_of_int steps in
    record_epoch ();  (* warmup, like [steps_per_sec] *)
    let samples =
      Array.init iters (fun _ ->
          let t0 = Unix.gettimeofday () in
          record_epoch ();
          let dt = Unix.gettimeofday () -. t0 in
          sps /. Float.max dt 1e-9)
    in
    Array.sort compare samples;
    let n = Array.length samples in
    let med =
      if n land 1 = 1 then samples.(n / 2)
      else 0.5 *. (samples.((n / 2) - 1) +. samples.(n / 2))
    in
    { sps_med = med; sps_min = samples.(0); sps_max = samples.(n - 1) }
  in
  {
    im_bm = bm.name;
    im_steps = steps;
    im_ref = ref_;
    im_native = native;
    im_vm = vm;
    im_basic = basic;
    im_o1 = o1;
    im_both = both;
    im_epoch = epoch;
  }

let geomean (f : interp_measure -> float) (ms : interp_measure list) : float =
  exp (List.fold_left (fun a m -> a +. log (f m)) 0. ms /. float_of_int (List.length ms))

(* relative iteration spread of a series, (max - min) / median *)
let spread (s : series) : float = (s.sps_max -. s.sps_min) /. Float.max s.sps_med 1e-9

let interp_json ~iters (ms : interp_measure list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"iters\": %d,\n  \"rows\": [\n" iters);
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"steps\": %d, \"ref_sps\": %.0f, \
            \"native_sps\": %.0f, \"vm_sps\": %.0f, \"basic_sps\": %.0f, \
            \"o1_sps\": %.0f, \
            \"both_sps\": %.0f, \"epoch_sps\": %.0f, \"speedup_vs_ref\": %.2f, \
            \"vm_speedup\": %.2f, \
            \"ratio_basic\": %.2f, \"ratio_o1\": %.2f, \"ratio_both\": %.2f, \
            \"ratio_epoch\": %.2f,\n\
           \     \"native_sps_min\": %.0f, \"native_sps_max\": %.0f, \
            \"vm_sps_min\": %.0f, \"vm_sps_max\": %.0f, \
            \"basic_sps_min\": %.0f, \"basic_sps_max\": %.0f, \
            \"o1_sps_min\": %.0f, \"o1_sps_max\": %.0f, \
            \"both_sps_min\": %.0f, \"both_sps_max\": %.0f, \
            \"epoch_sps_min\": %.0f, \"epoch_sps_max\": %.0f, \
            \"native_spread\": %.3f}%s\n"
           m.im_bm m.im_steps m.im_ref.sps_med m.im_native.sps_med
           m.im_vm.sps_med
           m.im_basic.sps_med m.im_o1.sps_med m.im_both.sps_med
           m.im_epoch.sps_med
           (m.im_native.sps_med /. m.im_ref.sps_med)
           (m.im_vm.sps_med /. m.im_native.sps_med)
           (m.im_native.sps_med /. m.im_basic.sps_med)
           (m.im_native.sps_med /. m.im_o1.sps_med)
           (m.im_native.sps_med /. m.im_both.sps_med)
           (m.im_native.sps_med /. m.im_epoch.sps_med)
           m.im_native.sps_min m.im_native.sps_max
           m.im_vm.sps_min m.im_vm.sps_max
           m.im_basic.sps_min
           m.im_basic.sps_max m.im_o1.sps_min m.im_o1.sps_max m.im_both.sps_min
           m.im_both.sps_max m.im_epoch.sps_min m.im_epoch.sps_max
           (spread m.im_native)
           (if i = List.length ms - 1 then "" else ",")))
    ms;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"geomean\": {\"speedup_vs_ref\": %.2f, \"vm_speedup\": %.2f, \
        \"ratio_basic\": %.2f, \
        \"ratio_o1\": %.2f, \"ratio_both\": %.2f, \"ratio_epoch\": %.2f}\n}\n"
       (geomean (fun m -> m.im_native.sps_med /. m.im_ref.sps_med) ms)
       (geomean (fun m -> m.im_vm.sps_med /. m.im_native.sps_med) ms)
       (geomean (fun m -> m.im_native.sps_med /. m.im_basic.sps_med) ms)
       (geomean (fun m -> m.im_native.sps_med /. m.im_o1.sps_med) ms)
       (geomean (fun m -> m.im_native.sps_med /. m.im_both.sps_med) ms)
       (geomean (fun m -> m.im_native.sps_med /. m.im_epoch.sps_med) ms));
  Buffer.contents buf

(* Per-workload interpreter throughput: the slot-resolved interpreter
   against the string-keyed reference (native, uninstrumented), and the
   per-variant recording-overhead ratios (native steps/sec divided by
   recorded steps/sec).  All steps/sec cells are the median over the timed
   iterations.  Runs sequentially — timing inside the domain pool would
   measure contention, not the interpreter.  Step counts on stdout are
   deterministic; every wall-clock-derived column hides behind
   LIGHT_TIMINGS, and the full measurement (with per-series min/max) lands
   in [json_path] for CI. *)
let run_interp_measurements ~seed ppf : int * interp_measure list =
  let iters = bench_iters () in
  let ms = List.map (measure_interp ~seed ~iters) Workloads.all in
  let f1 v = Printf.sprintf "%.1f" v in
  let k sps = Printf.sprintf "%.0fk" (sps /. 1e3) in
  Chart.table
    ~title:
      "Interpreter throughput (median steps/sec: reference vs slot-resolved, \
       native and under recording)"
    ~header:
      [ "workload"; "steps"; "ref"; "native"; "vm"; "speedup"; "vmx"; "basic";
        "o1"; "o1+o2"; "epoch"; "xbasic"; "xo1"; "xo1+o2"; "xepoch" ]
    (List.map
       (fun m ->
         [
           m.im_bm;
           string_of_int m.im_steps;
           timing_cell (k m.im_ref.sps_med);
           timing_cell (k m.im_native.sps_med);
           timing_cell (k m.im_vm.sps_med);
           timing_cell (f1 (m.im_native.sps_med /. m.im_ref.sps_med));
           timing_cell (f1 (m.im_vm.sps_med /. m.im_native.sps_med));
           timing_cell (k m.im_basic.sps_med);
           timing_cell (k m.im_o1.sps_med);
           timing_cell (k m.im_both.sps_med);
           timing_cell (k m.im_epoch.sps_med);
           timing_cell (f1 (m.im_native.sps_med /. m.im_basic.sps_med));
           timing_cell (f1 (m.im_native.sps_med /. m.im_o1.sps_med));
           timing_cell (f1 (m.im_native.sps_med /. m.im_both.sps_med));
           timing_cell (f1 (m.im_native.sps_med /. m.im_epoch.sps_med));
         ])
       ms)
    ppf;
  Fmt.pf ppf "  total steps (one native run each): %d@."
    (List.fold_left (fun a m -> a + m.im_steps) 0 ms);
  if show_timings () then begin
    Fmt.pf ppf
      "  geomean: %.2fx vs reference (VM %.2fx vs native); record overhead \
       %.2fx basic, %.2fx O1, %.2fx O1+O2@."
      (geomean (fun m -> m.im_native.sps_med /. m.im_ref.sps_med) ms)
      (geomean (fun m -> m.im_vm.sps_med /. m.im_native.sps_med) ms)
      (geomean (fun m -> m.im_native.sps_med /. m.im_basic.sps_med) ms)
      (geomean (fun m -> m.im_native.sps_med /. m.im_o1.sps_med) ms)
      (geomean (fun m -> m.im_native.sps_med /. m.im_both.sps_med) ms);
    Fmt.pf ppf "  native min-of-iters geomean: %.0fk steps/sec@."
      (geomean (fun m -> m.im_native.sps_min) ms /. 1e3);
    let worst =
      List.fold_left
        (fun (wn, ws) m ->
          let s = spread m.im_native in
          if s > ws then (m.im_bm, s) else (wn, ws))
        ("-", 0.) ms
    in
    Fmt.pf ppf "  worst native iteration spread: %.0f%% (%s)@."
      (100. *. snd worst) (fst worst)
  end;
  (iters, ms)

let interp_bench ?(seed = 7) ?(json_path = "BENCH_interp.json") () ppf : unit =
  let iters, ms = run_interp_measurements ~seed ppf in
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (interp_json ~iters ms));
  Fmt.pf ppf "  full measurement (with timings) written to %s@.@." json_path

(* scan a BENCH_interp.json for the geomean block's [key] value; a full
   JSON parser would be a dependency for one float *)
let scan_geomean_field (json : string) (key : string) : float option =
  let find_from (sub : string) (from : int) : int option =
    let n = String.length json and k = String.length sub in
    let rec go i =
      if i + k > n then None
      else if String.sub json i k = sub then Some (i + k)
      else go (i + 1)
    in
    go from
  in
  match find_from "\"geomean\"" 0 with
  | None -> None
  | Some g -> (
    match find_from (Printf.sprintf "%S: " key) g with
    | None -> None
    | Some v ->
      let e = ref v in
      let n = String.length json in
      while
        !e < n
        && (match json.[!e] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false)
      do
        incr e
      done;
      float_of_string_opt (String.sub json v (!e - v)))

(* CI perf smoke: measure fresh, write [json_path], and compare the
   record-mode geomean against the committed baseline.  Returns [false]
   (fail the job) if [ratio_basic] regressed by more than [threshold]
   relative — generous, because shared runners are noisy; the uploaded
   artifact carries the full per-workload spread for forensics.  A second
   gate holds epoch-mode recording to the monolithic fast path: both
   geomeans come from the same process and iteration budget, so the
   [epoch_threshold] can be tight (the boundary work — snapshot, seal,
   last-write clear — must stay amortized across the window). *)
let interp_perfcheck ?(seed = 7)
    ?(baseline_path = "bench/BENCH_interp.baseline.json")
    ?(json_path = "BENCH_interp.json") ?(threshold = 0.20)
    ?(epoch_threshold = 0.10) () ppf : bool =
  let iters, ms = run_interp_measurements ~seed ppf in
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (interp_json ~iters ms));
  Fmt.pf ppf "  full measurement (with timings) written to %s@." json_path;
  let fresh = geomean (fun m -> m.im_native.sps_med /. m.im_basic.sps_med) ms in
  (* bytecode gate: the register VM must not fall behind the tree walker it
     replaces as the native substrate *)
  let vm_speedup = geomean (fun m -> m.im_vm.sps_med /. m.im_native.sps_med) ms in
  let vm_ok = vm_speedup >= 1.0 in
  Fmt.pf ppf
    "  perfcheck: geomean VM speedup %.2fx vs tree interpreter (threshold \
     1.00x) — %s@."
    vm_speedup
    (if vm_ok then "ok" else "VM REGRESSION");
  let fresh_epoch =
    geomean (fun m -> m.im_native.sps_med /. m.im_epoch.sps_med) ms
  in
  let epoch_rel = (fresh_epoch -. fresh) /. fresh in
  let epoch_ok = epoch_rel <= epoch_threshold in
  Fmt.pf ppf
    "  perfcheck: geomean ratio_epoch %.2f vs ratio_basic %.2f (%+.0f%%, \
     threshold +%.0f%%) — %s@."
    fresh_epoch fresh (100. *. epoch_rel) (100. *. epoch_threshold)
    (if epoch_ok then "ok" else "EPOCH-MODE REGRESSION");
  let base_ok =
    match
      if Sys.file_exists baseline_path then
        scan_geomean_field (In_channel.with_open_text baseline_path In_channel.input_all)
          "ratio_basic"
      else None
    with
    | None ->
      Fmt.pf ppf "  perfcheck: no baseline at %s — skipping comparison@.@." baseline_path;
      true
    | Some base ->
      let rel = (fresh -. base) /. base in
      let ok = rel <= threshold in
      Fmt.pf ppf
        "  perfcheck: geomean ratio_basic %.2f vs baseline %.2f (%+.0f%%, \
         threshold +%.0f%%) — %s@.@."
        fresh base (100. *. rel) (100. *. threshold)
        (if ok then "ok" else "REGRESSION");
      ok
  in
  base_ok && epoch_ok && vm_ok

(* ------------------------------------------------------------------ *)
(* Static-analysis precision (BENCH_analysis.json)                      *)
(* ------------------------------------------------------------------ *)

type analysis_measure = {
  am_bm : string;
  am_total : int;              (* access sites in the program *)
  am_coarse_instr : int;       (* instrumented under the legacy name-bucket pass *)
  am_sharp_instr : int;        (* instrumented under points-to + escape *)
  am_coarse_guarded : int;
  am_sharp_guarded : int;
  am_coarse_space : int;       (* Section-5 space units, v_both recording *)
  am_sharp_space : int;
  am_coarse_overhead : float;  (* modeled record overhead, v_both *)
  am_sharp_overhead : float;
  am_static_pairs : int;       (* sharp static race pairs *)
  am_confirmed_pairs : int;    (* confirmed by the HB detector (round-robin) *)
  am_native_sps : float;
  am_basic_coarse_sps : float; (* v_basic recording under the coarse plan *)
  am_basic_sharp_sps : float;  (* v_basic recording under the sharp plan *)
}

let measure_analysis ?(seed = 7) ~iters (bm : Workloads.benchmark) : analysis_measure =
  let p = Workloads.program bm in
  let sched () = Workloads.scheduler ~seed bm in
  let tr_c = Instrument.Transformer.transform ~precision:Analysis.Analyze.Coarse p in
  let tr_s = Instrument.Transformer.transform ~precision:Analysis.Analyze.Sharp p in
  let record ?plan variant =
    Light_core.Light.record ~variant ~sched:(sched ()) ~seed ?plan p
  in
  let rec_c = record ~plan:tr_c.plan Light_core.Light.v_both in
  let rec_s = record Light_core.Light.v_both in
  (* dynamic confirmation of the static race pairs: one detector run under
     the deterministic scheduler, so the column is stdout-safe *)
  let _, det = Analysis.Hb_detector.detect ~sched:(Sched.round_robin ()) p in
  let dyn_pairs = Hashtbl.create 16 in
  List.iter
    (fun (r : Analysis.Hb_detector.race) ->
      Hashtbl.replace dyn_pairs (min r.site1 r.site2, max r.site1 r.site2) ())
    (Analysis.Hb_detector.races det);
  let confirmed =
    List.length
      (List.filter
         (fun (r : Analysis.Analyze.race_pair) ->
           Hashtbl.mem dyn_pairs (min r.t1.sid r.t2.sid, max r.t1.sid r.t2.sid))
         tr_s.analysis.races)
  in
  let cp = Interp.compile p in
  let _, native =
    steps_per_sec ~iters (fun () -> Interp.run_compiled ~sched:(sched ()) cp)
  in
  let native_sps = native.sps_med in
  (* both timed runs take a precomputed plan: the point is the cost of the
     instrumentation the plan leaves behind, not of running the analysis *)
  let record_basic plan () = (record ~plan Light_core.Light.v_basic).outcome in
  let _, basic_coarse = steps_per_sec ~iters (record_basic tr_c.plan) in
  let _, basic_sharp = steps_per_sec ~iters (record_basic tr_s.plan) in
  let basic_coarse_sps = basic_coarse.sps_med and basic_sharp_sps = basic_sharp.sps_med in
  {
    am_bm = bm.name;
    am_total = tr_s.total_access_sites;
    am_coarse_instr = tr_c.instrumented_sites;
    am_sharp_instr = tr_s.instrumented_sites;
    am_coarse_guarded = tr_c.guarded_sites;
    am_sharp_guarded = tr_s.guarded_sites;
    am_coarse_space = rec_c.space_longs;
    am_sharp_space = rec_s.space_longs;
    am_coarse_overhead = rec_c.overhead;
    am_sharp_overhead = rec_s.overhead;
    am_static_pairs = List.length tr_s.analysis.races;
    am_confirmed_pairs = confirmed;
    am_native_sps = native_sps;
    am_basic_coarse_sps = basic_coarse_sps;
    am_basic_sharp_sps = basic_sharp_sps;
  }

let geomean_f (xs : float list) : float =
  exp (List.fold_left (fun a x -> a +. log x) 0. xs /. float_of_int (List.length xs))

let analysis_json ~iters (ms : analysis_measure list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"iters\": %d,\n  \"rows\": [\n" iters);
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"total_sites\": %d, \"coarse_instr\": %d, \
            \"sharp_instr\": %d, \"coarse_guarded\": %d, \"sharp_guarded\": %d, \
            \"coarse_space\": %d, \"sharp_space\": %d, \"coarse_overhead\": %.4f, \
            \"sharp_overhead\": %.4f, \"static_pairs\": %d, \"confirmed_pairs\": %d, \
            \"native_sps\": %.0f, \"basic_coarse_sps\": %.0f, \"basic_sharp_sps\": \
            %.0f, \"ratio_basic_coarse\": %.2f, \"ratio_basic_sharp\": %.2f}%s\n"
           m.am_bm m.am_total m.am_coarse_instr m.am_sharp_instr m.am_coarse_guarded
           m.am_sharp_guarded m.am_coarse_space m.am_sharp_space m.am_coarse_overhead
           m.am_sharp_overhead m.am_static_pairs m.am_confirmed_pairs m.am_native_sps
           m.am_basic_coarse_sps m.am_basic_sharp_sps
           (m.am_native_sps /. m.am_basic_coarse_sps)
           (m.am_native_sps /. m.am_basic_sharp_sps)
           (if i = List.length ms - 1 then "" else ",")))
    ms;
  let decreased =
    List.length (List.filter (fun m -> m.am_sharp_instr < m.am_coarse_instr) ms)
  in
  let regressed =
    List.length (List.filter (fun m -> m.am_sharp_instr > m.am_coarse_instr) ms)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"summary\": {\"decreased\": %d, \"regressed\": %d, \
        \"geomean_space_ratio\": %.3f, \"geomean_ratio_basic_coarse\": %.2f, \
        \"geomean_ratio_basic_sharp\": %.2f}\n}\n"
       decreased regressed
       (geomean_f
          (List.map
             (fun m -> float_of_int m.am_sharp_space /. float_of_int m.am_coarse_space)
             ms))
       (geomean_f (List.map (fun m -> m.am_native_sps /. m.am_basic_coarse_sps) ms))
       (geomean_f (List.map (fun m -> m.am_native_sps /. m.am_basic_sharp_sps) ms)));
  Buffer.contents buf

(* Static-analysis precision, old (name-bucket) vs new (points-to + escape +
   must-alias locks) — instrumented/guarded sites, Section-5 space units,
   modeled record overhead, race pairs with dynamic HB confirmation, and the
   wall-clock basic-recording ratios.  Sequential for timing purity, like
   the interp bench; every wall-clock column hides behind LIGHT_TIMINGS. *)
let analysis_bench ?(seed = 7) ?(json_path = "BENCH_analysis.json") () ppf : unit =
  let iters = bench_iters () in
  let ms = List.map (measure_analysis ~seed ~iters) Workloads.all in
  let pct v = Printf.sprintf "%.0f%%" (100. *. v) in
  Chart.table
    ~title:
      "Static-analysis precision: coarse (name buckets) vs sharp (points-to + \
       escape), v_both recording"
    ~header:
      [ "workload"; "sites"; "instr c>s"; "guard c>s"; "space c>s"; "ovh c>s";
        "races"; "dyn"; "xbasic c"; "xbasic s" ]
    (List.map
       (fun m ->
         [
           m.am_bm;
           string_of_int m.am_total;
           Printf.sprintf "%d>%d" m.am_coarse_instr m.am_sharp_instr;
           Printf.sprintf "%d>%d" m.am_coarse_guarded m.am_sharp_guarded;
           Printf.sprintf "%d>%d" m.am_coarse_space m.am_sharp_space;
           Printf.sprintf "%s>%s" (pct m.am_coarse_overhead) (pct m.am_sharp_overhead);
           string_of_int m.am_static_pairs;
           string_of_int m.am_confirmed_pairs;
           timing_cell (Printf.sprintf "%.1f" (m.am_native_sps /. m.am_basic_coarse_sps));
           timing_cell (Printf.sprintf "%.1f" (m.am_native_sps /. m.am_basic_sharp_sps));
         ])
       ms)
    ppf;
  let decreased =
    List.length (List.filter (fun m -> m.am_sharp_instr < m.am_coarse_instr) ms)
  in
  let regressed =
    List.length (List.filter (fun m -> m.am_sharp_instr > m.am_coarse_instr) ms)
  in
  Fmt.pf ppf
    "  instrumented sites: strictly fewer on %d/%d workloads, %d regressions@."
    decreased (List.length ms) regressed;
  Fmt.pf ppf "  geomean space ratio (sharp/coarse, v_both): %.3f@."
    (geomean_f
       (List.map
          (fun m -> float_of_int m.am_sharp_space /. float_of_int m.am_coarse_space)
          ms));
  if show_timings () then
    Fmt.pf ppf "  geomean record overhead (basic): coarse %.2fx, sharp %.2fx@."
      (geomean_f (List.map (fun m -> m.am_native_sps /. m.am_basic_coarse_sps) ms))
      (geomean_f (List.map (fun m -> m.am_native_sps /. m.am_basic_sharp_sps) ms));
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (analysis_json ~iters ms));
  Fmt.pf ppf "  full measurement (with timings) written to %s@.@." json_path

(* ------------------------------------------------------------------ *)
(* Sitecheck: static instrumented-site gate (BENCH_sitecheck.json)      *)
(* ------------------------------------------------------------------ *)

(* The static twin of [interp_perfcheck]: no timers, no recording — just
   the default (sharp, refined, O2) plan baked to mode bytes per workload,
   counted with {!Plan.count_modes} so the gate measures exactly what the
   recorder's fast path consults.  Counts are compared per workload
   against the committed baseline: an analysis change that starts
   instrumenting more sites (losing an elision argument) or guarding
   fewer (losing O2 coverage) fails CI; improving either direction passes
   and shows up in the uploaded BENCH_sitecheck.json artifact, from which
   the baseline can be refreshed deliberately. *)

type site_row = { sr_bm : string; sr_total : int; sr_instr : int; sr_guarded : int }

let sitecheck_measure () : site_row list =
  List.map
    (fun (bm : Workloads.benchmark) ->
      let p = Workloads.program bm in
      let tr = Instrument.Transformer.transform p in
      let modes = Plan.modes tr.plan ~max_sid:(Lang.Ast.max_sid p) in
      let instr, guarded = Plan.count_modes modes in
      {
        sr_bm = bm.Workloads.name;
        sr_total = tr.Instrument.Transformer.total_access_sites;
        sr_instr = instr;
        sr_guarded = guarded;
      })
    Workloads.all

let sitecheck_json (rows : site_row list) : string =
  let module J = Analysis.Lint.Json in
  let row r =
    J.Obj
      [
        ("name", J.Str r.sr_bm);
        ("total", J.Int r.sr_total);
        ("instrumented", J.Int r.sr_instr);
        ("guarded", J.Int r.sr_guarded);
      ]
  in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
  J.to_string
    (J.Obj
       [
         ("workloads", J.List (List.map row rows));
         ( "totals",
           J.Obj
             [
               ("total", J.Int (sum (fun r -> r.sr_total)));
               ("instrumented", J.Int (sum (fun r -> r.sr_instr)));
               ("guarded", J.Int (sum (fun r -> r.sr_guarded)));
             ] );
       ])
  ^ "\n"

(* baseline rows, [None] when the file is missing or unparsable *)
let sitecheck_baseline (path : string) : (string * (int * int)) list option =
  let module J = Analysis.Lint.Json in
  if not (Sys.file_exists path) then None
  else
    match J.of_string (In_channel.with_open_text path In_channel.input_all) with
    | exception J.Parse_error _ -> None
    | j ->
      Option.bind (Option.bind (J.member "workloads" j) J.to_list) (fun rows ->
          let parse_row r =
            match
              ( Option.bind (J.member "name" r) J.to_str,
                Option.bind (J.member "instrumented" r) J.to_int,
                Option.bind (J.member "guarded" r) J.to_int )
            with
            | Some n, Some i, Some g -> Some (n, (i, g))
            | _ -> None
          in
          let parsed = List.filter_map parse_row rows in
          if List.length parsed = List.length rows then Some parsed else None)

let sitecheck ?(baseline_path = "bench/BENCH_sitecheck.baseline.json")
    ?(json_path = "BENCH_sitecheck.json") () ppf : bool =
  let rows = sitecheck_measure () in
  Chart.table
    ~title:"Sitecheck: instrumented/guarded sites under the default plan"
    ~header:[ "workload"; "sites"; "instrumented"; "guarded (O2)" ]
    (List.map
       (fun r ->
         [
           r.sr_bm; string_of_int r.sr_total; string_of_int r.sr_instr;
           string_of_int r.sr_guarded;
         ])
       rows)
    ppf;
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (sitecheck_json rows));
  Fmt.pf ppf "  site counts written to %s@." json_path;
  match sitecheck_baseline baseline_path with
  | None ->
    Fmt.pf ppf "  sitecheck: no baseline at %s — skipping comparison@.@." baseline_path;
    true
  | Some base ->
    let ok = ref true in
    let complain fmt = Fmt.pf ppf fmt in
    List.iter
      (fun (name, (bi, bg)) ->
        match List.find_opt (fun r -> r.sr_bm = name) rows with
        | None ->
          ok := false;
          complain "  sitecheck: workload %s in baseline but not measured@." name
        | Some r ->
          if r.sr_instr > bi then begin
            ok := false;
            complain
              "  sitecheck: %s instruments %d sites vs %d in baseline — ELISION \
               REGRESSION@."
              name r.sr_instr bi
          end;
          if r.sr_guarded < bg then begin
            ok := false;
            complain
              "  sitecheck: %s guards %d sites vs %d in baseline — O2 REGRESSION@."
              name r.sr_guarded bg
          end)
      base;
    let fresh_total = List.fold_left (fun a r -> a + r.sr_instr) 0 rows in
    let base_total = List.fold_left (fun a (_, (bi, _)) -> a + bi) 0 base in
    Fmt.pf ppf "  sitecheck: %d instrumented sites total vs %d in baseline — %s@.@."
      fresh_total base_total
      (if !ok then "ok" else "REGRESSION");
    !ok

(* ------------------------------------------------------------------ *)
(* Figure 6: real-world bugs                                            *)
(* ------------------------------------------------------------------ *)

let fig6 ?(tries = 60) ?(clap_budget = 60_000) ?pool () ppf : unit =
  let rows = Bugs.Harness.reproduce_all ~tries ~clap_budget ?pool () in
  Chart.table
    ~title:"Figure 6: real-world bug reproduction (Light vs Clap vs Chimera)"
    ~header:[ "bug"; "failure"; "Light"; "Clap"; "Chimera"; "trigger" ]
    (List.map
       (fun (r : Bugs.Harness.row) ->
         let mark (a : Bugs.Harness.attempt) = if a.reproduced then "yes" else "NO" in
         [ r.bug.name; r.bug.kind; mark r.light; mark r.clap; mark r.chimera; r.trigger_descr ])
       rows)
    ppf;
  List.iter
    (fun (r : Bugs.Harness.row) ->
      Fmt.pf ppf "  %-13s clap: %s@.  %-13s chimera: %s@." r.bug.name r.clap.detail ""
        r.chimera.detail)
    rows;
  let n tool = List.length (List.filter tool rows) in
  Fmt.pf ppf
    "@.  Light %d/8 (paper 8/8) | Clap %d/8 (paper 3/8) | Chimera %d/8 (paper 5/8)@.@."
    (n (fun r -> r.light.reproduced))
    (n (fun r -> r.clap.reproduced))
    (n (fun r -> r.chimera.reproduced))

(* ------------------------------------------------------------------ *)
(* Table 1: replay measurement                                          *)
(* ------------------------------------------------------------------ *)

let table1 ?(scale_factor = 1) ?pool () ppf : unit =
  let rows =
    Engine.Batch.map ?pool Bugs.Defs.all ~f:(fun (b : Bugs.Defs.bug) ->
        let scale = max 1 (b.table1_scale * scale_factor) in
        let p = Bugs.Defs.program_of b ~scale ~background:true () in
        match Bugs.Harness.find_trigger ~tries:40 p with
        | None -> None
        | Some tr ->
          let r =
            Light_core.Light.record ~variant:Light_core.Light.v_both
              ~sched:(tr.make_sched ()) p
          in
          let t0 = Unix.gettimeofday () in
          (match Light_core.Light.replay r with
          | Error e -> Some [ b.name; "-"; "-"; "-"; "solver failed: " ^ e ]
          | Ok rr ->
            let replay_s = Unix.gettimeofday () -. t0 -. rr.report.solve_time_s in
            let faithful = Bugs.Harness.crashes_match r.outcome rr.replay_outcome in
            Some
              [
                b.name;
                Printf.sprintf "%.1f" (float_of_int r.space_longs /. 1000.);
                timing_cell (Printf.sprintf "%.3f" rr.report.solve_time_s);
                timing_cell (Printf.sprintf "%.3f" replay_s);
                (if faithful then "reproduced" else "NOT reproduced");
              ]))
    |> List.filter_map Fun.id
  in
  Chart.table
    ~title:"Table 1: replay measurement (Light; per-bug recording at Table-1 scale)"
    ~header:[ "bug"; "Space (K longs)"; "Solve (s)"; "Replay (s)"; "result" ]
    rows ppf;
  Fmt.pf ppf
    "  (paper spaces: Cache4j 297K, Ftpserver 13K, Lucene-481 1088K, Lucene-651 2596K,@.\
    \   Tomcat-37458 15K, Tomcat-50885 590K, Tomcat-53498 28K, Weblech 2K; absolute@.\
    \   seconds differ — the reproduced shape is solve time tracking recorded space.)@.@."

(* ------------------------------------------------------------------ *)
(* Schedule-space exploration bench (BENCH_explore.json)                *)
(* ------------------------------------------------------------------ *)

(* Per-workload exploration throughput: every flip candidate of the
   recorded run is re-solved twice — seeded with the recording's witness
   and fresh — executed, and classified.  LIGHT_EXPLORE_FLIPS caps the
   candidates per workload (CI uses a reduced budget); verdict counts on
   stdout are deterministic, wall-clock columns hide behind LIGHT_TIMINGS,
   and the full measurement lands in [json_path] for the CI artifact. *)
let explore_bench ?(seed = 3) ?(json_path = "BENCH_explore.json") ?pool () ppf
    : unit =
  let limit =
    match Sys.getenv_opt "LIGHT_EXPLORE_FLIPS" with
    | Some s -> (try int_of_string s with _ -> 8)
    | None -> 8
  in
  let rows =
    Engine.Batch.map ?pool Workloads.all ~f:(fun (bm : Workloads.benchmark) ->
        let p = Workloads.program bm in
        match
          Explore.make_context ~seed
            ~make_sched:(fun () -> Workloads.scheduler ~seed bm)
            p
        with
        | Error e -> Error (bm.name, e)
        | Ok ctx -> Ok (Explore.measure ~limit ~label:bm.name ctx))
  in
  let skipped = List.filter_map (function Error x -> Some x | Ok _ -> None) rows in
  let ms = List.filter_map (function Ok m -> Some m | Error _ -> None) rows in
  Chart.table
    ~title:
      "Schedule-space exploration (per-workload flip candidates: verdicts, \
       witness-seeded vs fresh re-solve)"
    ~header:
      [ "workload"; "flips"; "same"; "div"; "crash"; "stuck"; "infeas"; "abort";
        "re-solve (s)"; "fresh (s)"; "sched/s" ]
    (List.map
       (fun (m : Explore.stats) ->
         [
           m.st_label;
           string_of_int m.st_candidates;
           string_of_int m.st_same;
           string_of_int m.st_divergent;
           string_of_int m.st_crashed;
           string_of_int m.st_stuck;
           string_of_int m.st_infeasible;
           string_of_int m.st_aborted;
           timing_cell (Printf.sprintf "%.4f" m.st_resolve_s);
           timing_cell (Printf.sprintf "%.4f" m.st_fresh_s);
           timing_cell (Printf.sprintf "%.1f" m.st_sched_per_s);
         ])
       ms)
    ppf;
  List.iter
    (fun (name, e) -> Fmt.pf ppf "  %-13s skipped: %s@." name e)
    skipped;
  let totf f = List.fold_left (fun a m -> a +. f m) 0.0 ms in
  let tot f = List.fold_left (fun a m -> a + f m) 0 ms in
  let resolve = totf (fun m -> m.Explore.st_resolve_s)
  and fresh = totf (fun m -> m.Explore.st_fresh_s) in
  Fmt.pf ppf
    "  %d flip candidates over %d workloads (capped at %d per workload; \
     LIGHT_EXPLORE_FLIPS overrides): %d feasible neighbors (%d same, %d \
     divergent, %d crashed, %d stuck), %d infeasible, %d aborted@."
    (tot (fun m -> m.st_candidates))
    (List.length ms)
    limit
    (tot (fun m -> m.st_same + m.st_divergent + m.st_crashed + m.st_stuck))
    (tot (fun m -> m.st_same))
    (tot (fun m -> m.st_divergent))
    (tot (fun m -> m.st_crashed))
    (tot (fun m -> m.st_stuck))
    (tot (fun m -> m.st_infeasible))
    (tot (fun m -> m.st_aborted));
  if show_timings () then
    Fmt.pf ppf
      "  witness-seeded re-solve %.4fs vs fresh %.4fs -> %.1fx speedup (%d \
       fresh aborts)@."
      resolve fresh
      (if resolve > 0.0 then fresh /. resolve else 0.0)
      (tot (fun m -> m.st_fresh_aborted));
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (Explore.stats_to_json ms));
  Fmt.pf ppf "  full measurement (with timings) written to %s@.@." json_path

(* ------------------------------------------------------------------ *)
(* Epoch-based recording (BENCH_epochs.json, Experiment E15)            *)
(* ------------------------------------------------------------------ *)

(* Synthetic service loop: 8 threads of mostly-local arithmetic with a
   lock-disciplined shared counter every 16 iterations and an unguarded
   hot write every 4 — running forever, so the recording is cut exactly by
   the step budget (LIGHT_EPOCH_STEPS) and the run length is a free
   parameter of the bounded-memory claim. *)
let epoch_synth_src : string =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  add "class Acc { n; v; }";
  add "global acc;";
  add "global lk;";
  add "";
  add "fn worker(id) {";
  add "  lx = id * 17 + 3;";
  add "  a = acc;";
  add "  l = lk;";
  add "  i = 0;";
  add "  while (0 < 1) {";
  add "    w = 0;";
  add "    while (w < 24) { lx = (lx * 5 + w) %% 65536; w = w + 1; }";
  add "    if ((i %% 16) == 0) { sync (l) { l.v = l.v + 1; } }";
  add "    if ((i %% 4) == 0) { a.n = (a.n + 1) %% 1000000; }";
  add "    i = i + 1;";
  add "  }";
  add "  return lx;";
  add "}";
  add "";
  add "main {";
  add "  acc = new Acc;";
  add "  acc.n = 0;";
  add "  lk = new Acc;";
  add "  sync (lk) { lk.v = 0; }";
  for t = 1 to 8 do add "  spawn t%d = worker(%d);" t t done;
  for t = 1 to 8 do add "  join t%d;" t done;
  add "  print acc.n;";
  add "}";
  Buffer.contents b

let env_int (name : string) (default : int) : int =
  match Sys.getenv_opt name with
  | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* process peak RSS in kB from /proc/self/status; -1 off Linux *)
let vm_hwm_kb () : int =
  try
    In_channel.with_open_text "/proc/self/status" (fun ic ->
        let rec go acc =
          match In_channel.input_line ic with
          | None -> acc
          | Some l ->
            if String.length l > 6 && String.sub l 0 6 = "VmHWM:" then
              try Scanf.sscanf (String.sub l 6 (String.length l - 6)) " %d" (fun v -> go v)
              with _ -> go acc
            else go acc
        in
        go (-1))
  with _ -> -1

type epoch_bench_row = {
  eb_idx : int;
  eb_window : int;  (* steps in this epoch *)
  eb_deps : int;
  eb_ranges : int;
  eb_space : int;   (* Section-5 long units of the sealed window *)
}

(* Bounded-memory recording and O(epoch) replay over a >=10M step run
   (LIGHT_EPOCH_STEPS overrides; CI uses a reduced budget).  Phases, in
   this order because VmHWM is a process-lifetime high-water mark:
   1. epoch-mode streaming recording — every sealed epoch is serialized
      to the v4 log file and dropped, so live memory is bounded by one
      window; peak RSS and the max major-heap size seen at any epoch
      boundary are the memory evidence;
   2. per-epoch incremental solving over the streamed file, each system
      seeded from the previous epoch's witness (hint shift);
   3. single-epoch replays (first, middle, last) from their checkpoints —
      replayed steps vs window size is the O(epoch) evidence;
   4. monolithic recording of the same run for the comparison row (its
      retained log grows with run length; the epoch-mode peak does not).
   Counts on stdout are deterministic; every wall-clock or memory figure
   hides behind LIGHT_TIMINGS, and the full measurement lands in
   [json_path] for the CI artifact. *)
let epochs_bench ?(json_path = "BENCH_epochs.json") () ppf : unit =
  let total_steps = env_int "LIGHT_EPOCH_STEPS" 12_000_000 in
  let epoch_len = env_int "LIGHT_EPOCH_LEN" 500_000 in
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program epoch_synth_src) in
  let variant = Light_core.Light.v_both in
  let mk_sched () = Sched.sticky ~seed:1 ~stickiness:64 in
  let pp = Light_core.Light.prepare ~variant p in
  (* phase 1: stream-record *)
  let log_path = Filename.temp_file "light_epochs" ".v4" in
  let heap_max = ref 0 and rows = ref [] in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let summary =
    Out_channel.with_open_text log_path (fun oc ->
        let w =
          Light_core.Epoch.writer ~o1:true ~o2:true ~epoch_len
            (Out_channel.output_string oc)
        in
        Light_core.Epoch.record_epochs_stream ~sched:(mk_sched ())
          ~max_steps:total_steps ~epoch_len
          ~emit:(fun ck ->
            Light_core.Epoch.write_chunk w ck;
            heap_max := max !heap_max (Gc.quick_stat ()).Gc.heap_words;
            rows :=
              {
                eb_idx = ck.Light_core.Epoch.ck_idx;
                eb_window =
                  ck.Light_core.Epoch.ck_steps - ck.Light_core.Epoch.ck_start_steps;
                eb_deps = List.length ck.Light_core.Epoch.ck_log.Light_core.Log.deps;
                eb_ranges =
                  List.length ck.Light_core.Epoch.ck_log.Light_core.Log.ranges;
                eb_space = Light_core.Log.space_longs ck.Light_core.Epoch.ck_log;
              }
              :: !rows)
          pp)
  in
  let record_s = Unix.gettimeofday () -. t0 in
  let rss_epoch_kb = vm_hwm_kb () in
  let rows = List.rev !rows in
  let log_bytes = (Unix.stat log_path).Unix.st_size in
  (* phase 2: incremental per-epoch solving over the streamed file *)
  let f =
    Light_core.Epoch.of_string_v4
      (In_channel.with_open_text log_path In_channel.input_all)
  in
  let chunks = f.Light_core.Epoch.f_chunks in
  let shift = ref 0 in
  let solves =
    List.map
      (fun (ck : Light_core.Epoch.chunk) ->
        let rep =
          Light_core.Replayer.solve ~hint_shift:!shift ck.Light_core.Epoch.ck_log
        in
        let applied = !shift in
        shift := max !shift rep.Light_core.Replayer.max_model + 16;
        (ck.Light_core.Epoch.ck_idx, applied, rep))
      chunks
  in
  (* phase 3: O(epoch) single-epoch replays from their checkpoints *)
  let n = List.length chunks in
  let picks = List.sort_uniq compare [ 0; n / 2; n - 1 ] in
  let replays =
    List.map
      (fun k ->
        let ck = List.nth chunks k in
        let window = ck.Light_core.Epoch.ck_steps - ck.Light_core.Epoch.ck_start_steps in
        let t0 = Unix.gettimeofday () in
        match Light_core.Epoch.replay_chunk pp ck with
        | Error e -> (k, window, -1, 0.0, "error: " ^ e)
        | Ok rr ->
          ( k,
            window,
            rr.Light_core.Epoch.rr_steps,
            Unix.gettimeofday () -. t0,
            "ok" ))
      picks
  in
  (* phase 4: monolithic recording of the same run *)
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let mono =
    Light_core.Light.record_prepared ~sched:(mk_sched ()) ~max_steps:total_steps pp
  in
  let mono_s = Unix.gettimeofday () -. t0 in
  let heap_mono = (Gc.quick_stat ()).Gc.heap_words in
  let rss_total_kb = vm_hwm_kb () in
  (* report *)
  Chart.table
    ~title:
      (Printf.sprintf
         "Experiment E15: epoch-based recording (%d steps, epoch length %d)"
         summary.Light_core.Epoch.ss_steps epoch_len)
    ~header:[ "epoch"; "steps"; "deps"; "ranges"; "space (longs)"; "solve"; "solve (s)" ]
    (List.map2
       (fun r (_, _, (rep : Light_core.Replayer.solve_report)) ->
         [
           string_of_int r.eb_idx;
           string_of_int r.eb_window;
           string_of_int r.eb_deps;
           string_of_int r.eb_ranges;
           string_of_int r.eb_space;
           (match rep.Light_core.Replayer.result_kind with
           | Light_core.Replayer.Solved -> "sat"
           | Unsatisfiable -> "unsat"
           | SolverAborted -> "aborted");
           timing_cell (Printf.sprintf "%.4f" rep.Light_core.Replayer.solve_time_s);
         ])
       rows solves)
    ppf;
  let max_space = List.fold_left (fun a r -> max a r.eb_space) 0 rows in
  let sum_space = List.fold_left (fun a r -> a + r.eb_space) 0 rows in
  Fmt.pf ppf
    "  %d epochs over %d steps; retained-log bound: max window %d longs vs \
     monolithic %d longs (%.1fx)@."
    summary.Light_core.Epoch.ss_epochs summary.Light_core.Epoch.ss_steps max_space
    mono.Light_core.Light.space_longs
    (float_of_int mono.Light_core.Light.space_longs /. float_of_int (max 1 max_space));
  Fmt.pf ppf "  sum of epoch windows: %d longs (seal adds no records: %s)@."
    sum_space
    (if sum_space = mono.Light_core.Light.space_longs then "= monolithic"
     else Printf.sprintf "monolithic %d" mono.Light_core.Light.space_longs);
  List.iter
    (fun (k, window, steps, dt, st) ->
      Fmt.pf ppf "  replay epoch %d: %d steps for a %d-step window (%s, %s)@." k
        steps window st
        (timing_cell (Printf.sprintf "%.3fs incl. solve" dt)))
    replays;
  if show_timings () then begin
    let seal = summary.Light_core.Epoch.ss_seal_times in
    let seal_max = List.fold_left Float.max 0.0 seal in
    let seal_mean =
      List.fold_left ( +. ) 0.0 seal /. float_of_int (max 1 (List.length seal))
    in
    Fmt.pf ppf
      "  record: epoch-mode %.2fs vs monolithic %.2fs; seal latency mean \
       %.2fms, max %.2fms@."
      record_s mono_s (1000. *. seal_mean) (1000. *. seal_max);
    Fmt.pf ppf
      "  memory: peak RSS after epoch phase %d kB (after monolithic %d kB); \
       max major heap at a boundary %d words, after monolithic %d words; v4 \
       file %d bytes@."
      rss_epoch_kb rss_total_kb !heap_max heap_mono log_bytes
  end;
  (* JSON artifact *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"steps\": %d,\n  \"epoch_len\": %d,\n  \"epochs\": %d,\n\
       \  \"record_s\": %.3f,\n  \"mono_record_s\": %.3f,\n\
       \  \"peak_rss_epoch_kb\": %d,\n  \"peak_rss_after_mono_kb\": %d,\n\
       \  \"heap_words_epoch_max\": %d,\n  \"heap_words_after_mono\": %d,\n\
       \  \"log_file_bytes\": %d,\n  \"mono_space_longs\": %d,\n\
       \  \"max_epoch_space_longs\": %d,\n  \"sum_epoch_space_longs\": %d,\n\
       \  \"seal_ms\": [%s],\n  \"epochs_detail\": [\n"
       summary.Light_core.Epoch.ss_steps epoch_len summary.Light_core.Epoch.ss_epochs
       record_s mono_s rss_epoch_kb rss_total_kb !heap_max heap_mono log_bytes
       mono.Light_core.Light.space_longs max_space sum_space
       (String.concat ", "
          (List.map
             (fun s -> Printf.sprintf "%.3f" (1000. *. s))
             summary.Light_core.Epoch.ss_seal_times)));
  List.iteri
    (fun i (r, (_, sh, (rep : Light_core.Replayer.solve_report))) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"epoch\": %d, \"steps\": %d, \"deps\": %d, \"ranges\": %d, \
            \"space_longs\": %d, \"hint_shift\": %d, \"result\": %S, \
            \"solve_s\": %.4f}%s\n"
           r.eb_idx r.eb_window r.eb_deps r.eb_ranges r.eb_space sh
           (match rep.Light_core.Replayer.result_kind with
           | Light_core.Replayer.Solved -> "sat"
           | Unsatisfiable -> "unsat"
           | SolverAborted -> "aborted")
           rep.Light_core.Replayer.solve_time_s
           (if i = List.length rows - 1 then "" else ",")))
    (List.combine rows solves);
  Buffer.add_string buf "  ],\n  \"replay\": [\n";
  List.iteri
    (fun i (k, window, steps, dt, st) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"epoch\": %d, \"window\": %d, \"replay_steps\": %d, \
            \"replay_s\": %.3f, \"status\": %S}%s\n"
           k window steps dt st
           (if i = List.length replays - 1 then "" else ",")))
    replays;
  Buffer.add_string buf "  ]\n}\n";
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Sys.remove log_path;
  Fmt.pf ppf "  full measurement (with timings) written to %s@.@." json_path

(* ------------------------------------------------------------------ *)
(* Running example (Sections 2.3/2.4)                                   *)
(* ------------------------------------------------------------------ *)

let running_example () ppf : unit =
  let bm = Option.get (Workloads.by_name "cache4j") in
  let p = Workloads.program ~scale:2 bm in
  let sched () = Workloads.scheduler bm in
  let run variant =
    Light_core.Light.record ~variant ~sched:(sched ()) p
  in
  let basic = run Light_core.Light.v_basic in
  let both = run Light_core.Light.v_both in
  (* Leap comparison for the 1/3 claim *)
  let plan = basic.plan in
  let leap_rec = Baselines.Leap.create () in
  let leap_out = Interp.run ~hooks:(Baselines.Leap.hooks leap_rec) ~plan ~sched:(sched ()) p in
  let leap_ovh = Metrics.Cost.overhead leap_rec.meter ~steps:leap_out.steps in
  Chart.table ~title:"Running example (Cache4j workload, Sections 2.3-2.4)"
    ~header:[ "configuration"; "overhead"; "paper" ]
    [
      [ "Leap"; Printf.sprintf "%.2fx" leap_ovh; "~3x" ];
      [ "Light core (V_basic)"; Printf.sprintf "%.2fx" basic.overhead; "1.2x" ];
      [ "Light + O1 + O2"; Printf.sprintf "%.0f%%" (100. *. both.overhead); "~30%" ];
    ]
    ppf

(* ------------------------------------------------------------------ *)
(* Record service under load (BENCH_service.json)                       *)
(* ------------------------------------------------------------------ *)

(* The ROADMAP's deployment shape: one process recording thousands of user
   sessions.  The corpus is every workload x every recording variant
   (prepared once — instrument-once, record-every-run) x both execution
   engines; sessions cycle through it with per-session scheduler seeds.

   A session is a bounded recording window (LIGHT_SERVICE_STEPS
   interpreter steps, like the epoch bench's windows) — the deployment
   regime is thousands of short user sessions, so this bench measures
   what the service layer amortizes (front-end, recorder allocation,
   dispatch) rather than steady-state interpreter throughput, which the
   interp bench already covers.

   Passes, in this order (later passes must not intern new ids, so the
   serial reference pass goes first and doubles as the deterministic
   intern warm-up):
   1. serial reference — the service on a 1-worker pool: every runtime
      map-key id is assigned in program order, and the per-session log
      digests are the identity reference for everything after;
   2. service under load — the real measurement: default pool, bounded
      queue, recycled recorders, sharded intern;
   3. service without recycling — same pool, fresh recorder per session
      (attributes the recycling share of the speedup);
   4. naive per-session [Light.record] loop at the same LIGHT_JOBS — what
      a deployment without the service's prepared-session cache does:
      each session arrives as source, so every session re-parses,
      re-validates, re-transforms, re-analyzes, re-compiles, and
      allocates a fresh recorder.
   Byte-identity of per-session v3 logs is checked across pass 1 vs 2
   (worker count + recycling) and pass 1 vs 4 (the whole service stack vs
   the naive loop).  Identity across intern shard counts is the same
   stdout diffed under LIGHT_INTERN_SHARDS=1 vs 16 (CI does this for the
   engine's table1; the shard axis rides on the digests printed here). *)

type service_combo = {
  svc_label : string;
  svc_bm : Workloads.benchmark;
  svc_pp : Light_core.Light.prepared;
  svc_engine : Vm.engine;
  svc_variant : Light_core.Light.variant;
}

let service_corpus () : service_combo array =
  let variants =
    [
      ("basic", Light_core.Light.v_basic);
      ("O1", Light_core.Light.v_o1);
      ("O1+O2", Light_core.Light.v_both);
    ]
  in
  let engines = [ ("tree", Vm.Tree); ("vm", Vm.Bytecode) ] in
  Array.of_list
    (List.concat_map
       (fun (bm : Workloads.benchmark) ->
         let program = Workloads.program bm in
         List.concat_map
           (fun (vn, variant) ->
             let pp = Light_core.Light.prepare ~variant program in
             List.map
               (fun (en, engine) ->
                 {
                   svc_label =
                     Printf.sprintf "%s/%s/%s" bm.Workloads.name vn en;
                   svc_bm = bm;
                   svc_pp = pp;
                   svc_engine = engine;
                   svc_variant = variant;
                 })
               engines)
           variants)
       Workloads.all)

let service_sessions (corpus : service_combo array) (n : int)
    ~(max_steps : int) : Service.session array =
  Array.init n (fun i ->
      let c = corpus.(i mod Array.length corpus) in
      Service.session ~label:c.svc_label ~engine:c.svc_engine ~seed:i
        ~max_steps
        ~sched:(fun () -> Workloads.scheduler ~seed:(1000 + i) c.svc_bm)
        c.svc_pp)

type service_measure = {
  sv_sessions : int;
  sv_corpus : int;
  sv_naive_n : int;
  sv_steps_budget : int;  (* per-session recording window *)
  sv_queue : int;
  sv_workers : int;
  sv_serial_s : float;
  sv_service_s : float;
  sv_norecycle_s : float;
  sv_naive_s : float;
  sv_prepare_s : float;
  sv_identity_workers : bool;
  sv_identity_naive : bool;
  sv_done : int;
  sv_rejected : int;
  sv_failed : int;
  sv_total_space : int;
  sv_total_steps : int;
  sv_latencies : float array;  (* pass-2 submit->finish, seconds *)
  sv_stats : Service.stats;    (* pass-2 *)
  sv_intern : Lang.Intern.stats;  (* pass-2 window *)
  sv_rss_kb : int;
}

let service_measure () : service_measure =
  let n = env_int "LIGHT_SERVICE_SESSIONS" 1008 in
  let naive_n = min n (env_int "LIGHT_SERVICE_NAIVE" 168) in
  let steps_budget = env_int "LIGHT_SERVICE_STEPS" 500 in
  let queue = env_int "LIGHT_SERVICE_QUEUE" 64 in
  let t0 = Unix.gettimeofday () in
  let corpus = service_corpus () in
  let prepare_s = Unix.gettimeofday () -. t0 in
  let sessions = service_sessions corpus n ~max_steps:steps_budget in
  let pool = Engine.Pool.get_default () in
  (* pass 1: serial reference (and deterministic intern warm-up) *)
  let t0 = Unix.gettimeofday () in
  let ref_results, _ =
    Engine.Pool.with_pool ~size:1 (fun p1 ->
        Service.run ~pool:p1 ~queue_capacity:queue sessions)
  in
  let serial_s = Unix.gettimeofday () -. t0 in
  (* pass 2: the service under load *)
  Lang.Intern.reset_stats ();
  let t0 = Unix.gettimeofday () in
  let results, stats = Service.run ~pool ~queue_capacity:queue sessions in
  let service_s = Unix.gettimeofday () -. t0 in
  let intern = Lang.Intern.stats () in
  (* pass 3: fresh recorder per session (recycling attribution) *)
  let t0 = Unix.gettimeofday () in
  let norec_results, _ =
    Service.run ~pool ~queue_capacity:queue ~recycle:false sessions
  in
  let norecycle_s = Unix.gettimeofday () -. t0 in
  (* pass 4: naive per-session Light.record at the same LIGHT_JOBS *)
  let t0 = Unix.gettimeofday () in
  let naive_digests =
    Engine.Pool.map_array pool
      ~f:(fun _ i ->
        let c = corpus.(i mod Array.length corpus) in
        (* the session arrives as source: the naive loop pays the whole
           front-end per session (the service cached it in [prepare]) *)
        let p = Workloads.program c.svc_bm in
        let r =
          Light_core.Light.record ~variant:c.svc_variant ~engine:c.svc_engine
            ~sched:(Workloads.scheduler ~seed:(1000 + i) c.svc_bm)
            ~max_steps:steps_budget ~seed:i p
        in
        Digest.string (Light_core.Log.to_string r.Light_core.Light.log))
      (Array.init naive_n (fun i -> i))
  in
  let naive_s = Unix.gettimeofday () -. t0 in
  let id_workers = ref true and id_naive = ref true in
  Array.iteri
    (fun i (r : Service.result_) ->
      if r.Service.sr_digest <> ref_results.(i).Service.sr_digest then
        id_workers := false;
      ignore (norec_results.(i)))
    results;
  Array.iteri
    (fun i (r : Service.result_) ->
      if r.Service.sr_digest <> norec_results.(i).Service.sr_digest then
        id_workers := false)
    results;
  Array.iteri
    (fun i d ->
      if d <> ref_results.(i).Service.sr_digest then id_naive := false)
    naive_digests;
  let total_space =
    Array.fold_left (fun a r -> a + r.Service.sr_space_longs) 0 results
  in
  let total_steps =
    Array.fold_left (fun a r -> a + r.Service.sr_steps) 0 results
  in
  {
    sv_sessions = n;
    sv_corpus = Array.length corpus;
    sv_naive_n = naive_n;
    sv_steps_budget = steps_budget;
    sv_queue = queue;
    sv_workers = stats.Service.st_workers;
    sv_serial_s = serial_s;
    sv_service_s = service_s;
    sv_norecycle_s = norecycle_s;
    sv_naive_s = naive_s;
    sv_prepare_s = prepare_s;
    sv_identity_workers = !id_workers;
    sv_identity_naive = !id_naive;
    sv_done = stats.Service.st_done;
    sv_rejected = stats.Service.st_rejected;
    sv_failed = stats.Service.st_failed;
    sv_total_space = total_space;
    sv_total_steps = total_steps;
    sv_latencies = Service.latencies results;
    sv_stats = stats;
    sv_intern = intern;
    sv_rss_kb = vm_hwm_kb ();
  }

let service_rate (sessions : int) (secs : float) : float =
  if secs <= 0.0 then 0.0 else float_of_int sessions /. secs

let service_speedup (m : service_measure) : float =
  let sps = service_rate m.sv_sessions m.sv_service_s in
  let nps = service_rate m.sv_naive_n m.sv_naive_s in
  if nps <= 0.0 then 0.0 else sps /. nps

let service_json (m : service_measure) : string =
  let module J = Analysis.Lint.Json in
  let sps = service_rate m.sv_sessions m.sv_service_s in
  let q = m.sv_stats.Service.st_queue in
  J.to_string
    (J.Obj
       [
         ("schema", J.Str "light-service/v1");
         ("sessions", J.Int m.sv_sessions);
         ("corpus", J.Int m.sv_corpus);
         ("naive_sessions", J.Int m.sv_naive_n);
         ("steps_per_session", J.Int m.sv_steps_budget);
         ("queue_capacity", J.Int m.sv_queue);
         ("workers", J.Int m.sv_workers);
         ("intern_shards", J.Int Lang.Intern.shard_count);
         ("done", J.Int m.sv_done);
         ("rejected", J.Int m.sv_rejected);
         ("failed", J.Int m.sv_failed);
         ("identity_serial_vs_service", J.Bool m.sv_identity_workers);
         ("identity_naive_vs_service", J.Bool m.sv_identity_naive);
         ("prepare_s", J.Float m.sv_prepare_s);
         ("serial_s", J.Float m.sv_serial_s);
         ("service_s", J.Float m.sv_service_s);
         ("norecycle_s", J.Float m.sv_norecycle_s);
         ("naive_s", J.Float m.sv_naive_s);
         ("sessions_per_sec", J.Float sps);
         ("serial_sessions_per_sec", J.Float (service_rate m.sv_sessions m.sv_serial_s));
         ("norecycle_sessions_per_sec", J.Float (service_rate m.sv_sessions m.sv_norecycle_s));
         ("naive_sessions_per_sec", J.Float (service_rate m.sv_naive_n m.sv_naive_s));
         ("speedup_vs_naive", J.Float (service_speedup m));
         ("p50_latency_ms", J.Float (1000. *. Service.percentile 50. m.sv_latencies));
         ("p99_latency_ms", J.Float (1000. *. Service.percentile 99. m.sv_latencies));
         ("peak_rss_kb", J.Int m.sv_rss_kb);
         ("total_space_longs", J.Int m.sv_total_space);
         ("total_steps", J.Int m.sv_total_steps);
         ("recorders_created", J.Int m.sv_stats.Service.st_recorders_created);
         ("inline_runs", J.Int m.sv_stats.Service.st_inline_runs);
         ( "queue",
           J.Obj
             [
               ("peak", J.Int q.Engine.Bqueue.bq_peak);
               ("pushes", J.Int q.Engine.Bqueue.bq_pushes);
               ("blocked_pushes", J.Int q.Engine.Bqueue.bq_blocked_pushes);
               ("blocked_pops", J.Int q.Engine.Bqueue.bq_blocked_pops);
             ] );
         ( "intern",
           J.Obj
             [
               ("shards", J.Int m.sv_intern.Lang.Intern.st_shards);
               ("lookups", J.Int m.sv_intern.Lang.Intern.st_lookups);
               ("inserts", J.Int m.sv_intern.Lang.Intern.st_inserts);
               ("contended", J.Int m.sv_intern.Lang.Intern.st_contended);
             ] );
       ])
  ^ "\n"

let service_report (m : service_measure) ppf : unit =
  Fmt.pf ppf
    "Experiment E16: record service under load (%d sessions of <=%d steps \
     over a %d-combo corpus: 28 workloads x 3 variants x 2 engines)@."
    m.sv_sessions m.sv_steps_budget m.sv_corpus;
  Fmt.pf ppf "  sessions: %d done, %d rejected, %d failed@." m.sv_done
    m.sv_rejected m.sv_failed;
  Fmt.pf ppf
    "  per-session v3 log identity: serial(1 worker) vs service/no-recycle: \
     %s; naive Light.record vs service (%d sessions): %s@."
    (if m.sv_identity_workers then "ok" else "MISMATCH")
    m.sv_naive_n
    (if m.sv_identity_naive then "ok" else "MISMATCH");
  Fmt.pf ppf "  total recorded space: %d longs over %d interpreter steps@."
    m.sv_total_space m.sv_total_steps;
  if show_timings () then begin
    Fmt.pf ppf
      "  throughput: service %.0f sessions/sec (serial %.0f, no-recycle \
       %.0f) vs naive %.0f — speedup %.1fx (workers=%d, queue=%d)@."
      (service_rate m.sv_sessions m.sv_service_s)
      (service_rate m.sv_sessions m.sv_serial_s)
      (service_rate m.sv_sessions m.sv_norecycle_s)
      (service_rate m.sv_naive_n m.sv_naive_s)
      (service_speedup m) m.sv_workers m.sv_queue;
    Fmt.pf ppf "  latency: p50 %.2fms, p99 %.2fms (submit -> finish)@."
      (1000. *. Service.percentile 50. m.sv_latencies)
      (1000. *. Service.percentile 99. m.sv_latencies);
    Fmt.pf ppf
      "  recorders created: %d for %d executed sessions; queue peak %d, \
       submitter inline runs %d; peak RSS %d kB@."
      m.sv_stats.Service.st_recorders_created
      (m.sv_done + m.sv_failed)
      m.sv_stats.Service.st_queue.Engine.Bqueue.bq_peak
      m.sv_stats.Service.st_inline_runs m.sv_rss_kb;
    Fmt.pf ppf
      "  intern (service pass): %d lookups, %d inserts, %d contended \
       acquisitions across %d shards@."
      m.sv_intern.Lang.Intern.st_lookups m.sv_intern.Lang.Intern.st_inserts
      m.sv_intern.Lang.Intern.st_contended m.sv_intern.Lang.Intern.st_shards
  end

let service_bench ?(json_path = "BENCH_service.json") () ppf : unit =
  let m = service_measure () in
  service_report m ppf;
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (service_json m));
  Fmt.pf ppf "  full measurement (with timings) written to %s@.@." json_path

(* json float field, tolerating Int-typed numbers *)
let service_scan_float (j : Analysis.Lint.Json.t) (key : string) : float option =
  let module J = Analysis.Lint.Json in
  match J.member key j with
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

(* CI gate: the service stack must stay >= [floor]x the naive loop (the
   tentpole's acceptance claim — both rates come from the same process, so
   the ratio is runner-noise tolerant), must not regress more than
   [threshold] relative against the committed baseline's speedup, and the
   byte-identity checks are hard failures at any budget. *)
let service_perfcheck ?(baseline_path = "bench/BENCH_service.baseline.json")
    ?(json_path = "BENCH_service.json") ?(threshold = 0.5) ?(floor = 2.0) ()
    ppf : bool =
  let m = service_measure () in
  service_report m ppf;
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (service_json m));
  Fmt.pf ppf "  full measurement (with timings) written to %s@." json_path;
  let id_ok = m.sv_identity_workers && m.sv_identity_naive in
  if not id_ok then
    Fmt.pf ppf
      "  servicecheck: PER-SESSION LOG MISMATCH (see identity lines above)@.";
  let ok_failed = m.sv_failed = 0 && m.sv_rejected = 0 in
  if not ok_failed then
    Fmt.pf ppf "  servicecheck: %d failed / %d rejected sessions — FAIL@."
      m.sv_failed m.sv_rejected;
  let speedup = service_speedup m in
  let floor_ok = speedup >= floor in
  Fmt.pf ppf
    "  servicecheck: speedup %.1fx vs naive per-session record loop \
     (floor %.1fx) — %s@."
    speedup floor
    (if floor_ok then "ok" else "BELOW FLOOR");
  let base_ok =
    let module J = Analysis.Lint.Json in
    match
      if Sys.file_exists baseline_path then
        match
          J.of_string
            (In_channel.with_open_text baseline_path In_channel.input_all)
        with
        | exception J.Parse_error _ -> None
        | j -> service_scan_float j "speedup_vs_naive"
      else None
    with
    | None ->
      Fmt.pf ppf "  servicecheck: no baseline at %s — skipping comparison@.@."
        baseline_path;
      true
    | Some base ->
      let rel = (base -. speedup) /. base in
      let ok = rel <= threshold in
      Fmt.pf ppf
        "  servicecheck: speedup %.1fx vs baseline %.1fx (%+.0f%%, threshold \
         -%.0f%%) — %s@.@."
        speedup base
        (100. *. ((speedup -. base) /. base))
        (100. *. threshold)
        (if ok then "ok" else "REGRESSION");
      ok
  in
  id_ok && ok_failed && floor_ok && base_ok
