(** The transformer: weaves recording instrumentation into a program.

    Mirrors the paper's prototype component of the same name, which weaves
    hooks into class files via Soot.  Here the pass has two products:

    - an {b instrumentation plan} ({!Runtime.Plan.t}): per-site decisions —
      instrument (the site may touch shared data) and guarded (O2 applies) —
      consumed by the interpreter, which invokes the installed tool's hooks
      with exactly the atomicity Algorithm 1 requires;
    - a {b woven source view} ({!weave}): the same decisions materialized as
      explicit [__record_*] pseudo-calls around the affected statements, for
      inspection and debugging (what the bytecode would look like).  *)

open Lang

type t = {
  analysis : Analysis.Analyze.t;
  plan : Runtime.Plan.t;
  instrumented_sites : int;
  guarded_sites : int;
  total_access_sites : int;
}

let variant_plan ?(enable_o2 = true) (a : Analysis.Analyze.t) : Runtime.Plan.t =
  let shared = Analysis.Analyze.shared_sids a in
  let guarded = if enable_o2 then Analysis.Analyze.guarded_sids a else Hashtbl.create 1 in
  Runtime.Plan.of_tables ~shared ~guarded

let transform ?(enable_o2 = true) ?precision ?refine (p : Ast.program) : t =
  let analysis = Analysis.Analyze.analyze ?precision ?refine p in
  let shared = Analysis.Analyze.shared_sids analysis in
  let guarded =
    if enable_o2 then Analysis.Analyze.guarded_sids analysis else Hashtbl.create 1
  in
  let count h = Hashtbl.fold (fun _ b n -> if b then n + 1 else n) h 0 in
  {
    analysis;
    plan = Runtime.Plan.of_tables ~shared ~guarded;
    instrumented_sites = count shared;
    guarded_sites = count guarded;
    total_access_sites = Hashtbl.length shared;
  }

(* ------------------------------------------------------------------ *)
(* Woven source view                                                   *)
(* ------------------------------------------------------------------ *)

(* A dummy statement wrapper: the hooks are rendered as opaque calls so the
   woven program still parses and pretty-prints. *)
let hook (s : Ast.stmt) (name : string) : Ast.stmt =
  { sid = 0; line = s.line; node = Opaque ("$ignore", name, []) }

let is_read_site (s : Ast.stmt) =
  match s.node with
  | Load _ | LoadIdx _ | MapGet _ | MapHas _ | GlobalLoad _ -> true
  | _ -> false

let is_write_site (s : Ast.stmt) =
  match s.node with
  | Store _ | StoreIdx _ | MapPut _ | GlobalStore _ -> true
  | _ -> false

(** Materialize the plan as explicit hook pseudo-statements.  Reads get the
    optimistic validate-retry pattern of Section 2.3 (rendered as a single
    [__record_read_validated] hook); writes get the atomic last-write update
    placed in the same atomic section as the access. *)
let weave (tr : t) (p : Ast.program) : Ast.program =
  let plan = tr.plan in
  let rec weave_block (b : Ast.block) : Ast.block =
    List.concat_map
      (fun (s : Ast.stmt) ->
        let s =
          match s.node with
          | If (c, b1, b2) -> { s with node = If (c, weave_block b1, weave_block b2) }
          | While (c, b) -> { s with node = While (c, weave_block b) }
          | Sync (m, b) -> { s with node = Sync (m, weave_block b) }
          | _ -> s
        in
        if plan.shared_site s.sid && (is_read_site s || is_write_site s) then
          if plan.guarded_site s.sid then
            (* O2: counter tick only; the guarding lock's ghost deps subsume *)
            [ hook s "__tick_counter"; s ]
          else if is_read_site s then
            [ hook s "__begin_atomic_read"; s; hook s "__record_read_validated" ]
          else [ hook s "__begin_atomic_write"; s; hook s "__record_last_write" ]
        else [ s ])
      b
  in
  {
    p with
    main = weave_block p.main;
    fns = List.map (fun (f : Ast.fndef) -> { f with body = weave_block f.body }) p.fns;
  }
