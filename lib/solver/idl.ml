(** DPLL(T) solver for Integer Difference Logic.

    This is the offline scheduling engine of the paper (Section 4.2): the
    replay constraint system is a conjunction of difference atoms
    [O(a) < O(b)] plus binary disjunctions of such atoms (noninterference).
    Z3 discharges it via its IDL theory; we implement the same decision
    procedure — boolean search over the disjunctions with an incremental
    negative-cycle theory solver ({!Diff_graph}) checking each candidate.

    The search is conflict-driven: clauses are decided in order, and when a
    clause has no theory-consistent literal the negative-cycle tags reported
    by {!Diff_graph} name the decisions the conflict actually depends on, so
    the search backjumps directly to the deepest of them instead of undoing
    every intervening decision (conflict-directed backjumping; each decision
    carries the culprit set its subtree's failures accumulated, which keeps
    the jump complete).  Within a clause, literals follow the caller's
    order until the clause itself conflicts; a re-decision of a conflicted
    clause orders its literals by ascending activity (a score bumped at
    every theory conflict), demoting literals that keep failing.  Clauses
    that never conflict — and therefore the whole search on a well-ordered
    input — preserve the caller's literal order, so the
    recorded-observation witness ordering of the constraint generator
    still solves with zero backtracking.  Every
    decision remembers its resume index into that ordering: returning to a
    clause after a backjump continues with the next untried literal rather
    than re-asserting ones that already failed there. *)

type atom = { u : int; v : int; k : int }  (** x_u - x_v <= k *)

(** [lt a b] encodes the strict order [x_a < x_b] over integers. *)
let lt a b : atom = { u = a; v = b; k = -1 }

(** [le a b] encodes [x_a <= x_b]. *)
let le a b : atom = { u = a; v = b; k = 0 }

type problem = {
  nvars : int;
  hard : atom list;            (** asserted unconditionally *)
  clauses : atom array array;  (** each must have >= 1 satisfied atom *)
}

type stats = {
  decisions : int;
  backtracks : int;          (** decision levels undone *)
  theory_conflicts : int;
  theory_adds : int;         (** constraints pushed into the theory solver *)
  max_depth : int;           (** deepest decision stack *)
  final_edges : int;
}

type result =
  | Sat of int array * stats   (** a satisfying assignment of the x variables *)
  | Unsat of stats
  | Aborted of stats           (** work or wall-clock budget exhausted *)

type budget = {
  max_backtracks : int;      (** decision levels undone before giving up *)
  max_conflicts : int;       (** theory conflicts before giving up *)
  max_time_s : float;        (** CPU seconds ([Sys.time]) before giving up *)
}

let default_budget =
  { max_backtracks = 2_000_000; max_conflicts = max_int; max_time_s = infinity }

exception Give_up
exception Unsat_now

module ISet = Set.Make (Int)

(* a decision: clause [ci] satisfied by literal [perm.(lit)]; [culprits] are
   the clause indices that failed literals at this level depended on *)
type entry = {
  ci : int;
  perm : int array;
  mutable lit : int;
  mutable culprits : ISet.t;
}

let solve ?max_backtracks ?(budget = default_budget) ?hint (p : problem) : result =
  let budget =
    match max_backtracks with
    | Some b -> { budget with max_backtracks = b }
    | None -> budget
  in
  let g = Diff_graph.create (max 1 p.nvars) in
  (* seeding the potentials with a model of (a subset of) the hard atoms —
     e.g. a topological order of the constraint DAG — makes their assertion
     relaxation-free instead of quadratic *)
  (match hint with Some h -> Diff_graph.seed g h | None -> ());
  let decisions = ref 0 and backtracks = ref 0 and conflicts = ref 0 in
  let adds = ref 0 and max_depth = ref 0 in
  let t_start = Sys.time () in
  let stats () =
    {
      decisions = !decisions;
      backtracks = !backtracks;
      theory_conflicts = !conflicts;
      theory_adds = !adds;
      max_depth = !max_depth;
      final_edges = Diff_graph.num_edges g;
    }
  in
  let check_budget () =
    if
      !backtracks > budget.max_backtracks
      || !conflicts > budget.max_conflicts
      || (budget.max_time_s < infinity && Sys.time () -. t_start > budget.max_time_s)
    then raise Give_up
  in
  let hard_ok =
    List.for_all
      (fun (a : atom) ->
        incr adds;
        match Diff_graph.add_constraint g ~u:a.u ~v:a.v ~k:a.k ~tag:(-1) with
        | Ok () -> true
        | Error _ -> incr conflicts; false)
      p.hard
  in
  if not hard_ok then Unsat (stats ())
  else begin
    let clauses = p.clauses in
    let n = Array.length clauses in
    (* activity: bumped for the endpoint variables of conflicting literals.
       Activity only reorders a clause that has itself conflicted before —
       every other clause keeps the caller's literal order, so the
       recorded-observation witness ordering still drives a conflict-free
       search.  When a previously-conflicted clause is re-decided, its
       literals are tried in ASCENDING activity: the literal whose
       variables keep appearing in conflicts is demoted behind its
       alternatives instead of being re-tried (and re-failed) first. *)
    let act = Array.make (max 1 p.nvars) 0.0 in
    let act_inc = ref 1.0 in
    let bump x =
      act.(x) <- act.(x) +. !act_inc;
      if act.(x) > 1e100 then begin
        Array.iteri (fun i a -> act.(i) <- a *. 1e-100) act;
        act_inc := !act_inc *. 1e-100
      end
    in
    let conflicted = Array.make (max 1 n) false in
    let order_lits (ci : int) (clause : atom array) : int array =
      let len = Array.length clause in
      let perm = Array.init len (fun j -> j) in
      if len > 1 && conflicted.(ci) then begin
        let score j = act.(clause.(j).u) +. act.(clause.(j).v) in
        let lst = Array.to_list perm in
        let sorted =
          List.stable_sort (fun a b -> compare (score a) (score b)) lst
        in
        List.iteri (fun idx j -> perm.(idx) <- j) sorted
      end;
      perm
    in
    (* decision stack, sorted by clause index (clauses decided in order) *)
    let stack : entry option array = Array.make (max 1 n) None in
    let sp = ref 0 in
    let pos = Array.make (max 1 n) (-1) in  (* clause index -> stack slot *)
    let all_stack_cis () =
      let s = ref ISet.empty in
      for d = 0 to !sp - 1 do
        match stack.(d) with Some e -> s := ISet.add e.ci !s | None -> ()
      done;
      !s
    in
    let model () =
      let m = Array.init p.nvars (fun i -> Diff_graph.potential g i) in
      Sat (m, stats ())
    in
    let i = ref 0 in
    try
      while !i < n do
        (* decide clause [ci] starting at literal slot [start] of [perm],
           with failure reasons [culprits] accumulated so far; on conflict,
           backjump and loop with the target's stored resume state *)
        let ci = ref !i
        and perm = ref (order_lits !i clauses.(!i))
        and start = ref 0
        and culprits = ref ISet.empty in
        let decided = ref false in
        while not !decided do
          let clause = clauses.(!ci) in
          let len = Array.length clause in
          let j = ref !start in
          let chosen = ref (-1) in
          while !chosen < 0 && !j < len do
            let a = clause.((!perm).(!j)) in
            Diff_graph.push g;
            incr adds;
            (match Diff_graph.add_constraint g ~u:a.u ~v:a.v ~k:a.k ~tag:!ci with
            | Ok () -> chosen := !j
            | Error c ->
              incr conflicts;
              Diff_graph.pop g;
              conflicted.(!ci) <- true;
              bump a.u;
              bump a.v;
              act_inc := !act_inc *. 1.03;
              (* conflict reasons: every decision named by the cycle; an
                 incomplete cycle walk degrades to blaming every decision
                 (chronological backtracking), preserving completeness *)
              let reasons =
                if c.Diff_graph.complete then
                  List.fold_left
                    (fun s t -> if t >= 0 && t <> !ci then ISet.add t s else s)
                    ISet.empty c.Diff_graph.tags
                else all_stack_cis ()
              in
              culprits := ISet.union !culprits reasons;
              check_budget ();
              incr j)
          done;
          if !chosen >= 0 then begin
            let e = { ci = !ci; perm = !perm; lit = !chosen; culprits = !culprits } in
            stack.(!sp) <- Some e;
            pos.(!ci) <- !sp;
            incr sp;
            if !sp > !max_depth then max_depth := !sp;
            incr decisions;
            (* conflict-free searches over large graphs would otherwise
               never observe the wall-clock budget *)
            check_budget ();
            i := !ci + 1;
            decided := true
          end
          else begin
            (* clause [!ci] has no consistent literal: backjump to the
               deepest decision the failure depends on *)
            let on_stack = ISet.filter (fun c -> c < n && pos.(c) >= 0) !culprits in
            if ISet.is_empty on_stack then raise Unsat_now;
            let target_ci = ISet.max_elt on_stack in
            let target_slot = pos.(target_ci) in
            (* discard decisions above the target *)
            while !sp - 1 > target_slot do
              decr sp;
              (match stack.(!sp) with
              | Some e -> pos.(e.ci) <- -1
              | None -> assert false);
              stack.(!sp) <- None;
              Diff_graph.pop g;
              incr backtracks
            done;
            (* reopen the target: undo its assertion, inherit the reasons,
               and resume at its next untried literal *)
            let e = match stack.(target_slot) with Some e -> e | None -> assert false in
            decr sp;
            stack.(target_slot) <- None;
            pos.(e.ci) <- -1;
            Diff_graph.pop g;
            incr backtracks;
            check_budget ();
            ci := e.ci;
            perm := e.perm;
            start := e.lit + 1;
            culprits := ISet.remove e.ci (ISet.union e.culprits !culprits)
          end
        done
      done;
      model ()
    with
    | Unsat_now -> Unsat (stats ())
    | Give_up -> Aborted (stats ())
  end
