(** DPLL(T) solver for Integer Difference Logic — the offline scheduling
    engine of Section 4.2 of the paper.

    The replay constraint system is a conjunction of strict-order atoms
    [O(a) < O(b)] plus disjunctions of such atoms (the noninterference
    clauses of Equation 1).  This is exactly the IDL fragment Z3 solves for
    the paper's prototype; here the decision procedure is implemented
    directly: conflict-driven DPLL over the clauses with an incremental
    negative-cycle theory solver ({!Diff_graph}) validating each candidate
    assignment.

    Clause order and literal order are the caller's heuristic handles: the
    search asserts the first theory-consistent literal of each clause in
    order, so callers that order literals by a known witness (the recorded
    observation order) solve with little or no backtracking.  When
    conflicts do happen, the negative-cycle tags reported by the theory
    solver drive non-chronological backjumping (the search returns directly
    to the deepest decision the conflict depends on), re-decisions of
    clauses that conflicted before rank their literals by a conflict-bumped
    activity score (clauses that never conflicted keep the caller's order
    untouched), and each decision resumes at its next untried literal
    rather than re-running theory work for literals that already failed. *)

type atom = { u : int; v : int; k : int }
(** The difference constraint [x_u - x_v <= k]. *)

val lt : int -> int -> atom
(** [lt a b] is the strict order [x_a < x_b] over the integers. *)

val le : int -> int -> atom
(** [le a b] is [x_a <= x_b]. *)

type problem = {
  nvars : int;                 (** variables are [0 .. nvars-1] *)
  hard : atom list;            (** asserted unconditionally *)
  clauses : atom array array;  (** each clause needs >= 1 satisfied atom *)
}

type stats = {
  decisions : int;
  backtracks : int;        (** decision levels undone *)
  theory_conflicts : int;
  theory_adds : int;       (** constraints pushed into the theory solver *)
  max_depth : int;         (** deepest decision stack reached *)
  final_edges : int;
}

type result =
  | Sat of int array * stats
      (** a satisfying assignment: [m.(i)] is the value of [x_i]; every hard
          atom holds and every clause has a satisfied member *)
  | Unsat of stats
  | Aborted of stats  (** a work or time budget was exhausted *)

type budget = {
  max_backtracks : int;  (** decision levels undone before giving up *)
  max_conflicts : int;   (** theory conflicts before giving up *)
  max_time_s : float;    (** CPU seconds ([Sys.time]-based) before giving up *)
}

val default_budget : budget
(** 2,000,000 backtracks, unlimited conflicts, unlimited time. *)

exception Give_up
exception Unsat_now
(** Internal control flow; never escape {!solve}. *)

val solve :
  ?max_backtracks:int -> ?budget:budget -> ?hint:int array -> problem -> result
(** Solve the problem.  The [budget] bounds the search before giving up
    with {!Aborted} (honest statistics, no hang); [max_backtracks]
    overrides the budget's backtrack bound and is kept for callers of the
    pre-budget interface.  [hint.(v)] seeds the theory potentials — a
    caller that knows a model of the hard atoms (e.g. a topological order
    of its constraint DAG) makes their assertion relaxation-free; a wrong
    hint only costs work, never soundness. *)
