(** Incremental difference-constraint graph.

    A constraint [x_u - x_v <= k] is an edge [v -> u] with weight [k].  The
    conjunction of constraints is satisfiable iff the graph has no negative
    cycle.  We maintain a potential [d] with [d(u) <= d(v) + k] for every
    edge — which is itself a satisfying assignment — and detect infeasibility
    incrementally: adding an edge triggers queue-based relaxation, and a
    negative cycle exists iff the relaxation wave improves the new edge's
    source (the cycle necessarily passes through the new edge, because the
    graph was feasible before).

    Supports chronological backtracking via [push]/[pop] (trail of edge
    additions and potential updates), and tags every edge so that negative
    cycles can be reported as sets of responsible constraint tags (used by
    the DPLL(T) driver for conflict-driven backjumping). *)

type edge = { target : int; weight : int; tag : int }

type conflict = {
  tags : int list;
      (** tags of the edges on a negative cycle (deduplicated, includes the
          tag of the edge whose addition closed the cycle) *)
  complete : bool;
      (** the cycle walk terminated normally; when [false] the tag set may
          miss responsible constraints and callers must fall back to
          chronological backtracking *)
}

type t = {
  mutable nvars : int;
  mutable out : edge list array;  (* out.(v) = edges v->u *)
  mutable d : int array;          (* potential: d(u) <= d(v) + k *)
  mutable parent : (int * int) array;  (* relaxation parents: node, tag *)
  (* trails *)
  mutable edge_trail : int list;       (* sources whose out list grew *)
  mutable d_trail : (int * int) list;  (* node, previous potential *)
  mutable levels : (int * int) list;   (* saved trail lengths *)
  mutable edge_trail_len : int;
  mutable d_trail_len : int;
  mutable nedges : int;
}

let create (nvars : int) : t =
  {
    nvars;
    out = Array.make (max 1 nvars) [];
    d = Array.make (max 1 nvars) 0;
    parent = Array.make (max 1 nvars) (-1, -1);
    edge_trail = [];
    d_trail = [];
    levels = [];
    edge_trail_len = 0;
    d_trail_len = 0;
    nedges = 0;
  }

let ensure (g : t) (n : int) : unit =
  if n >= g.nvars then begin
    let cap = max (n + 1) (2 * g.nvars) in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    g.out <- grow g.out [];
    g.d <- grow g.d 0;
    g.parent <- grow g.parent (-1, -1);
    g.nvars <- cap
  end

let potential (g : t) (v : int) : int = g.d.(v)

(** Initialize the potential function from a hint — e.g. a topological
    order of a subgraph the caller expects to assert, which then asserts
    with zero relaxation.  Only sensible on a graph with no constraints
    yet; a wrong hint costs extra relaxation work but never affects
    correctness (the potentials are repaired on every addition). *)
let seed (g : t) (hint : int array) : unit =
  ensure g (Array.length hint - 1);
  Array.iteri (fun v x -> g.d.(v) <- x) hint
let num_edges (g : t) : int = g.nedges

let push (g : t) : unit = g.levels <- (g.edge_trail_len, g.d_trail_len) :: g.levels

let pop (g : t) : unit =
  match g.levels with
  | [] -> invalid_arg "Diff_graph.pop: no saved level"
  | (el, dl) :: rest ->
    g.levels <- rest;
    while g.edge_trail_len > el do
      (match g.edge_trail with
      | v :: tl ->
        g.edge_trail <- tl;
        g.out.(v) <- List.tl g.out.(v);
        g.nedges <- g.nedges - 1
      | [] -> assert false);
      g.edge_trail_len <- g.edge_trail_len - 1
    done;
    while g.d_trail_len > dl do
      (match g.d_trail with
      | (v, old) :: tl ->
        g.d_trail <- tl;
        g.d.(v) <- old
      | [] -> assert false);
      g.d_trail_len <- g.d_trail_len - 1
    done

let set_d (g : t) (v : int) (x : int) : unit =
  g.d_trail <- (v, g.d.(v)) :: g.d_trail;
  g.d_trail_len <- g.d_trail_len + 1;
  g.d.(v) <- x

(** [add_constraint g ~u ~v ~k ~tag] asserts [x_u - x_v <= k].
    Returns [Ok ()] and updates the potential, or [Error conflict] where
    [conflict.tags] are edge tags involved in a negative cycle (including
    [tag]).  On error the graph state is inconsistent; the caller must [pop]
    back to the enclosing level (which undoes the failed addition). *)
let add_constraint (g : t) ~(u : int) ~(v : int) ~(k : int) ~(tag : int) :
    (unit, conflict) result =
  ensure g (max u v);
  (* record the edge v -> u *)
  g.out.(v) <- { target = u; weight = k; tag } :: g.out.(v);
  g.edge_trail <- v :: g.edge_trail;
  g.edge_trail_len <- g.edge_trail_len + 1;
  g.nedges <- g.nedges + 1;
  if g.d.(u) <= g.d.(v) + k then Ok ()
  else begin
    (* relax from u; improving d(v) certifies a negative cycle *)
    g.parent.(u) <- (v, tag);
    set_d g u (g.d.(v) + k);
    let q = Queue.create () in
    Queue.add u q;
    let conflict = ref None in
    while !conflict = None && not (Queue.is_empty q) do
      let x = Queue.take q in
      let dx = g.d.(x) in
      List.iter
        (fun (e : edge) ->
          if !conflict = None && g.d.(e.target) > dx + e.weight then begin
            if e.target = v then begin
              (* negative cycle: new edge + path u .. x + edge x->v.  Every
                 improvement in this relaxation wave stems from u, so parent
                 pointers trace a path of improving edges back to u; the
                 fuel bound is a safety net against a corrupted parent chain
                 (reported via [complete = false] so the DPLL(T) driver
                 falls back to chronological backtracking). *)
              let tags = ref [ tag; e.tag ] in
              let cur = ref x in
              let fuel = ref (g.nvars + 1) in
              while !cur <> u && !cur >= 0 && !fuel > 0 do
                decr fuel;
                let p, ptag = g.parent.(!cur) in
                tags := ptag :: !tags;
                cur := p
              done;
              conflict :=
                Some
                  {
                    tags = List.sort_uniq compare !tags;
                    complete = !cur = u;
                  }
            end
            else begin
              g.parent.(e.target) <- (x, e.tag);
              set_d g e.target (dx + e.weight);
              Queue.add e.target q
            end
          end)
        g.out.(x)
    done;
    match !conflict with None -> Ok () | Some c -> Error c
  end
