(** Incremental difference-constraint graph: the theory solver behind
    {!Idl}.

    A constraint [x_u - x_v <= k] is an edge [v -> u] of weight [k]; the
    conjunction is satisfiable iff the graph has no negative cycle.  A
    potential function witnessing feasibility is maintained incrementally
    and doubles as a satisfying assignment.  Chronological backtracking is
    supported through [push]/[pop] trails. *)

type t

val create : int -> t
(** [create n] makes a graph over variables [0 .. n-1]; it grows on demand
    when larger indices are used. *)

type conflict = {
  tags : int list;
      (** deduplicated tags of the edges on a negative cycle, including the
          tag of the edge whose addition closed it *)
  complete : bool;
      (** the cycle walk terminated normally; [false] means the tag set may
          be missing responsible constraints, so conflict-driven backjumping
          over it would be unsound — fall back to chronological *)
}

val add_constraint : t -> u:int -> v:int -> k:int -> tag:int -> (unit, conflict) result
(** Assert [x_u - x_v <= k].  [Ok ()] updates the potential; [Error c]
    reports the edge tags involved in a negative cycle (including [tag]).
    After an error the graph state is inconsistent until the caller [pop]s
    back to the enclosing level. *)

val push : t -> unit
(** Mark a backtracking level. *)

val pop : t -> unit
(** Undo every edge addition and potential update since the matching
    {!push}.  @raise Invalid_argument when no level is saved. *)

val potential : t -> int -> int
(** The current potential of a variable — a satisfying assignment of all
    asserted constraints. *)

val seed : t -> int array -> unit
(** [seed g hint] initializes the potential of variable [v] to [hint.(v)]
    — e.g. a topological order of constraints the caller is about to
    assert, which then assert with zero relaxation.  Call before any
    constraints are added; a wrong hint only costs relaxation work, never
    correctness. *)

val num_edges : t -> int
