(** The 24-benchmark suite of Section 5 (3 JGF, 8 STAMP-port, 7 server-side
    and crawling applications, 6 DaCapo), as synthetic workload generators.

    The figures of Section 5.2/5.4 are driven entirely by each benchmark's
    {e sharing signature} — how many accesses touch shared data, how long
    the uninterleaved same-thread runs are, what fraction is consistently
    lock-protected, and how contended the hot locations are.  Each named
    benchmark instantiates the generator with the signature of its real
    counterpart:

    - scientific kernels (JGF, most of STAMP) partition arrays across
      threads and synchronize rarely: low access density, long runs;
    - server workloads mix lock-disciplined session state with unguarded
      hot counters and hash-map tables;
    - DaCapo's concurrency-heavy members (avrora, xalan) hammer small hot
      objects from all threads — the regime where synchronized per-access
      recording collapses (the paper's up-to-17.85X Leap cases). *)

(** Program shape.  [Loops] is the original shared-memory loop generator
    behind the 24 paper benchmarks; the message-passing shapes stress
    channel-style contention (monitor queues, hand-offs, barriers) whose
    flip lattices look nothing like loop interleavings. *)
type shape =
  | Loops
  | Queue     (** bounded queue: 4 producers + 4 consumers *)
  | Pipeline  (** 8 stages hand off through 1-slot cells *)
  | FanIn     (** 7 producers feed 1 aggregator *)
  | Barrier   (** 8 workers in phases separated by a generation barrier *)
  | Phased    (** spawn-wave / join-all / sequential-fold phases, with
                  optional nested spawn inside workers: the MHP + lockset
                  elision stress shape (quiescent post-join reads, bounded
                  spawn windows, lock-disciplined vs bare counters) *)

type params = {
  shape : shape;
  threads : int;
  iters : int;          (** outer iterations per worker *)
  local_work : int;     (** pure-local ops per iteration *)
  array_size : int;
  runlen : int;         (** consecutive array accesses per burst *)
  partition : bool;     (** threads work on disjoint slices *)
  array_reads : int;    (** array-burst reads per iteration *)
  array_writes : int;
  hot_ops : int;        (** unguarded read-modify-writes of one hot object *)
  locked_ops : int;     (** ops inside a consistent sync region *)
  use_maps : bool;
  use_syscalls : bool;
  stickiness : int;     (** scheduler run-length: interleaving realism knob *)
}

type benchmark = {
  name : string;
  suite : string;  (** "JGF" | "STAMP" | "Server" | "DaCapo" *)
  params : params;
}

(* ------------------------------------------------------------------ *)
(* Program generation                                                   *)
(* ------------------------------------------------------------------ *)

let generate_loops ?(scale = 1) (p : params) : string =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let iters = p.iters * scale in
  add "class Acc { n; v; }";
  add "global data;";
  add "global acc;";
  add "global lk;";
  if p.use_maps then add "global tbl;";
  add "";
  add "fn worker(id) {";
  add "  lx = id * 17 + 3;";
  (* cache stable references in locals, as compiled Java would *)
  add "  d = data;";
  add "  a = acc;";
  add "  l = lk;";
  if p.use_maps then add "  tb = tbl;";
  add "  i = 0;";
  add "  while (i < %d) {" iters;
  (* pure local computation: no heap access at all *)
  if p.local_work > 0 then begin
    add "    w = 0;";
    add "    while (w < %d) { lx = (lx * 5 + w) %% 65536; w = w + 1; }" p.local_work
  end;
  (* array bursts *)
  if p.array_reads > 0 || p.array_writes > 0 then begin
    if p.partition then
      add "    base = (id * %d + ((i * %d) %% %d)) %% %d;"
        (p.array_size / max 1 p.threads)
        p.runlen
        (max 1 (p.array_size / max 1 p.threads))
        p.array_size
    else add "    base = (lx + i) %% %d;" p.array_size;
    (* bursts are emitted straight-line: a compiled loop body touching the
       heap once per iteration has little control overhead per access *)
    for j = 0 to p.array_reads - 1 do
      add "    v%d = d[(base + %d) %% %d];" j (j mod p.runlen) p.array_size
    done;
    if p.array_reads > 0 then begin
      add "    lx = (lx + %s) %% 65536;"
        (String.concat " + " (List.init p.array_reads (Printf.sprintf "v%d")))
    end;
    for j = 0 to p.array_writes - 1 do
      add "    d[(base + %d) %% %d] = lx + %d;" (j mod p.runlen) p.array_size j
    done
  end;
  (* unguarded hot object *)
  for _ = 1 to p.hot_ops do
    add "    a.n = a.n + 1;"
  done;
  (* consistently locked section *)
  if p.locked_ops > 0 then begin
    add "    sync (l) {";
    for _ = 1 to p.locked_ops do
      add "      l.v = l.v + 1;"
    done;
    add "    }"
  end;
  if p.use_maps then begin
    add "    tb{id %% 4} = lx;";
    add "    mv = tb{(id + 1) %% 4};";
    add "    if (mv != null) { lx = (lx + mv) %% 65536; }"
  end;
  if p.use_syscalls then add "    ts = @time();";
  add "    i = i + 1;";
  add "  }";
  add "  return lx;";
  add "}";
  add "";
  add "main {";
  add "  data = new[%d];" p.array_size;
  add "  acc = new Acc;";
  add "  acc.n = 0;";
  add "  lk = new Acc;";
  add "  sync (lk) { lk.v = 0; }";
  if p.use_maps then add "  tbl = newmap;";
  for t = 1 to p.threads do
    add "  spawn t%d = worker(%d);" t t
  done;
  for t = 1 to p.threads do
    add "  join t%d;" t
  done;
  add "  print acc.n;";
  add "}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Message-passing generators                                           *)
(* ------------------------------------------------------------------ *)

(* All four shapes spawn exactly [base.threads = 8] worker threads, like
   the loop generator, so suite-wide invariants (9 final counters) hold
   uniformly.  Monitors follow the standard guarded-wait discipline:
   [sync (m) { while (!cond) { wait m; } ...; notifyall m; }] —
   [notifyall] everywhere, so no wakeup is ever lost. *)

let queue_cap = 4

(* 4 producers + 4 consumers over a bounded circular buffer; producers
   count themselves out via [closed], consumers drain then exit. *)
let generate_queue ~(iters : int) : string =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  add "class Q { buf; head; tail; count; closed; done; }";
  add "global q;";
  add "";
  add "fn producer(id) {";
  add "  qq = q;";
  add "  i = 0;";
  add "  while (i < %d) {" iters;
  add "    sync (qq) {";
  add "      while (qq.count == %d) { wait qq; }" queue_cap;
  add "      b = qq.buf;";
  add "      b[qq.tail] = id * 1000 + i;";
  add "      qq.tail = (qq.tail + 1) %% %d;" queue_cap;
  add "      qq.count = qq.count + 1;";
  add "      notifyall qq;";
  add "    }";
  add "    i = i + 1;";
  add "  }";
  add "  sync (qq) { qq.closed = qq.closed + 1; notifyall qq; }";
  add "  return i;";
  add "}";
  add "";
  add "fn consumer(id) {";
  add "  qq = q;";
  add "  run = 1;";
  add "  got = 0;";
  add "  while (run == 1) {";
  add "    sync (qq) {";
  add "      while ((qq.count == 0) && (qq.closed < 4)) { wait qq; }";
  add "      if (qq.count > 0) {";
  add "        b = qq.buf;";
  add "        v = b[qq.head];";
  add "        qq.head = (qq.head + 1) %% %d;" queue_cap;
  add "        qq.count = qq.count - 1;";
  add "        got = (got + v) %% 1000000;";
  add "        notifyall qq;";
  add "      } else {";
  add "        run = 0;";
  add "      }";
  add "    }";
  add "  }";
  add "  sync (qq) { qq.done = (qq.done + got) %% 1000000; }";
  add "  return got;";
  add "}";
  add "";
  add "main {";
  add "  q = new Q;";
  add "  bf = new[%d];" queue_cap;
  add "  sync (q) {";
  add "    q.buf = bf;";
  add "    q.head = 0;";
  add "    q.tail = 0;";
  add "    q.count = 0;";
  add "    q.closed = 0;";
  add "    q.done = 0;";
  add "  }";
  for t = 1 to 4 do
    add "  spawn p%d = producer(%d);" t t
  done;
  for t = 1 to 4 do
    add "  spawn c%d = consumer(%d);" t t
  done;
  for t = 1 to 4 do
    add "  join p%d;" t
  done;
  for t = 1 to 4 do
    add "  join c%d;" t
  done;
  add "  print q.done;";
  add "}";
  Buffer.contents b

(* 8 stages; stage s consumes the 1-slot cell s-1 and fills cell s, the
   last stage accumulates into a sink. *)
let generate_pipeline ~(iters : int) : string =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  add "class Cell { v; full; }";
  add "class Sink { total; }";
  add "global cells;";
  add "global sink;";
  add "";
  add "fn stage(s) {";
  add "  cs = cells;";
  add "  i = 0;";
  add "  while (i < %d) {" iters;
  add "    x = s;";
  add "    if (s > 1) {";
  add "      c = cs[s - 1];";
  add "      sync (c) {";
  add "        while (c.full == 0) { wait c; }";
  add "        x = c.v;";
  add "        c.full = 0;";
  add "        notifyall c;";
  add "      }";
  add "    }";
  add "    if (s < 8) {";
  add "      c2 = cs[s];";
  add "      sync (c2) {";
  add "        while (c2.full == 1) { wait c2; }";
  add "        c2.v = (x + s) %% 1000000;";
  add "        c2.full = 1;";
  add "        notifyall c2;";
  add "      }";
  add "    } else {";
  add "      sk = sink;";
  add "      sync (sk) { sk.total = (sk.total + x) %% 1000000; }";
  add "    }";
  add "    i = i + 1;";
  add "  }";
  add "  return i;";
  add "}";
  add "";
  add "main {";
  add "  cells = new[8];";
  add "  cs = cells;";
  add "  ci = 1;";
  add "  while (ci < 8) {";
  add "    c = new Cell;";
  add "    sync (c) { c.v = 0; c.full = 0; }";
  add "    cs[ci] = c;";
  add "    ci = ci + 1;";
  add "  }";
  add "  sink = new Sink;";
  add "  sk = sink;";
  add "  sync (sk) { sk.total = 0; }";
  for t = 1 to 8 do
    add "  spawn s%d = stage(%d);" t t
  done;
  for t = 1 to 8 do
    add "  join s%d;" t
  done;
  add "  print sk.total;";
  add "}";
  Buffer.contents b

(* 7 producers push a fixed count each; 1 aggregator consumes exactly
   7 * iters items — termination needs no close protocol. *)
let generate_fanin ~(iters : int) : string =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  add "class Q { buf; head; tail; count; total; }";
  add "global q;";
  add "";
  add "fn producer(id) {";
  add "  qq = q;";
  add "  i = 0;";
  add "  while (i < %d) {" iters;
  add "    sync (qq) {";
  add "      while (qq.count == %d) { wait qq; }" queue_cap;
  add "      b = qq.buf;";
  add "      b[qq.tail] = id * 100 + (i %% 100);";
  add "      qq.tail = (qq.tail + 1) %% %d;" queue_cap;
  add "      qq.count = qq.count + 1;";
  add "      notifyall qq;";
  add "    }";
  add "    i = i + 1;";
  add "  }";
  add "  return i;";
  add "}";
  add "";
  add "fn aggregator(n) {";
  add "  qq = q;";
  add "  i = 0;";
  add "  while (i < n) {";
  add "    sync (qq) {";
  add "      while (qq.count == 0) { wait qq; }";
  add "      b = qq.buf;";
  add "      v = b[qq.head];";
  add "      qq.head = (qq.head + 1) %% %d;" queue_cap;
  add "      qq.count = qq.count - 1;";
  add "      qq.total = (qq.total + v) %% 1000000;";
  add "      notifyall qq;";
  add "    }";
  add "    i = i + 1;";
  add "  }";
  add "  return i;";
  add "}";
  add "";
  add "main {";
  add "  q = new Q;";
  add "  bf = new[%d];" queue_cap;
  add "  sync (q) {";
  add "    q.buf = bf;";
  add "    q.head = 0;";
  add "    q.tail = 0;";
  add "    q.count = 0;";
  add "    q.total = 0;";
  add "  }";
  for t = 1 to 7 do
    add "  spawn p%d = producer(%d);" t t
  done;
  add "  spawn agg = aggregator(%d);" (7 * iters);
  for t = 1 to 7 do
    add "  join p%d;" t
  done;
  add "  join agg;";
  add "  print q.total;";
  add "}";
  Buffer.contents b

(* 8 workers alternate phase work on rotated array partitions with a
   generation barrier (count + generation stamp, notifyall on the last
   arrival). *)
let generate_barrier ~(phases : int) ~(array_size : int) : string =
  let chunk = max 1 (array_size / 8) in
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  add "class Bar { count; gen; }";
  add "global bar;";
  add "global data;";
  add "";
  add "fn worker(id) {";
  add "  bb = bar;";
  add "  d = data;";
  add "  ph = 0;";
  add "  acc = id;";
  add "  while (ph < %d) {" phases;
  (* read the partition one step rotated from our own for this phase *)
  add "    j = 0;";
  add "    while (j < %d) {" chunk;
  add "      acc = (acc + d[(((id + ph) %% 8) * %d) + j]) %% 65536;" chunk;
  add "      j = j + 1;";
  add "    }";
  add "    j = 0;";
  add "    while (j < %d) {" chunk;
  add "      d[((id - 1) * %d) + j] = (acc + j) %% 65536;" chunk;
  add "      j = j + 1;";
  add "    }";
  add "    sync (bb) {";
  add "      g = bb.gen;";
  add "      bb.count = bb.count + 1;";
  add "      if (bb.count == 8) {";
  add "        bb.count = 0;";
  add "        bb.gen = bb.gen + 1;";
  add "        notifyall bb;";
  add "      } else {";
  add "        while (bb.gen == g) { wait bb; }";
  add "      }";
  add "    }";
  add "    ph = ph + 1;";
  add "  }";
  add "  return acc;";
  add "}";
  add "";
  add "main {";
  add "  data = new[%d];" (chunk * 8);
  add "  bar = new Bar;";
  add "  sync (bar) { bar.count = 0; bar.gen = 0; }";
  for t = 1 to 8 do
    add "  spawn w%d = worker(%d);" t t
  done;
  for t = 1 to 8 do
    add "  join w%d;" t
  done;
  add "  print bar.gen;";
  add "}";
  Buffer.contents b

(* Spawn-wave phases: each phase publishes a fresh accumulator, spawns a
   wave of workers (bare counter bumps racing, plus a lock-disciplined
   counter), joins the whole wave, then folds the wave's result into a
   main-only total before the next wave starts.  [partition] additionally
   gives each worker a nested [spawn h = helper(..); join h] so spawn
   sites occur outside [main] and join edges nest.  This is the shape the
   MHP analysis reasons about: per-wave spawn windows are bounded by the
   join-all, consecutive waves never overlap, and the fold reads are
   quiescent.  The number of waves follows [runlen] (clamped to 2..5). *)
let generate_phased ?(scale = 1) (p : params) : string =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let waves = min 5 (max 2 p.runlen) in
  let iters = max 1 (p.iters * scale) in
  let threads = max 1 p.threads in
  add "class Acc { n; v; }";
  add "global acc;";
  add "global lk;";
  add "global total;";
  add "";
  if p.partition then begin
    add "fn helper(hid) {";
    add "  a = acc;";
    add "  l = lk;";
    add "  j = 0;";
    add "  while (j < %d) {" iters;
    add "    a.n = a.n + 1;";
    add "    sync (l) { l.v = l.v + 1; }";
    add "    j = j + 1;";
    add "  }";
    add "  return hid;";
    add "}";
    add ""
  end;
  add "fn worker(id) {";
  add "  a = acc;";
  add "  l = lk;";
  add "  lx = id * 13 + 1;";
  add "  i = 0;";
  add "  while (i < %d) {" iters;
  if p.local_work > 0 then begin
    add "    w = 0;";
    add "    while (w < %d) { lx = (lx * 5 + w) %% 65536; w = w + 1; }" p.local_work
  end;
  for _ = 1 to p.hot_ops do
    add "    a.n = a.n + 1;"
  done;
  if p.locked_ops > 0 then begin
    add "    sync (l) {";
    for _ = 1 to p.locked_ops do
      add "      l.v = l.v + 1;"
    done;
    add "    }"
  end;
  add "    i = i + 1;";
  add "  }";
  if p.partition then begin
    add "  spawn h = helper(id + 100);";
    add "  join h;"
  end;
  add "  return lx;";
  add "}";
  add "";
  add "main {";
  add "  lk = new Acc;";
  add "  sync (lk) { lk.v = 0; }";
  add "  total = new Acc;";
  add "  total.n = 0;";
  for ph = 1 to waves do
    add "  acc = new Acc;";
    add "  acc.n = 0;";
    for t = 1 to threads do
      add "  spawn w%d_%d = worker(%d);" ph t t
    done;
    for t = 1 to threads do
      add "  join w%d_%d;" ph t
    done;
    (* quiescent fold: every thread of the wave has been joined, so these
       reads see the wave's final counter regardless of interleaving *)
    add "  cur%d = acc;" ph;
    add "  total.n = total.n + cur%d.n;" ph
  done;
  add "  print total.n;";
  add "}";
  Buffer.contents b

let generate ?(scale = 1) (p : params) : string =
  match p.shape with
  | Loops -> generate_loops ~scale p
  | Queue -> generate_queue ~iters:(p.iters * scale)
  | Pipeline -> generate_pipeline ~iters:(p.iters * scale)
  | FanIn -> generate_fanin ~iters:(p.iters * scale)
  | Barrier -> generate_barrier ~phases:(p.iters * scale) ~array_size:p.array_size
  | Phased -> generate_phased ~scale p

let program ?scale (bm : benchmark) : Lang.Ast.program =
  Lang.Check.validate_exn (Lang.Parser.parse_program (generate ?scale bm.params))

let scheduler ?(seed = 7) (bm : benchmark) : Runtime.Sched.t =
  Runtime.Sched.sticky ~seed ~stickiness:bm.params.stickiness

(* ------------------------------------------------------------------ *)
(* The 24 benchmarks                                                    *)
(* ------------------------------------------------------------------ *)

let base : params =
  {
    shape = Loops;
    threads = 8;
    iters = 48;
    local_work = 6;
    array_size = 256;
    runlen = 8;
    partition = true;
    array_reads = 8;
    array_writes = 4;
    hot_ops = 0;
    locked_ops = 0;
    use_maps = false;
    use_syscalls = false;
    stickiness = 240;
  }

let jgf =
  [
    (* embarrassingly parallel series evaluation: almost no sharing *)
    { name = "jgf-series"; suite = "JGF";
      params = { base with local_work = 26; array_reads = 2; array_writes = 2; runlen = 16; stickiness = 2000 } };
    (* crypt: partitioned array transform with a shared key block *)
    { name = "jgf-crypt"; suite = "JGF";
      params = { base with local_work = 12; array_reads = 12; array_writes = 8; runlen = 12; hot_ops = 1 } };
    (* sparse mat-mult: partitioned rows + shared accumulator *)
    { name = "jgf-sparse"; suite = "JGF";
      params = { base with local_work = 8; array_reads = 16; array_writes = 2; runlen = 10; hot_ops = 2 } };
  ]

let stamp =
  [
    { name = "stamp-bayes"; suite = "STAMP";
      params = { base with local_work = 10; locked_ops = 4; array_reads = 10; hot_ops = 1; stickiness = 700 } };
    { name = "stamp-genome"; suite = "STAMP";
      params = { base with local_work = 7; use_maps = true; locked_ops = 3; runlen = 8 } };
    { name = "stamp-intruder"; suite = "STAMP";
      params = { base with local_work = 3; partition = false; array_size = 64; runlen = 2; array_reads = 9; array_writes = 6; hot_ops = 3; stickiness = 120 } };
    { name = "stamp-kmeans"; suite = "STAMP";
      params = { base with local_work = 14; array_reads = 12; array_writes = 3; hot_ops = 2; runlen = 12 } };
    { name = "stamp-labyrinth"; suite = "STAMP";
      params = { base with local_work = 18; array_reads = 14; array_writes = 10; runlen = 14; stickiness = 1500 } };
    { name = "stamp-ssca2"; suite = "STAMP";
      params = { base with local_work = 9; partition = false; array_size = 64; array_reads = 8; array_writes = 5; runlen = 2; stickiness = 320 } };
    { name = "stamp-vacation"; suite = "STAMP";
      params = { base with local_work = 6; use_maps = true; locked_ops = 10; array_reads = 5; array_writes = 2; hot_ops = 1; stickiness = 90 } };
    { name = "stamp-yada"; suite = "STAMP";
      params = { base with local_work = 5; partition = false; array_size = 64; runlen = 2; array_reads = 10; array_writes = 6; hot_ops = 2; stickiness = 150 } };
  ]

let servers =
  [
    { name = "cache4j"; suite = "Server";
      params = { base with local_work = 4; locked_ops = 5; hot_ops = 3; use_syscalls = true; array_reads = 4; array_writes = 2; partition = false; stickiness = 330 } };
    { name = "ftpserver"; suite = "Server";
      params = { base with local_work = 5; use_maps = true; locked_ops = 9; array_reads = 2; array_writes = 1; use_syscalls = true; stickiness = 110 } };
    { name = "weblech"; suite = "Server";
      params = { base with local_work = 6; use_maps = true; locked_ops = 2; hot_ops = 2; partition = false; array_size = 64; runlen = 2; stickiness = 170 } };
    { name = "hedc"; suite = "Server";
      params = { base with local_work = 8; use_maps = true; locked_ops = 3; array_reads = 5; stickiness = 750 } };
    { name = "tomcat-kernel"; suite = "Server";
      params = { base with local_work = 3; locked_ops = 14; hot_ops = 3; use_maps = true; partition = false; array_size = 64; runlen = 2; array_reads = 4; array_writes = 2; stickiness = 44 } };
    { name = "jigsaw"; suite = "Server";
      params = { base with local_work = 5; locked_ops = 9; hot_ops = 1; array_reads = 4; stickiness = 90 } };
    { name = "openjms"; suite = "Server";
      params = { base with local_work = 4; locked_ops = 12; array_reads = 4; array_writes = 1; use_maps = true; hot_ops = 1; stickiness = 80 } };
  ]

let dacapo =
  [
    (* avrora: cycle-accurate AVR simulation, tiny hot monitor state *)
    { name = "dacapo-avrora"; suite = "DaCapo";
      params = { base with local_work = 1; partition = false; array_size = 16; array_reads = 7; array_writes = 5; runlen = 2; hot_ops = 6; stickiness = 16 } };
    { name = "dacapo-h2"; suite = "DaCapo";
      params = { base with local_work = 4; locked_ops = 16; array_reads = 4; array_writes = 2; use_maps = true; hot_ops = 1; stickiness = 60 } };
    { name = "dacapo-lusearch"; suite = "DaCapo";
      params = { base with local_work = 10; array_reads = 14; array_writes = 1; runlen = 12; hot_ops = 1; stickiness = 1100 } };
    { name = "dacapo-luindex"; suite = "DaCapo";
      params = { base with local_work = 9; array_reads = 8; array_writes = 6; runlen = 10; locked_ops = 2; stickiness = 1000 } };
    { name = "dacapo-sunflow"; suite = "DaCapo";
      params = { base with local_work = 22; array_reads = 10; array_writes = 2; runlen = 16; stickiness = 1800 } };
    (* xalan: shared DTM tables pounded by all workers *)
    { name = "dacapo-xalan"; suite = "DaCapo";
      params = { base with local_work = 1; partition = false; array_size = 24; array_reads = 8; array_writes = 6; runlen = 2; hot_ops = 5; stickiness = 20 } };
  ]

let msgpass =
  [
    (* bounded producer/consumer queue: heavy monitor contention, close
       protocol exercises the guarded-wait disjunction *)
    { name = "mp-queue"; suite = "MsgPass";
      params = { base with shape = Queue; iters = 30; stickiness = 60 } };
    (* 8-stage hand-off chain through 1-slot cells: long dependence chains *)
    { name = "mp-pipeline"; suite = "MsgPass";
      params = { base with shape = Pipeline; iters = 24; stickiness = 80 } };
    (* 7 producers into 1 aggregator: asymmetric contention on one monitor *)
    { name = "mp-fanin"; suite = "MsgPass";
      params = { base with shape = FanIn; iters = 20; stickiness = 60 } };
    (* generation barrier with rotated partitions: phased all-to-all flow *)
    { name = "mp-barrier"; suite = "MsgPass";
      params = { base with shape = Barrier; iters = 10; array_size = 64; stickiness = 120 } };
  ]

let all : benchmark list = jgf @ stamp @ servers @ dacapo @ msgpass

(* The original 24-workload matrix the paper-figure experiments run over;
   [all] additionally carries the message-passing suite. *)
let paper : benchmark list = jgf @ stamp @ servers @ dacapo

let by_name (n : string) : benchmark option =
  List.find_opt (fun b -> String.lowercase_ascii b.name = String.lowercase_ascii n) all
