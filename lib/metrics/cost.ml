(** Instrumentation cost model.

    The paper measures wall-clock slowdown of JVM bytecode instrumentation
    on an 8-core x86 machine; that is not reproducible inside a simulator,
    so each recording tool is charged for the operations it performs.  Unit
    weights approximate x86/JVM costs (1 unit ~ 1ns for an interpreted
    transition of ~110 units).

    Contention is first-class: per lock stripe (2^10 stripes hashed by
    location, as in Section 4.1) we track a {e convoy level} — how many
    consecutive accesses arrived from alternating threads — and charge
    level-proportional penalties.  This is what separates the tools: Leap's
    synchronized vector append holds the stripe lock across container
    bookkeeping, so under contention every waiter pays the full critical
    section (the paper's up-to-17.85X cases); Light's atomic sections
    protect a single last-write store, so its convoy penalty is an order of
    magnitude smaller.

    Overhead of a run = charged units / (steps * w_step), the paper's
    "X% overhead" notion.  Space is counted separately in long-integer
    units (Log.space_longs and the tools' own accounting). *)

type op =
  | LwUpdate of { level : int }
      (** Light write path: striped atomic section + volatile last-write store *)
  | ValidateRead of { level : int }
      (** Light read path: optimistic read/validate; retries under contention *)
  | RunExtend
      (** O1 fast path: the access extends the thread's own run — no atomic
          section, but still an optimistic read of the shared run descriptor *)
  | RunSwitch of { level : int }
      (** O1 slow path: closing another thread's run and opening ours *)
  | DepAppend   (** thread-local dependence-buffer append *)
  | PrecHit     (** Algorithm 1 line 7: same write as previous read *)
  | SyncVectorAppend of { level : int; resize : bool }
      (** Leap: synchronized global vector append (+ amortized resize) *)
  | CasIncrement of { level : int }  (** Stride write: version CAS *)
  | VersionRead of { level : int }   (** Stride read: hot version-slot load *)
  | LocalAppend                      (** generic thread-local buffer append *)
  | GuardedTick
      (** O2-subsumed site: the transformer weaves only an inlined counter
          increment — no hook dispatch, no atomic, no recording *)
  | CounterTick
      (** per-access instrumentation dispatch + D(t) increment: the fixed
          floor every tool pays at every instrumented access *)

type weights = {
  w_step : int;
  w_lw : int;
  w_lw_level : int;
  w_validate : int;
  w_validate_level : int;
  w_extend : int;
  w_switch : int;
  w_switch_level : int;
  w_dep_append : int;
  w_prec_hit : int;
  w_sync_append : int;
  w_resize : int;
  w_sync_level : int;
  w_cas : int;
  w_cas_level : int;
  w_version : int;
  w_version_level : int;
  w_local_append : int;
  w_guarded_tick : int;
  w_tick : int;
}

let default_weights : weights =
  {
    w_step = 110;
    w_lw = 205;          (* striped lock enter/exit + volatile store + fence *)
    w_lw_level = 42;
    w_validate = 92;     (* two volatile loads bracketing the access *)
    w_validate_level = 30;
    w_extend = 34;
    w_switch = 64;
    w_switch_level = 48;
    w_dep_append = 9;
    w_prec_hit = 4;
    w_sync_append = 820;
    w_resize = 34;
    w_sync_level = 330;
    w_cas = 860;
    w_cas_level = 390;
    w_version = 790;
    w_version_level = 350;
    w_local_append = 7;
    w_guarded_tick = 6;
    (* per-access instrumentation dispatch (hook call + thread-local counter
       + site-table lookup): the overhead floor every tool pays — including
       at O2-subsumed sites, where it is the only remaining cost *)
    w_tick = 30;
  }

let cost ?(w = default_weights) (op : op) : int =
  match op with
  | LwUpdate { level } -> w.w_lw + (level * w.w_lw_level)
  | ValidateRead { level } -> w.w_validate + (level * w.w_validate_level)
  | RunExtend -> w.w_extend
  | RunSwitch { level } -> w.w_switch + (level * w.w_switch_level)
  | DepAppend -> w.w_dep_append
  | PrecHit -> w.w_prec_hit
  | SyncVectorAppend { level; resize } ->
    w.w_sync_append + (level * w.w_sync_level) + if resize then w.w_resize else 0
  | CasIncrement { level } -> w.w_cas + (level * w.w_cas_level)
  | VersionRead { level } -> w.w_version + (level * w.w_version_level)
  | LocalAppend -> w.w_local_append
  | GuardedTick -> w.w_guarded_tick
  | CounterTick -> w.w_tick

(** Mutable accumulator shared by a tool's hooks during one run. *)
type meter = {
  mutable units : int;
  mutable ops : int;
  weights : weights;
}

let meter ?(weights = default_weights) () = { units = 0; ops = 0; weights }

(** Zero the accumulator for a recycled recorder's next session (weights are
    part of the meter's identity and are retained). *)
let reset_meter (m : meter) : unit =
  m.units <- 0;
  m.ops <- 0

(** Snapshot a meter whose accumulator will keep mutating (a recycled
    recorder's recording keeps the values of {e its} session). *)
let copy_meter (m : meter) : meter = { m with units = m.units }

let charge (m : meter) (op : op) : unit =
  m.units <- m.units + cost ~w:m.weights op;
  m.ops <- m.ops + 1

(* Direct charge entry points for the recording fast path: equivalent to
   [charge m (Op {...})] but without constructing the [op] block, so a hot
   per-access charge allocates nothing.  Weights are read from the meter, so
   units match [cost] exactly. *)

let[@inline] charge_units (m : meter) (u : int) : unit =
  m.units <- m.units + u;
  m.ops <- m.ops + 1

let[@inline] charge_tick (m : meter) : unit = charge_units m m.weights.w_tick

let[@inline] charge_guarded_tick (m : meter) : unit =
  charge_units m m.weights.w_guarded_tick

let[@inline] charge_extend (m : meter) : unit = charge_units m m.weights.w_extend

let[@inline] charge_switch (m : meter) ~(level : int) : unit =
  charge_units m (m.weights.w_switch + (level * m.weights.w_switch_level))

let[@inline] charge_lw (m : meter) ~(level : int) : unit =
  charge_units m (m.weights.w_lw + (level * m.weights.w_lw_level))

let[@inline] charge_validate (m : meter) ~(level : int) : unit =
  charge_units m (m.weights.w_validate + (level * m.weights.w_validate_level))

let[@inline] charge_dep_append (m : meter) : unit =
  charge_units m m.weights.w_dep_append

let[@inline] charge_prec_hit (m : meter) : unit =
  charge_units m m.weights.w_prec_hit

(** Recording overhead relative to the uninstrumented run, as a fraction
    (0.44 = 44%), given the interpreter step count of the run. *)
let overhead (m : meter) ~(steps : int) : float =
  if steps = 0 then 0.0
  else float_of_int m.units /. float_of_int (steps * m.weights.w_step)

(* ------------------------------------------------------------------ *)
(* Lock striping with convoy tracking                                   *)
(* ------------------------------------------------------------------ *)

(* Each stripe remembers its last [window] accessor thread ids; the convoy
   level is the number of *other* distinct threads in that window — an
   estimate of how many cores are pulling the stripe's cache line. *)

let window = 8

type stripes = {
  ring : int array;   (* nstripes * window recent tids, -1 = empty *)
  pos : int array;
}

let nstripes = 1024

let stripes () = { ring = Array.make (nstripes * window) (-1); pos = Array.make nstripes 0 }

(** Forget all convoy history (capacity retained): a recycled recorder's next
    session must see exactly the contention state a fresh recorder would. *)
let reset_stripes (s : stripes) : unit =
  Array.fill s.ring 0 (Array.length s.ring) (-1);
  Array.fill s.pos 0 (Array.length s.pos) 0

let stripe_of (l : Runtime.Loc.t) : int = Runtime.Loc.hash l land (nstripes - 1)

(** Record an access to [l] by [tid]; returns the stripe's convoy level
    (0 = uncontended: no other thread in the recent window). *)
let touch (s : stripes) (l : Runtime.Loc.t) ~(tid : int) : int =
  let i = stripe_of l in
  let base = i * window in
  s.ring.(base + s.pos.(i)) <- tid;
  s.pos.(i) <- (s.pos.(i) + 1) mod window;
  (* distinct other threads in the window *)
  let level = ref 0 in
  for j = 0 to window - 1 do
    let t = s.ring.(base + j) in
    if t >= 0 && t <> tid then begin
      (* count only first occurrence *)
      let dup = ref false in
      for k = 0 to j - 1 do
        if s.ring.(base + k) = t then dup := true
      done;
      if not !dup then incr level
    end
  done;
  !level
