(** The [light] command-line tool: parse, analyze, run, record, solve and
    replay concurrent programs written in the subject language (.cl files).

    Typical session:
    {v
      light run prog.cl --seed 3
      light analyze prog.cl
      light record prog.cl --seed 3 -o prog.log
      light replay prog.cl prog.log
      light bugs                # reproduce the 8-bug suite (Figure 6)
      light weave prog.cl       # show the instrumented source
    v} *)

open Cmdliner

let read_program path =
  let p = Lang.Parser.parse_file path in
  match Lang.Check.validate p with
  | [] -> Ok p
  | errs ->
    Error (String.concat "\n" (List.map Lang.Check.error_to_string errs))

let or_die = function
  | Ok x -> x
  | Error msg ->
    prerr_endline msg;
    exit 1

let sched_of ~seed ~stickiness =
  if stickiness <= 1 then Runtime.Sched.random ~seed
  else Runtime.Sched.sticky ~seed ~stickiness

let print_outcome (o : Runtime.Interp.outcome) =
  List.iter
    (fun (tid, lines) ->
      List.iter (fun l -> Printf.printf "[thread %d] %s\n" tid l) lines)
    o.outputs;
  List.iter
    (fun (c : Runtime.Interp.crash) ->
      Printf.printf "!! thread %d crashed at line %d (D=%d): %s\n" c.tid c.line c.c c.msg)
    o.crashes;
  (match o.status with
  | Runtime.Interp.AllFinished -> ()
  | Deadlock ts ->
    Printf.printf "!! deadlock: threads %s blocked\n"
      (String.concat "," (List.map string_of_int ts))
  | GateStuck _ -> print_endline "!! replay gate stuck (schedule infeasible)"
  | StepLimit -> print_endline "!! step limit exceeded");
  Printf.printf "(%d steps, %d threads)\n" o.steps (List.length o.counters)

(* ---- common args ---- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM.cl" ~doc:"Subject program")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler random seed")

let stick_arg =
  Arg.(value & opt int 8 & info [ "stickiness" ] ~doc:"Scheduler run-length (1 = uniform random)")

let variant_conv =
  Arg.enum
    [ ("basic", Light_core.Light.v_basic); ("o1", Light_core.Light.v_o1);
      ("both", Light_core.Light.v_both) ]

let variant_arg =
  Arg.(value & opt variant_conv Light_core.Light.v_both
       & info [ "variant" ] ~doc:"Recorder variant: basic | o1 | both")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ]
           ~doc:
             "Worker domains for batch experiments (0 = honor LIGHT_JOBS, \
              else one per core capped at 8).  Results are merged in job \
              order, so output is identical for any value.")

(* 0 = the shared default pool (sized from LIGHT_JOBS / core count) *)
let pool_of jobs =
  if jobs <= 0 then Engine.Pool.get_default () else Engine.Pool.create ~size:jobs ()

(* ---- subcommands ---- *)

let run_cmd =
  let run file seed stickiness trace =
    let p = or_die (read_program file) in
    let plan = (Instrument.Transformer.transform p).plan in
    let o =
      Runtime.Interp.run ~plan ~collect_trace:trace ~sched:(sched_of ~seed ~stickiness) p
    in
    print_outcome o;
    if trace then
      List.iter
        (fun a -> Format.printf "%a@." Runtime.Event.pp_access a)
        o.trace
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the shared-access trace") in
  Cmd.v (Cmd.info "run" ~doc:"Execute a program under a seeded scheduler")
    Term.(const run $ file_arg $ seed_arg $ stick_arg $ trace)

(* [analyze], [disasm]: the positional target is a .cl file or a built-in
   workload name. *)
let resolve_target (target : string) : Lang.Ast.program =
  if Sys.file_exists target then or_die (read_program target)
  else
    match Workloads.by_name target with
    | Some bm -> Workloads.program bm
    | None ->
      or_die
        (Error
           (Printf.sprintf
              "%s: neither a .cl file nor a workload name\nworkloads: %s"
              target
              (String.concat " "
                 (List.map (fun (b : Workloads.benchmark) -> b.name) Workloads.all))))

let analyze_cmd =
  let run target weave json =
    let p = resolve_target target in
    let tr_c = Instrument.Transformer.transform ~precision:Analysis.Analyze.Coarse p in
    let tr_s = Instrument.Transformer.transform ~precision:Analysis.Analyze.Sharp p in
    let a = tr_s.analysis in
    if json then begin
      print_endline
        (Analysis.Lint.Json.to_string
           (Analysis.Lint.analysis_json a ~instrumented:tr_s.instrumented_sites
              ~guarded:tr_s.guarded_sites ~total_sites:tr_s.total_access_sites));
      exit 0
    end;
    print_endline (Analysis.Analyze.summary a);
    Printf.printf "\n  %-18s %-6s %-10s sites (lines)\n" "target" "shared" "guard";
    Analysis.Analyze.TM.iter
      (fun _ (tc : Analysis.Analyze.target_class) ->
        Printf.printf "  %-18s %-6b %-10s %s\n"
          (Analysis.Sites.target_to_string tc.target)
          tc.shared
          (match tc.guarded_by with Some l -> l | None -> "-")
          (String.concat ","
             (List.map (fun (i : Analysis.Sites.info) -> string_of_int i.line) tc.sites)))
      a.targets;
    if a.races <> [] then begin
      Printf.printf "\npotential races (shared, unguarded, >=1 write):\n";
      List.iter
        (fun (r : Analysis.Analyze.race_pair) ->
          Printf.printf "  %s: line %d <-> line %d\n"
            (Analysis.Sites.target_to_string r.on) r.t1.line r.t2.line)
        a.races
    end;
    (* old-vs-new elision: sites the coarse name-bucket plan instruments that
       points-to + escape + must-alias locks prove safe to skip *)
    let elided =
      List.rev
        (Lang.Ast.fold_stmts
           (fun acc (s : Lang.Ast.stmt) ->
             if
               (Instrument.Transformer.is_read_site s
               || Instrument.Transformer.is_write_site s)
               && tr_c.plan.Runtime.Plan.shared_site s.sid
               && not (tr_s.plan.Runtime.Plan.shared_site s.sid)
             then s :: acc
             else acc)
           [] p)
    in
    Printf.printf
      "\ninstrumented sites: %d coarse -> %d sharp (of %d); lock-guarded (O2): \
       %d -> %d\n"
      tr_c.instrumented_sites tr_s.instrumented_sites tr_s.total_access_sites
      tr_c.guarded_sites tr_s.guarded_sites;
    List.iter
      (fun (s : Lang.Ast.stmt) ->
        Printf.printf "  newly elided: line %-4d %s\n" s.line
          (Lang.Pp.stmt_to_string s))
      elided;
    if weave then begin
      Printf.printf "\ninstrumented source (sharp plan):\n";
      Format.printf "%a@." Lang.Pp.pp_program (Instrument.Transformer.weave tr_s p)
    end
  in
  let target_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROGRAM" ~doc:"A .cl file or a built-in workload name")
  in
  let weave_flag =
    Arg.(value & flag & info [ "weave" ] ~doc:"Also print the woven source under the sharp plan")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the full classification and race list as JSON (lint schema)")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static analysis: classification, guards, races, coarse-vs-sharp elision")
    Term.(const run $ target_arg $ weave_flag $ json_flag)

(* [lint] additionally accepts the Figure-6 bug names, so the race report
   can be pointed straight at the paper's defects *)
let lint_cmd =
  let resolve (target : string) : Lang.Ast.program =
    if Sys.file_exists target then or_die (read_program target)
    else
      match Workloads.by_name target with
      | Some bm -> Workloads.program bm
      | None -> (
        match Bugs.Defs.by_name target with
        | Some b -> Lang.Check.validate_exn (Lang.Parser.parse_program (b.source 1))
        | None ->
          or_die
            (Error
               (Printf.sprintf
                  "%s: not a .cl file, workload or bug name\nworkloads: %s\nbugs: %s"
                  target
                  (String.concat " "
                     (List.map (fun (b : Workloads.benchmark) -> b.name) Workloads.all))
                  (String.concat " "
                     (List.map (fun (b : Bugs.Defs.bug) -> b.name) Bugs.Defs.all)))))
  in
  let run target json =
    let p = resolve target in
    let a = Analysis.Analyze.analyze p in
    if json then
      print_endline (Analysis.Lint.Json.to_string (Analysis.Lint.report_json a))
    else print_string (Analysis.Lint.report a)
  in
  let target_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROGRAM"
             ~doc:"A .cl file, a built-in workload name, or a Figure-6 bug name")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Ranked static race report: site pairs that survive every elision \
          argument, with MHP witnesses and Eraser lockset evidence")
    Term.(const run $ target_arg $ json_flag)

(* per-site dynamic hit counts, hottest first, so perf work can target
   actual hot sites rather than geomeans.  In epoch mode the counts are
   the recorder's cumulative totals across every sealed epoch. *)
let print_profile (p : Lang.Ast.program) (site_hits : int array) (topn : int) =
  let stmts : (int, Lang.Ast.stmt) Hashtbl.t = Hashtbl.create 64 in
  Lang.Ast.fold_stmts (fun () (s : Lang.Ast.stmt) -> Hashtbl.replace stmts s.sid s) () p;
  let sites = ref [] in
  Array.iteri
    (fun sid hits -> if hits > 0 then sites := (sid, hits) :: !sites)
    site_hits;
  let sites = List.sort (fun (_, a) (_, b) -> compare (b : int) a) !sites in
  let total = List.fold_left (fun a (_, h) -> a + h) 0 sites in
  Printf.printf "\nsite profile: %d instrumented accesses over %d hot sites"
    total (List.length sites);
  if List.length sites > topn then Printf.printf " (top %d shown)" topn;
  Printf.printf "\n";
  List.iteri
    (fun i (sid, hits) ->
      if i < topn then
        match Hashtbl.find_opt stmts sid with
        | Some s ->
          Printf.printf "  %8d  sid %-4d line %-4d %s\n" hits sid s.line
            (Lang.Pp.stmt_to_string s)
        | None -> Printf.printf "  %8d  sid %-4d (sync ghost)\n" hits sid)
    sites

let disasm_cmd =
  let run target =
    let p = resolve_target target in
    let bp = Lang.Compile.lower (Runtime.Interp.compile p) in
    (* sid -> source statement, the same mapping --profile prints *)
    let stmts : (int, Lang.Ast.stmt) Hashtbl.t = Hashtbl.create 64 in
    Lang.Ast.fold_stmts
      (fun () (s : Lang.Ast.stmt) -> Hashtbl.replace stmts s.sid s)
      () p;
    let annot sid =
      Option.map
        (fun (s : Lang.Ast.stmt) ->
          (* compound statements render their whole body: keep the head line *)
          let txt = Lang.Pp.stmt_to_string s in
          match String.index_opt txt '\n' with
          | Some i -> String.sub txt 0 i ^ " ..."
          | None -> txt)
        (Hashtbl.find_opt stmts sid)
    in
    print_string (Lang.Bytecode.disassemble ~annot bp)
  in
  let target_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROGRAM" ~doc:"A .cl file or a built-in workload name")
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:
         "Print the register-bytecode listing (site ids, source lines, \
          statement boundaries) so hot-site profiles map onto the \
          instruction stream")
    Term.(const run $ target_arg)

let record_cmd =
  let run file seed stickiness variant out profile epoch =
    let p = or_die (read_program file) in
    if epoch > 0 then begin
      (* epoch mode: checkpoint + seal every [epoch] steps, write v4 *)
      let pp = Light_core.Light.prepare ~variant p in
      let r =
        Light_core.Epoch.record_epochs ~sched:(sched_of ~seed ~stickiness)
          ~epoch_len:epoch pp
      in
      print_outcome r.er_outcome;
      let longs =
        List.fold_left
          (fun a (e : Light_core.Epoch.epoch) ->
            a + Light_core.Log.space_longs e.ep_log)
          0 r.er_epochs
      in
      Printf.printf "recorded %d epoch(s) of %d steps, %d longs total\n"
        (List.length r.er_epochs) epoch longs;
      List.iter
        (fun (e : Light_core.Epoch.epoch) ->
          Printf.printf
            "  epoch %d: steps %d..%d, %d deps + %d ranges, clock %d\n" e.ep_idx
            e.ep_start_steps e.ep_steps
            (List.length e.ep_log.Light_core.Log.deps)
            (List.length e.ep_log.Light_core.Log.ranges)
            e.ep_clock)
        r.er_epochs;
      (match profile with
      | None -> ()
      | Some topn -> print_profile p r.er_site_hits topn);
      match out with
      | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Light_core.Epoch.to_string_v4 r));
        Printf.printf "v4 log written to %s\n" path
      | None -> ()
    end
    else begin
      let r = Light_core.Light.record ~variant ~sched:(sched_of ~seed ~stickiness) p in
      print_outcome r.outcome;
      Printf.printf "recorded %d deps + %d ranges = %d longs (overhead %.0f%%)\n"
        (List.length r.log.deps) (List.length r.log.ranges) r.space_longs
        (100. *. r.overhead);
      (match profile with
      | None -> ()
      | Some topn -> print_profile p r.site_hits topn);
      match out with
      | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Light_core.Log.to_string r.log));
        Printf.printf "log written to %s\n" path
      | None -> ()
    end
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Write the log here")
  in
  let profile =
    Arg.(
      value
      & opt ~vopt:(Some 10) (some int) None
      & info [ "profile" ] ~docv:"N"
          ~doc:"Print per-site hit counts and the $(docv) hottest instrumented sites")
  in
  let epoch =
    Arg.(
      value & opt int 0
      & info [ "epoch" ] ~docv:"N"
          ~doc:
            "Epoch-based recording: checkpoint the interpreter and seal the \
             log every $(docv) steps, writing format v4 (0 = monolithic v3)")
  in
  Cmd.v (Cmd.info "record" ~doc:"Record a run with the Light recorder")
    Term.(const run $ file_arg $ seed_arg $ stick_arg $ variant_arg $ out $ profile $ epoch)

let replay_cmd =
  let print_solve (report : Light_core.Replayer.solve_report) =
    Printf.printf "generated %d noninterference pairs -> %d clauses (%d entailed, %d unit, %d dedup)\n"
      report.gen_stats.n_pairs report.n_clauses report.gen_stats.n_pruned
      report.gen_stats.n_unit report.gen_stats.n_dedup;
    Printf.printf "solved %d vars, %d clauses in %.3fs (%d decisions, %d backtracks, %d conflicts)\n"
      report.n_vars report.n_clauses report.solve_time_s report.solver_stats.decisions
      report.solver_stats.backtracks report.solver_stats.theory_conflicts
  in
  let replay_chunks (p : Lang.Ast.program) (f : Light_core.Epoch.file) ks =
    let variant = { Light_core.Light.o1 = f.f_o1; o2 = f.f_o2 } in
    let pp = Light_core.Light.prepare ~variant p in
    List.iter
      (fun k ->
        match List.nth_opt f.f_chunks k with
        | None ->
          or_die
            (Error (Printf.sprintf "no epoch %d (log has %d)" k (List.length f.f_chunks)))
        | Some ck -> (
          Printf.printf "== epoch %d (steps %d..%d) ==\n" ck.Light_core.Epoch.ck_idx
            ck.ck_start_steps ck.ck_steps;
          match Light_core.Epoch.replay_chunk pp ck with
          | Error e -> or_die (Error e)
          | Ok rr ->
            print_solve rr.rr_report;
            Printf.printf "replayed %d step(s)\n" rr.rr_steps;
            List.iter
              (fun (tid, lines) ->
                List.iter (fun l -> Printf.printf "[thread %d] %s\n" tid l) lines)
              rr.rr_obs.Runtime.Interp.obs_outputs))
      ks
  in
  let run file logfile epoch =
    let p = or_die (read_program file) in
    let txt = In_channel.with_open_text logfile In_channel.input_all in
    if Light_core.Epoch.is_v4 txt then begin
      let f = Light_core.Epoch.of_string_v4 txt in
      let ks =
        match epoch with
        | Some k -> [ k ]
        | None -> List.mapi (fun i _ -> i) f.f_chunks
      in
      replay_chunks p f ks
    end
    else begin
      (match epoch with
      | Some _ ->
        or_die (Error "--epoch requires a v4 log (record with --epoch N)")
      | None -> ());
      let log = Light_core.Log.of_string txt in
      let report = Light_core.Replayer.solve log in
      match report.schedule with
      | None ->
        or_die
          (Error
             (match report.result_kind with
             | Light_core.Replayer.SolverAborted -> "solver budget exhausted"
             | _ -> "constraint system unsatisfiable"))
      | Some sch ->
        print_solve report;
        let plan = (Instrument.Transformer.transform p).plan in
        let o = Light_core.Replayer.replay p ~plan sch in
        print_outcome o
    end
  in
  let log_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"LOG" ~doc:"Recorded log file")
  in
  let epoch =
    Arg.(
      value & opt (some int) None
      & info [ "epoch" ] ~docv:"K"
          ~doc:
            "Replay only epoch $(docv) of a v4 log, from its checkpoint — \
             O(epoch) work (default: every epoch in order)")
  in
  Cmd.v (Cmd.info "replay" ~doc:"Compute a schedule from a log and replay it")
    Term.(const run $ file_arg $ log_arg $ epoch)

let roundtrip_cmd =
  let run file seed stickiness variant =
    let p = or_die (read_program file) in
    match
      Light_core.Light.record_and_replay ~variant ~sched:(sched_of ~seed ~stickiness) p
    with
    | Error e -> or_die (Error e)
    | Ok (r, rr) ->
      Printf.printf "original:\n";
      print_outcome r.outcome;
      Printf.printf "replay:\n";
      print_outcome rr.replay_outcome;
      if rr.faithful = [] then print_endline "REPLAY FAITHFUL (Theorem 1 observables match)"
      else begin
        print_endline "REPLAY MISMATCH:";
        List.iter (fun m -> print_endline ("  " ^ m)) rr.faithful
      end
  in
  Cmd.v (Cmd.info "roundtrip" ~doc:"Record, solve, replay and verify determinism")
    Term.(const run $ file_arg $ seed_arg $ stick_arg $ variant_arg)

let weave_cmd =
  let run file =
    let p = or_die (read_program file) in
    let tr = Instrument.Transformer.transform p in
    Printf.printf "%d/%d sites instrumented, %d lock-guarded (O2)\n\n"
      tr.instrumented_sites tr.total_access_sites tr.guarded_sites;
    Format.printf "%a@." Lang.Pp.pp_program (Instrument.Transformer.weave tr p)
  in
  Cmd.v (Cmd.info "weave" ~doc:"Show the instrumented source view")
    Term.(const run $ file_arg)

let bugs_cmd =
  let run tries jobs =
    Report.Experiments.fig6 ~tries ~pool:(pool_of jobs) () Format.std_formatter
  in
  let tries = Arg.(value & opt int 60 & info [ "tries" ] ~doc:"Trigger search budget") in
  Cmd.v (Cmd.info "bugs" ~doc:"Reproduce the 8-bug suite (Figure 6)")
    Term.(const run $ tries $ jobs_arg)

let bench_cmd =
  let run jobs =
    let ms = Report.Experiments.measure_all ~pool:(pool_of jobs) () in
    Report.Experiments.fig4 ms Format.std_formatter;
    Report.Experiments.fig5 ms Format.std_formatter;
    Report.Experiments.fig7 ms Format.std_formatter
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run the 24-benchmark overhead comparison (Figures 4/5/7)")
    Term.(const run $ jobs_arg)

(* ---- schedule-space exploration ---- *)

let context_of ~seed ~stickiness file =
  let p = or_die (read_program file) in
  let make_sched () = sched_of ~seed ~stickiness in
  (p, or_die (Explore.make_context ~make_sched p))

let explore_cmd =
  let run file seed stickiness limit jobs =
    let _, ctx = context_of ~seed ~stickiness file in
    let results = Explore.explore ~pool:(pool_of jobs) ~limit ctx in
    Printf.printf "%d flip candidate(s) from the recorded run:\n\n" (List.length results);
    List.iter
      (fun (r : Explore.explored) ->
        Format.printf "  %-10s %a  (solve %.4fs)%s@."
          (Explore.verdict_name r.ex_verdict)
          Explore.pp_flip r.ex_flip r.ex_solve_s
          (if r.ex_validate <> [] then "  INVALID: " ^ String.concat "; " r.ex_validate
           else "");
        match r.ex_verdict with
        | Explore.Crashed cs ->
          List.iter
            (fun (c : Runtime.Interp.crash) ->
              Printf.printf "      !! thread %d crashes at line %d: %s\n" c.tid c.line c.msg)
            cs
        | Explore.Divergent ds ->
          List.iteri (fun i d -> if i < 3 then Printf.printf "      ~ %s\n" d) ds
        | _ -> ())
      results;
    let count v =
      List.length
        (List.filter (fun (r : Explore.explored) ->
             Explore.verdict_name r.ex_verdict = v) results)
    in
    Printf.printf
      "\n%d same, %d divergent, %d crashed, %d stuck, %d infeasible, %d aborted\n"
      (count "same") (count "divergent") (count "crashed") (count "stuck")
      (count "infeasible") (count "aborted")
  in
  let limit =
    Arg.(value & opt int 32 & info [ "limit" ] ~doc:"Max flip candidates to evaluate")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Record one run, then enumerate feasible alternative schedules by \
          flipping racy access pairs and re-solving the constraint system")
    Term.(const run $ file_arg $ seed_arg $ stick_arg $ limit $ jobs_arg)

let hunt_cmd =
  let run file seed stickiness limit depth out jobs =
    let _, ctx = context_of ~seed ~stickiness file in
    if ctx.recording.outcome.crashes <> [] then
      or_die
        (Error
           "the recorded run already crashes; hunt starts from a passing run \
            (try another --seed)");
    let hr = Explore.hunt ~pool:(pool_of jobs) ~limit ~depth ctx in
    match hr.hr_repro with
    | None ->
      Printf.printf "no crashing schedule found (%d flip sets tried)\n" hr.hr_tried
    | Some rp ->
      Printf.printf "found a crashing schedule after %d flip set(s); minimal flips:\n"
        hr.hr_tried;
      List.iter (fun f -> Format.printf "  %a@." Explore.pp_flip f) rp.rp_flips;
      (match hr.hr_outcome with
      | Some o ->
        List.iter
          (fun (c : Runtime.Interp.crash) ->
            Printf.printf "  !! thread %d crashes at line %d: %s\n" c.tid c.line c.msg)
          o.crashes
      | None -> ());
      Out_channel.with_open_text out (fun oc ->
          Out_channel.output_string oc (Explore.reproducer_to_string rp));
      Printf.printf "reproducer written to %s\n" out
  in
  let limit =
    Arg.(value & opt int 32 & info [ "limit" ] ~doc:"Max flip candidates per level")
  in
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~doc:"Max flips combined in one schedule")
  in
  let out =
    Arg.(value & opt string "repro.light" & info [ "o"; "output" ] ~doc:"Reproducer file")
  in
  Cmd.v
    (Cmd.info "hunt"
       ~doc:
         "Flaky-test harness: record a passing run, search schedule space by \
          flip distance for a failing schedule, emit a minimal replayable \
          reproducer")
    Term.(const run $ file_arg $ seed_arg $ stick_arg $ limit $ depth $ out $ jobs_arg)

let serve_cmd =
  let run target sessions seed stickiness variant engine steps queue jobs
      no_recycle reject =
    let p = resolve_target target in
    let pp = Light_core.Light.prepare ~variant p in
    let sess =
      Array.init sessions (fun i ->
          Service.session ~label:(Printf.sprintf "%s#%d" target i) ~engine
            ~seed:(seed + i) ~max_steps:steps
            ~sched:(fun () -> sched_of ~seed:(seed + i) ~stickiness)
            pp)
    in
    let results, stats =
      Service.run ~pool:(pool_of jobs) ~queue_capacity:queue
        ~recycle:(not no_recycle)
        ~on_full:(if reject then `Reject else `Park)
        sess
    in
    (* the corpus digest hashes every per-session digest in session order:
       one line of determinism evidence for any worker/shard/recycle config *)
    let corpus_digest =
      Digest.to_hex
        (Digest.string
           (String.concat ""
              (Array.to_list (Array.map (fun r -> r.Service.sr_digest) results))))
    in
    Printf.printf "%d sessions: %d done, %d rejected, %d failed\n"
      stats.Service.st_sessions stats.Service.st_done stats.Service.st_rejected
      stats.Service.st_failed;
    Printf.printf "corpus digest %s (deterministic for any --jobs)\n" corpus_digest;
    Array.iter
      (fun (r : Service.result_) ->
        match r.Service.sr_status with
        | Service.Failed msg -> Printf.printf "!! %s: %s\n" r.Service.sr_label msg
        | _ -> ())
      results;
    if Sys.getenv_opt "LIGHT_TIMINGS" = Some "1" then begin
      let lat = Service.latencies results in
      Printf.printf
        "workers %d, recorders created %d, inline runs %d, queue peak %d\n"
        stats.Service.st_workers stats.Service.st_recorders_created
        stats.Service.st_inline_runs
        stats.Service.st_queue.Engine.Bqueue.bq_peak;
      Printf.printf "latency p50 %.2fms, p99 %.2fms\n"
        (1000. *. Service.percentile 50. lat)
        (1000. *. Service.percentile 99. lat)
    end;
    if stats.Service.st_failed > 0 then exit 1
  in
  let target_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROGRAM" ~doc:"A .cl file or a built-in workload name")
  in
  let sessions =
    Arg.(value & opt int 100 & info [ "sessions" ] ~doc:"Number of sessions to record")
  in
  let steps =
    Arg.(value & opt int 500
         & info [ "steps" ] ~doc:"Per-session recording window (interpreter steps)")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~doc:"Submission queue capacity")
  in
  let engine_arg =
    Arg.(value
         & opt (enum [ ("tree", Runtime.Vm.Tree); ("vm", Runtime.Vm.Bytecode) ])
             Runtime.Vm.Bytecode
         & info [ "engine" ] ~doc:"Execution engine: tree | vm")
  in
  let no_recycle =
    Arg.(value & flag
         & info [ "no-recycle" ] ~doc:"Fresh recorder per session (no arena reuse)")
  in
  let reject =
    Arg.(value & flag
         & info [ "reject" ]
             ~doc:"Reject sessions when the queue is full instead of parking \
                   the submitter")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Drive many recording sessions of one program through the record \
          service (bounded queue, recycled recorder arenas); per-session \
          logs are byte-identical for any worker count")
    Term.(const run $ target_arg $ sessions $ seed_arg $ stick_arg
          $ variant_arg $ engine_arg $ steps $ queue $ jobs_arg $ no_recycle
          $ reject)

let reproduce_cmd =
  let run file repro_file =
    let p = or_die (read_program file) in
    let rp =
      or_die
        (Explore.reproducer_of_string
           (In_channel.with_open_text repro_file In_channel.input_all))
    in
    match Explore.run_reproducer p rp with
    | Error e -> or_die (Error e)
    | Ok o ->
      print_outcome o;
      let got = List.sort compare (List.map (fun (c : Runtime.Interp.crash) -> (c.tid, c.site, c.msg)) o.crashes) in
      if got = List.sort compare rp.rp_expected then
        print_endline "REPRODUCED (crash signature matches the reproducer)"
      else begin
        print_endline "!! crash signature differs from the reproducer";
        exit 1
      end
  in
  let repro_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"REPRO" ~doc:"Reproducer file")
  in
  Cmd.v
    (Cmd.info "reproduce" ~doc:"Replay a reproducer emitted by hunt and check the failure")
    Term.(const run $ file_arg $ repro_arg)

let main =
  Cmd.group
    (Cmd.info "light" ~version:"1.0"
       ~doc:"Light: replay via tightly bounded recording (PLDI 2015)")
    [ run_cmd; analyze_cmd; lint_cmd; disasm_cmd; record_cmd; replay_cmd; roundtrip_cmd;
      weave_cmd; bugs_cmd; bench_cmd; explore_cmd; hunt_cmd; serve_cmd; reproduce_cmd ]

let () = exit (Cmd.eval main)
