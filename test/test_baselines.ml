(* Baseline tool tests: Leap and Stride replay fidelity, Clap's recording /
   scope check / synthesis, Chimera's patching and lock-order replay. *)

open Runtime

let parse src = Lang.Check.validate_exn (Lang.Parser.parse_program src)

let racy = parse {|
  global x; global y;
  fn w1() { x = 1; y = x + 1; x = y * 2; }
  fn w2() { x = 5; y = x + 3; x = y * 7; }
  main { x = 0; y = 0; spawn a = w1(); spawn b = w2(); join a; join b; print x; print y; }
|}

let locked = parse {|
  class C { n; } global c; global l;
  fn w(k) { while (k > 0) { sync (l) { c.n = c.n + 1; } k = k - 1; } }
  main { l = new C; c = new C; c.n = 0;
         spawn a = w(8); spawn b = w(8); join a; join b; print c.n; }
|}

let plan_of p = (Instrument.Transformer.transform p).Instrument.Transformer.plan

(* ------------------------------------------------------------------ *)
(* Leap                                                                 *)
(* ------------------------------------------------------------------ *)

let leap_roundtrip p seed =
  let plan = plan_of p in
  let sched = Sched.sticky ~seed ~stickiness:4 in
  let r = Baselines.Leap.create () in
  let orig = Interp.run ~hooks:(Baselines.Leap.hooks r) ~plan ~sched p in
  let log = Baselines.Leap.finalize r in
  let rep =
    Interp.run
      ~hooks:(Baselines.Leap.replay_hooks log ~syscalls:orig.syscalls)
      ~plan ~sched:(Sched.round_robin ()) p
  in
  (orig, log, rep)

(* the seed x program grid used by the Leap/Stride fidelity tests,
   fanned out through the engine's batch driver *)
let baseline_grid roundtrip =
  List.concat_map (fun seed -> List.map (fun p -> (p, seed)) [ racy; locked ]) [ 1; 2; 3; 4; 5 ]
  |> Engine.Batch.map ~f:(fun (p, seed) -> roundtrip p seed)

let test_leap_faithful () =
  baseline_grid leap_roundtrip
  |> List.iter (fun ((orig : Interp.outcome), _, (rep : Interp.outcome)) ->
         Alcotest.(check bool) "replay finished" true (rep.status = Interp.AllFinished);
         Alcotest.(check (list string)) "faithful" []
           (Interp.replay_matches ~original:orig ~replay:rep))

let test_leap_space_is_one_long_per_access () =
  let orig, log, _ = leap_roundtrip racy 1 in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 orig.counters in
  Alcotest.(check int) "one long per access" total log.space_longs

(* ------------------------------------------------------------------ *)
(* Stride                                                               *)
(* ------------------------------------------------------------------ *)

let stride_roundtrip p seed =
  let plan = plan_of p in
  let sched = Sched.sticky ~seed ~stickiness:4 in
  let r = Baselines.Stride.create () in
  let orig = Interp.run ~hooks:(Baselines.Stride.hooks r) ~plan ~sched p in
  let log = Baselines.Stride.finalize r in
  let rep =
    Interp.run
      ~hooks:(Baselines.Stride.replay_hooks log ~syscalls:orig.syscalls)
      ~plan ~sched:(Sched.round_robin ()) p
  in
  (orig, log, rep)

let test_stride_faithful () =
  baseline_grid stride_roundtrip
  |> List.iter (fun ((orig : Interp.outcome), _, (rep : Interp.outcome)) ->
         Alcotest.(check bool) "replay finished" true (rep.status = Interp.AllFinished);
         Alcotest.(check (list string)) "faithful" []
           (Interp.replay_matches ~original:orig ~replay:rep))

let test_stride_space_half () =
  let orig, log, _ = stride_roundtrip racy 1 in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 orig.counters in
  Alcotest.(check int) "ints count as half-longs" ((total + 1) / 2) log.space_longs

(* ------------------------------------------------------------------ *)
(* Clap                                                                 *)
(* ------------------------------------------------------------------ *)

let test_clap_scope_check () =
  let with_map = parse "global m; main { m = newmap; m{1} = 2; }" in
  let with_opaque = parse "main { x = #hash(3); print x; }" in
  let clean = parse "global x; main { x = 1; print x; }" in
  Alcotest.(check bool) "maps out of scope" true
    (Baselines.Clap.unsupported_constructs with_map <> []);
  Alcotest.(check bool) "opaques out of scope" true
    (Baselines.Clap.unsupported_constructs with_opaque <> []);
  Alcotest.(check (list string)) "linear code in scope" []
    (Baselines.Clap.unsupported_constructs clean)

let test_clap_records_branches () =
  let p = parse "main { i = 0; while (i < 5) { if (i % 2 == 0) { nop; } i = i + 1; } }" in
  let r = Baselines.Clap.create () in
  let outcome = Interp.run ~hooks:(Baselines.Clap.hooks r) ~sched:(Sched.round_robin ()) p in
  let log = Baselines.Clap.finalize r ~outcome in
  (* 6 while evaluations + 5 if evaluations *)
  let total = List.fold_left (fun a (_, b) -> a + Array.length b) 0 log.branches in
  Alcotest.(check int) "branch count" 11 total

let test_clap_synthesis_finds_race () =
  (* two-thread check-then-act crash, linear values: within the fragment *)
  let p =
    parse
      "class S { valid; data; } global sess; global sink;
       fn invalidate() { sess.data = null; sess.valid = 0; }
       fn access() { v = sess.valid; if (v == 1) { d = sess.data; x = d.valid; sink.valid = x; } }
       main { sess = new S; sink = new S; aux = new S; aux.valid = 9;
              sess.valid = 1; sess.data = aux;
              spawn a = access(); spawn b = invalidate(); join a; join b; print 1; }"
  in
  (* find a crashing profile *)
  let rec hunt seed =
    if seed > 60 then None
    else
      let sched = Sched.sticky ~seed ~stickiness:2 in
      let r = Baselines.Clap.create () in
      let o = Interp.run ~hooks:(Baselines.Clap.hooks r) ~sched p in
      if o.crashes <> [] then Some (Baselines.Clap.finalize r ~outcome:o) else hunt (seed + 1)
  in
  match hunt 1 with
  | None -> Alcotest.fail "no crashing profile found"
  | Some log -> (
    match Baselines.Clap.synthesize ~budget:30_000 p log with
    | Baselines.Clap.Reproduced _ -> ()
    | OutOfScope cs -> Alcotest.failf "unexpectedly out of scope: %s" (String.concat "," cs)
    | BudgetExhausted n -> Alcotest.failf "budget exhausted after %d" n
    | NoFailureRecorded -> Alcotest.fail "no failure recorded")

let test_clap_no_failure () =
  let p = parse "global x; main { x = 1; print x; }" in
  let r = Baselines.Clap.create () in
  let o = Interp.run ~hooks:(Baselines.Clap.hooks r) ~sched:(Sched.round_robin ()) p in
  let log = Baselines.Clap.finalize r ~outcome:o in
  Alcotest.(check bool) "no failure to synthesize" true
    (Baselines.Clap.synthesize p log = Baselines.Clap.NoFailureRecorded)

(* ------------------------------------------------------------------ *)
(* Chimera                                                              *)
(* ------------------------------------------------------------------ *)

let test_chimera_patches_races () =
  let pi = Baselines.Chimera.patch racy in
  Alcotest.(check bool) "one patch group" true (List.length pi.groups >= 1);
  let fns = List.concat_map snd pi.groups in
  Alcotest.(check bool) "both methods grouped" true
    (List.mem "w1" fns && List.mem "w2" fns);
  (* the patched program validates and runs *)
  let patched = Lang.Check.validate_exn pi.patched in
  let o = Interp.run ~sched:(Sched.round_robin ()) patched in
  Alcotest.(check bool) "patched program runs" true (o.status = Interp.AllFinished)

let test_chimera_no_patch_when_locked () =
  let pi = Baselines.Chimera.patch locked in
  Alcotest.(check int) "no groups for race-free code" 0 (List.length pi.groups)

let test_chimera_patched_is_race_free () =
  let pi = Baselines.Chimera.patch racy in
  let a = Analysis.Analyze.analyze pi.patched in
  (* the patch serializes all method-level races; what may remain are
     conservative reports against the main body (post-join reads the
     analysis cannot order), which Chimera cannot patch either *)
  let fn_races =
    List.filter
      (fun (r : Analysis.Analyze.race_pair) -> r.t1.fn <> None && r.t2.fn <> None)
      a.races
  in
  Alcotest.(check int) "patch eliminates method races" 0 (List.length fn_races)

let test_chimera_replay () =
  let pi = Baselines.Chimera.patch racy in
  let plan = plan_of pi.patched in
  let sched = Sched.sticky ~seed:3 ~stickiness:4 in
  let r = Baselines.Chimera.create_recorder () in
  let orig = Interp.run ~hooks:(Baselines.Chimera.recorder_hooks r) ~plan ~sched pi.patched in
  let log = Baselines.Chimera.finalize_recorder r ~outcome:orig in
  let rep =
    Interp.run ~hooks:(Baselines.Chimera.replay_hooks log) ~plan ~sched:(Sched.round_robin ())
      pi.patched
  in
  Alcotest.(check bool) "replay finished" true (rep.status = Interp.AllFinished);
  Alcotest.(check (list string)) "race-free replay deterministic" []
    (Interp.replay_matches ~original:orig ~replay:rep)

let () =
  Alcotest.run "baselines"
    [
      ( "leap",
        [
          Alcotest.test_case "replay fidelity" `Quick test_leap_faithful;
          Alcotest.test_case "space accounting" `Quick test_leap_space_is_one_long_per_access;
        ] );
      ( "stride",
        [
          Alcotest.test_case "replay fidelity" `Quick test_stride_faithful;
          Alcotest.test_case "half-long accounting" `Quick test_stride_space_half;
        ] );
      ( "clap",
        [
          Alcotest.test_case "solver-fragment check" `Quick test_clap_scope_check;
          Alcotest.test_case "branch recording" `Quick test_clap_records_branches;
          Alcotest.test_case "synthesis reproduces a race" `Quick test_clap_synthesis_finds_race;
          Alcotest.test_case "no failure recorded" `Quick test_clap_no_failure;
        ] );
      ( "chimera",
        [
          Alcotest.test_case "patching groups racy methods" `Quick test_chimera_patches_races;
          Alcotest.test_case "locked code unpatched" `Quick test_chimera_no_patch_when_locked;
          Alcotest.test_case "patched code race-free" `Quick test_chimera_patched_is_race_free;
          Alcotest.test_case "lock-order replay" `Quick test_chimera_replay;
        ] );
    ]
