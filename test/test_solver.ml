(* Difference-logic solver tests: incremental graph, DPLL(T) search,
   and qcheck properties (models satisfy constraints; cycles are unsat). *)

open Dlsolver

(* ------------------------------------------------------------------ *)
(* Diff_graph                                                           *)
(* ------------------------------------------------------------------ *)

let test_graph_feasible () =
  let g = Diff_graph.create 3 in
  (* x0 - x1 <= -1, x1 - x2 <= -1 *)
  Alcotest.(check bool) "edge1 ok" true
    (Diff_graph.add_constraint g ~u:0 ~v:1 ~k:(-1) ~tag:0 = Ok ());
  Alcotest.(check bool) "edge2 ok" true
    (Diff_graph.add_constraint g ~u:1 ~v:2 ~k:(-1) ~tag:1 = Ok ());
  let d i = Diff_graph.potential g i in
  Alcotest.(check bool) "potential satisfies" true (d 0 - d 1 <= -1 && d 1 - d 2 <= -1)

let test_graph_negative_cycle () =
  let g = Diff_graph.create 2 in
  ignore (Diff_graph.add_constraint g ~u:0 ~v:1 ~k:(-1) ~tag:7);
  (match Diff_graph.add_constraint g ~u:1 ~v:0 ~k:(-1) ~tag:8 with
  | Error c ->
    Alcotest.(check bool) "reports both tags" true
      (List.mem 7 c.Diff_graph.tags && List.mem 8 c.Diff_graph.tags);
    Alcotest.(check bool) "cycle walk complete" true c.Diff_graph.complete
  | Ok () -> Alcotest.fail "cycle not detected")

let test_graph_zero_cycle_ok () =
  let g = Diff_graph.create 2 in
  Alcotest.(check bool) "x0<=x1" true (Diff_graph.add_constraint g ~u:0 ~v:1 ~k:0 ~tag:0 = Ok ());
  Alcotest.(check bool) "x1<=x0" true (Diff_graph.add_constraint g ~u:1 ~v:0 ~k:0 ~tag:1 = Ok ())

let test_graph_push_pop () =
  let g = Diff_graph.create 3 in
  ignore (Diff_graph.add_constraint g ~u:0 ~v:1 ~k:(-1) ~tag:0);
  let d0 = Diff_graph.potential g 0 in
  Diff_graph.push g;
  ignore (Diff_graph.add_constraint g ~u:1 ~v:2 ~k:(-5) ~tag:1);
  Diff_graph.push g;
  (match Diff_graph.add_constraint g ~u:2 ~v:0 ~k:0 ~tag:2 with
  | Error _ -> Diff_graph.pop g  (* would close a negative cycle: -1-5+0 *)
  | Ok () -> Diff_graph.pop g);
  Diff_graph.pop g;
  Alcotest.(check int) "potential restored" d0 (Diff_graph.potential g 0);
  Alcotest.(check int) "one edge left" 1 (Diff_graph.num_edges g);
  (* the graph is reusable after popping *)
  Alcotest.(check bool) "re-add ok" true
    (Diff_graph.add_constraint g ~u:1 ~v:2 ~k:(-1) ~tag:3 = Ok ())

let test_graph_growth () =
  let g = Diff_graph.create 1 in
  Alcotest.(check bool) "grows on demand" true
    (Diff_graph.add_constraint g ~u:100 ~v:200 ~k:(-1) ~tag:0 = Ok ())

(* ------------------------------------------------------------------ *)
(* Idl                                                                  *)
(* ------------------------------------------------------------------ *)

let check_model (p : Idl.problem) (m : int array) (chosen_ok : bool) =
  List.iter
    (fun (a : Idl.atom) ->
      if not (m.(a.u) - m.(a.v) <= a.k) then Alcotest.fail "hard atom violated")
    p.hard;
  if chosen_ok then
    Array.iter
      (fun clause ->
        if
          not
            (Array.exists (fun (a : Idl.atom) -> m.(a.u) - m.(a.v) <= a.k) clause)
        then Alcotest.fail "clause unsatisfied")
      p.clauses

let test_idl_chain () =
  let p = { Idl.nvars = 4; hard = [ Idl.lt 0 1; Idl.lt 1 2; Idl.lt 2 3 ]; clauses = [||] } in
  match Idl.solve p with
  | Sat (m, _) -> check_model p m true
  | _ -> Alcotest.fail "expected sat"

let test_idl_unsat () =
  let p = { Idl.nvars = 3; hard = [ Idl.lt 0 1; Idl.lt 1 2; Idl.lt 2 0 ]; clauses = [||] } in
  Alcotest.(check bool) "cycle unsat" true
    (match Idl.solve p with Idl.Unsat _ -> true | _ -> false)

let test_idl_clause_backtracking () =
  (* first literal of the first clause conflicts only after the second
     clause commits, forcing a backtrack *)
  let p =
    {
      Idl.nvars = 4;
      hard = [ Idl.lt 0 1 ];
      clauses =
        [|
          [| Idl.lt 1 2; Idl.lt 2 1 |];
          [| Idl.lt 2 1; Idl.lt 3 0 |];
          [| Idl.lt 1 2 |];
        |];
    }
  in
  match Idl.solve p with
  | Sat (m, _) -> check_model p m true
  | _ -> Alcotest.fail "expected sat after backtracking"

let test_idl_unsat_clauses () =
  let p =
    {
      Idl.nvars = 2;
      hard = [ Idl.lt 0 1 ];
      clauses = [| [| Idl.lt 1 0 |] |];
    }
  in
  Alcotest.(check bool) "contradicting clause" true
    (match Idl.solve p with Idl.Unsat _ -> true | _ -> false)

let test_idl_le_and_lt () =
  let p =
    { Idl.nvars = 2; hard = [ Idl.le 0 1; Idl.le 1 0 ]; clauses = [||] }
  in
  match Idl.solve p with
  | Sat (m, _) -> Alcotest.(check int) "x0 = x1 allowed" m.(0) m.(1)
  | _ -> Alcotest.fail "expected sat"

let test_idl_resume_index () =
  (* Deciding c0 asserts its first literal; c1's only literal then conflicts
     with it, and the backjump reopens c0.  The resume index makes the
     re-decision continue at c0's SECOND literal: re-scanning from the
     first — which is theory-consistent in isolation — would re-assert it
     and loop forever.  Pinning [theory_adds] checks each literal was
     pushed into the theory exactly once along this trace:
     c0.lit0, c1.lit0 (conflict), c0.lit1, c1.lit0 = 4 additions. *)
  let p =
    {
      Idl.nvars = 2;
      hard = [];
      clauses = [| [| Idl.lt 0 1; Idl.lt 1 0 |]; [| Idl.lt 1 0 |] |];
    }
  in
  match Idl.solve p with
  | Sat (m, s) ->
    check_model p m true;
    Alcotest.(check int) "theory adds (no literal re-scanned)" 4 s.theory_adds;
    Alcotest.(check int) "decisions" 3 s.decisions;
    Alcotest.(check int) "backtracks" 1 s.backtracks;
    Alcotest.(check int) "conflicts" 1 s.theory_conflicts
  | _ -> Alcotest.fail "expected sat"

let test_idl_backjump_skips_levels () =
  (* The conflict at c2 names only c0 (the negative cycle uses c0's and
     c2's edges); the middle decision c1 is unrelated.  Backjumping returns
     straight to c0 without flipping c1, so the same conflict is never
     rediscovered: exactly one theory conflict on the whole trace, where
     chronological backtracking would re-try c2 against both polarities of
     c1 and fail at least twice. *)
  let p =
    {
      Idl.nvars = 6;
      hard = [];
      clauses =
        [|
          [| Idl.lt 0 1; Idl.lt 1 0 |];
          [| Idl.lt 4 5; Idl.lt 5 4 |];
          [| Idl.lt 1 0 |];
        |];
    }
  in
  match Idl.solve p with
  | Sat (m, s) ->
    check_model p m true;
    Alcotest.(check int) "single conflict (no re-discovery)" 1 s.theory_conflicts;
    Alcotest.(check int) "backtracks (pop c1, reopen c0)" 2 s.backtracks
  | _ -> Alcotest.fail "expected sat"

let conflicting_pair =
  (* needs one backtrack and one conflict to solve *)
  {
    Idl.nvars = 2;
    hard = [];
    clauses = [| [| Idl.lt 0 1; Idl.lt 1 0 |]; [| Idl.lt 1 0 |] |];
  }

let test_idl_budget_backtracks () =
  let budget = { Idl.default_budget with max_backtracks = 0 } in
  match Idl.solve ~budget conflicting_pair with
  | Aborted s ->
    Alcotest.(check bool) "stats honest: work was done" true
      (s.theory_conflicts >= 1 && s.backtracks >= 1)
  | _ -> Alcotest.fail "expected abort on backtrack budget"

let test_idl_budget_conflicts () =
  let budget = { Idl.default_budget with max_conflicts = 0 } in
  match Idl.solve ~budget conflicting_pair with
  | Aborted s -> Alcotest.(check int) "stopped at first conflict" 1 s.theory_conflicts
  | _ -> Alcotest.fail "expected abort on conflict budget"

let test_idl_hint_seeding () =
  let p =
    {
      Idl.nvars = 4;
      hard = [ Idl.lt 0 1; Idl.lt 1 2; Idl.lt 2 3 ];
      clauses = [| [| Idl.lt 0 3 |] |];
    }
  in
  (match Idl.solve ~hint:[| 0; 16; 32; 48 |] p with
  | Sat (m, _) -> check_model p m true
  | _ -> Alcotest.fail "expected sat with good hint");
  (* a wrong hint costs relaxation work but never soundness *)
  match Idl.solve ~hint:[| 48; 32; 16; 0 |] p with
  | Sat (m, _) -> check_model p m true
  | _ -> Alcotest.fail "expected sat with bad hint"

(* qcheck: random permutation orders are satisfiable and the model agrees *)
let perm_gen =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(
      int_range 2 9 >>= fun n ->
      shuffle_l (List.init n (fun i -> i)))

let prop_perm_order =
  QCheck.Test.make ~count:200 ~name:"total orders are satisfiable, model respects them"
    perm_gen (fun perm ->
      let n = List.length perm in
      let rec chain = function
        | a :: (b :: _ as rest) -> Idl.lt a b :: chain rest
        | _ -> []
      in
      let p = { Idl.nvars = n; hard = chain perm; clauses = [||] } in
      match Idl.solve p with
      | Sat (m, _) ->
        let rec ok = function
          | a :: (b :: _ as rest) -> m.(a) < m.(b) && ok rest
          | _ -> true
        in
        ok perm
      | _ -> false)

(* qcheck: random DAG edges + random binary clauses consistent with a hidden
   total order are satisfiable and the model satisfies everything *)
let dag_gen =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d<%d" a b) es)))
    QCheck.Gen.(
      int_range 3 10 >>= fun n ->
      list_size (int_range 1 20)
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      >>= fun raw ->
      (* orient each edge by a hidden order (identity) to guarantee sat *)
      let es =
        List.filter_map (fun (a, b) -> if a < b then Some (a, b) else if b < a then Some (b, a) else None) raw
      in
      return (n, es))

let prop_dag_sat =
  QCheck.Test.make ~count:200 ~name:"order-consistent constraint systems are satisfiable"
    dag_gen (fun (n, es) ->
      let hard = List.map (fun (a, b) -> Idl.lt a b) es in
      (* clauses whose first literal follows the hidden order *)
      let clauses =
        List.filteri (fun i _ -> i mod 2 = 0) es
        |> List.map (fun (a, b) -> [| Idl.lt a b; Idl.lt b a |])
        |> Array.of_list
      in
      let p = { Idl.nvars = n; hard; clauses } in
      match Idl.solve p with
      | Sat (m, _) ->
        List.for_all (fun (a, b) -> m.(a) < m.(b)) es
        && Array.for_all
             (fun cl -> Array.exists (fun (a : Idl.atom) -> m.(a.u) - m.(a.v) <= a.k) cl)
             clauses
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Brute-force oracle                                                   *)
(* ------------------------------------------------------------------ *)

(* A satisfiable difference-logic system over n variables with constants
   bounded by K has a model in [0, n*K]^n: the Bellman-Ford potentials
   certifying feasibility span at most n*K after shifting the minimum to
   zero.  So for tiny random problems, exhaustive enumeration over that
   cube is a complete decision procedure to check the DPLL(T) solver
   against. *)

let sat_assignment (p : Idl.problem) (m : int array) =
  List.for_all (fun (a : Idl.atom) -> m.(a.u) - m.(a.v) <= a.k) p.hard
  && Array.for_all
       (fun cl -> Array.exists (fun (a : Idl.atom) -> m.(a.u) - m.(a.v) <= a.k) cl)
       p.clauses

let brute_force_sat (p : Idl.problem) =
  let atom_k acc (a : Idl.atom) = max acc (abs a.k) in
  let kmax =
    Array.fold_left
      (fun acc cl -> Array.fold_left atom_k acc cl)
      (List.fold_left atom_k 1 p.hard)
      p.clauses
  in
  let bound = (p.nvars * kmax) + 1 in
  let m = Array.make p.nvars 0 in
  let rec go i =
    if i = p.nvars then sat_assignment p m
    else
      let rec try_v v =
        v < bound
        && (m.(i) <- v;
            go (i + 1) || try_v (v + 1))
      in
      try_v 0
  in
  go 0

let atom_str (a : Idl.atom) = Printf.sprintf "x%d-x%d<=%d" a.u a.v a.k

let problem_print (p : Idl.problem) =
  Printf.sprintf "n=%d hard=[%s] clauses=[%s]" p.nvars
    (String.concat "; " (List.map atom_str p.hard))
    (String.concat " & "
       (Array.to_list
          (Array.map
             (fun cl ->
               "(" ^ String.concat " | " (Array.to_list (Array.map atom_str cl)) ^ ")")
             p.clauses)))

(* n in 2..4 and |k| <= 3 keep the oracle cube small (<= 13^4 points)
   while still generating self-loops, contradictions, zero cycles, and
   clause-driven backtracking *)
let problem_gen =
  let atom n =
    QCheck.Gen.(
      map3
        (fun u v k -> { Idl.u; v; k })
        (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range (-3) 3))
  in
  QCheck.Gen.(
    int_range 2 4 >>= fun n ->
    list_size (int_range 0 5) (atom n) >>= fun hard ->
    list_size (int_range 0 3) (map Array.of_list (list_size (int_range 1 3) (atom n)))
    >>= fun clauses -> return { Idl.nvars = n; hard; clauses = Array.of_list clauses })

let prop_oracle_sat_agreement =
  QCheck.Test.make ~count:400 ~name:"solver agrees with brute-force oracle"
    (QCheck.make ~print:problem_print problem_gen)
    (fun p ->
      match Idl.solve p with
      | Sat (m, _) -> sat_assignment p m && brute_force_sat p
      | Unsat _ -> not (brute_force_sat p)
      | Aborted _ -> false (* cannot happen at this size *))

let prop_oracle_hard_only =
  (* hard atoms alone exercise the theory solver without DPLL search *)
  QCheck.Test.make ~count:400 ~name:"theory-only problems agree with oracle"
    (QCheck.make ~print:problem_print
       QCheck.Gen.(map (fun p -> { p with Idl.clauses = [||] }) problem_gen))
    (fun p ->
      match Idl.solve p with
      | Sat (m, _) -> sat_assignment p m && brute_force_sat p
      | Unsat _ -> not (brute_force_sat p)
      | Aborted _ -> false)

let prop_cycle_unsat =
  QCheck.Test.make ~count:100 ~name:"strict cycles are unsatisfiable"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 12))
    (fun n ->
      let hard = List.init n (fun i -> Idl.lt i ((i + 1) mod n)) in
      match Idl.solve { Idl.nvars = n; hard; clauses = [||] } with
      | Idl.Unsat _ -> true
      | _ -> false)

let () =
  Alcotest.run "solver"
    [
      ( "diff-graph",
        [
          Alcotest.test_case "feasible potentials" `Quick test_graph_feasible;
          Alcotest.test_case "negative cycle detection" `Quick test_graph_negative_cycle;
          Alcotest.test_case "zero cycles feasible" `Quick test_graph_zero_cycle_ok;
          Alcotest.test_case "push/pop restores" `Quick test_graph_push_pop;
          Alcotest.test_case "grows on demand" `Quick test_graph_growth;
        ] );
      ( "idl",
        [
          Alcotest.test_case "chains" `Quick test_idl_chain;
          Alcotest.test_case "unsat cycle" `Quick test_idl_unsat;
          Alcotest.test_case "clause backtracking" `Quick test_idl_clause_backtracking;
          Alcotest.test_case "unsat via clause" `Quick test_idl_unsat_clauses;
          Alcotest.test_case "non-strict atoms" `Quick test_idl_le_and_lt;
          Alcotest.test_case "per-clause resume index" `Quick test_idl_resume_index;
          Alcotest.test_case "backjump skips unrelated levels" `Quick
            test_idl_backjump_skips_levels;
          Alcotest.test_case "backtrack budget aborts" `Quick test_idl_budget_backtracks;
          Alcotest.test_case "conflict budget aborts" `Quick test_idl_budget_conflicts;
          Alcotest.test_case "potential hint seeding" `Quick test_idl_hint_seeding;
          QCheck_alcotest.to_alcotest prop_perm_order;
          QCheck_alcotest.to_alcotest prop_dag_sat;
          QCheck_alcotest.to_alcotest prop_cycle_unsat;
        ] );
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest prop_oracle_sat_agreement;
          QCheck_alcotest.to_alcotest prop_oracle_hard_only;
        ] );
    ]
