(* Dynamic soundness oracle for the sharpened static analysis.

   Two gates, per the elision-soundness argument in DESIGN.md:

   - {e race oracle}: run every workload un-instrumented with the
     vector-clock happens-before detector watching all accesses, under
     {random, round-robin} schedulers and multiple seeds.  Every
     dynamically observed race must land on a site the sharp plan
     instruments — a race at an elided site would mean the analysis can
     drop a cross-thread flow dependence.  The suite also requires the
     detector to find races *somewhere* (the workloads contain deliberate
     races), so a detector that goes blind cannot green-wash the gate.

   - {e cross-plan differential}: on random generated programs, record
     under the sharpened plan and under [Plan.all_shared] (everything
     instrumented, static analysis disabled).  The two original runs must
     be identical on every plan-independent observable — including the
     final heap, which is the heap-equivalence half of the gate: the
     instrumentation plan provably does not perturb execution.  Both logs
     must then replay faithfully (Theorem-1 observables), and the replays
     must agree on status and outputs.  Per-plan observables (D(t)
     counters, the instrumented-read list, crash counters) and the replay
     final heaps are excluded: replay suppresses blind writes at
     instrumented sites (Section 4.2), so replay heaps legitimately
     differ across plans at blind locations — same reasoning as the
     cross-variant differential suite.  The sharpened log may never be
     larger than the full one. *)

open Runtime

(* ------------------------------------------------------------------ *)
(* Detector unit checks                                                *)
(* ------------------------------------------------------------------ *)

let detect ?(sched = Sched.round_robin ()) src =
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  snd (Analysis.Hb_detector.detect ~sched p)

let test_detects_race () =
  let d =
    detect
      "class C { f; } global g;
       fn w() { g.f = 1; }
       fn r() { x = g.f; print x; }
       main { c = new C; g = c; spawn t1 = w(); spawn t2 = r(); join t1; join t2; }"
  in
  Alcotest.(check bool) "unordered write/read reported" true
    (Analysis.Hb_detector.races d <> [])

let test_lock_orders () =
  let d =
    detect
      "class C { f; } global g; global l;
       fn w() { sync (l) { g.f = 1; } }
       fn r() { sync (l) { x = g.f; print x; } }
       main { l = new C; c = new C; g = c;
              spawn t1 = w(); spawn t2 = r(); join t1; join t2; }"
  in
  Alcotest.(check (list string)) "lock-ordered accesses race-free" []
    (List.map Analysis.Hb_detector.race_to_string (Analysis.Hb_detector.races d))

let test_init_publication_ordered () =
  (* the spawn ghost write orders the init-phase write with every reader *)
  let d =
    detect
      "class C { f; } global g;
       fn r() { x = g.f; print x; }
       main { c = new C; g = c; c.f = 7; spawn t1 = r(); spawn t2 = r(); join t1; join t2; }"
  in
  Alcotest.(check (list string)) "published init write race-free" []
    (List.map Analysis.Hb_detector.race_to_string (Analysis.Hb_detector.races d))

let test_join_orders () =
  let d =
    detect
      "class C { f; } global g;
       fn w() { g.f = 1; }
       main { c = new C; g = c; spawn t = w(); join t; x = g.f; print x; }"
  in
  Alcotest.(check (list string)) "join-ordered accesses race-free" []
    (List.map Analysis.Hb_detector.race_to_string (Analysis.Hb_detector.races d))

(* ------------------------------------------------------------------ *)
(* Race oracle: 24 workloads x schedulers x seeds                       *)
(* ------------------------------------------------------------------ *)

let oracle_scheds =
  [
    ("rand5", fun () -> Sched.random ~seed:5);
    ("rand11", fun () -> Sched.random ~seed:11);
    ("rr", fun () -> Sched.round_robin ());
  ]

type oracle_cell = {
  o_label : string;
  o_races : int;
  o_elided_races : string list;  (* violations: dynamic race at elided site *)
}

let run_oracle_cell ((bm : Workloads.benchmark), (sname, mk_sched)) : oracle_cell =
  let p = Workloads.program bm in
  let a = Analysis.Analyze.analyze p in
  let plan = Analysis.Analyze.shared_sids a in
  let _, d = Analysis.Hb_detector.detect ~sched:(mk_sched ()) p in
  let racy = Analysis.Hb_detector.racy_sites d in
  let elided =
    Analysis.Pointsto.ISet.fold
      (fun sid acc ->
        if Hashtbl.find_opt plan sid = Some true then acc
        else Printf.sprintf "%s/%s: dynamic race at elided site s%d" bm.name sname sid :: acc)
      racy []
  in
  {
    o_label = bm.name ^ "/" ^ sname;
    o_races = Analysis.Pointsto.ISet.cardinal racy;
    o_elided_races = List.rev elided;
  }

let oracle_matrix =
  lazy
    (List.concat_map
       (fun bm -> List.map (fun sc -> (bm, sc)) oracle_scheds)
       Workloads.all
    |> Engine.Batch.map ~f:run_oracle_cell)

let test_oracle_no_elided_races () =
  Alcotest.(check int) "28 workloads x 3 schedulers"
    (List.length Workloads.all * List.length oracle_scheds)
    (List.length (Lazy.force oracle_matrix));
  List.iter
    (fun c -> List.iter Alcotest.fail c.o_elided_races)
    (Lazy.force oracle_matrix)

let test_oracle_not_vacuous () =
  let total =
    List.fold_left (fun n c -> n + c.o_races) 0 (Lazy.force oracle_matrix)
  in
  Alcotest.(check bool)
    (Printf.sprintf "detector sees races on the racy workloads (%d sites)" total)
    true (total > 0)

(* ------------------------------------------------------------------ *)
(* Cross-plan recording differential                                   *)
(* ------------------------------------------------------------------ *)

let params_gen : Workloads.params QCheck.Gen.t =
  QCheck.Gen.(
    (* bias toward [Phased]: nested spawn/join waves and quiescent
       post-join reads are where the MHP-based elision has to prove
       itself against the replayer's blind-write suppression *)
    frequency [ (2, return Workloads.Loops); (1, return Workloads.Phased) ]
    >>= fun shape ->
    int_range 1 4 >>= fun threads ->
    int_range 1 4 >>= fun iters ->
    int_range 0 3 >>= fun local_work ->
    int_range 1 12 >>= fun array_size ->
    int_range 1 4 >>= fun runlen ->
    bool >>= fun partition ->
    int_range 0 4 >>= fun array_reads ->
    int_range 0 4 >>= fun array_writes ->
    int_range 0 3 >>= fun hot_ops ->
    int_range 0 3 >>= fun locked_ops ->
    bool >>= fun use_maps ->
    bool >>= fun use_syscalls ->
    int_range 1 6 >>= fun stickiness ->
    return
      {
        Workloads.shape;
        threads;
        iters;
        local_work;
        array_size;
        runlen;
        partition;
        array_reads;
        array_writes;
        hot_ops;
        locked_ops;
        use_maps;
        use_syscalls;
        stickiness;
      })

(* crash identity without the D(t) counter, which is plan-dependent *)
let crash_key (c : Interp.crash) = (c.tid, c.site, c.line, c.msg)

let cross_plan_prop =
  QCheck.Test.make ~count:25 ~name:"sharpened vs full plan: record + replay"
    (QCheck.make params_gen) (fun prm ->
      let p =
        Lang.Check.validate_exn (Lang.Parser.parse_program (Workloads.generate prm))
      in
      let record plan =
        Light_core.Light.record ~variant:Light_core.Light.v_both
          ~sched:(Sched.random ~seed:23) ~seed:9 ?plan p
      in
      let rs = record None (* sharp static plan *)
      and rf = record (Some Plan.all_shared) in
      let a = rs.outcome and b = rf.outcome in
      let originals_agree =
        a.status = b.status && a.steps = b.steps && a.outputs = b.outputs
        && a.syscalls = b.syscalls
        && a.final_heap = b.final_heap
        && List.map crash_key a.crashes = List.map crash_key b.crashes
      in
      let replay (r : Light_core.Light.recording) =
        match Light_core.Light.replay r with
        | Ok rr when rr.faithful = [] -> Some rr.replay_outcome
        | _ -> None
      in
      originals_agree
      && rs.space_longs <= rf.space_longs
      &&
      match (replay rs, replay rf) with
      | Some os, Some ofl -> os.status = ofl.status && os.outputs = ofl.outputs
      | _ -> false)

let () =
  Alcotest.run "hb"
    [
      ( "detector",
        [
          Alcotest.test_case "unordered accesses race" `Quick test_detects_race;
          Alcotest.test_case "lock orders" `Quick test_lock_orders;
          Alcotest.test_case "init publication ordered" `Quick test_init_publication_ordered;
          Alcotest.test_case "join orders" `Quick test_join_orders;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "no dynamic race at elided sites" `Slow
            test_oracle_no_elided_races;
          Alcotest.test_case "detector not vacuous" `Slow test_oracle_not_vacuous;
        ] );
      ("cross-plan", [ QCheck_alcotest.to_alcotest cross_plan_prop ]);
    ]
