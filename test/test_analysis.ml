(* Static analysis tests: call graph, freshness, shared-target detection,
   lock-guard analysis (O2) and race pairs (Chimera input). *)

open Analysis

let analyze ?precision ?refine src =
  Analyze.analyze ?precision ?refine
    (Lang.Check.validate_exn (Lang.Parser.parse_program src))

(* sharp targets are per-allocation-site partitions (".f@s7"); tests match on
   the name bucket (".f", "g", "[]", "{}") across all partitions *)
let classes_of (a : Analyze.t) (name : string) : Analyze.target_class list =
  Analyze.TM.fold
    (fun t tc acc -> if Sites.target_base t = name then tc :: acc else acc)
    a.targets []

let shared a name =
  List.exists (fun (tc : Analyze.target_class) -> tc.shared) (classes_of a name)

let guarded a name =
  match
    List.filter (fun (tc : Analyze.target_class) -> tc.shared) (classes_of a name)
  with
  | tc :: _ -> tc.guarded_by
  | [] -> None

(* ------------------------------------------------------------------ *)

let test_callgraph_reach () =
  let p =
    Lang.Check.validate_exn
      (Lang.Parser.parse_program
         "fn leaf() { nop; } fn mid() { leaf(); } fn w() { mid(); }
          main { spawn t = w(); join t; leaf(); }")
  in
  let cg = Callgraph.build p in
  Alcotest.(check bool) "leaf reachable from both" true
    (List.length (Callgraph.entries_reaching cg (Some "leaf")) >= 2);
  Alcotest.(check bool) "mid only from w" true
    (Callgraph.entries_reaching cg (Some "mid") = [ "w" ]);
  Alcotest.(check int) "leaf has 2 contexts" 2 (Callgraph.context_count cg (Some "leaf"))

let test_spawn_in_loop_multiplicity () =
  let p =
    Lang.Check.validate_exn
      (Lang.Parser.parse_program
         "fn w() { nop; } main { i = 0; while (i < 3) { spawn t = w(); join t; i = i + 1; } }")
  in
  let cg = Callgraph.build p in
  Alcotest.(check int) "looped spawn multiplicity" 2 (Callgraph.multiplicity cg "w")

let test_fresh_not_shared () =
  (* per-thread scratch objects must not be instrumented *)
  let a =
    analyze
      "class C { f; } fn w() { c = new C; c.f = 1; x = c.f; return x; }
       main { spawn t1 = w(); spawn t2 = w(); join t1; join t2; }"
  in
  Alcotest.(check bool) "fresh field not shared" false (shared a ".f")

let test_escaped_shared () =
  let src =
    "class C { f; } global g;
     fn w() { x = g; x.f = 1; }
     main { c = new C; g = c; spawn t1 = w(); spawn t2 = w(); join t1; join t2; }"
  in
  let a = analyze src in
  Alcotest.(check bool) "escaped field shared" true (shared a ".f");
  (* the global cell escapes too, but it is init-published and then only
     read concurrently — the MHP refinement elides it.  Unrefined, the
     escape analysis alone keeps it instrumented. *)
  Alcotest.(check bool) "published global elided" false (shared a "g");
  let u = analyze ~refine:false src in
  Alcotest.(check bool) "global shared unrefined" true (shared u "g")

let test_single_thread_not_shared () =
  let a = analyze "class C { f; } main { c = new C; c.f = 1; x = c.f; print x; }" in
  Alcotest.(check bool) "main-only not shared" false (shared a ".f")

let test_guarded_detection () =
  let a =
    analyze
      "class C { f; } global g; global l;
       fn w() { sync (l) { g.f = 1; } }
       main { l = new C; c = new C; g = c;
              spawn t1 = w(); spawn t2 = w(); join t1; join t2;
              sync (l) { x = g.f; print x; } }"
  in
  Alcotest.(check (option string)) "consistently guarded" (Some "l") (guarded a ".f")

let test_unguarded_when_mixed () =
  let a =
    analyze
      "class C { f; } global g; global l;
       fn w() { sync (l) { g.f = 1; } }
       fn v() { g.f = 2; }
       main { l = new C; c = new C; g = c;
              spawn t1 = w(); spawn t2 = v(); join t1; join t2; }"
  in
  Alcotest.(check (option string)) "one bare site kills the guard" None (guarded a ".f")

let test_different_locks_not_guarded () =
  let a =
    analyze
      "class C { f; } global g; global l1; global l2;
       fn w() { sync (l1) { g.f = 1; } }
       fn v() { sync (l2) { g.f = 2; } }
       main { l1 = new C; l2 = new C; c = new C; g = c;
              spawn t1 = w(); spawn t2 = v(); join t1; join t2; }"
  in
  Alcotest.(check (option string)) "inconsistent locks" None (guarded a ".f")

let test_param_lock_resolution () =
  (* the lock reaches the function as a parameter bound to one global at all
     call sites: still resolvable *)
  let a =
    analyze
      "class C { f; } global g; global l;
       fn w(m) { sync (m) { g.f = 1; } }
       main { l = new C; c = new C; g = c;
              spawn t1 = w(l); spawn t2 = w(l); join t1; join t2; }"
  in
  Alcotest.(check (option string)) "param lock resolved" (Some "l") (guarded a ".f")

let test_race_pairs () =
  let a =
    analyze
      "class C { f; } global g;
       fn w() { g.f = 1; }
       fn r() { x = g.f; }
       main { c = new C; g = c; spawn t1 = w(); spawn t2 = r(); join t1; join t2; }"
  in
  Alcotest.(check bool) "race detected" true (List.length a.races >= 1);
  let r = List.hd a.races in
  Alcotest.(check bool) "involves a write" true
    (r.t1.kind = Sites.KWrite || r.t2.kind = Sites.KWrite)

let test_no_race_when_guarded () =
  let a =
    analyze
      "class C { f; } global g; global l;
       fn w() { sync (l) { g.f = 1; } }
       fn r() { sync (l) { x = g.f; } }
       main { l = new C; c = new C; g = c; spawn t1 = w(); spawn t2 = r(); join t1; join t2; }"
  in
  Alcotest.(check int) "no race pairs" 0 (List.length a.races)

let test_reads_only_no_race () =
  let a =
    analyze
      "class C { f; } global g;
       fn r() { x = g.f; }
       main { c = new C; g = c; c.f = 1; spawn t1 = r(); spawn t2 = r(); join t1; join t2; }"
  in
  (* the main-thread init write races with reader threads conservatively, but
     reader/reader pairs must not be reported *)
  List.iter
    (fun (r : Analyze.race_pair) ->
      Alcotest.(check bool) "pair has a write" true
        (r.t1.kind = Sites.KWrite || r.t2.kind = Sites.KWrite))
    a.races

(* ------------------------------------------------------------------ *)
(* Sharp-precision corner cases                                        *)
(* ------------------------------------------------------------------ *)

let test_escape_via_field_store () =
  (* a freshly allocated object stored into a field of an escaping object
     escapes through the heap closure, even though no global ever holds it
     directly *)
  let a =
    analyze
      "class C { f; box; } global g;
       fn w() { b = g; c = new C; b.box = c; c.f = 1; x = c.f; }
       main { r = new C; g = r; spawn t1 = w(); spawn t2 = w(); join t1; join t2; }"
  in
  Alcotest.(check bool) "field of heap-published object shared" true (shared a ".f")

let test_same_field_different_sites () =
  (* same field name, two allocation sites: only the partition reached from
     two thread contexts is shared — the other stays un-instrumented even
     though both escape *)
  let src =
    "class C { f; } global g; global h;
     fn w() { x = g; x.f = 1; }
     fn v() { y = h; p = y.f; }
     main { a = new C; g = a; b = new C; h = b;
            spawn t1 = w(); spawn t2 = w(); spawn t3 = v(); join t1; join t2; join t3; }"
  in
  let a = analyze src in
  let classes = classes_of a ".f" in
  Alcotest.(check int) "two .f partitions" 2 (List.length classes);
  Alcotest.(check int) "exactly one partition shared" 1
    (List.length (List.filter (fun (tc : Analyze.target_class) -> tc.shared) classes));
  (* the coarse name bucket cannot tell them apart *)
  let c = analyze ~precision:Analyze.Coarse src in
  Alcotest.(check int) "coarse: one .f bucket" 1 (List.length (classes_of c ".f"))

let test_distinct_lock_sites_inconsistent () =
  (* both locks resolve (through local aliases) but to different allocation
     sites: the guard must be rejected, not silently merged *)
  let a =
    analyze
      "class C { f; } global g; global l1; global l2;
       fn w() { a = l1; sync (a) { g.f = 1; } }
       fn v() { b = l2; sync (b) { g.f = 2; } }
       main { l1 = new C; l2 = new C; c = new C; g = c;
              spawn t1 = w(); spawn t2 = v(); join t1; join t2; }"
  in
  Alcotest.(check (option string)) "distinct lock objects rejected" None (guarded a ".f")

let test_init_phase_publication () =
  (* an unguarded init write before the first spawn neither breaks the lock
     guard nor gets instrumented: the spawn's ghost write orders it with
     every thread (safe publication) *)
  let a =
    analyze
      "class C { f; } global g; global l;
       fn w() { sync (l) { g.f = 1; } }
       main { l = new C; c = new C; g = c; c.f = 0;
              spawn t1 = w(); spawn t2 = w(); join t1; join t2; }"
  in
  Alcotest.(check (option string)) "guard survives init write" (Some "l")
    (guarded a ".f");
  let init_write =
    List.find
      (fun (s : Sites.info) -> s.fn = None && s.kind = Sites.KWrite
        && Sites.target_base s.target = ".f")
      a.sites
  in
  Alcotest.(check bool) "init write flagged" true init_write.init_phase;
  let plan = Analyze.shared_sids a in
  Alcotest.(check bool) "init write elided from plan" false
    (Hashtbl.find plan init_write.sid)

let test_spawned_loop_lock_not_unique () =
  (* a lock allocated inside a body spawned in a loop denotes one object per
     thread: must-alias requires a unique site, so the guard is rejected *)
  let a =
    analyze
      "class C { f; } global g;
       fn w() { m = new C; sync (m) { g.f = 1; } }
       main { c = new C; g = c; i = 0;
              while (i < 2) { spawn t = w(); spawn u = w();
                              join t; join u; i = i + 1; } }"
  in
  Alcotest.(check bool) "target still shared" true (shared a ".f");
  Alcotest.(check (option string)) "per-thread lock rejected" None (guarded a ".f")

let test_lock_via_local_alias () =
  (* the lock flows through two local copies: name-based resolution loses
     it, points-to must-alias keeps it *)
  let src =
    "class C { f; } global g; global l;
     fn w() { a = l; b = a; sync (b) { g.f = 1; } }
     main { l = new C; c = new C; g = c;
            spawn t1 = w(); spawn t2 = w(); join t1; join t2; }"
  in
  let a = analyze src in
  Alcotest.(check (option string)) "alias chain resolved" (Some "l") (guarded a ".f");
  let c = analyze ~precision:Analyze.Coarse src in
  Alcotest.(check (option string)) "coarse alias chain lost" None (guarded c ".f")

let test_plan_consistency () =
  (* the transformer's plan marks exactly the shared non-fresh sites *)
  let p =
    Lang.Check.validate_exn
      (Lang.Parser.parse_program
         "class C { f; } global g;
          fn w() { scratch = new C; scratch.f = 1; y = scratch.f; g = y; }
          main { spawn t1 = w(); spawn t2 = w(); join t1; join t2; x = g; }")
  in
  let tr = Instrument.Transformer.transform p in
  Alcotest.(check bool) "some sites instrumented" true (tr.instrumented_sites > 0);
  Alcotest.(check bool) "not all sites instrumented" true
    (tr.instrumented_sites < tr.total_access_sites)

let test_weave_output () =
  let p =
    Lang.Check.validate_exn
      (Lang.Parser.parse_program
         "global g; fn w() { g = g + 1; } main { g = 0; spawn a = w(); spawn b = w(); join a; join b; }")
  in
  let tr = Instrument.Transformer.transform p in
  let woven = Instrument.Transformer.weave tr p in
  let hooks =
    Lang.Ast.fold_stmts
      (fun n s -> match s.node with Lang.Ast.Opaque (_, name, _) when String.length name > 2 -> n + 1 | _ -> n)
      0 woven
  in
  Alcotest.(check bool) "hooks woven" true (hooks > 0);
  (* the woven program still validates and runs *)
  let woven = Lang.Check.validate_exn woven in
  let o = Runtime.Interp.run ~sched:Runtime.(Sched.round_robin ()) woven in
  Alcotest.(check bool) "woven program runs" true (o.status = Runtime.Interp.AllFinished)

(* ------------------------------------------------------------------ *)
(* Callgraph direct unit tests                                          *)
(* ------------------------------------------------------------------ *)

let test_callgraph_recursion () =
  (* mutual recursion: the reachability closure must terminate, and both
     functions sit in every entry's reach that calls into the cycle *)
  let p =
    Lang.Check.validate_exn
      (Lang.Parser.parse_program
         "fn even(n) { if (n > 0) { odd(n - 1); } return 0; }
          fn odd(n) { if (n > 0) { even(n - 1); } return 1; }
          fn w() { even(4); }
          main { spawn t = w(); join t; odd(3); }")
  in
  let cg = Callgraph.build p in
  Alcotest.(check (list string)) "cycle reached from both entries"
    [ "main"; "w" ]
    (Callgraph.entries_reaching cg (Some "even"));
  Alcotest.(check (list string)) "odd too (via the cycle and directly)"
    [ "main"; "w" ]
    (Callgraph.entries_reaching cg (Some "odd"));
  Alcotest.(check int) "two contexts execute the cycle" 2
    (Callgraph.context_count cg (Some "even"));
  (* a self-recursive entry is still one thread *)
  Alcotest.(check int) "spawned entry multiplicity" 1 (Callgraph.multiplicity cg "w")

let test_callgraph_call_resolution () =
  (* calls resolve through intermediate frames; spawn targets are entries,
     plain callees are not *)
  let p =
    Lang.Check.validate_exn
      (Lang.Parser.parse_program
         "fn leaf() { nop; } fn mid() { leaf(); }
          fn w1() { mid(); } fn w2() { mid(); }
          main { spawn a = w1(); spawn b = w2(); join a; join b; }")
  in
  let cg = Callgraph.build p in
  Alcotest.(check (list string)) "leaf reached from both spawned entries"
    [ "w1"; "w2" ]
    (Callgraph.entries_reaching cg (Some "leaf"));
  Alcotest.(check int) "two thread contexts" 2 (Callgraph.context_count cg (Some "leaf"));
  Alcotest.(check (list string)) "main body reached only by main" [ "main" ]
    (Callgraph.entries_reaching cg None);
  Alcotest.(check int) "main body is one context" 1 (Callgraph.context_count cg None)

let test_callgraph_unreachable () =
  (* a function never called nor spawned has no executing context, and its
     accesses must not force instrumentation of the target they touch *)
  let src =
    "class C { f; } global g;
     fn dead() { x = g; x.f = 99; }
     fn w() { y = g; v = y.f; return v; }
     main { c = new C; c.f = 0; g = c; spawn t1 = w(); spawn t2 = w();
            join t1; join t2; }"
  in
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  let cg = Callgraph.build p in
  Alcotest.(check (list string)) "no entry reaches dead code" []
    (Callgraph.entries_reaching cg (Some "dead"));
  Alcotest.(check int) "zero contexts" 0 (Callgraph.context_count cg (Some "dead"));
  (* the only write of .f sits in dead code: live accesses are read-only,
     so the partition carries no race and no instrumentation *)
  let a = analyze src in
  Alcotest.(check bool) "dead write does not share the target" false (shared a ".f")

(* ------------------------------------------------------------------ *)
(* MHP refinement                                                       *)
(* ------------------------------------------------------------------ *)

let test_mhp_quiescent_postjoin () =
  (* one writer thread, main reads after joining it: no pair of accesses
     may overlap, so the refined analysis elides the whole partition while
     the escape analysis alone would keep it *)
  let src =
    "class C { n; } global g;
     fn w() { x = g; x.n = x.n + 1; }
     main { c = new C; c.n = 0; g = c; spawn t = w(); join t; print c.n; }"
  in
  let a = analyze src in
  Alcotest.(check bool) "post-join partition elided" false (shared a ".n");
  let u = analyze ~refine:false src in
  Alcotest.(check bool) "kept without MHP refinement" true (shared u ".n")

let test_mhp_loop_spawn_unjoined_kept () =
  (* spawns in a loop with the joins deferred past it: instances of the
     same spawn site coexist, so the write conflicts with itself and the
     partition must stay instrumented even refined *)
  let src =
    "class C { n; } global g;
     fn w() { x = g; x.n = x.n + 1; }
     main { c = new C; c.n = 0; g = c; i = 0;
            while (i < 3) { spawn t = w(); i = i + 1; }
            print c.n; }"
  in
  let a = analyze src in
  Alcotest.(check bool) "multi-instance self-conflict kept" true (shared a ".n")

let test_mhp_loop_spawn_joined_serialized () =
  (* spawn and join in the same loop iteration: each instance's window
     closes before the next opens, so nothing ever overlaps — elided *)
  let src =
    "class C { n; } global g;
     fn w() { x = g; x.n = x.n + 1; }
     main { c = new C; c.n = 0; g = c; i = 0;
            while (i < 3) { spawn t = w(); join t; i = i + 1; }
            print c.n; }"
  in
  let a = analyze src in
  Alcotest.(check bool) "serialized loop-spawn elided" false (shared a ".n");
  let u = analyze ~refine:false src in
  Alcotest.(check bool) "kept without MHP refinement" true (shared u ".n")

(* ------------------------------------------------------------------ *)
(* Pairwise lockset coverage (O2 without a partition-wide guard)        *)
(* ------------------------------------------------------------------ *)

let test_lockset_pairwise_covered () =
  (* no single lock protects every access (guard = None), but every
     conflicting pair shares one: reader r1 holds l1, reader r2 holds l2,
     and the writer holds both.  O2 applies pairwise. *)
  let src =
    "class C { n; } global g; global l1; global l2;
     fn r1() { sync (l1) { x = g; v = x.n; return v; } }
     fn r2() { sync (l2) { x = g; v = x.n; return v; } }
     fn w() { sync (l1) { sync (l2) { x = g; x.n = x.n + 1; } } }
     main { l1 = new C; l2 = new C; c = new C; c.n = 0; g = c;
            spawn a = r1(); spawn b = r2(); spawn d = w();
            join a; join b; join d; }"
  in
  let a = analyze src in
  let tc =
    match List.filter (fun (tc : Analyze.target_class) -> tc.shared) (classes_of a ".n") with
    | tc :: _ -> tc
    | [] -> Alcotest.fail "partition not shared"
  in
  Alcotest.(check (option string)) "no partition-wide guard" None tc.guarded_by;
  Alcotest.(check bool) "pairwise covered" true tc.covered;
  Alcotest.(check int) "covered pairs are not races" 0 (List.length a.races)

(* ------------------------------------------------------------------ *)
(* Lint findings                                                        *)
(* ------------------------------------------------------------------ *)

let test_lint_race_findings () =
  let a =
    analyze
      "class C { n; } global g;
       fn w() { x = g; x.n = x.n + 1; }
       main { c = new C; g = c; spawn t1 = w(); spawn t2 = w(); join t1; join t2; }"
  in
  let fs = Lint.findings a in
  Alcotest.(check bool) "at least one race finding" true
    (List.exists (fun (f : Lint.finding) -> f.cls = Lint.Race) fs);
  (* bare unguarded write/write on a heap object: ww(3) + bare(2) + multi? *)
  Alcotest.(check bool) "ranked with a severity" true
    (List.for_all (fun (f : Lint.finding) -> f.rank >= 1 && f.score >= 0) fs)

let test_lint_atomicity_findings () =
  (* perfect locking, zero races — but the two critical sections are
     MHP-unordered: the check-then-act exposure lint must flag it *)
  let a =
    analyze
      "class C { n; } global g; global lk;
       fn w() { sync (lk) { x = g; x.n = x.n + 1; } }
       main { lk = new C; c = new C; g = c;
              spawn t1 = w(); spawn t2 = w(); join t1; join t2; }"
  in
  Alcotest.(check int) "no race pairs" 0 (List.length a.races);
  let fs = Lint.findings a in
  Alcotest.(check bool) "atomicity suspect reported" true
    (List.exists (fun (f : Lint.finding) -> f.cls = Lint.Atomicity) fs)

(* ------------------------------------------------------------------ *)
(* JSON schema round-trip (the [--json] surface is a pinned contract)   *)
(* ------------------------------------------------------------------ *)

let json_keys = function Lint.Json.Obj kvs -> List.map fst kvs | _ -> []

let get k j =
  match Lint.Json.member k j with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing key %s" k)

let test_json_roundtrip () =
  let src =
    "class C { n; } global g;
     fn w() { x = g; x.n = x.n + 1; }
     main { c = new C; g = c; spawn t1 = w(); spawn t2 = w(); join t1; join t2; }"
  in
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  let a = Analyze.analyze p in
  let tr = Instrument.Transformer.transform p in
  let j =
    Lint.analysis_json a ~instrumented:tr.instrumented_sites
      ~guarded:tr.guarded_sites ~total_sites:tr.total_access_sites
  in
  (* encode, re-parse: the parser accepts everything the printer emits *)
  let r = Lint.Json.of_string (Lint.Json.to_string j) in
  Alcotest.(check (list string)) "top-level keys pinned"
    [ "summary"; "targets"; "races" ] (json_keys r);
  Alcotest.(check (list string)) "summary keys pinned"
    [
      "precision"; "refined"; "total_access_sites"; "instrumented_sites";
      "guarded_sites"; "sequential_sids"; "race_pairs";
    ]
    (json_keys (get "summary" r));
  (match Lint.Json.to_list (get "targets" r) with
  | Some (t :: _) ->
    Alcotest.(check (list string)) "target keys pinned"
      [ "target"; "shared"; "guarded_by"; "covered"; "active_sids"; "sites" ]
      (json_keys t)
  | _ -> Alcotest.fail "no targets in analysis JSON");
  (match Lint.Json.to_list (get "races" r) with
  | Some (f :: _) ->
    Alcotest.(check (list string)) "finding keys pinned"
      [
        "rank"; "class"; "target"; "severity"; "score"; "s1"; "s2";
        "mhp_witness"; "lockset";
      ]
      (json_keys f)
  | _ -> Alcotest.fail "no race findings in analysis JSON");
  (* the counts survive the round trip *)
  let summary = get "summary" r in
  Alcotest.(check (option int)) "instrumented count"
    (Some tr.instrumented_sites)
    (Lint.Json.to_int (get "instrumented_sites" summary));
  Alcotest.(check (option int)) "race count"
    (Some (List.length a.races))
    (Lint.Json.to_int (get "race_pairs" summary));
  (* the lint report shares the same finding encoder *)
  let rep = Lint.Json.of_string (Lint.Json.to_string (Lint.report_json a)) in
  Alcotest.(check (list string)) "report keys pinned" [ "races"; "summary" ]
    (json_keys rep);
  Alcotest.(check (list string)) "report summary keys pinned"
    [ "total"; "race_pairs"; "atomicity_suspects"; "high"; "medium"; "low" ]
    (json_keys (get "summary" rep))

let () =
  Alcotest.run "analysis"
    [
      ( "callgraph",
        [
          Alcotest.test_case "reachability" `Quick test_callgraph_reach;
          Alcotest.test_case "loop spawn multiplicity" `Quick test_spawn_in_loop_multiplicity;
          Alcotest.test_case "recursion terminates" `Quick test_callgraph_recursion;
          Alcotest.test_case "call-chain resolution" `Quick test_callgraph_call_resolution;
          Alcotest.test_case "unreachable functions" `Quick test_callgraph_unreachable;
        ] );
      ( "mhp",
        [
          Alcotest.test_case "quiescent post-join elided" `Quick test_mhp_quiescent_postjoin;
          Alcotest.test_case "unjoined loop spawn kept" `Quick test_mhp_loop_spawn_unjoined_kept;
          Alcotest.test_case "joined loop spawn serialized" `Quick test_mhp_loop_spawn_joined_serialized;
        ] );
      ( "lockset",
        [ Alcotest.test_case "pairwise coverage" `Quick test_lockset_pairwise_covered ] );
      ( "lint",
        [
          Alcotest.test_case "race findings" `Quick test_lint_race_findings;
          Alcotest.test_case "atomicity findings" `Quick test_lint_atomicity_findings;
          Alcotest.test_case "json schema round-trip" `Quick test_json_roundtrip;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "fresh objects local" `Quick test_fresh_not_shared;
          Alcotest.test_case "escaped objects shared" `Quick test_escaped_shared;
          Alcotest.test_case "single-thread data local" `Quick test_single_thread_not_shared;
        ] );
      ( "lock-guards",
        [
          Alcotest.test_case "consistent guard found" `Quick test_guarded_detection;
          Alcotest.test_case "bare site kills guard" `Quick test_unguarded_when_mixed;
          Alcotest.test_case "different locks rejected" `Quick test_different_locks_not_guarded;
          Alcotest.test_case "parameter locks resolved" `Quick test_param_lock_resolution;
        ] );
      ( "precision",
        [
          Alcotest.test_case "escape via field store" `Quick test_escape_via_field_store;
          Alcotest.test_case "per-site field partitions" `Quick test_same_field_different_sites;
          Alcotest.test_case "distinct lock sites rejected" `Quick test_distinct_lock_sites_inconsistent;
          Alcotest.test_case "init-phase publication" `Quick test_init_phase_publication;
          Alcotest.test_case "spawned-loop lock not unique" `Quick test_spawned_loop_lock_not_unique;
          Alcotest.test_case "lock via local alias" `Quick test_lock_via_local_alias;
        ] );
      ( "races",
        [
          Alcotest.test_case "race pair detected" `Quick test_race_pairs;
          Alcotest.test_case "guarded pairs excluded" `Quick test_no_race_when_guarded;
          Alcotest.test_case "read/read excluded" `Quick test_reads_only_no_race;
        ] );
      ( "transformer",
        [
          Alcotest.test_case "plan consistency" `Quick test_plan_consistency;
          Alcotest.test_case "woven source runs" `Quick test_weave_output;
        ] );
    ]
