(* Record-service tests: the determinism contract extended to long-lived
   sessions.  A session's log bytes must not depend on which worker ran it,
   the pool size, the queue capacity, the back-pressure policy, or whether
   its recorder was fresh or recycled — and a recycled recorder must not
   bleed any per-session state (site_hits, meter, arenas) into the next
   session.  Plus the supporting primitives: the bounded queue's
   close-then-drain guarantee and the Pool's exception ordering and
   shutdown-with-queued-work behavior. *)

open Runtime

let parse src = Lang.Check.validate_exn (Lang.Parser.parse_program src)

(* two programs with different shapes (and site counts), so recycling a
   recorder across them exercises the modes/site_hits re-fit *)
let prog_a = parse {|
  global x; global y;
  fn w1() { x = 1; y = x + 1; x = y * 2; }
  fn w2() { x = 5; y = x + 3; x = y * 7; }
  main { x = 0; y = 0; spawn a = w1(); spawn b = w2(); join a; join b; print x; print y; }
|}

let prog_b = parse {|
  global d; global sum; global m;
  fn worker(base) {
    i = 0;
    while (i < 6) {
      lock m; v = d[(base + i) % 8]; d[(base + i) % 8] = v + 1; unlock m;
      sum = sum + v;
      i = i + 1;
    }
  }
  main {
    d = new[8]; sum = 0; m = 0;
    spawn a = worker(0); spawn b = worker(4);
    join a; join b;
    print sum;
  }
|}

let sched ~seed () = Sched.sticky ~seed ~stickiness:4

let record_fresh ?(engine = Vm.Tree) ~seed pp =
  Light_core.Light.record_prepared ~engine ~sched:(sched ~seed ()) ~seed pp

let log_str (r : Light_core.Light.recording) =
  Light_core.Log.to_string r.Light_core.Light.log

(* ------------------------------------------------------------------ *)
(* Recorder recycling                                                   *)
(* ------------------------------------------------------------------ *)

let pp_a = Light_core.Light.prepare ~variant:Light_core.Light.v_both prog_a
let pp_b = Light_core.Light.prepare ~variant:Light_core.Light.v_both prog_b

let test_recycled_byte_identity () =
  (* a recorder that already served session A must produce byte-identical
     logs for session B — cleared-but-grown tables are indistinguishable
     from fresh ones *)
  let fresh_a = record_fresh ~seed:3 pp_a in
  let fresh_b = record_fresh ~seed:5 pp_b in
  let r =
    Light_core.Recorder.create ~variant:Light_core.Light.v_both
      (Light_core.Light.prepared_modes pp_a)
  in
  let rec_a =
    Light_core.Light.record_prepared ~sched:(sched ~seed:3 ()) ~seed:3
      ~recorder:r pp_a
  in
  let rec_b =
    Light_core.Light.record_prepared ~sched:(sched ~seed:5 ()) ~seed:5
      ~recorder:r pp_b
  in
  Alcotest.(check string) "A: recycled = fresh" (log_str fresh_a) (log_str rec_a);
  Alcotest.(check string) "B: recycled = fresh" (log_str fresh_b) (log_str rec_b)

let test_site_hits_no_bleed () =
  (* regression: site_hits must reset per session — hits from session A
     must not leak into session B's counts, and B's reuse must not clobber
     A's already-returned snapshot *)
  let fresh_a = record_fresh ~seed:3 pp_a in
  let fresh_b = record_fresh ~seed:5 pp_b in
  let r =
    Light_core.Recorder.create ~variant:Light_core.Light.v_both
      (Light_core.Light.prepared_modes pp_a)
  in
  let rec_a =
    Light_core.Light.record_prepared ~sched:(sched ~seed:3 ()) ~seed:3
      ~recorder:r pp_a
  in
  let a_hits_before = Array.copy rec_a.Light_core.Light.site_hits in
  let rec_b =
    Light_core.Light.record_prepared ~sched:(sched ~seed:5 ()) ~seed:5
      ~recorder:r pp_b
  in
  let prefix n a = Array.sub a 0 n in
  let nb = Array.length fresh_b.Light_core.Light.site_hits in
  Alcotest.(check bool) "B hits = fresh B hits (no bleed from A)" true
    (prefix nb rec_b.Light_core.Light.site_hits
    = fresh_b.Light_core.Light.site_hits);
  Alcotest.(check bool) "A's snapshot survives B's run" true
    (rec_a.Light_core.Light.site_hits = a_hits_before);
  Alcotest.(check int) "A's meter snapshot = fresh A's"
    fresh_a.Light_core.Light.space_longs rec_a.Light_core.Light.space_longs

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                        *)
(* ------------------------------------------------------------------ *)

let test_bqueue_capacity_and_drain () =
  let q = Engine.Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Engine.Bqueue.try_push q 1 = `Ok);
  Alcotest.(check bool) "push 2" true (Engine.Bqueue.try_push q 2 = `Ok);
  Alcotest.(check bool) "push 3 full" true (Engine.Bqueue.try_push q 3 = `Full);
  Alcotest.(check int) "length" 2 (Engine.Bqueue.length q);
  Engine.Bqueue.close q;
  Alcotest.(check bool) "push after close" true (Engine.Bqueue.try_push q 4 = `Closed);
  (* close-then-drain: everything accepted is still delivered, FIFO *)
  Alcotest.(check (option int)) "drain 1" (Some 1) (Engine.Bqueue.pop q);
  Alcotest.(check (option int)) "drain 2" (Some 2) (Engine.Bqueue.pop q);
  Alcotest.(check (option int)) "drained" None (Engine.Bqueue.pop q);
  let st = Engine.Bqueue.stats q in
  Alcotest.(check int) "accepted pushes" 2 st.Engine.Bqueue.bq_pushes;
  Alcotest.(check int) "peak depth" 2 st.Engine.Bqueue.bq_peak

let test_bqueue_concurrent_fifo () =
  (* a producer domain parks on the full queue; the consumer sees every item
     exactly once, in order, and the peak never exceeds the capacity *)
  let n = 500 in
  let q = Engine.Bqueue.create ~capacity:4 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          match Engine.Bqueue.push q i with
          | `Ok -> ()
          | `Closed -> failwith "closed early"
        done;
        Engine.Bqueue.close q)
  in
  let got = ref [] in
  let rec drain () =
    match Engine.Bqueue.pop q with
    | Some x -> got := x :: !got; drain ()
    | None -> ()
  in
  drain ();
  Domain.join producer;
  Alcotest.(check (list int)) "FIFO, exactly once" (List.init n Fun.id)
    (List.rev !got);
  let st = Engine.Bqueue.stats q in
  Alcotest.(check bool) "peak bounded by capacity" true
    (st.Engine.Bqueue.bq_peak <= 4)

(* ------------------------------------------------------------------ *)
(* Pool edge cases                                                      *)
(* ------------------------------------------------------------------ *)

let test_pool_concurrent_failures () =
  (* every job fails, from several domains at once: the merge must still
     re-raise job 0's exception, with its own exception type *)
  Engine.Pool.with_pool ~size:4 (fun pool ->
      match
        Engine.Pool.map_array pool
          ~f:(fun i () ->
            if i = 0 then invalid_arg "job zero" else failwith (string_of_int i))
          (Array.make 16 ())
      with
      | exception Invalid_argument msg ->
        Alcotest.(check string) "job 0's exception wins" "job zero" msg
      | exception _ -> Alcotest.fail "wrong exception propagated"
      | _ -> Alcotest.fail "expected a propagated exception")

let test_pool_shutdown_with_queued_work () =
  (* rapid small maps can leave stale helper closures queued (the caller
     drains all indices before the helpers wake); shutdown must still run
     every job exactly once and join cleanly *)
  let count = Atomic.make 0 in
  let total = ref 0 in
  Engine.Pool.with_pool ~size:4 (fun pool ->
      for _ = 1 to 20 do
        let n = 8 in
        total := !total + n;
        ignore
          (Engine.Pool.map_array pool
             ~f:(fun _ () -> Atomic.incr count)
             (Array.make n ()))
      done);
  (* with_pool has shut the pool down and joined its domains here *)
  Alcotest.(check int) "every job ran exactly once" !total (Atomic.get count)

let test_pool_default_shutdown_refused () =
  Alcotest.check_raises "default pool shutdown raises"
    (Invalid_argument "Pool.shutdown: cannot shut down the default pool")
    (fun () -> Engine.Pool.shutdown (Engine.Pool.get_default ()))

(* ------------------------------------------------------------------ *)
(* Service                                                              *)
(* ------------------------------------------------------------------ *)

let mk_sessions n =
  Array.init n (fun i ->
      let pp, engine =
        match i mod 4 with
        | 0 -> (pp_a, Vm.Tree)
        | 1 -> (pp_b, Vm.Tree)
        | 2 -> (pp_a, Vm.Bytecode)
        | _ -> (pp_b, Vm.Bytecode)
      in
      Service.session ~label:(string_of_int i) ~engine ~seed:i
        ~sched:(sched ~seed:(100 + i))
        pp)

let digests results = Array.map (fun r -> r.Service.sr_digest) results

let test_service_pool_size_identity () =
  let sessions = mk_sessions 24 in
  let run ~size ~recycle =
    Engine.Pool.with_pool ~size (fun pool ->
        Service.run ~pool ~queue_capacity:4 ~recycle sessions)
  in
  let serial, st1 = run ~size:1 ~recycle:true in
  let wide, st4 = run ~size:4 ~recycle:true in
  let fresh, stf = run ~size:4 ~recycle:false in
  Alcotest.(check int) "serial all done" 24 st1.Service.st_done;
  Alcotest.(check int) "wide all done" 24 st4.Service.st_done;
  Alcotest.(check bool) "digests: 1 worker = 4 workers" true
    (digests serial = digests wide);
  Alcotest.(check bool) "digests: recycled = fresh recorders" true
    (digests serial = digests fresh);
  Alcotest.(check bool) "recycling: at most one recorder per worker" true
    (st4.Service.st_recorders_created <= st4.Service.st_workers);
  Alcotest.(check int) "no recycling: one recorder per session" 24
    stf.Service.st_recorders_created

let test_service_reject_backpressure () =
  (* a size-1 pool never drains concurrently, so Reject mode is fully
     deterministic: exactly [capacity] sessions are accepted (drained at
     close), every later submission is rejected *)
  let sessions = mk_sessions 12 in
  let results, stats =
    Engine.Pool.with_pool ~size:1 (fun pool ->
        Service.run ~pool ~queue_capacity:4 ~on_full:`Reject sessions)
  in
  Alcotest.(check int) "accepted = capacity" 4 stats.Service.st_done;
  Alcotest.(check int) "rest rejected" 8 stats.Service.st_rejected;
  Array.iteri
    (fun i (r : Service.result_) ->
      if i < 4 then
        Alcotest.(check bool) (string_of_int i ^ " done") true
          (r.Service.sr_status = Service.Done && r.Service.sr_digest <> "")
      else
        Alcotest.(check bool) (string_of_int i ^ " rejected") true
          (r.Service.sr_status = Service.Rejected && r.Service.sr_digest = ""))
    results

let test_service_park_drains () =
  (* Park mode on a size-1 pool: the submitter steals queued work when the
     queue fills, so every session completes — the drain-on-shutdown
     guarantee with zero consumers *)
  let sessions = mk_sessions 12 in
  let results, stats =
    Engine.Pool.with_pool ~size:1 (fun pool ->
        Service.run ~pool ~queue_capacity:2 ~on_full:`Park ~keep_logs:true
          sessions)
  in
  Alcotest.(check int) "all done" 12 stats.Service.st_done;
  Alcotest.(check int) "none rejected" 0 stats.Service.st_rejected;
  Array.iter
    (fun (r : Service.result_) ->
      match r.Service.sr_log with
      | Some l ->
        Alcotest.(check string) "digest matches kept log" (Digest.string l)
          r.Service.sr_digest
      | None -> Alcotest.fail "keep_logs retained no log")
    results

let test_service_empty () =
  let results, stats =
    Engine.Pool.with_pool ~size:2 (fun pool -> Service.run ~pool [||])
  in
  Alcotest.(check int) "no results" 0 (Array.length results);
  Alcotest.(check int) "no sessions" 0 stats.Service.st_sessions

(* ------------------------------------------------------------------ *)
(* Intern stats                                                         *)
(* ------------------------------------------------------------------ *)

let test_intern_stats () =
  Lang.Intern.reset_stats ();
  let before = Lang.Intern.stats () in
  Alcotest.(check int) "reset zeroes lookups" 0 before.Lang.Intern.st_lookups;
  let names = List.init 20 (fun i -> Printf.sprintf "svc_stat_probe_%d" i) in
  let ids = List.map Lang.Intern.id names in
  let again = List.map Lang.Intern.id names in
  Alcotest.(check bool) "interning is stable" true (ids = again);
  List.iter2
    (fun n i -> Alcotest.(check string) "name roundtrip" n (Lang.Intern.name i))
    names ids;
  let st = Lang.Intern.stats () in
  Alcotest.(check int) "one insert per fresh string" 20 st.Lang.Intern.st_inserts;
  Alcotest.(check int) "one lookup per id call" 40 st.Lang.Intern.st_lookups;
  Alcotest.(check int) "shard count reported" Lang.Intern.shard_count
    st.Lang.Intern.st_shards;
  Alcotest.(check bool) "mem sees interned strings" true
    (List.for_all Lang.Intern.mem names)

let () =
  Alcotest.run "service"
    [
      ( "recorder-recycling",
        [
          Alcotest.test_case "recycled log byte-identity" `Quick
            test_recycled_byte_identity;
          Alcotest.test_case "site_hits no bleed" `Quick test_site_hits_no_bleed;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "capacity + close-then-drain" `Quick
            test_bqueue_capacity_and_drain;
          Alcotest.test_case "concurrent FIFO" `Quick test_bqueue_concurrent_fifo;
        ] );
      ( "pool-edges",
        [
          Alcotest.test_case "concurrent failures: job 0 wins" `Quick
            test_pool_concurrent_failures;
          Alcotest.test_case "shutdown with queued work" `Quick
            test_pool_shutdown_with_queued_work;
          Alcotest.test_case "default pool shutdown refused" `Quick
            test_pool_default_shutdown_refused;
        ] );
      ( "service",
        [
          Alcotest.test_case "pool-size + recycle identity" `Quick
            test_service_pool_size_identity;
          Alcotest.test_case "reject back-pressure" `Quick
            test_service_reject_backpressure;
          Alcotest.test_case "park drains on shutdown" `Quick
            test_service_park_drains;
          Alcotest.test_case "empty corpus" `Quick test_service_empty;
        ] );
      ( "intern",
        [ Alcotest.test_case "stats + roundtrip" `Quick test_intern_stats ] );
    ]
