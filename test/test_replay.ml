(* End-to-end determinism: record -> constraint generation -> IDL solving ->
   gated replay -> Theorem-1 oracle.  This is the repository's core
   correctness property, exercised over a family of programs covering the
   whole feature surface, many schedules, and all recorder variants —
   including regressions for historical soundness bugs. *)

open Light_core
open Runtime

let parse src = Lang.Check.validate_exn (Lang.Parser.parse_program src)

let roundtrip ?(seed = 1) ?(stickiness = 4) ?(variant = Light.v_both) p =
  Light.record_and_replay ~variant ~sched:(Sched.sticky ~seed ~stickiness) p

(* The seeds x variants matrix fans out across the engine's batch driver —
   this both exercises the engine under tier-1 and cuts the suite's
   wall-clock when LIGHT_JOBS > 1.  Failure messages come from job labels,
   so diagnostics are identical for any pool size. *)
let assert_faithful name p ~seeds ~variants =
  Engine.Batch.grid ~variants ~seeds
    ~sched:(fun ~seed -> Sched.sticky ~seed ~stickiness:4)
    ~label:name p
  |> Engine.Batch.roundtrips
  |> List.iter (fun (rt : Engine.Batch.roundtrip) ->
         match rt.rt_result with
         | Error e -> Alcotest.failf "%s: solver: %s" rt.rt_job.label e
         | Ok (r, rr) ->
           (match rr.replay_outcome.status with
           | Interp.AllFinished -> ()
           | Deadlock _ -> Alcotest.failf "%s: replay deadlock" rt.rt_job.label
           | GateStuck _ -> Alcotest.failf "%s: replay gate stuck" rt.rt_job.label
           | StepLimit -> Alcotest.failf "%s: replay step limit" rt.rt_job.label);
           if rr.faithful <> [] then
             Alcotest.failf "%s: %s" rt.rt_job.label (String.concat "; " rr.faithful);
           (* the solved schedule must be a valid linearization of the log *)
           match rr.report.schedule with
           | None -> Alcotest.failf "%s: no schedule" rt.rt_job.label
           | Some sch ->
             (match Validate.check ~zones:true r.log sch with
             | [] -> ()
             | vs ->
               Alcotest.failf "%s: invalid schedule: %s" rt.rt_job.label
                 (String.concat "; " vs)))

let all_variants = [ Light.v_basic; Light.v_o1; Light.v_both ]
let seeds = [ 1; 2; 3; 5; 8; 13 ]

(* ------------------------------------------------------------------ *)
(* Program family                                                      *)
(* ------------------------------------------------------------------ *)

let racy_fields = {|
  global x; global y;
  fn w1() { x = 1; y = x + 1; x = y * 2; }
  fn w2() { x = 5; y = x + 3; x = y * 7; }
  main { x = 0; y = 0; spawn a = w1(); spawn b = w2(); join a; join b; print x; print y; }
|}

let locked_counter = {|
  class C { n; } global c; global l;
  fn w(k) { while (k > 0) { sync (l) { c.n = c.n + 1; } k = k - 1; } }
  main { l = new C; c = new C; c.n = 0;
         spawn a = w(12); spawn b = w(12); join a; join b; print c.n; }
|}

let array_races = {|
  global arr;
  fn m(id, iters) {
    i = 0;
    while (i < iters) { arr[i % 4] = arr[(i + 1) % 4] + id; i = i + 1; }
  }
  main { arr = new[4];
         spawn a = m(1, 6); spawn b = m(2, 6); spawn c = m(3, 6);
         join a; join b; join c;
         x = arr[0] + arr[1] + arr[2] + arr[3]; print x; }
|}

let map_races = {|
  global tbl;
  fn m(id, iters) {
    i = 0;
    while (i < iters) {
      tbl{id % 2} = i;
      has = maphas(tbl, 1 - (id % 2));
      if (has) { w = tbl{1 - (id % 2)}; i = i + w - w; }
      i = i + 1;
    }
  }
  main { tbl = newmap; spawn a = m(1, 6); spawn b = m(2, 6); join a; join b; print 0; }
|}

let wait_notify = {|
  class C { flag; n; } global m;
  fn producer() { sync (m) { m.n = 42; m.flag = 1; notify m; } }
  fn consumer() { sync (m) { while (m.flag == 0) { wait m; } print m.n; } }
  main { m = new C; m.flag = 0; m.n = 0;
         spawn c = consumer(); spawn p = producer(); join c; join p; }
|}

let notifyall_two_waiters = {|
  class C { phase; n; } global m;
  fn waiter() { sync (m) { while (m.phase == 0) { wait m; } m.n = m.n + 1; } }
  main { m = new C; m.phase = 0; m.n = 0;
         spawn w1 = waiter(); spawn w2 = waiter();
         yield; yield;
         sync (m) { m.phase = 1; notifyall m; }
         join w1; join w2; print m.n; }
|}

let syscalls_prog = {|
  class B { n; m; } global shared;
  fn w(id, iters) {
    i = 0;
    while (i < iters) {
      shared.n = shared.n + id;
      t = @time(); r = @rand(10);
      shared.m = t + r;
      i = i + 1;
    }
  }
  main { shared = new B; shared.n = 0; shared.m = 0;
         spawn a = w(1, 6); spawn b = w(2, 6); join a; join b;
         print shared.n; print shared.m; }
|}

let crashing = {|
  class S { valid; data; } global sess; global sink;
  fn invalidate() { sess.data = null; sess.valid = 0; }
  fn access(r) {
    i = 0;
    while (i < r) {
      v = sess.valid;
      if (v == 1) { d = sess.data; x = d.valid; sink.valid = x; }
      i = i + 1;
    }
  }
  main { sess = new S; sink = new S; aux = new S; aux.valid = 9;
         sess.valid = 1; sess.data = aux;
         spawn a = access(4); spawn b = invalidate(); join a; join b; print 1; }
|}

let blind_writes = {|
  global x; global y;
  fn w1() { x = 10; x = 20; y = 1; }      // x=10 is blind if never read
  fn w2() { v = x; y = v; }
  main { x = 0; y = 0; spawn a = w1(); spawn b = w2(); join a; join b; print y; }
|}

let deep_calls = {|
  global acc;
  fn add(v) { acc = acc + v; return acc; }
  fn twice(v) { a = add(v); b = add(v); return a + b; }
  fn w(id) { r = twice(id); return r; }
  main { acc = 0; spawn a = w(3); spawn b = w(5); join a; join b; print acc; }
|}

let family =
  [
    ("racy-fields", racy_fields);
    ("locked-counter", locked_counter);
    ("array-races", array_races);
    ("map-races", map_races);
    ("wait-notify", wait_notify);
    ("notifyall", notifyall_two_waiters);
    ("syscalls", syscalls_prog);
    ("crashing", crashing);
    ("blind-writes", blind_writes);
    ("deep-calls", deep_calls);
  ]

let family_tests =
  List.map
    (fun (name, src) ->
      Alcotest.test_case name `Quick (fun () ->
          assert_faithful name (parse src) ~seeds ~variants:all_variants))
    family

(* ------------------------------------------------------------------ *)
(* Crash reproduction detail                                           *)
(* ------------------------------------------------------------------ *)

let test_crash_site_reproduced () =
  let p = parse crashing in
  let found = ref false in
  for seed = 1 to 40 do
    if not !found then begin
      let sched = Sched.sticky ~seed ~stickiness:2 in
      let r = Light.record ~sched p in
      if r.outcome.crashes <> [] then begin
        found := true;
        match Light.replay r with
        | Error e -> Alcotest.failf "solver: %s" e
        | Ok rr ->
          let key (c : Interp.crash) = (c.tid, c.site, c.c, c.msg) in
          Alcotest.(check bool) "identical crash (thread, site, counter, message)" true
            (List.map key r.outcome.crashes = List.map key rr.replay_outcome.crashes)
      end
    end
  done;
  Alcotest.(check bool) "a crashing schedule was found" true !found

(* ------------------------------------------------------------------ *)
(* Constraint generation (Section 4.2 worked example)                  *)
(* ------------------------------------------------------------------ *)

let test_constraints_shape () =
  let p = parse racy_fields in
  let r = Light.record ~variant:Light.v_basic ~sched:(Sched.sticky ~seed:1 ~stickiness:4) p in
  let cs = Light_core.Constraints.generate r.log in
  Alcotest.(check bool) "has variables" true (cs.problem.nvars > 0);
  Alcotest.(check bool) "has hard atoms" true (cs.n_hard > 0);
  (* every interval endpoint has a variable *)
  List.iter
    (fun (iv : Light_core.Constraints.interval) ->
      Alcotest.(check bool) "start var" true (Hashtbl.mem cs.vars iv.start_e);
      Alcotest.(check bool) "end var" true (Hashtbl.mem cs.vars iv.end_e))
    cs.intervals

let test_schedule_respects_deps () =
  let p = parse racy_fields in
  let r = Light.record ~variant:Light.v_basic ~sched:(Sched.sticky ~seed:2 ~stickiness:4) p in
  let report = Light_core.Replayer.solve r.log in
  match report.schedule with
  | None -> Alcotest.fail "unsat"
  | Some sch ->
    let rank e = Hashtbl.find_opt sch.rank_of e in
    List.iter
      (fun (d : Log.dep) ->
        match d.w with
        | Some w -> (
          match rank w, rank d.rf with
          | Some rw, Some rr -> Alcotest.(check bool) "write before read" true (rw < rr)
          | _ -> Alcotest.fail "dep endpoints unranked")
        | None -> ())
      r.log.deps

(* ------------------------------------------------------------------ *)
(* Feasibility under replay of larger mixes                             *)
(* ------------------------------------------------------------------ *)

let torture = {|
  class Node { v; next; }
  class Box { n; m; }
  global shared; global arr; global tbl; global lk; global phase;
  fn mixer(id, iters) {
    local = new Box;
    local.n = id;
    i = 0;
    while (i < iters) {
      shared.n = shared.n + id;
      v = shared.m;
      if (v == null) { shared.m = id * 10; }
      arr[i % 4] = arr[(i + 1) % 4] + id;
      tbl{id % 2} = i;
      has = maphas(tbl, 1 - (id % 2));
      if (has) { w = tbl{1 - (id % 2)}; local.n = local.n + w; }
      sync (lk) { lk.n = lk.n + 1; sync (lk) { lk.m = lk.n * 2; } }
      t = @time(); r = @rand(10);
      local.n = local.n + t + r;
      i = i + 1;
    }
    return local.n;
  }
  fn waiter() {
    sync (lk) { while (phase == 0) { wait lk; } }
    shared.n = shared.n * 2;
  }
  main {
    shared = new Box; shared.n = 0; shared.m = null;
    arr = new[4]; tbl = newmap;
    lk = new Box; lk.n = 0; lk.m = 0; phase = 0;
    spawn w1 = waiter(); spawn w2 = waiter();
    spawn m1 = mixer(1, 8); spawn m2 = mixer(2, 8); spawn m3 = mixer(3, 8);
    join m1; join m2; join m3;
    sync (lk) { phase = 1; notifyall lk; }
    join w1; join w2;
    print shared.n; print lk.m;
    x = arr[0] + arr[1] + arr[2] + arr[3]; print x;
  }
|}

let test_torture () =
  assert_faithful "torture" (parse torture) ~seeds:[ 1; 2; 3; 4; 5 ]
    ~variants:all_variants

(* qcheck: determinism across random (seed, stickiness, variant, program) *)
let config_gen =
  QCheck.make
    ~print:(fun (name, s, k, v) ->
      Printf.sprintf "%s seed=%d stick=%d %s" name s k (Recorder.variant_name v))
    QCheck.Gen.(
      let progs = List.map fst family in
      oneofl progs >>= fun name ->
      triple (int_range 1 200) (int_range 1 16)
        (oneofl [ Light.v_basic; Light.v_o1; Light.v_both ])
      >>= fun (s, k, v) -> return (name, s, k, v))

let prop_replay_faithful =
  QCheck.Test.make ~count:120 ~name:"replay faithful for random configurations" config_gen
    (fun (name, seed, stickiness, variant) ->
      let p = parse (List.assoc name family) in
      match roundtrip ~seed ~stickiness ~variant p with
      | Error _ -> false
      | Ok (r, rr) ->
        rr.faithful = []
        && rr.replay_outcome.status = Interp.AllFinished
        && (match rr.report.schedule with
           | Some sch -> Validate.check ~zones:true r.log sch = []
           | None -> false))

(* ------------------------------------------------------------------ *)
(* Pruned generation vs the naive pairwise oracle                       *)
(* ------------------------------------------------------------------ *)

(* Random bounded synthetic logs, unconstrained by recorder invariants:
   overlapping and nested intervals, dangling sources, self-feeding
   writes, and unsatisfiable tangles all appear, exercising both
   directions of the equisatisfiability claim (see constraints.ml,
   "Pruning").  Both generators assign variable indices by the same
   interval scan, so a model of one problem can be evaluated directly
   against the other. *)
let synth_log_gen =
  QCheck.Gen.(
    let evt = pair (int_range 0 2) (int_range 0 6) in
    let loc_g = map (fun o -> Runtime.Loc.field o "f") (int_range 0 2) in
    let dep_g =
      loc_g >>= fun loc ->
      opt evt >>= fun w ->
      evt >>= fun rf ->
      int_range 0 2 >>= fun span ->
      int_range 0 40 >>= fun dep_obs ->
      int_range 0 40 >>= fun w_obs ->
      return { Log.loc; w; rf; rl_c = snd rf + span; dep_obs; w_obs }
    in
    let range_g =
      loc_g >>= fun loc ->
      int_range 0 2 >>= fun rt ->
      int_range 0 5 >>= fun lo ->
      int_range 0 3 >>= fun span ->
      opt evt >>= fun w_in ->
      bool >>= fun prefix_reads ->
      bool >>= fun has_write ->
      int_range 0 40 >>= fun rng_obs ->
      int_range 0 40 >>= fun lo_obs ->
      int_range 0 40 >>= fun w_obs ->
      return
        {
          Log.loc;
          rt;
          lo;
          hi = lo + span;
          w_in;
          prefix_reads;
          has_write;
          rng_obs;
          lo_obs;
          w_obs;
        }
    in
    pair (list_size (int_range 0 5) dep_g) (list_size (int_range 0 4) range_g)
    >>= fun (deps, ranges) -> return { Log.empty with deps; ranges })

let sat_in (p : Dlsolver.Idl.problem) (m : int array) =
  List.for_all (fun (a : Dlsolver.Idl.atom) -> m.(a.u) - m.(a.v) <= a.k) p.hard
  && Array.for_all
       (fun cl ->
         Array.exists (fun (a : Dlsolver.Idl.atom) -> m.(a.u) - m.(a.v) <= a.k) cl)
       p.clauses

let prop_pruned_equisat =
  QCheck.Test.make ~count:400
    ~name:"pruned constraint generation equisatisfiable with the naive oracle"
    (QCheck.make ~print:Log.to_string synth_log_gen)
    (fun log ->
      let pruned = Constraints.generate log in
      let naive = Constraints.generate ~naive:true log in
      let budget =
        { Dlsolver.Idl.max_backtracks = 100_000; max_conflicts = max_int; max_time_s = 10.0 }
      in
      match
        ( Dlsolver.Idl.solve ~budget ?hint:pruned.hint pruned.problem,
          Dlsolver.Idl.solve ~budget ?hint:naive.hint naive.problem )
      with
      | Sat (m, _), Sat _ ->
        (* stronger than sat-agreement: the pruned model must satisfy the
           naive system verbatim (every dropped clause was entailed), and
           the schedule built from it must validate against the log *)
        sat_in naive.problem m
        && Validate.check ~zones:true log (Replayer.build_schedule log pruned m) = []
      | Unsat _, Unsat _ -> true
      | Aborted _, _ | _, Aborted _ -> QCheck.assume_fail ()
      | _ -> false)

let () =
  Alcotest.run "replay"
    [
      ("family", family_tests);
      ( "detail",
        [
          Alcotest.test_case "crash site reproduced" `Quick test_crash_site_reproduced;
          Alcotest.test_case "constraint shape" `Quick test_constraints_shape;
          Alcotest.test_case "schedule respects deps" `Quick test_schedule_respects_deps;
          Alcotest.test_case "torture mix" `Slow test_torture;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest ~long:false prop_replay_faithful;
          QCheck_alcotest.to_alcotest ~long:false prop_pruned_equisat;
        ] );
    ]
