(* Workload suite: all 28 benchmarks generate valid programs, run to
   completion deterministically, exhibit their intended sharing signatures,
   and (sampled) replay faithfully under Light. *)

open Runtime

let test_count () =
  Alcotest.(check int) "28 benchmarks" 28 (List.length Workloads.all);
  Alcotest.(check int) "24 in the paper matrix" 24 (List.length Workloads.paper)

let test_suites () =
  let count s =
    List.length (List.filter (fun (b : Workloads.benchmark) -> b.suite = s) Workloads.all)
  in
  Alcotest.(check int) "3 JGF" 3 (count "JGF");
  Alcotest.(check int) "8 STAMP" 8 (count "STAMP");
  Alcotest.(check int) "7 servers" 7 (count "Server");
  Alcotest.(check int) "6 DaCapo" 6 (count "DaCapo");
  Alcotest.(check int) "4 MsgPass" 4 (count "MsgPass")

let test_all_generate_and_run () =
  List.iter
    (fun (bm : Workloads.benchmark) ->
      let p = Workloads.program bm in
      let o = Interp.run ~sched:(Workloads.scheduler bm) p in
      Alcotest.(check bool) (bm.name ^ " finishes") true (o.status = Interp.AllFinished);
      Alcotest.(check int) (bm.name ^ " crash-free") 0 (List.length o.crashes);
      Alcotest.(check int) (bm.name ^ " spawns 8 workers") 9 (List.length o.counters))
    Workloads.all

let test_deterministic_given_seed () =
  let bm = List.hd Workloads.all in
  let p = Workloads.program bm in
  let run () = (Interp.run ~sched:(Workloads.scheduler ~seed:5 bm) p).reads in
  Alcotest.(check bool) "same seed, same run" true (run () = run ())

let test_scale_parameter () =
  let bm = Option.get (Workloads.by_name "cache4j") in
  let s1 = (Interp.run ~sched:(Workloads.scheduler bm) (Workloads.program ~scale:1 bm)).steps in
  let s2 = (Interp.run ~sched:(Workloads.scheduler bm) (Workloads.program ~scale:2 bm)).steps in
  Alcotest.(check bool) "scale grows the run" true (s2 > s1 * 3 / 2)

let test_signatures () =
  (* partitioned scientific kernels share far less than server workloads *)
  let density bm_name =
    let bm = Option.get (Workloads.by_name bm_name) in
    let p = Workloads.program bm in
    let plan = (Instrument.Transformer.transform p).Instrument.Transformer.plan in
    let o = Interp.run ~plan ~sched:(Workloads.scheduler bm) p in
    let accs = List.fold_left (fun a (_, c) -> a + c) 0 o.counters in
    float_of_int accs /. float_of_int o.steps
  in
  Alcotest.(check bool) "series shares least" true
    (density "jgf-series" < density "cache4j");
  Alcotest.(check bool) "avrora is hot" true (density "dacapo-avrora" > density "jgf-series")

let test_light_replays_workloads () =
  (* sampled: one benchmark per suite, small scale *)
  List.iter
    (fun name ->
      let bm = Option.get (Workloads.by_name name) in
      let p = Workloads.program bm in
      match
        Light_core.Light.record_and_replay ~sched:(Workloads.scheduler bm) p
      with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok (_, rr) ->
        Alcotest.(check bool) (name ^ " replay finished") true
          (rr.replay_outcome.status = Interp.AllFinished);
        Alcotest.(check (list string)) (name ^ " faithful") [] rr.faithful)
    [ "jgf-series"; "stamp-ssca2"; "weblech"; "dacapo-avrora"; "mp-queue";
      "mp-pipeline"; "mp-fanin"; "mp-barrier" ]

let test_measure_benchmark_fields () =
  let bm = Option.get (Workloads.by_name "jgf-series") in
  let m = Report.Experiments.measure_benchmark bm in
  Alcotest.(check bool) "leap slower than light" true
    (m.leap.overhead > m.light_both.overhead);
  Alcotest.(check bool) "light space smaller" true
    (m.light_both.space_longs < m.leap.space_longs);
  Alcotest.(check bool) "positive steps" true (m.steps > 0)

let () =
  Alcotest.run "workloads"
    [
      ( "generation",
        [
          Alcotest.test_case "28 benchmarks" `Quick test_count;
          Alcotest.test_case "suite composition" `Quick test_suites;
          Alcotest.test_case "all run crash-free" `Quick test_all_generate_and_run;
          Alcotest.test_case "seeded determinism" `Quick test_deterministic_given_seed;
          Alcotest.test_case "scale parameter" `Quick test_scale_parameter;
          Alcotest.test_case "sharing signatures" `Quick test_signatures;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "Light replays workloads" `Slow test_light_replays_workloads;
          Alcotest.test_case "measure_benchmark" `Slow test_measure_benchmark_fields;
        ] );
    ]
