(* Recorder and log invariants: Algorithm 1's structure, the prec
   compression, O1 run records, O2 subsumption, space accounting,
   serialization.  QCheck properties run the recorder over many seeds. *)

open Light_core
open Runtime

let prog_src = {|
  class C { f; g; }
  global shared;
  global lk;
  fn worker(id, n) {
    i = 0;
    while (i < n) {
      shared.f = id * 100 + i;
      v = shared.f;
      sync (lk) { lk.g = lk.g + 1; }
      i = i + 1;
    }
  }
  main {
    shared = new C; lk = new C;
    sync (lk) { lk.g = 0; }
    shared.f = 0;
    spawn a = worker(1, 8);
    spawn b = worker(2, 8);
    join a; join b;
    x = shared.f;
    print x;
  }
|}

let program = lazy (Lang.Check.validate_exn (Lang.Parser.parse_program prog_src))

let record ?(seed = 3) ?(stickiness = 4) variant =
  Light.record ~variant ~sched:(Sched.sticky ~seed ~stickiness) (Lazy.force program)

(* ------------------------------------------------------------------ *)
(* Structural invariants                                                *)
(* ------------------------------------------------------------------ *)

let check_log_wellformed (log : Log.t) =
  let counter_of t = Option.value ~default:0 (List.assoc_opt t log.counters) in
  List.iter
    (fun (d : Log.dep) ->
      let rt, rc = d.rf in
      Alcotest.(check bool) "read counter in range" true (rc >= 1 && rc <= counter_of rt);
      Alcotest.(check bool) "span ordered" true (d.rl_c >= rc);
      match d.w with
      | Some (wt, wc) ->
        Alcotest.(check bool) "write counter in range" true (wc >= 1 && wc <= counter_of wt);
        Alcotest.(check bool) "no self-loop into the future" true
          (not (wt = rt && wc >= rc))
      | None -> ())
    log.deps;
  List.iter
    (fun (r : Log.range) ->
      Alcotest.(check bool) "range ordered" true (r.lo <= r.hi);
      Alcotest.(check bool) "range in range" true (r.hi <= counter_of r.rt))
    log.ranges;
  (* per (thread, loc), records must not overlap in counter space *)
  let spans = Hashtbl.create 64 in
  let add t loc lo hi =
    let key = (t, loc) in
    let prev = Option.value ~default:[] (Hashtbl.find_opt spans key) in
    List.iter
      (fun (lo', hi') ->
        if not (hi < lo' || hi' < lo) then
          Alcotest.failf "overlapping records for thread %d: [%d,%d] vs [%d,%d]" t lo hi lo' hi')
      prev;
    Hashtbl.replace spans key ((lo, hi) :: prev)
  in
  List.iter (fun (d : Log.dep) -> add (fst d.rf) d.loc (snd d.rf) d.rl_c) log.deps;
  List.iter (fun (r : Log.range) -> add r.rt r.loc r.lo r.hi) log.ranges

let test_log_wellformed () =
  List.iter
    (fun v -> check_log_wellformed (record v).log)
    [ Light.v_basic; Light.v_o1; Light.v_both ]

let test_basic_has_no_ranges () =
  let r = record Light.v_basic in
  Alcotest.(check int) "V_basic records deps only" 0 (List.length r.log.ranges);
  Alcotest.(check bool) "has deps" true (List.length r.log.deps > 0)

let test_o2_reduces_records () =
  let o1 = record Light.v_o1 in
  let both = record Light.v_both in
  Alcotest.(check bool)
    (Printf.sprintf "O2 shrinks the log (%d -> %d longs)" o1.space_longs both.space_longs)
    true
    (both.space_longs <= o1.space_longs)

let test_o1_never_hurts_space () =
  List.iter
    (fun seed ->
      let basic = record ~seed Light.v_basic in
      let o1 = record ~seed Light.v_o1 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: O1 %d <= basic %d longs" seed o1.space_longs
           basic.space_longs)
        true
        (o1.space_longs <= basic.space_longs))
    [ 1; 2; 3; 4; 5; 6 ]

let test_counters_match_outcome () =
  let r = record Light.v_both in
  Alcotest.(check bool) "counters copied" true (r.log.counters = r.outcome.counters)

let test_syscalls_recorded () =
  let src = "main { t1 = @time(); t2 = @time(); r = @rand(5); print t1 + t2 + r; }" in
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  let r = Light.record ~sched:(Sched.round_robin ()) p in
  Alcotest.(check int) "three syscalls" 3 (List.length r.log.syscalls)

let test_overhead_positive () =
  let r = record Light.v_both in
  Alcotest.(check bool) "nonzero overhead" true (r.overhead > 0.0);
  Alcotest.(check bool) "bounded overhead" true (r.overhead < 5.0)

let test_guarded_skip_count () =
  (* fully lock-disciplined program: O2 must skip all field recording *)
  let src =
    "class C { n; } global lk;
     fn w(k) { while (k > 0) { sync (lk) { lk.n = lk.n + 1; } k = k - 1; } }
     main { lk = new C; sync (lk) { lk.n = 0; }
            spawn a = w(5); spawn b = w(5); join a; join b; }"
  in
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  let both = Light.record ~variant:Light.v_both ~sched:(Sched.sticky ~seed:1 ~stickiness:3) p in
  let o1 = Light.record ~variant:Light.v_o1 ~sched:(Sched.sticky ~seed:1 ~stickiness:3) p in
  Alcotest.(check bool)
    (Printf.sprintf "O2 shrinks fully-guarded log (%d < %d)" both.space_longs o1.space_longs)
    true
    (both.space_longs < o1.space_longs);
  (* the remaining records are on ghost locations or on the global slot
     holding the lock reference (read outside the sync region) — never on
     the guarded field *)
  let allowed (l : Loc.t) = Loc.is_ghost l || l.obj = 0 in
  List.iter
    (fun (d : Log.dep) ->
      Alcotest.(check bool) "dep not on guarded field" true (allowed d.loc))
    both.log.deps;
  List.iter
    (fun (r : Log.range) ->
      Alcotest.(check bool) "range not on guarded field" true (allowed r.loc))
    both.log.ranges

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let test_log_roundtrip () =
  List.iter
    (fun v ->
      let log = (record v).log in
      let log' = Log.of_string (Log.to_string log) in
      Alcotest.(check bool) "deps preserved" true (log.deps = log'.deps);
      Alcotest.(check bool) "ranges preserved" true (log.ranges = log'.ranges);
      Alcotest.(check bool) "syscalls preserved" true (log.syscalls = log'.syscalls);
      Alcotest.(check bool) "counters preserved" true (log.counters = log'.counters);
      Alcotest.(check bool) "flags preserved" true (log.o1 = log'.o1 && log.o2 = log'.o2))
    [ Light.v_basic; Light.v_both ]

let test_log_roundtrip_tricky_values () =
  (* string values and map keys with spaces / percent signs *)
  let src =
    {|global m; main { m = newmap; m{"k 1%x"} = "v 2%y"; a = m{"k 1%x"}; print a; }|}
  in
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  let r = Light.record ~sched:(Sched.round_robin ()) p in
  let log' = Log.of_string (Log.to_string r.log) in
  Alcotest.(check bool) "tricky fields roundtrip" true (r.log.deps = log'.deps && r.log.ranges = log'.ranges)

(* qcheck: recorder invariants over random seeds and variants *)
let seed_variant_gen =
  QCheck.make
    ~print:(fun (s, k, v) -> Printf.sprintf "seed=%d stick=%d %s" s k (Recorder.variant_name v))
    QCheck.Gen.(
      triple (int_range 1 50) (int_range 1 12)
        (oneofl [ Recorder.v_basic; Recorder.v_o1; Recorder.v_both ]))

let prop_log_wellformed =
  QCheck.Test.make ~count:60 ~name:"recorder logs well-formed across seeds" seed_variant_gen
    (fun (seed, stickiness, variant) ->
      let r = record ~seed ~stickiness variant in
      check_log_wellformed r.log;
      Log.space_longs r.log >= 0)

let () =
  Alcotest.run "recorder"
    [
      ( "structure",
        [
          Alcotest.test_case "well-formed logs" `Quick test_log_wellformed;
          Alcotest.test_case "V_basic: deps only" `Quick test_basic_has_no_ranges;
          Alcotest.test_case "O2 reduces records" `Quick test_o2_reduces_records;
          Alcotest.test_case "O1 never hurts space" `Quick test_o1_never_hurts_space;
          Alcotest.test_case "counters copied" `Quick test_counters_match_outcome;
          Alcotest.test_case "syscalls recorded" `Quick test_syscalls_recorded;
          Alcotest.test_case "overhead sane" `Quick test_overhead_positive;
          Alcotest.test_case "O2 skips guarded fields" `Quick test_guarded_skip_count;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "roundtrip" `Quick test_log_roundtrip;
          Alcotest.test_case "tricky values" `Quick test_log_roundtrip_tricky_values;
          QCheck_alcotest.to_alcotest prop_log_wellformed;
        ] );
    ]
