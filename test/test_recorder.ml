(* Recorder and log invariants: Algorithm 1's structure, the prec
   compression, O1 run records, O2 subsumption, space accounting,
   serialization.  QCheck properties run the recorder over many seeds. *)

open Light_core
open Runtime

let prog_src = {|
  class C { f; g; }
  global shared;
  global lk;
  fn worker(id, n) {
    i = 0;
    while (i < n) {
      shared.f = id * 100 + i;
      v = shared.f;
      sync (lk) { lk.g = lk.g + 1; }
      i = i + 1;
    }
  }
  main {
    shared = new C; lk = new C;
    sync (lk) { lk.g = 0; }
    shared.f = 0;
    spawn a = worker(1, 8);
    spawn b = worker(2, 8);
    join a; join b;
    x = shared.f;
    print x;
  }
|}

let program = lazy (Lang.Check.validate_exn (Lang.Parser.parse_program prog_src))

let record ?(seed = 3) ?(stickiness = 4) variant =
  Light.record ~variant ~sched:(Sched.sticky ~seed ~stickiness) (Lazy.force program)

(* ------------------------------------------------------------------ *)
(* Structural invariants                                                *)
(* ------------------------------------------------------------------ *)

let check_log_wellformed (log : Log.t) =
  let counter_of t = Option.value ~default:0 (List.assoc_opt t log.counters) in
  List.iter
    (fun (d : Log.dep) ->
      let rt, rc = d.rf in
      Alcotest.(check bool) "read counter in range" true (rc >= 1 && rc <= counter_of rt);
      Alcotest.(check bool) "span ordered" true (d.rl_c >= rc);
      match d.w with
      | Some (wt, wc) ->
        Alcotest.(check bool) "write counter in range" true (wc >= 1 && wc <= counter_of wt);
        Alcotest.(check bool) "no self-loop into the future" true
          (not (wt = rt && wc >= rc))
      | None -> ())
    log.deps;
  List.iter
    (fun (r : Log.range) ->
      Alcotest.(check bool) "range ordered" true (r.lo <= r.hi);
      Alcotest.(check bool) "range in range" true (r.hi <= counter_of r.rt))
    log.ranges;
  (* per (thread, loc), records must not overlap in counter space *)
  let spans = Hashtbl.create 64 in
  let add t loc lo hi =
    let key = (t, loc) in
    let prev = Option.value ~default:[] (Hashtbl.find_opt spans key) in
    List.iter
      (fun (lo', hi') ->
        if not (hi < lo' || hi' < lo) then
          Alcotest.failf "overlapping records for thread %d: [%d,%d] vs [%d,%d]" t lo hi lo' hi')
      prev;
    Hashtbl.replace spans key ((lo, hi) :: prev)
  in
  List.iter (fun (d : Log.dep) -> add (fst d.rf) d.loc (snd d.rf) d.rl_c) log.deps;
  List.iter (fun (r : Log.range) -> add r.rt r.loc r.lo r.hi) log.ranges

let test_log_wellformed () =
  List.iter
    (fun v -> check_log_wellformed (record v).log)
    [ Light.v_basic; Light.v_o1; Light.v_both ]

let test_basic_has_no_ranges () =
  let r = record Light.v_basic in
  Alcotest.(check int) "V_basic records deps only" 0 (List.length r.log.ranges);
  Alcotest.(check bool) "has deps" true (List.length r.log.deps > 0)

let test_o2_reduces_records () =
  let o1 = record Light.v_o1 in
  let both = record Light.v_both in
  Alcotest.(check bool)
    (Printf.sprintf "O2 shrinks the log (%d -> %d longs)" o1.space_longs both.space_longs)
    true
    (both.space_longs <= o1.space_longs)

let test_o1_never_hurts_space () =
  List.iter
    (fun seed ->
      let basic = record ~seed Light.v_basic in
      let o1 = record ~seed Light.v_o1 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: O1 %d <= basic %d longs" seed o1.space_longs
           basic.space_longs)
        true
        (o1.space_longs <= basic.space_longs))
    [ 1; 2; 3; 4; 5; 6 ]

let test_counters_match_outcome () =
  let r = record Light.v_both in
  Alcotest.(check bool) "counters copied" true (r.log.counters = r.outcome.counters)

let test_syscalls_recorded () =
  let src = "main { t1 = @time(); t2 = @time(); r = @rand(5); print t1 + t2 + r; }" in
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  let r = Light.record ~sched:(Sched.round_robin ()) p in
  Alcotest.(check int) "three syscalls" 3 (List.length r.log.syscalls)

let test_overhead_positive () =
  let r = record Light.v_both in
  Alcotest.(check bool) "nonzero overhead" true (r.overhead > 0.0);
  Alcotest.(check bool) "bounded overhead" true (r.overhead < 5.0)

let test_guarded_skip_count () =
  (* fully lock-disciplined program: O2 must skip all field recording *)
  let src =
    "class C { n; } global lk;
     fn w(k) { while (k > 0) { sync (lk) { lk.n = lk.n + 1; } k = k - 1; } }
     main { lk = new C; sync (lk) { lk.n = 0; }
            spawn a = w(5); spawn b = w(5); join a; join b; }"
  in
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  let both = Light.record ~variant:Light.v_both ~sched:(Sched.sticky ~seed:1 ~stickiness:3) p in
  let o1 = Light.record ~variant:Light.v_o1 ~sched:(Sched.sticky ~seed:1 ~stickiness:3) p in
  Alcotest.(check bool)
    (Printf.sprintf "O2 shrinks fully-guarded log (%d < %d)" both.space_longs o1.space_longs)
    true
    (both.space_longs < o1.space_longs);
  (* the remaining records are on ghost locations or on the global slot
     holding the lock reference (read outside the sync region) — never on
     the guarded field *)
  let allowed (l : Loc.t) = Loc.is_ghost l || l.obj = 0 in
  List.iter
    (fun (d : Log.dep) ->
      Alcotest.(check bool) "dep not on guarded field" true (allowed d.loc))
    both.log.deps;
  List.iter
    (fun (r : Log.range) ->
      Alcotest.(check bool) "range not on guarded field" true (allowed r.loc))
    both.log.ranges

(* ------------------------------------------------------------------ *)
(* The five open_run closing shapes (white-box)                         *)
(* ------------------------------------------------------------------ *)

(* Drive the recorder directly with synthetic accesses and assert the exact
   encoding each run shape emits at close (previously covered only
   indirectly through the workload differentials). *)

let loc0 : Loc.t = { obj = 7; fld = 0 }

let outcome0 : Interp.outcome =
  {
    status = Interp.AllFinished;
    steps = 0;
    crashes = [];
    reads = [];
    outputs = [];
    counters = [];
    syscalls = [];
    final_heap = [];
    trace = [];
  }

(* an O1 recorder whose single site 0 is recorded *)
let o1_recorder () = Recorder.create ~variant:Recorder.v_o1 (Bytes.make 1 Runtime.Plan.m_recorded)

let access r ~tid ~c kind =
  Recorder.on_access r
    { Event.tid; c; loc = loc0; kind; site = 0; ghost = Event.NotGhost }

let close (r : Recorder.t) : Log.t = Recorder.finalize r ~outcome:outcome0

let test_shape_reads_only () =
  (* a foreign write, then a pure-read run: closes through the prec map as
     one dep (w_in -> read span) *)
  let r = o1_recorder () in
  access r ~tid:1 ~c:1 Event.Write;  (* clock 1 *)
  access r ~tid:2 ~c:1 Event.Read;   (* clock 2: breaks t1's run *)
  access r ~tid:2 ~c:2 Event.Read;   (* clock 3 *)
  access r ~tid:2 ~c:3 Event.Read;   (* clock 4 *)
  let log = close r in
  Alcotest.(check int) "no ranges" 0 (List.length log.ranges);
  match log.deps with
  | [ d ] ->
    Alcotest.(check bool) "w = t1's write" true (d.w = Some (1, 1));
    Alcotest.(check bool) "rf = first read" true (d.rf = (2, 1));
    Alcotest.(check int) "rl = last read" 3 d.rl_c;
    Alcotest.(check int) "w stamped at clock 1" 1 d.w_obs;
    Alcotest.(check int) "span stamped at clock 4" 4 d.dep_obs
  | ds -> Alcotest.failf "expected exactly one dep, got %d" (List.length ds)

let test_shape_writes_only () =
  (* a pure-write run is dropped: its last write would be referenced by the
     next reader's w_in, earlier writes are blind *)
  let r = o1_recorder () in
  access r ~tid:1 ~c:1 Event.Write;
  access r ~tid:1 ~c:2 Event.Write;
  access r ~tid:1 ~c:3 Event.Write;
  let log = close r in
  Alcotest.(check int) "no deps" 0 (List.length log.deps);
  Alcotest.(check int) "no ranges" 0 (List.length log.ranges)

let test_shape_reads_then_writes () =
  (* [R+ W+]: one dep (w_in -> prefix-read span); the trailing writes
     behave like V_basic writes and need no record of their own *)
  let r = o1_recorder () in
  access r ~tid:1 ~c:1 Event.Write;  (* clock 1: the feeding write *)
  access r ~tid:2 ~c:1 Event.Read;   (* clock 2 *)
  access r ~tid:2 ~c:2 Event.Read;   (* clock 3 *)
  access r ~tid:2 ~c:3 Event.Write;  (* clock 4 *)
  access r ~tid:2 ~c:4 Event.Write;  (* clock 5 *)
  let log = close r in
  Alcotest.(check int) "no ranges" 0 (List.length log.ranges);
  match log.deps with
  | [ d ] ->
    Alcotest.(check bool) "w = w_in" true (d.w = Some (1, 1));
    Alcotest.(check bool) "rf = run lo" true (d.rf = (2, 1));
    Alcotest.(check int) "rl = last prefix read" 2 d.rl_c;
    Alcotest.(check int) "span stamped at the last prefix read" 3 d.dep_obs
  | ds -> Alcotest.failf "expected exactly one dep, got %d" (List.length ds)

let test_shape_writes_then_reads () =
  (* [W+ R+]: one dep (the run's own last write -> trailing read span) *)
  let r = o1_recorder () in
  access r ~tid:2 ~c:1 Event.Write;  (* clock 1 *)
  access r ~tid:2 ~c:2 Event.Write;  (* clock 2: the referenced write *)
  access r ~tid:2 ~c:3 Event.Read;   (* clock 3 *)
  access r ~tid:2 ~c:4 Event.Read;   (* clock 4 *)
  let log = close r in
  Alcotest.(check int) "no ranges" 0 (List.length log.ranges);
  match log.deps with
  | [ d ] ->
    Alcotest.(check bool) "w = own last write" true (d.w = Some (2, 2));
    Alcotest.(check int) "w stamped at clock 2" 2 d.w_obs;
    Alcotest.(check bool) "rf = first read after w" true (d.rf = (2, 3));
    Alcotest.(check int) "rl = run hi" 4 d.rl_c;
    Alcotest.(check int) "span stamped at run hi" 4 d.dep_obs
  | ds -> Alcotest.failf "expected exactly one dep, got %d" (List.length ds)

let test_shape_middle_read () =
  (* a read strictly between two own writes: no single dep carries the
     interval's noninterference constraint — a range record is emitted *)
  let r = o1_recorder () in
  access r ~tid:2 ~c:1 Event.Write;  (* clock 1 *)
  access r ~tid:2 ~c:2 Event.Read;   (* clock 2 *)
  access r ~tid:2 ~c:3 Event.Write;  (* clock 3 *)
  let log = close r in
  Alcotest.(check int) "no deps" 0 (List.length log.deps);
  match log.ranges with
  | [ rg ] ->
    Alcotest.(check int) "owned by t2" 2 rg.rt;
    Alcotest.(check int) "lo" 1 rg.lo;
    Alcotest.(check int) "hi" 3 rg.hi;
    Alcotest.(check bool) "no feeding write (run starts with a write)" true
      (rg.w_in = None);
    Alcotest.(check bool) "no prefix reads" false rg.prefix_reads;
    Alcotest.(check bool) "has a write" true rg.has_write;
    Alcotest.(check int) "lo stamped at clock 1" 1 rg.lo_obs;
    Alcotest.(check int) "hi stamped at clock 3" 3 rg.rng_obs
  | rs -> Alcotest.failf "expected exactly one range, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let test_log_roundtrip () =
  List.iter
    (fun v ->
      let log = (record v).log in
      let log' = Log.of_string (Log.to_string log) in
      Alcotest.(check bool) "deps preserved" true (log.deps = log'.deps);
      Alcotest.(check bool) "ranges preserved" true (log.ranges = log'.ranges);
      Alcotest.(check bool) "syscalls preserved" true (log.syscalls = log'.syscalls);
      Alcotest.(check bool) "counters preserved" true (log.counters = log'.counters);
      Alcotest.(check bool) "flags preserved" true (log.o1 = log'.o1 && log.o2 = log'.o2))
    [ Light.v_basic; Light.v_both ]

let test_log_roundtrip_tricky_values () =
  (* string values and map keys with spaces / percent signs *)
  let src =
    {|global m; main { m = newmap; m{"k 1%x"} = "v 2%y"; a = m{"k 1%x"}; print a; }|}
  in
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  let r = Light.record ~sched:(Sched.round_robin ()) p in
  let log' = Log.of_string (Log.to_string r.log) in
  Alcotest.(check bool) "tricky fields roundtrip" true (r.log.deps = log'.deps && r.log.ranges = log'.ranges)

(* the writer emits digit-by-digit; pin the exact bytes of a small log so a
   formatting regression cannot hide behind a parser that accepts it *)
let test_serialization_exact_bytes () =
  let fx = Loc.fld_of_name "f x" in
  let log : Log.t =
    {
      deps =
        [
          { loc = { obj = 3; fld = fx }; w = Some (1, 4); rf = (2, 5); rl_c = 7;
            dep_obs = 11; w_obs = 2 };
          { loc = { obj = 3; fld = -5 }; w = None; rf = (1, 1); rl_c = 1;
            dep_obs = 1; w_obs = 0 };
        ];
      ranges =
        [
          { loc = { obj = 3; fld = fx }; rt = 2; lo = 6; hi = 9; w_in = None;
            prefix_reads = true; has_write = false; rng_obs = 12; lo_obs = 8;
            w_obs = 0 };
        ];
      syscalls = [ (1, 0, "@rand", Runtime.Value.VInt 42) ];
      counters = [ (1, 5); (2, 9) ];
      o1 = true;
      o2 = false;
    }
  in
  let expected =
    Printf.sprintf
      "light-log v3 o1=true o2=false\n\
       F %d f%%20x\n\
       T 1 5\n\
       T 2 9\n\
       D 3/%d 1:4 2:5 7 11 2\n\
       D 3/-5 - 1:1 1 1 0\n\
       R 3/%d 2 6 9 - true false 12 8 0\n\
       S 1 0 @rand i42\n"
      fx fx fx
  in
  Alcotest.(check string) "v3 bytes pinned" expected (Log.to_string log);
  let expected_v2 =
    "light-log v2 o1=true o2=false\n\
     T 1 5\n\
     T 2 9\n\
     D 3/f%20x 1:4 2:5 7 11 2\n\
     D 3/#2 - 1:1 1 1 0\n\
     R 3/f%20x 2 6 9 - true false 12 8 0\n\
     S 1 0 @rand i42\n"
  in
  Alcotest.(check string) "v2 bytes pinned" expected_v2 (Log.to_string_v2 log)

(* qcheck: serialization round-trips over random logs (v2 and v3) *)
let log_gen : Log.t QCheck.arbitrary =
  let open QCheck.Gen in
  let field_name =
    oneofl [ "f"; "g"; "count"; "k 1%x"; "a/b:c"; "m%20"; "x y z" ]
  in
  let loc =
    let* obj = int_range (-5) 500 in
    let* fld =
      oneof [ map Loc.fld_of_name field_name; map (fun i -> -(2 * i) - 1) (int_range 0 20) ]
    in
    return { Loc.obj; fld }
  in
  let evt = pair (int_range 1 9) (int_range 1 999) in
  let dep =
    let* loc = loc in
    let* w = opt evt in
    let* rf = evt in
    let* span = int_range 0 50 in
    let* dep_obs = int_range 0 5000 in
    let* w_obs = int_range 0 5000 in
    return { Log.loc; w; rf; rl_c = snd rf + span; dep_obs; w_obs }
  in
  let range =
    let* loc = loc in
    let* rt = int_range 1 9 in
    let* lo = int_range 1 999 in
    let* span = int_range 0 50 in
    let* w_in = opt evt in
    let* prefix_reads = bool in
    let* has_write = bool in
    let* rng_obs = int_range 0 5000 in
    let* lo_obs = int_range 0 5000 in
    let* w_obs = int_range 0 5000 in
    return
      { Log.loc; rt; lo; hi = lo + span; w_in; prefix_reads; has_write; rng_obs;
        lo_obs; w_obs }
  in
  let value =
    let open Runtime.Value in
    oneof
      [
        map (fun n -> VInt n) small_signed_int;
        map (fun b -> VBool b) bool;
        return VNull;
        map (fun o -> VRef o) (int_range 0 99);
        map (fun s -> VStr s) (oneofl [ ""; "v 2%y"; "plain"; "a:b/c" ]);
        map (fun t -> VThread t) (int_range 1 9);
      ]
  in
  let syscall =
    let* t = int_range 1 9 in
    let* i = int_range 0 20 in
    let* name = oneofl [ "@time"; "@rand"; "@strlen" ] in
    let* v = value in
    return (t, i, name, v)
  in
  let gen =
    let* deps = list_size (int_range 0 6) dep in
    let* ranges = list_size (int_range 0 6) range in
    let* syscalls = list_size (int_range 0 4) syscall in
    let* counters = list_size (int_range 0 4) (pair (int_range 1 9) (int_range 1 999)) in
    let* o1 = bool in
    let* o2 = bool in
    return { Log.deps; ranges; syscalls; counters; o1; o2 }
  in
  QCheck.make
    ~print:(fun l -> Log.to_string_v2 l ^ "\n---\n" ^ Log.to_string l)
    gen

let prop_random_log_roundtrip =
  QCheck.Test.make ~count:200 ~name:"random logs round-trip (v2 and v3)" log_gen
    (fun log ->
      Log.of_string (Log.to_string log) = log
      && Log.of_string (Log.to_string_v2 log) = log)

(* qcheck: recorder invariants over random seeds and variants *)
let seed_variant_gen =
  QCheck.make
    ~print:(fun (s, k, v) -> Printf.sprintf "seed=%d stick=%d %s" s k (Recorder.variant_name v))
    QCheck.Gen.(
      triple (int_range 1 50) (int_range 1 12)
        (oneofl [ Recorder.v_basic; Recorder.v_o1; Recorder.v_both ]))

let prop_log_wellformed =
  QCheck.Test.make ~count:60 ~name:"recorder logs well-formed across seeds" seed_variant_gen
    (fun (seed, stickiness, variant) ->
      let r = record ~seed ~stickiness variant in
      check_log_wellformed r.log;
      Log.space_longs r.log >= 0)

let () =
  Alcotest.run "recorder"
    [
      ( "structure",
        [
          Alcotest.test_case "well-formed logs" `Quick test_log_wellformed;
          Alcotest.test_case "V_basic: deps only" `Quick test_basic_has_no_ranges;
          Alcotest.test_case "O2 reduces records" `Quick test_o2_reduces_records;
          Alcotest.test_case "O1 never hurts space" `Quick test_o1_never_hurts_space;
          Alcotest.test_case "counters copied" `Quick test_counters_match_outcome;
          Alcotest.test_case "syscalls recorded" `Quick test_syscalls_recorded;
          Alcotest.test_case "overhead sane" `Quick test_overhead_positive;
          Alcotest.test_case "O2 skips guarded fields" `Quick test_guarded_skip_count;
        ] );
      ( "closing-shapes",
        [
          Alcotest.test_case "reads-only -> prec dep" `Quick test_shape_reads_only;
          Alcotest.test_case "writes-only -> dropped" `Quick test_shape_writes_only;
          Alcotest.test_case "R+W+ -> dep on w_in" `Quick test_shape_reads_then_writes;
          Alcotest.test_case "W+R+ -> dep on own write" `Quick test_shape_writes_then_reads;
          Alcotest.test_case "middle read -> range" `Quick test_shape_middle_read;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "roundtrip" `Quick test_log_roundtrip;
          Alcotest.test_case "tricky values" `Quick test_log_roundtrip_tricky_values;
          Alcotest.test_case "exact bytes pinned" `Quick test_serialization_exact_bytes;
          QCheck_alcotest.to_alcotest prop_random_log_roundtrip;
          QCheck_alcotest.to_alcotest prop_log_wellformed;
        ] );
    ]
