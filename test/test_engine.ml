(* Engine tests: the deterministic-merge contract.  A pool of any size
   must merge results in job-index order, so every observable below is
   byte-identical for pool sizes 1 (fully inline) and N; exceptions
   propagate deterministically (lowest job index wins); nested maps on one
   pool cannot deadlock because the caller participates as a worker. *)

open Runtime

let parse src = Lang.Check.validate_exn (Lang.Parser.parse_program src)

let racy = parse {|
  global x; global y;
  fn w1() { x = 1; y = x + 1; x = y * 2; }
  fn w2() { x = 5; y = x + 3; x = y * 7; }
  main { x = 0; y = 0; spawn a = w1(); spawn b = w2(); join a; join b; print x; print y; }
|}

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)
(* ------------------------------------------------------------------ *)

let test_default_size () =
  Alcotest.(check bool) "default size positive" true (Engine.Pool.default_size () >= 1);
  Alcotest.(check bool) "default pool sized" true
    (Engine.Pool.size (Engine.Pool.get_default ()) >= 1)

let test_map_array_indexed_order () =
  Engine.Pool.with_pool ~size:3 (fun pool ->
      let input = Array.init 50 (fun i -> i * 3) in
      let out = Engine.Pool.map_array pool ~f:(fun i x -> (i, x + 1)) input in
      Alcotest.(check bool) "results in index order" true
        (out = Array.init 50 (fun i -> (i, (i * 3) + 1))))

let test_map_list_order () =
  Engine.Pool.with_pool ~size:4 (fun pool ->
      let out = Engine.Pool.map_list pool ~f:(fun x -> x * x) (List.init 17 (fun i -> i)) in
      Alcotest.(check (list int)) "order preserved" (List.init 17 (fun i -> i * i)) out)

let test_edge_sizes () =
  Engine.Pool.with_pool ~size:2 (fun pool ->
      Alcotest.(check (list int)) "empty input" [] (Engine.Pool.map_list pool ~f:succ []);
      Alcotest.(check (list int)) "singleton" [ 42 ] (Engine.Pool.map_list pool ~f:succ [ 41 ]);
      Alcotest.(check bool) "more jobs than workers" true
        (Engine.Pool.map_list pool ~f:succ (List.init 100 Fun.id)
        = List.init 100 (fun i -> i + 1)))

let test_pool_size_invariance () =
  let compute size =
    Engine.Pool.with_pool ~size (fun pool ->
        Engine.Pool.map_list pool ~f:(fun x -> (x * x) - x) (List.init 31 Fun.id))
  in
  let serial = List.init 31 (fun x -> (x * x) - x) in
  Alcotest.(check (list int)) "size 1 = serial" serial (compute 1);
  Alcotest.(check (list int)) "size 4 = serial" serial (compute 4)

let test_exception_lowest_index () =
  (* several jobs fail; the merge must re-raise the lowest-index failure
     regardless of which domain hit its failure first *)
  Engine.Pool.with_pool ~size:4 (fun pool ->
      match
        Engine.Pool.map_array pool
          ~f:(fun i () -> if i mod 3 = 2 then failwith (string_of_int i) else i)
          (Array.make 10 ())
      with
      | exception Failure msg -> Alcotest.(check string) "index 2 raised" "2" msg
      | _ -> Alcotest.fail "expected a propagated exception")

let test_nested_maps_no_deadlock () =
  (* inner maps run from worker domains of the same pool; the caller of
     each inner map drains its own index range, so this terminates even
     with a single helper domain *)
  Engine.Pool.with_pool ~size:2 (fun pool ->
      let out =
        Engine.Pool.map_list pool
          ~f:(fun a -> Engine.Pool.map_list pool ~f:(fun b -> (a * 10) + b) [ 1; 2; 3 ])
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check bool) "nested results correct" true
        (out = List.init 4 (fun i -> List.map (fun b -> ((i + 1) * 10) + b) [ 1; 2; 3 ])))

(* ------------------------------------------------------------------ *)
(* Batch                                                                *)
(* ------------------------------------------------------------------ *)

let test_grid_shape () =
  let jobs =
    Engine.Batch.grid ~seeds:[ 1; 2 ]
      ~sched:(fun ~seed -> Sched.sticky ~seed ~stickiness:4)
      ~label:"racy" racy
  in
  (* seeds outer x default three variants inner *)
  Alcotest.(check int) "2 seeds x 3 variants" 6 (List.length jobs)

let rt_summary (rt : Engine.Batch.roundtrip) =
  match rt.rt_result with
  | Error e -> (rt.rt_job.label, Error e)
  | Ok (r, rr) ->
    let o = r.Light_core.Light.outcome in
    let ro = rr.Light_core.Light.replay_outcome in
    ( rt.rt_job.label,
      Ok (o.Interp.outputs, o.Interp.reads, ro.Interp.outputs, rr.faithful) )

let test_batch_pool_size_invariant () =
  let run size =
    Engine.Pool.with_pool ~size (fun pool ->
        Engine.Batch.grid ~seeds:[ 1; 2 ]
          ~sched:(fun ~seed -> Sched.sticky ~seed ~stickiness:4)
          ~label:"racy" racy
        |> Engine.Batch.roundtrips ~pool
        |> List.map rt_summary)
  in
  let one = run 1 and four = run 4 in
  Alcotest.(check bool) "pool sizes 1 and 4 merge identically" true (one = four);
  List.iter
    (fun (label, s) ->
      match s with
      | Error e -> Alcotest.failf "%s: %s" label e
      | Ok (_, _, _, faithful) ->
        Alcotest.(check (list string)) (label ^ " faithful") [] faithful)
    one

let test_batch_map_is_deterministic () =
  (* the generic fan-out merges in input order under any pool size *)
  let xs = List.init 40 (fun i -> i * 7) in
  let f x = Printf.sprintf "%d:%d" x (x mod 13) in
  let via size = Engine.Pool.with_pool ~size (fun pool -> Engine.Batch.map ~pool ~f xs) in
  Alcotest.(check (list string)) "matches serial map" (List.map f xs) (via 3);
  Alcotest.(check bool) "sizes agree" true (via 1 = via 5)

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "default size" `Quick test_default_size;
          Alcotest.test_case "map_array index order" `Quick test_map_array_indexed_order;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
          Alcotest.test_case "edge sizes" `Quick test_edge_sizes;
          Alcotest.test_case "pool-size invariance" `Quick test_pool_size_invariance;
          Alcotest.test_case "lowest-index exception" `Quick test_exception_lowest_index;
          Alcotest.test_case "nested maps terminate" `Quick test_nested_maps_no_deadlock;
        ] );
      ( "batch",
        [
          Alcotest.test_case "grid shape" `Quick test_grid_shape;
          Alcotest.test_case "roundtrips pool-size invariant" `Quick test_batch_pool_size_invariant;
          Alcotest.test_case "map deterministic" `Quick test_batch_map_is_deterministic;
        ] );
    ]
