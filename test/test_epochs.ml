(* Epoch-based recording: checkpoint/restore equivalence, v4 chunk
   round-trips, and the epoch-vs-monolithic replay differential.

   Contracts under test (DESIGN.md, "Epoch-based recording"):

   - {e scheduler save/load}: restoring a scheduler's pick state into a
     fresh instance of the same constructor reproduces the pick stream
     exactly — the checkpoint's scheduler token is sufficient;
   - {e snapshot/restore}: pausing any workload at a step boundary,
     snapshotting, and resuming from the restored state is
     observationally identical to the uninterrupted run — status, steps,
     counters, crashes, final heap, and the concatenated observables all
     match, under both sticky and random schedulers;
   - {e sealing passivity} (and the [--profile] aggregation fix): epoch
     recording reassembles exactly the monolithic run's outcome, and the
     recorder's cumulative site-hit counts are identical to a monolithic
     recording of the same run;
   - {e v4 format}: serialization is pinned byte-for-byte on a fixed
     program (modulo the marshal-opaque rng/sched tokens, whose shape is
     still checked), and random recordings round-trip through
     [of_string_v4] to a byte-identical re-serialization;
   - {e epoch replay differential}: every epoch of every workload solves
     incrementally (hint shifted above the previous epoch's model),
     replays from its checkpoint in O(epoch) steps, and reproduces
     exactly the corresponding window of the monolithic outcome — whose
     own v3 replay must be faithful, closing the loop. *)

open Runtime

(* ------------------------------------------------------------------ *)
(* Scheduler save/load                                                 *)
(* ------------------------------------------------------------------ *)

let test_sched_save_load () =
  let constructors =
    [
      ("round_robin", fun () -> Sched.round_robin ());
      ("random", fun () -> Sched.random ~seed:42);
      ("sticky", fun () -> Sched.sticky ~seed:7 ~stickiness:5);
      ("scripted", fun () -> Sched.scripted [ 1; 2; 2; 3; 1; 2; 3; 1 ]);
      ("pct", fun () -> Sched.pct ~seed:9 ~depth:3 ~expected_steps:200);
      ("clap-preemptive",
       fun () -> Baselines.Clap.preemptive [ (10, 2); (25, 3); (80, 1) ]);
    ]
  in
  let runnable = [ 1; 2; 3 ] in
  List.iter
    (fun (name, mk) ->
      let a = mk () in
      (* advance to an interesting interior state *)
      for step = 0 to 59 do
        ignore (a.Sched.pick ~step ~runnable)
      done;
      let tok = a.Sched.save () in
      let b = mk () in
      b.Sched.load tok;
      for step = 60 to 159 do
        let pa = a.Sched.pick ~step ~runnable in
        let pb = b.Sched.pick ~step ~runnable in
        Alcotest.(check int)
          (Printf.sprintf "%s: pick at step %d survives save/load" name step)
          pa pb
      done)
    constructors

(* ------------------------------------------------------------------ *)
(* Snapshot/restore equivalence                                        *)
(* ------------------------------------------------------------------ *)

let assoc_or_empty tid l = Option.value ~default:[] (List.assoc_opt tid l)

(* Run [bm] uninterrupted; run it again pausing at step [k], snapshot,
   restore into a fresh state + scheduler, and resume.  The restored run
   plus the pre-pause observables must equal the uninterrupted run. *)
let check_snapshot_restore (bm : Workloads.benchmark) (sname, mk_sched) k =
  let label what = Printf.sprintf "%s/%s: %s" bm.Workloads.name sname what in
  let p = Workloads.program bm in
  let cp = Interp.compile p in
  let oref = Interp.run_compiled ~seed:5 ~sched:(mk_sched ()) cp in
  let sched1 = mk_sched () in
  let st1 = Interp.init_state ~seed:5 cp in
  match Interp.run_state ~stop_at:k ~sched:sched1 st1 with
  | Some _ ->
    (* finished before the pause point: nothing to restore, but the run
       must still match the reference *)
    Alcotest.(check bool) (label "short run matches") true
      (Interp.state_steps st1 = oref.Interp.steps)
  | None ->
    let obs_pre = Interp.drain_observables st1 in
    let tok = sched1.Sched.save () in
    let sn = Interp.snapshot st1 in
    Alcotest.(check int) (label "snapshot at pause step") k sn.Interp.snap_steps;
    let st2 = Interp.restore_state cp sn in
    let sched2 = mk_sched () in
    sched2.Sched.load tok;
    let status2 =
      match Interp.run_state ~sched:sched2 st2 with
      | Some s -> s
      | None -> Alcotest.fail (label "restored run paused unexpectedly")
    in
    let o2 = Interp.outcome_of_state st2 status2 in
    Alcotest.(check bool) (label "status") true (o2.Interp.status = oref.Interp.status);
    Alcotest.(check int) (label "steps") oref.Interp.steps o2.Interp.steps;
    Alcotest.(check bool) (label "counters") true
      (o2.Interp.counters = oref.Interp.counters);
    Alcotest.(check bool) (label "crashes") true
      (o2.Interp.crashes = oref.Interp.crashes);
    Alcotest.(check bool) (label "final heap") true
      (o2.Interp.final_heap = oref.Interp.final_heap);
    (* observables concatenate: pre-pause window + restored run *)
    List.iter
      (fun (tid, ref_reads) ->
        let got =
          assoc_or_empty tid obs_pre.Interp.obs_reads
          @ assoc_or_empty tid o2.Interp.reads
        in
        Alcotest.(check bool)
          (label (Printf.sprintf "reads of thread %d" tid))
          true (got = ref_reads))
      oref.Interp.reads;
    List.iter
      (fun (tid, ref_outs) ->
        let got =
          assoc_or_empty tid obs_pre.Interp.obs_outputs
          @ assoc_or_empty tid o2.Interp.outputs
        in
        Alcotest.(check bool)
          (label (Printf.sprintf "outputs of thread %d" tid))
          true (got = ref_outs))
      oref.Interp.outputs;
    Alcotest.(check bool) (label "syscalls") true
      (obs_pre.Interp.obs_syscalls @ o2.Interp.syscalls = oref.Interp.syscalls)

let restore_scheds =
  [
    ("sticky", fun () -> Sched.sticky ~seed:7 ~stickiness:24);
    ("rand", fun () -> Sched.random ~seed:11);
  ]

let test_snapshot_restore_all () =
  List.iter
    (fun (bm : Workloads.benchmark) ->
      List.iter (fun sc -> check_snapshot_restore bm sc 301) restore_scheds)
    Workloads.all

(* ------------------------------------------------------------------ *)
(* Sealing passivity + cumulative site hits                            *)
(* ------------------------------------------------------------------ *)

let check_outcomes_equal label (a : Interp.outcome) (b : Interp.outcome) =
  let chk what eq = Alcotest.(check bool) (label ^ ": " ^ what) true eq in
  chk "status" (a.status = b.status);
  chk "steps" (a.steps = b.steps);
  chk "reads" (a.reads = b.reads);
  chk "outputs" (a.outputs = b.outputs);
  chk "counters" (a.counters = b.counters);
  chk "syscalls" (a.syscalls = b.syscalls);
  chk "crashes" (a.crashes = b.crashes);
  chk "final_heap" (a.final_heap = b.final_heap)

let test_seal_passive_and_cumulative () =
  List.iter
    (fun name ->
      let bm = Option.get (Workloads.by_name name) in
      let pp = Light_core.Light.prepare (Workloads.program bm) in
      let r =
        Light_core.Epoch.record_epochs
          ~sched:(Workloads.scheduler ~seed:3 bm) ~seed:3 ~epoch_len:700 pp
      in
      Alcotest.(check bool) (name ^ ": multiple epochs") true
        (List.length r.Light_core.Epoch.er_epochs > 1);
      let mono =
        Light_core.Light.record_prepared
          ~sched:(Workloads.scheduler ~seed:3 bm) ~seed:3 pp
      in
      check_outcomes_equal (name ^ ": epoch = monolithic original")
        mono.Light_core.Light.outcome r.Light_core.Epoch.er_outcome;
      (* the --profile fix: site hits aggregate across sealed epochs *)
      Alcotest.(check bool) (name ^ ": cumulative site hits") true
        (r.Light_core.Epoch.er_site_hits = mono.Light_core.Light.site_hits))
    [ "jgf-series"; "dacapo-avrora"; "mp-queue"; "mp-barrier" ]

(* ------------------------------------------------------------------ *)
(* v4 format: pinned bytes + random round-trips                        *)
(* ------------------------------------------------------------------ *)

let pinned_src = {|
  class C { n; }
  global c;
  fn w(k) {
    i = 0;
    while (i < 6) { sync (c) { c.n = c.n + k; } i = i + 1; }
    return i;
  }
  main { c = new C; sync (c) { c.n = 0; }
         spawn a = w(1); spawn b = w(2); join a; join b; print c.n; }
|}

let record_pinned () =
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program pinned_src) in
  let pp = Light_core.Light.prepare p in
  Light_core.Epoch.record_epochs
    ~sched:(Sched.sticky ~seed:5 ~stickiness:3) ~seed:0 ~epoch_len:60 pp

let is_hex s = s <> "" && String.for_all (fun ch -> (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')) s

(* The rng/sched checkpoint tokens are [Marshal]-derived hex blobs —
   stable in-process (the round-trip test covers them exactly) but opaque
   to a byte pin.  Normalize them to a placeholder after checking their
   shape, and pin the digest of everything else. *)
let normalize_v4 (txt : string) : string =
  String.split_on_char '\n' txt
  |> List.map (fun line ->
         match String.split_on_char ' ' line with
         | [ "C"; ("rng" | "sched" as kind); payload ] ->
           Alcotest.(check bool) ("hex-shaped " ^ kind ^ " token") true (is_hex payload);
           "C " ^ kind ^ " <hex>"
         | _ -> line)
  |> String.concat "\n"

let test_v4_pinned () =
  let r = record_pinned () in
  let txt = Light_core.Epoch.to_string_v4 r in
  Alcotest.(check bool) "sniffs as v4" true (Light_core.Epoch.is_v4 txt);
  let first_line = List.hd (String.split_on_char '\n' txt) in
  Alcotest.(check string) "pinned header" "light-log v4 o1=true o2=true epoch=60"
    first_line;
  let n_epochs =
    String.split_on_char '\n' txt
    |> List.filter (fun l -> String.length l >= 2 && String.sub l 0 2 = "E ")
    |> List.length
  in
  Alcotest.(check int) "pinned epoch count"
    (List.length r.Light_core.Epoch.er_epochs)
    n_epochs;
  Alcotest.(check string) "pinned v4 bytes (rng/sched normalized)"
    "ffb273b232d9b3a6c3931fe870d71378"
    (Digest.to_hex (Digest.string (normalize_v4 txt)))

let test_v4_roundtrip_pinned () =
  let r = record_pinned () in
  let txt = Light_core.Epoch.to_string_v4 r in
  let f = Light_core.Epoch.of_string_v4 txt in
  Alcotest.(check int) "epoch_len survives" 60 f.Light_core.Epoch.f_epoch_len;
  Alcotest.(check int) "chunk count"
    (List.length r.Light_core.Epoch.er_epochs)
    (List.length f.Light_core.Epoch.f_chunks);
  let txt2 =
    Light_core.Epoch.chunks_to_string ~o1:f.Light_core.Epoch.f_o1
      ~o2:f.Light_core.Epoch.f_o2 ~epoch_len:f.Light_core.Epoch.f_epoch_len
      f.Light_core.Epoch.f_chunks
  in
  Alcotest.(check bool) "re-serialization byte-identical" true (txt = txt2)

(* Random programs (loop and message-passing shapes) through random
   epoch lengths: parse must invert serialize, byte for byte. *)
let epoch_case_gen =
  QCheck.Gen.(
    oneofl
      [ Workloads.Loops; Workloads.Queue; Workloads.Pipeline; Workloads.FanIn;
        Workloads.Barrier ]
    >>= fun shape ->
    int_range 1 3 >>= fun iters ->
    int_range 40 400 >>= fun epoch_len ->
    int_range 0 99 >>= fun seed ->
    return (shape, iters, epoch_len, seed))

let prop_v4_roundtrip =
  QCheck.Test.make ~count:25 ~name:"v4 round-trips on random epoch recordings"
    (QCheck.make
       ~print:(fun (_, iters, el, seed) ->
         Printf.sprintf "iters=%d epoch_len=%d seed=%d" iters el seed)
       epoch_case_gen)
    (fun (shape, iters, epoch_len, seed) ->
      let prm =
        match shape with
        | Workloads.Loops ->
          { (Option.get (Workloads.by_name "jgf-series")).Workloads.params with
            Workloads.iters }
        | _ ->
          { (Option.get (Workloads.by_name "mp-queue")).Workloads.params with
            Workloads.shape; iters }
      in
      let p =
        Lang.Check.validate_exn (Lang.Parser.parse_program (Workloads.generate prm))
      in
      let pp = Light_core.Light.prepare p in
      let r =
        Light_core.Epoch.record_epochs
          ~sched:(Sched.sticky ~seed ~stickiness:8) ~seed ~epoch_len pp
      in
      let txt = Light_core.Epoch.to_string_v4 r in
      let f = Light_core.Epoch.of_string_v4 txt in
      let txt2 =
        Light_core.Epoch.chunks_to_string ~o1:f.Light_core.Epoch.f_o1
          ~o2:f.Light_core.Epoch.f_o2 ~epoch_len:f.Light_core.Epoch.f_epoch_len
          f.Light_core.Epoch.f_chunks
      in
      txt = txt2
      && List.length f.Light_core.Epoch.f_chunks
         = List.length r.Light_core.Epoch.er_epochs)

(* ------------------------------------------------------------------ *)
(* Epoch replay differential (full suite)                              *)
(* ------------------------------------------------------------------ *)

type diff_cell = { dc_label : string; dc_errors : string list }

let run_diff_cell (bm : Workloads.benchmark) : diff_cell =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let pp = Light_core.Light.prepare (Workloads.program bm) in
  let r =
    Light_core.Epoch.record_epochs ~sched:(Workloads.scheduler ~seed:3 bm)
      ~seed:3 ~epoch_len:1200 pp
  in
  let mono =
    Light_core.Light.record_prepared ~sched:(Workloads.scheduler ~seed:3 bm)
      ~seed:3 pp
  in
  if mono.Light_core.Light.outcome <> r.Light_core.Epoch.er_outcome then
    err "epoch outcome differs from monolithic";
  (* the monolithic v3 replay is the ground truth the windows slice *)
  (match Light_core.Light.replay mono with
  | Error e -> err "monolithic replay failed: %s" e
  | Ok rr when rr.Light_core.Light.faithful <> [] ->
    err "monolithic replay unfaithful: %s"
      (String.concat "; " rr.Light_core.Light.faithful)
  | Ok _ -> ());
  (* incremental solving: every epoch solves, shifts never decrease *)
  let sols = Light_core.Epoch.solve_epochs r in
  let last_shift = ref (-1) in
  List.iter
    (fun (s : Light_core.Epoch.epoch_solution) ->
      (match s.es_report.Light_core.Replayer.result_kind with
      | Light_core.Replayer.Solved -> ()
      | _ -> err "epoch %d: unsolved" s.es_idx);
      if s.es_shift < !last_shift then err "epoch %d: shift decreased" s.es_idx;
      last_shift := s.es_shift)
    sols;
  (* per-epoch replay: O(epoch) and window-identical to the monolithic run *)
  List.iteri
    (fun k (e : Light_core.Epoch.epoch) ->
      match Light_core.Epoch.replay_epoch r k with
      | Error msg -> err "epoch %d: replay failed: %s" k msg
      | Ok rr ->
        (* the fence denies shared accesses past the watermark, but local
           (unshared) steps run on until the next shared access, so the
           replay may overrun the window by the threads' local stretches —
           a run-length-independent constant, never a free-run *)
        let window = e.ep_steps - e.ep_start_steps in
        if rr.rr_steps > window + 2048 then
          err "epoch %d: replay not O(epoch): %d steps for a %d-step window" k
            rr.rr_steps window;
        let expected =
          Light_core.Epoch.slice_outcome r k r.Light_core.Epoch.er_outcome
        in
        List.iter
          (fun m -> err "epoch %d: window mismatch: %s" k m)
          (Light_core.Epoch.window_matches ~expected rr.rr_obs))
    r.Light_core.Epoch.er_epochs;
  { dc_label = bm.Workloads.name; dc_errors = List.rev !errors }

let diff_cells =
  lazy (Engine.Batch.map ~f:run_diff_cell Workloads.all)

let test_epoch_differential () =
  Alcotest.(check int) "28 workloads" (List.length Workloads.all)
    (List.length (Lazy.force diff_cells));
  List.iter
    (fun c ->
      List.iter (fun e -> Alcotest.fail (c.dc_label ^ ": " ^ e)) c.dc_errors)
    (Lazy.force diff_cells)

(* Replay straight out of a parsed v4 file (the CLI's --epoch path). *)
let test_chunk_replay_from_text () =
  let bm = Option.get (Workloads.by_name "mp-fanin") in
  let pp = Light_core.Light.prepare (Workloads.program bm) in
  let r =
    Light_core.Epoch.record_epochs ~sched:(Workloads.scheduler ~seed:3 bm)
      ~seed:3 ~epoch_len:900 pp
  in
  let f = Light_core.Epoch.of_string_v4 (Light_core.Epoch.to_string_v4 r) in
  List.iteri
    (fun k ck ->
      match Light_core.Epoch.replay_chunk pp ck with
      | Error msg -> Alcotest.failf "chunk %d: %s" k msg
      | Ok rr ->
        let expected =
          Light_core.Epoch.slice_outcome r k r.Light_core.Epoch.er_outcome
        in
        Alcotest.(check (list string))
          (Printf.sprintf "chunk %d window" k)
          []
          (Light_core.Epoch.window_matches ~expected rr.rr_obs))
    f.Light_core.Epoch.f_chunks

let () =
  Alcotest.run "epochs"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "scheduler save/load" `Quick test_sched_save_load;
          Alcotest.test_case "snapshot/restore on all workloads" `Slow
            test_snapshot_restore_all;
          Alcotest.test_case "sealing passive, site hits cumulative" `Quick
            test_seal_passive_and_cumulative;
        ] );
      ( "v4",
        [
          Alcotest.test_case "pinned bytes" `Quick test_v4_pinned;
          Alcotest.test_case "pinned round-trip" `Quick test_v4_roundtrip_pinned;
          QCheck_alcotest.to_alcotest ~long:false prop_v4_roundtrip;
        ] );
      ( "differential",
        [
          Alcotest.test_case "epoch replay = monolithic windows" `Slow
            test_epoch_differential;
          Alcotest.test_case "chunk replay from v4 text" `Quick
            test_chunk_replay_from_text;
        ] );
    ]
