(* The Figure-6 matrix: every bug model triggers, Light reproduces all 8,
   Clap and Chimera succeed/fail exactly as the paper reports.

   Each bug's trigger search and tool attempts are independent, so the
   heavy matrix tests fan out per bug through the engine's batch driver;
   assertions run after the deterministic merge, in bug order. *)

let per_bug (f : Bugs.Defs.bug -> 'a) : 'a list =
  Engine.Batch.map Bugs.Defs.all ~f

let all_programs_validate () =
  List.iter
    (fun (b : Bugs.Defs.bug) ->
      ignore (Bugs.Defs.program_of b ());
      ignore (Bugs.Defs.program_of b ~scale:3 ()))
    Bugs.Defs.all

let test_suite_shape () =
  Alcotest.(check int) "eight bugs" 8 (List.length Bugs.Defs.all);
  let clap_ok = List.filter (fun (b : Bugs.Defs.bug) -> b.clap_supported) Bugs.Defs.all in
  let chim_miss = List.filter (fun (b : Bugs.Defs.bug) -> b.chimera_hidden) Bugs.Defs.all in
  Alcotest.(check int) "three in Clap's fragment" 3 (List.length clap_ok);
  Alcotest.(check int) "three hidden by Chimera" 3 (List.length chim_miss);
  (* the two failure sets are exactly complementary, per Section 5.3 *)
  List.iter
    (fun (b : Bugs.Defs.bug) ->
      Alcotest.(check bool) (b.name ^ ": Clap-supported iff Chimera-hidden") true
        (b.clap_supported = b.chimera_hidden))
    Bugs.Defs.all

let trigger_of (b : Bugs.Defs.bug) =
  match Bugs.Harness.find_trigger ~tries:60 (Bugs.Defs.program_of b ()) with
  | Some t -> t
  | None -> Alcotest.failf "%s: no triggering schedule found" b.name

let test_triggers_exist () =
  per_bug (fun b -> (b.name, (trigger_of b).outcome.crashes <> []))
  |> List.iter (fun (name, crashed) ->
         Alcotest.(check bool) (name ^ " crashes") true crashed)

let test_light_reproduces_all () =
  per_bug (fun b ->
      let tr = trigger_of b in
      List.map
        (fun variant -> (b.name, variant, Bugs.Harness.try_light ~variant b tr))
        [ Light_core.Light.v_basic; Light_core.Light.v_both ])
  |> List.concat
  |> List.iter (fun (name, variant, (a : Bugs.Harness.attempt)) ->
         Alcotest.(check bool)
           (Printf.sprintf "%s under %s: %s" name
              (Light_core.Recorder.variant_name variant)
              a.detail)
           true a.reproduced)

let test_clap_matrix () =
  per_bug (fun b ->
      let tr = trigger_of b in
      (b, Bugs.Harness.try_clap ~budget:60_000 b tr))
  |> List.iter (fun ((b : Bugs.Defs.bug), (a : Bugs.Harness.attempt)) ->
         Alcotest.(check bool)
           (Printf.sprintf "%s: Clap expected %b, got %b (%s)" b.name b.clap_supported
              a.reproduced a.detail)
           b.clap_supported a.reproduced)

let test_chimera_matrix () =
  per_bug (fun b ->
      let tr = trigger_of b in
      (b, Bugs.Harness.try_chimera ~tries:60 b tr))
  |> List.iter (fun ((b : Bugs.Defs.bug), (a : Bugs.Harness.attempt)) ->
         Alcotest.(check bool)
           (Printf.sprintf "%s: Chimera expected %b, got %b (%s)" b.name
              (not b.chimera_hidden) a.reproduced a.detail)
           (not b.chimera_hidden) a.reproduced)

let test_scaled_bugs_still_reproduce () =
  (* Table 1 runs the bugs with background load; Light's guarantee must
     survive the scaling *)
  Engine.Batch.map [ "Cache4j"; "Ftpserver"; "Weblech" ] ~f:(fun name ->
      let b = Option.get (Bugs.Defs.by_name name) in
      let p = Bugs.Defs.program_of b ~scale:5 () in
      match Bugs.Harness.find_trigger ~tries:40 p with
      | None -> Error (b.name ^ "@5x: no trigger")
      | Some tr ->
        let r = Light_core.Light.record ~sched:(tr.make_sched ()) p in
        (match Light_core.Light.replay r with
        | Error e -> Error (Printf.sprintf "%s@5x: %s" b.name e)
        | Ok rr ->
          Ok (b.name, Bugs.Harness.crashes_match r.outcome rr.replay_outcome)))
  |> List.iter (function
       | Error msg -> Alcotest.fail msg
       | Ok (name, reproduced) ->
         Alcotest.(check bool) (name ^ "@5x reproduced") true reproduced)

let () =
  Alcotest.run "bugs"
    [
      ( "suite",
        [
          Alcotest.test_case "programs validate" `Quick all_programs_validate;
          Alcotest.test_case "suite shape" `Quick test_suite_shape;
          Alcotest.test_case "triggers exist" `Quick test_triggers_exist;
        ] );
      ( "figure-6",
        [
          Alcotest.test_case "Light reproduces 8/8" `Slow test_light_reproduces_all;
          Alcotest.test_case "Clap matrix (3/8)" `Slow test_clap_matrix;
          Alcotest.test_case "Chimera matrix (5/8)" `Slow test_chimera_matrix;
          Alcotest.test_case "scaled bugs reproduce" `Slow test_scaled_bugs_still_reproduce;
        ] );
    ]
