(* Schedule-space exploration: flip soundness, reproducer determinism, and
   honest budget accounting.

   Properties under test (see DESIGN.md, "Schedule-space exploration"):
   - every feasible flipped schedule passes the relaxed Validate check and
     actually inverts the chosen pair's order;
   - toggling a flip twice returns the original flip set, and solving with
     no flips returns the base schedule byte for byte;
   - infeasible flips classify as [InfeasibleFlip] — never a crash;
   - [hunt] rediscovers every seeded bug of the suite from a passing-run
     recording, and the minimized reproducer replays the same failure
     deterministically (twice, byte-identical outcomes);
   - under a tight solver budget every enumerated candidate still appears
     in the output, classified [SolveAborted] rather than dropped;
   - parallel exploration merges by job index: any pool size produces the
     serial result. *)

open Runtime

let ctx_of ?(seed = 2) (src : string) : Explore.context =
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  match
    Explore.make_context ~make_sched:(fun () -> Sched.sticky ~seed ~stickiness:4) p
  with
  | Ok ctx -> ctx
  | Error e -> Alcotest.failf "make_context: %s" e

let racy_src = {|
  class C { n; }
  global c; global y;
  fn w1() { c.n = 1; y = c.n + 1; }
  fn w2() { k = c.n; c.n = k + 5; }
  main { c = new C; c.n = 0; y = 0;
         spawn a = w1(); spawn b = w2(); join a; join b; print y; }
|}

(* ------------------------------------------------------------------ *)
(* Flip soundness                                                      *)
(* ------------------------------------------------------------------ *)

(* Every feasible single-flip schedule validates against the relaxed
   dependence set and places fb strictly before fa. *)
let test_flips_sound () =
  let ctx = ctx_of racy_src in
  let cands = Explore.candidates ctx in
  Alcotest.(check bool) "has candidates" true (cands <> []);
  let feasible = ref 0 in
  List.iter
    (fun (f : Explore.flip) ->
      let s = Explore.solve_flips ~sections:ctx.sections ctx.recording.log [ f ] in
      match s.sv with
      | Explore.Feasible sch ->
        incr feasible;
        (match
           Light_core.Validate.check ~zones:true ~free:s.free ctx.recording.log sch
         with
        | [] -> ()
        | errs ->
          Alcotest.failf "flip %s: invalid schedule: %s"
            (Format.asprintf "%a" Explore.pp_flip f)
            (String.concat "; " errs));
        let rank e = Hashtbl.find sch.Light_core.Replayer.rank_of e in
        if rank f.fb >= rank f.fa then
          Alcotest.failf "flip %s: pair not inverted"
            (Format.asprintf "%a" Explore.pp_flip f)
      | Explore.Infeasible | Explore.SolveAborted -> ())
    cands;
  Alcotest.(check bool) "at least one feasible flip" true (!feasible > 0)

(* Toggling the same flip twice is the identity on the flip set, and an
   empty flip set reproduces the base schedule exactly. *)
let test_toggle_involutive () =
  let ctx = ctx_of racy_src in
  match Explore.candidates ctx with
  | [] -> Alcotest.fail "no candidates"
  | f :: _ ->
    let once = Explore.toggle [] f in
    Alcotest.(check int) "toggle adds" 1 (List.length once);
    let twice = Explore.toggle once f in
    Alcotest.(check int) "toggle removes" 0 (List.length twice);
    (match (Explore.solve_flips ctx.recording.log []).sv with
    | Explore.Feasible sch ->
      Alcotest.(check bool) "no-flip solve = base order" true
        (sch.Light_core.Replayer.order = ctx.base_order)
    | _ -> Alcotest.fail "base system must stay satisfiable")

(* A flip contradicting recorded thread order is honestly infeasible. *)
let test_infeasible_reported () =
  let ctx = ctx_of racy_src in
  let results = Explore.explore ctx in
  List.iter
    (fun (r : Explore.explored) ->
      match r.ex_verdict with
      | Explore.InfeasibleFlip | Explore.AbortedFlip ->
        Alcotest.(check (list string)) "no validation errors on infeasible" []
          r.ex_validate
      | _ -> ())
    results;
  (* same-thread order can never be flipped: forge one and check the verdict *)
  match Explore.candidates ctx with
  | [] -> Alcotest.fail "no candidates"
  | f :: _ ->
    let forged = { f with fa = f.fb; fb = f.fa } in
    (match
       (Explore.solve_flips ~sections:ctx.sections ctx.recording.log
          [ forged; f ]).sv
     with
    | Explore.Feasible _ -> Alcotest.fail "a flip and its inverse cannot both hold"
    | Explore.Infeasible | Explore.SolveAborted -> ())

(* ------------------------------------------------------------------ *)
(* Bug-suite rediscovery (differential against the seeded bugs)         *)
(* ------------------------------------------------------------------ *)

let test_hunt_rediscovers () =
  List.iter
    (fun (b : Bugs.Defs.bug) ->
      let p = Bugs.Defs.program_of b () in
      match Bugs.Harness.find_passing p with
      | None -> Alcotest.failf "%s: no passing schedule found" b.name
      | Some tr ->
        (match Explore.make_context ~make_sched:tr.make_sched p with
        | Error e -> Alcotest.failf "%s: make_context: %s" b.name e
        | Ok ctx ->
          let hr = Explore.hunt ctx in
          (match hr.hr_repro with
          | None ->
            Alcotest.failf "%s: hunt found no crash (%d flip sets tried)" b.name
              hr.hr_tried
          | Some rp ->
            (* the reproducer round-trips through its text format *)
            let txt = Explore.reproducer_to_string rp in
            (match Explore.reproducer_of_string txt with
            | Error e -> Alcotest.failf "%s: reproducer parse: %s" b.name e
            | Ok rp2 ->
              Alcotest.(check string)
                (b.name ^ ": reproducer round-trip")
                txt
                (Explore.reproducer_to_string rp2);
              (* replays deterministically: two runs, byte-identical *)
              match
                (Explore.run_reproducer p rp2, Explore.run_reproducer p rp2)
              with
              | Ok o1, Ok o2 ->
                Alcotest.(check bool)
                  (b.name ^ ": replay deterministic")
                  true (o1 = o2);
                let sig_of (o : Interp.outcome) =
                  List.sort compare
                    (List.map (fun (c : Interp.crash) -> (c.tid, c.site, c.msg)) o.crashes)
                in
                Alcotest.(check bool)
                  (b.name ^ ": crash signature matches")
                  true
                  (sig_of o1 = List.sort compare rp.rp_expected)
              | Error e, _ | _, Error e ->
                Alcotest.failf "%s: reproducer replay: %s" b.name e))))
    Bugs.Defs.all

(* ------------------------------------------------------------------ *)
(* Message-passing workloads through the explorer                      *)
(* ------------------------------------------------------------------ *)

(* The channel workloads are monitor-heavy — wait/notifyall ghosts and
   lock-section reconstruction dominate the flip lattice, a regime the
   loop workloads never enter.  The contract under test is honest total
   classification: every enumerated candidate appears in the output with
   a verdict, in candidate order, under a roomy budget and under a
   starvation budget alike (the latter may only change verdicts to
   [AbortedFlip], never drop a candidate). *)
let starve = { Dlsolver.Idl.max_backtracks = 2; max_conflicts = 2; max_time_s = 10.0 }

let test_msgpass_explored () =
  List.iter
    (fun (name, iters) ->
      let bm = Option.get (Workloads.by_name name) in
      let prm = { bm.Workloads.params with Workloads.iters } in
      let p =
        Lang.Check.validate_exn (Lang.Parser.parse_program (Workloads.generate prm))
      in
      match
        Explore.make_context
          ~make_sched:(fun () -> Sched.sticky ~seed:4 ~stickiness:16)
          p
      with
      | Error e -> Alcotest.failf "%s: make_context: %s" name e
      | Ok ctx ->
        let cands = Explore.candidates ctx in
        Alcotest.(check bool) (name ^ ": has candidates") true (cands <> []);
        let check_total label results =
          Alcotest.(check int)
            (Printf.sprintf "%s: %s classifies every candidate" name label)
            (List.length cands) (List.length results);
          List.iter2
            (fun f (r : Explore.explored) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s keeps candidate order" name label)
                true
                (Explore.flip_key r.ex_flip = Explore.flip_key f))
            cands results
        in
        check_total "explore" (Explore.explore ctx);
        check_total "starved explore" (Explore.explore ~budget:starve ctx))
    [ ("mp-queue", 3); ("mp-pipeline", 2); ("mp-fanin", 2); ("mp-barrier", 2) ]

(* ------------------------------------------------------------------ *)
(* Parallel = serial                                                   *)
(* ------------------------------------------------------------------ *)

let strip (r : Explore.explored) =
  (r.ex_flip, Explore.verdict_name r.ex_verdict, r.ex_validate)

let test_parallel_matches_serial () =
  let ctx = ctx_of racy_src in
  let serial = Explore.explore ~pool:(Engine.Pool.create ~size:1 ()) ctx in
  let parallel = Explore.explore ~pool:(Engine.Pool.create ~size:4 ()) ctx in
  Alcotest.(check bool) "explore: parallel = serial" true
    (List.map strip serial = List.map strip parallel);
  let b = List.find (fun (b : Bugs.Defs.bug) -> b.name = "Cache4j") Bugs.Defs.all in
  let p = Bugs.Defs.program_of b () in
  match Bugs.Harness.find_passing p with
  | None -> Alcotest.fail "no passing schedule"
  | Some tr ->
    (match Explore.make_context ~make_sched:tr.make_sched p with
    | Error e -> Alcotest.failf "make_context: %s" e
    | Ok bctx ->
      let h1 = Explore.hunt ~pool:(Engine.Pool.create ~size:1 ()) bctx in
      let h2 = Explore.hunt ~pool:(Engine.Pool.create ~size:4 ()) bctx in
      let flips (h : Explore.hunt_result) =
        Option.map (fun (rp : Explore.reproducer) -> rp.rp_flips) h.hr_repro
      in
      Alcotest.(check bool) "hunt: parallel = serial" true (flips h1 = flips h2))

(* ------------------------------------------------------------------ *)
(* Honest budgets over synthetic logs (QCheck)                          *)
(* ------------------------------------------------------------------ *)

(* Same shape as test_replay's generator: random bounded logs free of
   recorder invariants, so infeasible tangles and solver-hostile systems
   both appear. *)
let synth_log_gen =
  QCheck.Gen.(
    let evt = pair (int_range 0 2) (int_range 0 6) in
    let loc_g = map (fun o -> Loc.field o "f") (int_range 0 2) in
    let dep_g =
      loc_g >>= fun loc ->
      opt evt >>= fun w ->
      evt >>= fun rf ->
      int_range 0 2 >>= fun span ->
      int_range 0 40 >>= fun dep_obs ->
      int_range 0 40 >>= fun w_obs ->
      return { Light_core.Log.loc; w; rf; rl_c = snd rf + span; dep_obs; w_obs }
    in
    list_size (int_range 1 6) dep_g >>= fun deps ->
    return { Light_core.Log.empty with deps })

let tight = { Dlsolver.Idl.max_backtracks = 2; max_conflicts = 2; max_time_s = 10.0 }

let prop_budget_honest =
  QCheck.Test.make ~count:300
    ~name:"tight budgets classify candidates honestly, none dropped"
    (QCheck.make ~print:Light_core.Log.to_string synth_log_gen)
    (fun log ->
      let cands = Explore.log_candidates log in
      let results = Explore.enumerate_log ~budget:tight log in
      (* every candidate classified: nothing silently dropped *)
      List.length results = List.length cands
      && List.for_all2 (fun f (f', _) -> f = f') cands results
      && List.for_all
           (fun ((_ : Explore.flip), (s : Explore.solved)) ->
             match s.sv with
             | Explore.Feasible sch ->
               (* a schedule produced under pressure must still validate *)
               Light_core.Validate.check ~free:s.free log sch = []
             | Explore.Infeasible | Explore.SolveAborted -> true)
           results)

(* Bench stats survive the JSON round-trip (the CI artifact is the
   interchange format, so parse errors there would go unnoticed). *)
let stats_gen =
  QCheck.Gen.(
    let f6 = map (fun n -> float_of_int n /. 1e6) (int_range 0 10_000_000) in
    let f2 = map (fun n -> float_of_int n /. 100.) (int_range 0 100_000) in
    let label = string_size ~gen:(char_range 'a' 'z') (int_range 1 12) in
    label >>= fun st_label ->
    int_range 0 50 >>= fun st_candidates ->
    int_range 0 50 >>= fun st_same ->
    int_range 0 50 >>= fun st_divergent ->
    int_range 0 50 >>= fun st_crashed ->
    int_range 0 50 >>= fun st_stuck ->
    int_range 0 50 >>= fun st_infeasible ->
    int_range 0 50 >>= fun st_aborted ->
    f6 >>= fun st_resolve_s ->
    f6 >>= fun st_fresh_s ->
    int_range 0 50 >>= fun st_fresh_aborted ->
    f2 >>= fun st_sched_per_s ->
    return
      {
        Explore.st_label;
        st_candidates;
        st_same;
        st_divergent;
        st_crashed;
        st_stuck;
        st_infeasible;
        st_aborted;
        st_resolve_s;
        st_fresh_s;
        st_fresh_aborted;
        st_sched_per_s;
      })

let prop_stats_roundtrip =
  QCheck.Test.make ~count:200 ~name:"bench stats JSON round-trips"
    (QCheck.make
       ~print:(fun l -> Explore.stats_to_json l)
       QCheck.Gen.(list_size (int_range 0 5) stats_gen))
    (fun stats -> Explore.stats_of_json (Explore.stats_to_json stats) = stats)

let () =
  Alcotest.run "explore"
    [
      ( "flips",
        [
          Alcotest.test_case "feasible flips validate and invert" `Quick
            test_flips_sound;
          Alcotest.test_case "toggle involutive, empty set = base" `Quick
            test_toggle_involutive;
          Alcotest.test_case "infeasible flips reported, never crash" `Quick
            test_infeasible_reported;
        ] );
      ( "hunt",
        [
          Alcotest.test_case "rediscovers the 8-bug suite" `Slow
            test_hunt_rediscovers;
          Alcotest.test_case "parallel = serial" `Quick
            test_parallel_matches_serial;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "message-passing workloads classified totally" `Slow
            test_msgpass_explored;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest ~long:false prop_budget_honest;
          QCheck_alcotest.to_alcotest ~long:false prop_stats_roundtrip;
        ] );
    ]
