(** Register-bytecode VM equivalence: [Vm] (flat instruction array, baked
    record sites) against [Interp] (slot-resolved tree walker) and
    [Interp_ref] (string-keyed reference).  The three engines must produce
    identical [outcome] records on every workload under both schedulers and
    on random generated programs; with the Light recorder installed, the
    VM's logs must be {e byte-identical} to the tree-walker's across all
    three recorder variants; epoch-mode recording through the VM must
    produce byte-identical v4 files, and VM checkpoints must restore (in
    either engine — they share the snapshot format) and replay. *)

open Runtime

(* field-by-field comparison so a mismatch names the observable *)
let check_outcome name (a : Interp.outcome) (b : Interp.outcome) =
  let chk field eq = Alcotest.(check bool) (name ^ ": " ^ field) true eq in
  chk "status" (a.status = b.status);
  chk "steps" (a.steps = b.steps);
  chk "crashes" (a.crashes = b.crashes);
  chk "reads" (a.reads = b.reads);
  chk "outputs" (a.outputs = b.outputs);
  chk "counters" (a.counters = b.counters);
  chk "syscalls" (a.syscalls = b.syscalls);
  chk "final_heap" (a.final_heap = b.final_heap)

let scheds = [ ("random", fun () -> Sched.random ~seed:11); ("rr", Sched.round_robin) ]

let test_workloads_equiv () =
  List.iter
    (fun (bm : Workloads.benchmark) ->
      let p = Workloads.program bm in
      let bp = Lang.Compile.lower (Interp.compile p) in
      List.iter
        (fun (sname, sched) ->
          let vm = Vm.run_program ~seed:5 ~sched:(sched ()) bp in
          let tree = Interp.run ~seed:5 ~sched:(sched ()) p in
          let ref_ = Interp_ref.run ~seed:5 ~sched:(sched ()) p in
          check_outcome (bm.name ^ "/" ^ sname ^ " vm=tree") vm tree;
          check_outcome (bm.name ^ "/" ^ sname ^ " vm=ref") vm ref_)
        scheds)
    Workloads.all

(* Random sharing signatures through the workload generator: unconstrained
   combinations (empty bursts, 1-thread, maps+syscalls, tiny arrays) the
   named workloads never exercise. *)
let params_gen : Workloads.params QCheck.Gen.t =
  QCheck.Gen.(
    int_range 1 4 >>= fun threads ->
    int_range 1 4 >>= fun iters ->
    int_range 0 3 >>= fun local_work ->
    int_range 1 12 >>= fun array_size ->
    int_range 1 4 >>= fun runlen ->
    bool >>= fun partition ->
    int_range 0 4 >>= fun array_reads ->
    int_range 0 4 >>= fun array_writes ->
    int_range 0 3 >>= fun hot_ops ->
    int_range 0 3 >>= fun locked_ops ->
    bool >>= fun use_maps ->
    bool >>= fun use_syscalls ->
    int_range 1 6 >>= fun stickiness ->
    return
      {
        Workloads.shape = Workloads.Loops;
        threads;
        iters;
        local_work;
        array_size;
        runlen;
        partition;
        array_reads;
        array_writes;
        hot_ops;
        locked_ops;
        use_maps;
        use_syscalls;
        stickiness;
      })

let outcomes_equal (a : Interp.outcome) (b : Interp.outcome) =
  a.status = b.status && a.steps = b.steps && a.crashes = b.crashes
  && a.reads = b.reads && a.outputs = b.outputs && a.counters = b.counters
  && a.syscalls = b.syscalls && a.final_heap = b.final_heap

let equiv_prop =
  QCheck.Test.make ~count:40 ~name:"random programs: Vm = Interp = Interp_ref"
    (QCheck.make params_gen) (fun prm ->
      let p =
        Lang.Check.validate_exn (Lang.Parser.parse_program (Workloads.generate prm))
      in
      List.for_all
        (fun (_, sched) ->
          let vm = Vm.run ~seed:5 ~sched:(sched ()) p in
          let tree = Interp.run ~seed:5 ~sched:(sched ()) p in
          let ref_ = Interp_ref.run ~seed:5 ~sched:(sched ()) p in
          outcomes_equal vm tree && outcomes_equal vm ref_)
        scheds)

(* ------------------------------------------------------------------ *)
(* Recorder byte-identity: the VM under the Light recorder must emit    *)
(* logs byte-for-byte equal to the tree walker's, on every variant      *)
(* ------------------------------------------------------------------ *)

let variants =
  [ Light_core.Light.v_basic; Light_core.Light.v_o1; Light_core.Light.v_both ]

let test_log_identity () =
  List.iter
    (fun (bm : Workloads.benchmark) ->
      let p = Workloads.program bm in
      List.iter
        (fun v ->
          let pp = Light_core.Light.prepare ~variant:v p in
          let record engine =
            Light_core.Light.record_prepared ~engine
              ~sched:(Workloads.scheduler ~seed:3 bm) ~seed:3 pp
          in
          let rt = record Vm.Tree in
          let rv = record Vm.Bytecode in
          let tag =
            bm.name ^ "/" ^ Light_core.Recorder.variant_name v
          in
          Alcotest.(check string)
            (tag ^ ": log bytes")
            (Light_core.Log.to_string rt.log)
            (Light_core.Log.to_string rv.log);
          check_outcome (tag ^ ": recorded outcome") rt.outcome rv.outcome)
        variants)
    Workloads.all

(* ------------------------------------------------------------------ *)
(* Replay through the VM                                                *)
(* ------------------------------------------------------------------ *)

let replay_workloads = [ "mp-queue"; "mp-barrier"; "cache4j"; "jgf-series" ]

let wl name =
  match Workloads.by_name name with
  | Some bm -> bm
  | None -> Alcotest.failf "no workload %s" name

(* Record on either engine, replay on either engine: all four pairings
   must be faithful (the schedule constrains shared accesses, which the
   engines present identically). *)
let test_vm_replay () =
  List.iter
    (fun name ->
      let bm = wl name in
      let p = Workloads.program bm in
      List.iter
        (fun (rec_engine, rep_engine, tag) ->
          let r =
            Light_core.Light.record ~engine:rec_engine
              ~sched:(Workloads.scheduler ~seed:3 bm) ~seed:3 p
          in
          match Light_core.Light.replay ~engine:rep_engine r with
          | Error e -> Alcotest.failf "%s/%s: replay failed: %s" name tag e
          | Ok rr ->
            Alcotest.(check (list string))
              (name ^ "/" ^ tag ^ ": faithful")
              [] rr.faithful)
        [
          (Vm.Bytecode, Vm.Bytecode, "vm->vm");
          (Vm.Tree, Vm.Bytecode, "tree->vm");
          (Vm.Bytecode, Vm.Tree, "vm->tree");
        ])
    replay_workloads

(* ------------------------------------------------------------------ *)
(* Epoch mode through the VM                                            *)
(* ------------------------------------------------------------------ *)

let epoch_workloads = [ "mp-queue"; "mp-barrier"; "cache4j"; "dacapo-avrora" ]

(* v4 files (headers, checkpoints, intern deltas, record bodies) must be
   byte-identical whichever engine recorded them — the VM's snapshots
   reconstruct the same [Interp.snapshot] values from PC + registers. *)
let test_epoch_v4_identity () =
  List.iter
    (fun name ->
      let bm = wl name in
      let p = Workloads.program bm in
      let pp = Light_core.Light.prepare p in
      let re engine =
        Light_core.Epoch.record_epochs ~engine
          ~sched:(Workloads.scheduler ~seed:3 bm) ~seed:3 ~epoch_len:400 pp
      in
      let rt = re Vm.Tree in
      let rv = re Vm.Bytecode in
      Alcotest.(check string)
        (name ^ ": v4 bytes")
        (Light_core.Epoch.to_string_v4 rt)
        (Light_core.Epoch.to_string_v4 rv);
      check_outcome (name ^ ": epoch outcome") rt.er_outcome rv.er_outcome)
    epoch_workloads

(* Cross-engine restore: replay an epoch of a tree-recorded run on the VM
   (and vice versa on a VM-recorded run) — checkpoints are interchangeable,
   and each replayed window reproduces the recorded one. *)
let test_epoch_cross_replay () =
  List.iter
    (fun name ->
      let bm = wl name in
      let p = Workloads.program bm in
      let pp = Light_core.Light.prepare p in
      let rt =
        Light_core.Epoch.record_epochs ~engine:Vm.Tree
          ~sched:(Workloads.scheduler ~seed:3 bm) ~seed:3 ~epoch_len:400 pp
      in
      List.iteri
        (fun k (e : Light_core.Epoch.epoch) ->
          match
            Light_core.Epoch.replay_epoch ~engine:Vm.Bytecode rt k
          with
          | Error err -> Alcotest.failf "%s: epoch %d on vm: %s" name k err
          | Ok rr ->
            Alcotest.(check (list string))
              (Printf.sprintf "%s: epoch %d window (vm replay)" name k)
              []
              (Light_core.Epoch.window_matches ~expected:e.ep_obs rr.rr_obs))
        rt.er_epochs;
      let rv =
        Light_core.Epoch.record_epochs ~engine:Vm.Bytecode
          ~sched:(Workloads.scheduler ~seed:3 bm) ~seed:3 ~epoch_len:400 pp
      in
      List.iteri
        (fun k (e : Light_core.Epoch.epoch) ->
          match Light_core.Epoch.replay_epoch ~engine:Vm.Tree rv k with
          | Error err -> Alcotest.failf "%s: epoch %d on tree: %s" name k err
          | Ok rr ->
            Alcotest.(check (list string))
              (Printf.sprintf "%s: epoch %d window (tree replay)" name k)
              []
              (Light_core.Epoch.window_matches ~expected:e.ep_obs rr.rr_obs))
        rv.er_epochs)
    epoch_workloads

let () =
  Alcotest.run "vm"
    [
      ( "equivalence",
        [
          Alcotest.test_case "28 workloads x 2 schedulers x 3 engines" `Slow
            test_workloads_equiv;
          QCheck_alcotest.to_alcotest equiv_prop;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "log byte-identity, 28 workloads x 3 variants"
            `Slow test_log_identity;
          Alcotest.test_case "replay via the VM (all engine pairings)" `Slow
            test_vm_replay;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "v4 byte-identity" `Slow test_epoch_v4_identity;
          Alcotest.test_case "cross-engine checkpoint replay" `Slow
            test_epoch_cross_replay;
        ] );
    ]
