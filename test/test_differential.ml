(* Differential recorder-variant tests: for every workload and seed, the
   three recorder variants (Algorithm 1, +O1, +O1+O2) must agree.

   Two contracts are checked:

   - {e recording passivity}: the recorder only watches; the original
     run's observables — outputs, shared-read values, counters, crashes,
     syscalls, and the final heap — are identical whichever variant is
     installed.  Checked for all three variants on every workload.
   - {e replay agreement}: each variant's replay is faithful, and the
     Theorem-1 observables of the replays coincide across variants.
     O1 and O1+O2 are replayed on every workload.  V_basic replay is
     gated to an allowlist: its uncompressed constraint systems grow
     quadratically with interleaved-access density, which at workload
     scale means minutes of solving for the hot benchmarks (measured:
     stamp-vacation 187s, jigsaw 153s, cache4j 87s) and a solver abort
     on stamp-intruder — pre-existing behavior of the unoptimized
     encoding, which the paper never replays at this scale either
     (Figure 7's ablation is record-only).  Small-program v_basic
     replay is covered exhaustively in test_replay.ml.

   The replay {e final heap} is deliberately not compared: replay
   suppresses blind writes (Section 4.2), so heaps may legitimately
   differ at blind locations across variants.

   The whole matrix is one fan-out through the engine's batch driver —
   each (workload, seed) cell is an independent job; the merge is
   deterministic in grid order.  The Alcotest runner is serial, so
   forcing the shared lazy from the main domain is safe. *)

open Runtime

let seeds = [ 3; 11 ]

let variants =
  [ Light_core.Light.v_basic; Light_core.Light.v_o1; Light_core.Light.v_both ]

(* workloads whose v_basic constraint system solves in a few seconds
   (measured on the full suite; everything absent costs 10s-190s) *)
let vbasic_replay_allowlist =
  [ "jgf-series"; "jgf-sparse"; "stamp-ssca2"; "stamp-kmeans"; "stamp-labyrinth" ]

type cell = {
  label : string;
  originals : (string * Interp.outcome) list;  (* variant name -> recorded run *)
  replays : (string * Interp.outcome) list;    (* variant name -> replay run *)
  vbasic_replayed : bool;
  errors : string list;  (* replay failures and unfaithful roundtrips *)
}

let run_cell ((bm : Workloads.benchmark), seed) : cell =
  let label = Printf.sprintf "%s seed=%d" bm.name seed in
  let p = Workloads.program bm in
  let recs =
    List.map
      (fun v ->
        ( Light_core.Recorder.variant_name v,
          Light_core.Light.record ~variant:v
            ~sched:(Workloads.scheduler ~seed bm)
            ~seed p ))
      variants
  in
  let basic_name = Light_core.Recorder.variant_name Light_core.Light.v_basic in
  let replay_this (name, _) =
    name <> basic_name || List.mem bm.name vbasic_replay_allowlist
  in
  let errors = ref [] in
  let replays =
    List.filter replay_this recs
    |> List.filter_map (fun (name, r) ->
           match Light_core.Light.replay r with
           | Error e ->
             errors := Printf.sprintf "%s %s: replay failed: %s" label name e :: !errors;
             None
           | Ok rr ->
             List.iter
               (fun m ->
                 errors := Printf.sprintf "%s %s: unfaithful: %s" label name m :: !errors)
               rr.Light_core.Light.faithful;
             Some (name, rr.Light_core.Light.replay_outcome))
  in
  {
    label;
    originals = List.map (fun (n, r) -> (n, r.Light_core.Light.outcome)) recs;
    replays;
    vbasic_replayed = List.exists (fun (n, _) -> n = basic_name) replays;
    errors = List.rev !errors;
  }

let matrix =
  lazy
    (List.concat_map (fun bm -> List.map (fun s -> (bm, s)) seeds) Workloads.all
    |> Engine.Batch.map ~f:run_cell)

let test_matrix_shape () =
  Alcotest.(check int) "24 workloads x 2 seeds"
    (24 * List.length seeds)
    (List.length (Lazy.force matrix))

let test_replays_faithful () =
  List.iter
    (fun c -> List.iter (fun e -> Alcotest.fail e) c.errors)
    (Lazy.force matrix);
  (* the allowlist gate must not silently drop all v_basic coverage *)
  let basic_cells =
    List.length (List.filter (fun c -> c.vbasic_replayed) (Lazy.force matrix))
  in
  Alcotest.(check int) "v_basic replayed on the allowlist"
    (List.length vbasic_replay_allowlist * List.length seeds)
    basic_cells

(* compare a named field of every variant's outcome against the first's *)
let agree (what : string) (cells : cell list) (select : cell -> (string * Interp.outcome) list)
    (fields : (string * (Interp.outcome -> Interp.outcome -> bool)) list) =
  List.iter
    (fun c ->
      match select c with
      | [] | [ _ ] -> ()
      | (n0, o0) :: rest ->
        List.iter
          (fun (n, o) ->
            List.iter
              (fun (fname, eq) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s %s of %s matches %s" c.label what fname n n0)
                  true (eq o0 o))
              fields)
          rest)
    cells

let test_originals_agree () =
  agree "original" (Lazy.force matrix)
    (fun c -> c.originals)
    [
      ("status", fun a b -> a.Interp.status = b.Interp.status);
      ("outputs", fun a b -> a.Interp.outputs = b.Interp.outputs);
      ("reads", fun a b -> a.Interp.reads = b.Interp.reads);
      ("counters", fun a b -> a.Interp.counters = b.Interp.counters);
      ("crashes", fun a b -> a.Interp.crashes = b.Interp.crashes);
      ("syscalls", fun a b -> a.Interp.syscalls = b.Interp.syscalls);
      ("final heap", fun a b -> a.Interp.final_heap = b.Interp.final_heap);
    ]

let test_replays_agree () =
  agree "replay" (Lazy.force matrix)
    (fun c -> c.replays)
    [
      ("status", fun a b -> a.Interp.status = b.Interp.status);
      ("outputs", fun a b -> a.Interp.outputs = b.Interp.outputs);
      ("reads", fun a b -> a.Interp.reads = b.Interp.reads);
      ("crashes", fun a b -> a.Interp.crashes = b.Interp.crashes);
    ]

let () =
  Alcotest.run "differential"
    [
      ( "variants",
        [
          Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
          Alcotest.test_case "replays faithful" `Slow test_replays_faithful;
          Alcotest.test_case "originals identical" `Slow test_originals_agree;
          Alcotest.test_case "replays agree" `Slow test_replays_agree;
        ] );
    ]
