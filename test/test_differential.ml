(* Differential recorder-variant tests: for every workload and seed, the
   three recorder variants (Algorithm 1, +O1, +O1+O2) must agree.

   Two contracts are checked:

   - {e recording passivity}: the recorder only watches; the original
     run's observables — outputs, shared-read values, counters, crashes,
     syscalls, and the final heap — are identical whichever variant is
     installed.  Checked for all three variants on every workload.
   - {e replay agreement}: each variant's replay is faithful, its solved
     schedule validates as a linearization of its log (thread-local order
     plus every recorded flow dependence), and the Theorem-1 observables
     of the replays coincide across variants.  All three variants are
     replayed on every workload: the pruned constraint generator and the
     witness-seeded solver keep even the uncompressed v_basic systems
     (tens of thousands of clauses on the DaCapo workloads) solvable in
     milliseconds, so the full 28 x seeds x 3 matrix runs un-gated.  Each
     cell carries a solver budget; a generator or solver regression
     aborts that cell loudly with the solver's statistics instead of
     hanging the suite.

   The replay {e final heap} is deliberately not compared: replay
   suppresses blind writes (Section 4.2), so heaps may legitimately
   differ at blind locations across variants.

   The whole matrix is one fan-out through the engine's batch driver —
   each (workload, seed) cell is an independent job; the merge is
   deterministic in grid order.  The Alcotest runner is serial, so
   forcing the shared lazy from the main domain is safe. *)

open Runtime

let seeds = [ 3; 11 ]

let variants =
  [ Light_core.Light.v_basic; Light_core.Light.v_o1; Light_core.Light.v_both ]

(* Generous against the measured behavior (every workload solves with zero
   backtracks) yet tight enough that a pipeline regression fails the cell
   in seconds, not hours. *)
let cell_budget =
  {
    Dlsolver.Idl.max_backtracks = 100_000;
    max_conflicts = 100_000;
    max_time_s = 60.0;
  }

type cell = {
  label : string;
  originals : (string * Interp.outcome) list;  (* variant name -> recorded run *)
  replays : (string * Interp.outcome) list;    (* variant name -> replay run *)
  errors : string list;  (* replay failures, invalid schedules, unfaithful roundtrips *)
}

let run_cell ((bm : Workloads.benchmark), seed) : cell =
  let label = Printf.sprintf "%s seed=%d" bm.name seed in
  let p = Workloads.program bm in
  let recs =
    List.map
      (fun v ->
        ( Light_core.Recorder.variant_name v,
          Light_core.Light.record ~variant:v
            ~sched:(Workloads.scheduler ~seed bm)
            ~seed p ))
      variants
  in
  let errors = ref [] in
  let replays =
    List.filter_map
      (fun (name, (r : Light_core.Light.recording)) ->
        match Light_core.Light.replay ~solver_budget:cell_budget r with
        | Error e ->
          errors := Printf.sprintf "%s %s: replay failed: %s" label name e :: !errors;
          None
        | Ok rr ->
          List.iter
            (fun m ->
              errors := Printf.sprintf "%s %s: unfaithful: %s" label name m :: !errors)
            rr.Light_core.Light.faithful;
          (match rr.report.schedule with
          | None ->
            errors := Printf.sprintf "%s %s: no schedule in report" label name :: !errors
          | Some sch ->
            List.iter
              (fun v ->
                errors :=
                  Printf.sprintf "%s %s: invalid schedule: %s" label name v :: !errors)
              (Light_core.Validate.check r.log sch));
          Some (name, rr.Light_core.Light.replay_outcome))
      recs
  in
  {
    label;
    originals = List.map (fun (n, r) -> (n, r.Light_core.Light.outcome)) recs;
    replays;
    errors = List.rev !errors;
  }

let matrix =
  lazy
    (List.concat_map (fun bm -> List.map (fun s -> (bm, s)) seeds) Workloads.all
    |> Engine.Batch.map ~f:run_cell)

let test_matrix_shape () =
  Alcotest.(check int) "28 workloads x 2 seeds"
    (List.length Workloads.all * List.length seeds)
    (List.length (Lazy.force matrix))

let test_replays_faithful () =
  List.iter
    (fun c -> List.iter (fun e -> Alcotest.fail e) c.errors)
    (Lazy.force matrix);
  (* every cell must have replayed every variant — nothing silently dropped *)
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "%s: all variants replayed" c.label)
        (List.length variants) (List.length c.replays))
    (Lazy.force matrix)

(* compare a named field of every variant's outcome against the first's *)
let agree (what : string) (cells : cell list) (select : cell -> (string * Interp.outcome) list)
    (fields : (string * (Interp.outcome -> Interp.outcome -> bool)) list) =
  List.iter
    (fun c ->
      match select c with
      | [] | [ _ ] -> ()
      | (n0, o0) :: rest ->
        List.iter
          (fun (n, o) ->
            List.iter
              (fun (fname, eq) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s %s of %s matches %s" c.label what fname n n0)
                  true (eq o0 o))
              fields)
          rest)
    cells

let test_originals_agree () =
  agree "original" (Lazy.force matrix)
    (fun c -> c.originals)
    [
      ("status", fun a b -> a.Interp.status = b.Interp.status);
      ("outputs", fun a b -> a.Interp.outputs = b.Interp.outputs);
      ("reads", fun a b -> a.Interp.reads = b.Interp.reads);
      ("counters", fun a b -> a.Interp.counters = b.Interp.counters);
      ("crashes", fun a b -> a.Interp.crashes = b.Interp.crashes);
      ("syscalls", fun a b -> a.Interp.syscalls = b.Interp.syscalls);
      ("final heap", fun a b -> a.Interp.final_heap = b.Interp.final_heap);
    ]

let test_replays_agree () =
  agree "replay" (Lazy.force matrix)
    (fun c -> c.replays)
    [
      ("status", fun a b -> a.Interp.status = b.Interp.status);
      ("outputs", fun a b -> a.Interp.outputs = b.Interp.outputs);
      ("reads", fun a b -> a.Interp.reads = b.Interp.reads);
      ("crashes", fun a b -> a.Interp.crashes = b.Interp.crashes);
    ]

(* ------------------------------------------------------------------ *)
(* Solver-statistics regression pins                                    *)
(* ------------------------------------------------------------------ *)

(* The witness-seeded search solves every workload's v_basic system on the
   first descent: one decision per clause, zero backtracks, zero
   conflicts.  Pin the two historically pathological workloads — vacation
   (hundreds of seconds of solving before pruning) and intruder (solver
   abort at the 2M-backtrack cap) — with small slack so an ordering or
   pruning regression shows up as a stats blowup, not a wall-clock
   mystery. *)
let test_solver_stats_pinned () =
  List.iter
    (fun wname ->
      let bm = Option.get (Workloads.by_name wname) in
      let r =
        Light_core.Light.record ~variant:Light_core.Light.v_basic
          ~sched:(Workloads.scheduler ~seed:3 bm)
          ~seed:3 (Workloads.program bm)
      in
      let report = Light_core.Replayer.solve ~budget:cell_budget r.log in
      (match report.result_kind with
      | Light_core.Replayer.Solved -> ()
      | Unsatisfiable -> Alcotest.failf "%s: unsat" wname
      | SolverAborted -> Alcotest.failf "%s: solver aborted" wname);
      let s = report.solver_stats in
      Alcotest.(check bool)
        (Printf.sprintf "%s: decisions (%d) bounded by clauses (%d)" wname s.decisions
           report.n_clauses)
        true
        (s.decisions <= report.n_clauses);
      Alcotest.(check bool)
        (Printf.sprintf "%s: backtracks (%d) within pin" wname s.backtracks)
        true (s.backtracks <= 64);
      Alcotest.(check bool)
        (Printf.sprintf "%s: conflicts (%d) within pin" wname s.theory_conflicts)
        true
        (s.theory_conflicts <= 64))
    [ "stamp-vacation"; "stamp-intruder" ]

let () =
  Alcotest.run "differential"
    [
      ( "variants",
        [
          Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
          Alcotest.test_case "replays faithful" `Slow test_replays_faithful;
          Alcotest.test_case "originals identical" `Slow test_originals_agree;
          Alcotest.test_case "replays agree" `Slow test_replays_agree;
          Alcotest.test_case "solver stats pinned" `Slow test_solver_stats_pinned;
        ] );
    ]
